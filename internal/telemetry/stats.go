package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
)

// StatsSchemaVersion is the current -stats-json schema. Bump it on any
// incompatible change so BENCH trajectories and run-diffing tools can tell
// which fields to trust.
const StatsSchemaVersion = 1

// StatsExport is the machine-readable run report behind -stats-json: the
// registry's metrics plus a per-stage table assembled from the pipeline's
// reserved metric names. The schema is versioned and round-trips through
// ReadStatsFile.
type StatsExport struct {
	SchemaVersion int               `json:"schema_version"`
	Tool          string            `json:"tool"`
	Labels        map[string]string `json:"labels,omitempty"`
	GoMaxProcs    int               `json:"go_max_procs"`
	// Parallelism is the extraction worker count, when a single extraction
	// is being reported (0 for aggregate, multi-run exports).
	Parallelism int `json:"parallelism,omitempty"`
	// Stages is the pipeline-stage table in execution order.
	Stages []StageStats `json:"stages,omitempty"`
	// Counters/Gauges/Histograms hold every metric not folded into Stages.
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// SpanCount is the number of spans the run recorded (0 when only
	// metrics were collected).
	SpanCount int `json:"span_count,omitempty"`
	// SpansDropped counts spans discarded by the collector's retention cap
	// (see Collector). Additive, schema-compatible: absent when zero.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// StageStats is one pipeline stage's row in the export.
type StageStats struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
	Merged     int64  `json:"merged"`
	// AllocBytes/Mallocs are runtime.MemStats deltas across the stage and
	// HeapBytes the live heap after it — recorded only when a span recorder
	// was attached (MemStats reads are not free).
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	Mallocs    int64 `json:"mallocs,omitempty"`
	HeapBytes  int64 `json:"heap_bytes,omitempty"`
}

// Reserved metric-name prefixes the pipeline records per stage; the
// exporter folds them into the Stages table.
const (
	StageNSPrefix     = "pipeline.stage_ns."
	StageMergedPrefix = "pipeline.merged."
	StageAllocPrefix  = "mem.alloc_bytes."
	StageMallocPrefix = "mem.mallocs."
	StageHeapPrefix   = "mem.heap_alloc."
)

// ExportRegistry builds the versioned export from a registry snapshot.
// stageOrder lists pipeline stages in execution order; stages with no
// recorded metrics are omitted. Metrics matching the reserved per-stage
// prefixes become Stages rows; everything else lands in the generic maps.
func ExportRegistry(reg *Registry, tool string, stageOrder []string) *StatsExport {
	snap := reg.Snapshot()
	e := &StatsExport{
		SchemaVersion: StatsSchemaVersion,
		Tool:          tool,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}
	for _, name := range stageOrder {
		ns, timed := snap.Counters[StageNSPrefix+name]
		merged, didMerge := snap.Counters[StageMergedPrefix+name]
		if !timed && !didMerge {
			continue
		}
		st := StageStats{Name: name, DurationNS: ns, Merged: merged}
		st.AllocBytes = snap.Counters[StageAllocPrefix+name]
		st.Mallocs = snap.Counters[StageMallocPrefix+name]
		st.HeapBytes = int64(snap.Gauges[StageHeapPrefix+name])
		e.Stages = append(e.Stages, st)
	}
	stageMetric := func(k string) bool {
		for _, p := range []string{StageNSPrefix, StageMergedPrefix, StageAllocPrefix, StageMallocPrefix} {
			if strings.HasPrefix(k, p) {
				return true
			}
		}
		return false
	}
	for k, v := range snap.Counters {
		if stageMetric(k) {
			continue
		}
		if e.Counters == nil {
			e.Counters = make(map[string]int64)
		}
		e.Counters[k] = v
	}
	for k, v := range snap.Gauges {
		if strings.HasPrefix(k, StageHeapPrefix) {
			continue
		}
		if e.Gauges == nil {
			e.Gauges = make(map[string]float64)
		}
		e.Gauges[k] = v
	}
	if len(snap.Histograms) > 0 {
		e.Histograms = snap.Histograms
	}
	return e
}

// Write encodes the export as indented JSON.
func (e *StatsExport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteFile writes the export to a file.
func (e *StatsExport) WriteFile(path string) error {
	return writeJSONFile(path, e.Write)
}

// ReadStats decodes and validates a stats export.
func ReadStats(r io.Reader) (*StatsExport, error) {
	var e StatsExport
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("telemetry: stats: %w", err)
	}
	if e.SchemaVersion != StatsSchemaVersion {
		return nil, fmt.Errorf("telemetry: stats: schema version %d, want %d", e.SchemaVersion, StatsSchemaVersion)
	}
	return &e, nil
}

// ReadStatsFile reads a -stats-json file back through the schema type.
func ReadStatsFile(path string) (*StatsExport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	defer f.Close()
	return ReadStats(f)
}

// BenchSchemaVersion versions the BENCH_extract.json format.
const BenchSchemaVersion = 1

// BenchExport is the machine-readable benchmark report written by
// `go run ./cmd/experiments -bench-json`: the repo's perf trajectory in a
// diffable form.
type BenchExport struct {
	SchemaVersion int           `json:"schema_version"`
	Tool          string        `json:"tool"`
	GoMaxProcs    int           `json:"go_max_procs"`
	Benchmarks    []BenchResult `json:"benchmarks"`
}

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
}

// NewBenchExport returns an empty export for the named tool at the current
// schema version.
func NewBenchExport(tool string) *BenchExport {
	return &BenchExport{
		SchemaVersion: BenchSchemaVersion,
		Tool:          tool,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}
}

// Add appends one measurement. It takes plain numbers rather than a
// *testing.BenchmarkResult so this package stays clear of the testing
// import; callers pass r.N, r.NsPerOp(), r.AllocedBytesPerOp(),
// r.AllocsPerOp().
func (e *BenchExport) Add(name string, iterations int, nsPerOp, bytesPerOp, allocsPerOp int64) {
	e.Benchmarks = append(e.Benchmarks, BenchResult{
		Name:        name,
		Iterations:  iterations,
		NsPerOp:     nsPerOp,
		BytesPerOp:  bytesPerOp,
		AllocsPerOp: allocsPerOp,
	})
}

// Write encodes the export as indented JSON.
func (e *BenchExport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteFile writes the export to a file.
func (e *BenchExport) WriteFile(path string) error {
	return writeJSONFile(path, e.Write)
}

// ReadBenchFile reads a -bench-json file back through the schema type.
func ReadBenchFile(path string) (*BenchExport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	defer f.Close()
	var e BenchExport
	if err := json.NewDecoder(f).Decode(&e); err != nil {
		return nil, fmt.Errorf("telemetry: bench: %w", err)
	}
	if e.SchemaVersion != BenchSchemaVersion {
		return nil, fmt.Errorf("telemetry: bench: schema version %d, want %d", e.SchemaVersion, BenchSchemaVersion)
	}
	return &e, nil
}

// writeJSONFile creates path and streams write into it.
func writeJSONFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}
