package core

import (
	"math/rand"
	"strings"
	"testing"

	"charmtrace/internal/trace"
)

// sameStructure reports whether two structures place every event of tr
// identically and agree on phase count.
func sameStructure(t *testing.T, tr *trace.Trace, a, b *Structure) {
	t.Helper()
	if a.NumPhases() != b.NumPhases() {
		t.Fatalf("phase counts differ: %d vs %d", a.NumPhases(), b.NumPhases())
	}
	for e := range tr.Events {
		if a.PhaseOf[e] != b.PhaseOf[e] || a.LocalStep[e] != b.LocalStep[e] || a.Step[e] != b.Step[e] {
			t.Fatalf("event %d placed differently", e)
		}
	}
}

// TestExtractBatch: table-driven coverage of the batch API against the
// equivalent sequential Extract loop.
func TestExtractBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trA := randomTrace(rng)
	trB := randomTrace(rng)
	trC := randomTrace(rng)

	cases := []struct {
		name    string
		traces  []*trace.Trace
		opt     Options
		wantErr string // substring of the expected error; empty means success
	}{
		{"empty-slice", []*trace.Trace{}, DefaultOptions(), ""},
		{"nil-slice", nil, DefaultOptions(), ""},
		{"single-trace", []*trace.Trace{trA}, DefaultOptions(), ""},
		{"multiple-traces", []*trace.Trace{trA, trB, trC}, DefaultOptions(), ""},
		{"message-passing", []*trace.Trace{trA, trB}, MessagePassingOptions(), ""},
		{"same-trace-twice", []*trace.Trace{trA, trA}, DefaultOptions(), ""},
		{"sequential-workers", []*trace.Trace{trA, trB, trC}, Options{Reorder: true, InferDependencies: true, NeighborSerialMerge: true, Parallelism: 1}, ""},
		{"more-workers-than-traces", []*trace.Trace{trA, trB}, Options{Reorder: true, InferDependencies: true, NeighborSerialMerge: true, Parallelism: 16}, ""},
		{"nil-trace", []*trace.Trace{trA, nil}, DefaultOptions(), "trace 1"},
		{"malformed-trace", []*trace.Trace{trA, &trace.Trace{}, trB}, DefaultOptions(), "trace 1"},
		{"malformed-first-wins", []*trace.Trace{&trace.Trace{}, nil}, DefaultOptions(), "trace 0"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got, err := ExtractBatch(tc.traces, tc.opt)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("expected error containing %q, got nil", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.traces) {
				t.Fatalf("got %d structures for %d traces", len(got), len(tc.traces))
			}
			// Results must be in input order and identical to per-trace calls.
			for i, tr := range tc.traces {
				want, err := Extract(tr, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				sameStructure(t, tr, want, got[i])
			}
		})
	}
}

// TestExtractBatchConcurrentCallers: several goroutines run overlapping
// batches over shared traces; exercised for data races by the tier-1 -race
// run. The batch members deliberately alias each other so the concurrent
// extractions share indexed traces.
func TestExtractBatchConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	traces := []*trace.Trace{randomTrace(rng), randomTrace(rng), randomTrace(rng)}
	batch := []*trace.Trace{traces[0], traces[1], traces[2], traces[0], traces[1]}
	opt := DefaultOptions()
	opt.Parallelism = 4

	want, err := ExtractBatch(batch, opt)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 4
	results := make([][]*Structure, callers)
	errs := make([]error, callers)
	done := make(chan struct{})
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer func() { done <- struct{}{} }()
			results[c], errs[c] = ExtractBatch(batch, opt)
		}(c)
	}
	for c := 0; c < callers; c++ {
		<-done
	}
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		for i := range batch {
			sameStructure(t, batch[i], want[i], results[c][i])
		}
	}
}

// TestSplitBudget: the inner-parallelism shares of a batch pool must always
// sum to the full worker budget — the regression where workers=4 over 3
// traces ran every slot at 4/3 = 1 inner worker idled a core for the whole
// batch. Shares are distributed largest-first and never drop below one.
func TestSplitBudget(t *testing.T) {
	cases := []struct {
		budget, pool int
		want         []int
	}{
		{4, 3, []int{2, 1, 1}}, // the ISSUE regression: remainder to slot 0
		{4, 4, []int{1, 1, 1, 1}},
		{8, 3, []int{3, 3, 2}},
		{7, 2, []int{4, 3}},
		{1, 1, []int{1}},
		{16, 5, []int{4, 3, 3, 3, 3}},
		{2, 3, []int{1, 1, 1}}, // budget below pool: one worker per slot floor
	}
	for _, tc := range cases {
		got := splitBudget(tc.budget, tc.pool)
		if len(got) != len(tc.want) {
			t.Fatalf("splitBudget(%d,%d) = %v, want %v", tc.budget, tc.pool, got, tc.want)
		}
		sum := 0
		for i, s := range got {
			if s != tc.want[i] {
				t.Errorf("splitBudget(%d,%d) = %v, want %v", tc.budget, tc.pool, got, tc.want)
				break
			}
			sum += s
		}
		wantSum := tc.budget
		if wantSum < tc.pool {
			wantSum = tc.pool
		}
		if sum != wantSum {
			t.Errorf("splitBudget(%d,%d) shares sum to %d, want %d (total effective concurrency must equal the budget)",
				tc.budget, tc.pool, sum, wantSum)
		}
	}
}

// TestSplitBudgetProperties: for a sweep of (budget, pool) shapes, shares
// sum to the budget, are non-increasing, and never fall below one — so the
// batch's total effective concurrency equals the budget whenever
// budget >= pool, with no idle remainder.
func TestSplitBudgetProperties(t *testing.T) {
	for budget := 1; budget <= 12; budget++ {
		for pool := 1; pool <= budget; pool++ {
			shares := splitBudget(budget, pool)
			sum := 0
			for i, s := range shares {
				if s < 1 {
					t.Fatalf("splitBudget(%d,%d)[%d] = %d < 1", budget, pool, i, s)
				}
				if i > 0 && s > shares[i-1] {
					t.Fatalf("splitBudget(%d,%d) not non-increasing: %v", budget, pool, shares)
				}
				sum += s
			}
			if sum != budget {
				t.Fatalf("splitBudget(%d,%d) sums to %d, want the full budget", budget, pool, sum)
			}
		}
	}
}
