package main

import (
	"fmt"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
	"charmtrace/internal/structdiff"
)

func init() {
	register("inv1", "invariance: logical structure across seeds (the paper's central premise)", invSeeds)
}

func invSeeds(bool) {
	base := extract(must(jacobi.Trace(jacobi.DefaultConfig())), core.DefaultOptions())
	equivalent := 0
	const seeds = 8
	for seed := int64(2); seed < 2+seeds; seed++ {
		cfg := jacobi.DefaultConfig()
		cfg.Seed = seed
		other := extract(must(jacobi.Trace(cfg)), core.DefaultOptions())
		d := must(structdiff.Compare(base, other))
		if d.Empty() {
			equivalent++
		} else {
			fmt.Printf("  seed %d diverges:\n%s", seed, d)
		}
	}
	fmt.Printf("  %d/%d alternative-seed runs recover an equivalent logical structure\n",
		equivalent, seeds)
	paperVsMeasured(
		"logical structure reflects the developers' program, not the non-deterministic schedule: reordering shows a structure of dependencies unaffected by imbalance, network travel time and queuing policy (§3.2.1)",
		fmt.Sprintf("%d/%d seeds — different jitter, same recovered structure (also holds under chare migration and scheduler priorities; see internal/sim tests)",
			equivalent, seeds))
}
