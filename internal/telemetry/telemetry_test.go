package telemetry

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestDisabledRecorder(t *testing.T) {
	if Disabled.Enabled() {
		t.Fatal("Disabled.Enabled() = true")
	}
	id := Disabled.StartSpan("x", NoSpan, Int("k", 1))
	if id != NoSpan {
		t.Fatalf("Disabled.StartSpan = %d, want NoSpan", id)
	}
	Disabled.EndSpan(id) // must not panic
}

func TestCollectorSpans(t *testing.T) {
	c := NewCollector()
	root := c.StartSpan("extract", NoSpan, Int("events", 10))
	stage := c.StartSpan("dependency-merge", root)
	w1 := c.StartSpan("sweep", stage, Lane(1))
	w2 := c.StartSpan("sweep", stage, Lane(2))
	c.EndSpan(w1)
	c.EndSpan(w2)
	c.EndSpan(stage)
	c.EndSpan(root)

	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string][]Span{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		if sp.Dur < 0 {
			t.Errorf("span %s still open after EndSpan", sp.Name)
		}
	}
	if got := byName["dependency-merge"][0]; got.Parent != root {
		t.Errorf("stage parent = %d, want %d", got.Parent, root)
	}
	// Stage inherits the root's tid; workers get base+lane.
	base := byName["extract"][0].TID
	if byName["dependency-merge"][0].TID != base {
		t.Errorf("stage tid = %d, want inherited %d", byName["dependency-merge"][0].TID, base)
	}
	tids := map[int64]bool{}
	for _, sp := range byName["sweep"] {
		tids[sp.TID] = true
		if sp.TID != base+1 && sp.TID != base+2 {
			t.Errorf("worker tid = %d, want %d or %d", sp.TID, base+1, base+2)
		}
	}
	if len(tids) != 2 {
		t.Error("worker spans share a lane")
	}
	// The lane attribute is consumed, not exported.
	for _, sp := range byName["sweep"] {
		for _, a := range sp.Attrs {
			if a.Key == "lane" {
				t.Error("lane attr leaked into span attrs")
			}
		}
	}
}

func TestCollectorConcurrentRoots(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root := c.StartSpan("extract", NoSpan)
			for j := 0; j < 10; j++ {
				sp := c.StartSpan("stage", root, Lane(j%3+1), Int("j", int64(j)))
				c.EndSpan(sp)
			}
			c.EndSpan(root)
		}()
	}
	wg.Wait()
	spans := c.Spans()
	if len(spans) != 8*11 {
		t.Fatalf("got %d spans, want %d", len(spans), 8*11)
	}
	// Concurrent roots must land on distinct lane bases.
	bases := map[int64]bool{}
	for _, sp := range spans {
		if sp.Parent == NoSpan {
			if bases[sp.TID] {
				t.Fatalf("two roots share tid base %d", sp.TID)
			}
			bases[sp.TID] = true
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	c := NewCollector()
	root := c.StartSpan("extract", NoSpan, String("workload", "jacobi"))
	w := c.StartSpan("part-scan", root, Lane(1), Int("lo", 0), Int("hi", 5))
	c.EndSpan(w)
	c.EndSpan(root)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var complete, meta int
	for _, ev := range events {
		switch ev.Ph {
		case "X":
			complete++
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("event %q has ts %v dur %v", ev.Name, ev.TS, ev.Dur)
			}
			if ev.PID != chromePID {
				t.Errorf("event %q pid = %d", ev.Name, ev.PID)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2", complete)
	}
	if meta < 3 { // process_name + >= 2 thread rows
		t.Errorf("metadata events = %d, want >= 3", meta)
	}
}

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Add(4)
	r.Gauge("g").Set(1.5)
	h := r.Histogram("h")
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(1000)

	s := r.Snapshot()
	if s.Counters["a"] != 7 {
		t.Errorf("counter a = %d, want 7", s.Counters["a"])
	}
	if s.Gauges["g"] != 1.5 {
		t.Errorf("gauge g = %v, want 1.5", s.Gauges["g"])
	}
	hs := s.Histograms["h"]
	if hs.Count != 3 || hs.Sum != 1003.5 || hs.Min != 0.5 || hs.Max != 1000 {
		t.Errorf("histogram = %+v", hs)
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("bucket counts sum to %d, want 3", total)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Set(float64(j))
				r.Histogram("h").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 800 {
		t.Errorf("counter = %d, want 800", s.Counters["c"])
	}
	if s.Histograms["h"].Count != 800 {
		t.Errorf("histogram count = %d, want 800", s.Histograms["h"].Count)
	}
}

func TestRegistryMergeInto(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(2)
	a.Histogram("h").Observe(4)
	b.Counter("c").Add(5)
	b.Gauge("g").Set(9)
	b.Histogram("h").Observe(16)

	a.MergeInto(b)
	s := b.Snapshot()
	if s.Counters["c"] != 7 {
		t.Errorf("merged counter = %d, want 7", s.Counters["c"])
	}
	if s.Gauges["g"] != 9 {
		t.Errorf("merged gauge = %v, want 9", s.Gauges["g"])
	}
	hs := s.Histograms["h"]
	if hs.Count != 2 || hs.Sum != 20 || hs.Min != 4 || hs.Max != 16 {
		t.Errorf("merged histogram = %+v", hs)
	}
}

func TestStatsExportRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(StageNSPrefix + "initial").Add(1000)
	reg.Counter(StageMergedPrefix + "initial").Add(0)
	reg.Counter(StageNSPrefix + "dependency-merge").Add(2000)
	reg.Counter(StageMergedPrefix + "dependency-merge").Add(42)
	reg.Counter("pipeline.events_scanned").Add(99)
	reg.Gauge("pipeline.enforce_rounds").Set(2)
	reg.Histogram("pipeline.enforce_round_ns").Observe(1500)

	e := ExportRegistry(reg, "test", []string{"initial", "dependency-merge", "never-ran"})
	e.Labels = map[string]string{"workload": "jacobi"}
	e.Parallelism = 4
	e.SpanCount = 7

	if len(e.Stages) != 2 {
		t.Fatalf("stages = %d, want 2 (never-ran omitted)", len(e.Stages))
	}
	if e.Stages[1].Name != "dependency-merge" || e.Stages[1].Merged != 42 || e.Stages[1].DurationNS != 2000 {
		t.Errorf("stage row wrong: %+v", e.Stages[1])
	}
	if _, dup := e.Counters[StageNSPrefix+"initial"]; dup {
		t.Error("stage metric duplicated into generic counters")
	}
	if e.Counters["pipeline.events_scanned"] != 99 {
		t.Errorf("generic counter missing: %v", e.Counters)
	}

	path := filepath.Join(t.TempDir(), "stats.json")
	if err := e.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStatsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestReadStatsRejectsWrongVersion(t *testing.T) {
	if _, err := ReadStats(bytes.NewBufferString(`{"schema_version": 999, "tool": "x"}`)); err == nil {
		t.Fatal("expected a schema-version error")
	}
}

func TestBenchExportRoundTrip(t *testing.T) {
	e := &BenchExport{
		SchemaVersion: BenchSchemaVersion,
		Tool:          "experiments",
		GoMaxProcs:    1,
		Benchmarks: []BenchResult{
			{Name: "Fig10MergeTree/par=1", Iterations: 10, NsPerOp: 12100000, BytesPerOp: 5, AllocsPerOp: 3},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := e.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}
