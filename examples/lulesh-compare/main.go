// lulesh-compare reproduces the Section 6.1 study: the logical structures
// recovered from the MPI and Charm++ implementations of LULESH correspond —
// MPI repeats [3 point-to-point phases + allreduce] per timestep, Charm++
// repeats [2 mirrored point-to-point phases + allreduce] — which is the
// paper's evidence that the recovered structure is meaningful. It also runs
// the Figure 17 ablation: without the §3.1.4 dependency inference the
// phases split and are forced into sequence.
package main

import (
	"fmt"
	"log"

	"charmtrace"
)

func describe(name string, s *charmtrace.Structure) {
	fmt.Printf("== %s: %d phases ==\n", name, s.NumPhases())
	fmt.Print(charmtrace.PhaseSummary(s))
	fmt.Println()
}

func main() {
	cfg := charmtrace.DefaultLuleshConfig()

	mpiTrace, err := charmtrace.LuleshMPITrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mpi, err := charmtrace.Extract(mpiTrace, charmtrace.MessagePassingOptions())
	if err != nil {
		log.Fatal(err)
	}
	describe("LULESH / MPI (8 processes)", mpi)

	charmTr, err := charmtrace.LuleshCharmTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	charm, err := charmtrace.Extract(charmTr, charmtrace.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	describe("LULESH / Charm++ (8 chares, 2 processors)", charm)

	fmt.Printf("per-iteration app phases: MPI 3, Charm++ 2 (mirrored) -> phase difference %d over %d iterations\n\n",
		mpi.NumPhases()-charm.NumPhases(), cfg.Iterations)

	// Figure 17: disable the §3.1.4 inference and merging.
	opt := charmtrace.DefaultOptions()
	opt.InferDependencies = false
	split, err := charmtrace.Extract(charmTr, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 17 ablation: with inference %d phases; without %d (split phases forced in sequence)\n",
		charm.NumPhases(), split.NumPhases())

	// Multi-seed consistency, batched: the MPI runs for several seeds are
	// analyzed concurrently with ExtractBatch (results in input order,
	// identical to per-trace Extract calls) and diffed — different network
	// jitter, same recovered structure.
	const seeds = 4
	traces := make([]*charmtrace.Trace, 0, seeds)
	for seed := int64(1); seed <= seeds; seed++ {
		c := cfg
		c.Seed = seed
		tr, err := charmtrace.LuleshMPITrace(c)
		if err != nil {
			log.Fatal(err)
		}
		traces = append(traces, tr)
	}
	structs, err := charmtrace.ExtractBatch(traces, charmtrace.MessagePassingOptions())
	if err != nil {
		log.Fatal(err)
	}
	consistent := 0
	for _, s := range structs[1:] {
		d, err := charmtrace.CompareStructures(structs[0], s)
		if err != nil {
			log.Fatal(err)
		}
		if d.Empty() {
			consistent++
		}
	}
	fmt.Printf("multi-seed check (batch-extracted): %d/%d alternative seeds recover an equivalent MPI structure\n",
		consistent, seeds-1)

	fmt.Println("\n== Charm++ logical structure ==")
	fmt.Print(charmtrace.RenderLogical(charm))
}
