package tracefile

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
)

// validBinary serializes the jacobi proxy trace in the binary format.
func validBinary(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, jacobi.MustTrace(jacobi.DefaultConfig())); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTruncatedBinaryIsMalformed: cutting a valid binary trace at any of a
// spread of offsets fails with the ErrMalformed tag — the typed error the
// charmd upload handler maps to HTTP 400 instead of 500.
func TestTruncatedBinaryIsMalformed(t *testing.T) {
	enc := validBinary(t)
	for _, n := range []int{0, 1, 3, 4, 5, len(enc) / 4, len(enc) / 2, len(enc) - 1} {
		if _, err := ReadAuto(bytes.NewReader(enc[:n])); err == nil {
			t.Errorf("truncation at %d/%d bytes decoded without error", n, len(enc))
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("truncation at %d: error %v is not ErrMalformed", n, err)
		}
	}
}

// TestCorruptBinaryIsMalformed covers the non-truncation corruption paths.
func TestCorruptBinaryIsMalformed(t *testing.T) {
	enc := validBinary(t)
	cases := map[string]func() []byte{
		"bad magic": func() []byte {
			c := append([]byte(nil), enc...)
			c[0] = 'X'
			return c
		},
		"bad version": func() []byte {
			c := append([]byte(nil), enc...)
			c[4] = 0x7f // uvarint 127, unsupported
			return c
		},
		"garbage body": func() []byte {
			return append(append([]byte(nil), binaryMagic[:]...), 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
		},
	}
	for name, build := range cases {
		if _, err := ReadAuto(bytes.NewReader(build())); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v is not ErrMalformed", name, err)
		}
	}
}

// TestMalformedTextIsTagged: the text decoder's failures carry the same tag.
func TestMalformedTextIsTagged(t *testing.T) {
	for name, input := range map[string]string{
		"empty":          "",
		"bad header":     "not a trace\n",
		"bad version":    "charmtrace 999\n",
		"unknown record": "charmtrace 1\npe 1\nbogus 1 2 3\n",
		"short record":   "charmtrace 1\npe 1\nblock 0\n",
		"unknown block":  "charmtrace 1\npe 1\nev 0 send 5 0 0 1 7\n",
	} {
		if _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v is not ErrMalformed", name, err)
		}
	}
}

// TestMalformedPreservesUnderlyingError: the tag is additive — the original
// chain (e.g. unexpected EOF on a truncated section read) stays inspectable.
func TestMalformedPreservesUnderlyingError(t *testing.T) {
	enc := validBinary(t)
	_, err := ReadAuto(bytes.NewReader(enc[:len(enc)-1]))
	if err == nil {
		t.Fatal("truncated trace decoded without error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Errorf("error %v hides the underlying EOF", err)
	}
}

// TestReadAutoDigest: the digest is the SHA-256 of the full raw stream, the
// same trace serialized differently gets different addresses, and the
// malformed tag survives the digesting wrapper.
func TestReadAutoDigest(t *testing.T) {
	orig := jacobi.MustTrace(jacobi.DefaultConfig())
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, orig); err != nil {
		t.Fatal(err)
	}
	if err := Write(&txt, orig); err != nil {
		t.Fatal(err)
	}

	tr, digest, err := ReadAutoDigest(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != len(orig.Events) {
		t.Fatalf("decoded %d events, want %d", len(tr.Events), len(orig.Events))
	}
	if want := DigestBytes(bin.Bytes()); digest != want {
		t.Errorf("digest %s != sha256 of the stream %s", digest, want)
	}
	_, again, err := ReadAutoDigest(bytes.NewReader(bin.Bytes()))
	if err != nil || again != digest {
		t.Errorf("digest not stable: %s vs %s (err %v)", again, digest, err)
	}
	_, txtDigest, err := ReadAutoDigest(bytes.NewReader(txt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if txtDigest == digest {
		t.Error("text and binary serializations share a digest")
	}
	if want := DigestBytes(txt.Bytes()); txtDigest != want {
		t.Errorf("text digest %s != sha256 of the stream %s", txtDigest, want)
	}

	if _, _, err := ReadAutoDigest(bytes.NewReader(bin.Bytes()[:10])); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated digest read: error %v is not ErrMalformed", err)
	}
}
