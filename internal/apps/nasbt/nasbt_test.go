package nasbt

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func TestTraceShape(t *testing.T) {
	cfg := DefaultConfig()
	tr := MustTrace(cfg)
	// Per iteration: x sweep g*(g-1) msgs, y sweep g*(g-1), update 2*2*g*(g-1).
	g := cfg.Grid
	perIter := g*(g-1)*2 + 4*g*(g-1)
	if got := tr.CountKind(trace.Send); got != perIter*cfg.Iterations {
		t.Fatalf("sends = %d, want %d", got, perIter*cfg.Iterations)
	}
}

// TestLogicalSeparatesInterleavedPhases is the Figure 1 claim: phases that
// overlap in physical time are disjoint in logical steps.
func TestLogicalSeparatesInterleavedPhases(t *testing.T) {
	tr := MustTrace(DefaultConfig())
	s, err := core.Extract(tr, core.MessagePassingOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() < 6 {
		t.Fatalf("phases = %d, want several per iteration", s.NumPhases())
	}
	// Find two phases whose physical spans overlap.
	type span struct{ lo, hi trace.Time }
	spans := make([]span, s.NumPhases())
	for pi := range s.Phases {
		sp := span{1<<62 - 1, 0}
		for _, e := range s.Phases[pi].Events {
			tm := tr.Events[e].Time
			if tm < sp.lo {
				sp.lo = tm
			}
			if tm > sp.hi {
				sp.hi = tm
			}
		}
		spans[pi] = sp
	}
	overlapping := 0
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].hi < spans[j].lo || spans[j].hi < spans[i].lo {
				continue
			}
			overlapping++
			// Physically overlapping pipeline phases must still be given
			// either disjoint or ordered step ranges per chare — verified
			// globally by Validate; here we check most pairs are separated
			// in steps entirely.
		}
	}
	if overlapping == 0 {
		t.Fatal("no physically interleaved phases; pipeline overlap missing")
	}
	// The sweeps pipeline across iterations: physical interleaving with
	// logical separation is what Figure 1 shows.
	sepInSteps := 0
	for i := range spans {
		li, hi := s.Phases[i].GlobalSpan()
		for j := i + 1; j < len(spans); j++ {
			if spans[i].hi < spans[j].lo || spans[j].hi < spans[i].lo {
				continue
			}
			lj, hj := s.Phases[j].GlobalSpan()
			if hi < lj || hj < li {
				sepInSteps++
			}
		}
	}
	if sepInSteps == 0 {
		t.Fatal("no physically-overlapping phase pair is separated in logical steps")
	}
}
