package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/conformance"
	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/tracefile"
)

// encodedJacobi returns the jacobi proxy trace serialized in the binary
// format (what a client would upload).
func encodedJacobi(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := jacobi.DefaultConfig()
	if seed != 0 {
		cfg.Seed = seed
	}
	var buf bytes.Buffer
	if err := tracefile.WriteBinary(&buf, jacobi.MustTrace(cfg)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func upload(t *testing.T, ts *httptest.Server, body []byte) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Digest string `json:"digest"`
		Events int    `json:"events"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Digest != tracefile.DigestBytes(body) {
		t.Fatalf("upload digest %s != local digest %s", out.Digest, tracefile.DigestBytes(body))
	}
	return out.Digest
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func mustGet(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	code, data := get(t, ts, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, code, data)
	}
	return data
}

// TestServeByteIdentityAcrossCacheLayersAndRestart is the end-to-end
// acceptance test: the structure (and steps, and metrics) responses are
// byte-identical between a fresh extraction (cache miss), a memory hit, a
// disk hit after a server restart, and a different server extracting at a
// different Parallelism.
func TestServeByteIdentityAcrossCacheLayersAndRestart(t *testing.T) {
	dir := t.TempDir()
	enc := encodedJacobi(t, 0)

	_, ts := newTestServer(t, Config{DataDir: dir, Parallelism: 4})
	digest := upload(t, ts, enc)

	paths := []string{
		"/v1/traces/" + digest + "/structure",
		"/v1/traces/" + digest + "/steps",
		"/v1/traces/" + digest + "/metrics",
	}
	miss := make(map[string][]byte)
	for _, p := range paths {
		miss[p] = mustGet(t, ts, p) // extraction (cache miss)
	}
	for _, p := range paths {
		if hit := mustGet(t, ts, p); !bytes.Equal(hit, miss[p]) {
			t.Errorf("%s: memory-hit response differs from miss response", p)
		}
	}
	ts.Close()

	// Restart: a fresh server over the same data dir. The trace reloads
	// lazily from traces/, the result from the on-disk cache.
	srv2, ts2 := newTestServer(t, Config{DataDir: dir, Parallelism: 2})
	for _, p := range paths {
		if got := mustGet(t, ts2, p); !bytes.Equal(got, miss[p]) {
			t.Errorf("%s: post-restart response differs from original", p)
		}
	}
	if misses := srv2.Registry().Counter("cache.misses").Value(); misses != 0 {
		t.Errorf("restarted server re-extracted (misses = %d), want disk hits only", misses)
	}

	// A completely independent server extracting sequentially produces the
	// same bytes: Parallelism never leaks into responses.
	_, ts3 := newTestServer(t, Config{DataDir: t.TempDir(), Parallelism: 1})
	if d := upload(t, ts3, enc); d != digest {
		t.Fatalf("digest mismatch across servers: %s vs %s", d, digest)
	}
	for _, p := range paths {
		if got := mustGet(t, ts3, p); !bytes.Equal(got, miss[p]) {
			t.Errorf("%s: Parallelism=1 server response differs from Parallelism=4's", p)
		}
	}
}

// TestStructureServedFromDiskSummary: after a restart, a /structure request
// is answered from the disk entry's streaming summary — byte-identical to
// the fresh response, labeled a disk hit, and served without decoding the
// trace or the per-event arrays (the zero-copy serving path). /steps still
// needs per-event data, so it takes the full path.
func TestStructureServedFromDiskSummary(t *testing.T) {
	dir := t.TempDir()
	enc := encodedJacobi(t, 0)
	_, ts := newTestServer(t, Config{DataDir: dir})
	digest := upload(t, ts, enc)
	want := mustGet(t, ts, "/v1/traces/"+digest+"/structure")
	ts.Close()

	srv2, ts2 := newTestServer(t, Config{DataDir: dir})
	resp, err := http.Get(ts2.URL + "/v1/traces/" + digest + "/structure")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("summary-served response differs from fresh extraction's")
	}
	if h := resp.Header.Get("X-Charmd-Cache"); h != "disk" {
		t.Errorf("X-Charmd-Cache = %q, want %q", h, "disk")
	}
	reg := srv2.Registry()
	if hits := reg.Counter("cache.disk_hits").Value(); hits != 1 {
		t.Errorf("disk_hits = %d, want 1", hits)
	}
	if misses := reg.Counter("cache.misses").Value(); misses != 0 {
		t.Errorf("misses = %d, want 0", misses)
	}
	// The summary path never needed the trace: the lazily-loaded entry is
	// still undecoded, which is exactly what makes the first post-restart
	// phase-table read cheap.
	srv2.mu.RLock()
	undecoded := srv2.traces[digest] != nil && srv2.traces[digest].tr == nil
	srv2.mu.RUnlock()
	if !undecoded {
		t.Error("summary path decoded the trace")
	}

	// /steps needs per-event data: it takes the full path (another disk
	// hit), loads the trace, and warms the memory LRU for later /structure
	// requests to hit in memory again.
	mustGet(t, ts2, "/v1/traces/"+digest+"/steps")
	resp2, err := http.Get(ts2.URL + "/v1/traces/" + digest + "/structure")
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if h := resp2.Header.Get("X-Charmd-Cache"); h != "mem" {
		t.Errorf("post-warm X-Charmd-Cache = %q, want %q", h, "mem")
	}
	if !bytes.Equal(got2, want) {
		t.Errorf("memory-served response differs from summary-served one")
	}
}

// TestConcurrentStructureRequestsCoalesce: K parallel requests for one
// uncached trace run the extraction pipeline exactly once, and the serving
// counters and latency histograms show up in /debug/stats.
func TestConcurrentStructureRequestsCoalesce(t *testing.T) {
	srv, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	digest := upload(t, ts, encodedJacobi(t, 0))

	const K = 12
	bodies := make([][]byte, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/traces/" + digest + "/structure")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				bodies[i], _ = io.ReadAll(resp.Body)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < K; i++ {
		if bodies[i] == nil {
			t.Fatalf("request %d failed", i)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs", i)
		}
	}
	reg := srv.Registry()
	if misses := reg.Counter("cache.misses").Value(); misses != 1 {
		t.Errorf("extraction ran %d times for %d concurrent requests, want exactly 1", misses, K)
	}
	served := reg.Counter("cache.hits").Value() + reg.Counter("cache.coalesced").Value() + reg.Counter("cache.misses").Value()
	if served != K {
		t.Errorf("hits+coalesced+misses = %d, want %d", served, K)
	}

	// The run is visible in /debug/stats: versioned schema, cache counters,
	// serving latency histograms.
	stats, err := telemetry.ReadStats(bytes.NewReader(mustGet(t, ts, "/debug/stats")))
	if err != nil {
		t.Fatalf("stats do not parse as StatsExport: %v", err)
	}
	if stats.Tool != "charmd" {
		t.Errorf("stats tool %q, want charmd", stats.Tool)
	}
	if stats.Counters["cache.misses"] != 1 {
		t.Errorf("stats cache.misses = %d, want 1", stats.Counters["cache.misses"])
	}
	if _, ok := stats.Counters["cache.hits"]; !ok {
		t.Error("stats missing cache.hits")
	}
	h, ok := stats.Histograms["server.latency_ms.structure"]
	if !ok || h.Count < K {
		t.Errorf("latency histogram missing or short: %+v", h)
	}
	if stats.Histograms["cache.extract_ms"].Count != 1 {
		t.Errorf("extract_ms histogram count = %d, want 1", stats.Histograms["cache.extract_ms"].Count)
	}
	if len(stats.Stages) == 0 {
		t.Error("stats missing aggregated pipeline stage metrics")
	}
}

// TestErrorMapping: malformed uploads are client errors (400), oversized
// ones 413, unknown digests 404, bad parameters 400 — never 500.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir(), MaxUploadBytes: 1 << 20})

	post := func(body []byte) int {
		resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	valid := encodedJacobi(t, 0)
	if code := post([]byte("this is not a trace")); code != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d, want 400", code)
	}
	if code := post(valid[:len(valid)/2]); code != http.StatusBadRequest {
		t.Errorf("truncated upload: status %d, want 400", code)
	}
	oversized := append(append([]byte{}, valid...), make([]byte, 2<<20)...)
	if code := post(oversized); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d, want 413", code)
	}

	missing := strings.Repeat("0", 64)
	if code, _ := get(t, ts, "/v1/traces/"+missing+"/structure"); code != http.StatusNotFound {
		t.Errorf("unknown digest: status %d, want 404", code)
	}
	digest := upload(t, ts, valid)
	if code, _ := get(t, ts, "/v1/traces/"+digest+"/structure?preset=nope"); code != http.StatusBadRequest {
		t.Errorf("bad preset: status %d, want 400", code)
	}
	if code, _ := get(t, ts, "/v1/traces/"+digest+"/structure?infer=maybe"); code != http.StatusBadRequest {
		t.Errorf("bad boolean: status %d, want 400", code)
	}
	if code, _ := get(t, ts, "/v1/traces/"+digest+"/steps?chare=9999"); code != http.StatusBadRequest {
		t.Errorf("chare out of range: status %d, want 400", code)
	}
	if code, _ := get(t, ts, "/v1/structdiff?a="+digest); code != http.StatusBadRequest {
		t.Errorf("structdiff missing b: status %d, want 400", code)
	}
}

// TestStructDiffAndList: diffing a trace against itself is equivalent;
// different seeds of the seed-invariant workload also diff equivalent (the
// paper's invariance claim, served over HTTP); the list endpoint reports
// both uploads.
func TestStructDiffAndList(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	d1 := upload(t, ts, encodedJacobi(t, 0))
	d2 := upload(t, ts, encodedJacobi(t, 42))

	var diff struct {
		Equivalent bool   `json:"equivalent"`
		Report     string `json:"report"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/v1/structdiff?a="+d1+"&b="+d1), &diff); err != nil {
		t.Fatal(err)
	}
	if !diff.Equivalent {
		t.Errorf("self-diff not equivalent: %s", diff.Report)
	}
	if err := json.Unmarshal(mustGet(t, ts, "/v1/structdiff?a="+d1+"&b="+d2), &diff); err != nil {
		t.Fatal(err)
	}
	if !diff.Equivalent {
		t.Errorf("seed-invariance diff not equivalent: %s", diff.Report)
	}

	var list struct {
		Traces []struct {
			Digest string `json:"digest"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/v1/traces"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 2 {
		t.Fatalf("list has %d traces, want 2", len(list.Traces))
	}
}

// TestUploadVariants: the same trace as text and binary get distinct
// content addresses (the address is of the bytes), re-uploads dedupe, and
// the options surface changes responses while Parallelism does not.
func TestUploadVariants(t *testing.T) {
	srv, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	tr := jacobi.MustTrace(jacobi.DefaultConfig())
	var bin, txt bytes.Buffer
	if err := tracefile.WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := tracefile.Write(&txt, tr); err != nil {
		t.Fatal(err)
	}
	dBin := upload(t, ts, bin.Bytes())
	dTxt := upload(t, ts, txt.Bytes())
	if dBin == dTxt {
		t.Error("text and binary uploads share a digest")
	}
	if again := upload(t, ts, bin.Bytes()); again != dBin {
		t.Error("re-upload changed the digest")
	}
	if srv.Registry().Counter("server.uploads").Value() != 3 {
		t.Error("upload counter did not count all uploads")
	}

	withInfer := mustGet(t, ts, "/v1/traces/"+dBin+"/structure")
	var resp structureResponse
	if err := json.Unmarshal(withInfer, &resp); err != nil {
		t.Fatal(err)
	}
	if want := core.DefaultOptions().Fingerprint(); resp.Fingerprint != want {
		t.Errorf("fingerprint %q, want %q", resp.Fingerprint, want)
	}
	noInfer := mustGet(t, ts, "/v1/traces/"+dBin+"/structure?infer=false")
	if bytes.Equal(withInfer, noInfer) {
		t.Error("disabling dependency inference did not change the response")
	}
}

// TestHealthAndSelfTrace: healthz responds; the self-trace endpoint is 404
// without the flag and serves a parseable Chrome trace with it.
func TestHealthAndSelfTrace(t *testing.T) {
	_, plain := newTestServer(t, Config{DataDir: t.TempDir()})
	if code, _ := get(t, plain, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz status %d", code)
	}
	if code, _ := get(t, plain, "/debug/selftrace"); code != http.StatusNotFound {
		t.Errorf("selftrace without flag: status %d, want 404", code)
	}

	_, traced := newTestServer(t, Config{DataDir: t.TempDir(), SelfTrace: true})
	digest := upload(t, traced, encodedJacobi(t, 0))
	mustGet(t, traced, "/v1/traces/"+digest+"/structure")
	events, err := telemetry.ReadChromeTrace(bytes.NewReader(mustGet(t, traced, "/debug/selftrace")))
	if err != nil {
		t.Fatalf("selftrace does not parse: %v", err)
	}
	found := false
	for _, ev := range events {
		if ev.Name == "extract" {
			found = true
		}
	}
	if !found {
		t.Error("selftrace has no extract span")
	}
}

// TestFormatMisdetectionUploadsAre400s: the ReadAuto misdetection table
// from the tracefile package, driven end to end through the upload
// endpoint — every sniffing failure must surface as a client error (400),
// never a 500, and a well-formed Projections-format upload must be accepted
// and analyzable like any native-format trace.
func TestFormatMisdetectionUploadsAre400s(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	post := func(body []byte) int {
		resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	bin := encodedJacobi(t, 0)
	cases := []struct {
		name string
		body []byte
	}{
		{"empty body", nil},
		{"truncated binary magic", []byte("CTR")},
		{"truncated projections magic", []byte("PROJECTIONS-REC")},
		{"projections header with binary body", append([]byte("PROJECTIONS-RECORD 1\n"), bin...)},
		{"projections bad version", []byte("PROJECTIONS-RECORD 99\n")},
		{"binary magic with text body", append([]byte("CTRB"), []byte("charmtrace 1\n")...)},
	}
	for _, tc := range cases {
		if code := post(tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}

	var proj bytes.Buffer
	if err := tracefile.WriteProjections(&proj, jacobi.MustTrace(jacobi.DefaultConfig())); err != nil {
		t.Fatal(err)
	}
	digest := upload(t, ts, proj.Bytes())
	mustGet(t, ts, "/v1/traces/"+digest+"/structure")
}

// TestZooEndToEndMatrix: every conformance-zoo workload — the six paper
// proxies and the three adversarial generators — uploads and analyzes
// through the full charmd stack, and the cache-hit response is
// byte-identical to the extraction response. This keeps the serving layer
// honest on exactly the traces the differential harness certifies.
func TestZooEndToEndMatrix(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir(), Parallelism: 2})
	for _, w := range conformance.Zoo() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tracefile.WriteBinary(&buf, w.MustGen()); err != nil {
				t.Fatal(err)
			}
			digest := upload(t, ts, buf.Bytes())
			path := "/v1/traces/" + digest + "/structure"
			if w.Opts.ProcessOrderDeps {
				path += "?preset=mp"
			}
			miss := mustGet(t, ts, path)
			if hit := mustGet(t, ts, path); !bytes.Equal(hit, miss) {
				t.Error("cache-hit response differs from extraction response")
			}
		})
	}
}
