package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"time"

	"charmtrace/internal/resultcache"
	"charmtrace/internal/telemetry"
)

// This file is charmd's request-correlation and exposition layer: the
// request-ID contract, the structured access log, the Prometheus endpoint
// and the live flight listing. Everything here observes; none of it changes
// response bytes (the determinism invariant the cache depends on).

// maxRequestIDLen bounds an inbound X-Request-ID; anything longer (or
// containing non-printable bytes) is replaced rather than echoed.
const maxRequestIDLen = 128

// requestIDFor honors an inbound X-Request-ID so charmd joins a caller's
// existing correlation chain, and mints a fresh one otherwise. The accepted
// charset is printable ASCII — an uncontrolled value is never echoed into a
// response header or a log line.
func requestIDFor(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id != "" && len(id) <= maxRequestIDLen {
		ok := true
		for i := 0; i < len(id); i++ {
			if id[i] < 0x21 || id[i] > 0x7e {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// logAccess emits one structured line per completed request: correlation id,
// route, digest and cache outcome when the request had them, status, wall
// latency and bytes on the wire. 5xx log at error, 4xx at warn (429 lines
// carry the Retry-After hint the client saw), everything else at info.
func (s *Server) logAccess(r *http.Request, route, reqID string, outcome *resultcache.OutcomeRecorder, sw *statusWriter, elapsed time.Duration) {
	log := s.cfg.AccessLog
	if log == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 10)
	attrs = append(attrs,
		slog.String("id", reqID),
		slog.String("route", route),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
	)
	if s.cfg.NodeName != "" {
		attrs = append(attrs, slog.String("node", s.cfg.NodeName))
	}
	if hop := r.Header.Get("X-Charmd-Hop"); hop != "" {
		attrs = append(attrs, slog.String("hop", hop))
	}
	if d := r.PathValue("digest"); d != "" {
		attrs = append(attrs, slog.String("digest", d))
	}
	if o := outcome.Outcome(); o != "" {
		attrs = append(attrs, slog.String("cache", o))
	}
	attrs = append(attrs,
		slog.Int("status", sw.code),
		slog.Float64("latency_ms", float64(elapsed.Nanoseconds())/1e6),
		slog.Int64("bytes", sw.bytes),
	)
	if sw.code == http.StatusTooManyRequests {
		if ra := sw.Header().Get("Retry-After"); ra != "" {
			attrs = append(attrs, slog.String("retry_after", ra))
		}
	}
	level := slog.LevelInfo
	switch {
	case sw.code >= 500:
		level = slog.LevelError
	case sw.code >= 400:
		level = slog.LevelWarn
	}
	log.LogAttrs(context.Background(), level, "request", attrs...)
}

// handleProm serves the registry — the same one behind /debug/stats — in
// the Prometheus text exposition format, followed by the Go runtime
// families and, when self-tracing is on, the collector's depth and drop
// counters.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.PromContentType)
	var labels map[string]string
	if s.cfg.NodeName != "" {
		labels = map[string]string{"node": s.cfg.NodeName}
	}
	telemetry.WritePrometheusLabels(w, s.reg, labels)
	telemetry.WriteGoRuntimeMetrics(w)
	if s.collector != nil {
		telemetry.PromGaugeLabels(w, "charmd_selftrace_spans",
			"spans retained by the self-trace collector", float64(s.collector.Len()), labels)
		telemetry.PromCounterLabels(w, "charmd_selftrace_dropped_spans_total",
			"spans discarded by the self-trace retention cap", float64(s.collector.Dropped()), labels)
	}
}

// handleFlights lists every in-progress extraction flight with its live
// per-stage progress — which trace, which option fingerprint, how far the
// current stage has scanned, and how many requests are waiting on it.
func (s *Server) handleFlights(w http.ResponseWriter, r *http.Request) {
	flights := s.cache.Flights()
	if flights == nil {
		flights = []resultcache.FlightInfo{}
	}
	writeJSON(w, struct {
		Node    string                   `json:"node,omitempty"`
		Flights []resultcache.FlightInfo `json:"flights"`
	}{Node: s.cfg.NodeName, Flights: flights})
}

// resetRequested implements the ?reset=1 guard shared by /debug/stats and
// /debug/selftrace: resetting live counters on a shared server is a
// debugging action, so it requires -debug-unsafe. When requested but not
// allowed it has already written the 403 and the handler must return.
func (s *Server) resetRequested(w http.ResponseWriter, r *http.Request) (requested, allowed bool) {
	if r.URL.Query().Get("reset") != "1" {
		return false, false
	}
	if !s.cfg.DebugUnsafe {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		json.NewEncoder(w).Encode(map[string]string{"error": "reset requires charmd -debug-unsafe"})
		return true, false
	}
	return true, true
}
