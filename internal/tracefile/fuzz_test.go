package tracefile

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
)

// FuzzRead ensures the parser never panics and that anything it accepts is
// a valid, indexed trace that round-trips.
func FuzzRead(f *testing.F) {
	f.Add("charmtrace 1\npe 1\n")
	f.Add("charmtrace 1\npe 2\nchare 0 -1 -1 false 0 solo\n")
	f.Add("charmtrace 1\npe 1\nentry 0 -1 false e\nchare 0 -1 -1 false 0 c\nblock 0 0 0 0 0 10\nev 0 send 5 0 0 3 0\n")
	f.Add("charmtrace 1\npe 1\nidle 0 5 10\n")
	var buf bytes.Buffer
	if err := Write(&buf, jacobi.MustTrace(jacobi.DefaultConfig())); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if !tr.Indexed() {
			t.Fatal("accepted trace not indexed")
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(tr2.Events) != len(tr.Events) || len(tr2.Blocks) != len(tr.Blocks) {
			t.Fatal("round trip changed the trace")
		}
	})
}

// FuzzReadAuto drives the format-detecting entry points the charmd upload
// handler feeds untrusted bytes into. The contract under fuzz: ReadAuto
// never panics, every rejection carries the ErrMalformed tag (so the server
// can answer 400, never 500), ReadAuto and ReadAutoDigest agree on
// accept/reject, and an accepted input digests to exactly its content
// address.
func FuzzReadAuto(f *testing.F) {
	// Golden traces, both serializations. The scaled-down config keeps the
	// corpus entries small, which is what keeps single-worker mutation and
	// minimization cheap; the full-size default config exercises realistic
	// section sizes.
	small := jacobi.DefaultConfig()
	small.Iterations, small.Grid = 2, 2
	var bin, txt, binSmall bytes.Buffer
	tr := jacobi.MustTrace(jacobi.DefaultConfig())
	if err := WriteBinary(&bin, tr); err != nil {
		f.Fatal(err)
	}
	if err := Write(&txt, tr); err != nil {
		f.Fatal(err)
	}
	if err := WriteBinary(&binSmall, jacobi.MustTrace(small)); err != nil {
		f.Fatal(err)
	}
	var proj bytes.Buffer
	if err := WriteProjections(&proj, jacobi.MustTrace(small)); err != nil {
		f.Fatal(err)
	}
	f.Add(binSmall.Bytes())
	f.Add(bin.Bytes())
	f.Add(txt.Bytes())
	f.Add(proj.Bytes())

	// Malformed neighborhoods: each known rejection class seeds the corpus
	// so mutation explores the boundaries around it.
	badMagic := append([]byte{}, bin.Bytes()...)
	badMagic[0] = 'X'
	f.Add(badMagic)
	badVersion := append([]byte{}, bin.Bytes()...)
	badVersion[4] = 0x7f
	f.Add(badVersion)
	f.Add(bin.Bytes()[:10]) // truncated mid-header
	f.Add([]byte{})
	f.Add([]byte("not a trace\n"))
	f.Add([]byte("charmtrace 999\n"))
	f.Add([]byte("charmtrace 1\npe 1\nbogus 1 2 3\n"))         // unknown record
	f.Add([]byte("charmtrace 1\npe 1\nblock 0 0\n"))           // short record
	f.Add([]byte("charmtrace 1\npe 1\nev 0 send 5 0 0 3 0\n")) // event into unknown block
	f.Add([]byte("PROJECTIONS-REC"))                           // truncated projections magic
	f.Add([]byte("PROJECTIONS-RECORD 1\n"))                    // header, no sections
	f.Add([]byte("PROJECTIONS-RECORD 99\n"))                   // unsupported version
	projTrunc := proj.Bytes()[:len(proj.Bytes())/2]            // truncated mid-log
	f.Add(projTrunc)
	f.Add(append([]byte("PROJECTIONS-RECORD 1\n"), bin.Bytes()...)) // projections header, binary body

	f.Fuzz(func(t *testing.T, data []byte) {
		tr1, err1 := ReadAuto(bytes.NewReader(data))
		tr2, digest, err2 := ReadAutoDigest(bytes.NewReader(data))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("ReadAuto err=%v but ReadAutoDigest err=%v on the same input", err1, err2)
		}
		if err1 != nil {
			if !errors.Is(err1, ErrMalformed) {
				t.Fatalf("ReadAuto rejection %v does not carry ErrMalformed", err1)
			}
			if !errors.Is(err2, ErrMalformed) {
				t.Fatalf("ReadAutoDigest rejection %v does not carry ErrMalformed", err2)
			}
			return
		}
		if digest != DigestBytes(data) {
			t.Fatalf("streamed digest %s != DigestBytes %s", digest, DigestBytes(data))
		}
		if !tr1.Indexed() || !tr2.Indexed() {
			t.Fatal("accepted trace not indexed")
		}
		if len(tr1.Events) != len(tr2.Events) || len(tr1.Blocks) != len(tr2.Blocks) ||
			len(tr1.Chares) != len(tr2.Chares) || tr1.NumPE != tr2.NumPE {
			t.Fatal("ReadAuto and ReadAutoDigest decoded different traces")
		}
	})
}
