package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // cycle 0-1-2
	g.AddEdge(2, 3)
	comp, n := g.SCC()
	if n != 2 {
		t.Fatalf("ncomp = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("cycle nodes in different components: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Fatalf("node 3 merged into cycle: %v", comp)
	}
	// Reverse topological numbering: 0-1-2 reaches 3, so comp(0) > comp(3).
	if comp[0] <= comp[3] {
		t.Fatalf("component numbering not reverse-topological: %v", comp)
	}
}

func TestSCCSelfLoopAndSingletons(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 1)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("ncomp = %d, want 3 (self-loop is its own SCC)", n)
	}
	if comp[0] == comp[1] || comp[1] == comp[2] || comp[0] == comp[2] {
		t.Fatalf("independent nodes merged: %v", comp)
	}
}

func TestSCCDeepChainNoStackOverflow(t *testing.T) {
	const n = 200000
	g := New(n)
	for i := int32(0); i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	_, ncomp := g.SCC()
	if ncomp != n {
		t.Fatalf("ncomp = %d, want %d", ncomp, n)
	}
}

func TestTopoSortDAG(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(2, 4)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("DAG reported cyclic")
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for u := int32(0); u < 5; u++ {
		for _, v := range g.Adj[u] {
			if pos[u] >= pos[v] {
				t.Fatalf("edge %d->%d violates topo order %v", u, v, order)
			}
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, ok := g.TopoSort(); ok {
		t.Fatal("cycle not detected")
	}
}

func TestLeaps(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 2 -> 3, 4 isolated
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	leap, maxLeap := g.Leaps()
	want := []int32{0, 1, 1, 2, 0}
	for i, w := range want {
		if leap[i] != w {
			t.Fatalf("leap[%d] = %d, want %d (all: %v)", i, leap[i], w, leap)
		}
	}
	if maxLeap != 2 {
		t.Fatalf("maxLeap = %d, want 2", maxLeap)
	}
}

func TestLeapsLongestPathNotShortest(t *testing.T) {
	// 0 -> 3 directly, and 0 -> 1 -> 2 -> 3: leap(3) must be 3, not 1.
	g := New(4)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	leap, _ := g.Leaps()
	if leap[3] != 3 {
		t.Fatalf("leap[3] = %d, want 3 (maximum distance)", leap[3])
	}
}

func TestLeapsPanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.Leaps()
}

func TestCondense(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	comp, n := g.SCC()
	cg, size := g.Condense(comp, n)
	if cg.N() != 3 {
		t.Fatalf("condensation nodes = %d, want 3", cg.N())
	}
	if size[comp[0]] != 2 {
		t.Fatalf("component of 0 size = %d, want 2", size[comp[0]])
	}
	// Edges 1->2 and 0->2 must be deduplicated into one.
	if got := len(cg.Adj[comp[0]]); got != 1 {
		t.Fatalf("condensed out-degree of {0,1} = %d, want 1 (dedup)", got)
	}
	if _, ok := cg.TopoSort(); !ok {
		t.Fatal("condensation not acyclic")
	}
}

func TestSourcesAndReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	src := g.Sources()
	if len(src) != 1 || src[0] != 0 {
		t.Fatalf("Sources = %v, want [0]", src)
	}
	r := g.Reverse()
	rsrc := r.Sources()
	if len(rsrc) != 1 || rsrc[0] != 2 {
		t.Fatalf("reverse Sources = %v, want [2]", rsrc)
	}
}

// randomGraph builds a random digraph with n nodes and m edges.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	g := New(n)
	for i := 0; i < m; i++ {
		g.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return g
}

// TestSCCCondensationAlwaysAcyclic is the core property: condensing any
// digraph by its SCCs yields a DAG, and nodes in one component are mutually
// reachable.
func TestSCCCondensationAlwaysAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(4*n))
		comp, ncomp := g.SCC()
		cg, _ := g.Condense(comp, ncomp)
		_, ok := cg.TopoSort()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSCCReverseTopoNumbering verifies the documented numbering property on
// random graphs: for every edge u->v across components, comp(u) > comp(v).
func TestSCCReverseTopoNumbering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(4*n))
		comp, _ := g.SCC()
		for u := range g.Adj {
			for _, v := range g.Adj[u] {
				if comp[u] != comp[v] && comp[u] <= comp[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSCCMutualReachability verifies with a brute-force reachability check
// that SCC grouping matches mutual reachability on small random graphs.
func TestSCCMutualReachability(t *testing.T) {
	reach := func(g *Graph) [][]bool {
		n := g.N()
		r := make([][]bool, n)
		for i := range r {
			r[i] = make([]bool, n)
			// BFS from i.
			queue := []int32{int32(i)}
			r[i][i] = true
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, v := range g.Adj[u] {
					if !r[i][v] {
						r[i][v] = true
						queue = append(queue, v)
					}
				}
			}
		}
		return r
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := randomGraph(rng, n, rng.Intn(3*n))
		comp, _ := g.SCC()
		r := reach(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				mutual := r[i][j] && r[j][i]
				if mutual != (comp[i] == comp[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
