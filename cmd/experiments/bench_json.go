package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/mergetree"
	"charmtrace/internal/core"
	"charmtrace/internal/lod"
	"charmtrace/internal/query"
	"charmtrace/internal/resultcache"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
)

// runBenchJSON runs the extraction benchmark suite behind -bench-json and
// writes the results in the versioned BenchExport schema. It covers the two
// parallelism-sensitive benchmarks of the repo's bench_test.go — the Figure
// 10 merge-tree extraction and the ExtractBatch multi-run shape — each at
// worker counts 1, 2 and 4, so successive runs can be compared
// machine-readably (the BENCH_extract.json artifact).
func runBenchJSON(path string) error {
	mt := mergetree.MustTrace(mergetree.DefaultConfig())
	batch := make([]*trace.Trace, 8)
	for i := range batch {
		cfg := jacobi.DefaultConfig()
		cfg.Grid = 8
		cfg.Seed = int64(i + 1)
		batch[i] = jacobi.MustTrace(cfg)
	}

	e := telemetry.NewBenchExport("experiments")
	for _, par := range []int{1, 2, 4} {
		opt := core.MessagePassingOptions()
		opt.Parallelism = par
		name := fmt.Sprintf("Fig10MergeTree/par=%d", par)
		fmt.Printf("  %-28s", name)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Extract(mt, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		e.Add(name, r.N, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		fmt.Printf(" %12d ns/op  (%d iterations)\n", r.NsPerOp(), r.N)
	}
	for _, par := range []int{1, 2, 4} {
		opt := core.DefaultOptions()
		opt.Parallelism = par
		name := fmt.Sprintf("ExtractBatch/par=%d", par)
		fmt.Printf("  %-28s", name)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ExtractBatch(batch, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		e.Add(name, r.N, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		fmt.Printf(" %12d ns/op  (%d iterations)\n", r.NsPerOp(), r.N)
	}
	if err := runServeBench(e); err != nil {
		return err
	}
	if err := runQueryBench(e, mt); err != nil {
		return err
	}
	if err := runLodBench(e, mt); err != nil {
		return err
	}
	if err := e.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}

// runQueryBench measures the structure query engine on the merge-tree
// trace: building the per-structure index, a cold query (index built per
// request — what serving without the cached index would cost), the same
// query over a prebuilt index (the steady state behind charmd's per-entry
// index cache), and paging through the filtered result cursor by cursor.
// The cold/indexed gap is what the index cache buys.
func runQueryBench(e *telemetry.BenchExport, mt *trace.Trace) error {
	opt := core.MessagePassingOptions()
	s, err := core.Extract(mt, opt)
	if err != nil {
		return err
	}
	// The repeat query is a typical interactive slice: a few chares over a
	// 32-step window. Indexed, it is a handful of binary searches; cold, it
	// pays the full index build first.
	maxStep := s.MaxStep()
	chares := make([]int32, 0, 8)
	for i := 0; i < 8 && i < len(s.Trace.Chares); i++ {
		chares = append(chares, int32(i*len(s.Trace.Chares)/8))
	}
	from := maxStep / 4
	to := from + 32
	if to > maxStep {
		to = maxStep
	}
	spec := query.Spec{
		Select: query.SelectSteps,
		Filter: query.Filter{Chares: chares, Steps: &query.StepRange{From: from, To: to}},
	}
	ctx := context.Background()

	run := func(name string, bench func(b *testing.B)) {
		fmt.Printf("  %-28s", name)
		r := testing.Benchmark(bench)
		e.Add(name, r.N, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		fmt.Printf(" %12d ns/op  (%d iterations)\n", r.NsPerOp(), r.N)
	}

	run("Query/index-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			query.BuildIndex(s)
		}
	})
	run("Query/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.Run(ctx, query.BuildIndex(s), spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	idx := query.BuildIndex(s)
	run("Query/indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.Run(ctx, idx, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("Query/paged", func(b *testing.B) {
		paged := spec
		paged.Limit = 64
		for i := 0; i < b.N; i++ {
			paged.Cursor = ""
			for {
				res, err := query.Run(ctx, idx, paged)
				if err != nil {
					b.Fatal(err)
				}
				if res.NextCursor == "" {
					break
				}
				paged.Cursor = res.NextCursor
			}
		}
	})
	return nil
}

// runLodBench measures the level-of-detail aggregation layer on the
// merge-tree structure: building the mip-pyramid (what the cache's aux
// slot pays once per entry), a cold interactive request (pyramid built per
// request plus the resolution=64 query and its JSON encoding), and the
// same request over the cached pyramid (charmd's steady state). The
// cold/cached gap is what caching the pyramid beside the index buys.
func runLodBench(e *telemetry.BenchExport, mt *trace.Trace) error {
	s, err := core.Extract(mt, core.MessagePassingOptions())
	if err != nil {
		return err
	}
	sp := lod.Spec{Resolution: 64}

	run := func(name string, bench func(b *testing.B)) {
		fmt.Printf("  %-28s", name)
		r := testing.Benchmark(bench)
		e.Add(name, r.N, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		fmt.Printf(" %12d ns/op  (%d iterations)\n", r.NsPerOp(), r.N)
	}

	run("Lod/build-pyramid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lod.Build(s, nil)
		}
	})
	run("Lod/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := lod.Build(s, nil).Query(sp, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := json.Marshal(out); err != nil {
				b.Fatal(err)
			}
		}
	})
	p := lod.Build(s, nil)
	run("Lod/cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := p.Query(sp, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := json.Marshal(out); err != nil {
				b.Fatal(err)
			}
		}
	})
	return nil
}

// runServeBench measures the content-addressed result cache behind
// cmd/charmd in its three serving regimes: a cold miss (full extraction
// plus the disk write), a memory hit (the steady state of an interactive
// session), and a disk hit (the first query after a restart, decoding the
// stored structure instead of re-extracting). The hit/miss gap is the
// entire value proposition of the cache, so it is recorded alongside the
// extraction benchmarks in BENCH_extract.json.
func runServeBench(e *telemetry.BenchExport) error {
	tr := jacobi.MustTrace(jacobi.DefaultConfig())
	var buf bytes.Buffer
	if err := tracefile.WriteBinary(&buf, tr); err != nil {
		return err
	}
	digest := tracefile.DigestBytes(buf.Bytes())
	opt := core.DefaultOptions()
	ctx := context.Background()

	run := func(name string, bench func(b *testing.B)) {
		fmt.Printf("  %-28s", name)
		r := testing.Benchmark(bench)
		e.Add(name, r.N, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		fmt.Printf(" %12d ns/op  (%d iterations)\n", r.NsPerOp(), r.N)
	}

	run("Serve/miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "charmd-bench")
			if err != nil {
				b.Fatal(err)
			}
			c, err := resultcache.New(resultcache.Config{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := c.Get(ctx, digest, tr, opt); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	})

	dir, err := os.MkdirTemp("", "charmd-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	warm, err := resultcache.New(resultcache.Config{Dir: dir})
	if err != nil {
		return err
	}
	if _, err := warm.Get(ctx, digest, tr, opt); err != nil {
		return err
	}
	run("Serve/hit-mem", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := warm.Get(ctx, digest, tr, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("Serve/hit-disk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A fresh cache over the primed directory: cold memory, warm disk
			// — the post-restart regime.
			c, err := resultcache.New(resultcache.Config{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Get(ctx, digest, tr, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	return nil
}
