package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
)

// TestTelemetryFlagRegistration: NewTelemetry binds the full observability
// flag set, NewProfiling only the pprof pair.
func TestTelemetryFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	NewTelemetry("x", fs)
	for _, name := range []string{"stats-json", "self-trace", "cpuprofile", "memprofile"} {
		if fs.Lookup(name) == nil {
			t.Errorf("NewTelemetry did not register -%s", name)
		}
	}
	fs = flag.NewFlagSet("y", flag.ContinueOnError)
	NewProfiling("y", fs)
	if fs.Lookup("stats-json") != nil || fs.Lookup("self-trace") != nil {
		t.Error("NewProfiling registered extraction-only flags")
	}
	if fs.Lookup("cpuprofile") == nil || fs.Lookup("memprofile") == nil {
		t.Error("NewProfiling did not register the pprof flags")
	}
}

// TestTelemetryLifecycle runs the full Apply/Close cycle the commands use
// and validates both sinks through their schema readers.
func TestTelemetryLifecycle(t *testing.T) {
	dir := t.TempDir()
	tele := &Telemetry{
		Tool:      "cli-test",
		StatsJSON: filepath.Join(dir, "stats.json"),
		SelfTrace: filepath.Join(dir, "trace.json"),
	}
	tele.labels = map[string]string{"workload": "jacobi"}

	tr, opt, err := Generate("jacobi", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tele.Start(); err != nil {
		t.Fatal(err)
	}
	tele.Apply(&opt)
	if opt.Telemetry == nil || opt.Metrics == nil {
		t.Fatal("Apply did not attach the sinks")
	}
	if _, err := core.Extract(tr, opt); err != nil {
		t.Fatal(err)
	}
	if err := tele.Close(); err != nil {
		t.Fatal(err)
	}

	stats, err := telemetry.ReadStatsFile(tele.StatsJSON)
	if err != nil {
		t.Fatalf("stats export does not round-trip: %v", err)
	}
	if stats.Tool != "cli-test" || stats.Labels["workload"] != "jacobi" {
		t.Errorf("stats header = %q/%v", stats.Tool, stats.Labels)
	}
	if len(stats.Stages) == 0 || stats.SpanCount == 0 {
		t.Errorf("stats missing pipeline data: %d stages, %d spans", len(stats.Stages), stats.SpanCount)
	}

	f, err := os.Open(tele.SelfTrace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadChromeTrace(f)
	if err != nil {
		t.Fatalf("self-trace is not valid Chrome trace-event JSON: %v", err)
	}
	sawExtract := false
	for _, e := range events {
		if e.Ph == "X" && e.Name == "extract" {
			sawExtract = true
		}
	}
	if !sawExtract {
		t.Error("self-trace has no extract root span")
	}
}

// TestTelemetryInactive: with no sinks requested, Apply leaves Options
// untouched (the zero-overhead path) and Close is a no-op.
func TestTelemetryInactive(t *testing.T) {
	tele := &Telemetry{Tool: "cli-test", labels: map[string]string{}}
	var opt core.Options
	tele.Apply(&opt)
	if opt.Telemetry != nil || opt.Metrics != nil {
		t.Error("inactive Apply attached sinks")
	}
	if err := tele.Close(); err != nil {
		t.Errorf("inactive Close: %v", err)
	}
}

// TestTelemetrySinkWithoutRun: requesting -stats-json but never extracting
// is reported as an error, not an empty file.
func TestTelemetrySinkWithoutRun(t *testing.T) {
	dir := t.TempDir()
	tele := &Telemetry{Tool: "cli-test", StatsJSON: filepath.Join(dir, "s.json"), labels: map[string]string{}}
	err := tele.Close()
	if err == nil || !strings.Contains(err.Error(), "no extraction ran") {
		t.Errorf("Close = %v, want no-extraction error", err)
	}
}
