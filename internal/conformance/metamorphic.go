package conformance

import (
	"fmt"
	"math/rand"
	"sort"

	"charmtrace/internal/trace"
)

// This file implements the metamorphic transformations of the conformance
// harness: trace rewrites that, by the algorithm's own tie-breaking
// contract, must not change the recovered structure. The extraction
// pipeline breaks every tie by (virtual time, event ID) and uses processor
// numbers only as correlation keys, so
//
//   - renumbering processors bijectively,
//   - remapping all times through any monotone tie-preserving function, and
//   - relabeling event IDs while preserving the relative ID order of
//     equal-time events
//
// each must reproduce the structure exactly (the last one up to the event
// relabeling itself).

// Clone returns a deep, indexed copy of a trace. The copy shares nothing
// mutable with the original, so transformations can edit it freely.
func Clone(tr *trace.Trace) (*trace.Trace, error) {
	out := &trace.Trace{
		NumPE:   tr.NumPE,
		Chares:  append([]trace.Chare(nil), tr.Chares...),
		Entries: append([]trace.Entry(nil), tr.Entries...),
		Blocks:  append([]trace.Block(nil), tr.Blocks...),
		Events:  append([]trace.Event(nil), tr.Events...),
		Idles:   append([]trace.Idle(nil), tr.Idles...),
	}
	for i := range out.Blocks {
		out.Blocks[i].Events = append([]trace.EventID(nil), out.Blocks[i].Events...)
	}
	if err := out.Index(); err != nil {
		return nil, err
	}
	return out, nil
}

// RenumberPEs returns a copy of the trace with processors relabeled through
// perm (perm[old] = new), which must be a bijection on [0, NumPE). Idle
// records are re-sorted to the canonical (PE, Begin) order the trace
// builders emit, so the copy is byte-identical to a trace recorded with the
// new numbering in the first place.
func RenumberPEs(tr *trace.Trace, perm []trace.PE) (*trace.Trace, error) {
	if len(perm) != tr.NumPE {
		return nil, fmt.Errorf("conformance: perm has %d entries for %d PEs", len(perm), tr.NumPE)
	}
	seen := make([]bool, tr.NumPE)
	for _, p := range perm {
		if p < 0 || int(p) >= tr.NumPE || seen[p] {
			return nil, fmt.Errorf("conformance: perm is not a bijection on [0,%d)", tr.NumPE)
		}
		seen[p] = true
	}
	out, err := Clone(tr)
	if err != nil {
		return nil, err
	}
	for i := range out.Chares {
		out.Chares[i].Home = perm[out.Chares[i].Home]
	}
	for i := range out.Blocks {
		out.Blocks[i].PE = perm[out.Blocks[i].PE]
	}
	for i := range out.Events {
		out.Events[i].PE = perm[out.Events[i].PE]
	}
	for i := range out.Idles {
		out.Idles[i].PE = perm[out.Idles[i].PE]
	}
	sort.Slice(out.Idles, func(i, j int) bool {
		if out.Idles[i].PE != out.Idles[j].PE {
			return out.Idles[i].PE < out.Idles[j].PE
		}
		return out.Idles[i].Begin < out.Idles[j].Begin
	})
	if err := out.Index(); err != nil {
		return nil, err
	}
	return out, nil
}

// JitterTimes returns a copy of the trace with every timestamp remapped
// through a random monotone tie-preserving function: distinct times stay
// distinct and ordered, equal times stay equal, but every gap is resized.
// Phase boundaries therefore drift arbitrarily while all comparisons the
// pipeline can make come out the same.
func JitterTimes(tr *trace.Trace, rng *rand.Rand) (*trace.Trace, error) {
	out, err := Clone(tr)
	if err != nil {
		return nil, err
	}
	times := map[trace.Time]bool{}
	for _, b := range out.Blocks {
		times[b.Begin] = true
		times[b.End] = true
	}
	for _, ev := range out.Events {
		times[ev.Time] = true
	}
	for _, id := range out.Idles {
		times[id.Begin] = true
		times[id.End] = true
	}
	sorted := make([]trace.Time, 0, len(times))
	for t := range times {
		sorted = append(sorted, t)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	remap := make(map[trace.Time]trace.Time, len(sorted))
	cur := trace.Time(0)
	for _, t := range sorted {
		cur += 1 + trace.Time(rng.Int63n(997))
		remap[t] = cur
	}
	for i := range out.Blocks {
		out.Blocks[i].Begin = remap[out.Blocks[i].Begin]
		out.Blocks[i].End = remap[out.Blocks[i].End]
	}
	for i := range out.Events {
		out.Events[i].Time = remap[out.Events[i].Time]
	}
	for i := range out.Idles {
		out.Idles[i].Begin = remap[out.Idles[i].Begin]
		out.Idles[i].End = remap[out.Idles[i].End]
	}
	if err := out.Index(); err != nil {
		return nil, err
	}
	return out, nil
}

// PermuteEventIDs returns a copy of the trace with event IDs relabeled by a
// random permutation that preserves the relative ID order of events sharing
// a timestamp — the only ID order the pipeline's (time, ID) tie-break can
// observe. It also returns the permutation (perm[old] = new) so callers can
// compare per-event placements across the relabeling.
func PermuteEventIDs(tr *trace.Trace, rng *rand.Rand) (*trace.Trace, []trace.EventID, error) {
	out, err := Clone(tr)
	if err != nil {
		return nil, nil, err
	}
	n := len(out.Events)
	// Give every distinct timestamp a random rank, then lay events out by
	// (rank, old ID): equal-time events keep their relative ID order while
	// the ID space as a whole is scrambled across times.
	rank := map[trace.Time]int{}
	for _, ev := range out.Events {
		if _, ok := rank[ev.Time]; !ok {
			rank[ev.Time] = 0
		}
	}
	distinct := make([]trace.Time, 0, len(rank))
	for t := range rank {
		distinct = append(distinct, t)
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
	order := rng.Perm(len(distinct))
	for i, t := range distinct {
		rank[t] = order[i]
	}
	olds := make([]trace.EventID, n)
	for i := range olds {
		olds[i] = trace.EventID(i)
	}
	sort.Slice(olds, func(i, j int) bool {
		a, b := &out.Events[olds[i]], &out.Events[olds[j]]
		if rank[a.Time] != rank[b.Time] {
			return rank[a.Time] < rank[b.Time]
		}
		return olds[i] < olds[j]
	})
	perm := make([]trace.EventID, n)
	for newID, oldID := range olds {
		perm[oldID] = trace.EventID(newID)
	}
	events := make([]trace.Event, n)
	for oldID, ev := range out.Events {
		ev.ID = perm[oldID]
		events[perm[oldID]] = ev
	}
	out.Events = events
	for bi := range out.Blocks {
		for i, e := range out.Blocks[bi].Events {
			out.Blocks[bi].Events[i] = perm[e]
		}
	}
	if err := out.Index(); err != nil {
		return nil, nil, err
	}
	return out, perm, nil
}
