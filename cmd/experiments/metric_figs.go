package main

import (
	"fmt"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lassen"
	"charmtrace/internal/apps/mergetree"
	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
	"charmtrace/internal/trace"
)

func init() {
	register("fig10", "MPI merge tree, 1,024 processes: stepping without and with reordering", figMergeTree)
	register("fig12", "Jacobi 2D, 16 chares: idle experienced while waiting on the reduction", figIdle)
	register("fig14", "Jacobi 2D with a slow chare: processor imbalance per phase", figImbalance)
	register("fig15", "Jacobi 2D with a slow chare: differential duration singles it out", figDifferential)
	register("fig21", "LASSEN 8 chares: repeated high-differential events on the same chare", figLassenDiff8)
	register("fig22", "LASSEN 64 chares: peak differential duration ~1/4 of the 8-chare run", figLassenDiff64)
	register("fig23", "LASSEN: wavefront growth spreads high differential duration", figLassenSpread)
}

func figMergeTree(big bool) {
	cfg := mergetree.DefaultConfig()
	if !big {
		cfg.Procs = 256
		fmt.Println("  (256 processes; pass -big for the paper's 1,024)")
	}
	tr := must(mergetree.Trace(cfg))

	reordered := extract(tr, core.MessagePassingOptions())
	opt := core.MessagePassingOptions()
	opt.Reorder = false
	recorded := extract(tr, opt)

	ringMass := func(s *core.Structure) (int64, int32) {
		var sum int64
		var worst int32
		for e := range tr.Events {
			ev := &tr.Events[e]
			if ev.Kind != trace.Recv {
				continue
			}
			send := tr.Events[tr.SendOf(ev.Msg)]
			if int(tr.Chares[send.Chare].Index)/cfg.GroupSize == int(tr.Chares[ev.Chare].Index)/cfg.GroupSize {
				sum += int64(s.Step[e])
				if s.Step[e] > worst {
					worst = s.Step[e]
				}
			}
		}
		return sum, worst
	}
	reSum, reWorst := ringMass(reordered)
	recSum, recWorst := ringMass(recorded)
	// Count processes whose phase-1 receive is stepped AFTER their phase-2
	// receive — the events "forced to the right" in Figure 10(a).
	inverted := func(s *core.Structure) int {
		n := 0
		ringStep := make(map[trace.ChareID]int32)
		crossStep := make(map[trace.ChareID]int32)
		for e := range tr.Events {
			ev := &tr.Events[e]
			if ev.Kind != trace.Recv {
				continue
			}
			send := tr.Events[tr.SendOf(ev.Msg)]
			if int(tr.Chares[send.Chare].Index)/cfg.GroupSize == int(tr.Chares[ev.Chare].Index)/cfg.GroupSize {
				ringStep[ev.Chare] = s.Step[e]
			} else {
				crossStep[ev.Chare] = s.Step[e]
			}
		}
		for c, rs := range ringStep {
			if cs, ok := crossStep[c]; ok && rs > cs {
				n++
			}
		}
		return n
	}
	reInv, recInv := inverted(reordered), inverted(recorded)
	fmt.Printf("  phase-1 (ring) receive steps: recorded total %d (worst %d), reordered total %d (worst %d)\n",
		recSum, recWorst, reSum, reWorst)
	fmt.Printf("  processes with phase-1 receive stepped after phase-2: recorded %d, reordered %d\n",
		recInv, reInv)
	paperVsMeasured(
		"irregular receive order forces some early events to be stepped much later than their peers; reordering restores the parallel structure of the initial steps",
		fmt.Sprintf("recorded order leaves %d processes with inverted phases; reordering leaves %d and cuts the ring receives' step mass by %.1f%%",
			recInv, reInv, 100*float64(recSum-reSum)/float64(recSum)))
}

func figIdle(bool) {
	cfg := jacobi.DefaultConfig()
	cfg.SlowChare = 0 // one slow corner chare gates the reduction
	tr := must(jacobi.Trace(cfg))
	s := extract(tr, core.DefaultOptions())
	r := metrics.Compute(s)
	withIdle := 0
	for _, v := range r.IdleExperienced {
		if v > 0 {
			withIdle++
		}
	}
	fmt.Printf("  idle spans recorded: %d; events experiencing idle: %d; total idle experienced: %d ns\n",
		len(tr.Idles), withIdle, r.TotalIdleExperienced())
	paperVsMeasured(
		"tasks waiting on the reduction experience idle; blocks dependent on events after the idle do not",
		fmt.Sprintf("%d events carry idle-experienced totalling %d ns, all on blocks whose dependencies started before the idle ended",
			withIdle, r.TotalIdleExperienced()))
}

func slowJacobi() (*trace.Trace, *core.Structure, *metrics.Report, jacobi.Config) {
	cfg := jacobi.DefaultConfig()
	cfg.SlowChare = 5
	cfg.SlowIteration = 1
	tr := must(jacobi.Trace(cfg))
	s := extract(tr, core.DefaultOptions())
	return tr, s, metrics.Compute(s), cfg
}

func figImbalance(bool) {
	_, s, r, _ := slowJacobi()
	_, slowEvent := r.MaxDifferentialDuration()
	slowPhase := s.PhaseOf[slowEvent]
	fmt.Printf("  %-6s %-8s %-6s %s\n", "phase", "kind", "offset", "imbalance (ns)")
	for _, pi := range phasesByOffset(s) {
		kind := "app"
		if s.Phases[pi].Runtime {
			kind = "runtime"
		}
		mark := ""
		if pi == slowPhase {
			mark = "  <- contains the long event"
		}
		fmt.Printf("  %-6d %-8s %-6d %d%s\n", pi, kind, s.Phases[pi].Offset, r.PhaseImbalance[pi], mark)
	}
	paperVsMeasured(
		"the iteration with the long event shows greater imbalance than the one after it",
		fmt.Sprintf("phase %d (the long event's) carries the maximum imbalance %d ns",
			slowPhase, r.PhaseImbalance[slowPhase]))
}

func figDifferential(bool) {
	tr, s, r, cfg := slowJacobi()
	maxD, at := r.MaxDifferentialDuration()
	slow := tr.Chares[tr.Events[at].Chare]
	fmt.Printf("  max differential duration: %d ns at chare %s, global step %d\n",
		maxD, slow.Name, s.Step[at])
	fmt.Printf("  injected: chare %d slowed %dx in iteration %d (base compute %d ns)\n",
		cfg.SlowChare, cfg.SlowFactor, cfg.SlowIteration, cfg.Compute)
	paperVsMeasured(
		"one chare experiences a significantly longer compute block than its peers at the same logical step",
		fmt.Sprintf("differential duration singles out chare %d with %d ns excess (expected (factor-1)*compute = %d ns)",
			slow.Index, maxD, (int64(cfg.SlowFactor)-1)*int64(cfg.Compute)))
}

func lassenReports(iters int) (*metrics.Report, *metrics.Report, *core.Structure, *core.Structure) {
	coarse := lassen.DefaultConfig()
	coarse.Iterations = iters
	fine := lassen.FineConfig()
	fine.Iterations = iters
	sc := extract(must(lassen.CharmTrace(coarse)), core.DefaultOptions())
	sf := extract(must(lassen.CharmTrace(fine)), core.DefaultOptions())
	return metrics.Compute(sc), metrics.Compute(sf), sc, sf
}

func figLassenDiff8(bool) {
	rc, _, sc, _ := lassenReports(8)
	tr := sc.Trace
	// Per point-to-point phase, the chare carrying the max differential.
	fmt.Printf("  %-8s %-12s %s\n", "phase", "max diff", "chare")
	consistent := true
	var firstChare trace.ChareID = trace.NoChare
	for _, pi := range phasesByOffset(sc) {
		p := &sc.Phases[pi]
		if p.Runtime || len(p.Chares) < 2 {
			continue
		}
		var best trace.EventID = trace.NoEvent
		for _, e := range p.Events {
			if best == trace.NoEvent || rc.DifferentialDuration[e] > rc.DifferentialDuration[best] {
				best = e
			}
		}
		if best == trace.NoEvent || rc.DifferentialDuration[best] == 0 {
			continue
		}
		c := tr.Events[best].Chare
		fmt.Printf("  %-8d %-12d %s\n", pi, rc.DifferentialDuration[best], tr.Chares[c].Name)
		if firstChare == trace.NoChare {
			firstChare = c
		} else if c != firstChare {
			consistent = false
		}
	}
	paperVsMeasured(
		"a repeating pattern: the same events of the same chare carry the higher duration every iteration",
		fmt.Sprintf("max-differential chare identical across point-to-point phases: %v", consistent))
}

func figLassenDiff64(bool) {
	rc, rf, _, _ := lassenReports(16)
	maxC, _ := rc.MaxDifferentialDuration()
	maxF, _ := rf.MaxDifferentialDuration()
	fmt.Printf("  8-chare max differential:  %d ns\n", maxC)
	fmt.Printf("  64-chare max differential: %d ns\n", maxF)
	paperVsMeasured(
		"the 64-chare run exhibits a maximum differential duration one fourth that of the 8-chare run (the wavefront splits into smaller pieces)",
		fmt.Sprintf("ratio = %.1fx", float64(maxC)/float64(maxF)))
}

func figLassenSpread(bool) {
	rc, rf, sc, sf := lassenReports(16)
	spread := func(r *metrics.Report, s *core.Structure, threshold trace.Time) (int, int) {
		maxStep := s.MaxStep()
		early := map[trace.ChareID]bool{}
		late := map[trace.ChareID]bool{}
		for e := range s.Trace.Events {
			if r.DifferentialDuration[e] < threshold {
				continue
			}
			switch {
			case s.Step[e] < maxStep/3:
				early[s.Trace.Events[e].Chare] = true
			case s.Step[e] > 2*maxStep/3:
				late[s.Trace.Events[e].Chare] = true
			}
		}
		return len(early), len(late)
	}
	ce, cl := spread(rc, sc, 80)
	fe, fl := spread(rf, sf, 80)
	fmt.Printf("  8-chare:  chares with high differential — early third %d, late third %d\n", ce, cl)
	fmt.Printf("  64-chare: chares with high differential — early third %d, late third %d\n", fe, fl)
	peak := func(r *metrics.Report) trace.Time {
		var best trace.Time
		for _, d := range r.PhaseImbalance {
			if d > best {
				best = d
			}
		}
		return best
	}
	fmt.Printf("  imbalance: 8-chare total %d (peak phase %d); 64-chare total %d (peak phase %d)\n",
		rc.TotalImbalance(), peak(rc), rf.TotalImbalance(), peak(rf))
	paperVsMeasured(
		"as the wavefront propagates, more chares share the high differential duration; the 64-chare run has less than half as much imbalance overall",
		fmt.Sprintf("high-differential chares grow %d->%d (64-chare run); peak imbalance ratio %.1fx, total ratio %.2fx",
			fe, fl, float64(peak(rc))/float64(peak(rf)),
			float64(rc.TotalImbalance())/float64(rf.TotalImbalance())))
}
