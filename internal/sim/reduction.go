package sim

import (
	"fmt"

	"charmtrace/internal/trace"
)

// ReduceOp combines contribution values.
type ReduceOp int

// Supported reduction operators.
const (
	Sum ReduceOp = iota
	Max
	Min
)

func (op ReduceOp) combine(a, b float64) float64 {
	switch op {
	case Sum:
		return a + b
	case Max:
		if a > b {
			return a
		}
		return b
	case Min:
		if a < b {
			return a
		}
		return b
	default:
		panic(fmt.Sprintf("sim: unknown ReduceOp %d", int(op)))
	}
}

// Callback names where a completed reduction delivers its result.
type Callback struct {
	bcast bool
	entry EntryRef
	to    ChareRef
}

// BroadcastCallback delivers the result to every element of the entry's
// array (like a Charm++ broadcast callback).
func BroadcastCallback(entry EntryRef) Callback {
	return Callback{bcast: true, entry: entry}
}

// SendCallback delivers the result to a single chare.
func SendCallback(to ChareRef, entry EntryRef) Callback {
	return Callback{to: to, entry: entry}
}

// Reduction is a reusable reduction over a chare array. Each element calls
// Ctx.Contribute once per generation; when every contribution of a
// generation has been combined across the per-PE CkReductionMgr tree, the
// callback fires with the combined value.
type Reduction struct {
	rt  *Runtime
	id  int
	arr *Array
	op  ReduceOp
	cb  Callback
	// genOf tracks each element's next contribution generation.
	genOf []int
	// member marks the contributing elements (all of them for a whole-array
	// reduction).
	member []bool
	// localExpect is the number of contributing elements per PE;
	// childExpect the number of tree children with non-empty subtrees.
	localExpect []int
	childExpect []int
}

// NewReduction registers a reduction over a whole array. The reduction
// tree is a binary heap over PEs rooted at PE 0.
func (rt *Runtime) NewReduction(arr *Array, op ReduceOp, cb Callback) *Reduction {
	members := make([]int, arr.Len())
	for i := range members {
		members[i] = i
	}
	return rt.newReduction(arr, members, op, cb)
}

// NewSectionReduction registers a reduction over an array section: only the
// section's members contribute, and the expected counts follow their
// placement.
func (rt *Runtime) NewSectionReduction(sec *Section, op ReduceOp, cb Callback) *Reduction {
	return rt.newReduction(sec.arr, sec.members, op, cb)
}

func (rt *Runtime) newReduction(arr *Array, members []int, op ReduceOp, cb Callback) *Reduction {
	if rt.ran {
		panic("sim: NewReduction after Run")
	}
	if len(members) == 0 {
		panic("sim: reduction over empty member set")
	}
	r := &Reduction{
		rt: rt, id: len(rt.reds), arr: arr, op: op, cb: cb,
		genOf:       make([]int, arr.Len()),
		member:      make([]bool, arr.Len()),
		localExpect: make([]int, rt.cfg.NumPE),
		childExpect: make([]int, rt.cfg.NumPE),
	}
	for _, m := range members {
		if r.member[m] {
			panic("sim: duplicate section member")
		}
		r.member[m] = true
		r.localExpect[arr.elems[m].home]++
	}
	subtree := make([]int, rt.cfg.NumPE)
	for p := rt.cfg.NumPE - 1; p >= 0; p-- {
		subtree[p] = r.localExpect[p]
		for _, c := range []int{2*p + 1, 2*p + 2} {
			if c < rt.cfg.NumPE && subtree[c] > 0 {
				subtree[p] += subtree[c]
				r.childExpect[p]++
			}
		}
	}
	rt.reds = append(rt.reds, r)
	return r
}

// contribMsg is a local contribution from an application chare to its PE's
// reduction manager.
type contribMsg struct {
	r   *Reduction
	val float64
	gen int
}

// upMsg carries a subtree's combined value up the reduction tree.
type upMsg struct {
	r   *Reduction
	val float64
	gen int
}

// Contribute performs this element's reduction contribution: a message to
// the local CkReductionMgr runtime chare. The send and its delivery are
// recorded only under the Section 5 tracing additions
// (Config.TraceReductions); stock tracing records only the explicit
// inter-processor reduction messages.
func (c *Ctx) Contribute(r *Reduction, v float64) {
	if c.elem.arr != r.arr {
		panic("sim: Contribute from a chare outside the reduction's array")
	}
	if !r.member[c.elem.idx] {
		panic("sim: Contribute from a chare outside the reduction's section")
	}
	gen := r.genOf[c.elem.idx]
	r.genOf[c.elem.idx]++
	// Contributions route to the manager of the chare's HOME processor so
	// the reduction tree's expected counts stay valid under migration.
	dst := c.rt.mgr.elems[c.elem.home]
	m := c.rt.tb.NewMsg()
	traced := c.rt.cfg.TraceReductions
	if traced {
		c.events = append(c.events, bufEvent{trace.Send, m, c.cursor})
	}
	env := &envelope{
		msg: m, traced: traced, to: dst, entry: 0, /* contribute */
		data: &contribMsg{r: r, val: v, gen: gen}, from: c.elem.chare,
	}
	c.sent = append(c.sent, env)
	c.rt.eng.deliver(c.cursor+c.rt.latency(c.elem.pe, dst.pe), dst.pe, env)
}

// genKey identifies one generation of one reduction on one PE.
type genKey struct {
	red int
	gen int
}

// genState accumulates one generation on one PE's manager.
type genState struct {
	val       float64
	have      bool
	localSeen int
	childSeen int
	chain     trace.MsgID // synthetic §5 dependency from the previous manager block
	haveChain bool
}

// mgrOverhead is the virtual cost of one reduction-manager block.
const mgrOverhead = 20

// mgrHandle processes both local contributions and subtree messages on a
// CkReductionMgr chare.
func mgrHandle(ctx *Ctx, m Message) {
	if ctx.elem.state == nil {
		ctx.elem.state = make(map[genKey]*genState)
	}
	states := ctx.elem.state.(map[genKey]*genState)
	var r *Reduction
	var val float64
	var gen int
	local := false
	switch p := m.Data.(type) {
	case *contribMsg:
		r, val, gen, local = p.r, p.val, p.gen, true
	case *upMsg:
		r, val, gen = p.r, p.val, p.gen
		// Inter-processor reduction messages are always recorded, so their
		// receiving blocks are traced even without the §5 additions.
		ctx.force = true
	default:
		panic("sim: unexpected reduction manager payload")
	}
	key := genKey{r.id, gen}
	gs := states[key]
	if gs == nil {
		gs = &genState{}
		states[key] = gs
	}
	if gs.have {
		gs.val = r.op.combine(gs.val, val)
	} else {
		gs.val, gs.have = val, true
	}
	if local {
		gs.localSeen++
	} else {
		gs.childSeen++
	}

	traceRed := ctx.rt.cfg.TraceReductions
	pe := ctx.elem.pe
	if traceRed && gs.haveChain {
		// Section 5: the synthetic internal dependency chaining this
		// manager block to the previous one of the same generation.
		ctx.events = append(ctx.events, bufEvent{trace.Recv, gs.chain, ctx.cursor})
		gs.haveChain = false
	}
	ctx.Compute(mgrOverhead)

	if gs.localSeen < r.localExpect[pe] || gs.childSeen < r.childExpect[pe] {
		if traceRed {
			gs.chain = ctx.rt.tb.NewMsg()
			gs.haveChain = true
			ctx.events = append(ctx.events, bufEvent{trace.Send, gs.chain, ctx.cursor})
		}
		return
	}
	// Subtree complete on this PE.
	delete(states, key)
	ctx.force = true
	if pe == 0 {
		result := &ReduceResult{Value: gs.val, Gen: gen}
		if r.cb.bcast {
			ctx.Broadcast(r.cb.entry, result)
		} else {
			ctx.Send(r.cb.to, r.cb.entry, result)
		}
		return
	}
	parent := ctx.rt.mgr.elems[(pe-1)/2]
	msg := ctx.rt.tb.NewMsg()
	ctx.events = append(ctx.events, bufEvent{trace.Send, msg, ctx.cursor})
	env := &envelope{
		msg: msg, traced: true, to: parent, entry: 1, /* reduceUp */
		data: &upMsg{r: r, val: gs.val, gen: gen}, from: ctx.elem.chare,
	}
	ctx.sent = append(ctx.sent, env)
	ctx.rt.eng.deliver(ctx.cursor+ctx.rt.latency(pe, parent.pe), parent.pe, env)
}
