package core

import (
	"charmtrace/internal/partition"
	"charmtrace/internal/trace"
)

// extractArena is the per-extraction scratch allocator. Every pipeline
// stage that used to allocate per-round or per-phase working state (maps,
// per-partition slices, Kahn queues) instead borrows flat buffers from
// here. Buffers are sized once against the trace's event/chare/block counts
// and reused round after round; set-valued state is epoch-marked rather
// than cleared, so resetting between rounds costs one counter increment.
//
// The arena is created with the atoms decomposition and dies with the
// extraction — nothing in it is referenced by the returned Structure, so an
// arena bug cannot leak state between extractions. Sequential stages share
// the singleton buffers; the parallel stages (overlap scan, phase ordering)
// borrow one laneScratch per worker lane, and the shared per-event arrays
// are only ever indexed by events of the worker's own phase (phases are
// disjoint event sets).
type extractArena struct {
	nEvents, nChares, nBlocks int

	// buildPartInfo output, reused across enforce rounds.
	info partInfos

	// inferDependencies: flattened (chare, event, part) source rows.
	srcChare []trace.ChareID
	srcEvent []trace.EventID
	srcPart  []int32
	srcOrd   []int32

	// leapMerge: (chare, kind) -> representative atom, epoch-guarded.
	// Slot layout: [0,nChares) application, [nChares,2*nChares) runtime.
	seenAtom  []partition.ID
	seenMark  []int32
	seenEpoch int32

	// enforceCharePaths.
	lastLeap     []int32 // chare -> nearest later leap containing it
	coveredMark  []int32
	coveredEpoch int32
	wantMark     []int32
	wantEpoch    int32
	missChare    []trace.ChareID
	missLeap     []int32
	missOrd      []int32

	// fixChareCollision: per-chare phase spans, counting-sorted by chare.
	spanOff   []int32
	spanCur   []int32
	spanPhase []int32
	spanLo    []int32
	spanHi    []int32
	spanOrd   []int32

	// Ordering-stage per-event arrays, shared across phases (disjoint event
	// sets; each cell is written by its phase before being read).
	timeKey []int64 // event -> Time*2 + kind: one compare replaces timeOrderLess
	stepKey []int64 // event -> LocalStep<<32 | chare, for the output sort
	w       []int32
	fragOf  []int32 // event -> fragment index within its phase
	place   []int32 // event -> fragment placement order
	pos     []int32 // event -> position within its fragment
	sendDep []trace.EventID
	indeg   []int32
	adjOff  []int32 // event -> adjacency region start (stepPhase)
	adjCur  []int32 // event -> adjacency region end / fill cursor

	// Per-worker-lane scratch, created on demand.
	lanes []*laneScratch
}

// partInfos is the struct-of-arrays replacement for the old per-partition
// map pair: per (partition, chare) earliest events aligned with the view's
// sorted chare rows, per-partition earliest source times reduced per PE,
// and per-partition minima. All rows live in flat buffers indexed through
// chareOff.
type partInfos struct {
	chareOff  []int32         // nParts+1: part pi's row is [chareOff[pi], chareOff[pi+1])
	initEvent []trace.EventID // aligned with v.Parts[pi].Chares
	minTime   []trace.Time
	src       []peTime // per part: sources sorted by PE, region [chareOff[pi], srcEnd[pi])
	srcEnd    []int32
}

// peTime is one partition-starting source: the earliest source time on one
// processor.
type peTime struct {
	pe trace.PE
	t  trace.Time
}

// laneScratch is the working state of one ordering-stage worker lane. Block-
// and chare-indexed tables are epoch-marked: bumping epoch invalidates the
// whole table in O(1) when the lane moves to its next phase or leap.
type laneScratch struct {
	epoch int32

	// Overlap scan (enforceRound): chare -> first partition at this leap.
	seenPart []int32
	seenMark []int32
	dedup    map[int64]struct{}

	// w-clock (phaseW): last w per canonical serial block, max receive w
	// per chare timeline.
	lastW       []int32
	lastWMark   []int32
	maxRecvW    []int32
	maxRecvMark []int32

	// Fragment table of the lane's current phase (struct-of-arrays).
	fragBlock   []trace.BlockID
	fragChare   []trace.ChareID
	fragWInit   []int32
	fragFirst   []trace.EventID // initial event of each fragment
	fragOff     []int32         // fragment -> offset into fragEvents
	fragCur     []int32
	fragEvents  []trace.EventID // phase events grouped by fragment
	fragOfBlock []int32         // canonical block -> fragment index
	blockMark   []int32

	// Fragment placement (orderFragments): dedup + Kahn state. The edge
	// dedup table is epoch-marked: a slot is live only when edgeMark[i] ==
	// edgeEpoch, so clearing between phases is one increment, and
	// freshly-grown (zeroed) tables can never alias an epoch ≥ 1.
	edgeU, edgeV []int32
	edgeKey      []int64
	edgeMark     []int32
	edgeEpoch    int32
	fragInv      []int32 // fragment -> invoking chare (NoChare as int32)
	fragRank     []int32 // fragment -> rank of the invoking chare
	fragSrc      []int32 // fragment -> source fragment (-1 if none in phase)
	fragTime     []trace.Time
	fragIndeg    []int32
	fragSuccOff  []int32
	fragSuccCur  []int32
	fragSucc     []int32
	placed       []int32 // fragment indices in placement order
	fragHeap     []int32

	// Step assignment (stepPhase): event adjacency + per-chare tails.
	adj       []trace.EventID
	eventHeap []trace.EventID
	lastStep  []int32 // chare -> local step of the chare's last popped event
	chareMark []int32
}

func newExtractArena(tr *trace.Trace) *extractArena {
	return &extractArena{
		nEvents: len(tr.Events),
		nChares: len(tr.Chares),
		nBlocks: len(tr.Blocks),
	}
}

// ensureLanes creates lanes 0..n before a parallel section: lane lookup from
// worker goroutines is then a read-only index, never a concurrent append.
func (ar *extractArena) ensureLanes(n int) {
	for len(ar.lanes) <= n {
		ar.lanes = append(ar.lanes, nil)
	}
	for i := 0; i <= n; i++ {
		if ar.lanes[i] == nil {
			ar.lanes[i] = &laneScratch{
				seenPart:    make([]int32, ar.nChares),
				seenMark:    make([]int32, ar.nChares),
				dedup:       make(map[int64]struct{}),
				lastW:       make([]int32, ar.nBlocks),
				lastWMark:   make([]int32, ar.nBlocks),
				maxRecvW:    make([]int32, ar.nChares),
				maxRecvMark: make([]int32, ar.nChares),
				fragOfBlock: make([]int32, ar.nBlocks),
				blockMark:   make([]int32, ar.nBlocks),
				lastStep:    make([]int32, ar.nChares),
				chareMark:   make([]int32, ar.nChares),
			}
		}
	}
}

// lane returns worker lane idx's scratch; ensureLanes must have covered idx.
func (ar *extractArena) lane(idx int) *laneScratch { return ar.lanes[idx] }

// grow32 returns buf resized to n without preserving or zeroing contents.
func grow32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func grow64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

func growEv(buf []trace.EventID, n int) []trace.EventID {
	if cap(buf) < n {
		return make([]trace.EventID, n)
	}
	return buf[:n]
}

func growTime(buf []trace.Time, n int) []trace.Time {
	if cap(buf) < n {
		return make([]trace.Time, n)
	}
	return buf[:n]
}

func growPeTime(buf []peTime, n int) []peTime {
	if cap(buf) < n {
		return make([]peTime, n)
	}
	return buf[:n]
}

// chareIndex returns the position of c in the sorted chare row.
func chareIndex(chares []trace.ChareID, c trace.ChareID) int {
	lo, hi := 0, len(chares)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if chares[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
