package tracefile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"charmtrace/internal/trace"
)

// Projections-style format: a single-stream rendition of the Charm++
// Projections logs the paper's tooling consumes. Real Projections splits a
// run into one .sts declaration file plus one numeric .log file per
// processor; this adapter folds the same content into one self-contained
// stream so it can travel through the charmd upload path like the native
// formats. The header section mirrors the .sts declarations, then each
// processor contributes a BEGIN_LOG/END_LOG section of numeric records
// using the Projections record codes:
//
//	PROJECTIONS-RECORD 1
//	PROCESSORS <numPE>
//	TOTAL_CHARES <n>
//	TOTAL_EPS <n>
//	ENTRY <id> <sdagSerial> <afterWhen> <name>
//	CHARE <id> <array> <index> <runtime> <home> <name>
//	END_STS
//	BEGIN_LOG <pe>
//	2 <time> <entry> <chare> <block>   BEGIN_PROCESSING: opens a serial block
//	1 <time> <msg> <event>             CREATION: a send inside the open block
//	10 <time> <msg> <event>            MESSAGE_RECV: a receive inside the open block
//	3 <time>                           END_PROCESSING: closes the open block
//	14 <time>                           BEGIN_IDLE
//	15 <time>                           END_IDLE
//	END_LOG
//
// Stock Projections records carry per-processor event sequence numbers;
// this adapter makes them global (the trailing field of BEGIN_PROCESSING,
// CREATION and MESSAGE_RECV is the global block/event ID), which is what
// lets a reader reconstruct an ID-identical trace — and therefore a
// byte-identical recovered structure — from per-processor log sections.
// Names are the trailing field of the declaration records so they may
// contain spaces.

// projectionsMagic opens every Projections-style stream; ReadAuto sniffs it.
const projectionsMagic = "PROJECTIONS-RECORD"

// projectionsVersion is the current Projections-style format version.
const projectionsVersion = 1

// Projections record type codes (the subset of the Charm++ Projections
// log-entry codes this adapter maps onto the trace model).
const (
	projCreation        = 1
	projBeginProcessing = 2
	projEndProcessing   = 3
	projMessageRecv     = 10
	projBeginIdle       = 14
	projEndIdle         = 15
)

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

// WriteProjections serializes a trace in the Projections-style format. The
// trace's blocks and idles are emitted per processor in begin-time order,
// as a real per-PE tracing framework would have logged them.
func WriteProjections(w io.Writer, t *trace.Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d\n", projectionsMagic, projectionsVersion)
	fmt.Fprintf(bw, "PROCESSORS %d\n", t.NumPE)
	fmt.Fprintf(bw, "TOTAL_CHARES %d\n", len(t.Chares))
	fmt.Fprintf(bw, "TOTAL_EPS %d\n", len(t.Entries))
	for _, e := range t.Entries {
		fmt.Fprintf(bw, "ENTRY %d %d %d %s\n", e.ID, e.SDAGSerial, b2i(e.AfterWhen), e.Name)
	}
	for _, c := range t.Chares {
		fmt.Fprintf(bw, "CHARE %d %d %d %d %d %s\n", c.ID, c.Array, c.Index, b2i(c.Runtime), c.Home, c.Name)
	}
	fmt.Fprintln(bw, "END_STS")

	// Per-PE sections are rebuilt locally (rather than via the trace index)
	// so unindexed traces serialize too.
	blocksByPE := make([][]trace.BlockID, t.NumPE)
	for _, b := range t.Blocks {
		blocksByPE[b.PE] = append(blocksByPE[b.PE], b.ID)
	}
	idlesByPE := make([][]trace.Idle, t.NumPE)
	for _, idle := range t.Idles {
		idlesByPE[idle.PE] = append(idlesByPE[idle.PE], idle)
	}
	for pe := 0; pe < t.NumPE; pe++ {
		ids := blocksByPE[pe]
		sort.Slice(ids, func(i, j int) bool {
			bi, bj := &t.Blocks[ids[i]], &t.Blocks[ids[j]]
			if bi.Begin != bj.Begin {
				return bi.Begin < bj.Begin
			}
			return ids[i] < ids[j]
		})
		idles := idlesByPE[pe]
		sort.Slice(idles, func(i, j int) bool { return idles[i].Begin < idles[j].Begin })
		fmt.Fprintf(bw, "BEGIN_LOG %d\n", pe)
		bi, ii := 0, 0
		for bi < len(ids) || ii < len(idles) {
			// Idle spans end where the next block begins; on a begin-time tie
			// the idle is the earlier record.
			if bi == len(ids) || (ii < len(idles) && idles[ii].Begin <= t.Blocks[ids[bi]].Begin) {
				idle := idles[ii]
				fmt.Fprintf(bw, "%d %d\n", projBeginIdle, idle.Begin)
				fmt.Fprintf(bw, "%d %d\n", projEndIdle, idle.End)
				ii++
				continue
			}
			b := &t.Blocks[ids[bi]]
			fmt.Fprintf(bw, "%d %d %d %d %d\n", projBeginProcessing, b.Begin, b.Entry, b.Chare, b.ID)
			for _, eid := range b.Events {
				ev := &t.Events[eid]
				code := projCreation
				if ev.Kind == trace.Recv {
					code = projMessageRecv
				}
				fmt.Fprintf(bw, "%d %d %d %d\n", code, ev.Time, ev.Msg, ev.ID)
			}
			fmt.Fprintf(bw, "%d %d\n", projEndProcessing, b.End)
			bi++
		}
		fmt.Fprintln(bw, "END_LOG")
	}
	return bw.Flush()
}

// WriteFileProjections serializes a trace to a file in the
// Projections-style format.
func WriteFileProjections(path string, t *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteProjections(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// projReader carries the decoding state of one Projections-style stream.
type projReader struct {
	t *trace.Trace
	// declared .sts totals, cross-checked against the declaration records.
	wantChares, wantEPs int
	// per-section state: the processor of the open BEGIN_LOG section (-1
	// outside any section), its open serial block and open idle span.
	curPE     int
	openBlock int
	idleBegin trace.Time
	openIdle  bool
	seenLog   map[int]bool
	// globally-sequenced records land at their declared IDs; density is
	// validated once the stream ends.
	blocks      map[int]trace.Block
	events      map[int]trace.Event
	blockEvents map[int][]trace.EventID
}

// maxSeq bounds declared block/event sequence numbers: IDs are int32 and a
// hostile header must not imply absurd reconstruction work.
const maxSeq = 1<<31 - 1

// ReadProjections parses a Projections-style stream and indexes the
// reconstructed trace. Decode failures carry the ErrMalformed tag (see
// errors.go).
func ReadProjections(r io.Reader) (*trace.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, malformed(fmt.Errorf("tracefile: empty projections input"))
	}
	var version int
	if _, err := fmt.Sscanf(sc.Text(), projectionsMagic+" %d", &version); err != nil {
		return nil, malformed(fmt.Errorf("tracefile: bad projections header %q", sc.Text()))
	}
	if version != projectionsVersion {
		return nil, malformed(fmt.Errorf("tracefile: unsupported projections version %d", version))
	}
	p := &projReader{
		t:           &trace.Trace{},
		wantChares:  -1,
		wantEPs:     -1,
		curPE:       -1,
		openBlock:   -1,
		seenLog:     make(map[int]bool),
		blocks:      make(map[int]trace.Block),
		events:      make(map[int]trace.Event),
		blockEvents: make(map[int][]trace.EventID),
	}
	line := 1
	inSTS := true
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var err error
		if inSTS {
			inSTS, err = p.stsLine(text)
		} else {
			err = p.logLine(text)
		}
		if err != nil {
			return nil, malformed(fmt.Errorf("tracefile: projections line %d: %w", line, err))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, malformed(fmt.Errorf("tracefile: %w", err))
	}
	if inSTS {
		return nil, malformed(fmt.Errorf("tracefile: projections input ended inside the declaration section"))
	}
	if p.curPE >= 0 {
		return nil, malformed(fmt.Errorf("tracefile: projections log section for pe %d not terminated", p.curPE))
	}
	tr, err := p.finish()
	if err != nil {
		return nil, malformed(fmt.Errorf("tracefile: %w", err))
	}
	return tr, nil
}

// stsLine handles one declaration record; it reports whether the reader is
// still inside the declaration section.
func (p *projReader) stsLine(text string) (bool, error) {
	kind, rest, _ := strings.Cut(text, " ")
	switch kind {
	case "PROCESSORS":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return true, err
		}
		if n < 1 || n > MaxPE {
			return true, fmt.Errorf("processor count %d out of range [1, %d]", n, MaxPE)
		}
		p.t.NumPE = n
	case "TOTAL_CHARES":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return true, err
		}
		p.wantChares = n
	case "TOTAL_EPS":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return true, err
		}
		p.wantEPs = n
	case "ENTRY":
		return true, parseProjEntry(p.t, rest)
	case "CHARE":
		return true, parseProjChare(p.t, rest)
	case "END_STS":
		if rest != "" {
			return true, fmt.Errorf("trailing data %q after END_STS", rest)
		}
		if p.t.NumPE == 0 {
			return true, fmt.Errorf("END_STS without a PROCESSORS declaration")
		}
		if p.wantChares >= 0 && p.wantChares != len(p.t.Chares) {
			return true, fmt.Errorf("TOTAL_CHARES %d but %d CHARE declarations", p.wantChares, len(p.t.Chares))
		}
		if p.wantEPs >= 0 && p.wantEPs != len(p.t.Entries) {
			return true, fmt.Errorf("TOTAL_EPS %d but %d ENTRY declarations", p.wantEPs, len(p.t.Entries))
		}
		return false, nil
	default:
		return true, fmt.Errorf("unknown declaration record %q", kind)
	}
	return true, nil
}

func parseProjEntry(t *trace.Trace, rest string) error {
	f, name, err := fields(rest, 3)
	if err != nil {
		return err
	}
	id, err := strconv.Atoi(f[0])
	if err != nil {
		return err
	}
	serial, err := strconv.Atoi(f[1])
	if err != nil {
		return err
	}
	afterWhen, err := strconv.Atoi(f[2])
	if err != nil {
		return err
	}
	if id != len(t.Entries) {
		return fmt.Errorf("ENTRY %d out of order", id)
	}
	t.Entries = append(t.Entries, trace.Entry{
		ID: trace.EntryID(id), Name: name, SDAGSerial: serial, AfterWhen: afterWhen != 0,
	})
	return nil
}

func parseProjChare(t *trace.Trace, rest string) error {
	f, name, err := fields(rest, 5)
	if err != nil {
		return err
	}
	vals := make([]int64, 5)
	for i, s := range f {
		vals[i], err = strconv.ParseInt(s, 10, 64)
		if err != nil {
			return err
		}
	}
	if int(vals[0]) != len(t.Chares) {
		return fmt.Errorf("CHARE %d out of order", vals[0])
	}
	t.Chares = append(t.Chares, trace.Chare{
		ID: trace.ChareID(vals[0]), Name: name, Array: trace.ArrayID(vals[1]),
		Index: int(vals[2]), Runtime: vals[3] != 0, Home: trace.PE(vals[4]),
	})
	return nil
}

// logLine handles one record of a per-processor log section.
func (p *projReader) logLine(text string) error {
	kind, rest, _ := strings.Cut(text, " ")
	if kind == "BEGIN_LOG" {
		if p.curPE >= 0 {
			return fmt.Errorf("BEGIN_LOG inside the log section for pe %d", p.curPE)
		}
		pe, err := strconv.Atoi(rest)
		if err != nil {
			return err
		}
		if pe < 0 || pe >= p.t.NumPE {
			return fmt.Errorf("log section pe %d out of range [0, %d)", pe, p.t.NumPE)
		}
		if p.seenLog[pe] {
			return fmt.Errorf("duplicate log section for pe %d", pe)
		}
		p.seenLog[pe] = true
		p.curPE = pe
		return nil
	}
	if kind == "END_LOG" {
		if p.curPE < 0 {
			return fmt.Errorf("END_LOG outside any log section")
		}
		if p.openBlock >= 0 {
			return fmt.Errorf("END_LOG with serial block %d still open", p.openBlock)
		}
		if p.openIdle {
			return fmt.Errorf("END_LOG with an idle span still open")
		}
		p.curPE = -1
		return nil
	}
	if p.curPE < 0 {
		return fmt.Errorf("record %q outside any log section", kind)
	}
	code, err := strconv.Atoi(kind)
	if err != nil {
		return fmt.Errorf("bad record code %q", kind)
	}
	nums, err := intFields(rest, recordArity(code)-1)
	if err != nil {
		return fmt.Errorf("record %d: %w", code, err)
	}
	switch code {
	case projBeginProcessing:
		if p.openBlock >= 0 {
			return fmt.Errorf("BEGIN_PROCESSING while block %d is open", p.openBlock)
		}
		seq := nums[3]
		if seq < 0 || seq > maxSeq {
			return fmt.Errorf("block sequence %d out of range", seq)
		}
		if _, dup := p.blocks[int(seq)]; dup {
			return fmt.Errorf("duplicate block sequence %d", seq)
		}
		p.blocks[int(seq)] = trace.Block{
			ID: trace.BlockID(seq), Chare: trace.ChareID(nums[2]), PE: trace.PE(p.curPE),
			Entry: trace.EntryID(nums[1]), Begin: trace.Time(nums[0]), End: trace.Time(nums[0]),
		}
		p.openBlock = int(seq)
	case projEndProcessing:
		if p.openBlock < 0 {
			return fmt.Errorf("END_PROCESSING with no open block")
		}
		b := p.blocks[p.openBlock]
		b.End = trace.Time(nums[0])
		p.blocks[p.openBlock] = b
		p.openBlock = -1
	case projCreation, projMessageRecv:
		if p.openBlock < 0 {
			return fmt.Errorf("record %d with no open block", code)
		}
		seq := nums[2]
		if seq < 0 || seq > maxSeq {
			return fmt.Errorf("event sequence %d out of range", seq)
		}
		if _, dup := p.events[int(seq)]; dup {
			return fmt.Errorf("duplicate event sequence %d", seq)
		}
		kind := trace.Send
		if code == projMessageRecv {
			kind = trace.Recv
		}
		b := p.blocks[p.openBlock]
		p.events[int(seq)] = trace.Event{
			ID: trace.EventID(seq), Kind: kind, Time: trace.Time(nums[0]),
			Chare: b.Chare, PE: trace.PE(p.curPE),
			Msg: trace.MsgID(nums[1]), Block: trace.BlockID(p.openBlock),
		}
		p.blockEvents[p.openBlock] = append(p.blockEvents[p.openBlock], trace.EventID(seq))
	case projBeginIdle:
		if p.openIdle {
			return fmt.Errorf("BEGIN_IDLE while an idle span is open")
		}
		p.idleBegin = trace.Time(nums[0])
		p.openIdle = true
	case projEndIdle:
		if !p.openIdle {
			return fmt.Errorf("END_IDLE with no open idle span")
		}
		p.t.Idles = append(p.t.Idles, trace.Idle{
			PE: trace.PE(p.curPE), Begin: p.idleBegin, End: trace.Time(nums[0]),
		})
		p.openIdle = false
	default:
		return fmt.Errorf("unknown record code %d", code)
	}
	return nil
}

// recordArity returns the total field count (code included) of a record.
func recordArity(code int) int {
	switch code {
	case projBeginProcessing:
		return 5
	case projCreation, projMessageRecv:
		return 4
	default:
		return 2
	}
}

// intFields parses exactly n space-separated int64 fields.
func intFields(rest string, n int) ([]int64, error) {
	parts := strings.Fields(rest)
	if len(parts) != n {
		return nil, fmt.Errorf("expected %d fields, got %d", n, len(parts))
	}
	out := make([]int64, n)
	for i, s := range parts {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// finish assembles the dense trace from the sequenced records and indexes
// it. Every block and event sequence number from 0 to the maximum must be
// present exactly once — the same density the native formats enforce.
func (p *projReader) finish() (*trace.Trace, error) {
	t := p.t
	t.Blocks = make([]trace.Block, len(p.blocks))
	for i := range t.Blocks {
		b, ok := p.blocks[i]
		if !ok {
			return nil, fmt.Errorf("projections stream is missing block sequence %d", i)
		}
		b.Events = p.blockEvents[i]
		t.Blocks[i] = b
	}
	t.Events = make([]trace.Event, len(p.events))
	for i := range t.Events {
		ev, ok := p.events[i]
		if !ok {
			return nil, fmt.Errorf("projections stream is missing event sequence %d", i)
		}
		t.Events[i] = ev
	}
	// Per-PE log sections interleave idles arbitrarily across processors;
	// normalize to the builder's (PE, Begin) order so a round-tripped trace
	// is structurally identical to the native one.
	sort.Slice(t.Idles, func(i, j int) bool {
		if t.Idles[i].PE != t.Idles[j].PE {
			return t.Idles[i].PE < t.Idles[j].PE
		}
		return t.Idles[i].Begin < t.Idles[j].Begin
	})
	if err := t.Index(); err != nil {
		return nil, err
	}
	return t, nil
}
