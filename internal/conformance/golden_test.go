package conformance

// Golden locks for the three adversarial generators: a checked-in binary
// trace plus the text rendering of its recovered structure. A generator or
// pipeline change that alters either shows up as a golden diff to be
// reviewed (and deliberately regenerated with
// `go test ./internal/conformance -run Golden -update`), never as a silent
// drift.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/tracefile"
	"charmtrace/internal/viz"
)

var update = flag.Bool("update", false, "regenerate golden trace and structure files")

// goldenZoo returns the zoo members with checked-in goldens: the three
// generators this harness introduced. The six paper proxies are already
// locked by their own package tests and the tracefile goldens.
func goldenZoo() []Workload {
	var out []Workload
	for _, w := range Zoo() {
		switch w.Name {
		case "lbmigrate", "faultsim", "ordstress":
			out = append(out, w)
		}
	}
	return out
}

func TestGoldenAdversarialWorkloads(t *testing.T) {
	for _, w := range goldenZoo() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			binPath := filepath.Join("testdata", w.Name+".trace.bin")
			structPath := filepath.Join("testdata", w.Name+".structure.txt")
			tr := w.MustGen()
			s, err := core.Extract(tr, w.Opts)
			if err != nil {
				t.Fatal(err)
			}
			rendered := viz.Logical(s)
			if *update {
				if err := tracefile.WriteFileBinary(binPath, tr); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(structPath, []byte(rendered), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Log("golden files regenerated")
			}
			// The generator must still produce the checked-in trace...
			golden, err := tracefile.ReadFile(binPath)
			if err != nil {
				t.Fatalf("ReadFile(%s): %v", binPath, err)
			}
			if len(golden.Events) != len(tr.Events) || len(golden.Blocks) != len(tr.Blocks) ||
				len(golden.Chares) != len(tr.Chares) || golden.NumPE != tr.NumPE {
				t.Fatalf("generator drifted from golden: %d/%d events, %d/%d blocks, %d/%d chares, %d/%d PEs",
					len(tr.Events), len(golden.Events), len(tr.Blocks), len(golden.Blocks),
					len(tr.Chares), len(golden.Chares), tr.NumPE, golden.NumPE)
			}
			// ...and the checked-in trace must still recover the checked-in
			// structure, byte for byte.
			gs, err := core.Extract(golden, w.Opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(structPath)
			if err != nil {
				t.Fatal(err)
			}
			if got := viz.Logical(gs); got != string(want) {
				t.Errorf("recovered structure drifted from %s:\ngot:\n%swant:\n%s", structPath, got, want)
			}
		})
	}
}
