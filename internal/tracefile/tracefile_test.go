package tracefile

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/trace"
)

func TestRoundTrip(t *testing.T) {
	orig := jacobi.MustTrace(jacobi.DefaultConfig())
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumPE != orig.NumPE {
		t.Fatalf("NumPE = %d, want %d", got.NumPE, orig.NumPE)
	}
	if !reflect.DeepEqual(got.Entries, orig.Entries) {
		t.Fatal("entries differ after round trip")
	}
	if !reflect.DeepEqual(got.Chares, orig.Chares) {
		t.Fatal("chares differ after round trip")
	}
	if !reflect.DeepEqual(got.Blocks, orig.Blocks) {
		t.Fatal("blocks differ after round trip")
	}
	if !reflect.DeepEqual(got.Events, orig.Events) {
		t.Fatal("events differ after round trip")
	}
	if !reflect.DeepEqual(got.Idles, orig.Idles) {
		t.Fatal("idles differ after round trip")
	}
	if !got.Indexed() {
		t.Fatal("read trace not indexed")
	}
}

func TestNamesWithSpacesSurvive(t *testing.T) {
	b := trace.NewBuilder(1)
	e := b.AddEntry("Main::do work (phase two)")
	c := b.AddChare("my chare [0, 0]", 0, 0, 0)
	b.BeginBlock(c, 0, e, 0)
	b.EndBlock(c, 5)
	orig := b.MustFinish()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].Name != orig.Entries[0].Name {
		t.Fatalf("entry name %q != %q", got.Entries[0].Name, orig.Entries[0].Name)
	}
	if got.Chares[0].Name != orig.Chares[0].Name {
		t.Fatalf("chare name %q != %q", got.Chares[0].Name, orig.Chares[0].Name)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	orig := jacobi.MustTrace(jacobi.DefaultConfig())
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(orig.Events))
	}
}

func TestRejectsBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("nonsense\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := Read(strings.NewReader("charmtrace 99\npe 1\n")); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestRejectsMalformedRecords(t *testing.T) {
	cases := []string{
		"charmtrace 1\npe 1\nbogus 1 2 3\n",
		"charmtrace 1\npe 1\nev 0 teleport 0 0 0 0 0\n",
		"charmtrace 1\npe 1\nblock 5 0 0 0 0 0\n", // out of order ID
		"charmtrace 1\npe x\n",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("malformed input accepted: %q", c)
		}
	}
}

func TestCommentsAndBlankLinesIgnored(t *testing.T) {
	in := "charmtrace 1\n# a comment\n\npe 2\nchare 0 -1 -1 false 0 solo\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if tr.NumPE != 2 || len(tr.Chares) != 1 {
		t.Fatal("comment/blank handling broke parsing")
	}
}

func TestReadValidates(t *testing.T) {
	// A recv without its send must be rejected by trace validation.
	in := "charmtrace 1\npe 1\n" +
		"entry 0 -1 false e\n" +
		"chare 0 -1 -1 false 0 c\n" +
		"block 0 0 0 0 0 10\n" +
		"ev 0 recv 0 0 0 7 0\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("invalid trace accepted")
	}
}
