package sim

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// sdagJacobi builds the Jacobi pattern declaratively: per iteration a
// serial that sends halos, a when collecting them, and a reduction whose
// broadcast feeds the loop's next when.
func sdagJacobi(t *testing.T, grid, iters int) (*trace.Trace, *SDAG) {
	t.Helper()
	rt := New(DefaultConfig(4))
	n := grid * grid
	arr := rt.NewArray("sj", n, nil, nil)
	neighbors := func(i int) []int {
		x, y := i%grid, i/grid
		var out []int
		if x > 0 {
			out = append(out, i-1)
		}
		if x < grid-1 {
			out = append(out, i+1)
		}
		if y > 0 {
			out = append(out, i-grid)
		}
		if y < grid-1 {
			out = append(out, i+grid)
		}
		return out
	}

	prog := NewSDAG(arr)
	var ghost, resume EntryRef
	var red *Reduction
	sendHalos := func(ctx *Ctx) {
		ctx.Compute(50)
		for _, nb := range neighbors(ctx.Index()) {
			ctx.Send(arr.At(nb), ghost, nil)
		}
	}
	prog.Serial("begin", sendHalos)
	prog.BeginLoop(func(int) int { return iters })
	ghost = prog.When("ghost", func(i int) int { return len(neighbors(i)) },
		func(ctx *Ctx, msgs []Message) {
			ctx.Compute(200)
			ctx.Contribute(red, 1)
		})
	resume = prog.When("resume", func(int) int { return 1 },
		func(ctx *Ctx, msgs []Message) {
			if p := msgs[0].Data.(*ReduceResult); p.Gen < iters-1 {
				sendHalos(ctx)
			}
		})
	prog.EndLoop()
	red = rt.NewReduction(arr, Sum, BroadcastCallback(resume))
	prog.Install(rt)

	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tr, prog
}

func TestSDAGJacobiCompletes(t *testing.T) {
	tr, prog := sdagJacobi(t, 3, 3)
	for i := 0; i < 9; i++ {
		if !prog.Done(i) {
			t.Fatalf("element %d did not finish the program", i)
		}
	}
	// Halo messages: 3 iterations x directed neighbour links (2*2*3*2=24).
	halo := 0
	for _, ev := range tr.Events {
		if ev.Kind == trace.Recv && !tr.IsRuntimeChare(ev.Chare) {
			send := tr.SendOf(ev.Msg)
			if !tr.IsRuntimeChare(tr.Events[send].Chare) && tr.Events[send].Chare != ev.Chare {
				halo++
			}
		}
	}
	if halo != 3*24 {
		t.Fatalf("halo receives = %d, want %d", halo, 3*24)
	}
}

func TestSDAGStructureAlternates(t *testing.T) {
	tr, _ := sdagJacobi(t, 3, 3)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// One app + one runtime phase per iteration, alternating.
	if s.NumPhases() != 6 {
		t.Fatalf("phases = %d, want 6", s.NumPhases())
	}
	order := make([]int32, s.NumPhases())
	for i := range order {
		order[i] = int32(i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && s.Phases[order[j]].Offset < s.Phases[order[j-1]].Offset; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for i, pi := range order {
		if s.Phases[pi].Runtime != (i%2 == 1) {
			t.Fatalf("phase kinds do not alternate at %d", i)
		}
	}
}

func TestSDAGBuffersEarlyArrivals(t *testing.T) {
	// Element 1 receives the when message long before it reaches the when
	// step (it computes first); the message must be buffered, not lost.
	rt := New(DefaultConfig(2))
	arr := rt.NewArray("buf", 2, func(i int) int { return i }, nil)
	prog := NewSDAG(arr)
	var data EntryRef
	fired := make([]bool, 2)
	prog.Serial("begin", func(ctx *Ctx) {
		if ctx.Index() == 0 {
			ctx.Send(arr.At(1), data, "early")
		} else {
			ctx.Compute(100000) // long compute: the message arrives first
		}
	})
	data = prog.When("data", func(i int) int {
		if i == 0 {
			return 0 // element 0 waits for nothing
		}
		return 1
	}, func(ctx *Ctx, msgs []Message) {
		fired[ctx.Index()] = true
		if ctx.Index() == 1 && msgs[0].Data != "early" {
			t.Error("buffered payload lost")
		}
	})
	prog.Install(rt)
	if _, err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired[1] {
		t.Fatal("when never fired despite buffered early arrival")
	}
	if !prog.Done(0) || !prog.Done(1) {
		t.Fatal("program incomplete")
	}
}

func TestSDAGMisusePanics(t *testing.T) {
	rt := New(DefaultConfig(1))
	arr := rt.NewArray("mp", 1, nil, nil)
	t.Run("empty program", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewSDAG(arr).Install(rt)
	})
	t.Run("open loop", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		p := NewSDAG(arr)
		p.Serial("s", func(*Ctx) {})
		p.BeginLoop(func(int) int { return 1 })
		p.Install(rt)
	})
	t.Run("nested loop", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		p := NewSDAG(arr)
		p.BeginLoop(func(int) int { return 1 })
		p.BeginLoop(func(int) int { return 1 })
	})
	t.Run("modify after install", func(t *testing.T) {
		rt2 := New(DefaultConfig(1))
		arr2 := rt2.NewArray("mp2", 1, nil, nil)
		p := NewSDAG(arr2)
		p.Serial("s", func(*Ctx) {})
		p.Install(rt2)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		p.Serial("late", func(*Ctx) {})
	})
}
