package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"charmtrace/internal/core"
	"charmtrace/internal/resultcache"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// syncBuffer is a goroutine-safe log sink for access-log assertions.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// lines decodes every JSON access-log line written so far.
func (b *syncBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable access-log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// lineFor returns the most recent access-log line matching the route.
func (b *syncBuffer) lineFor(t *testing.T, route string) map[string]any {
	t.Helper()
	var found map[string]any
	for _, m := range b.lines(t) {
		if m["route"] == route {
			found = m
		}
	}
	if found == nil {
		t.Fatalf("no access-log line for route %q", route)
	}
	return found
}

// TestMetricsEndpointScrapeUnderLoad: /metrics must produce a document the
// strict parser accepts — including every registry family — while analysis
// requests are hammering the same registry.
func TestMetricsEndpointScrapeUnderLoad(t *testing.T) {
	srv, ts := newTestServer(t, Config{DataDir: t.TempDir(), Parallelism: 2})
	digest := upload(t, ts, encodedJacobi(t, 0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/traces/" + digest + "/structure")
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 10; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
			t.Fatalf("Content-Type %q, want %q", ct, telemetry.PromContentType)
		}
		fams, err := telemetry.ParsePromText(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("scrape %d rejected by strict parser: %v", i, err)
		}
		for _, want := range []string{
			"server_requests_total", "server_inflight", "go_goroutines",
			"go_gc_cycles_total",
		} {
			if fams[want] == nil {
				t.Fatalf("scrape %d missing family %s", i, want)
			}
		}
	}
	close(stop)
	wg.Wait()

	// After load, the serving families exist and reconcile with the
	// registry the same exposition is derived from.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParsePromText(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if fams["server_requests_total"].Samples[0].Value < 1 {
		t.Fatal("server_requests_total never incremented")
	}
	if fams["cache_misses_total"] == nil || fams["server_latency_ms_structure"] == nil {
		t.Fatal("cache/latency families missing from exposition")
	}
	if srv.Registry() == nil {
		t.Fatal("registry detached")
	}
}

// blockingServerExtract substitutes Config.extract: it publishes progress
// through the cache-attached opt.Progress, then blocks until released.
type blockingServerExtract struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockingServerExtract() *blockingServerExtract {
	return &blockingServerExtract{entered: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockingServerExtract) extract(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
	if opt.Progress != nil {
		opt.Progress.SetStage("dependency-merge")
		opt.Progress.StartLoop(100)
		opt.Progress.Add(37)
	}
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return core.Extract(tr, core.Options{Parallelism: opt.Parallelism})
}

// TestDebugFlightsShowsLiveProgress: while an extraction is in flight,
// GET /debug/flights reports its digest, waiter count and the stage
// progress the pipeline published; afterwards the list is empty.
func TestDebugFlightsShowsLiveProgress(t *testing.T) {
	ext := newBlockingServerExtract()
	_, ts := newTestServer(t, Config{extract: ext.extract})
	digest := upload(t, ts, encodedJacobi(t, 0))

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/v1/traces/" + digest + "/structure")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-ext.entered

	var out struct {
		Flights []struct {
			Digest      string  `json:"digest"`
			Fingerprint string  `json:"fingerprint"`
			ElapsedMS   float64 `json:"elapsed_ms"`
			Waiters     int64   `json:"waiters"`
			Progress    struct {
				Stage   string `json:"stage"`
				Scanned int64  `json:"scanned"`
				Total   int64  `json:"total"`
			} `json:"progress"`
		} `json:"flights"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/debug/flights"), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Flights) != 1 {
		t.Fatalf("flights = %d, want 1", len(out.Flights))
	}
	f := out.Flights[0]
	if f.Digest != digest || f.Fingerprint == "" {
		t.Fatalf("flight identity wrong: %+v", f)
	}
	if f.Waiters != 1 {
		t.Errorf("waiters = %d, want 1", f.Waiters)
	}
	if f.Progress.Stage != "dependency-merge" || f.Progress.Scanned != 37 || f.Progress.Total != 100 {
		t.Errorf("progress = %+v, want dependency-merge 37/100", f.Progress)
	}

	close(ext.release)
	<-done
	deadline := time.Now().Add(2 * time.Second)
	for {
		var after struct {
			Flights []json.RawMessage `json:"flights"`
		}
		if err := json.Unmarshal(mustGet(t, ts, "/debug/flights"), &after); err != nil {
			t.Fatal(err)
		}
		if len(after.Flights) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight still listed after completion")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRequestIDEchoAndGenerate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Inbound id is honored and echoed.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "abc-123" {
		t.Fatalf("echoed id %q, want abc-123", got)
	}
	// No inbound id: one is minted.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Fatalf("generated id %q, want 16 hex chars", got)
	}
	// A hostile id (control bytes) is replaced, not echoed.
	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "bad\tid")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "bad\tid" || len(got) != 16 {
		t.Fatalf("hostile id echoed back: %q", got)
	}
}

// TestAccessLogSchema: one JSON line per request carrying the schema
// README documents — id, route, digest, cache outcome, status, latency,
// bytes — at the status-class level.
func TestAccessLogSchema(t *testing.T) {
	logBuf := &syncBuffer{}
	_, ts := newTestServer(t, Config{
		DataDir:   t.TempDir(),
		AccessLog: slog.New(slog.NewJSONHandler(logBuf, nil)),
	})
	digest := upload(t, ts, encodedJacobi(t, 0))

	req, _ := http.NewRequest("GET", ts.URL+"/v1/traces/"+digest+"/structure", nil)
	req.Header.Set("X-Request-ID", "corr-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line := logBuf.lineFor(t, "structure")
	if line["id"] != "corr-7" {
		t.Errorf("id = %v, want corr-7", line["id"])
	}
	if line["digest"] != digest {
		t.Errorf("digest = %v", line["digest"])
	}
	if line["cache"] != resultcache.OutcomeMiss {
		t.Errorf("cache = %v, want miss", line["cache"])
	}
	if line["status"] != float64(200) {
		t.Errorf("status = %v", line["status"])
	}
	if line["level"] != "INFO" {
		t.Errorf("level = %v", line["level"])
	}
	if v, ok := line["latency_ms"].(float64); !ok || v < 0 {
		t.Errorf("latency_ms = %v", line["latency_ms"])
	}
	if v, ok := line["bytes"].(float64); !ok || v <= 0 {
		t.Errorf("bytes = %v", line["bytes"])
	}

	// Second request: the memory hit shows up as cache=mem.
	resp, err = http.Get(ts.URL + "/v1/traces/" + digest + "/structure")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if line := logBuf.lineFor(t, "structure"); line["cache"] != resultcache.OutcomeMem {
		t.Errorf("cache = %v, want mem", line["cache"])
	}

	// A 404 logs at warn with no cache outcome.
	resp, err = http.Get(ts.URL + "/v1/traces/" + strings.Repeat("0", 64) + "/structure")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line = logBuf.lineFor(t, "structure")
	if line["status"] != float64(404) || line["level"] != "WARN" {
		t.Errorf("404 line = %v", line)
	}
	if _, has := line["cache"]; has {
		t.Errorf("404 line carries a cache outcome: %v", line)
	}
}

// TestAccessLog429CarriesRetryAfter: a shed request's log line includes
// the Retry-After the client saw.
func TestAccessLog429CarriesRetryAfter(t *testing.T) {
	logBuf := &syncBuffer{}
	ext := newBlockingServerExtract()
	_, ts := newTestServer(t, Config{
		MaxConcurrentExtractions: 1,
		QueueWait:                20 * time.Millisecond,
		AccessLog:                slog.New(slog.NewJSONHandler(logBuf, nil)),
		extract:                  ext.extract,
	})
	digest := upload(t, ts, encodedJacobi(t, 0))

	holder := make(chan struct{})
	go func() {
		defer close(holder)
		resp, err := http.Get(ts.URL + "/v1/traces/" + digest + "/structure")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-ext.entered

	resp, err := http.Get(ts.URL + "/v1/traces/" + digest + "/structure")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	wantRetry := resp.Header.Get("Retry-After")
	if wantRetry == "" {
		t.Fatal("429 without Retry-After header")
	}

	var line map[string]any
	for _, m := range logBuf.lines(t) {
		if m["status"] == float64(429) {
			line = m
		}
	}
	if line == nil {
		t.Fatal("no 429 access-log line")
	}
	if line["retry_after"] != wantRetry {
		t.Errorf("retry_after = %v, want %q", line["retry_after"], wantRetry)
	}
	if line["level"] != "WARN" {
		t.Errorf("429 level = %v, want WARN", line["level"])
	}

	close(ext.release)
	<-holder
}

// TestDebugResetGating: ?reset=1 is forbidden without -debug-unsafe and
// zeroes the stats in place with it.
func TestDebugResetGating(t *testing.T) {
	_, ts := newTestServer(t, Config{SelfTrace: true})
	if code, body := get(t, ts, "/debug/stats?reset=1"); code != http.StatusForbidden {
		t.Fatalf("reset without -debug-unsafe: status %d, body %s", code, body)
	}
	if code, _ := get(t, ts, "/debug/selftrace?reset=1"); code != http.StatusForbidden {
		t.Fatalf("selftrace reset without -debug-unsafe: status %d", code)
	}

	srv, ts2 := newTestServer(t, Config{DebugUnsafe: true, SelfTrace: true})
	srv.Registry().Counter("server.requests").Add(0) // ensure family exists
	mustGet(t, ts2, "/healthz")
	var before telemetry.StatsExport
	if err := json.Unmarshal(mustGet(t, ts2, "/debug/stats?reset=1"), &before); err != nil {
		t.Fatal(err)
	}
	// The reset response reports the pre-reset values...
	if before.Counters["server.requests"] == 0 {
		t.Fatal("reset response lost the pre-reset snapshot")
	}
	// ...and the registry then restarts from zero (the stats request that
	// reads it is itself counted, so "low", not necessarily zero).
	var after telemetry.StatsExport
	if err := json.Unmarshal(mustGet(t, ts2, "/debug/stats"), &after); err != nil {
		t.Fatal(err)
	}
	if after.Counters["server.requests"] >= before.Counters["server.requests"] {
		t.Fatalf("requests counter not reset: before=%d after=%d",
			before.Counters["server.requests"], after.Counters["server.requests"])
	}
}

// TestSelfTraceSpanCapReporting: a tiny span cap drops spans, and the drop
// count surfaces in /debug/stats and /metrics.
func TestSelfTraceSpanCapReporting(t *testing.T) {
	_, ts := newTestServer(t, Config{SelfTrace: true, SelfTraceMaxSpans: 3})
	digest := upload(t, ts, encodedJacobi(t, 0))
	mustGet(t, ts, "/v1/traces/"+digest+"/structure")

	var stats telemetry.StatsExport
	if err := json.Unmarshal(mustGet(t, ts, "/debug/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.SpanCount > 3 {
		t.Fatalf("span count %d exceeds the cap", stats.SpanCount)
	}
	if stats.SpansDropped == 0 {
		t.Fatal("an extraction under a 3-span cap must drop spans")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParsePromText(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if f := fams["charmd_selftrace_dropped_spans_total"]; f == nil || f.Samples[0].Value == 0 {
		t.Fatal("dropped-span counter missing from /metrics")
	}
}

// TestStatsContentType pins the explicit Content-Type on both debug
// endpoints.
func TestStatsContentType(t *testing.T) {
	_, ts := newTestServer(t, Config{SelfTrace: true})
	for _, path := range []string{"/debug/stats", "/debug/selftrace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s Content-Type %q", path, ct)
		}
	}
}

// TestObservabilityDoesNotChangeResponses: the PR-wide invariant — with
// access logging, request IDs and progress attached, analysis bytes are
// identical to a bare server's.
func TestObservabilityDoesNotChangeResponses(t *testing.T) {
	_, tsBare := newTestServer(t, Config{})
	_, tsObs := newTestServer(t, Config{
		AccessLog: slog.New(slog.NewJSONHandler(&syncBuffer{}, nil)),
		SelfTrace: true,
	})
	body := encodedJacobi(t, 0)
	dA := upload(t, tsBare, body)
	dB := upload(t, tsObs, body)
	if dA != dB {
		t.Fatal("digest mismatch")
	}
	for _, path := range []string{"/structure", "/steps", "/metrics"} {
		a := mustGet(t, tsBare, "/v1/traces/"+dA+path)
		b := mustGet(t, tsObs, "/v1/traces/"+dB+path)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between bare and observed servers", path)
		}
	}
}
