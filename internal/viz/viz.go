// Package viz renders recovered logical structures and physical timelines
// as text grids and SVG, standing in for the Ravel visualizations in the
// paper's figures. The logical view plots chares (sub-domain timelines)
// against global logical steps, application chares on top and runtime
// chares grouped at the bottom, cells keyed by phase; the physical view
// plots the same events against bucketed virtual time. Metric overlays
// shade events by a per-event metric, the analogue of the paper's
// idle-experienced / differential-duration / imbalance colourings.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// phaseSymbols cycle through visually distinct characters per phase.
const phaseSymbols = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

func symbol(phase int32) byte {
	return phaseSymbols[int(phase)%len(phaseSymbols)]
}

// Symbol returns the display character for a phase — exported so the
// query engine's windowed timelines render with the same alphabet as the
// full grids.
func Symbol(phase int32) byte { return symbol(phase) }

// chareRows orders chares for display: application chares first (by array,
// then index), runtime chares grouped at the bottom (as in the paper's
// figures).
func chareRows(tr *trace.Trace) []trace.ChareID {
	rows := make([]trace.ChareID, 0, len(tr.Chares))
	for _, c := range tr.Chares {
		rows = append(rows, c.ID)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := &tr.Chares[rows[i]], &tr.Chares[rows[j]]
		if a.Runtime != b.Runtime {
			return !a.Runtime
		}
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.ID < b.ID
	})
	return rows
}

// rowLabel formats a chare's display name at fixed width.
func rowLabel(tr *trace.Trace, c trace.ChareID, width int) string {
	name := tr.Chares[c].Name
	if len(name) > width {
		name = name[:width]
	}
	return fmt.Sprintf("%-*s", width, name)
}

// ruler renders a tick line marking every tenth global step.
func ruler(label, maxStep int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%*s ", label, "")
	for i := 0; i <= maxStep; i++ {
		switch {
		case i%10 == 0:
			b.WriteByte('|')
		case i%5 == 0:
			b.WriteByte('+')
		default:
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// Logical renders the logical structure as a chare x global-step grid, one
// phase symbol per event position.
func Logical(s *core.Structure) string {
	tr := s.Trace
	maxStep := int(s.MaxStep())
	if maxStep < 0 {
		return "(empty structure)\n"
	}
	const label = 16
	var b strings.Builder
	fmt.Fprintf(&b, "%*s steps 0..%d, %d phases (ruler marks every 10th step)\n", label, "", maxStep, s.NumPhases())
	b.WriteString(ruler(label, maxStep))
	for _, c := range chareRows(tr) {
		row := make([]byte, maxStep+1)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range s.EventsOfChare(c) {
			row[s.Step[e]] = symbol(s.PhaseOf[e])
		}
		b.WriteString(rowLabel(tr, c, label))
		b.WriteByte(' ')
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// LogicalMetric renders the logical grid shaded by a per-event metric:
// digits 1-9 scale with the metric value relative to its maximum; '0' marks
// a zero-metric event. A metric slice shorter than the event table treats
// the missing entries as zero instead of failing (partial overlays happen
// when a caller computes a metric over a trace prefix).
func LogicalMetric(s *core.Structure, metric []trace.Time) string {
	tr := s.Trace
	maxStep := int(s.MaxStep())
	if maxStep < 0 {
		return "(empty structure)\n"
	}
	var max trace.Time
	for _, v := range metric {
		if v > max {
			max = v
		}
	}
	const label = 16
	var b strings.Builder
	fmt.Fprintf(&b, "%*s metric max %d\n", label, "", max)
	for _, c := range chareRows(tr) {
		row := make([]byte, maxStep+1)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range s.EventsOfChare(c) {
			var v trace.Time
			if int(e) < len(metric) {
				v = metric[e]
			}
			switch {
			case max == 0 || v == 0:
				row[s.Step[e]] = '0'
			default:
				d := 1 + int(9*v/(max+1))
				if d > 9 {
					d = 9
				}
				row[s.Step[e]] = byte('0' + d)
			}
		}
		b.WriteString(rowLabel(tr, c, label))
		b.WriteByte(' ')
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// Physical renders the trace against bucketed virtual time: each chare row
// shows its serial blocks ('#', or the phase symbol when a structure is
// given), with '-' marking recorded idle on the chare's processor.
func Physical(tr *trace.Trace, s *core.Structure, buckets int) string {
	lo, hi := tr.Span()
	if hi <= lo {
		return "(empty trace)\n"
	}
	span := hi - lo
	bucketOf := func(t trace.Time) int {
		b := int((t - lo) * trace.Time(buckets) / (span + 1))
		if b >= buckets {
			b = buckets - 1
		}
		return b
	}
	const label = 16
	var b strings.Builder
	fmt.Fprintf(&b, "%*s time %d..%d (%d buckets)\n", label, "", lo, hi, buckets)
	for _, c := range chareRows(tr) {
		row := make([]byte, buckets)
		for i := range row {
			row[i] = '.'
		}
		for _, idle := range tr.Idles {
			if idle.PE != tr.Chares[c].Home {
				continue
			}
			for i := bucketOf(idle.Begin); i <= bucketOf(idle.End); i++ {
				row[i] = '-'
			}
		}
		for _, bid := range tr.BlocksOfChare(c) {
			blk := &tr.Blocks[bid]
			mark := byte('#')
			if s != nil && len(blk.Events) > 0 {
				mark = symbol(s.PhaseOf[blk.Events[0]])
			}
			for i := bucketOf(blk.Begin); i <= bucketOf(blk.End); i++ {
				row[i] = mark
			}
		}
		b.WriteString(rowLabel(tr, c, label))
		b.WriteByte(' ')
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// LogicalClustered renders one row per behavioural cluster instead of per
// chare (see internal/charegroup): the representative chare's timeline stands
// for the whole group, labelled with its multiplicity. This is the
// scalable rendering the paper's conclusion asks for.
func LogicalClustered(s *core.Structure, rows []ClusterRow) string {
	tr := s.Trace
	maxStep := int(s.MaxStep())
	if maxStep < 0 {
		return "(empty structure)\n"
	}
	const label = 24
	var b strings.Builder
	fmt.Fprintf(&b, "%*s steps 0..%d, %d phases, %d rows for %d chares\n",
		label, "", maxStep, s.NumPhases(), len(rows), len(tr.Chares))
	for _, cr := range rows {
		row := make([]byte, maxStep+1)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range s.EventsOfChare(cr.Representative) {
			row[s.Step[e]] = symbol(s.PhaseOf[e])
		}
		name := cr.Label
		if len(name) > label {
			name = name[:label]
		}
		fmt.Fprintf(&b, "%-*s ", label, name)
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// ClusterRow is one rendered cluster (defined here so viz does not import
// the cluster package; callers map cluster.Cluster into it).
type ClusterRow struct {
	Representative trace.ChareID
	Label          string
}

// LogicalClusteredWindow renders the clustered logical view restricted to
// the inclusive global-step window [from, to] — the render behind the
// query engine's select=viz, which serves a step slice of a large
// structure without shipping the full grid. An inverted or out-of-range
// window renders as empty.
func LogicalClusteredWindow(s *core.Structure, rows []ClusterRow, from, to int32) string {
	maxStep := s.MaxStep()
	if from < 0 {
		from = 0
	}
	if to > maxStep {
		to = maxStep
	}
	if maxStep < 0 || to < from {
		return "(empty window)\n"
	}
	const label = 24
	var b strings.Builder
	fmt.Fprintf(&b, "%*s steps %d..%d of 0..%d, %d rows for %d chares\n",
		label, "", from, to, maxStep, len(rows), len(s.Trace.Chares))
	for _, cr := range rows {
		row := make([]byte, int(to-from)+1)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range s.EventsOfChare(cr.Representative) {
			if st := s.Step[e]; st >= from && st <= to {
				row[st-from] = symbol(s.PhaseOf[e])
			}
		}
		name := cr.Label
		if len(name) > label {
			name = name[:label]
		}
		fmt.Fprintf(&b, "%-*s ", label, name)
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// svg layout constants.
const (
	cellW, cellH = 14, 16
	marginX      = 140
	marginY      = 24
)

// phaseColor picks a stable colour per phase (golden-angle hue walk;
// runtime phases are greyed).
func phaseColor(s *core.Structure, phase int32) string {
	if s.Phases[phase].Runtime {
		return "#9a9a9a"
	}
	hue := (int(phase) * 137) % 360
	return fmt.Sprintf("hsl(%d,65%%,55%%)", hue)
}

// LogicalSVG renders the logical structure as SVG: one rectangle per event
// at (global step, chare row), coloured by phase, with message lines from
// each send to its receives.
func LogicalSVG(s *core.Structure) string {
	tr := s.Trace
	rows := chareRows(tr)
	rowOf := make(map[trace.ChareID]int, len(rows))
	for i, c := range rows {
		rowOf[c] = i
	}
	maxStep := int(s.MaxStep())
	w := marginX + (maxStep+2)*cellW
	h := marginY + (len(rows)+1)*cellH
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	cx := func(step int32) int { return marginX + int(step)*cellW + cellW/2 }
	cy := func(row int) int { return marginY + row*cellH + cellH/2 }
	// Message lines beneath the event marks.
	for e := range tr.Events {
		ev := &tr.Events[e]
		if ev.Kind != trace.Send || ev.Msg == trace.NoMsg {
			continue
		}
		for _, r := range tr.RecvsOf(ev.Msg) {
			rev := &tr.Events[r]
			fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#cccccc" stroke-width="1"/>`+"\n",
				cx(s.Step[e]), cy(rowOf[ev.Chare]), cx(s.Step[r]), cy(rowOf[rev.Chare]))
		}
	}
	for i, c := range rows {
		fmt.Fprintf(&b, `<text x="4" y="%d">%s</text>`+"\n", cy(i)+4, tr.Chares[c].Name)
		for _, e := range s.EventsOfChare(c) {
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s step %d phase %d</title></rect>`+"\n",
				marginX+int(s.Step[e])*cellW+1, marginY+i*cellH+1, cellW-2, cellH-2,
				phaseColor(s, s.PhaseOf[e]), tr.Events[e].Kind, s.Step[e], s.PhaseOf[e])
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// PhaseSummary prints one line per phase ordered by global offset: kind,
// leap, offset, step span, chare and event counts — the textual form of the
// paper's phase-coloured figures.
func PhaseSummary(s *core.Structure) string {
	order := make([]int32, len(s.Phases))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := &s.Phases[order[i]], &s.Phases[order[j]]
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return a.ID < b.ID
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-5s %-8s %-4s %-6s %-12s %-7s %-7s\n",
		"phase", "sym", "kind", "leap", "offset", "steps", "chares", "events")
	for _, pi := range order {
		p := &s.Phases[pi]
		kind := "app"
		if p.Runtime {
			kind = "runtime"
		}
		lo, hi := p.GlobalSpan()
		fmt.Fprintf(&b, "%-6d %-5c %-8s %-4d %-6d %3d..%-6d %-7d %-7d\n",
			pi, symbol(int32(pi)), kind, p.Leap, p.Offset, lo, hi, len(p.Chares), len(p.Events))
	}
	return b.String()
}
