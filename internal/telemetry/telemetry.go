// Package telemetry instruments the extraction pipeline itself: the tool
// that recovers logical structure from traces can record — and export — a
// trace of its own execution.
//
// Three pieces compose:
//
//   - Recorder is the pluggable span sink. The pipeline opens a span per
//     stage, per enforce-orderability round, per worker chunk of every
//     parallel sweep, and per ordered phase, so fan-out imbalance is visible
//     in a timeline viewer. Disabled is the no-op recorder: span calls are
//     empty-bodied and instrumentation sites gate their extra work on
//     Enabled(), so a disabled pipeline pays only a branch.
//   - Registry is the lightweight metrics store (counters, gauges,
//     histograms). core.Extract always records into one — it is what backs
//     core.Stats — and registries merge, so a CLI can aggregate many
//     extractions into a single machine-readable report.
//   - The exporters: StatsExport is the versioned JSON schema behind the
//     -stats-json flag (diffable across runs), and WriteChromeTrace emits
//     the Collector's spans as Chrome trace-event JSON for Perfetto
//     (-self-trace).
//
// Recording never influences the analysis: recorders only observe, so the
// recovered Structure is byte-identical with telemetry on or off (the
// determinism suite checks exactly that).
package telemetry

// SpanID identifies a span within one Recorder. NoSpan is the absent parent
// (a root span) and the return of the no-op recorder.
type SpanID int32

// NoSpan is the nil span: the parent of root spans, and what disabled
// recorders return.
const NoSpan SpanID = -1

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	isInt bool
}

// String builds a string-valued span attribute.
func String(k, v string) Attr { return Attr{Key: k, Str: v} }

// Int builds an integer-valued span attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Int: v, isInt: true} }

// laneKey is the reserved attribute key carrying a span's worker lane.
const laneKey = "lane"

// Lane places a span on worker lane n of its run: the Collector maps lanes
// to distinct Chrome-trace thread ids under the span's root, which is how
// per-worker spans of a parallel stage land on separate timeline rows.
func Lane(n int) Attr { return Int(laneKey, int64(n)) }

// Recorder is the pluggable span sink threaded through the pipeline.
// Implementations must be safe for concurrent use: parallel stages start
// and end spans from many goroutines.
type Recorder interface {
	// Enabled reports whether spans are recorded. Instrumentation sites use
	// it to skip attribute construction and per-span bookkeeping entirely
	// when recording is off.
	Enabled() bool
	// StartSpan opens a span under parent (NoSpan for a root) and returns
	// its id. Attrs annotate the span; Lane assigns a worker lane.
	StartSpan(name string, parent SpanID, attrs ...Attr) SpanID
	// EndSpan closes a span. Ending NoSpan is a no-op.
	EndSpan(id SpanID)
}

// nop is the disabled recorder.
type nop struct{}

func (nop) Enabled() bool                            { return false }
func (nop) StartSpan(string, SpanID, ...Attr) SpanID { return NoSpan }
func (nop) EndSpan(SpanID)                           {}

// Disabled is the no-op Recorder: zero allocation, zero bookkeeping. It is
// what core.Extract substitutes for a nil Options.Telemetry.
var Disabled Recorder = nop{}
