GO ?= go

.PHONY: build test verify bench bench-overhead fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 recipe (see README "Testing" and
# .claude/skills/verify/SKILL.md).
verify: build test
	$(GO) vet ./...
	$(GO) test -race ./internal/core ./internal/partition ./internal/tracefile

# bench regenerates BENCH_extract.json, the machine-readable perf
# trajectory (merge-tree extraction + ExtractBatch at parallelism 1/2/4).
bench:
	$(GO) run ./cmd/experiments -bench-json BENCH_extract.json

# bench-overhead checks the telemetry off/nop/recording cost (DESIGN.md §3b).
bench-overhead:
	$(GO) test -bench 'BenchmarkTelemetryOverhead' -run '^$$' -benchtime 30x .

fmt:
	gofmt -l -w .
