package sim

import "fmt"

// SDAG is a declarative Structured Dagger program (§2.1): a per-chare
// control flow built from `serial` blocks and `when` clauses, optionally
// wrapped in a loop. The runtime schedules each serial as its own entry
// method execution; the control transfer between steps passes through the
// runtime and is NOT recorded in the trace — exactly the situation the
// paper's analysis must compensate for. A when clause's body executes
// inside the entry-method execution of the message that satisfies it, the
// behaviour behind the paper's absorb rule.
//
// Usage:
//
//	prog := sim.NewSDAG(arr)
//	var ghost sim.EntryRef
//	prog.Serial("begin", func(ctx *sim.Ctx) { ... ctx.Send(nb, ghost, nil) ... })
//	prog.BeginLoop(func(idx int) int { return iters })
//	prog.Serial("advance", func(ctx *sim.Ctx) { ... })
//	ghost = prog.When("ghost", countFn, func(ctx *sim.Ctx, msgs []sim.Message) { ... })
//	prog.EndLoop()
//	prog.Install(rt) // registers entries and spawns every element
type SDAG struct {
	arr       *Array
	steps     []sdagStep
	installed bool
	// loop bounds: loopStart/loopEnd delimit the repeated steps; loopCount
	// gives the per-element iteration count.
	loopStart, loopEnd int
	loopCount          func(idx int) int
	inLoop             bool
	st                 []sdagElemState
}

// sdagStep is one program position.
type sdagStep struct {
	name   string
	serial func(ctx *Ctx)                 // non-nil for serial steps
	when   func(ctx *Ctx, msgs []Message) // non-nil for when steps
	count  func(idx int) int
	entry  EntryRef
}

// sdagElemState is one element's execution position.
type sdagElemState struct {
	step int
	iter int
	buf  [][]Message // per step: buffered early arrivals
	done bool
}

// NewSDAG starts a program for an array.
func NewSDAG(arr *Array) *SDAG {
	return &SDAG{arr: arr, loopStart: -1, loopEnd: -1}
}

// Serial appends a serial block: code the runtime executes as one
// uninterrupted entry method.
func (p *SDAG) Serial(name string, fn func(ctx *Ctx)) {
	p.checkMutable()
	p.steps = append(p.steps, sdagStep{name: name, serial: fn})
}

// When appends a when clause: the program waits at this step until count
// messages for the returned entry have arrived, then runs the body (inside
// the block of the completing delivery) with all of them. Messages arriving
// before the program reaches the step are buffered, as the generated
// Charm++ entries do.
func (p *SDAG) When(name string, count func(idx int) int, body func(ctx *Ctx, msgs []Message)) EntryRef {
	p.checkMutable()
	idx := len(p.steps)
	step := sdagStep{name: name, when: body, count: count}
	p.steps = append(p.steps, step)
	// The when target entry: deliveries buffer and possibly complete the
	// clause. The trace-level entry (with its parse-order serial number) is
	// registered at Install, once program order is known.
	ref := p.arr.registerDeferred(func(ctx *Ctx, m Message) {
		p.arrive(ctx, idx, m)
	})
	p.steps[idx].entry = ref
	return ref
}

// BeginLoop opens the repeated section; the count function gives each
// element its iteration count (evaluated once, at first entry).
func (p *SDAG) BeginLoop(count func(idx int) int) {
	p.checkMutable()
	if p.inLoop {
		panic("sim: nested SDAG loops are not supported")
	}
	p.inLoop = true
	p.loopStart = len(p.steps)
	p.loopCount = count
}

// EndLoop closes the repeated section.
func (p *SDAG) EndLoop() {
	p.checkMutable()
	if !p.inLoop {
		panic("sim: EndLoop without BeginLoop")
	}
	p.inLoop = false
	p.loopEnd = len(p.steps)
}

func (p *SDAG) checkMutable() {
	if p.installed {
		panic("sim: SDAG modified after Install")
	}
}

// Install finalizes the program: serial steps get generated entries with
// parse-order serial numbers (spaced apart, as distinct whens' generated
// serials need not be adjacent), and every element is spawned at step 0.
func (p *SDAG) Install(rt *Runtime) {
	if p.installed {
		panic("sim: Install called twice")
	}
	if p.inLoop {
		panic("sim: Install inside an open loop")
	}
	p.installed = true
	if len(p.steps) == 0 {
		panic("sim: empty SDAG program")
	}
	for i := range p.steps {
		s := &p.steps[i]
		serialNo := 3 * i // spaced: closeness, not adjacency, of generated serials
		if s.serial != nil {
			i := i
			s.entry = p.arr.RegisterSDAG(s.name, serialNo, i > 0 && p.steps[i-1].when != nil,
				func(ctx *Ctx, m Message) {
					p.steps[i].serial(ctx)
					p.advance(ctx, i)
				})
		} else {
			// Fill in the deferred when entry's trace metadata.
			p.arr.entries[s.entry.idx].name = s.name
			p.arr.entries[s.entry.idx].tid = p.arr.rt.tb.AddSDAGEntry(
				fmt.Sprintf("%s::%s", p.arr.name, s.name), serialNo, true)
		}
	}
	p.st = make([]sdagElemState, p.arr.Len())
	for i := range p.st {
		p.st[i].buf = make([][]Message, len(p.steps))
		p.st[i].step = 0
	}
	if p.steps[0].serial != nil {
		for i := 0; i < p.arr.Len(); i++ {
			rt.Spawn(p.arr.At(i), p.steps[0].entry, nil)
		}
	}
	// A program starting with a when simply waits for messages.
}

// arrive handles a delivery for the when clause at step idx.
func (p *SDAG) arrive(ctx *Ctx, idx int, m Message) {
	st := &p.st[ctx.Index()]
	st.buf[idx] = append(st.buf[idx], m)
	ctx.Compute(5) // buffering overhead of the generated entry
	p.fire(ctx, idx)
}

// fire runs the when body at step idx if the element is positioned there
// and enough messages are buffered, then advances.
func (p *SDAG) fire(ctx *Ctx, idx int) {
	st := &p.st[ctx.Index()]
	if st.done || st.step != idx {
		return
	}
	step := &p.steps[idx]
	need := step.count(ctx.Index())
	if len(st.buf[idx]) < need {
		return
	}
	msgs := st.buf[idx][:need]
	st.buf[idx] = append([]Message(nil), st.buf[idx][need:]...)
	step.when(ctx, msgs)
	p.advance(ctx, idx)
}

// advance moves the element past step idx: loop bookkeeping, then either
// schedule the next serial through (unrecorded) runtime control or arm the
// next when, firing it immediately if its messages already arrived.
func (p *SDAG) advance(ctx *Ctx, idx int) {
	st := &p.st[ctx.Index()]
	next := idx + 1
	if p.loopEnd >= 0 && next == p.loopEnd {
		st.iter++
		if st.iter < p.loopCount(ctx.Index()) {
			next = p.loopStart
		}
	}
	if next >= len(p.steps) {
		st.done = true
		return
	}
	st.step = next
	if p.steps[next].serial != nil {
		// SDAG control through the runtime: not recorded in the trace.
		ctx.SendUntraced(p.arr.At(ctx.Index()), p.steps[next].entry, nil)
		return
	}
	// Next step is a when; it may already be satisfied by early arrivals.
	p.fire(ctx, next)
}

// Done reports whether an element finished the program (test helper).
func (p *SDAG) Done(idx int) bool { return p.st[idx].done }
