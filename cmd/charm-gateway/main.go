// Command charm-gateway fronts a fleet of charmd nodes with a
// consistent-hash router: every trace digest maps to R ring successors, so
// uploads land on the nodes that will serve them, repeat reads of one
// trace hit the same warm caches, and a node loss moves only ~1/N of the
// keyspace. Slow primaries are hedged — after an adaptive delay the same
// read is raced against the next replica and the first answer wins — and
// cache misses are replicated to the remaining successors in the
// background.
//
// Usage:
//
//	charm-gateway -addr :8090 -peers n0=http://h0:8080,n1=http://h1:8080,n2=http://h2:8080
//
//	curl -sS --data-binary @jacobi.trace localhost:8090/v1/traces
//	curl -sS localhost:8090/v1/traces/<digest>/structure
//	curl -sS localhost:8090/cluster
//	curl -sS localhost:8090/nodes/n1/debug/stats
//
// The member list is static (-peers or -peers-config); liveness is probed
// continuously via each node's /readyz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"charmtrace/internal/cli"
	"charmtrace/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	peers := flag.String("peers", "", "cluster member list as name=url,name=url")
	peersConfig := flag.String("peers-config", "", "path to a JSON cluster member file (alternative to -peers)")
	replication := flag.Int("replication", 0, "replicas per trace digest, R (0 = 2; clamped to the member count)")
	hedgeAfter := flag.Duration("hedge-after", 0, "fixed hedge delay (0 = adapt to the p95 proxy latency)")
	hedgeMax := flag.Duration("hedge-max", 0, "upper clamp on the adaptive hedge delay (0 = 2s, negative = hedging off)")
	probeInterval := flag.Duration("probe-interval", 0, "liveness probe period against each node's /readyz (0 = 2s)")
	maxUpload := flag.Int64("max-upload", 256<<20, "maximum trace upload size in bytes")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	logging := cli.NewLogging("json", flag.CommandLine)
	flag.Parse()

	accessLog, err := logging.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charm-gateway:", err)
		os.Exit(1)
	}

	var members []cluster.Member
	switch {
	case *peers != "" && *peersConfig != "":
		err = errors.New("-peers and -peers-config are mutually exclusive")
	case *peers != "":
		members, err = cluster.ParsePeers(*peers)
	case *peersConfig != "":
		members, err = cluster.LoadMembersFile(*peersConfig)
	default:
		err = errors.New("a member list is required (-peers or -peers-config)")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "charm-gateway:", err)
		os.Exit(1)
	}

	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Members:        members,
		Replication:    *replication,
		HedgeAfter:     *hedgeAfter,
		HedgeMax:       *hedgeMax,
		ProbeInterval:  *probeInterval,
		MaxUploadBytes: *maxUpload,
		AccessLog:      accessLog,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "charm-gateway:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	r := *replication
	if r <= 0 {
		r = cluster.DefaultReplication
	}
	if r > len(members) {
		r = len(members)
	}
	fmt.Printf("charm-gateway: serving on %s (%d members, R=%d)\n", *addr, len(members), r)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "charm-gateway: signal received, draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "charm-gateway: shutdown:", err)
		}
		gw.Close()
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "charm-gateway:", err)
			os.Exit(1)
		}
	}
}
