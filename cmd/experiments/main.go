// Command experiments regenerates every figure of the paper's evaluation:
// for each figure it runs the corresponding workload(s) on the bundled
// simulators, applies the logical-structure algorithm, and prints the
// series/claims the paper reports alongside the measured values.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run fig16 # one experiment
//	experiments -list
//	experiments -big       # include the full-size fig10/fig19 points
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

// experiment is one reproducible figure.
type experiment struct {
	id    string
	title string
	run   func(big bool)
}

var experiments []experiment

func register(id, title string, run func(big bool)) {
	experiments = append(experiments, experiment{id, title, run})
}

func main() {
	runID := flag.String("run", "", "run only this experiment id (e.g. fig16)")
	list := flag.Bool("list", false, "list experiments")
	big := flag.Bool("big", false, "use paper-scale sizes where they are expensive (fig10: 1024 procs, fig19: 13.8k chares)")
	flag.Parse()

	sort.Slice(experiments, func(i, j int) bool { return experiments[i].id < experiments[j].id })
	if *list {
		for _, e := range experiments {
			fmt.Printf("  %-6s %s\n", e.id, e.title)
		}
		return
	}
	ran := false
	for _, e := range experiments {
		if *runID != "" && e.id != *runID {
			continue
		}
		ran = true
		fmt.Printf("================================================================\n")
		fmt.Printf("%s: %s\n", e.id, e.title)
		fmt.Printf("================================================================\n")
		e.run(*big)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *runID)
		os.Exit(1)
	}
}
