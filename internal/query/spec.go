// Package query is the structure query engine: indexed slicing,
// aggregation and paging over a recovered logical structure.
//
// The paper's thesis is that logical structure (phases → steps → chares,
// §3) makes large traces navigable; this package makes it *servable*. A
// one-time Index over a core.Structure precomputes phase step-spans,
// per-chare occupied steps, a step-ordered event table and per-phase /
// per-chare §4 metric rollups, so that any slicing query — "chares 3..7 of
// phase 12, steps 40..80" — touches only the rows it returns instead of
// rescanning the trace. On top of the index, a small validated Spec
// (select structure | steps | metrics | viz, filters by phase/chare/step
// range, group-by with count/sum/mean/max aggregates, field projection,
// cursor pagination) compiles into a plan and executes under a context,
// returning deterministically ordered rows: concatenating all pages of any
// filtered query is byte-for-byte the corresponding slice of the full
// result, at every extraction parallelism.
//
// The engine is shared by charmd (POST /v1/traces/{digest}/query plus the
// query parameters retrofitted onto the structure/steps/metrics GET
// endpoints) and the chquery CLI, and its index is cached in resultcache
// alongside the decoded structure so repeat queries never rebuild it.
package query

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Spec is one validated query. The zero value is invalid; clients submit
// it as JSON (the POST /query body and the chquery -spec file) or have it
// derived from URL parameters (SpecFromParams).
type Spec struct {
	// Select picks the row source: "structure" (one row per phase),
	// "steps" (one row per dependency event, in logical order), "metrics"
	// (per-event §4 metrics, or group-by rollups), "viz" (clustered
	// timeline rows over the filtered window).
	Select string `json:"select"`
	// Filter restricts rows; a zero filter selects everything.
	Filter Filter `json:"filter,omitzero"`
	// GroupBy aggregates metrics rows by "phase" or "chare" ("" = no
	// grouping). Only valid with Select == "metrics".
	GroupBy string `json:"group_by,omitempty"`
	// Aggregates picks which aggregate columns grouped rows carry, from
	// count, sum, mean, max. Empty selects all four. Only valid with
	// GroupBy set.
	Aggregates []string `json:"aggregates,omitempty"`
	// Fields projects each row to this subset of its columns (projected
	// rows render with keys in lexicographic order). Empty keeps every
	// column.
	Fields []string `json:"fields,omitempty"`
	// Limit is the page size; 0 returns everything in one page.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes a paged query where the previous page's NextCursor
	// left off. It is opaque and bound to the rest of the spec: reusing it
	// with different select/filter/group settings is a validation error.
	Cursor string `json:"cursor,omitempty"`
}

// Filter restricts the rows a query touches. All three dimensions compose
// (logical AND); within one dimension, listed values union.
type Filter struct {
	// Phases keeps rows belonging to these phase IDs.
	Phases []int32 `json:"phases,omitempty"`
	// Chares keeps rows belonging to these chare IDs.
	Chares []int32 `json:"chares,omitempty"`
	// Steps keeps rows whose global step lies in the inclusive range.
	Steps *StepRange `json:"steps,omitempty"`
}

// StepRange is an inclusive global-step window.
type StepRange struct {
	From int32 `json:"from"`
	To   int32 `json:"to"`
}

// IsZero reports an all-pass filter (used by json omitzero).
func (f Filter) IsZero() bool {
	return len(f.Phases) == 0 && len(f.Chares) == 0 && f.Steps == nil
}

// Error is a spec validation failure, attributed to the field that caused
// it so HTTP surfaces can return field-level 400s (never 500s).
type Error struct {
	Field string // JSON path of the offending field, e.g. "filter.steps"
	Msg   string
}

func (e *Error) Error() string { return fmt.Sprintf("query spec: %s: %s", e.Field, e.Msg) }

func specErrf(field, format string, args ...any) *Error {
	return &Error{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Selects and group-by values the engine accepts.
const (
	SelectStructure = "structure"
	SelectSteps     = "steps"
	SelectMetrics   = "metrics"
	SelectViz       = "viz"

	GroupByPhase = "phase"
	GroupByChare = "chare"
)

// aggNames is the canonical aggregate order (the order grouped columns
// render in when all are selected).
var aggNames = []string{"count", "sum", "mean", "max"}

// ParseSpec decodes and validates a JSON spec, rejecting unknown fields so
// a typo like "filters" fails loudly instead of silently selecting
// everything.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, specErrf("(body)", "invalid JSON: %v", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks every field, returning a *Error naming the first
// offending one. Filter bounds against a concrete structure (phase and
// chare existence) are checked at execution time, also as *Error.
func (s *Spec) Validate() error {
	switch s.Select {
	case SelectStructure, SelectSteps, SelectMetrics, SelectViz:
	case "":
		return specErrf("select", "required: one of structure, steps, metrics, viz")
	default:
		return specErrf("select", "unknown value %q (want structure, steps, metrics or viz)", s.Select)
	}
	switch s.GroupBy {
	case "":
	case GroupByPhase, GroupByChare:
		if s.Select != SelectMetrics {
			return specErrf("group_by", "only valid with select=metrics (got select=%s)", s.Select)
		}
	default:
		return specErrf("group_by", "unknown value %q (want phase or chare)", s.GroupBy)
	}
	if len(s.Aggregates) > 0 && s.GroupBy == "" {
		return specErrf("aggregates", "require group_by")
	}
	for _, a := range s.Aggregates {
		ok := false
		for _, known := range aggNames {
			if a == known {
				ok = true
			}
		}
		if !ok {
			return specErrf("aggregates", "unknown aggregate %q (want count, sum, mean or max)", a)
		}
	}
	if s.Limit < 0 {
		return specErrf("limit", "must be >= 0, got %d", s.Limit)
	}
	if r := s.Filter.Steps; r != nil {
		if r.From < 0 {
			return specErrf("filter.steps.from", "must be >= 0, got %d", r.From)
		}
		if r.To < r.From {
			return specErrf("filter.steps", "empty range: to=%d < from=%d", r.To, r.From)
		}
	}
	for _, p := range s.Filter.Phases {
		if p < 0 {
			return specErrf("filter.phases", "negative phase id %d", p)
		}
	}
	for _, c := range s.Filter.Chares {
		if c < 0 {
			return specErrf("filter.chares", "negative chare id %d", c)
		}
	}
	if len(s.Fields) > 0 {
		cols := columnsFor(s)
		for _, f := range s.Fields {
			if _, ok := cols[f]; !ok {
				return specErrf("fields", "unknown field %q for select=%s%s (have %s)",
					f, s.Select, groupSuffix(s.GroupBy), strings.Join(sortedKeys(cols), ", "))
			}
		}
	}
	return nil
}

func groupSuffix(g string) string {
	if g == "" {
		return ""
	}
	return " group_by=" + g
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// canonical renders the pagination-invariant part of the spec: everything
// except Cursor (Limit included — changing the page size invalidates
// cursors, keeping offset arithmetic unambiguous). Cursors and ETags both
// key on it.
func (s Spec) canonical() string {
	c := s
	c.Cursor = ""
	b, _ := json.Marshal(c) // struct-typed: cannot fail, field order fixed
	return string(b)
}

// aggsSelected normalizes Spec.Aggregates into the canonical order with an
// empty list meaning all.
func (s *Spec) aggsSelected() []string {
	if len(s.Aggregates) == 0 {
		return aggNames
	}
	out := make([]string, 0, len(s.Aggregates))
	for _, known := range aggNames {
		for _, a := range s.Aggregates {
			if a == known {
				out = append(out, known)
				break
			}
		}
	}
	return out
}
