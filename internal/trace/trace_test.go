package trace

import (
	"strings"
	"testing"
)

// tinyTrace builds a two-chare, two-PE trace: chare 0 sends to chare 1.
func tinyTrace(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder(2)
	eMain := b.AddEntry("main")
	eRecv := b.AddEntry("recvResult")
	arr := ArrayID(0)
	c0 := b.AddChare("arr[0]", arr, 0, 0)
	c1 := b.AddChare("arr[1]", arr, 1, 1)

	m := b.NewMsg()
	b.BeginBlock(c0, 0, eMain, 0)
	b.Send(c0, m, 5)
	b.EndBlock(c0, 10)

	b.BeginBlock(c1, 1, eRecv, 20)
	b.Recv(c1, m, 20)
	b.EndBlock(c1, 30)

	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return tr
}

func TestBuilderRoundTrip(t *testing.T) {
	tr := tinyTrace(t)
	if got := len(tr.Chares); got != 2 {
		t.Fatalf("chares = %d, want 2", got)
	}
	if got := len(tr.Blocks); got != 2 {
		t.Fatalf("blocks = %d, want 2", got)
	}
	if got := len(tr.Events); got != 2 {
		t.Fatalf("events = %d, want 2", got)
	}
	if !tr.Indexed() {
		t.Fatal("trace not indexed after Finish")
	}
}

func TestMessageMatching(t *testing.T) {
	tr := tinyTrace(t)
	send := tr.Events[0]
	if send.Kind != Send {
		t.Fatalf("event 0 kind = %v, want send", send.Kind)
	}
	if got := tr.SendOf(send.Msg); got != send.ID {
		t.Fatalf("SendOf(%d) = %d, want %d", send.Msg, got, send.ID)
	}
	recvs := tr.RecvsOf(send.Msg)
	if len(recvs) != 1 || tr.Events[recvs[0]].Kind != Recv {
		t.Fatalf("RecvsOf(%d) = %v, want one recv", send.Msg, recvs)
	}
	if tr.SendOf(MsgID(999)) != NoEvent {
		t.Fatal("SendOf(unknown) should be NoEvent")
	}
}

func TestBlocksOfChareOrdered(t *testing.T) {
	b := NewBuilder(1)
	e := b.AddEntry("work")
	c := b.AddChare("solo", NoArray, -1, 0)
	// Create blocks out of time order: later-created block begins earlier.
	b.BeginBlock(c, 0, e, 200)
	b.EndBlock(c, 210)
	b.BeginBlock(c, 0, e, 100)
	b.EndBlock(c, 110)
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	ids := tr.BlocksOfChare(c)
	if len(ids) != 2 {
		t.Fatalf("blocks = %d, want 2", len(ids))
	}
	if tr.Blocks[ids[0]].Begin > tr.Blocks[ids[1]].Begin {
		t.Fatal("BlocksOfChare not ordered by begin time")
	}
}

func TestValidateRejectsOverlappingPEBlocks(t *testing.T) {
	b := NewBuilder(1)
	e := b.AddEntry("work")
	c0 := b.AddChare("a", NoArray, -1, 0)
	c1 := b.AddChare("b", NoArray, -1, 0)
	b.BeginBlock(c0, 0, e, 0)
	b.EndBlock(c0, 100)
	b.BeginBlock(c1, 0, e, 50) // overlaps block of c0 on PE 0
	b.EndBlock(c1, 150)
	_, err := b.Finish()
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("Finish err = %v, want overlap error", err)
	}
}

func TestValidateRejectsRecvWithoutSend(t *testing.T) {
	b := NewBuilder(1)
	e := b.AddEntry("work")
	c := b.AddChare("a", NoArray, -1, 0)
	b.BeginBlock(c, 0, e, 0)
	b.Recv(c, MsgID(7), 0) // never sent
	b.EndBlock(c, 10)
	_, err := b.Finish()
	if err == nil || !strings.Contains(err.Error(), "never sent") {
		t.Fatalf("Finish err = %v, want never-sent error", err)
	}
}

func TestFinishRejectsOpenBlocks(t *testing.T) {
	b := NewBuilder(1)
	e := b.AddEntry("work")
	c := b.AddChare("a", NoArray, -1, 0)
	b.BeginBlock(c, 0, e, 0)
	_, err := b.Finish()
	if err == nil || !strings.Contains(err.Error(), "open blocks") {
		t.Fatalf("Finish err = %v, want open-blocks error", err)
	}
}

func TestBeginBlockPanicsWhenOpen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nested BeginBlock")
		}
	}()
	b := NewBuilder(1)
	e := b.AddEntry("work")
	c := b.AddChare("a", NoArray, -1, 0)
	b.BeginBlock(c, 0, e, 0)
	b.BeginBlock(c, 0, e, 5)
}

func TestBroadcastHasManyRecvs(t *testing.T) {
	b := NewBuilder(1)
	e := b.AddEntry("bcast")
	root := b.AddChare("root", NoArray, -1, 0)
	var kids []ChareID
	for i := 0; i < 3; i++ {
		kids = append(kids, b.AddChare("kid", ArrayID(0), i, 0))
	}
	m := b.NewMsg()
	b.BeginBlock(root, 0, e, 0)
	b.Send(root, m, 0)
	b.EndBlock(root, 1)
	for i, k := range kids {
		begin := Time(10 + i)
		b.BeginBlock(k, 0, e, begin)
		b.Recv(k, m, begin)
		b.EndBlock(k, begin)
	}
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got := len(tr.RecvsOf(m)); got != 3 {
		t.Fatalf("broadcast recvs = %d, want 3", got)
	}
}

func TestSpanAndCounts(t *testing.T) {
	tr := tinyTrace(t)
	lo, hi := tr.Span()
	if lo != 0 || hi != 30 {
		t.Fatalf("Span = (%d,%d), want (0,30)", lo, hi)
	}
	if tr.CountKind(Send) != 1 || tr.CountKind(Recv) != 1 {
		t.Fatalf("counts = %d sends, %d recvs; want 1,1", tr.CountKind(Send), tr.CountKind(Recv))
	}
}

func TestIdleRecords(t *testing.T) {
	b := NewBuilder(2)
	e := b.AddEntry("work")
	c := b.AddChare("a", NoArray, -1, 1)
	b.BeginBlock(c, 1, e, 100)
	b.EndBlock(c, 110)
	b.Idle(1, 40, 100)
	b.Idle(1, 10, 10) // zero length: dropped
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if len(tr.Idles) != 1 {
		t.Fatalf("idles = %d, want 1 (zero-length dropped)", len(tr.Idles))
	}
	idle, ok := tr.IdleBefore(1, 100)
	if !ok || idle.Duration() != 60 {
		t.Fatalf("IdleBefore = %+v ok=%v, want 60ns idle", idle, ok)
	}
	if _, ok := tr.IdleBefore(0, 100); ok {
		t.Fatal("IdleBefore on wrong PE should miss")
	}
}

func TestApplicationChares(t *testing.T) {
	b := NewBuilder(1)
	b.AddChare("app", NoArray, -1, 0)
	b.AddRuntimeChare("redmgr", 0)
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	apps := tr.ApplicationChares()
	if len(apps) != 1 || apps[0] != 0 {
		t.Fatalf("ApplicationChares = %v, want [0]", apps)
	}
	if !tr.IsRuntimeChare(1) || tr.IsRuntimeChare(0) {
		t.Fatal("runtime flags wrong")
	}
}
