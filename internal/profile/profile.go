// Package profile aggregates a trace into the summary statistics a
// Projections-style profile view shows: time and executions per entry
// method, busy/idle per processor, and message-volume counts. Profiles are
// the complement the paper contrasts its trace analysis with — cheap
// aggregate context before diving into logical structure.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"charmtrace/internal/trace"
)

// EntryStats aggregates one entry method.
type EntryStats struct {
	Entry  trace.EntryID
	Name   string
	Count  int
	Total  trace.Time
	Min    trace.Time
	Max    trace.Time
	Events int
}

// Mean returns the average block duration.
func (e *EntryStats) Mean() trace.Time {
	if e.Count == 0 {
		return 0
	}
	return e.Total / trace.Time(e.Count)
}

// PEStats aggregates one processor.
type PEStats struct {
	PE     trace.PE
	Blocks int
	Busy   trace.Time
	Idle   trace.Time
}

// Report is a full trace profile.
type Report struct {
	// Entries, sorted by descending total time; only entries with at least
	// one execution appear.
	Entries []EntryStats
	// PEs, indexed by processor.
	PEs []PEStats
	// Messages counts recorded sends; CrossPE counts the (send, receive)
	// pairs whose endpoints ran on different processors.
	Messages int
	CrossPE  int
	// Span is the trace's overall virtual-time extent.
	Span trace.Time
}

// Build computes the profile of a trace.
func Build(tr *trace.Trace) *Report {
	r := &Report{PEs: make([]PEStats, tr.NumPE)}
	byEntry := make(map[trace.EntryID]*EntryStats)
	for i := range r.PEs {
		r.PEs[i].PE = trace.PE(i)
	}
	for i := range tr.Blocks {
		b := &tr.Blocks[i]
		es := byEntry[b.Entry]
		if es == nil {
			es = &EntryStats{Entry: b.Entry, Name: tr.Entries[b.Entry].Name, Min: 1<<62 - 1}
			byEntry[b.Entry] = es
		}
		d := b.Duration()
		es.Count++
		es.Total += d
		es.Events += len(b.Events)
		if d < es.Min {
			es.Min = d
		}
		if d > es.Max {
			es.Max = d
		}
		r.PEs[b.PE].Blocks++
		r.PEs[b.PE].Busy += d
	}
	for _, idle := range tr.Idles {
		r.PEs[idle.PE].Idle += idle.Duration()
	}
	for _, ev := range tr.Events {
		if ev.Kind != trace.Send || ev.Msg == trace.NoMsg {
			continue
		}
		r.Messages++
		for _, recv := range tr.RecvsOf(ev.Msg) {
			if tr.Events[recv].PE != ev.PE {
				r.CrossPE++
			}
		}
	}
	for _, es := range byEntry {
		r.Entries = append(r.Entries, *es)
	}
	sort.Slice(r.Entries, func(i, j int) bool {
		if r.Entries[i].Total != r.Entries[j].Total {
			return r.Entries[i].Total > r.Entries[j].Total
		}
		return r.Entries[i].Entry < r.Entries[j].Entry
	})
	lo, hi := tr.Span()
	r.Span = hi - lo
	return r
}

// String renders the profile as tables.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "entry methods by total time (span %d ns):\n", r.Span)
	fmt.Fprintf(&b, "  %-32s %8s %12s %10s %10s %10s %8s\n",
		"entry", "count", "total", "mean", "min", "max", "events")
	for i := range r.Entries {
		e := &r.Entries[i]
		fmt.Fprintf(&b, "  %-32s %8d %12d %10d %10d %10d %8d\n",
			e.Name, e.Count, e.Total, e.Mean(), e.Min, e.Max, e.Events)
	}
	fmt.Fprintf(&b, "processors:\n")
	fmt.Fprintf(&b, "  %-4s %8s %12s %12s %9s\n", "pe", "blocks", "busy", "idle", "busy%")
	for i := range r.PEs {
		p := &r.PEs[i]
		pct := 0.0
		if r.Span > 0 {
			pct = 100 * float64(p.Busy) / float64(r.Span)
		}
		fmt.Fprintf(&b, "  %-4d %8d %12d %12d %8.1f%%\n", p.PE, p.Blocks, p.Busy, p.Idle, pct)
	}
	fmt.Fprintf(&b, "messages: %d recorded sends, %d cross-processor deliveries\n",
		r.Messages, r.CrossPE)
	return b.String()
}
