package core

import (
	"fmt"

	"charmtrace/internal/trace"
)

// Validate checks the structural invariants of a recovered logical
// structure (Section 3 and DESIGN.md §6):
//
//   - every dependency event is assigned to exactly one phase and has
//     non-negative local and global steps;
//   - the phase DAG is acyclic and global offsets respect it;
//   - a receive's global step is at least one over its matching send's;
//   - no two events of one chare share a global step;
//   - steps strictly increase along each chare's logical timeline;
//   - events of one serial block appear in recorded relative order along
//     their chare's timeline (reordering permutes blocks, never the events
//     inside one).
func (s *Structure) Validate() error {
	tr := s.Trace
	for e := range tr.Events {
		if s.PhaseOf[e] < 0 || int(s.PhaseOf[e]) >= len(s.Phases) {
			return fmt.Errorf("core: event %d has no phase", e)
		}
		if s.LocalStep[e] < 0 {
			return fmt.Errorf("core: event %d has no local step", e)
		}
		if s.Step[e] < 0 {
			return fmt.Errorf("core: event %d has no global step", e)
		}
		ph := &s.Phases[s.PhaseOf[e]]
		if s.Step[e] != ph.Offset+s.LocalStep[e] {
			return fmt.Errorf("core: event %d global step %d != offset %d + local %d",
				e, s.Step[e], ph.Offset, s.LocalStep[e])
		}
	}
	if _, acyclic := s.DAG.TopoSort(); !acyclic {
		return fmt.Errorf("core: phase DAG is cyclic")
	}
	for p := range s.Phases {
		for _, q := range s.DAG.Adj[p] {
			need := s.Phases[p].Offset + s.Phases[p].MaxLocalStep + 1
			if s.Phases[q].Offset < need {
				return fmt.Errorf("core: phase %d offset %d below predecessor %d requirement %d",
					q, s.Phases[q].Offset, p, need)
			}
		}
	}
	for e := range tr.Events {
		ev := &tr.Events[e]
		if ev.Kind != trace.Recv || ev.Msg == trace.NoMsg {
			continue
		}
		send := tr.SendOf(ev.Msg)
		if send == trace.NoEvent {
			continue
		}
		if s.Step[e] < s.Step[send]+1 {
			return fmt.Errorf("core: recv %d at step %d not after send %d at step %d",
				e, s.Step[e], send, s.Step[send])
		}
	}
	for c := range tr.Chares {
		seq := s.chareEvents[c]
		for i := 0; i+1 < len(seq); i++ {
			if s.Step[seq[i]] >= s.Step[seq[i+1]] {
				return fmt.Errorf("core: chare %d steps not strictly increasing (%d@%d then %d@%d)",
					c, seq[i], s.Step[seq[i]], seq[i+1], s.Step[seq[i+1]])
			}
		}
		// Serial-block internal order is preserved.
		pos := make(map[trace.EventID]int, len(seq))
		for i, e := range seq {
			pos[e] = i
		}
		for _, b := range tr.BlocksOfChare(trace.ChareID(c)) {
			evs := tr.Blocks[b].Events
			for i := 0; i+1 < len(evs); i++ {
				pi, iok := pos[evs[i]]
				pj, jok := pos[evs[i+1]]
				if iok && jok && pi >= pj {
					return fmt.Errorf("core: block %d events reordered on chare %d", b, c)
				}
			}
		}
	}
	// Phase event lists are consistent with PhaseOf.
	counted := 0
	for p := range s.Phases {
		for _, e := range s.Phases[p].Events {
			if s.PhaseOf[e] != int32(p) {
				return fmt.Errorf("core: phase %d lists event %d of phase %d", p, e, s.PhaseOf[e])
			}
			counted++
		}
	}
	if counted != len(tr.Events) {
		return fmt.Errorf("core: phases list %d events, trace has %d", counted, len(tr.Events))
	}
	return nil
}
