package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.requests":        "server_requests",
		"cache.mem_hits":         "cache_mem_hits",
		"server.latency_ms.prom": "server_latency_ms_prom",
		"already_fine":           "already_fine",
		"with:colon":             "with:colon",
		"weird-Name.9":           "weird_Name_9",
		"9leading":               "_9leading",
		"ünïcode":                "_n_code", // one underscore per rune
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if !validPromName(PromName(in)) {
			t.Errorf("PromName(%q) = %q is not a valid prom name", in, PromName(in))
		}
	}
}

// TestWritePrometheusRoundTrip is the exporter's contract: every metric in
// a populated registry must survive the strict parser with its value
// intact, correct family type, and (for histograms) cumulative buckets that
// reconcile with _count.
func TestWritePrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.requests").Add(42)
	reg.Counter("cache.mem_hits").Add(7)
	reg.Counter("weird.name-total").Add(1) // sanitizes and gains _total
	reg.Gauge("server.inflight").Set(3)
	reg.Gauge("cache.index_bytes").Set(1.5e6)
	h := reg.Histogram("server.latency_ms.structure")
	for _, v := range []float64{0.1, 0.5, 1, 2, 4, 8, 1024, 0.25} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exporter output rejected by strict parser: %v\n%s", err, buf.String())
	}

	counter := func(name string, want float64) {
		t.Helper()
		f := fams[name]
		if f == nil || f.Type != "counter" {
			t.Fatalf("missing counter %s (families: %v)", name, famNames(fams))
		}
		if f.Samples[0].Value != want {
			t.Fatalf("%s = %v, want %v", name, f.Samples[0].Value, want)
		}
	}
	counter("server_requests_total", 42)
	counter("cache_mem_hits_total", 7)
	counter("weird_name_total", 1)

	g := fams["server_inflight"]
	if g == nil || g.Type != "gauge" || g.Samples[0].Value != 3 {
		t.Fatalf("gauge server_inflight wrong: %+v", g)
	}
	if fams["cache_index_bytes"].Samples[0].Value != 1.5e6 {
		t.Fatal("gauge cache_index_bytes wrong")
	}

	hist := fams["server_latency_ms_structure"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatal("missing histogram family")
	}
	if hist.Count != 8 {
		t.Fatalf("histogram count %d, want 8", hist.Count)
	}
	wantSum := 0.1 + 0.5 + 1 + 2 + 4 + 8 + 1024 + 0.25
	if math.Abs(hist.Sum-wantSum) > 1e-9 {
		t.Fatalf("histogram sum %v, want %v", hist.Sum, wantSum)
	}
	last := hist.Samples[len(hist.Samples)-1]
	if !math.IsInf(last.Le, 1) || int64(last.Value) != hist.Count {
		t.Fatalf("+Inf bucket %v != count %d", last.Value, hist.Count)
	}
}

func famNames(fams map[string]*PromFamily) []string {
	out := make([]string, 0, len(fams))
	for n := range fams {
		out = append(out, n)
	}
	return out
}

func TestWriteGoRuntimeMetricsParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGoRuntimeMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("runtime metrics rejected: %v\n%s", err, buf.String())
	}
	for _, name := range []string{
		"go_goroutines", "go_memstats_heap_alloc_bytes",
		"go_memstats_alloc_bytes_total", "go_gc_cycles_total",
		"go_gc_pause_seconds_total",
	} {
		if fams[name] == nil {
			t.Errorf("missing runtime family %s", name)
		}
	}
	if fams["go_goroutines"].Samples[0].Value < 1 {
		t.Error("go_goroutines must be at least 1")
	}
}

// TestWritePrometheusLabelsRoundTrip pins the cluster contract: every
// sample of a node-labeled exposition survives the strict parser with the
// node label attached to its family, including histogram buckets whose le
// pair rides alongside the constant label.
func TestWritePrometheusLabelsRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gateway.route").Add(11)
	reg.Gauge("server.inflight").Set(2)
	h := reg.Histogram("gateway.proxy_ms")
	for _, v := range []float64{1, 2, 4, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheusLabels(&buf, reg, map[string]string{"node": "n-1"}); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("labeled exposition rejected by strict parser: %v\n%s", err, buf.String())
	}
	for _, name := range []string{"gateway_route_total", "server_inflight", "gateway_proxy_ms"} {
		f := fams[name]
		if f == nil {
			t.Fatalf("missing family %s", name)
		}
		if f.Labels["node"] != "n-1" {
			t.Fatalf("family %s labels = %v, want node=n-1", name, f.Labels)
		}
	}
	if fams["gateway_route_total"].Samples[0].Value != 11 {
		t.Fatal("labeled counter value lost")
	}
	if fams["gateway_proxy_ms"].Count != 4 {
		t.Fatalf("labeled histogram count %d, want 4", fams["gateway_proxy_ms"].Count)
	}
}

// TestParseLabelEscapes pins value unescaping and the strict label grammar.
func TestParseLabelEscapes(t *testing.T) {
	doc := "# HELP g a\n# TYPE g gauge\ng{node=\"a\\\\b\\\"c\\nd\"} 1\n"
	fams, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams["g"].Labels["node"]; got != "a\\b\"c\nd" {
		t.Fatalf("unescaped label = %q", got)
	}
}

func TestParsePromTextRejections(t *testing.T) {
	cases := map[string]string{
		"bad label name":         "# HELP g a\n# TYPE g gauge\ng{no-de=\"x\"} 1\n",
		"unterminated value":     "# HELP g a\n# TYPE g gauge\ng{node=\"x} 1\n",
		"unquoted value":         "# HELP g a\n# TYPE g gauge\ng{node=x} 1\n",
		"duplicate label":        "# HELP g a\n# TYPE g gauge\ng{node=\"x\",node=\"y\"} 1\n",
		"trailing comma":         "# HELP g a\n# TYPE g gauge\ng{node=\"x\",} 1\n",
		"bad escape":             "# HELP g a\n# TYPE g gauge\ng{node=\"\\t\"} 1\n",
		"inconsistent label set": "# HELP h a\n# TYPE h histogram\nh_bucket{node=\"x\",le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"sample before TYPE":     "foo 1\n",
		"TYPE without HELP":      "# TYPE foo counter\nfoo 1\n",
		"duplicate family":       "# HELP foo a\n# TYPE foo counter\nfoo 1\n# HELP foo b\n",
		"unknown type":           "# HELP foo a\n# TYPE foo summary\nfoo 1\n",
		"bad name":               "# HELP fo-o a\n# TYPE fo-o counter\nfo-o 1\n",
		"duplicate sample":       "# HELP foo a\n# TYPE foo gauge\nfoo 1\nfoo 2\n",
		"le on a gauge":          "# HELP foo a\n# TYPE foo gauge\nfoo{le=\"1\"} 2\n",
		"non-monotonic bounds":   "# HELP h a\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
		"non-cumulative counts":  "# HELP h a\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 3\nh_count 5\n",
		"missing +Inf":           "# HELP h a\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"+Inf != count":          "# HELP h a\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 5\n",
		"missing sum":            "# HELP h a\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"HELP without TYPE":      "# HELP foo a\n",
	}
	for name, doc := range cases {
		if _, err := ParsePromText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parser accepted invalid document:\n%s", name, doc)
		}
	}
}

func TestParsePromTextAcceptsValid(t *testing.T) {
	doc := "# HELP h latency\n# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n" +
		"h_sum 7.5\nh_count 5\n" +
		"# HELP c requests\n# TYPE c counter\nc 9\n"
	fams, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if fams["h"].Count != 5 || fams["c"].Samples[0].Value != 9 {
		t.Fatalf("parsed values wrong: %+v", fams)
	}
}

// TestRegistryResetInPlace pins the Reset contract /debug/stats?reset=1
// depends on: handles cached before the reset keep working after it.
func TestRegistryResetInPlace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("server.requests")
	g := reg.Gauge("server.inflight")
	h := reg.Histogram("server.latency_ms.x")
	c.Add(10)
	g.Set(4)
	h.Observe(2.5)
	reg.Reset()
	snap := reg.Snapshot()
	if snap.Counters["server.requests"] != 0 {
		t.Fatal("counter not zeroed")
	}
	if snap.Gauges["server.inflight"] != 0 {
		t.Fatal("gauge not zeroed")
	}
	if hs := snap.Histograms["server.latency_ms.x"]; hs.Count != 0 || hs.Sum != 0 {
		t.Fatalf("histogram not zeroed: %+v", hs)
	}
	// The pre-reset handles must still feed the same registry slots.
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	snap = reg.Snapshot()
	if snap.Counters["server.requests"] != 3 || snap.Gauges["server.inflight"] != 1 ||
		snap.Histograms["server.latency_ms.x"].Count != 1 {
		t.Fatalf("pre-reset handles detached from registry: %+v", snap)
	}
}

func TestCollectorLimitDropsAndCounts(t *testing.T) {
	c := NewCollectorLimit(2)
	a := c.StartSpan("a", NoSpan)
	b := c.StartSpan("b", a)
	dropped := c.StartSpan("c", b)
	if dropped != NoSpan {
		t.Fatal("span past the cap must return NoSpan")
	}
	if c.Len() != 2 || c.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 2/1", c.Len(), c.Dropped())
	}
	c.EndSpan(b)
	c.EndSpan(a)
	c.Reset()
	if c.Len() != 0 || c.Dropped() != 0 {
		t.Fatal("Reset must clear spans and the dropped counter")
	}
	if id := c.StartSpan("after", NoSpan); id == NoSpan {
		t.Fatal("collector must record again after Reset")
	}
}

func TestRequestIDContext(t *testing.T) {
	if RequestID(nil) != "" {
		t.Fatal("nil context must yield empty id")
	}
	ctx := WithRequestID(t.Context(), "req-123")
	if got := RequestID(ctx); got != "req-123" {
		t.Fatalf("got %q", got)
	}
	if WithRequestID(t.Context(), "") != t.Context() {
		// Empty ids are not stored; the same context comes back.
		t.Fatal("empty id should not allocate a context")
	}
}
