package cli

import (
	"strings"
	"testing"

	"charmtrace/internal/core"
)

func TestAllWorkloadsGenerate(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := Params{}
			if name == "mergetree" {
				p.Scale = 64 // keep the 1,024-process default out of unit tests
			}
			tr, opt, err := Generate(name, p)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if len(tr.Events) == 0 {
				t.Fatal("empty trace")
			}
			s, err := core.Extract(tr, opt)
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnknownWorkload(t *testing.T) {
	_, _, err := Generate("no-such-app", Params{})
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v, want unknown workload", err)
	}
}

func TestParamOverrides(t *testing.T) {
	small, _, err := Generate("jacobi", Params{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := Generate("jacobi", Params{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Events) <= len(small.Events) {
		t.Fatal("iteration override had no effect")
	}
	seeded, _, err := Generate("jacobi", Params{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	def, _, err := Generate("jacobi", Params{})
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := range def.Events {
		if i < len(seeded.Events) && def.Events[i].Time != seeded.Events[i].Time {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("seed override had no effect")
	}
}

func TestNoReductionTracing(t *testing.T) {
	with, _, err := Generate("jacobi", Params{})
	if err != nil {
		t.Fatal(err)
	}
	without, _, err := Generate("jacobi", Params{NoReductionTracing: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(without.Events) >= len(with.Events) {
		t.Fatal("NoReductionTracing did not reduce traced events")
	}
}

func TestDescribeCoversAllNames(t *testing.T) {
	d := Describe()
	for _, n := range Names() {
		if !strings.Contains(d, n) {
			t.Fatalf("Describe missing %q", n)
		}
	}
}
