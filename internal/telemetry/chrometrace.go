package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace-event format (the JSON-array
// flavour), loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
// Span exports use complete events (Ph "X", with Dur); metadata events
// (Ph "M") name the process and threads.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromePID is the single process id used by self-trace exports.
const chromePID = 1

// ChromeEvents renders the collector's spans as trace events: one complete
// ("X") event per span with microsecond timestamps, plus thread-name
// metadata so Perfetto labels the root row with its span name and worker
// rows as "worker N".
func (c *Collector) ChromeEvents() []ChromeEvent {
	spans := c.Spans()
	events := make([]ChromeEvent, 0, len(spans)+8)

	// Thread names: the first span seen on a lane base names the row after
	// itself (the run's root); worker lanes are named by offset.
	names := map[int64]string{}
	for _, sp := range spans {
		if _, ok := names[sp.TID]; ok {
			continue
		}
		if off := sp.TID % laneStride; off != 0 {
			names[sp.TID] = fmt.Sprintf("worker %d", off)
		} else {
			names[sp.TID] = sp.Name
		}
	}
	events = append(events, ChromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID,
		Args: map[string]any{"name": "charmtrace"},
	})
	tids := make([]int64, 0, len(names))
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		events = append(events, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"name": names[tid]},
		})
	}

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, sp := range spans {
		ev := ChromeEvent{
			Name: sp.Name, Cat: "pipeline", Ph: "X",
			TS:  float64(sp.Start.Nanoseconds()) / 1e3,
			Dur: float64(sp.Dur.Nanoseconds()) / 1e3,
			PID: chromePID, TID: sp.TID,
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				if a.isInt {
					ev.Args[a.Key] = a.Int
				} else {
					ev.Args[a.Key] = a.Str
				}
			}
		}
		events = append(events, ev)
	}
	return events
}

// WriteChromeTrace writes the spans as a Chrome trace-event JSON array.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c.ChromeEvents())
}

// WriteChromeTraceFile writes the trace-event JSON to a file.
func (c *Collector) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := c.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

// ReadChromeTrace parses a trace-event JSON array (the format this package
// writes). Used by tests and available for tooling that post-processes
// self-traces.
func ReadChromeTrace(r io.Reader) ([]ChromeEvent, error) {
	var events []ChromeEvent
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return nil, fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	for i, ev := range events {
		switch ev.Ph {
		case "X", "B", "E", "M", "i", "C":
		default:
			return nil, fmt.Errorf("telemetry: chrome trace: event %d has unsupported phase %q", i, ev.Ph)
		}
	}
	return events, nil
}
