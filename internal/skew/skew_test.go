package skew

import (
	"math/rand"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func baseTrace(t *testing.T) *trace.Trace {
	t.Helper()
	return jacobi.MustTrace(jacobi.DefaultConfig())
}

func TestInjectShiftsOnlyTargetPEs(t *testing.T) {
	tr := baseTrace(t)
	offsets := make([]trace.Time, tr.NumPE)
	offsets[3] = 5000
	skewed, err := Inject(tr, offsets)
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	for e := range tr.Events {
		want := tr.Events[e].Time
		if tr.Events[e].PE == 3 {
			want += 5000
		}
		if skewed.Events[e].Time != want {
			t.Fatalf("event %d time = %d, want %d", e, skewed.Events[e].Time, want)
		}
	}
	// Original untouched.
	if Violations(tr, 1) != 0 {
		t.Fatal("unskewed trace has violations")
	}
}

func TestInjectRejectsWrongLength(t *testing.T) {
	tr := baseTrace(t)
	if _, err := Inject(tr, make([]trace.Time, tr.NumPE+1)); err == nil {
		t.Fatal("wrong offset count accepted")
	}
}

func TestSkewCreatesAndCorrectRemovesViolations(t *testing.T) {
	tr := baseTrace(t)
	offsets := make([]trace.Time, tr.NumPE)
	for p := range offsets {
		offsets[p] = trace.Time(p * 700) // staircase skew up to 4.9us
	}
	skewed, err := Inject(tr, offsets)
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	broken := Violations(skewed, 1)
	if broken == 0 {
		t.Fatal("staircase skew produced no causal violations; test ineffective")
	}
	fixed, applied, err := Correct(skewed, 1)
	if err != nil {
		t.Fatalf("Correct: %v", err)
	}
	if got := Violations(fixed, 1); got != 0 {
		t.Fatalf("violations after Correct = %d, want 0", got)
	}
	if len(applied) != tr.NumPE {
		t.Fatalf("applied offsets = %d entries", len(applied))
	}
	// The corrected trace extracts into a valid structure.
	s, err := core.Extract(fixed, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectIsNoOpOnCleanTrace(t *testing.T) {
	tr := baseTrace(t)
	fixed, offsets, err := Correct(tr, 1)
	if err != nil {
		t.Fatalf("Correct: %v", err)
	}
	for p, off := range offsets {
		if off != 0 {
			t.Fatalf("PE %d offset = %d on a clean trace, want 0", p, off)
		}
	}
	if Violations(fixed, 1) != 0 {
		t.Fatal("violations introduced by Correct")
	}
}

// TestCorrectRecoversStructureUnderSkew: the headline property — the
// logical structure recovered from a skew-corrected trace matches the
// original trace's, even though raw extraction on the skewed trace would
// consume scrambled physical-time heuristics.
func TestCorrectRecoversStructureUnderSkew(t *testing.T) {
	tr := baseTrace(t)
	orig, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	offsets := make([]trace.Time, tr.NumPE)
	for p := range offsets {
		offsets[p] = trace.Time(rng.Intn(4000))
	}
	skewed, err := Inject(tr, offsets)
	if err != nil {
		t.Fatal(err)
	}
	fixed, _, err := Correct(skewed, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Extract(fixed, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPhases() != orig.NumPhases() {
		t.Fatalf("phases = %d after skew correction, original %d", got.NumPhases(), orig.NumPhases())
	}
}

// Property: Correct always yields zero violations or a clear infeasibility
// error, over random skews.
func TestCorrectPropertyRandomSkews(t *testing.T) {
	tr := baseTrace(t)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20; i++ {
		offsets := make([]trace.Time, tr.NumPE)
		for p := range offsets {
			offsets[p] = trace.Time(rng.Intn(10000))
		}
		skewed, err := Inject(tr, offsets)
		if err != nil {
			t.Fatal(err)
		}
		fixed, _, err := Correct(skewed, 1)
		if err != nil {
			t.Fatal(err) // uniform per-PE skew is always feasible
		}
		if Violations(fixed, 1) != 0 {
			t.Fatalf("iteration %d: violations remain", i)
		}
	}
}
