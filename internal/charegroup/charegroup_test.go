package charegroup

import (
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lulesh"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func jacobiStructure(t *testing.T, grid int) *core.Structure {
	t.Helper()
	cfg := jacobi.DefaultConfig()
	cfg.Grid = grid
	// Remove jitter-driven variation between otherwise identical chares by
	// keeping the workload symmetric; steps are logical so jitter does not
	// affect them anyway.
	tr := jacobi.MustTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExactClustersJacobiByRole(t *testing.T) {
	s := jacobiStructure(t, 4)
	clusters := Exact(s)
	if err := Validate(s, clusters); err != nil {
		t.Fatal(err)
	}
	// Application chares decompose by grid role: 4 corners (2 neighbours),
	// 8 edges (3), 4 interior (4). Corners share a signature only if their
	// receive orders coincide; at minimum the clustering must be far
	// smaller than the chare count and group only equal-degree chares.
	var appClusters []Cluster
	for _, c := range clusters {
		if !c.Runtime {
			appClusters = append(appClusters, c)
		}
	}
	if len(appClusters) >= 16 {
		t.Fatalf("no compression: %d app clusters for 16 chares", len(appClusters))
	}
	degree := func(c trace.ChareID) int {
		idx := s.Trace.Chares[c].Index
		x, y := idx%4, idx/4
		d := 0
		if x > 0 {
			d++
		}
		if x < 3 {
			d++
		}
		if y > 0 {
			d++
		}
		if y < 3 {
			d++
		}
		return d
	}
	for _, c := range appClusters {
		want := degree(c.Members[0])
		for _, m := range c.Members[1:] {
			if degree(m) != want {
				t.Fatalf("cluster mixes degrees %d and %d", want, degree(m))
			}
		}
	}
}

func TestByPhaseShapeAtLeastAsCoarse(t *testing.T) {
	s := jacobiStructure(t, 4)
	exact := Exact(s)
	coarse := ByPhaseShape(s)
	if err := Validate(s, coarse); err != nil {
		t.Fatal(err)
	}
	if len(coarse) > len(exact) {
		t.Fatalf("phase-shape clustering (%d) finer than exact (%d)", len(coarse), len(exact))
	}
}

func TestClusterCompressionOnLargeLULESH(t *testing.T) {
	cfg := lulesh.DefaultConfig()
	cfg.Grid = 4 // 64 chares
	cfg.NumPE = 8
	tr := lulesh.MustCharmTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	clusters := ByPhaseShape(s)
	if err := Validate(s, clusters); err != nil {
		t.Fatal(err)
	}
	if len(clusters) > len(tr.Chares)/2 {
		t.Fatalf("weak compression: %d clusters for %d chares", len(clusters), len(tr.Chares))
	}
	// Totals preserved.
	total := 0
	for _, c := range clusters {
		total += c.Size()
	}
	if total != len(tr.Chares) {
		t.Fatalf("cluster sizes sum to %d, want %d", total, len(tr.Chares))
	}
}

func TestLabels(t *testing.T) {
	s := jacobiStructure(t, 4)
	for _, c := range Exact(s) {
		l := c.Label(s.Trace)
		if l == "" {
			t.Fatal("empty label")
		}
		if c.Size() > 1 && l == s.Trace.Chares[c.Representative].Name {
			t.Fatal("multi-member label missing multiplicity")
		}
	}
}
