package sim

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// pingPong: element 0 sends to element 1, which replies.
func pingPong(t *testing.T, cfg Config) *trace.Trace {
	t.Helper()
	rt := New(cfg)
	arr := rt.NewArray("pp", 2, nil, nil)
	var ping, pong EntryRef
	ping = arr.Register("ping", func(ctx *Ctx, m Message) {
		ctx.Compute(100)
		ctx.Send(arr.At(0), pong, "reply")
	})
	pong = arr.Register("pong", func(ctx *Ctx, m Message) {
		ctx.Compute(50)
	})
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		ctx.Compute(10)
		ctx.Send(arr.At(1), ping, "hello")
	})
	rt.Spawn(arr.At(0), start, nil)
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tr
}

func TestPingPongTrace(t *testing.T) {
	tr := pingPong(t, DefaultConfig(2))
	// Chares: 2 mgr (runtime) + 2 app.
	if got := len(tr.ApplicationChares()); got != 2 {
		t.Fatalf("app chares = %d, want 2", got)
	}
	if got := len(tr.Blocks); got != 3 {
		t.Fatalf("blocks = %d, want 3 (start, ping, pong)", got)
	}
	if tr.CountKind(trace.Send) != 2 || tr.CountKind(trace.Recv) != 2 {
		t.Fatalf("events = %d sends / %d recvs, want 2/2",
			tr.CountKind(trace.Send), tr.CountKind(trace.Recv))
	}
	// Virtual time sanity: pong begins after ping's send plus latency.
	var pingSend, pongBegin trace.Time
	for _, ev := range tr.Events {
		if ev.Kind == trace.Send && tr.Chares[ev.Chare].Index == 1 {
			pingSend = ev.Time
		}
	}
	for bi := range tr.Blocks {
		if tr.Entries[tr.Blocks[bi].Entry].Name == "pp::pong" {
			pongBegin = tr.Blocks[bi].Begin
		}
	}
	if pongBegin <= pingSend {
		t.Fatalf("pong began at %d, not after ping send at %d", pongBegin, pingSend)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	a := pingPong(t, DefaultConfig(2))
	b := pingPong(t, DefaultConfig(2))
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	cfg := DefaultConfig(2)
	a := pingPong(t, cfg)
	cfg.Seed = 99
	b := pingPong(t, cfg)
	differ := false
	for i := range a.Events {
		if a.Events[i].Time != b.Events[i].Time {
			differ = true
		}
	}
	if !differ {
		t.Fatal("jitter with different seed produced identical timings")
	}
}

func TestBroadcastDeliversToAll(t *testing.T) {
	rt := New(DefaultConfig(3))
	arr := rt.NewArray("a", 6, nil, nil)
	got := make([]bool, 6)
	recv := arr.Register("recv", func(ctx *Ctx, m Message) {
		got[ctx.Index()] = true
		ctx.Compute(10)
	})
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		ctx.Broadcast(recv, "hi")
	})
	rt.Spawn(arr.At(0), start, nil)
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, ok := range got {
		if !ok {
			t.Fatalf("element %d missed broadcast", i)
		}
	}
	// Single send event, six receives of the same message.
	sends := tr.CountKind(trace.Send)
	if sends != 1 {
		t.Fatalf("sends = %d, want 1", sends)
	}
	var m trace.MsgID = -2
	for _, ev := range tr.Events {
		if ev.Kind == trace.Send {
			m = ev.Msg
		}
	}
	if got := len(tr.RecvsOf(m)); got != 6 {
		t.Fatalf("broadcast recvs = %d, want 6", got)
	}
}

// reductionTrace runs one Sum reduction over 8 elements on 4 PEs.
func reductionTrace(t *testing.T, traceRed bool) (*trace.Trace, float64) {
	t.Helper()
	cfg := DefaultConfig(4)
	cfg.TraceReductions = traceRed
	rt := New(cfg)
	arr := rt.NewArray("r", 8, nil, nil)
	var result float64
	var red *Reduction
	done := arr.Register("done", func(ctx *Ctx, m Message) {
		if ctx.Index() == 0 {
			result = m.Data.(*ReduceResult).Value
		}
		ctx.Compute(5)
	})
	contribute := arr.Register("contribute", func(ctx *Ctx, m Message) {
		ctx.Compute(30)
		ctx.Contribute(red, float64(ctx.Index()))
	})
	red = rt.NewReduction(arr, Sum, BroadcastCallback(done))
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		ctx.Broadcast(contribute, nil)
	})
	rt.Spawn(arr.At(0), start, nil)
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tr, result
}

func TestReductionValue(t *testing.T) {
	_, sum := reductionTrace(t, true)
	if sum != 0+1+2+3+4+5+6+7 {
		t.Fatalf("reduction value = %v, want 28", sum)
	}
	_, sum = reductionTrace(t, false)
	if sum != 28 {
		t.Fatalf("untraced reduction value = %v, want 28 (tracing must not change semantics)", sum)
	}
}

func TestReductionTracingAdditions(t *testing.T) {
	with, _ := reductionTrace(t, true)
	without, _ := reductionTrace(t, false)
	if len(with.Events) <= len(without.Events) {
		t.Fatalf("§5 tracing should add events: with=%d without=%d",
			len(with.Events), len(without.Events))
	}
	// With §5: contribution sends from app chares to the local manager are
	// visible. Without: no app→runtime contribute messages at all.
	countContrib := func(tr *trace.Trace) int {
		n := 0
		for _, ev := range tr.Events {
			if ev.Kind != trace.Send || tr.IsRuntimeChare(ev.Chare) {
				continue
			}
			for _, r := range tr.RecvsOf(ev.Msg) {
				if tr.IsRuntimeChare(tr.Events[r].Chare) {
					n++
				}
			}
		}
		return n
	}
	if countContrib(with) != 8 {
		t.Fatalf("with §5: contribute sends = %d, want 8", countContrib(with))
	}
	if countContrib(without) != 0 {
		t.Fatalf("without §5: contribute sends = %d, want 0", countContrib(without))
	}
}

func TestReductionRepeatedGenerations(t *testing.T) {
	cfg := DefaultConfig(2)
	rt := New(cfg)
	arr := rt.NewArray("g", 4, nil, nil)
	var red *Reduction
	var results []float64
	var step EntryRef
	done := arr.Register("done", func(ctx *Ctx, m Message) {
		r := m.Data.(*ReduceResult)
		if ctx.Index() == 0 {
			results = append(results, r.Value)
			if r.Gen < 2 {
				ctx.Broadcast(step, nil)
			}
		}
	})
	step = arr.Register("step", func(ctx *Ctx, m Message) {
		ctx.Compute(10)
		ctx.Contribute(red, 1)
	})
	red = rt.NewReduction(arr, Sum, SendCallback(arr.At(0), done))
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		ctx.Broadcast(step, nil)
	})
	rt.Spawn(arr.At(0), start, nil)
	if _, err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("reductions fired %d times, want 3", len(results))
	}
	for i, v := range results {
		if v != 4 {
			t.Fatalf("generation %d value = %v, want 4", i, v)
		}
	}
}

func TestIdleRecorded(t *testing.T) {
	cfg := DefaultConfig(2)
	rt := New(cfg)
	arr := rt.NewArray("i", 2, func(i int) int { return i }, nil)
	var poke EntryRef
	poke = arr.Register("poke", func(ctx *Ctx, m Message) {
		ctx.Compute(100)
		if v, ok := m.Data.(int); ok && v < 2 {
			ctx.Send(arr.At(1-ctx.Index()), poke, v+1)
		}
	})
	rt.Spawn(arr.At(0), poke, 0)
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// PE0 idles while PE1 computes and replies.
	found := false
	for _, idle := range tr.Idles {
		if idle.PE == 0 && idle.Duration() > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no idle recorded on PE 0; idles = %v", tr.Idles)
	}
}

// TestStructureOnSimulatedReduction: full pipeline integration — the
// simulator's reduction trace must extract into a valid structure where the
// reduction appears as a runtime phase.
func TestStructureOnSimulatedReduction(t *testing.T) {
	tr, _ := reductionTrace(t, true)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	hasRuntime := false
	for i := range s.Phases {
		if s.Phases[i].Runtime {
			hasRuntime = true
		}
	}
	if !hasRuntime {
		t.Fatal("no runtime phase recovered from reduction trace")
	}
}

func TestUntracedSendLeavesNoDanglingRecv(t *testing.T) {
	rt := New(DefaultConfig(2))
	arr := rt.NewArray("u", 2, nil, nil)
	tick := arr.Register("tick", func(ctx *Ctx, m Message) {
		ctx.Compute(10)
	})
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		ctx.SendUntraced(arr.At(1), tick, nil)
	})
	rt.Spawn(arr.At(0), start, nil)
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := len(tr.Events); got != 0 {
		t.Fatalf("events = %d, want 0 (untraced dependency)", got)
	}
	if got := len(tr.Blocks); got != 2 {
		t.Fatalf("blocks = %d, want 2 (blocks still run)", got)
	}
}

func TestPlacementBlockMapping(t *testing.T) {
	rt := New(DefaultConfig(4))
	arr := rt.NewArray("p", 8, nil, nil)
	for i := 0; i < 8; i++ {
		if want := i / 2; arr.PEOf(i) != want {
			t.Fatalf("element %d on PE %d, want %d", i, arr.PEOf(i), want)
		}
	}
}
