package lassen

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
	"charmtrace/internal/trace"
)

func TestActiveCellsWavefront(t *testing.T) {
	cfg := DefaultConfig()
	// Iteration 0: only the origin sub-domain holds the single front cell.
	total := 0
	for sub := 0; sub < cfg.GridX*cfg.GridY; sub++ {
		n := activeCells(cfg, sub, 0)
		if sub != 0 && n != 0 {
			t.Fatalf("sub %d active at r=0: %d", sub, n)
		}
		total += n
	}
	if total != 1 {
		t.Fatalf("total active at r=0 = %d, want 1", total)
	}
	// The ring at radius r holds 2r+1 cells inside the domain.
	for r := 1; r < cfg.Cells; r++ {
		total = 0
		for sub := 0; sub < cfg.GridX*cfg.GridY; sub++ {
			total += activeCells(cfg, sub, r)
		}
		if total != 2*r+1 {
			t.Fatalf("ring %d cells = %d, want %d", r, total, 2*r+1)
		}
	}
}

func TestCharmStructureRepeatingPattern(t *testing.T) {
	cfg := DefaultConfig()
	tr := MustCharmTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 20(b/d): per iteration a point-to-point phase, short two-step
	// control phases in which each chare invokes itself (one per chare,
	// concurrent), and the runtime reduction phase.
	n := cfg.GridX * cfg.GridY
	want := (2 + n) * cfg.Iterations
	if s.NumPhases() != want {
		t.Fatalf("phases = %d, want %d (p2p + %d control + runtime per iteration)",
			s.NumPhases(), want, n)
	}
	// Control phases: exactly two local steps, all messages self-directed.
	ctl := 0
	for pi := range s.Phases {
		p := &s.Phases[pi]
		if p.Runtime || len(p.Events) == 0 {
			continue
		}
		selfOnly := true
		for _, e := range p.Events {
			ev := &tr.Events[e]
			if ev.Kind != trace.Send {
				continue
			}
			for _, r := range tr.RecvsOf(ev.Msg) {
				if tr.Events[r].Chare != ev.Chare {
					selfOnly = false
				}
			}
		}
		if selfOnly {
			ctl++
			if p.MaxLocalStep != 1 {
				t.Fatalf("control phase %d spans %d steps, want 2", pi, p.MaxLocalStep+1)
			}
		}
	}
	if ctl != n*cfg.Iterations {
		t.Fatalf("control phases = %d, want %d", ctl, n*cfg.Iterations)
	}
}

func TestMPIStructure(t *testing.T) {
	cfg := DefaultConfig()
	tr := MustMPITrace(cfg)
	s, err := core.Extract(tr, core.MessagePassingOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 20(a/c): point-to-point phase + allreduce per iteration, no
	// control phase.
	if s.NumPhases() != 2*cfg.Iterations {
		t.Fatalf("phases = %d, want %d", s.NumPhases(), 2*cfg.Iterations)
	}
}

// TestEarlyIterationsConcentrateDifferentialDuration: Figure 21 — in early
// iterations the same chare (the origin sub-domain) carries the high
// differential duration in every iteration.
func TestEarlyIterationsConcentrateDifferentialDuration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 4 // front stays within the origin sub-domain (side 8)
	tr := MustCharmTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	r := metrics.Compute(s)
	origin := trace.ChareID(-1)
	for _, c := range tr.Chares {
		if !c.Runtime && c.Index == 0 {
			origin = c.ID
		}
	}
	// Figure 21: in every point-to-point phase the same chare carries the
	// highest differential duration — the repeated pattern the logical
	// structure makes easy to spot.
	checked := 0
	for pi := range s.Phases {
		p := &s.Phases[pi]
		if p.Runtime || len(p.Chares) < 2 {
			continue // skip runtime and per-chare control phases
		}
		var bestE trace.EventID = trace.NoEvent
		for _, e := range p.Events {
			if bestE == trace.NoEvent || r.DifferentialDuration[e] > r.DifferentialDuration[bestE] {
				bestE = e
			}
		}
		if bestE == trace.NoEvent || r.DifferentialDuration[bestE] == 0 {
			continue
		}
		checked++
		if tr.Events[bestE].Chare != origin {
			t.Fatalf("phase %d max differential on chare %d, want origin %d",
				pi, tr.Events[bestE].Chare, origin)
		}
	}
	if checked < cfg.Iterations-1 {
		t.Fatalf("only %d phases carried differential signal, want >= %d",
			checked, cfg.Iterations-1)
	}
}

// TestFrontSpreadsAcrossChares: Figure 23 — later iterations spread the
// high differential duration across more chares.
func TestFrontSpreadsAcrossChares(t *testing.T) {
	cfg := FineConfig()
	cfg.Iterations = 16
	tr := MustCharmTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	r := metrics.Compute(s)
	// Count distinct chares with non-trivial differential duration in the
	// first third vs the last third of global steps.
	maxStep := s.MaxStep()
	early := map[trace.ChareID]bool{}
	late := map[trace.ChareID]bool{}
	threshold := trace.Time(2 * cfg.CellCost)
	for e := range tr.Events {
		if r.DifferentialDuration[e] < threshold {
			continue
		}
		switch {
		case s.Step[e] < maxStep/3:
			early[tr.Events[e].Chare] = true
		case s.Step[e] > 2*maxStep/3:
			late[tr.Events[e].Chare] = true
		}
	}
	if len(late) <= len(early) {
		t.Fatalf("front did not spread: early chares %d, late chares %d", len(early), len(late))
	}
}

// TestFinerDecompositionReducesPeakDifferential: Figure 22 — the 64-chare
// run's maximum differential duration is roughly a quarter of the 8-chare
// run's, and total imbalance less than half (Section 6.2).
func TestFinerDecompositionReducesPeakDifferential(t *testing.T) {
	coarse := DefaultConfig()
	coarse.Iterations = 16
	fine := FineConfig()
	fine.Iterations = 16

	sc, err := core.Extract(MustCharmTrace(coarse), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sf, err := core.Extract(MustCharmTrace(fine), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rc, rf := metrics.Compute(sc), metrics.Compute(sf)
	maxC, _ := rc.MaxDifferentialDuration()
	maxF, _ := rf.MaxDifferentialDuration()
	ratio := float64(maxC) / float64(maxF)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("coarse/fine max differential ratio = %.2f (%d vs %d), want ~4",
			ratio, maxC, maxF)
	}
	// Work is spread more equitably in the 64-chare run: its worst phase
	// imbalance is less than half the 8-chare run's, and the overall
	// imbalance is strictly lower.
	peak := func(r *metrics.Report) trace.Time {
		var best trace.Time
		for _, d := range r.PhaseImbalance {
			if d > best {
				best = d
			}
		}
		return best
	}
	if 2*peak(rf) >= peak(rc) {
		t.Fatalf("fine peak imbalance %d not less than half of coarse %d", peak(rf), peak(rc))
	}
	if rf.TotalImbalance() >= rc.TotalImbalance() {
		t.Fatalf("fine total imbalance %d not below coarse %d",
			rf.TotalImbalance(), rc.TotalImbalance())
	}
}
