package query

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
	"charmtrace/internal/viz"
)

// Result is one executed query page. Rows are maps so field projection and
// full rows render identically (encoding/json emits map keys in sorted
// order, which keeps responses deterministic — the property the paging
// tests pin byte-for-byte).
type Result struct {
	Select string `json:"select"`
	// TotalRows counts every row matching the filter, across all pages.
	TotalRows int `json:"total_rows"`
	// Window is the effective step window (set for select=viz, where the
	// timelines are meaningless without it).
	Window *StepRange `json:"window,omitempty"`
	// Rows is this page's slice of the filtered row list.
	Rows []map[string]any `json:"rows"`
	// NextCursor resumes after the last row of this page; empty on the
	// final page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// Engine executes specs against indexes, recording telemetry when built
// over a registry. The zero-value-free constructor keeps nil-safety out of
// the hot path; Engine is safe for concurrent use.
type Engine struct {
	queries    *telemetry.Counter
	rows       *telemetry.Counter
	indexBuild *telemetry.Counter
	execMS     *telemetry.Histogram
	buildMS    *telemetry.Histogram
}

// NewEngine builds an engine; reg nil uses a private registry.
func NewEngine(reg *telemetry.Registry) *Engine {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Engine{
		queries:    reg.Counter("query.queries"),
		rows:       reg.Counter("query.rows_returned"),
		indexBuild: reg.Counter("query.index_builds"),
		execMS:     reg.Histogram("query.exec_ms"),
		buildMS:    reg.Histogram("query.index_build_ms"),
	}
}

// ctxCheckEvery bounds cancellation latency: the executor polls the
// context every this many rows during scans.
const ctxCheckEvery = 8192

// Run validates spec bounds against the index's structure, compiles the
// plan and executes one page. Errors are either *Error (invalid spec or
// cursor, HTTP 400) or the context's error (cancellation/timeout).
func (e *Engine) Run(ctx context.Context, idx *Index, spec Spec) (*Result, error) {
	start := time.Now()
	res, err := run(ctx, idx, spec)
	if err != nil {
		return nil, err
	}
	e.queries.Add(1)
	e.rows.Add(int64(len(res.Rows)))
	e.execMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	return res, nil
}

// Index builds an index through the engine, recording build count and
// latency (the cold half of the cold-vs-indexed benchmark).
func (e *Engine) Index(s *core.Structure) *Index {
	start := time.Now()
	idx := BuildIndex(s)
	e.indexBuild.Add(1)
	e.buildMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	return idx
}

// Run executes a spec against an index without telemetry.
func Run(ctx context.Context, idx *Index, spec Spec) (*Result, error) {
	return run(ctx, idx, spec)
}

func run(ctx context.Context, idx *Index, spec Spec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := checkBounds(idx, &spec.Filter); err != nil {
		return nil, err
	}
	offset := 0
	if spec.Cursor != "" {
		var err error
		if offset, err = decodeCursor(spec.Cursor, spec); err != nil {
			return nil, err
		}
	}

	res := &Result{Select: spec.Select}
	var err error
	switch spec.Select {
	case SelectStructure:
		err = runStructure(ctx, idx, spec, res)
	case SelectSteps, SelectMetrics:
		err = runEvents(ctx, idx, spec, res)
	case SelectViz:
		err = runViz(ctx, idx, spec, res)
	}
	if err != nil {
		return nil, err
	}
	paginate(res, spec, offset)
	if len(spec.Fields) > 0 {
		project(res, spec.Fields)
	}
	if res.Rows == nil {
		res.Rows = []map[string]any{}
	}
	return res, nil
}

// checkBounds validates filter references against the concrete structure,
// so out-of-range ids are client errors, never panics.
func checkBounds(idx *Index, f *Filter) error {
	for _, p := range f.Phases {
		if int(p) >= len(idx.S.Phases) {
			return specErrf("filter.phases", "phase %d out of range (structure has %d phases)", p, len(idx.S.Phases))
		}
	}
	for _, c := range f.Chares {
		if int(c) >= len(idx.S.Trace.Chares) {
			return specErrf("filter.chares", "chare %d out of range (trace has %d chares)", c, len(idx.S.Trace.Chares))
		}
	}
	return nil
}

// paginate slices the full ordered row list [offset, offset+limit) and
// mints the next cursor. Rows were fully materialized only when the page
// demanded it (see the per-kind runners); here the generic path trims.
func paginate(res *Result, spec Spec, offset int) {
	if offset > len(res.Rows) {
		offset = len(res.Rows)
	}
	rows := res.Rows[offset:]
	if spec.Limit > 0 && len(rows) > spec.Limit {
		rows = rows[:spec.Limit]
		res.NextCursor = encodeCursor(offset+spec.Limit, spec)
	}
	res.Rows = rows
}

// project trims every row to the requested fields.
func project(res *Result, fields []string) {
	for i, row := range res.Rows {
		out := make(map[string]any, len(fields))
		for _, f := range fields {
			if v, ok := row[f]; ok {
				out[f] = v
			}
		}
		res.Rows[i] = out
	}
}

// ---- cursors ----------------------------------------------------------

// cursorVersion tags the cursor wire format.
const cursorVersion = "cq1"

// specHash binds a cursor to everything but the cursor itself, so a
// cursor replayed under a different select/filter/limit is rejected
// instead of slicing the wrong row list.
func specHash(spec Spec) string {
	sum := sha256.Sum256([]byte(spec.canonical()))
	return hex.EncodeToString(sum[:8])
}

func encodeCursor(offset int, spec Spec) string {
	raw := fmt.Sprintf("%s %s %d", cursorVersion, specHash(spec), offset)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

func decodeCursor(cursor string, spec Spec) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil {
		return 0, specErrf("cursor", "not a valid cursor")
	}
	parts := strings.Split(string(raw), " ")
	if len(parts) != 3 || parts[0] != cursorVersion {
		return 0, specErrf("cursor", "not a valid cursor")
	}
	if parts[1] != specHash(spec) {
		return 0, specErrf("cursor", "cursor belongs to a different query spec")
	}
	offset, err := strconv.Atoi(parts[2])
	if err != nil || offset < 0 {
		return 0, specErrf("cursor", "not a valid cursor")
	}
	return offset, nil
}

// ---- filtering helpers ------------------------------------------------

type idSet map[int32]bool

func toSet(ids []int32) idSet {
	if len(ids) == 0 {
		return nil
	}
	s := make(idSet, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// filteredEvents resolves the filter to the ordered event-row list —
// the shared row source of select=steps and select=metrics. With a chare
// filter it touches only the selected chares' (step-sliced) lists; with
// only a step filter it binary-searches the global table; rows come back
// in the canonical (step, chare, event) order either way.
func filteredEvents(ctx context.Context, idx *Index, f Filter) ([]trace.EventID, error) {
	from, to := int32(0), int32(1)<<30
	if f.Steps != nil {
		from, to = f.Steps.From, f.Steps.To
	}
	phases := toSet(f.Phases)
	keep := func(e trace.EventID) bool {
		return phases == nil || phases[idx.S.PhaseOf[e]]
	}

	var out []trace.EventID
	n := 0
	if len(f.Chares) > 0 {
		chares := append([]int32(nil), f.Chares...)
		sort.Slice(chares, func(i, j int) bool { return chares[i] < chares[j] })
		for i, c := range chares {
			if i > 0 && chares[i-1] == c {
				continue // duplicate chare in the filter
			}
			lo, hi := idx.chareStepWindow(trace.ChareID(c), from, to)
			for _, e := range idx.ChareEvents[c][lo:hi] {
				if n++; n%ctxCheckEvery == 0 && ctx.Err() != nil {
					return nil, ctx.Err()
				}
				if keep(e) {
					out = append(out, e)
				}
			}
		}
		// Per-chare lists are each ordered; restore the global
		// (step, chare, event) order across them.
		s := idx.S
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if s.Step[a] != s.Step[b] {
				return s.Step[a] < s.Step[b]
			}
			if s.Trace.Events[a].Chare != s.Trace.Events[b].Chare {
				return s.Trace.Events[a].Chare < s.Trace.Events[b].Chare
			}
			return a < b
		})
		return out, nil
	}

	lo, hi := 0, len(idx.EventRows)
	if f.Steps != nil {
		lo, hi = idx.stepWindow(from, to)
	}
	if phases == nil {
		return idx.EventRows[lo:hi], nil
	}
	for _, e := range idx.EventRows[lo:hi] {
		if n++; n%ctxCheckEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if keep(e) {
			out = append(out, e)
		}
	}
	return out, nil
}

// filteredChares returns the chare IDs the filter admits, ascending.
func filteredChares(idx *Index, f Filter) []trace.ChareID {
	var out []trace.ChareID
	if len(f.Chares) > 0 {
		ids := append([]int32(nil), f.Chares...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for i, c := range ids {
			if i > 0 && ids[i-1] == c {
				continue
			}
			out = append(out, trace.ChareID(c))
		}
		return out
	}
	for c := range idx.S.Trace.Chares {
		out = append(out, trace.ChareID(c))
	}
	return out
}

// ---- select=structure -------------------------------------------------

func runStructure(ctx context.Context, idx *Index, spec Spec, res *Result) error {
	s := idx.S
	phases := toSet(spec.Filter.Phases)
	chares := toSet(spec.Filter.Chares)
	for _, pi := range idx.PhaseOrder {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		p := &s.Phases[pi]
		if phases != nil && !phases[pi] {
			continue
		}
		lo, hi := p.GlobalSpan()
		if r := spec.Filter.Steps; r != nil && (hi < r.From || lo > r.To) {
			continue
		}
		if chares != nil && !phaseHasAnyChare(p.Chares, chares) {
			continue
		}
		res.Rows = append(res.Rows, map[string]any{
			"id":             p.ID,
			"runtime":        p.Runtime,
			"leap":           p.Leap,
			"offset":         p.Offset,
			"max_local_step": p.MaxLocalStep,
			"first_step":     lo,
			"last_step":      hi,
			"chares":         len(p.Chares),
			"events":         len(p.Events),
		})
	}
	res.TotalRows = len(res.Rows)
	return nil
}

// phaseHasAnyChare reports whether the sorted phase chare list intersects
// the filter set.
func phaseHasAnyChare(sorted []trace.ChareID, want idSet) bool {
	if len(sorted) < len(want) {
		for _, c := range sorted {
			if want[int32(c)] {
				return true
			}
		}
		return false
	}
	for c := range want {
		i := sort.Search(len(sorted), func(i int) bool { return int32(sorted[i]) >= c })
		if i < len(sorted) && int32(sorted[i]) == c {
			return true
		}
	}
	return false
}

// ---- select=steps / select=metrics ------------------------------------

func runEvents(ctx context.Context, idx *Index, spec Spec, res *Result) error {
	if spec.Select == SelectMetrics && spec.GroupBy != "" {
		return runGrouped(ctx, idx, spec, res)
	}
	events, err := filteredEvents(ctx, idx, spec.Filter)
	if err != nil {
		return err
	}
	res.TotalRows = len(events)
	res.Rows = make([]map[string]any, 0, len(events))
	tr := idx.S.Trace
	for i, e := range events {
		if i%ctxCheckEvery == ctxCheckEvery-1 && ctx.Err() != nil {
			return ctx.Err()
		}
		ev := &tr.Events[e]
		if spec.Select == SelectSteps {
			res.Rows = append(res.Rows, map[string]any{
				"event":      int32(e),
				"chare":      int32(ev.Chare),
				"chare_name": tr.Chares[ev.Chare].Name,
				"kind":       ev.Kind.String(),
				"phase":      idx.S.PhaseOf[e],
				"local_step": idx.S.LocalStep[e],
				"step":       idx.S.Step[e],
				"pe":         int32(ev.PE),
				"time":       int64(ev.Time),
			})
			continue
		}
		vals := idx.metricsOf(e)
		row := map[string]any{
			"event": int32(e),
			"chare": int32(ev.Chare),
			"phase": idx.S.PhaseOf[e],
			"step":  idx.S.Step[e],
		}
		for m, name := range metricNames {
			row[name] = int64(vals[m])
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}

// runGrouped executes group-by metrics queries. The unfiltered path reads
// the precomputed rollups in O(groups); a filter falls back to rolling up
// the filtered event list. Group rows are ordered by group key; groups
// with no matching events are omitted (so both paths agree).
func runGrouped(ctx context.Context, idx *Index, spec Spec, res *Result) error {
	var rollups []Rollup
	if spec.Filter.IsZero() {
		if spec.GroupBy == GroupByPhase {
			rollups = idx.PhaseRollup
		} else {
			rollups = idx.ChareRollup
		}
	} else {
		events, err := filteredEvents(ctx, idx, spec.Filter)
		if err != nil {
			return err
		}
		n := len(idx.S.Phases)
		if spec.GroupBy == GroupByChare {
			n = len(idx.S.Trace.Chares)
		}
		rollups = make([]Rollup, n)
		for i, e := range events {
			if i%ctxCheckEvery == ctxCheckEvery-1 && ctx.Err() != nil {
				return ctx.Err()
			}
			key := idx.S.PhaseOf[e]
			if spec.GroupBy == GroupByChare {
				key = int32(idx.S.Trace.Events[e].Chare)
			}
			if key >= 0 {
				rollups[key].observe(idx.metricsOf(e))
			}
		}
	}

	aggs := spec.aggsSelected()
	for key, r := range rollups {
		if r.Events == 0 {
			continue
		}
		row := map[string]any{spec.GroupBy: int32(key)}
		if spec.GroupBy == GroupByChare {
			row["chare_name"] = idx.S.Trace.Chares[key].Name
		}
		for _, agg := range aggs {
			if agg == "count" {
				row["count"] = r.Events
				continue
			}
			for m, name := range metricNames {
				switch agg {
				case "sum":
					row[name+"_sum"] = r.Sum[m]
				case "mean":
					row[name+"_mean"] = float64(r.Sum[m]) / float64(r.Events)
				case "max":
					row[name+"_max"] = r.Max[m]
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.TotalRows = len(res.Rows)
	return nil
}

// ---- select=viz -------------------------------------------------------

// runViz renders the filtered window as clustered timeline rows: chares
// whose windowed timelines are indistinguishable collapse into one row
// (application clusters first, then runtime, ordered by representative) —
// the scalable rendering the paper's conclusion asks for, server-side.
func runViz(ctx context.Context, idx *Index, spec Spec, res *Result) error {
	s := idx.S
	from, to := int32(0), s.MaxStep()
	if r := spec.Filter.Steps; r != nil {
		from = r.From
		if r.To < to {
			to = r.To
		}
	}
	if to < from { // empty structure or window past the end
		to = from - 1
	}
	res.Window = &StepRange{From: from, To: to}
	phases := toSet(spec.Filter.Phases)

	type group struct {
		rep      trace.ChareID
		members  int
		runtime  bool
		timeline string
	}
	var order []string
	groups := make(map[string]*group)
	for _, c := range filteredChares(idx, spec.Filter) {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		row := make([]byte, int(to-from)+1)
		for i := range row {
			row[i] = '.'
		}
		lo, hi := idx.chareStepWindow(c, from, to)
		for _, e := range idx.ChareEvents[c][lo:hi] {
			if phases != nil && !phases[s.PhaseOf[e]] {
				continue
			}
			row[s.Step[e]-from] = viz.Symbol(s.PhaseOf[e])
		}
		rt := s.Trace.Chares[c].Runtime
		key := fmt.Sprintf("%t %s", rt, row)
		g, ok := groups[key]
		if !ok {
			g = &group{rep: c, runtime: rt, timeline: string(row)}
			groups[key] = g
			order = append(order, key)
		}
		g.members++
	}
	// Application clusters above runtime ones, then by representative —
	// the same presentation order as viz.chareRows.
	sort.SliceStable(order, func(i, j int) bool {
		a, b := groups[order[i]], groups[order[j]]
		if a.runtime != b.runtime {
			return !a.runtime
		}
		return a.rep < b.rep
	})
	for _, key := range order {
		g := groups[key]
		label := s.Trace.Chares[g.rep].Name
		if g.members > 1 {
			label = fmt.Sprintf("%s x%d", label, g.members)
		}
		res.Rows = append(res.Rows, map[string]any{
			"label":          label,
			"representative": int32(g.rep),
			"members":        g.members,
			"runtime":        g.runtime,
			"timeline":       g.timeline,
		})
	}
	res.TotalRows = len(res.Rows)
	return nil
}
