package lod

import (
	"sort"

	"charmtrace/internal/structdiff"
	"charmtrace/internal/trace"
	"charmtrace/internal/viz"
)

// The wire format is columnar (arrays per field, parallel by position)
// rather than an array of objects: an interactive client feeds the columns
// straight into typed arrays and plots, and the payload stays
// O(buckets + rows + edges) numbers with each JSON key spelled once. The
// only two-dimensional field is Cells — the row × bucket event-count
// heatmap — which is O(buckets × rows) small integers, never O(events).

// Series carries the per-bucket marginals of the window — the "bucketed
// step windows" of the response: for every displayed (non-empty) bucket,
// the event/send/recv counts, the wall-clock span, and the §4 metric
// rollups summed and maxed over every chare. Buckets are aligned to the
// absolute step grid: bucket b covers global steps [b*width, (b+1)*width-1].
// MetricSum/MetricMax are metric-major: MetricSum[m][k] is metric m (per
// the response's metrics legend) summed over bucket Bucket[k].
type Series struct {
	Bucket    []int32             `json:"bucket"`
	Events    []int64             `json:"events"`
	Sends     []int64             `json:"sends"`
	Recvs     []int64             `json:"recvs"`
	TimeMin   []int64             `json:"time_min"`
	TimeMax   []int64             `json:"time_max"`
	MetricSum [NumMetrics][]int64 `json:"metric_sum"`
	MetricMax [NumMetrics][]int64 `json:"metric_max"`
}

func newSeries(n int) Series {
	s := Series{
		Bucket:  make([]int32, 0, n),
		Events:  make([]int64, 0, n),
		Sends:   make([]int64, 0, n),
		Recvs:   make([]int64, 0, n),
		TimeMin: make([]int64, 0, n),
		TimeMax: make([]int64, 0, n),
	}
	for m := 0; m < NumMetrics; m++ {
		s.MetricSum[m] = make([]int64, 0, n)
		s.MetricMax[m] = make([]int64, 0, n)
	}
	return s
}

func (s *Series) push(b int32, c *Cell) {
	s.Bucket = append(s.Bucket, b)
	s.Events = append(s.Events, c.Events)
	s.Sends = append(s.Sends, c.Sends)
	s.Recvs = append(s.Recvs, c.Recvs)
	s.TimeMin = append(s.TimeMin, int64(c.TimeMin))
	s.TimeMax = append(s.TimeMax, int64(c.TimeMax))
	for m := 0; m < NumMetrics; m++ {
		s.MetricSum[m] = append(s.MetricSum[m], c.Sum[m])
		s.MetricMax[m] = append(s.MetricMax[m], c.Max[m])
	}
}

// RowSeries carries the per-row aggregates of the window, one position per
// response row: a behavioural cluster (or the overflow merge of the
// smallest clusters when max_rows caps the response), with its event count,
// wall-clock span, and metric rollups summed/maxed over the whole window.
type RowSeries struct {
	Representative []int32             `json:"representative"`
	Label          []string            `json:"label"`
	Members        []int32             `json:"members"`
	Clusters       []int32             `json:"clusters"`
	Runtime        []bool              `json:"runtime"`
	Events         []int64             `json:"events"`
	Sends          []int64             `json:"sends"`
	Recvs          []int64             `json:"recvs"`
	TimeMin        []int64             `json:"time_min"`
	TimeMax        []int64             `json:"time_max"`
	MetricSum      [NumMetrics][]int64 `json:"metric_sum"`
	MetricMax      [NumMetrics][]int64 `json:"metric_max"`
}

func newRowSeries(n int) RowSeries {
	r := RowSeries{
		Representative: make([]int32, 0, n),
		Label:          make([]string, 0, n),
		Members:        make([]int32, 0, n),
		Clusters:       make([]int32, 0, n),
		Runtime:        make([]bool, 0, n),
		Events:         make([]int64, 0, n),
		Sends:          make([]int64, 0, n),
		Recvs:          make([]int64, 0, n),
		TimeMin:        make([]int64, 0, n),
		TimeMax:        make([]int64, 0, n),
	}
	for m := 0; m < NumMetrics; m++ {
		r.MetricSum[m] = make([]int64, 0, n)
		r.MetricMax[m] = make([]int64, 0, n)
	}
	return r
}

// EdgeSet is one aggregated communication edge list in columnar form:
// edge k is Src[k] → Dst[k] carrying Weight[k] matched send→recv pairs.
// Total is the pre-cap number of distinct pairs when max_edges truncates.
type EdgeSet struct {
	Total  int     `json:"total"`
	Src    []int32 `json:"src"`
	Dst    []int32 `json:"dst"`
	Weight []int64 `json:"weight"`
}

// DiffBucketJSON counts the chares of one row whose timelines diverge
// within one bucket.
type DiffBucketJSON struct {
	Bucket   int32 `json:"bucket"`
	Diverged int64 `json:"diverged"`
}

// DiffRowJSON is one row's divergence overlay.
type DiffRowJSON struct {
	Row     int32            `json:"row"`
	Buckets []DiffBucketJSON `json:"buckets"`
}

// DiffJSON is the structdiff-backed timeline overlay: the structural
// summary plus per-(row, bucket) counts of diverged chares, at the same
// resolution as the main response.
type DiffJSON struct {
	Equivalent bool          `json:"equivalent"`
	PhaseCount *[2]int       `json:"phase_count,omitempty"`
	MaxStep    *[2]int32     `json:"max_step,omitempty"`
	PatternA   string        `json:"pattern_a,omitempty"`
	PatternB   string        `json:"pattern_b,omitempty"`
	Diverged   int           `json:"diverged_chares"`
	Rows       []DiffRowJSON `json:"rows,omitempty"`
}

// Result is one executed LOD request. Field order (and struct typing
// throughout) keeps the encoding deterministic.
type Result struct {
	Resolution  Resolution         `json:"resolution"`
	Level       int                `json:"level"`
	BucketWidth int32              `json:"bucket_width"`
	Window      StepRange          `json:"window"`
	NumBuckets  int32              `json:"num_buckets"`
	MaxStep     int32              `json:"max_step"`
	NumPhases   int                `json:"num_phases"`
	Metrics     [NumMetrics]string `json:"metrics"`
	TotalRows   int                `json:"total_rows"`
	Rows        RowSeries          `json:"rows"`
	Buckets     Series             `json:"buckets"`
	// Cells is the heatmap: Cells[r][k] is the event count of row r in
	// displayed bucket Buckets.Bucket[k].
	Cells        [][]int64 `json:"cells"`
	ClusterEdges *EdgeSet  `json:"cluster_edges,omitempty"`
	BucketEdges  *EdgeSet  `json:"bucket_edges,omitempty"`
	Render       string    `json:"render,omitempty"`
	Diff         *DiffJSON `json:"diff,omitempty"`
}

// rowPlan maps behavioural clusters onto response rows under a max_rows
// cap: rowOf[cluster] = response row, rows = member clusters per row in
// original (display) order.
type rowPlan struct {
	rowOf []int32
	rows  [][]int32 // per response row, the merged cluster indices
}

// planRows caps the cluster list at maxRows response rows. Clusters are
// kept whole; when there are more clusters than rows, the largest
// (by member count, ties to the earlier cluster) keep their own rows in
// display order and the rest merge into one trailing overflow row. The
// plan is a pure function of (clusters, maxRows) — deterministic.
func (p *Pyramid) planRows(maxRows int) rowPlan {
	nc := len(p.Clusters)
	plan := rowPlan{rowOf: make([]int32, nc)}
	if maxRows <= 0 || nc <= maxRows {
		plan.rows = make([][]int32, nc)
		for i := 0; i < nc; i++ {
			plan.rowOf[i] = int32(i)
			plan.rows[i] = []int32{int32(i)}
		}
		return plan
	}
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(p.Clusters[order[a]].Members) > len(p.Clusters[order[b]].Members)
	})
	keep := make(map[int]bool, maxRows-1)
	for _, ci := range order[:maxRows-1] {
		keep[ci] = true
	}
	plan.rows = make([][]int32, 0, maxRows)
	var overflow []int32
	for ci := 0; ci < nc; ci++ {
		if keep[ci] {
			plan.rowOf[ci] = int32(len(plan.rows))
			plan.rows = append(plan.rows, []int32{int32(ci)})
		} else {
			overflow = append(overflow, int32(ci))
		}
	}
	orow := int32(len(plan.rows))
	for _, ci := range overflow {
		plan.rowOf[ci] = orow
	}
	plan.rows = append(plan.rows, overflow)
	return plan
}

// levelFor picks the coarsest level whose bucket count across the window
// fits the resolution — native pins level 0. Buckets are grid-aligned, so
// the count is over the window snapped outward to bucket boundaries.
func (p *Pyramid) levelFor(res Resolution, from, to int32) int {
	if res == Native {
		return 0
	}
	for l := range p.Levels {
		w := p.Levels[l].Width
		if int(to/w-from/w)+1 <= int(res) {
			return l
		}
	}
	return len(p.Levels) - 1
}

// Query executes one LOD request against the pyramid. diff is the computed
// structural diff when the spec asked for the overlay (the caller resolves
// the second digest), else nil. The result is a pure function of
// (pyramid, spec, diff), rendered in fully deterministic order.
func (p *Pyramid) Query(sp Spec, diff *structdiff.Diff) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	maxStep := p.S.MaxStep()
	res := &Result{
		Resolution: sp.Resolution,
		MaxStep:    maxStep,
		NumPhases:  p.S.NumPhases(),
		Metrics:    MetricNames,
		TotalRows:  len(p.Clusters),
		Rows:       newRowSeries(0),
		Buckets:    newSeries(0),
		Cells:      [][]int64{},
	}
	if maxStep < 0 || len(p.Levels) == 0 {
		res.BucketWidth = 1
		if !sp.NoEdges {
			res.ClusterEdges = &EdgeSet{Src: []int32{}, Dst: []int32{}, Weight: []int64{}}
			res.BucketEdges = &EdgeSet{Src: []int32{}, Dst: []int32{}, Weight: []int64{}}
		}
		return res, nil
	}
	from, to := int32(0), maxStep
	if sp.Steps != nil {
		from, to = sp.Steps.From, sp.Steps.To
		if from > maxStep {
			from = maxStep
		}
		if to > maxStep {
			to = maxStep
		}
	}
	lvl := p.levelFor(sp.Resolution, from, to)
	level := &p.Levels[lvl]
	w := level.Width
	b0, b1 := from/w, to/w
	res.Level = lvl
	res.BucketWidth = w
	res.Window = StepRange{From: b0 * w, To: min32((b1+1)*w-1, maxStep)}
	res.NumBuckets = b1 - b0 + 1

	plan := p.planRows(sp.MaxRows)
	nRows := len(plan.rows)

	// One merged cell per (row, window bucket), then marginalize both ways.
	merged := make([]Cell, nRows*int(res.NumBuckets))
	for ri, members := range plan.rows {
		for b := b0; b <= b1; b++ {
			c := &merged[ri*int(res.NumBuckets)+int(b-b0)]
			for _, ci := range members {
				c.merge(level.cell(ci, b))
			}
		}
	}

	// Bucket marginals over displayed (non-empty) buckets.
	res.Buckets = newSeries(int(res.NumBuckets))
	displayed := make([]int32, 0, res.NumBuckets) // window-relative indices
	for b := b0; b <= b1; b++ {
		var col Cell
		for ri := 0; ri < nRows; ri++ {
			col.merge(&merged[ri*int(res.NumBuckets)+int(b-b0)])
		}
		if col.Events == 0 {
			continue
		}
		displayed = append(displayed, b-b0)
		res.Buckets.push(b, &col)
	}

	// Row aggregates and the heatmap over the displayed columns.
	res.Rows = newRowSeries(nRows)
	res.Cells = make([][]int64, nRows)
	for ri, members := range plan.rows {
		var agg Cell
		cells := make([]int64, len(displayed))
		for k, rel := range displayed {
			c := &merged[ri*int(res.NumBuckets)+int(rel)]
			agg.merge(c)
			cells[k] = c.Events
		}
		res.Cells[ri] = cells

		rep, memberCount := trace.ChareID(-1), 0
		for _, ci := range members {
			cl := &p.Clusters[ci]
			memberCount += len(cl.Members)
			if rep < 0 || cl.Representative < rep {
				rep = cl.Representative
			}
		}
		label, runtime := "", false
		if len(members) == 1 {
			cl := &p.Clusters[members[0]]
			label, runtime = cl.Label(p.S.Trace), cl.Runtime
		} else {
			label = labelOverflow(memberCount, len(members))
		}
		res.Rows.Representative = append(res.Rows.Representative, int32(rep))
		res.Rows.Label = append(res.Rows.Label, label)
		res.Rows.Members = append(res.Rows.Members, int32(memberCount))
		res.Rows.Clusters = append(res.Rows.Clusters, int32(len(members)))
		res.Rows.Runtime = append(res.Rows.Runtime, runtime)
		res.Rows.Events = append(res.Rows.Events, agg.Events)
		res.Rows.Sends = append(res.Rows.Sends, agg.Sends)
		res.Rows.Recvs = append(res.Rows.Recvs, agg.Recvs)
		res.Rows.TimeMin = append(res.Rows.TimeMin, int64(agg.TimeMin))
		res.Rows.TimeMax = append(res.Rows.TimeMax, int64(agg.TimeMax))
		for m := 0; m < NumMetrics; m++ {
			res.Rows.MetricSum[m] = append(res.Rows.MetricSum[m], agg.Sum[m])
			res.Rows.MetricMax[m] = append(res.Rows.MetricMax[m], agg.Max[m])
		}
	}

	if !sp.NoEdges {
		res.ClusterEdges, res.BucketEdges = p.edgesFor(level, plan, b0, b1, sp.MaxEdges)
	}

	if sp.Render {
		rows := make([]viz.ClusterRow, nRows)
		for i := 0; i < nRows; i++ {
			rows[i] = viz.ClusterRow{
				Representative: trace.ChareID(res.Rows.Representative[i]),
				Label:          res.Rows.Label[i],
			}
		}
		res.Render = viz.LogicalClusteredWindow(p.S, rows, res.Window.From, res.Window.To)
	}

	if diff != nil {
		res.Diff = p.diffOverlay(diff, level, plan, b0, b1)
	}
	return res, nil
}

// labelOverflow names the merged trailing row.
func labelOverflow(members, clusters int) string {
	return "other (" + itoa(clusters) + " clusters) x" + itoa(members)
}

func itoa(n int) string {
	// strconv-free tiny helper keeps the hot render path allocation-light.
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// edgesFor renders the window's aggregated communication edges at the two
// response granularities: row → row (bucket axis collapsed) and bucket →
// bucket (cluster axis collapsed). Edges with either endpoint outside the
// bucket window are dropped; each set is sorted by (src, dst); maxEdges > 0
// keeps the heaviest of each (ties to earlier key order) and reports the
// pre-cap totals.
func (p *Pyramid) edgesFor(level *Level, plan rowPlan, b0, b1 int32, maxEdges int) (*EdgeSet, *EdgeSet) {
	byRow := make(map[[2]int32]int64)
	byBucket := make(map[[2]int32]int64)
	for _, e := range level.Edges {
		if e.SrcBucket < b0 || e.SrcBucket > b1 || e.DstBucket < b0 || e.DstBucket > b1 {
			continue
		}
		byRow[[2]int32{plan.rowOf[e.SrcCluster], plan.rowOf[e.DstCluster]}] += e.Weight
		byBucket[[2]int32{e.SrcBucket, e.DstBucket}] += e.Weight
	}
	return edgeSet(byRow, maxEdges), edgeSet(byBucket, maxEdges)
}

// edgeSet renders one aggregation map as a sorted, optionally capped
// columnar edge list.
func edgeSet(acc map[[2]int32]int64, maxEdges int) *EdgeSet {
	type edge struct {
		src, dst int32
		weight   int64
	}
	all := make([]edge, 0, len(acc))
	for k, w := range acc {
		all = append(all, edge{k[0], k[1], w})
	}
	less := func(i, j int) bool {
		if all[i].src != all[j].src {
			return all[i].src < all[j].src
		}
		return all[i].dst < all[j].dst
	}
	sort.Slice(all, less)
	out := &EdgeSet{Total: len(all)}
	if maxEdges > 0 && len(all) > maxEdges {
		// Keep the heaviest deterministically, then restore key order.
		sort.SliceStable(all, func(i, j int) bool { return all[i].weight > all[j].weight })
		all = all[:maxEdges]
		sort.Slice(all, less)
	}
	out.Src = make([]int32, len(all))
	out.Dst = make([]int32, len(all))
	out.Weight = make([]int64, len(all))
	for i, e := range all {
		out.Src[i], out.Dst[i], out.Weight[i] = e.src, e.dst, e.weight
	}
	return out
}

// diffOverlay buckets the structural diff at the response's resolution:
// for every chare whose timeline diverges, the divergence is located at a
// global step of this structure's timeline and counted in the covering
// (row, bucket) cell. A chare whose timelines differ only in length is
// located at the first extra/missing position.
func (p *Pyramid) diffOverlay(d *structdiff.Diff, level *Level, plan rowPlan, b0, b1 int32) *DiffJSON {
	out := &DiffJSON{
		Equivalent: d.Empty(),
		PhaseCount: d.PhaseCount,
		MaxStep:    d.MaxStep,
		Diverged:   len(d.Chares),
	}
	if d.PatternA != d.PatternB {
		out.PatternA, out.PatternB = d.PatternA, d.PatternB
	}
	if len(d.Chares) == 0 {
		return out
	}
	counts := make(map[[2]int32]int64) // (row, bucket) -> diverged chares
	for _, cd := range d.Chares {
		step := p.divergenceStep(cd)
		if step < 0 {
			continue
		}
		b := step / level.Width
		if b < b0 || b > b1 {
			continue
		}
		counts[[2]int32{plan.rowOf[p.ClusterOf[cd.Chare]], b}]++
	}
	keys := make([][2]int32, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var cur *DiffRowJSON
	for _, k := range keys {
		if cur == nil || cur.Row != k[0] {
			out.Rows = append(out.Rows, DiffRowJSON{Row: k[0]})
			cur = &out.Rows[len(out.Rows)-1]
		}
		cur.Buckets = append(cur.Buckets, DiffBucketJSON{Bucket: k[1], Diverged: counts[k]})
	}
	return out
}

// divergenceStep locates one chare divergence on this structure's step
// axis: the step of the first diverging timeline position, clamped into
// the chare's timeline (a timeline that is a strict prefix of the other
// side's diverges just past its own end). -1 when the chare has no events
// here at all.
func (p *Pyramid) divergenceStep(cd structdiff.ChareDiff) int32 {
	events := p.S.EventsOfChare(cd.Chare)
	if len(events) == 0 {
		return -1
	}
	pos := cd.FirstDivergence
	if pos < 0 {
		pos = cd.LenB // length-only diff: first extra/missing position
	}
	if pos >= len(events) {
		pos = len(events) - 1
	}
	return p.S.Step[events[pos]]
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
