package sim

import (
	"fmt"
	"sort"

	"charmtrace/internal/trace"
)

// Section is a subset of a chare array — the analogue of Charm++ array
// sections, over which multicasts and section reductions operate.
type Section struct {
	arr     *Array
	members []int
}

// NewSection creates a section of an array from element indices (order is
// normalized; duplicates rejected).
func (rt *Runtime) NewSection(arr *Array, members []int) *Section {
	if rt.ran {
		panic("sim: NewSection after Run")
	}
	if len(members) == 0 {
		panic("sim: empty section")
	}
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	for i, m := range sorted {
		if m < 0 || m >= arr.Len() {
			panic(fmt.Sprintf("sim: section member %d out of range", m))
		}
		if i > 0 && sorted[i-1] == m {
			panic("sim: duplicate section member")
		}
	}
	return &Section{arr: arr, members: sorted}
}

// Len returns the number of section members.
func (s *Section) Len() int { return len(s.members) }

// Members returns the member indices (do not modify).
func (s *Section) Members() []int { return s.members }

// Multicast invokes an entry method on every member of a section through a
// single call: one send event, one receive per member (a section multicast).
func (c *Ctx) Multicast(sec *Section, entry EntryRef, data any) {
	if sec.arr != entry.arr {
		panic("sim: Multicast entry belongs to a different array")
	}
	m := c.rt.tb.NewMsg()
	c.events = append(c.events, bufEvent{trace.Send, m, c.cursor})
	for _, idx := range sec.members {
		dst := sec.arr.elems[idx]
		env := &envelope{
			msg: m, traced: true, to: dst, entry: entry.idx, data: data, from: c.elem.chare,
		}
		c.sent = append(c.sent, env)
		c.rt.eng.deliver(c.cursor+c.rt.latency(c.elem.pe, dst.pe), dst.pe, env)
	}
}
