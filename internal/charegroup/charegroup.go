// Package charegroup groups chares with equivalent logical behaviour, the
// scalability direction the paper's conclusion calls for ("new
// visualization techniques are needed that scale to large numbers of
// parallel tasks"). Chares whose timelines are indistinguishable in the
// recovered logical structure — same steps, same phases, same event kinds —
// collapse into one cluster, so a 13,824-chare LULESH renders as a handful
// of behavioural rows (corners, edges, faces, interior) instead of
// thousands.
package charegroup

import (
	"fmt"
	"hash/fnv"
	"sort"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// Cluster is one group of behaviourally equivalent chares.
type Cluster struct {
	// Representative is the lowest-ID member; renders stand for the whole
	// cluster with it.
	Representative trace.ChareID
	// Members, sorted by ID.
	Members []trace.ChareID
	// Runtime is true when the cluster holds runtime chares (clusters never
	// mix application and runtime chares).
	Runtime bool
}

// Size returns the number of member chares.
func (c *Cluster) Size() int { return len(c.Members) }

// Label renders "name ×N" for display.
func (c *Cluster) Label(tr *trace.Trace) string {
	name := tr.Chares[c.Representative].Name
	if len(c.Members) == 1 {
		return name
	}
	return fmt.Sprintf("%s x%d", name, len(c.Members))
}

// Exact clusters chares whose logical timelines are identical: the same
// sequence of (global step, event kind, phase-relative position). Phase IDs
// themselves are arbitrary, so two chares in the same phases compare by
// step and kind; chares of different phases that happen to share steps and
// kinds still group — which is the desired behaviour for symmetric
// concurrent phases (e.g. LASSEN's per-chare control phases).
func Exact(s *core.Structure) []Cluster {
	return clusterBy(s, func(c trace.ChareID) uint64 {
		h := fnv.New64a()
		for _, e := range s.EventsOfChare(c) {
			ev := &s.Trace.Events[e]
			writeInt(h, int64(s.Step[e]))
			writeInt(h, int64(ev.Kind))
			writeInt(h, int64(s.LocalStep[e]))
		}
		return h.Sum64()
	})
}

// ByPhaseShape clusters chares by the coarser signature of how many events
// they contribute at each of their phases' local steps — ignoring global
// offsets, so chares doing the same thing in different (concurrent) phases
// group together.
func ByPhaseShape(s *core.Structure) []Cluster {
	return clusterBy(s, func(c trace.ChareID) uint64 {
		h := fnv.New64a()
		for _, e := range s.EventsOfChare(c) {
			ev := &s.Trace.Events[e]
			writeInt(h, int64(s.LocalStep[e]))
			writeInt(h, int64(ev.Kind))
		}
		return h.Sum64()
	})
}

func writeInt(h interface{ Write([]byte) (int, error) }, v int64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// clusterBy groups chares by signature, keeping application and runtime
// chares apart, and orders clusters by representative ID.
func clusterBy(s *core.Structure, sig func(trace.ChareID) uint64) []Cluster {
	type key struct {
		sig     uint64
		runtime bool
	}
	groups := make(map[key][]trace.ChareID)
	for ci := range s.Trace.Chares {
		c := trace.ChareID(ci)
		k := key{sig(c), s.Trace.IsRuntimeChare(c)}
		groups[k] = append(groups[k], c)
	}
	out := make([]Cluster, 0, len(groups))
	for k, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, Cluster{
			Representative: members[0],
			Members:        members,
			Runtime:        k.runtime,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Runtime != out[j].Runtime {
			return !out[i].Runtime
		}
		return out[i].Representative < out[j].Representative
	})
	return out
}

// Validate checks the clustering invariants: every chare in exactly one
// cluster, members sorted, kinds unmixed.
func Validate(s *core.Structure, clusters []Cluster) error {
	seen := make(map[trace.ChareID]bool)
	for i := range clusters {
		c := &clusters[i]
		if len(c.Members) == 0 {
			return fmt.Errorf("cluster: empty cluster %d", i)
		}
		if c.Representative != c.Members[0] {
			return fmt.Errorf("cluster: representative %d is not the first member", c.Representative)
		}
		for j, m := range c.Members {
			if seen[m] {
				return fmt.Errorf("cluster: chare %d in two clusters", m)
			}
			seen[m] = true
			if j > 0 && c.Members[j-1] >= m {
				return fmt.Errorf("cluster: members unsorted in cluster %d", i)
			}
			if s.Trace.IsRuntimeChare(m) != c.Runtime {
				return fmt.Errorf("cluster: mixed kinds in cluster %d", i)
			}
		}
	}
	if len(seen) != len(s.Trace.Chares) {
		return fmt.Errorf("cluster: %d chares clustered, trace has %d", len(seen), len(s.Trace.Chares))
	}
	return nil
}
