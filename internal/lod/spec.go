package lod

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
)

// Error reports an invalid LOD request with the offending field named —
// the serving layer maps it to 400 exactly like a query spec error.
type Error struct {
	Field string
	Msg   string
}

func (e *Error) Error() string { return fmt.Sprintf("lod spec: %s: %s", e.Field, e.Msg) }

func errf(field, format string, args ...any) *Error {
	return &Error{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Native is the Resolution meaning "no coarsening": serve from the
// one-step-per-bucket base level.
const Native Resolution = 0

// Resolution is the client's bucket budget: the response uses the coarsest
// pyramid level whose bucket count over the requested window fits within
// it. The zero value is Native. On the wire it is either a positive JSON
// number or the string "native".
type Resolution int

// MarshalJSON renders Native as "native" and anything else as a number.
func (r Resolution) MarshalJSON() ([]byte, error) {
	if r == Native {
		return []byte(`"native"`), nil
	}
	return []byte(strconv.Itoa(int(r))), nil
}

// UnmarshalJSON accepts a positive integer or the string "native".
func (r *Resolution) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if s == `"native"` {
		*r = Native
		return nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("resolution must be a positive integer or \"native\", got %s", s)
	}
	*r = Resolution(n)
	return nil
}

// ParseResolution parses the resolution URL parameter.
func ParseResolution(s string) (Resolution, error) {
	if s == "" || s == "native" {
		return Native, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return Native, errf("resolution", "want a positive integer or \"native\", got %q", s)
	}
	return Resolution(n), nil
}

// StepRange is an inclusive global-step window.
type StepRange struct {
	From int32 `json:"from"`
	To   int32 `json:"to"`
}

// Spec is one LOD request. The zero value asks for the full structure at
// native resolution with every cluster row and every edge.
type Spec struct {
	// Resolution is the bucket budget ("native" = base level).
	Resolution Resolution `json:"resolution,omitempty"`
	// Steps restricts the response to an inclusive global-step window; the
	// window is snapped outward to bucket boundaries of the chosen level.
	Steps *StepRange `json:"steps,omitempty"`
	// MaxRows caps the cluster rows: past it, the smallest clusters merge
	// into one overflow row so the response never exceeds MaxRows rows.
	// 0 = one row per behavioural cluster.
	MaxRows int `json:"max_rows,omitempty"`
	// MaxEdges caps the aggregated communication edges, keeping the
	// heaviest (ties broken by key order). 0 = all edges.
	MaxEdges int `json:"max_edges,omitempty"`
	// NoEdges drops the edge list entirely.
	NoEdges bool `json:"no_edges,omitempty"`
	// Render includes a clustered text render of the window (native
	// resolution only) — the viz.LogicalClusteredWindow grid over the
	// response's rows.
	Render bool `json:"render,omitempty"`
	// Diff names a second trace digest: the response gains a
	// structdiff-backed divergence overlay (bucketed counts of chares
	// whose timelines diverge in each bucket). The serving layer resolves
	// the digest; the engine receives the computed diff.
	Diff string `json:"diff,omitempty"`
}

// maxSpecBytes bounds a POST body; a spec is a few hundred bytes.
const maxSpecBytes = 1 << 20

// ParseSpec decodes and validates a JSON spec. Unknown fields are errors —
// a misspelled option must not silently return the default aggregation.
func ParseSpec(r io.Reader) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return sp, errf("", "invalid JSON: %v", err)
	}
	if err := sp.Validate(); err != nil {
		return sp, err
	}
	return sp, nil
}

// SpecFromParams derives a Spec from URL parameters (the GET form).
// Parameters outside the LOD set (extraction options, etc.) are ignored;
// they are owned by the serving layer.
func SpecFromParams(q url.Values) (Spec, error) {
	var sp Spec
	var err error
	if sp.Resolution, err = ParseResolution(q.Get("resolution")); err != nil {
		return sp, err
	}
	if v := q.Get("steps"); v != "" {
		sr, perr := parseStepsParam(v)
		if perr != nil {
			return sp, perr
		}
		sp.Steps = sr
	}
	if sp.MaxRows, err = intParam(q, "max_rows"); err != nil {
		return sp, err
	}
	if sp.MaxEdges, err = intParam(q, "max_edges"); err != nil {
		return sp, err
	}
	switch v := q.Get("edges"); v {
	case "", "true", "1":
	case "false", "0":
		sp.NoEdges = true
	default:
		return sp, errf("edges", "want a boolean, got %q", v)
	}
	switch v := q.Get("render"); v {
	case "", "false", "0":
	case "true", "1":
		sp.Render = true
	default:
		return sp, errf("render", "want a boolean, got %q", v)
	}
	sp.Diff = q.Get("diff")
	if err := sp.Validate(); err != nil {
		return sp, err
	}
	return sp, nil
}

// parseStepsParam parses "from..to" or a single step.
func parseStepsParam(v string) (*StepRange, *Error) {
	from, to, ok := strings.Cut(v, "..")
	if !ok {
		to = from
	}
	a, err1 := strconv.Atoi(strings.TrimSpace(from))
	b, err2 := strconv.Atoi(strings.TrimSpace(to))
	if err1 != nil || err2 != nil {
		return nil, errf("steps", "want from..to or a single step, got %q", v)
	}
	return &StepRange{From: int32(a), To: int32(b)}, nil
}

func intParam(q url.Values, name string) (int, error) {
	v := q.Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, errf(name, "want an integer, got %q", v)
	}
	return n, nil
}

// Validate checks the spec's invariants, naming the offending field.
func (sp *Spec) Validate() error {
	if sp.Resolution < 0 {
		return errf("resolution", "must be positive or \"native\"")
	}
	if sp.Steps != nil {
		if sp.Steps.From < 0 {
			return errf("steps.from", "must be >= 0")
		}
		if sp.Steps.To < sp.Steps.From {
			return errf("steps.to", "window is inverted (%d..%d)", sp.Steps.From, sp.Steps.To)
		}
	}
	if sp.MaxRows < 0 {
		return errf("max_rows", "must be >= 0")
	}
	if sp.MaxEdges < 0 {
		return errf("max_edges", "must be >= 0")
	}
	if sp.Render && sp.Resolution != Native {
		return errf("render", "text render is only available at resolution=native")
	}
	return nil
}

// Canonical renders the spec's response-shaping fields as a stable
// parameter string — what the serving layer feeds into the ETag so a POST
// spec and the equivalent GET revalidate identically.
func (sp *Spec) Canonical() string {
	v := url.Values{}
	if sp.Resolution != Native {
		v.Set("resolution", strconv.Itoa(int(sp.Resolution)))
	}
	if sp.Steps != nil {
		v.Set("steps", fmt.Sprintf("%d..%d", sp.Steps.From, sp.Steps.To))
	}
	if sp.MaxRows > 0 {
		v.Set("max_rows", strconv.Itoa(sp.MaxRows))
	}
	if sp.MaxEdges > 0 {
		v.Set("max_edges", strconv.Itoa(sp.MaxEdges))
	}
	if sp.NoEdges {
		v.Set("edges", "false")
	}
	if sp.Render {
		v.Set("render", "true")
	}
	if sp.Diff != "" {
		v.Set("diff", sp.Diff)
	}
	return v.Encode()
}
