package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"strings"
)

// ParsePeers parses the -peers flag format: a comma-separated list of
// name=url pairs, e.g.
//
//	n0=http://10.0.0.1:8080,n1=http://10.0.0.2:8080,n2=http://10.0.0.3:8080
//
// Names must be unique; URLs must be absolute http or https.
func ParsePeers(s string) ([]Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	var members []Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawURL, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: peer %q is not name=url", part)
		}
		m := Member{Name: strings.TrimSpace(name), URL: strings.TrimSpace(rawURL)}
		members = append(members, m)
	}
	if err := validateMembers(members); err != nil {
		return nil, err
	}
	return members, nil
}

// LoadMembersFile reads a JSON member list: either a bare array of
// {"name","url"} objects or an object with a "members" array (so the file
// can grow other cluster settings later without breaking readers).
func LoadMembersFile(path string) ([]Member, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	var members []Member
	if err := json.Unmarshal(data, &members); err != nil {
		var wrapped struct {
			Members []Member `json:"members"`
		}
		if err2 := json.Unmarshal(data, &wrapped); err2 != nil {
			return nil, fmt.Errorf("cluster: %s: %w", path, err)
		}
		members = wrapped.Members
	}
	if err := validateMembers(members); err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return members, nil
}

// validateMembers enforces the invariants every consumer of a member list
// assumes: at least one member, unique non-empty names, absolute http(s)
// URLs with no trailing slash ambiguity.
func validateMembers(members []Member) error {
	if len(members) == 0 {
		return fmt.Errorf("cluster: empty member list")
	}
	seen := make(map[string]bool, len(members))
	for i := range members {
		m := &members[i]
		if m.Name == "" {
			return fmt.Errorf("cluster: member %d has no name", i)
		}
		if strings.ContainsAny(m.Name, "/ \t") {
			return fmt.Errorf("cluster: member name %q contains a separator", m.Name)
		}
		if seen[m.Name] {
			return fmt.Errorf("cluster: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		u, err := url.Parse(m.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("cluster: member %q has invalid url %q", m.Name, m.URL)
		}
		m.URL = strings.TrimRight(m.URL, "/")
	}
	return nil
}
