package server

// Admission-control, detached-leader and shutdown behavior of the serving
// layer. These tests substitute a gated extraction function (Config.extract)
// so saturation and slow extractions are deterministic, not timing-based.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// gatedExtract returns an extraction stub that signals `entered` each time
// a flight reaches it, then blocks until `gate` closes before delegating to
// the real pipeline. Calls while `passthrough` is true skip the gate.
func gatedExtract(entered chan struct{}, gate chan struct{}, passthrough *atomic.Bool) func(*trace.Trace, core.Options) (*core.Structure, error) {
	return func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
		if passthrough != nil && passthrough.Load() {
			return core.Extract(tr, opt)
		}
		entered <- struct{}{}
		select {
		case <-gate:
		case <-opt.Context.Done():
			return nil, opt.Context.Err()
		}
		return core.Extract(tr, opt)
	}
}

// TestAdmissionShedsWhenSaturated: with one extraction slot held, a request
// for a distinct (non-coalescing) key is shed with 429 and a Retry-After
// hint once the queue wait expires, and the shed is counted.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	cfg := Config{
		MaxConcurrentExtractions: 1,
		QueueWait:                30 * time.Millisecond,
	}
	cfg.extract = gatedExtract(entered, gate, nil)
	srv, ts := newTestServer(t, cfg)
	digest := upload(t, ts, encodedJacobi(t, 0))

	holderDone := make(chan int, 1)
	go func() {
		status, _ := get(t, ts, "/v1/traces/"+digest+"/structure")
		holderDone <- status
	}()
	<-entered // the holder owns the only slot and is parked in extraction

	// A different options fingerprint cannot coalesce onto the holder's
	// flight, so it must queue for a slot — and be shed.
	resp, err := http.Get(ts.URL + "/v1/traces/" + digest + "/structure?infer=false")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request status = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if got := srv.Registry().Counter("server.shed").Value(); got != 1 {
		t.Errorf("server.shed = %d, want 1", got)
	}
	if snap := srv.Registry().Snapshot(); snap.Histograms["server.queue_wait_ms"].Count < 1 {
		t.Error("server.queue_wait_ms histogram recorded nothing")
	}

	close(gate)
	if status := <-holderDone; status != http.StatusOK {
		t.Fatalf("slot holder finished with %d, want 200", status)
	}
}

// TestMemoryHitBypassesAdmission: a memory-cache hit is served even when
// every extraction slot is taken — hits do no extraction work.
func TestMemoryHitBypassesAdmission(t *testing.T) {
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	var passthrough atomic.Bool
	passthrough.Store(true)
	cfg := Config{
		MaxConcurrentExtractions: 1,
		QueueWait:                30 * time.Millisecond,
	}
	cfg.extract = gatedExtract(entered, gate, &passthrough)
	srv, ts := newTestServer(t, cfg)
	digest := upload(t, ts, encodedJacobi(t, 0))

	// Populate the cache for the default options key.
	if status, body := get(t, ts, "/v1/traces/"+digest+"/structure"); status != http.StatusOK {
		t.Fatalf("warm-up status %d: %s", status, body)
	}

	// Saturate the only slot with a gated extraction for a different key.
	passthrough.Store(false)
	holderDone := make(chan int, 1)
	go func() {
		status, _ := get(t, ts, "/v1/traces/"+digest+"/structure?infer=false")
		holderDone <- status
	}()
	<-entered

	// The cached key must still answer instantly.
	if status, body := get(t, ts, "/v1/traces/"+digest+"/structure"); status != http.StatusOK {
		t.Fatalf("memory hit under saturation: status %d: %s", status, body)
	}
	if got := srv.Registry().Counter("server.shed").Value(); got != 0 {
		t.Errorf("server.shed = %d, want 0", got)
	}

	close(gate)
	if status := <-holderDone; status != http.StatusOK {
		t.Fatalf("slot holder finished with %d, want 200", status)
	}
}

// TestRequestTimeoutDetachedLeader: a request whose timeout expires
// mid-extraction gets 504, but the flight keeps running, populates the
// cache, and a retry succeeds without a second extraction.
func TestRequestTimeoutDetachedLeader(t *testing.T) {
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	var calls atomic.Int64
	cfg := Config{RequestTimeout: 50 * time.Millisecond}
	inner := gatedExtract(entered, gate, nil)
	cfg.extract = func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
		calls.Add(1)
		return inner(tr, opt)
	}
	srv, ts := newTestServer(t, cfg)
	digest := upload(t, ts, encodedJacobi(t, 0))

	status, _ := get(t, ts, "/v1/traces/"+digest+"/structure")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request status = %d, want 504", status)
	}
	<-entered // the flight survived its requester
	close(gate)

	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body := get(t, ts, "/v1/traces/"+digest+"/structure")
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry never succeeded; last status %d: %s", status, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("extraction ran %d times, want exactly 1 (retry must reuse the flight or the cache)", got)
	}
	if got := srv.Registry().Counter("cache.cancelled").Value(); got != 0 {
		t.Errorf("cache.cancelled = %d, want 0 (the flight itself was never cancelled)", got)
	}
}

// TestClientCancelReleasesSlot: a client that disconnects mid-extraction
// frees its admission slot within the handler's unwind, so the next request
// gets a slot instead of being shed.
func TestClientCancelReleasesSlot(t *testing.T) {
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	cfg := Config{
		MaxConcurrentExtractions: 1,
		QueueWait:                30 * time.Millisecond,
	}
	cfg.extract = gatedExtract(entered, gate, nil)
	_, ts := newTestServer(t, cfg)
	digest := upload(t, ts, encodedJacobi(t, 0))

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/traces/"+digest+"/structure", nil)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	<-entered // slot taken, extraction parked
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled client request did not error")
	}

	// The slot must come free even though the detached flight still runs:
	// a request for a distinct key has to reach extraction, not shed.
	done := make(chan int, 1)
	go func() {
		status, _ := get(t, ts, "/v1/traces/"+digest+"/structure?infer=false")
		done <- status
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("follow-up request never got the released slot")
	}
	close(gate)
	if status := <-done; status != http.StatusOK {
		t.Fatalf("follow-up finished with %d, want 200", status)
	}
}

// TestShutdownDrains: Shutdown refuses new requests with 503, waits for
// in-flight handlers, drains the cache's flights, and returns nil on a
// clean drain.
func TestShutdownDrains(t *testing.T) {
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	cfg := Config{}
	cfg.extract = gatedExtract(entered, gate, nil)
	srv, ts := newTestServer(t, cfg)
	digest := upload(t, ts, encodedJacobi(t, 0))

	inflightDone := make(chan int, 1)
	go func() {
		status, _ := get(t, ts, "/v1/traces/"+digest+"/structure")
		inflightDone <- status
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Shutdown(shutdownCtx) }()

	deadline := time.Now().Add(10 * time.Second)
	for !srv.closing.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Shutdown never flipped the closing flag")
		}
		time.Sleep(time.Millisecond)
	}
	if status, _ := get(t, ts, "/v1/traces/"+digest+"/structure"); status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain got %d, want 503", status)
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight request drained", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	if status := <-inflightDone; status != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", status)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown = %v, want nil after clean drain", err)
	}
}

// TestUnlimitedAdmission: a negative MaxConcurrentExtractions disables the
// semaphore entirely — concurrent distinct keys all extract at once.
func TestUnlimitedAdmission(t *testing.T) {
	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	cfg := Config{MaxConcurrentExtractions: -1}
	cfg.extract = gatedExtract(entered, gate, nil)
	_, ts := newTestServer(t, cfg)
	digest := upload(t, ts, encodedJacobi(t, 0))

	const K = 3
	done := make(chan int, K)
	queries := []string{"", "?infer=false", "?reorder=false"}
	for i := 0; i < K; i++ {
		go func(q string) {
			status, _ := get(t, ts, fmt.Sprintf("/v1/traces/%s/structure%s", digest, q))
			done <- status
		}(queries[i])
	}
	for i := 0; i < K; i++ {
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d distinct keys reached extraction", i, K)
		}
	}
	close(gate)
	for i := 0; i < K; i++ {
		if status := <-done; status != http.StatusOK {
			t.Fatalf("request %d finished with %d, want 200", i, status)
		}
	}
}
