// Command tracegen runs a simulated workload and writes its event trace.
//
// Usage:
//
//	tracegen -app jacobi -o jacobi.trace
//	tracegen -app mergetree -scale 256 -seed 7 -o mt.trace
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"charmtrace/internal/cli"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
)

func main() {
	app := flag.String("app", "jacobi", "workload to run (-list shows all)")
	out := flag.String("o", "", "output trace file (default: <app>.trace)")
	iters := flag.Int("iters", 0, "iteration override (0 = workload default)")
	scale := flag.Int("scale", 0, "size override (0 = workload default)")
	seed := flag.Int64("seed", 0, "seed override (0 = workload default)")
	noRed := flag.Bool("no-reduction-tracing", false, "disable the §5 reduction tracing additions")
	bin := flag.Bool("binary", false, "shorthand for -format binary")
	format := flag.String("format", "text", "output format: text, binary, or projections")
	list := flag.Bool("list", false, "list available workloads")
	tele := cli.NewProfiling("tracegen", flag.CommandLine)
	flag.Parse()
	if err := tele.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *list {
		fmt.Print(cli.Describe())
		return
	}
	tr, _, err := cli.Generate(*app, cli.Params{
		Iterations: *iters, Scale: *scale, Seed: *seed, NoReductionTracing: *noRed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *app + ".trace"
	}
	if *bin {
		*format = "binary"
	}
	var write func(string, *trace.Trace) error
	switch *format {
	case "text":
		write = tracefile.WriteFile
	case "binary":
		write = tracefile.WriteFileBinary
	case "projections":
		write = tracefile.WriteFileProjections
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q (want text, binary, or projections)\n", *format)
		os.Exit(1)
	}
	if err := write(path, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d chares, %d blocks, %d events -> %s\n",
		*app, len(tr.Chares), len(tr.Blocks), len(tr.Events), path)
	if err := tele.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
