package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"charmtrace/internal/graph"
	"charmtrace/internal/trace"
)

// Binary Structure codec: the persistence format behind the charmd result
// cache. A Structure is stored without its trace (results are content-
// addressed by trace digest, so the trace is stored and keyed separately)
// and without Stats (per-run instrumentation, not part of the recovered
// structure). The encoding is canonical: encoding the same Structure always
// yields the same bytes, and the pipeline is byte-identical at every
// Parallelism, so an Extract at any worker count round-trips through the
// cache into exactly the bytes a fresh extraction would encode to.
//
//	magic "CSTR", uvarint version
//	str opts fingerprint
//	uvarint nEvents, uvarint nChares     (validated against the trace on decode)
//	uvarint nPhases {
//	    u8 runtime
//	    uvarint nChares { varint chare }
//	    uvarint nEvents { varint event }
//	    varint maxLocalStep, varint offset, varint leap
//	}
//	DAG: nPhases x { uvarint degree { varint target } }
//	PhaseOf, LocalStep, Step: nEvents varints each
//	chareEvents: nChares x { uvarint len { varint event } }

// structMagic opens every encoded structure.
var structMagic = [4]byte{'C', 'S', 'T', 'R'}

// StructMagic is the 4-byte prefix of every encoded structure, exported so
// transport layers (the cluster's replication writes) can cheaply reject
// bodies that are not encoded structures before spooling them to disk.
const StructMagic = "CSTR"

// StructCodecVersion is the current structure-encoding version.
const StructCodecVersion = 1

type swriter struct {
	w   *bufio.Writer
	err error
}

func (b *swriter) u8(v uint8) {
	if b.err == nil {
		b.err = b.w.WriteByte(v)
	}
}
func (b *swriter) uv(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	if b.err == nil {
		_, b.err = b.w.Write(buf[:n])
	}
}
func (b *swriter) i64(v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	if b.err == nil {
		_, b.err = b.w.Write(buf[:n])
	}
}
func (b *swriter) i32(v int32) { b.i64(int64(v)) }
func (b *swriter) str(s string) {
	b.uv(uint64(len(s)))
	if b.err == nil {
		_, b.err = b.w.WriteString(s)
	}
}

// EncodeStructure writes the structure in the binary codec. The trace is
// not encoded; DecodeStructure reattaches one.
func EncodeStructure(w io.Writer, s *Structure) error {
	b := &swriter{w: bufio.NewWriter(w)}
	if _, err := b.w.Write(structMagic[:]); err != nil {
		return err
	}
	b.uv(StructCodecVersion)
	b.str(s.EncodedFingerprint())
	b.uv(uint64(len(s.Step)))
	b.uv(uint64(len(s.chareEvents)))
	b.uv(uint64(len(s.Phases)))
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Runtime {
			b.u8(1)
		} else {
			b.u8(0)
		}
		b.uv(uint64(len(p.Chares)))
		for _, c := range p.Chares {
			b.i32(int32(c))
		}
		b.uv(uint64(len(p.Events)))
		for _, e := range p.Events {
			b.i32(int32(e))
		}
		b.i32(p.MaxLocalStep)
		b.i32(p.Offset)
		b.i32(p.Leap)
	}
	for i := range s.Phases {
		adj := s.DAG.Adj[i]
		b.uv(uint64(len(adj)))
		for _, v := range adj {
			b.i32(v)
		}
	}
	for _, v := range s.PhaseOf {
		b.i32(v)
	}
	for _, v := range s.LocalStep {
		b.i32(v)
	}
	for _, v := range s.Step {
		b.i32(v)
	}
	for _, evs := range s.chareEvents {
		b.uv(uint64(len(evs)))
		for _, e := range evs {
			b.i32(int32(e))
		}
	}
	if b.err != nil {
		return fmt.Errorf("core: encode: %w", b.err)
	}
	return b.w.Flush()
}

type sreader struct {
	r   *bufio.Reader
	err error
}

func (b *sreader) u8() uint8 {
	if b.err != nil {
		return 0
	}
	v, err := b.r.ReadByte()
	b.err = err
	return v
}
func (b *sreader) uv() uint64 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(b.r)
	b.err = err
	return v
}
func (b *sreader) i64() int64 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(b.r)
	b.err = err
	return v
}
func (b *sreader) i32() int32 {
	v := b.i64()
	if b.err == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		b.err = fmt.Errorf("varint %d exceeds int32", v)
	}
	return int32(v)
}
func (b *sreader) count(what string, max uint64) int {
	n := b.uv()
	if b.err == nil && n > max {
		b.err = fmt.Errorf("%s count %d too large", what, n)
	}
	return int(n)
}
func (b *sreader) str() string {
	n := b.count("string", 1<<20)
	if b.err != nil {
		return ""
	}
	buf := make([]byte, n)
	_, b.err = io.ReadFull(b.r, buf)
	return string(buf)
}

// skipVarints discards n varint-encoded values without materializing them —
// the summary decoder's way of stepping over ID payloads it does not need.
func (b *sreader) skipVarints(n int) {
	for i := 0; i < n && b.err == nil; i++ {
		for {
			c, err := b.r.ReadByte()
			if err != nil {
				b.err = err
				return
			}
			if c < 0x80 {
				break
			}
		}
	}
}

// DecodeStructure parses an encoded structure and reattaches tr, which must
// be the indexed trace the structure was extracted from (the caller's
// content-addressing guarantees this; event and chare counts are validated
// as a corruption check). The decoded structure carries no Stats — timing
// belongs to the extraction run, not the cached result — and its Opts hold
// only what the fingerprint preserves; use Fingerprint (returned here) to
// key semantics, not the Opts field.
func DecodeStructure(r io.Reader, tr *trace.Trace) (*Structure, string, error) {
	b := &sreader{r: bufio.NewReader(r)}
	var magic [4]byte
	if _, err := io.ReadFull(b.r, magic[:]); err != nil {
		return nil, "", fmt.Errorf("core: decode: %w", err)
	}
	if magic != structMagic {
		return nil, "", fmt.Errorf("core: decode: bad magic %q", magic[:])
	}
	if v := b.uv(); b.err == nil && v != StructCodecVersion {
		return nil, "", fmt.Errorf("core: decode: unsupported version %d", v)
	}
	fp := b.str()
	nEvents := b.count("event", uint64(len(tr.Events)))
	nChares := b.count("chare", uint64(len(tr.Chares)))
	if b.err == nil && (nEvents != len(tr.Events) || nChares != len(tr.Chares)) {
		return nil, "", fmt.Errorf("core: decode: structure is for %d events/%d chares, trace has %d/%d",
			nEvents, nChares, len(tr.Events), len(tr.Chares))
	}
	s := &Structure{Trace: tr, decodedFP: fp}
	nPhases := b.count("phase", uint64(nEvents)+1)
	s.Phases = make([]Phase, 0, nPhases)
	for i := 0; i < nPhases && b.err == nil; i++ {
		p := Phase{ID: int32(i), Runtime: b.u8() != 0}
		if n := b.count("phase chare", uint64(nChares)); n > 0 && b.err == nil {
			p.Chares = make([]trace.ChareID, 0, n)
			for j := 0; j < n && b.err == nil; j++ {
				p.Chares = append(p.Chares, trace.ChareID(b.i32()))
			}
		}
		if n := b.count("phase event", uint64(nEvents)); n > 0 && b.err == nil {
			p.Events = make([]trace.EventID, 0, n)
			for j := 0; j < n && b.err == nil; j++ {
				p.Events = append(p.Events, trace.EventID(b.i32()))
			}
		}
		p.MaxLocalStep = b.i32()
		p.Offset = b.i32()
		p.Leap = b.i32()
		s.Phases = append(s.Phases, p)
	}
	s.DAG = graph.New(nPhases)
	for i := 0; i < nPhases && b.err == nil; i++ {
		n := b.count("edge", uint64(nPhases))
		if n == 0 || b.err != nil {
			continue
		}
		adj := make([]int32, 0, n)
		for j := 0; j < n && b.err == nil; j++ {
			v := b.i32()
			if b.err == nil && (v < 0 || int(v) >= nPhases) {
				return nil, "", fmt.Errorf("core: decode: edge target %d out of range", v)
			}
			adj = append(adj, v)
		}
		s.DAG.Adj[i] = adj
	}
	readPerEvent := func(what string) []int32 {
		out := make([]int32, nEvents)
		for i := range out {
			out[i] = b.i32()
		}
		if b.err != nil && what != "" {
			b.err = fmt.Errorf("%s: %w", what, b.err)
		}
		return out
	}
	s.PhaseOf = readPerEvent("phase-of")
	s.LocalStep = readPerEvent("local-step")
	s.Step = readPerEvent("step")
	s.chareEvents = make([][]trace.EventID, nChares)
	for c := 0; c < nChares && b.err == nil; c++ {
		n := b.count("chare timeline", uint64(nEvents))
		if n == 0 {
			continue
		}
		evs := make([]trace.EventID, 0, n)
		for j := 0; j < n && b.err == nil; j++ {
			e := b.i32()
			if b.err == nil && (e < 0 || int(e) >= nEvents) {
				return nil, "", fmt.Errorf("core: decode: chare %d lists unknown event %d", c, e)
			}
			evs = append(evs, trace.EventID(e))
		}
		s.chareEvents[c] = evs
	}
	if b.err != nil {
		return nil, "", fmt.Errorf("core: decode: %w", b.err)
	}
	return s, fp, nil
}

// PhaseSummary is one phase row of a StructureSummary: everything the codec
// stores about a phase except the chare and event ID payloads, which the
// summary decode steps over.
type PhaseSummary struct {
	Runtime      bool
	Chares       int
	Events       int
	MaxLocalStep int32
	Offset       int32
	Leap         int32
}

// StructureSummary is the phase-table view of an encoded structure: the
// counts, spans and DAG size that charmd's /structure response renders,
// decodable from a disk entry without reconstructing per-event arrays or
// attaching a trace. MaxStep matches Structure.MaxStep on the full decode.
type StructureSummary struct {
	Fingerprint string
	NumEvents   int
	NumChares   int
	Phases      []PhaseSummary
	DAGEdges    int
	MaxStep     int32
}

// DecodeStructureSummary parses only the header, phase table and DAG degree
// counts of an encoded structure — a streaming read that stops before the
// per-event arrays, so serving a phase-table query from disk costs O(phases)
// instead of O(events). The caller still owns fingerprint validation (the
// summary carries the encoded one) exactly as with DecodeStructure.
func DecodeStructureSummary(r io.Reader) (*StructureSummary, error) {
	b := &sreader{r: bufio.NewReader(r)}
	var magic [4]byte
	if _, err := io.ReadFull(b.r, magic[:]); err != nil {
		return nil, fmt.Errorf("core: decode summary: %w", err)
	}
	if magic != structMagic {
		return nil, fmt.Errorf("core: decode summary: bad magic %q", magic[:])
	}
	if v := b.uv(); b.err == nil && v != StructCodecVersion {
		return nil, fmt.Errorf("core: decode summary: unsupported version %d", v)
	}
	sum := &StructureSummary{Fingerprint: b.str(), MaxStep: -1}
	sum.NumEvents = b.count("event", math.MaxInt32)
	sum.NumChares = b.count("chare", math.MaxInt32)
	nPhases := b.count("phase", uint64(sum.NumEvents)+1)
	if b.err == nil {
		sum.Phases = make([]PhaseSummary, 0, nPhases)
	}
	for i := 0; i < nPhases && b.err == nil; i++ {
		p := PhaseSummary{Runtime: b.u8() != 0}
		p.Chares = b.count("phase chare", uint64(sum.NumChares))
		b.skipVarints(p.Chares)
		p.Events = b.count("phase event", uint64(sum.NumEvents))
		b.skipVarints(p.Events)
		p.MaxLocalStep = b.i32()
		p.Offset = b.i32()
		p.Leap = b.i32()
		if hi := p.Offset + p.MaxLocalStep; p.Events > 0 && hi > sum.MaxStep {
			sum.MaxStep = hi
		}
		sum.Phases = append(sum.Phases, p)
	}
	for i := 0; i < nPhases && b.err == nil; i++ {
		deg := b.count("edge", uint64(nPhases))
		b.skipVarints(deg)
		sum.DAGEdges += deg
	}
	if b.err != nil {
		return nil, fmt.Errorf("core: decode summary: %w", b.err)
	}
	return sum, nil
}
