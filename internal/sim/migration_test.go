package sim

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// migratingWorkload runs iterations of a 4-chare exchange + reduction, with
// chare 0 migrating between PEs after each of its reduction callbacks when
// migrate is true.
func migratingWorkload(t *testing.T, migrate bool) *trace.Trace {
	t.Helper()
	cfg := DefaultConfig(4)
	rt := New(cfg)
	type st struct{ iter, got int }
	arr := rt.NewArray("m", 4, func(i int) int { return i }, func(i int) any { return &st{} })
	var ping, resume EntryRef
	var red *Reduction
	send := func(ctx *Ctx) {
		ctx.Compute(50)
		ctx.Send(arr.At((ctx.Index()+1)%4), ping, nil)
	}
	ping = arr.Register("ping", func(ctx *Ctx, m Message) {
		ctx.Compute(30)
		ctx.Contribute(red, 1)
	})
	resume = arr.Register("resume", func(ctx *Ctx, m Message) {
		s := ctx.State().(*st)
		s.iter++
		if migrate && ctx.Index() == 0 {
			ctx.Migrate(s.iter % 4)
		}
		if s.iter < 4 {
			send(ctx)
		}
	})
	red = rt.NewReduction(arr, Sum, BroadcastCallback(resume))
	begin := arr.Register("begin", func(ctx *Ctx, m Message) { send(ctx) })
	for i := 0; i < 4; i++ {
		rt.Spawn(arr.At(i), begin, nil)
	}
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tr
}

func TestMigrationMovesBlocksAcrossPEs(t *testing.T) {
	tr := migratingWorkload(t, true)
	pes := map[trace.PE]bool{}
	for _, b := range tr.Blocks {
		if tr.Chares[b.Chare].Name == "m[0]" {
			pes[b.PE] = true
		}
	}
	if len(pes) < 2 {
		t.Fatalf("migrating chare ran on %d PEs, want >= 2", len(pes))
	}
	still := migratingWorkload(t, false)
	pes = map[trace.PE]bool{}
	for _, b := range still.Blocks {
		if still.Chares[b.Chare].Name == "m[0]" {
			pes[b.PE] = true
		}
	}
	if len(pes) != 1 {
		t.Fatalf("non-migrating chare ran on %d PEs, want 1", len(pes))
	}
}

// TestStructureInvariantUnderMigration is the paper's point about keying
// timelines by chares: migration changes the physical record but not the
// recovered logical structure.
func TestStructureInvariantUnderMigration(t *testing.T) {
	a := migratingWorkload(t, false)
	b := migratingWorkload(t, true)
	sa, err := core.Extract(a, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := core.Extract(b, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
	if sa.NumPhases() != sb.NumPhases() {
		t.Fatalf("phases differ under migration: %d vs %d", sa.NumPhases(), sb.NumPhases())
	}
	// Per-chare logical event counts match exactly.
	for c := range a.Chares {
		if got, want := len(sb.EventsOfChare(trace.ChareID(c))), len(sa.EventsOfChare(trace.ChareID(c))); got != want {
			t.Fatalf("chare %d logical events = %d, want %d", c, got, want)
		}
	}
	// Phase kind sequence (by offset) is identical.
	kinds := func(s *core.Structure) []bool {
		order := make([]int32, len(s.Phases))
		for i := range order {
			order[i] = int32(i)
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && s.Phases[order[j]].Offset < s.Phases[order[j-1]].Offset; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		out := make([]bool, len(order))
		for i, p := range order {
			out[i] = s.Phases[p].Runtime
		}
		return out
	}
	ka, kb := kinds(sa), kinds(sb)
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("phase kind sequence differs at %d: %v vs %v", i, ka, kb)
		}
	}
}

// TestInFlightMessageForwardedAfterMigration: a message sent to a chare
// that migrates while it is in flight still arrives (rerouted by the
// runtime) and its receive is recorded on the new processor.
func TestInFlightMessageForwardedAfterMigration(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.NetLatency = 5000 // long flight time so migration wins the race
	rt := New(cfg)
	arr := rt.NewArray("f", 2, func(i int) int { return i }, nil)
	got := false
	recv := arr.Register("recv", func(ctx *Ctx, m Message) {
		got = true
		if ctx.PE() != 2 {
			t.Errorf("delivered on PE %d, want 2 (post-migration)", ctx.PE())
		}
		ctx.Compute(10)
	})
	hop := arr.Register("hop", func(ctx *Ctx, m Message) {
		ctx.Compute(10)
		ctx.Migrate(2)
	})
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		ctx.Send(arr.At(1), recv, nil) // long flight to PE 1
	})
	rt.Spawn(arr.At(1), hop, nil) // migrates quickly
	rt.Spawn(arr.At(0), start, nil)
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !got {
		t.Fatal("message lost after migration")
	}
	// The receive block must be recorded on PE 2.
	for _, b := range tr.Blocks {
		if tr.Entries[b.Entry].Name == "f::recv" && b.PE != 2 {
			t.Fatalf("recv block on PE %d, want 2", b.PE)
		}
	}
}
