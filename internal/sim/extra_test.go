package sim

import (
	"testing"

	"charmtrace/internal/trace"
)

func TestReduceOps(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		want float64
	}{{Sum, 0 + 1 + 2 + 3}, {Max, 3}, {Min, 0}}
	for _, c := range cases {
		cfg := DefaultConfig(2)
		rt := New(cfg)
		arr := rt.NewArray("o", 4, nil, nil)
		var red *Reduction
		var got float64
		done := arr.Register("done", func(ctx *Ctx, m Message) {
			got = m.Data.(*ReduceResult).Value
		})
		start := arr.Register("start", func(ctx *Ctx, m Message) {
			ctx.Contribute(red, float64(ctx.Index()))
		})
		red = rt.NewReduction(arr, c.op, SendCallback(arr.At(0), done))
		for i := 0; i < 4; i++ {
			rt.Spawn(arr.At(i), start, nil)
		}
		if _, err := rt.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got != c.want {
			t.Fatalf("op %d = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestSendCallbackTargetsSingleChare(t *testing.T) {
	rt := New(DefaultConfig(2))
	arr := rt.NewArray("cb", 3, nil, nil)
	var red *Reduction
	hits := make([]int, 3)
	done := arr.Register("done", func(ctx *Ctx, m Message) {
		hits[ctx.Index()]++
	})
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		ctx.Contribute(red, 1)
	})
	red = rt.NewReduction(arr, Sum, SendCallback(arr.At(2), done))
	for i := 0; i < 3; i++ {
		rt.Spawn(arr.At(i), start, nil)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hits[0] != 0 || hits[1] != 0 || hits[2] != 1 {
		t.Fatalf("callback hits = %v, want only element 2", hits)
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	rt := New(DefaultConfig(1))
	arr := rt.NewArray("p", 1, nil, nil)
	e := arr.Register("e", func(ctx *Ctx, m Message) {})
	rt.Spawn(arr.At(0), e, nil)
	rt.MustRun()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.Spawn(arr.At(0), e, nil)
}

func TestRunTwicePanics(t *testing.T) {
	rt := New(DefaultConfig(1))
	rt.MustRun()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.MustRun()
}

func TestMismatchedEntryArrayPanics(t *testing.T) {
	rt := New(DefaultConfig(1))
	a := rt.NewArray("a", 1, nil, nil)
	b := rt.NewArray("b", 1, nil, nil)
	eb := b.Register("e", func(ctx *Ctx, m Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.Spawn(a.At(0), eb, nil)
}

func TestNegativeComputePanicsInHandler(t *testing.T) {
	rt := New(DefaultConfig(1))
	arr := rt.NewArray("n", 1, nil, nil)
	e := arr.Register("e", func(ctx *Ctx, m Message) {
		ctx.Compute(-5)
	})
	rt.Spawn(arr.At(0), e, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.MustRun()
}

func TestChareAccessors(t *testing.T) {
	rt := New(DefaultConfig(2))
	arr := rt.NewArray("acc", 4, nil, nil)
	if arr.Len() != 4 {
		t.Fatal("Len wrong")
	}
	// Mgr array occupies chare IDs 0..1; app chares follow.
	if arr.ChareIDOf(0) != trace.ChareID(2) {
		t.Fatalf("ChareIDOf(0) = %d, want 2", arr.ChareIDOf(0))
	}
	seen := false
	e := arr.Register("e", func(ctx *Ctx, m Message) {
		seen = true
		if ctx.Chare() != arr.ChareIDOf(ctx.Index()) {
			t.Error("Ctx.Chare mismatch")
		}
		if ctx.Now() < 0 {
			t.Error("Now negative")
		}
		ctx.Compute(10)
	})
	rt.Spawn(arr.At(3), e, nil)
	rt.MustRun()
	if !seen {
		t.Fatal("handler not run")
	}
}

func TestBuilderAccessor(t *testing.T) {
	rt := New(DefaultConfig(1))
	if rt.Builder() == nil {
		t.Fatal("Builder nil")
	}
}

func TestMigrateOutOfRangePanics(t *testing.T) {
	rt := New(DefaultConfig(1))
	arr := rt.NewArray("m", 1, nil, nil)
	e := arr.Register("e", func(ctx *Ctx, m Message) {
		ctx.Migrate(5)
	})
	rt.Spawn(arr.At(0), e, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.MustRun()
}
