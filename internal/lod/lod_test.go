package lod

import (
	"encoding/json"
	"errors"
	"net/url"
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
	"charmtrace/internal/structdiff"
	"charmtrace/internal/trace"
)

// jacobiPyramid builds the shared test fixture: the default Jacobi
// workload's structure and its pyramid.
func jacobiPyramid(t *testing.T) *Pyramid {
	t.Helper()
	s, err := core.Extract(jacobi.MustTrace(jacobi.DefaultConfig()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Build(s, nil)
}

func TestParseResolution(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Resolution
		ok   bool
	}{
		{"", Native, true},
		{"native", Native, true},
		{"64", 64, true},
		{"1", 1, true},
		{"0", 0, false},
		{"-3", 0, false},
		{"lots", 0, false},
	} {
		got, err := ParseResolution(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseResolution(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseResolution(%q) = %d, want %d", tc.in, got, tc.want)
		}
		if !tc.ok {
			var le *Error
			if !errors.As(err, &le) || le.Field != "resolution" {
				t.Errorf("ParseResolution(%q): error %v does not name field resolution", tc.in, err)
			}
		}
	}
}

func TestResolutionJSONRoundTrip(t *testing.T) {
	for _, r := range []Resolution{Native, 1, 64} {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var got Resolution
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Errorf("round trip %d -> %s -> %d", r, b, got)
		}
	}
	if b, _ := json.Marshal(Native); string(b) != `"native"` {
		t.Errorf("Native marshals to %s, want \"native\"", b)
	}
}

func TestSpecValidation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		spec  Spec
		field string
	}{
		{"negative resolution", Spec{Resolution: -1}, "resolution"},
		{"negative from", Spec{Steps: &StepRange{From: -1, To: 3}}, "steps.from"},
		{"inverted window", Spec{Steps: &StepRange{From: 5, To: 2}}, "steps.to"},
		{"negative max_rows", Spec{MaxRows: -1}, "max_rows"},
		{"negative max_edges", Spec{MaxEdges: -2}, "max_edges"},
		{"render at coarse resolution", Spec{Resolution: 8, Render: true}, "render"},
	} {
		err := tc.spec.Validate()
		var le *Error
		if !errors.As(err, &le) || le.Field != tc.field {
			t.Errorf("%s: err = %v, want *Error on field %q", tc.name, err, tc.field)
		}
	}
	ok := Spec{Resolution: 64, Steps: &StepRange{From: 0, To: 10}, MaxRows: 4, MaxEdges: 9}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestSpecFromParams(t *testing.T) {
	v := url.Values{}
	v.Set("resolution", "32")
	v.Set("steps", "4..90")
	v.Set("max_rows", "5")
	v.Set("edges", "false")
	v.Set("preset", "mp") // foreign parameter: owned by the serving layer
	sp, err := SpecFromParams(v)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Resolution: 32, Steps: &StepRange{From: 4, To: 90}, MaxRows: 5, NoEdges: true}
	if sp.Steps == nil || *sp.Steps != *want.Steps || sp.Resolution != want.Resolution ||
		sp.MaxRows != want.MaxRows || !sp.NoEdges {
		t.Errorf("SpecFromParams = %+v, want %+v", sp, want)
	}
	if _, err := SpecFromParams(url.Values{"steps": {"x..y"}}); err == nil {
		t.Error("bad steps parameter accepted")
	}
	if _, err := SpecFromParams(url.Values{"render": {"maybe"}}); err == nil {
		t.Error("bad render parameter accepted")
	}
}

func TestParseSpecUnknownField(t *testing.T) {
	if _, err := ParseSpec(strings.NewReader(`{"resolutoin": 64}`)); err == nil {
		t.Error("misspelled spec field accepted")
	}
	sp, err := ParseSpec(strings.NewReader(`{"resolution": "native", "max_rows": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Resolution != Native || sp.MaxRows != 3 {
		t.Errorf("ParseSpec = %+v", sp)
	}
}

func TestSpecCanonicalParity(t *testing.T) {
	// The POST spec and its GET-parameter equivalent must canonicalize
	// identically — that is what makes their ETags agree.
	sp := Spec{Resolution: 16, Steps: &StepRange{From: 2, To: 40}, MaxRows: 3, NoEdges: true}
	v, err := url.ParseQuery(sp.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	back, err := SpecFromParams(v)
	if err != nil {
		t.Fatal(err)
	}
	if back.Canonical() != sp.Canonical() {
		t.Errorf("canonical round trip: %q != %q", back.Canonical(), sp.Canonical())
	}
}

func TestResponseNeverExceedsResolution(t *testing.T) {
	p := jacobiPyramid(t)
	for _, res := range []Resolution{1, 2, 7, 16, 64} {
		out, err := p.Query(Spec{Resolution: res}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out.NumBuckets > int32(res) {
			t.Errorf("resolution=%d: %d buckets", res, out.NumBuckets)
		}
		if len(out.Buckets.Bucket) > int(out.NumBuckets) {
			t.Errorf("resolution=%d: %d displayed buckets exceed the window's %d",
				res, len(out.Buckets.Bucket), out.NumBuckets)
		}
		for ri, cells := range out.Cells {
			if len(cells) != len(out.Buckets.Bucket) {
				t.Errorf("resolution=%d: row %d has %d heatmap columns, want %d",
					res, ri, len(cells), len(out.Buckets.Bucket))
			}
		}
	}
	// Native pins level 0, bucket width 1.
	out, err := p.Query(Spec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Level != 0 || out.BucketWidth != 1 {
		t.Errorf("native served level %d width %d", out.Level, out.BucketWidth)
	}
}

func TestRowCapping(t *testing.T) {
	p := jacobiPyramid(t)
	full, err := p.Query(Spec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var totalMembers int32
	for _, m := range full.Rows.Members {
		totalMembers += m
	}

	capped, err := p.Query(Spec{MaxRows: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Rows.Label) != 3 {
		t.Fatalf("max_rows=3 returned %d rows", len(capped.Rows.Label))
	}
	if capped.TotalRows != len(full.Rows.Label) {
		t.Errorf("TotalRows = %d, want pre-cap %d", capped.TotalRows, len(full.Rows.Label))
	}
	var got int32
	for _, m := range capped.Rows.Members {
		got += m
	}
	if got != totalMembers {
		t.Errorf("capped rows cover %d members, want %d (clusters must merge, not drop)", got, totalMembers)
	}
	last := len(capped.Rows.Label) - 1
	if capped.Rows.Clusters[last] < 2 || !strings.Contains(capped.Rows.Label[last], "other") {
		t.Errorf("overflow row: clusters=%d label=%q", capped.Rows.Clusters[last], capped.Rows.Label[last])
	}
	// Event totals are conserved through the row merge.
	sum := func(events []int64) (n int64) {
		for _, e := range events {
			n += e
		}
		return
	}
	if sum(capped.Rows.Events) != sum(full.Rows.Events) {
		t.Errorf("events: capped %d != full %d", sum(capped.Rows.Events), sum(full.Rows.Events))
	}

	one, err := p.Query(Spec{MaxRows: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Rows.Label) != 1 || one.Rows.Members[0] != totalMembers {
		t.Errorf("max_rows=1: %+v", one.Rows)
	}
}

// TestMarginalsConsistent pins the heatmap against both marginals: row sums
// of Cells equal the per-row event aggregates, column sums equal the
// per-bucket marginals, and both agree on the grand total.
func TestMarginalsConsistent(t *testing.T) {
	p := jacobiPyramid(t)
	for _, sp := range []Spec{{}, {Resolution: 8}, {Resolution: 4, MaxRows: 3}} {
		out, err := p.Query(sp, nil)
		if err != nil {
			t.Fatal(err)
		}
		cols := make([]int64, len(out.Buckets.Bucket))
		for ri, cells := range out.Cells {
			var rowSum int64
			for k, e := range cells {
				rowSum += e
				cols[k] += e
			}
			if rowSum != out.Rows.Events[ri] {
				t.Errorf("%+v: row %d cells sum to %d, aggregate says %d", sp, ri, rowSum, out.Rows.Events[ri])
			}
		}
		for k, c := range cols {
			if c != out.Buckets.Events[k] {
				t.Errorf("%+v: bucket %d column sums to %d, marginal says %d", sp, out.Buckets.Bucket[k], c, out.Buckets.Events[k])
			}
		}
		for m := 0; m < NumMetrics; m++ {
			var rows, buckets int64
			for _, v := range out.Rows.MetricSum[m] {
				rows += v
			}
			for _, v := range out.Buckets.MetricSum[m] {
				buckets += v
			}
			if rows != buckets {
				t.Errorf("%+v: metric %s mass differs across marginals: rows %d, buckets %d",
					sp, out.Metrics[m], rows, buckets)
			}
		}
	}
}

func TestEdgeCapping(t *testing.T) {
	p := jacobiPyramid(t)
	full, err := p.Query(Spec{Resolution: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.ClusterEdges == nil || full.BucketEdges == nil {
		t.Fatal("uncapped query returned no edge sets")
	}
	if full.ClusterEdges.Total == 0 || full.ClusterEdges.Total != len(full.ClusterEdges.Src) {
		t.Fatalf("uncapped: %d cluster edges, total %d", len(full.ClusterEdges.Src), full.ClusterEdges.Total)
	}
	// Both granularities carry the same total message weight.
	sumW := func(s *EdgeSet) (n int64) {
		for _, w := range s.Weight {
			n += w
		}
		return
	}
	if sumW(full.ClusterEdges) != sumW(full.BucketEdges) {
		t.Fatalf("edge weight differs across granularities: clusters %d, buckets %d",
			sumW(full.ClusterEdges), sumW(full.BucketEdges))
	}

	n := len(full.ClusterEdges.Src) / 2
	capped, err := p.Query(Spec{Resolution: 16, MaxEdges: n}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.ClusterEdges.Src) != n {
		t.Fatalf("max_edges=%d returned %d cluster edges", n, len(capped.ClusterEdges.Src))
	}
	if capped.ClusterEdges.Total != full.ClusterEdges.Total {
		t.Errorf("Total = %d, want pre-cap %d", capped.ClusterEdges.Total, full.ClusterEdges.Total)
	}
	// The kept edges are the heaviest: no dropped edge outweighs a kept one.
	minKept := capped.ClusterEdges.Weight[0]
	kept := make(map[[2]int32]bool, n)
	for i := range capped.ClusterEdges.Src {
		if w := capped.ClusterEdges.Weight[i]; w < minKept {
			minKept = w
		}
		kept[[2]int32{capped.ClusterEdges.Src[i], capped.ClusterEdges.Dst[i]}] = true
	}
	for i := range full.ClusterEdges.Src {
		k := [2]int32{full.ClusterEdges.Src[i], full.ClusterEdges.Dst[i]}
		if !kept[k] && full.ClusterEdges.Weight[i] > minKept {
			t.Errorf("dropped edge %v (weight %d) outweighs kept minimum %d", k, full.ClusterEdges.Weight[i], minKept)
		}
	}
	none, err := p.Query(Spec{Resolution: 16, NoEdges: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if none.ClusterEdges != nil || none.BucketEdges != nil {
		t.Error("edges=false returned edge sets")
	}
}

func TestWindowSnapping(t *testing.T) {
	p := jacobiPyramid(t)
	out, err := p.Query(Spec{Resolution: 4, Steps: &StepRange{From: 5, To: 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := out.BucketWidth
	if out.Window.From%w != 0 {
		t.Errorf("window.from %d not on a bucket boundary (width %d)", out.Window.From, w)
	}
	if out.Window.From > 5 || (out.Window.To < 9 && out.Window.To != p.S.MaxStep()) {
		t.Errorf("window %+v does not cover the request 5..9", out.Window)
	}
	for _, b := range out.Buckets.Bucket {
		if b < 5/w || b > 9/w {
			t.Errorf("bucket %d outside the snapped window", b)
		}
	}
	// A window past MaxStep clamps instead of erroring.
	if _, err := p.Query(Spec{Steps: &StepRange{From: 1 << 20, To: 1 << 21}}, nil); err != nil {
		t.Errorf("out-of-range window: %v", err)
	}
}

func TestQueryDeterminism(t *testing.T) {
	build := func() []byte {
		s, err := core.Extract(jacobi.MustTrace(jacobi.DefaultConfig()), core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		out, err := Build(s, nil).Query(Spec{Resolution: 8, MaxRows: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := build(), build(); string(a) != string(b) {
		t.Error("two identical builds rendered different bytes")
	}
}

func TestDiffOverlay(t *testing.T) {
	opt := core.DefaultOptions()
	sa, err := core.Extract(jacobi.MustTrace(jacobi.DefaultConfig()), opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := jacobi.DefaultConfig()
	cfg.SlowChare = 3 // perturbs one chare's timing, not the chare population
	cfg.Iterations++  // and diverges every timeline's length
	sb, err := core.Extract(jacobi.MustTrace(cfg), opt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := structdiff.Compare(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("expected a non-empty diff between different iteration counts")
	}
	p := Build(sa, nil)
	out, err := p.Query(Spec{Resolution: 16}, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Diff == nil || out.Diff.Equivalent {
		t.Fatalf("diff overlay missing: %+v", out.Diff)
	}
	if out.Diff.Diverged != len(d.Chares) {
		t.Errorf("diverged_chares = %d, want %d", out.Diff.Diverged, len(d.Chares))
	}
	var located int64
	for _, row := range out.Diff.Rows {
		for _, b := range row.Buckets {
			if b.Bucket < 0 || b.Bucket >= out.NumBuckets {
				t.Errorf("diff bucket %d outside response", b.Bucket)
			}
			located += b.Diverged
		}
	}
	if located == 0 || located > int64(len(d.Chares)) {
		t.Errorf("located %d diverged chares, want in 1..%d", located, len(d.Chares))
	}
	// No overlay requested: no diff in the response.
	plain, err := p.Query(Spec{Resolution: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Diff != nil {
		t.Error("diff present without a diff request")
	}
}

func TestBuildEmptyStructure(t *testing.T) {
	// A trace whose structure has no steps must build a pyramid that
	// serves (empty) queries instead of panicking.
	tr := &trace.Trace{}
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Skipf("empty trace rejected by extraction: %v", err)
	}
	p := Build(s, nil)
	out, err := p.Query(Spec{Resolution: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows.Label) != 0 || out.MaxStep != -1 {
		t.Errorf("empty structure: %+v", out)
	}
}
