package core

import (
	"math/rand"
	"strings"
	"testing"

	"charmtrace/internal/trace"
)

// sameStructure reports whether two structures place every event of tr
// identically and agree on phase count.
func sameStructure(t *testing.T, tr *trace.Trace, a, b *Structure) {
	t.Helper()
	if a.NumPhases() != b.NumPhases() {
		t.Fatalf("phase counts differ: %d vs %d", a.NumPhases(), b.NumPhases())
	}
	for e := range tr.Events {
		if a.PhaseOf[e] != b.PhaseOf[e] || a.LocalStep[e] != b.LocalStep[e] || a.Step[e] != b.Step[e] {
			t.Fatalf("event %d placed differently", e)
		}
	}
}

// TestExtractBatch: table-driven coverage of the batch API against the
// equivalent sequential Extract loop.
func TestExtractBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trA := randomTrace(rng)
	trB := randomTrace(rng)
	trC := randomTrace(rng)

	cases := []struct {
		name    string
		traces  []*trace.Trace
		opt     Options
		wantErr string // substring of the expected error; empty means success
	}{
		{"empty-slice", []*trace.Trace{}, DefaultOptions(), ""},
		{"nil-slice", nil, DefaultOptions(), ""},
		{"single-trace", []*trace.Trace{trA}, DefaultOptions(), ""},
		{"multiple-traces", []*trace.Trace{trA, trB, trC}, DefaultOptions(), ""},
		{"message-passing", []*trace.Trace{trA, trB}, MessagePassingOptions(), ""},
		{"same-trace-twice", []*trace.Trace{trA, trA}, DefaultOptions(), ""},
		{"sequential-workers", []*trace.Trace{trA, trB, trC}, Options{Reorder: true, InferDependencies: true, NeighborSerialMerge: true, Parallelism: 1}, ""},
		{"more-workers-than-traces", []*trace.Trace{trA, trB}, Options{Reorder: true, InferDependencies: true, NeighborSerialMerge: true, Parallelism: 16}, ""},
		{"nil-trace", []*trace.Trace{trA, nil}, DefaultOptions(), "trace 1"},
		{"malformed-trace", []*trace.Trace{trA, &trace.Trace{}, trB}, DefaultOptions(), "trace 1"},
		{"malformed-first-wins", []*trace.Trace{&trace.Trace{}, nil}, DefaultOptions(), "trace 0"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got, err := ExtractBatch(tc.traces, tc.opt)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("expected error containing %q, got nil", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.traces) {
				t.Fatalf("got %d structures for %d traces", len(got), len(tc.traces))
			}
			// Results must be in input order and identical to per-trace calls.
			for i, tr := range tc.traces {
				want, err := Extract(tr, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				sameStructure(t, tr, want, got[i])
			}
		})
	}
}

// TestExtractBatchConcurrentCallers: several goroutines run overlapping
// batches over shared traces; exercised for data races by the tier-1 -race
// run. The batch members deliberately alias each other so the concurrent
// extractions share indexed traces.
func TestExtractBatchConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	traces := []*trace.Trace{randomTrace(rng), randomTrace(rng), randomTrace(rng)}
	batch := []*trace.Trace{traces[0], traces[1], traces[2], traces[0], traces[1]}
	opt := DefaultOptions()
	opt.Parallelism = 4

	want, err := ExtractBatch(batch, opt)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 4
	results := make([][]*Structure, callers)
	errs := make([]error, callers)
	done := make(chan struct{})
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer func() { done <- struct{}{} }()
			results[c], errs[c] = ExtractBatch(batch, opt)
		}(c)
	}
	for c := 0; c < callers; c++ {
		<-done
	}
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		for i := range batch {
			sameStructure(t, batch[i], want[i], results[c][i])
		}
	}
}
