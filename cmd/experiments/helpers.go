package main

import (
	"fmt"
	"sort"
	"strings"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// must panics on error: experiment workloads are deterministic and any
// failure is a bug worth crashing on.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// extract runs the algorithm and validates the result.
func extract(tr *trace.Trace, opt core.Options) *core.Structure {
	tele.Apply(&opt)
	s := must(core.Extract(tr, opt))
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// phasesByOffset returns phase indices ordered by global offset.
func phasesByOffset(s *core.Structure) []int32 {
	order := make([]int32, len(s.Phases))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if s.Phases[order[i]].Offset != s.Phases[order[j]].Offset {
			return s.Phases[order[i]].Offset < s.Phases[order[j]].Offset
		}
		return order[i] < order[j]
	})
	return order
}

// kindPattern renders the phase sequence as 'a' (application) and 'R'
// (runtime) in offset order, collapsing runs of concurrent per-chare
// phases (equal offsets) into one symbol with a multiplicity suffix.
func kindPattern(s *core.Structure) string {
	order := phasesByOffset(s)
	var parts []string
	for i := 0; i < len(order); {
		j := i
		for j < len(order) &&
			s.Phases[order[j]].Offset == s.Phases[order[i]].Offset &&
			s.Phases[order[j]].Runtime == s.Phases[order[i]].Runtime {
			j++
		}
		sym := "a"
		if s.Phases[order[i]].Runtime {
			sym = "R"
		}
		if n := j - i; n > 1 {
			sym = fmt.Sprintf("%s*%d", sym, n)
		}
		parts = append(parts, sym)
		i = j
	}
	return strings.Join(parts, " ")
}

// paperVsMeasured prints the comparison rows every experiment ends with.
func paperVsMeasured(paper, measured string) {
	fmt.Printf("  paper:    %s\n", paper)
	fmt.Printf("  measured: %s\n", measured)
}
