package core

import (
	"fmt"
	"strings"
	"time"

	"charmtrace/internal/graph"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// Phase is one recovered phase: a set of dependency events that the
// phase-finding stage grouped together, with its position in the phase DAG.
type Phase struct {
	ID int32
	// Runtime marks runtime phases: partitions with dependencies between
	// application and runtime chares or purely between runtime chares.
	Runtime bool
	// Chares participating in the phase, sorted.
	Chares []trace.ChareID
	// Events of the phase, ordered by (local step, chare).
	Events []trace.EventID
	// MaxLocalStep is the largest local step assigned inside the phase.
	MaxLocalStep int32
	// Offset is the phase's global step offset: the maximum over phase-DAG
	// predecessors of (their offset + their max local step + 1).
	Offset int32
	// Leap is the phase's maximum distance from the phase DAG's sources.
	Leap int32
}

// GlobalSpan returns the phase's first and last global steps.
func (p *Phase) GlobalSpan() (int32, int32) {
	return p.Offset, p.Offset + p.MaxLocalStep
}

// Structure is the recovered logical structure of a trace: the phase DAG
// plus an exact logical position (phase, local step, global step) for every
// dependency event.
type Structure struct {
	Trace  *trace.Trace
	Opts   Options
	Phases []Phase
	// DAG is the phase DAG; node i corresponds to Phases[i].
	DAG *graph.Graph
	// PhaseOf maps every event to its phase index.
	PhaseOf []int32
	// LocalStep maps every event to its step within its phase.
	LocalStep []int32
	// Step maps every event to its global logical step.
	Step []int32
	// Stats records pipeline instrumentation.
	Stats Stats

	// chareEvents lists every chare's events in logical order.
	chareEvents [][]trace.EventID

	// decodedFP is the options fingerprint read back by DecodeStructure.
	// Opts cannot always be reconstructed from a fingerprint (ChareRank
	// participates only through a digest), so re-encoding a decoded
	// structure uses this instead of Opts.Fingerprint() — keeping
	// encode(decode(bytes)) byte-identical to the original entry, which is
	// what lets cluster peers relay entries without re-extraction.
	decodedFP string
}

// EncodedFingerprint is the options fingerprint an EncodeStructure of s
// would embed: the fingerprint decoded from the wire for structures that
// came through DecodeStructure, Opts.Fingerprint() otherwise.
func (s *Structure) EncodedFingerprint() string {
	if s.decodedFP != "" {
		return s.decodedFP
	}
	return s.Opts.Fingerprint()
}

// Stats instruments the extraction pipeline for the scaling experiments
// (Figures 18 and 19, which attribute the extra cost at high chare counts to
// the §3.1.4 merge). It is a view over the pipeline's telemetry registry:
// the stage loop records every measurement into Telemetry (the single
// bookkeeping path), and the named fields are materialized from it when
// extraction finishes.
type Stats struct {
	InitialPartitions int
	// MergedBy counts partitions eliminated per pipeline stage.
	MergedBy map[string]int
	// StageTime records wall time per pipeline stage.
	StageTime map[string]time.Duration
	// EnforceRounds is the number of iterations the orderability loop took.
	EnforceRounds int
	// Parallelism is the effective worker count the extraction ran with
	// (Options.Workers() at Extract time).
	Parallelism int
	// Telemetry is the pipeline's metrics registry: everything above plus
	// the enforce-round latency histogram, events-scanned counters, and —
	// when a span recorder was attached — per-stage runtime.MemStats
	// deltas. Export renders it as the versioned -stats-json schema.
	Telemetry *telemetry.Registry
}

// statsFromRegistry materializes the Stats view from the registry the
// pipeline recorded into.
func statsFromRegistry(reg *telemetry.Registry, workers int) Stats {
	snap := reg.Snapshot()
	st := Stats{
		MergedBy:          make(map[string]int),
		StageTime:         make(map[string]time.Duration),
		InitialPartitions: int(snap.Gauges["pipeline.initial_partitions"]),
		EnforceRounds:     int(snap.Gauges["pipeline.enforce_rounds"]),
		Parallelism:       workers,
		Telemetry:         reg,
	}
	for k, v := range snap.Counters {
		if name, ok := strings.CutPrefix(k, telemetry.StageMergedPrefix); ok {
			st.MergedBy[name] = int(v)
		}
		if name, ok := strings.CutPrefix(k, telemetry.StageNSPrefix); ok {
			st.StageTime[name] = time.Duration(v)
		}
	}
	return st
}

// Export renders the pipeline telemetry as the versioned machine-readable
// stats schema (the -stats-json payload for a single extraction).
func (st *Stats) Export(tool string) *telemetry.StatsExport {
	e := telemetry.ExportRegistry(st.Telemetry, tool, StageOrder)
	e.Parallelism = st.Parallelism
	return e
}

// StageOrder lists the pipeline stages in execution order, for reporting.
// Repeated cycle merges are accumulated under the single "cycle-merge" key.
var StageOrder = []string{
	"initial",
	"dependency-merge",
	"cycle-merge",
	"repair-merge",
	"infer-dependencies",
	"leap-merge",
	"enforce-orderability",
	"enforce-chare-paths",
	"step-assignment",
}

// TimingReport formats the per-stage wall times (and merge counts) in
// pipeline order — the observable behind the -timing flag of cmd/structure
// and cmd/chmetrics. Stages that did not run are omitted; stages that ran
// but were not timed (partial maps, e.g. Stats assembled outside Extract)
// are listed but excluded from the total, with an explicit note so the
// total is never silently short. The enforce-orderability line reports its
// round count alongside the merge count.
func (st *Stats) TimingReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stage timings (parallelism %d):\n", st.Parallelism)
	var total time.Duration
	untimed := 0
	for _, name := range StageOrder {
		d, timed := st.StageTime[name]
		merged, didMerge := st.MergedBy[name]
		if !timed && !didMerge {
			continue
		}
		if timed {
			total += d
		} else {
			untimed++
		}
		fmt.Fprintf(&b, "  %-22s %12v", name, d)
		if merged > 0 {
			fmt.Fprintf(&b, "   merged %d", merged)
		}
		if name == "enforce-orderability" && st.EnforceRounds > 0 {
			fmt.Fprintf(&b, "   rounds %d", st.EnforceRounds)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %-22s %12v", "total", total)
	if untimed > 0 {
		fmt.Fprintf(&b, "   (%d untimed stage(s) omitted)", untimed)
	}
	b.WriteByte('\n')
	return b.String()
}

// NumPhases returns the number of phases.
func (s *Structure) NumPhases() int { return len(s.Phases) }

// AppPhases returns the indices of application (non-runtime) phases.
func (s *Structure) AppPhases() []int32 {
	var out []int32
	for i := range s.Phases {
		if !s.Phases[i].Runtime {
			out = append(out, int32(i))
		}
	}
	return out
}

// MaxStep returns the largest global step in the structure, or -1 for an
// empty structure.
func (s *Structure) MaxStep() int32 {
	max := int32(-1)
	for _, p := range s.Phases {
		if _, hi := p.GlobalSpan(); hi > max && len(p.Events) > 0 {
			max = hi
		}
	}
	return max
}

// EventsOfChare returns the chare's events in logical order (phase offset,
// then position within the phase's per-chare order). The returned slice
// must not be modified.
func (s *Structure) EventsOfChare(c trace.ChareID) []trace.EventID {
	return s.chareEvents[c]
}

// PhaseOfEvent returns the phase containing an event.
func (s *Structure) PhaseOfEvent(e trace.EventID) *Phase {
	return &s.Phases[s.PhaseOf[e]]
}

// StepOf returns the global step of an event.
func (s *Structure) StepOf(e trace.EventID) int32 { return s.Step[e] }

// StepSpanOfBlock returns the smallest and largest global steps of a serial
// block's events, and false if the block has no dependency events.
func (s *Structure) StepSpanOfBlock(b trace.BlockID) (int32, int32, bool) {
	blk := &s.Trace.Blocks[b]
	if len(blk.Events) == 0 {
		return 0, 0, false
	}
	lo, hi := s.Step[blk.Events[0]], s.Step[blk.Events[0]]
	for _, e := range blk.Events[1:] {
		if s.Step[e] < lo {
			lo = s.Step[e]
		}
		if s.Step[e] > hi {
			hi = s.Step[e]
		}
	}
	return lo, hi, true
}

// PhasesAtLeap groups phase indices by leap.
func (s *Structure) PhasesAtLeap() [][]int32 {
	var maxLeap int32 = -1
	for i := range s.Phases {
		if s.Phases[i].Leap > maxLeap {
			maxLeap = s.Phases[i].Leap
		}
	}
	out := make([][]int32, maxLeap+1)
	for i := range s.Phases {
		out[s.Phases[i].Leap] = append(out[s.Phases[i].Leap], int32(i))
	}
	return out
}

// ConcurrentPhases returns pairs of phases that overlap in global steps and
// are unordered in the phase DAG (used by the PDES missing-dependency case
// study, Figure 24: phases our algorithm could not sequence cover the same
// global steps).
func (s *Structure) ConcurrentPhases() [][2]int32 {
	reach := s.reachability()
	var out [][2]int32
	for i := 0; i < len(s.Phases); i++ {
		li, hi := s.Phases[i].GlobalSpan()
		for j := i + 1; j < len(s.Phases); j++ {
			lj, hj := s.Phases[j].GlobalSpan()
			if hi < lj || hj < li {
				continue // disjoint steps
			}
			if reach[i][int32(j)] || reach[j][int32(i)] {
				continue // ordered
			}
			out = append(out, [2]int32{int32(i), int32(j)})
		}
	}
	return out
}

// reachability computes per-phase reachable sets. Phase DAGs are small
// relative to traces, so a simple BFS per node suffices.
func (s *Structure) reachability() []map[int32]bool {
	n := len(s.Phases)
	reach := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		seen := map[int32]bool{}
		stack := append([]int32(nil), s.DAG.Adj[v]...)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[u] {
				continue
			}
			seen[u] = true
			stack = append(stack, s.DAG.Adj[u]...)
		}
		reach[v] = seen
	}
	return reach
}
