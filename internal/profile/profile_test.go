package profile

import (
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/trace"
)

func TestBuildOnJacobi(t *testing.T) {
	tr := jacobi.MustTrace(jacobi.DefaultConfig())
	r := Build(tr)
	if len(r.Entries) == 0 {
		t.Fatal("no entries profiled")
	}
	// Sorted by descending total time.
	for i := 1; i < len(r.Entries); i++ {
		if r.Entries[i].Total > r.Entries[i-1].Total {
			t.Fatal("entries not sorted by total time")
		}
	}
	// Totals reconcile with the raw trace.
	var blockSum trace.Time
	blocks := 0
	for i := range tr.Blocks {
		blockSum += tr.Blocks[i].Duration()
		blocks++
	}
	var profSum trace.Time
	profBlocks := 0
	for i := range r.Entries {
		profSum += r.Entries[i].Total
		profBlocks += r.Entries[i].Count
	}
	if profSum != blockSum || profBlocks != blocks {
		t.Fatalf("profile totals %d/%d, trace %d/%d", profSum, profBlocks, blockSum, blocks)
	}
	var busy trace.Time
	for i := range r.PEs {
		busy += r.PEs[i].Busy
	}
	if busy != blockSum {
		t.Fatalf("PE busy sum %d != block sum %d", busy, blockSum)
	}
	if r.Messages != tr.CountKind(trace.Send) {
		t.Fatalf("messages = %d, want %d", r.Messages, tr.CountKind(trace.Send))
	}
	if r.CrossPE == 0 || r.CrossPE > len(tr.Events) {
		t.Fatalf("cross-PE deliveries = %d", r.CrossPE)
	}
}

func TestMinMaxMean(t *testing.T) {
	b := trace.NewBuilder(1)
	e := b.AddEntry("work")
	c := b.AddChare("c", trace.NoArray, -1, 0)
	for i, d := range []trace.Time{10, 30, 20} {
		begin := trace.Time(i * 100)
		b.BeginBlock(c, 0, e, begin)
		b.EndBlock(c, begin+d)
	}
	r := Build(b.MustFinish())
	es := r.Entries[0]
	if es.Count != 3 || es.Min != 10 || es.Max != 30 || es.Total != 60 || es.Mean() != 20 {
		t.Fatalf("stats wrong: %+v", es)
	}
}

func TestStringRendering(t *testing.T) {
	tr := jacobi.MustTrace(jacobi.DefaultConfig())
	out := Build(tr).String()
	for _, want := range []string{"entry methods", "processors:", "messages:", "jacobi::ghost", "busy%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile output missing %q", want)
		}
	}
}

func TestEmptyTraceProfile(t *testing.T) {
	b := trace.NewBuilder(2)
	r := Build(b.MustFinish())
	if len(r.Entries) != 0 || r.Messages != 0 || r.Span != 0 {
		t.Fatal("empty trace produced a non-empty profile")
	}
	if out := r.String(); !strings.Contains(out, "processors") {
		t.Fatal("empty profile render broken")
	}
}
