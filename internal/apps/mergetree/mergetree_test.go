package mergetree

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Procs = 64
	cfg.GroupSize = 8
	return cfg
}

func TestTraceShape(t *testing.T) {
	cfg := testConfig()
	tr := MustTrace(cfg)
	// Per rank: 1 ring send + 1 cross send = 128; up-sweep: groups-1 = 7.
	if got := tr.CountKind(trace.Send); got != 135 {
		t.Fatalf("sends = %d, want 135", got)
	}
	for _, ev := range tr.Events {
		if ev.Kind != trace.Recv {
			continue
		}
		send := tr.SendOf(ev.Msg)
		if tr.Events[send].Time >= ev.Time {
			t.Fatal("recv not after send")
		}
	}
}

func TestUpsweepOff(t *testing.T) {
	cfg := testConfig()
	cfg.Upsweep = false
	tr := MustTrace(cfg)
	if got := tr.CountKind(trace.Send); got != 128 {
		t.Fatalf("sends = %d, want 128", got)
	}
}

// TestImbalanceCausesOutOfOrderReceives verifies the Figure 10 premise:
// some process receives its cross-group (phase 2) message physically
// before its ring (phase 1) message.
func TestImbalanceCausesOutOfOrderReceives(t *testing.T) {
	tr := MustTrace(testConfig())
	crossed := false
	for c := range tr.Chares {
		var ringAt, crossAt trace.Time = -1, -1
		for e := range tr.Events {
			ev := &tr.Events[e]
			if ev.Chare != trace.ChareID(c) || ev.Kind != trace.Recv {
				continue
			}
			// Identify the message's phase by its sender relationship.
			send := tr.Events[tr.SendOf(ev.Msg)]
			sameGroup := int(tr.Chares[send.Chare].Index)/8 == int(tr.Chares[ev.Chare].Index)/8
			if sameGroup && ringAt < 0 {
				ringAt = ev.Time
			}
			if !sameGroup && crossAt < 0 {
				crossAt = ev.Time
			}
		}
		if ringAt >= 0 && crossAt >= 0 && crossAt < ringAt {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("no process received phase-2 before phase-1; imbalance too weak for the Figure 10 scenario")
	}
}

// ringStepSum measures how ragged the early steps are: the total global
// step mass of the phase-1 (ring) receives. Recorded order pushes ring
// receives behind the cross receives that physically overtook them,
// inflating the sum.
func ringStepSum(t *testing.T, s *core.Structure) int64 {
	t.Helper()
	tr := s.Trace
	var sum int64
	for e := range tr.Events {
		ev := &tr.Events[e]
		if ev.Kind != trace.Recv {
			continue
		}
		send := tr.Events[tr.SendOf(ev.Msg)]
		if int(tr.Chares[send.Chare].Index)/8 == int(tr.Chares[ev.Chare].Index)/8 {
			sum += int64(s.Step[e])
		}
	}
	return sum
}

// TestReorderingRestoresEarlyParallelStructure is the Figure 10 claim:
// recorded order forces some phase-1 receives far right; reordering pulls
// them back among their peers.
func TestReorderingRestoresEarlyParallelStructure(t *testing.T) {
	tr := MustTrace(testConfig())

	reorder, err := core.Extract(tr, core.MessagePassingOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := reorder.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := core.MessagePassingOptions()
	opt.Reorder = false
	recorded, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatalf("Extract (recorded): %v", err)
	}
	if err := recorded.Validate(); err != nil {
		t.Fatal(err)
	}

	re, rec := ringStepSum(t, reorder), ringStepSum(t, recorded)
	if re >= rec {
		t.Fatalf("ring-receive step mass: reordered %d, recorded %d — reordering should compact early steps",
			re, rec)
	}
}

func TestDeterministicImbalance(t *testing.T) {
	a := MustTrace(testConfig())
	b := MustTrace(testConfig())
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}
