package charmtrace_test

import (
	"fmt"

	"charmtrace"
)

// The core workflow: simulate a workload, recover its logical structure,
// and inspect the phases.
func Example() {
	cfg := charmtrace.DefaultJacobiConfig()
	cfg.Iterations = 2
	tr, err := charmtrace.JacobiTrace(cfg)
	if err != nil {
		panic(err)
	}
	s, err := charmtrace.Extract(tr, charmtrace.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d phases\n", s.NumPhases())
	for i := range s.Phases {
		kind := "application"
		if s.Phases[i].Runtime {
			kind = "runtime"
		}
		lo, hi := s.Phases[i].GlobalSpan()
		fmt.Printf("phase %d: %s, steps %d..%d\n", i, kind, lo, hi)
	}
	// Output:
	// 4 phases
	// phase 0: application, steps 0..7
	// phase 1: runtime, steps 8..26
	// phase 2: application, steps 27..34
	// phase 3: runtime, steps 35..53
}

// Building a trace by hand with the TraceBuilder: one chare sends a message
// to another; the matching endpoints land in one phase, the receive one
// step after the send.
func ExampleNewTraceBuilder() {
	b := charmtrace.NewTraceBuilder(2)
	entry := b.AddEntry("work")
	alice := b.AddChare("alice", -1, -1, 0)
	bob := b.AddChare("bob", -1, -1, 1)

	msg := b.NewMsg()
	b.BeginBlock(alice, 0, entry, 0)
	b.Send(alice, msg, 5)
	b.EndBlock(alice, 10)
	b.BeginBlock(bob, 1, entry, 100)
	b.Recv(bob, msg, 100)
	b.EndBlock(bob, 120)

	tr, err := b.Finish()
	if err != nil {
		panic(err)
	}
	s, err := charmtrace.Extract(tr, charmtrace.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("phases: %d, send step %d, recv step %d\n",
		s.NumPhases(), s.Step[0], s.Step[1])
	// Output:
	// phases: 1, send step 0, recv step 1
}

// Metrics ride on top of the structure: the injected slow chare carries the
// maximum differential duration.
func ExampleComputeMetrics() {
	cfg := charmtrace.DefaultJacobiConfig()
	cfg.SlowChare = 5
	tr, err := charmtrace.JacobiTrace(cfg)
	if err != nil {
		panic(err)
	}
	s, err := charmtrace.Extract(tr, charmtrace.DefaultOptions())
	if err != nil {
		panic(err)
	}
	r := charmtrace.ComputeMetrics(s)
	max, at := r.MaxDifferentialDuration()
	fmt.Printf("max differential duration %d ns on %s\n",
		max, tr.Chares[tr.Events[at].Chare].Name)
	// Output:
	// max differential duration 3500 ns on jacobi[5]
}
