// Package cli provides the workload registry shared by the command-line
// tools: every paper workload is addressable by name, producing a trace and
// the extraction options appropriate for its programming model.
package cli

import (
	"fmt"
	"sort"
	"strings"

	"charmtrace/internal/apps/faultsim"
	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lassen"
	"charmtrace/internal/apps/lbmigrate"
	"charmtrace/internal/apps/lulesh"
	"charmtrace/internal/apps/mergetree"
	"charmtrace/internal/apps/nasbt"
	"charmtrace/internal/apps/ordstress"
	"charmtrace/internal/apps/pdes"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// Params tune a workload without exposing each app's full config.
type Params struct {
	// Iterations overrides the workload's iteration count (0 = default).
	Iterations int
	// Scale overrides the workload's size knob (chares/processes; 0 = default).
	Scale int
	// Seed overrides the RNG seed (0 = default).
	Seed int64
	// NoReductionTracing disables the §5 tracing additions where relevant.
	NoReductionTracing bool
}

// workload describes one registered workload.
type workload struct {
	desc string
	gen  func(p Params) (*trace.Trace, error)
	opts func() core.Options
}

func pick[T int | int64](override, def T) T {
	if override != 0 {
		return override
	}
	return def
}

var workloads = map[string]workload{
	"jacobi": {
		desc: "Jacobi 2D heat (Charm++): halo exchange + Max reduction per iteration",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := jacobi.DefaultConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Grid = pick(p.Scale, cfg.Grid)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			cfg.TraceReductions = !p.NoReductionTracing
			return jacobi.Trace(cfg)
		},
		opts: core.DefaultOptions,
	},
	"jacobi-slow": {
		desc: "Jacobi 2D with one slow chare in one iteration (Figures 14/15)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := jacobi.DefaultConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Grid = pick(p.Scale, cfg.Grid)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			cfg.SlowChare = cfg.Grid + 1
			return jacobi.Trace(cfg)
		},
		opts: core.DefaultOptions,
	},
	"lulesh": {
		desc: "LULESH proxy (Charm++): setup + mirrored exchanges + dt allreduce (Figure 16b)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := lulesh.DefaultConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Grid = pick(p.Scale, cfg.Grid)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			cfg.TraceReductions = !p.NoReductionTracing
			return lulesh.CharmTrace(cfg)
		},
		opts: core.DefaultOptions,
	},
	"lulesh-mpi": {
		desc: "LULESH proxy (MPI): setup + three exchanges + allreduce (Figure 16a)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := lulesh.DefaultConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Grid = pick(p.Scale, cfg.Grid)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			return lulesh.MPITrace(cfg)
		},
		opts: core.MessagePassingOptions,
	},
	"lassen": {
		desc: "LASSEN wavefront (Charm++, 8 chares): p2p + control + allreduce (Figure 20b)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := lassen.DefaultConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			return lassen.CharmTrace(cfg)
		},
		opts: core.DefaultOptions,
	},
	"lassen64": {
		desc: "LASSEN wavefront (Charm++, 64 chares on 8 PEs; Figure 20d)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := lassen.FineConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			return lassen.CharmTrace(cfg)
		},
		opts: core.DefaultOptions,
	},
	"lassen-mpi": {
		desc: "LASSEN wavefront (MPI, 8 procs; Figure 20a)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := lassen.DefaultConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			return lassen.MPITrace(cfg)
		},
		opts: core.MessagePassingOptions,
	},
	"lassen-mpi64": {
		desc: "LASSEN wavefront (MPI, 64 procs; Figure 20c)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := lassen.FineConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			return lassen.MPITrace(cfg)
		},
		opts: core.MessagePassingOptions,
	},
	"mergetree": {
		desc: "MPI merge tree, 1,024 processes with data-dependent imbalance (Figure 10)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := mergetree.DefaultConfig()
			cfg.Procs = pick(p.Scale, cfg.Procs)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			return mergetree.Trace(cfg)
		},
		opts: core.MessagePassingOptions,
	},
	"pdes": {
		desc: "PDES mini-app with unrecorded completion-detector call (Figure 24)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := pdes.DefaultConfig()
			cfg.Chares = pick(p.Scale, cfg.Chares)
			cfg.Rounds = pick(p.Iterations, cfg.Rounds)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			return pdes.Trace(cfg)
		},
		opts: core.DefaultOptions,
	},
	"pdes-traced": {
		desc: "PDES mini-app with the detector call recorded (the Figure 24 fix)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := pdes.DefaultConfig()
			cfg.Chares = pick(p.Scale, cfg.Chares)
			cfg.Rounds = pick(p.Iterations, cfg.Rounds)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			cfg.TraceDetectorCall = true
			return pdes.Trace(cfg)
		},
		opts: core.DefaultOptions,
	},
	"lbmigrate": {
		desc: "1D stencil with a mid-run load-balancing step migrating chares",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := lbmigrate.DefaultConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Chares = pick(p.Scale, cfg.Chares)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			cfg.TraceReductions = !p.NoReductionTracing
			return lbmigrate.Trace(cfg)
		},
		opts: core.DefaultOptions,
	},
	"faultsim": {
		desc: "ring with a fail-stop chare, quiescence-triggered rollback and replay",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := faultsim.DefaultConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Chares = pick(p.Scale, cfg.Chares)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			cfg.TraceReductions = !p.NoReductionTracing
			return faultsim.Trace(cfg)
		},
		opts: core.DefaultOptions,
	},
	"ordstress": {
		desc: "adversarial orderability stresser: ties, priority inversion, stragglers",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := ordstress.DefaultConfig()
			cfg.Waves = pick(p.Iterations, cfg.Waves)
			cfg.Chares = pick(p.Scale, cfg.Chares)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			return ordstress.Trace(cfg)
		},
		opts: core.DefaultOptions,
	},
	"nasbt": {
		desc: "NAS BT-style sweeps, 9 MPI processes (Figure 1)",
		gen: func(p Params) (*trace.Trace, error) {
			cfg := nasbt.DefaultConfig()
			cfg.Iterations = pick(p.Iterations, cfg.Iterations)
			cfg.Grid = pick(p.Scale, cfg.Grid)
			cfg.Seed = pick(p.Seed, cfg.Seed)
			return nasbt.Trace(cfg)
		},
		opts: core.MessagePassingOptions,
	},
}

// Names lists the registered workloads, sorted.
func Names() []string {
	out := make([]string, 0, len(workloads))
	for n := range workloads {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns a usage table of all workloads.
func Describe() string {
	var b strings.Builder
	for _, n := range Names() {
		fmt.Fprintf(&b, "  %-14s %s\n", n, workloads[n].desc)
	}
	return b.String()
}

// Generate runs the named workload and returns its trace plus the
// extraction options matching its programming model.
func Generate(name string, p Params) (*trace.Trace, core.Options, error) {
	w, ok := workloads[name]
	if !ok {
		return nil, core.Options{}, fmt.Errorf("unknown workload %q; available:\n%s", name, Describe())
	}
	tr, err := w.gen(p)
	if err != nil {
		return nil, core.Options{}, fmt.Errorf("workload %s: %w", name, err)
	}
	return tr, w.opts(), nil
}
