// Command experiments regenerates every figure of the paper's evaluation:
// for each figure it runs the corresponding workload(s) on the bundled
// simulators, applies the logical-structure algorithm, and prints the
// series/claims the paper reports alongside the measured values.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run fig16 # one experiment
//	experiments -list
//	experiments -big       # include the full-size fig10/fig19 points
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"charmtrace/internal/cli"
)

// experiment is one reproducible figure.
type experiment struct {
	id    string
	title string
	run   func(big bool)
}

var experiments []experiment

// tele is the shared observability handle; every extraction the experiments
// run goes through helpers.go's extract (or applies tele itself), so
// -stats-json aggregates metrics across all figures of a run and
// -self-trace shows them as separate root spans.
var tele *cli.Telemetry

func register(id, title string, run func(big bool)) {
	experiments = append(experiments, experiment{id, title, run})
}

func main() {
	runID := flag.String("run", "", "run only this experiment id (e.g. fig16)")
	list := flag.Bool("list", false, "list experiments")
	big := flag.Bool("big", false, "use paper-scale sizes where they are expensive (fig10: 1024 procs, fig19: 13.8k chares)")
	benchJSON := flag.String("bench-json", "", "run the extraction benchmark suite and write machine-readable results to this JSON file (skips the figure experiments)")
	tele = cli.NewTelemetry("experiments", flag.CommandLine)
	flag.Parse()
	if err := tele.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := tele.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	sort.Slice(experiments, func(i, j int) bool { return experiments[i].id < experiments[j].id })
	if *list {
		for _, e := range experiments {
			fmt.Printf("  %-6s %s\n", e.id, e.title)
		}
		return
	}
	ran := false
	for _, e := range experiments {
		if *runID != "" && e.id != *runID {
			continue
		}
		ran = true
		fmt.Printf("================================================================\n")
		fmt.Printf("%s: %s\n", e.id, e.title)
		fmt.Printf("================================================================\n")
		e.run(*big)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *runID)
		os.Exit(1)
	}
	if err := tele.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
