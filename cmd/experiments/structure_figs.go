package main

import (
	"fmt"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lassen"
	"charmtrace/internal/apps/lulesh"
	"charmtrace/internal/apps/nasbt"
	"charmtrace/internal/apps/pdes"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func init() {
	register("fig01", "NAS BT: logical structure vs physical time (9 processes)", figBT)
	register("fig08", "Jacobi 2D, 64 chares / 8 PEs: recorded vs reordered step assignment", figJacobiReorder)
	register("fig16", "LULESH: MPI vs Charm++ logical structures correspond", figLulesh)
	register("fig17", "LULESH without §3.1.4 inference: phases split in sequence", figLuleshNoInfer)
	register("fig20", "LASSEN: logical structure across MPI/Charm++ and 8/64 decompositions", figLassenStructure)
	register("fig24", "PDES: unrecorded completion-detector dependency leaves phases concurrent", figPDES)
	register("sec5", "§5 tracing additions: reduction tracing on vs off", figSec5)
}

func figBT(bool) {
	tr := must(nasbt.Trace(nasbt.DefaultConfig()))
	s := extract(tr, core.MessagePassingOptions())
	// Count phase pairs that overlap in physical time but are disjoint in
	// logical steps: the separation Figure 1 visualizes.
	type span struct{ lo, hi trace.Time }
	spans := make([]span, s.NumPhases())
	for pi := range s.Phases {
		sp := span{1<<62 - 1, 0}
		for _, e := range s.Phases[pi].Events {
			t := tr.Events[e].Time
			if t < sp.lo {
				sp.lo = t
			}
			if t > sp.hi {
				sp.hi = t
			}
		}
		spans[pi] = sp
	}
	overlapping, separated := 0, 0
	for i := range spans {
		li, hi := s.Phases[i].GlobalSpan()
		for j := i + 1; j < len(spans); j++ {
			if spans[i].hi < spans[j].lo || spans[j].hi < spans[i].lo {
				continue
			}
			overlapping++
			lj, hj := s.Phases[j].GlobalSpan()
			if hi < lj || hj < li {
				separated++
			}
		}
	}
	fmt.Printf("  phases: %d over steps 0..%d; pattern: %s\n", s.NumPhases(), s.MaxStep(), kindPattern(s))
	fmt.Printf("  physically interleaved phase pairs: %d, of which logically separated: %d\n",
		overlapping, separated)
	paperVsMeasured(
		"sweep phases interleave in physical time; logical structure separates them",
		fmt.Sprintf("%d/%d interleaved pairs get disjoint logical step ranges", separated, overlapping))
}

func figJacobiReorder(bool) {
	cfg := jacobi.DefaultConfig()
	cfg.Grid = 8 // 64 chares
	cfg.NumPE = 8
	cfg.Iterations = 2
	tr := must(jacobi.Trace(cfg))

	reordered := extract(tr, core.DefaultOptions())
	opt := core.DefaultOptions()
	opt.Reorder = false
	recorded := extract(tr, opt)

	// The paper's claim is that after reordering both application phases
	// reveal a *shared* communication pattern. Quantify: for each receive,
	// record (chare, local step) -> sending chare; the similarity between
	// the two iterations' application phases is the fraction of positions
	// carrying the same sender in both.
	pattern := func(s *core.Structure, phase int32) map[[2]int32]trace.ChareID {
		out := make(map[[2]int32]trace.ChareID)
		for _, e := range s.Phases[phase].Events {
			ev := &tr.Events[e]
			if ev.Kind != trace.Recv {
				continue
			}
			send := tr.SendOf(ev.Msg)
			out[[2]int32{int32(ev.Chare), s.LocalStep[e]}] = tr.Events[send].Chare
		}
		return out
	}
	similarity := func(s *core.Structure) float64 {
		var apps []int32
		for _, pi := range phasesByOffset(s) {
			if !s.Phases[pi].Runtime && len(s.Phases[pi].Chares) > 1 {
				apps = append(apps, pi)
			}
		}
		if len(apps) < 2 {
			return 0
		}
		a, b := pattern(s, apps[0]), pattern(s, apps[1])
		same, total := 0, 0
		for k, v := range a {
			total++
			if b[k] == v {
				same++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(same) / float64(total)
	}
	reSim, recSim := similarity(reordered), similarity(recorded)
	fmt.Printf("  iteration-pattern similarity ((chare, step) -> sender identical across the two iterations):\n")
	fmt.Printf("    reordered: %.0f%%    recorded order: %.0f%%\n", 100*reSim, 100*recSim)
	paperVsMeasured(
		"after reordering, the first and second application phases reveal a shared communication pattern not apparent in the non-reordered versions",
		fmt.Sprintf("reordered iterations match at %.0f%% of positions; recorded order only %.0f%%", 100*reSim, 100*recSim))
}

func figLulesh(bool) {
	cfg := lulesh.DefaultConfig()
	mpi := extract(must(lulesh.MPITrace(cfg)), core.MessagePassingOptions())
	charm := extract(must(lulesh.CharmTrace(cfg)), core.DefaultOptions())
	fmt.Printf("  MPI (8 procs):        %2d phases: %s\n", mpi.NumPhases(), kindPattern(mpi))
	fmt.Printf("  Charm++ (8 ch/2 PE):  %2d phases: %s\n", charm.NumPhases(), kindPattern(charm))
	paperVsMeasured(
		"MPI: setup then repeating [3 phases + allreduce]; Charm++: setup then repeating [2 mirrored phases + allreduce]",
		fmt.Sprintf("MPI repeats [a a a a] per iteration, Charm++ repeats [a a R]; per-iteration difference = %d phases over %d iterations",
			(mpi.NumPhases()-charm.NumPhases())/cfg.Iterations*1, cfg.Iterations))
}

func figLuleshNoInfer(bool) {
	cfg := lulesh.DefaultConfig()
	tr := must(lulesh.CharmTrace(cfg))
	with := extract(tr, core.DefaultOptions())
	opt := core.DefaultOptions()
	opt.InferDependencies = false
	without := extract(tr, opt)
	fmt.Printf("  with inference:    %3d phases: %s\n", with.NumPhases(), kindPattern(with))
	fmt.Printf("  without inference: %3d phases: %s\n", without.NumPhases(), kindPattern(without))
	paperVsMeasured(
		"without inferring dependencies the initial phase splits into several placed one after another; pre-allreduce phases split in two",
		fmt.Sprintf("phase count grows from %d to %d; split phases are sequenced by initial-source time",
			with.NumPhases(), without.NumPhases()))
}

func figLassenStructure(bool) {
	coarse := lassen.DefaultConfig()
	fine := lassen.FineConfig()
	rows := []struct {
		name string
		s    *core.Structure
	}{
		{"MPI, 8 procs      ", extract(must(lassen.MPITrace(coarse)), core.MessagePassingOptions())},
		{"Charm++, 8 chares ", extract(must(lassen.CharmTrace(coarse)), core.DefaultOptions())},
		{"MPI, 64 procs     ", extract(must(lassen.MPITrace(fine)), core.MessagePassingOptions())},
		{"Charm++, 64 chares", extract(must(lassen.CharmTrace(fine)), core.DefaultOptions())},
	}
	for _, r := range rows {
		fmt.Printf("  %s %4d phases: %s\n", r.name, r.s.NumPhases(), kindPattern(r.s))
	}
	paperVsMeasured(
		"all four: repeating [point-to-point phase + collective]; Charm++ additionally shows two-step self-invocation control phases and the runtime reduction tree",
		"MPI repeats [a a]; Charm++ repeats [a a*N R] — point-to-point, N concurrent two-step control phases (self sends), runtime reduction")
}

func figPDES(bool) {
	cfg := pdes.DefaultConfig()
	missing := extract(must(pdes.Trace(cfg)), core.DefaultOptions())
	cfg.TraceDetectorCall = true
	traced := extract(must(pdes.Trace(cfg)), core.DefaultOptions())
	fmt.Printf("  detector call unrecorded: %d phases, concurrent pairs %v\n",
		missing.NumPhases(), missing.ConcurrentPhases())
	fmt.Printf("  detector call recorded:   %d phases, concurrent pairs %v\n",
		traced.NumPhases(), traced.ConcurrentPhases())
	paperVsMeasured(
		"the gray completion-detector phase covers the same global steps as the mustard simulation phase — nothing structurally prevents it",
		fmt.Sprintf("unrecorded: %d concurrent phase pair(s); recorded: %d",
			len(missing.ConcurrentPhases()), len(traced.ConcurrentPhases())))
}

func figSec5(bool) {
	cfg := jacobi.DefaultConfig()
	with := must(jacobi.Trace(cfg))
	cfg.TraceReductions = false
	without := must(jacobi.Trace(cfg))
	sWith := extract(with, core.DefaultOptions())
	sWithout := extract(without, core.DefaultOptions())
	fmt.Printf("  with §5 additions:    %4d events, %2d phases: %s\n",
		len(with.Events), sWith.NumPhases(), kindPattern(sWith))
	fmt.Printf("  without §5 additions: %4d events, %2d phases: %s\n",
		len(without.Events), sWithout.NumPhases(), kindPattern(sWithout))
	overhead := float64(len(with.Events)-len(without.Events)) / float64(len(without.Events)) * 100
	fmt.Printf("  extra traced events: %d (%.0f%% of the stock trace; a small constant per contribute)\n",
		len(with.Events)-len(without.Events), overhead)
	// Without the additions the runtime phase has no recorded dependency
	// from the application at all: its ordering rests purely on the
	// inferred (physical-time) heuristics.
	appToRuntime := func(tr *trace.Trace) int {
		n := 0
		for _, ev := range tr.Events {
			if ev.Kind != trace.Send || tr.IsRuntimeChare(ev.Chare) {
				continue
			}
			for _, r := range tr.RecvsOf(ev.Msg) {
				if tr.IsRuntimeChare(tr.Events[r].Chare) {
					n++
				}
			}
		}
		return n
	}
	paperVsMeasured(
		"local reduction tracing adds a short event per contribute at negligible cost and makes the runtime reduction reconstructible",
		fmt.Sprintf("with additions: %d recorded application->runtime dependencies anchor the reduction phases; without: %d (their ordering then rests entirely on inferred physical-time dependencies); phases %d vs %d",
			appToRuntime(with), appToRuntime(without), sWith.NumPhases(), sWithout.NumPhases()))
}
