package query

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

func jacobiIndex(t *testing.T) *Index {
	t.Helper()
	tr := jacobi.MustTrace(jacobi.DefaultConfig())
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return BuildIndex(s)
}

func mustRun(t *testing.T, idx *Index, spec Spec) *Result {
	t.Helper()
	res, err := Run(context.Background(), idx, spec)
	if err != nil {
		t.Fatalf("Run(%+v): %v", spec, err)
	}
	return res
}

func rowsJSON(t *testing.T, rows []map[string]any) string {
	t.Helper()
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestIndexInvariants(t *testing.T) {
	idx := jacobiIndex(t)
	s := idx.S
	if len(idx.EventRows) != len(s.Trace.Events) {
		t.Fatalf("EventRows %d != events %d", len(idx.EventRows), len(s.Trace.Events))
	}
	for i := 1; i < len(idx.EventRows); i++ {
		a, b := idx.EventRows[i-1], idx.EventRows[i]
		if s.Step[a] > s.Step[b] {
			t.Fatalf("EventRows not sorted by step at %d", i)
		}
		if s.Step[a] == s.Step[b] && s.Trace.Events[a].Chare > s.Trace.Events[b].Chare {
			t.Fatalf("EventRows tie not broken by chare at %d", i)
		}
	}
	// ChareEvents partition the event table.
	n := 0
	for c, evs := range idx.ChareEvents {
		n += len(evs)
		for _, e := range evs {
			if s.Trace.Events[e].Chare != trace.ChareID(c) {
				t.Fatalf("chare %d list holds event of chare %d", c, s.Trace.Events[e].Chare)
			}
		}
	}
	if n != len(s.Trace.Events) {
		t.Fatalf("ChareEvents cover %d events, want %d", n, len(s.Trace.Events))
	}
	// Rollup totals equal a direct sum.
	var want, got int64
	for e := range s.Trace.Events {
		want += int64(idx.Report.IdleExperienced[e])
	}
	for _, r := range idx.ChareRollup {
		got += r.Sum[mIdle]
	}
	if got != want {
		t.Fatalf("chare rollup idle sum %d, want %d", got, want)
	}
	if idx.Bytes() <= 0 {
		t.Fatal("index reports no memory")
	}
}

func TestStructureRowsOrderedAndFiltered(t *testing.T) {
	idx := jacobiIndex(t)
	full := mustRun(t, idx, Spec{Select: SelectStructure})
	if full.TotalRows != idx.S.NumPhases() {
		t.Fatalf("total %d, want %d phases", full.TotalRows, idx.S.NumPhases())
	}
	prev := int32(-1)
	for _, row := range full.Rows {
		off := row["offset"].(int32)
		if off < prev {
			t.Fatal("structure rows not ordered by offset")
		}
		prev = off
	}
	// A step window keeps exactly the phases intersecting it.
	r := StepRange{From: 3, To: 9}
	win := mustRun(t, idx, Spec{Select: SelectStructure, Filter: Filter{Steps: &r}})
	want := 0
	for i := range idx.S.Phases {
		lo, hi := idx.S.Phases[i].GlobalSpan()
		if hi >= r.From && lo <= r.To {
			want++
		}
	}
	if win.TotalRows != want {
		t.Fatalf("windowed phases %d, want %d", win.TotalRows, want)
	}
	// A chare filter keeps phases the chare participates in.
	one := mustRun(t, idx, Spec{Select: SelectStructure, Filter: Filter{Chares: []int32{0}}})
	for _, row := range one.Rows {
		id := row["id"].(int32)
		found := false
		for _, c := range idx.S.Phases[id].Chares {
			if c == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("phase %d does not contain chare 0", id)
		}
	}
}

func TestStepsFilterMatchesNaive(t *testing.T) {
	idx := jacobiIndex(t)
	s := idx.S
	r := StepRange{From: 9, To: 30}
	filter := Filter{Chares: []int32{1, 3, 5}, Steps: &r}
	got := mustRun(t, idx, Spec{Select: SelectSteps, Filter: filter})

	// Naive scan over the full table with the same ordering.
	full := mustRun(t, idx, Spec{Select: SelectSteps})
	want := []map[string]any{}
	keep := map[int32]bool{1: true, 3: true, 5: true}
	for _, row := range full.Rows {
		if keep[row["chare"].(int32)] && row["step"].(int32) >= r.From && row["step"].(int32) <= r.To {
			want = append(want, row)
		}
	}
	if len(want) == 0 {
		t.Fatal("test window selects nothing; widen it")
	}
	if rowsJSON(t, got.Rows) != rowsJSON(t, want) {
		t.Fatal("filtered steps differ from the naive slice of the full result")
	}
	if got.TotalRows != len(want) {
		t.Fatalf("TotalRows %d, want %d", got.TotalRows, len(want))
	}
	_ = s
}

func TestGroupedRollupMatchesScan(t *testing.T) {
	idx := jacobiIndex(t)
	for _, groupBy := range []string{GroupByPhase, GroupByChare} {
		// The unfiltered path reads precomputed rollups; an all-pass step
		// filter forces the scan path. Both must agree byte-for-byte.
		rollup := mustRun(t, idx, Spec{Select: SelectMetrics, GroupBy: groupBy})
		r := StepRange{From: 0, To: idx.S.MaxStep()}
		scan := mustRun(t, idx, Spec{Select: SelectMetrics, GroupBy: groupBy, Filter: Filter{Steps: &r}})
		if rowsJSON(t, rollup.Rows) != rowsJSON(t, scan.Rows) {
			t.Fatalf("group_by=%s: rollup path and scan path disagree", groupBy)
		}
	}
	// count equals the per-phase event count.
	res := mustRun(t, idx, Spec{Select: SelectMetrics, GroupBy: GroupByPhase, Aggregates: []string{"count"}})
	for _, row := range res.Rows {
		p := row[GroupByPhase].(int32)
		if int64(len(idx.S.Phases[p].Events)) != row["count"].(int64) {
			t.Fatalf("phase %d count %v, want %d", p, row["count"], len(idx.S.Phases[p].Events))
		}
		if _, ok := row["idle_experienced_sum"]; ok {
			t.Fatal("aggregates=[count] leaked a sum column")
		}
	}
}

func TestMeanAggregate(t *testing.T) {
	idx := jacobiIndex(t)
	res := mustRun(t, idx, Spec{Select: SelectMetrics, GroupBy: GroupByChare, Aggregates: []string{"sum", "mean", "count"}})
	for _, row := range res.Rows {
		sum := row["sub_dur_sum"].(int64)
		count := row["count"].(int64)
		if mean := row["sub_dur_mean"].(float64); mean != float64(sum)/float64(count) {
			t.Fatalf("mean %v != %d/%d", mean, sum, count)
		}
	}
}

func TestPaginationConcatenatesExactly(t *testing.T) {
	idx := jacobiIndex(t)
	base := Spec{Select: SelectSteps, Limit: 7}
	full := mustRun(t, idx, Spec{Select: SelectSteps})

	var pages []map[string]any
	spec := base
	for page := 0; ; page++ {
		res := mustRun(t, idx, spec)
		if res.TotalRows != full.TotalRows {
			t.Fatalf("page %d TotalRows %d, want %d", page, res.TotalRows, full.TotalRows)
		}
		if len(res.Rows) > base.Limit {
			t.Fatalf("page %d has %d rows > limit %d", page, len(res.Rows), base.Limit)
		}
		pages = append(pages, res.Rows...)
		if res.NextCursor == "" {
			break
		}
		spec.Cursor = res.NextCursor
	}
	if rowsJSON(t, pages) != rowsJSON(t, full.Rows) {
		t.Fatal("concatenated pages differ from the unpaged result")
	}
}

func TestCursorBoundToSpec(t *testing.T) {
	idx := jacobiIndex(t)
	res := mustRun(t, idx, Spec{Select: SelectSteps, Limit: 5})
	if res.NextCursor == "" {
		t.Fatal("expected a next cursor")
	}
	// Same cursor, different filter: rejected with a field-level error.
	_, err := Run(context.Background(), idx, Spec{
		Select: SelectSteps, Limit: 5, Cursor: res.NextCursor,
		Filter: Filter{Chares: []int32{0}},
	})
	var qe *Error
	if !errors.As(err, &qe) || qe.Field != "cursor" {
		t.Fatalf("cursor reuse error = %v, want *Error{Field: cursor}", err)
	}
	// Garbage cursors are client errors too.
	if _, err := Run(context.Background(), idx, Spec{Select: SelectSteps, Cursor: "!!!"}); err == nil {
		t.Fatal("garbage cursor accepted")
	}
}

func TestProjection(t *testing.T) {
	idx := jacobiIndex(t)
	res := mustRun(t, idx, Spec{Select: SelectSteps, Fields: []string{"step", "chare"}, Limit: 3})
	for _, row := range res.Rows {
		if len(row) != 2 {
			t.Fatalf("projected row has %d fields: %v", len(row), row)
		}
	}
	// Unknown field: a validation error naming the field.
	_, err := Run(context.Background(), idx, Spec{Select: SelectSteps, Fields: []string{"nope"}})
	var qe *Error
	if !errors.As(err, &qe) || qe.Field != "fields" {
		t.Fatalf("unknown field error = %v", err)
	}
	if !strings.Contains(qe.Msg, "chare_name") {
		t.Fatalf("error does not list valid fields: %s", qe.Msg)
	}
}

func TestValidationFieldErrors(t *testing.T) {
	cases := []struct {
		spec  Spec
		field string
	}{
		{Spec{}, "select"},
		{Spec{Select: "nope"}, "select"},
		{Spec{Select: SelectSteps, GroupBy: GroupByPhase}, "group_by"},
		{Spec{Select: SelectMetrics, GroupBy: "pe"}, "group_by"},
		{Spec{Select: SelectMetrics, Aggregates: []string{"sum"}}, "aggregates"},
		{Spec{Select: SelectMetrics, GroupBy: GroupByPhase, Aggregates: []string{"median"}}, "aggregates"},
		{Spec{Select: SelectSteps, Limit: -1}, "limit"},
		{Spec{Select: SelectSteps, Filter: Filter{Steps: &StepRange{From: 9, To: 2}}}, "filter.steps"},
		{Spec{Select: SelectSteps, Filter: Filter{Steps: &StepRange{From: -1, To: 2}}}, "filter.steps.from"},
		{Spec{Select: SelectSteps, Filter: Filter{Phases: []int32{-3}}}, "filter.phases"},
		{Spec{Select: SelectSteps, Filter: Filter{Chares: []int32{-1}}}, "filter.chares"},
		{Spec{Select: SelectViz, Fields: []string{"step"}}, "fields"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		var qe *Error
		if !errors.As(err, &qe) {
			t.Errorf("Validate(%+v) = %v, want *Error", tc.spec, err)
			continue
		}
		if qe.Field != tc.field {
			t.Errorf("Validate(%+v) blamed %q, want %q", tc.spec, qe.Field, tc.field)
		}
	}
}

func TestExecBoundsErrors(t *testing.T) {
	idx := jacobiIndex(t)
	_, err := Run(context.Background(), idx, Spec{Select: SelectSteps, Filter: Filter{Phases: []int32{9999}}})
	var qe *Error
	if !errors.As(err, &qe) || qe.Field != "filter.phases" {
		t.Fatalf("out-of-range phase error = %v", err)
	}
	_, err = Run(context.Background(), idx, Spec{Select: SelectSteps, Filter: Filter{Chares: []int32{9999}}})
	if !errors.As(err, &qe) || qe.Field != "filter.chares" {
		t.Fatalf("out-of-range chare error = %v", err)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"select":"steps","filters":{}}`))
	var qe *Error
	if !errors.As(err, &qe) {
		t.Fatalf("unknown field accepted: %v", err)
	}
	spec, err := ParseSpec(strings.NewReader(`{"select":"steps","filter":{"steps":{"from":1,"to":4}},"limit":10}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Filter.Steps == nil || spec.Filter.Steps.To != 4 {
		t.Fatalf("parsed spec lost the filter: %+v", spec)
	}
}

func TestVizClustersWindow(t *testing.T) {
	idx := jacobiIndex(t)
	r := StepRange{From: 0, To: 5}
	res := mustRun(t, idx, Spec{Select: SelectViz, Filter: Filter{Steps: &r}})
	if res.Window == nil || res.Window.From != 0 || res.Window.To != 5 {
		t.Fatalf("window = %+v", res.Window)
	}
	members := 0
	sawRuntime := false
	for _, row := range res.Rows {
		members += row["members"].(int)
		tl := row["timeline"].(string)
		if len(tl) != 6 {
			t.Fatalf("timeline %q length %d, want 6", tl, len(tl))
		}
		if row["runtime"].(bool) {
			sawRuntime = true
		} else if sawRuntime {
			t.Fatal("application cluster below a runtime cluster")
		}
	}
	if members != len(idx.S.Trace.Chares) {
		t.Fatalf("cluster members sum %d, want %d chares", members, len(idx.S.Trace.Chares))
	}
	// Identical interior chares must have collapsed.
	if len(res.Rows) >= len(idx.S.Trace.Chares) {
		t.Fatalf("no clustering: %d rows for %d chares", len(res.Rows), len(idx.S.Trace.Chares))
	}
}

func TestCancelledContext(t *testing.T) {
	idx := jacobiIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, idx, Spec{Select: SelectSteps}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
}

func TestEngineTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := NewEngine(reg)
	tr := jacobi.MustTrace(jacobi.DefaultConfig())
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	idx := e.Index(s)
	res, err := e.Run(context.Background(), idx, Spec{Select: SelectStructure})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["query.index_builds"] != 1 {
		t.Errorf("index_builds = %d", snap.Counters["query.index_builds"])
	}
	if snap.Counters["query.queries"] != 1 {
		t.Errorf("queries = %d", snap.Counters["query.queries"])
	}
	if snap.Counters["query.rows_returned"] != int64(len(res.Rows)) {
		t.Errorf("rows_returned = %d, want %d", snap.Counters["query.rows_returned"], len(res.Rows))
	}
}

func TestAggsSelectedNormalizesOrder(t *testing.T) {
	s := Spec{Aggregates: []string{"max", "count"}}
	got := s.aggsSelected()
	if !sort.StringsAreSorted([]string{"count", "max"}) || len(got) != 2 || got[0] != "count" || got[1] != "max" {
		t.Fatalf("aggsSelected = %v", got)
	}
}
