package core

import (
	"math/rand"
	"runtime"
	"testing"

	"charmtrace/internal/trace"
)

// TestParallelSteppingIdentical: the parallel ordering stage must produce
// exactly the serial result.
func TestParallelSteppingIdentical(t *testing.T) {
	// Exercise real goroutine interleaving even on single-proc machines.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 25; i++ {
		tr := randomTrace(rng)
		serial, err := Extract(tr, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Parallel = true
		par, err := Extract(tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := par.Validate(); err != nil {
			t.Fatal(err)
		}
		if serial.NumPhases() != par.NumPhases() {
			t.Fatalf("phase counts differ: %d vs %d", serial.NumPhases(), par.NumPhases())
		}
		for e := range tr.Events {
			if serial.Step[e] != par.Step[e] || serial.PhaseOf[e] != par.PhaseOf[e] ||
				serial.LocalStep[e] != par.LocalStep[e] {
				t.Fatalf("event %d differs between serial and parallel stepping", e)
			}
		}
		for c := range tr.Chares {
			a, b := serial.EventsOfChare(trace.ChareID(c)), par.EventsOfChare(trace.ChareID(c))
			if len(a) != len(b) {
				t.Fatalf("chare %d timeline lengths differ", c)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("chare %d timeline differs at %d", c, i)
				}
			}
		}
	}
}

// TestChareRankFlipsTieBreak: the Figure 7 tie-break follows the supplied
// topology rank instead of raw chare IDs.
func TestChareRankFlipsTieBreak(t *testing.T) {
	// Chares A (0) and B (1) both send to Z (2) from phase-source blocks at
	// w=0; Z's two receives tie at w=1, so their order is decided by the
	// invoking chare.
	build := func() *trace.Trace {
		b := trace.NewBuilder(3)
		e := b.AddEntry("work")
		a := b.AddChare("A", trace.NoArray, -1, 0)
		bb := b.AddChare("B", trace.NoArray, -1, 1)
		z := b.AddChare("Z", trace.NoArray, -1, 2)
		mA, mB := b.NewMsg(), b.NewMsg()
		b.BeginBlock(a, 0, e, 0)
		b.Send(a, mA, 0)
		b.EndBlock(a, 1)
		b.BeginBlock(bb, 1, e, 0)
		b.Send(bb, mB, 0)
		b.EndBlock(bb, 1)
		b.BeginBlock(z, 2, e, 10)
		b.Recv(z, mB, 10) // B's message arrives first physically
		b.EndBlock(z, 11)
		b.BeginBlock(z, 2, e, 12)
		b.Recv(z, mA, 12)
		b.EndBlock(z, 13)
		return b.MustFinish()
	}

	tr := build()
	z := trace.ChareID(2)

	// Default: invoker chare ID orders A's message first.
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seq := s.EventsOfChare(z)
	if tr.Events[seq[0]].Msg != 0 {
		t.Fatalf("default tie-break should order A's message first, got msg %d", tr.Events[seq[0]].Msg)
	}

	// Rank B before A: B's message must now come first.
	opt := DefaultOptions()
	opt.ChareRank = []int32{1, 0, 2}
	s, err = Extract(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	seq = s.EventsOfChare(z)
	if tr.Events[seq[0]].Msg != 1 {
		t.Fatalf("ranked tie-break should order B's message first, got msg %d", tr.Events[seq[0]].Msg)
	}
}
