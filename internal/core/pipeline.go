package core

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"time"

	"charmtrace/internal/partition"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// tel carries the telemetry context through the pipeline: the span sink,
// the metrics registry backing Stats, the cancellation context, and the
// span of the currently running stage (the parent for worker and round
// spans). cur is only written between parallel sections, so worker
// goroutines read it race-free.
type tel struct {
	rec  telemetry.Recorder
	reg  *telemetry.Registry
	ctx  context.Context // nil = never cancelled
	prog *Progress       // nil = no live progress reporting
	cur  telemetry.SpanID
}

// cancelled reports whether the extraction's context has expired. Safe to
// call from worker goroutines (ctx.Err is concurrency-safe).
func (t *tel) cancelled() bool {
	return t.ctx != nil && t.ctx.Err() != nil
}

// Extract recovers the logical structure of a trace (Section 3). The trace
// must be indexed (Builder.Finish and tracefile.Read both index); Extract
// indexes it if not.
func Extract(tr *trace.Trace, opt Options) (*Structure, error) {
	if !tr.Indexed() {
		if err := tr.Index(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	workers := opt.Workers()
	rec := opt.Telemetry
	if rec == nil {
		rec = telemetry.Disabled
	}
	t := &tel{rec: rec, reg: telemetry.NewRegistry(), ctx: opt.Context, prog: opt.Progress}
	rootAttrs := []telemetry.Attr{
		telemetry.Int("events", int64(len(tr.Events))),
		telemetry.Int("workers", int64(workers)),
	}
	if rec.Enabled() {
		// The request id (threaded through the context by charmd's access-log
		// middleware via the flight's detached context) joins the extraction's
		// root span to the HTTP request that caused it.
		if id := telemetry.RequestID(opt.Context); id != "" {
			rootAttrs = append(rootAttrs, telemetry.String("request_id", id))
		}
	}
	root := rec.StartSpan("extract", telemetry.NoSpan, rootAttrs...)
	t.reg.Gauge("trace.events").Set(float64(len(tr.Events)))
	t.reg.Gauge("trace.blocks").Set(float64(len(tr.Blocks)))
	t.reg.Gauge("trace.chares").Set(float64(len(tr.Chares)))
	t.reg.Gauge("pipeline.workers").Set(float64(workers))

	// stage wraps one pipeline stage: a span under the extract root, wall
	// time and merge count into the registry (the single bookkeeping path —
	// Stats is materialized from the registry below), and, when a recorder
	// is attached, runtime.MemStats deltas (gated because ReadMemStats
	// stops the world).
	memOn := rec.Enabled()
	var m0, m1 runtime.MemStats
	// cancelErr latches the first cancellation observed at a stage
	// boundary; once set, the remaining stages are skipped and Extract
	// returns the error instead of a (partially built) structure.
	var cancelErr error
	stage := func(name string, f func() int) {
		if cancelErr != nil {
			return
		}
		if err := opt.ctxErr(); err != nil {
			cancelErr = err
			return
		}
		if t.prog != nil {
			t.prog.SetStage(name)
		}
		t.cur = rec.StartSpan(name, root)
		if memOn {
			runtime.ReadMemStats(&m0)
		}
		start := time.Now()
		merged := f()
		d := time.Since(start)
		t.reg.Counter(telemetry.StageNSPrefix + name).Add(d.Nanoseconds())
		t.reg.Counter(telemetry.StageMergedPrefix + name).Add(int64(merged))
		if memOn {
			runtime.ReadMemStats(&m1)
			t.reg.Counter(telemetry.StageAllocPrefix + name).Add(int64(m1.TotalAlloc - m0.TotalAlloc))
			t.reg.Counter(telemetry.StageMallocPrefix + name).Add(int64(m1.Mallocs - m0.Mallocs))
			t.reg.Gauge(telemetry.StageHeapPrefix + name).Set(float64(m1.HeapAlloc))
		}
		rec.EndSpan(t.cur)
		t.cur = root
	}

	var a *atoms
	stage("initial", func() int {
		a = buildAtoms(tr, opt)
		t.reg.Gauge("pipeline.initial_partitions").Set(float64(a.set.NumAtoms()))
		return 0
	})
	stage("dependency-merge", func() int { return dependencyMerge(tr, a, workers, t) })
	stage("cycle-merge", func() int { return a.set.CycleMerge() })
	stage("repair-merge", func() int { return repairMerge(tr, a, opt) })
	stage("cycle-merge", func() int { return a.set.CycleMerge() })
	if opt.InferDependencies {
		stage("infer-dependencies", func() int { return inferDependencies(tr, a, workers, t) })
		stage("cycle-merge", func() int { return a.set.CycleMerge() })
		stage("leap-merge", func() int { return leapMerge(a) })
		stage("cycle-merge", func() int { return a.set.CycleMerge() })
	}
	stage("enforce-orderability", func() int {
		merged, rounds := enforceOrderability(tr, a, opt, workers, t)
		t.reg.Gauge("pipeline.enforce_rounds").Set(float64(rounds))
		return merged
	})
	stage("enforce-chare-paths", func() int { return enforceCharePaths(tr, a) })

	var s *Structure
	stage("step-assignment", func() int {
		s = assignSteps(tr, opt, a, t)
		return 0
	})
	rec.EndSpan(root)
	if cancelErr == nil {
		// Catch a cancellation that landed inside the final stage: its
		// structure is partially stepped and must not escape.
		cancelErr = opt.ctxErr()
	}
	if cancelErr != nil {
		if opt.Metrics != nil {
			t.reg.MergeInto(opt.Metrics)
		}
		return nil, fmt.Errorf("core: extract cancelled: %w", cancelErr)
	}
	s.Stats = statsFromRegistry(t.reg, workers)
	if opt.Metrics != nil {
		t.reg.MergeInto(opt.Metrics)
	}
	return s, nil
}

// dependencyMerge is Algorithm 1: partitions containing the matching
// endpoints of a remote method invocation belong in the same phase.
//
// The event sweep is embarrassingly parallel: workers scan contiguous event
// ranges of a frozen partition set (read-only Root lookups, no path
// compression) and collect candidate pairs per span. The spans are then
// scheduled in span order — which concatenates to exactly the sequential
// sweep order — and applied on the calling goroutine, so the union sequence
// (and hence the union-find tree and merge count) is identical for every
// worker count.
func dependencyMerge(tr *trace.Trace, a *atoms, workers int, t *tel) int {
	type pair struct{ send, recv partition.ID }
	spans := splitRange(len(tr.Events), workers)
	found := make([][]pair, len(spans))
	t.reg.Counter("pipeline.events_scanned").Add(int64(len(tr.Events)))
	t.parallelSpans("dependency-sweep", len(tr.Events), workers, func(idx, lo, hi int) {
		var local []pair
		for i := lo; i < hi; i++ {
			ev := &tr.Events[i]
			if ev.Kind != trace.Send || ev.Msg == trace.NoMsg {
				continue
			}
			send := a.of[ev.ID]
			for _, r := range tr.RecvsOf(ev.Msg) {
				if recv := a.of[r]; a.set.Root(send) != a.set.Root(recv) {
					local = append(local, pair{send, recv})
				}
			}
		}
		found[idx] = local
	})
	plan := a.set.NewMergePlan()
	for _, local := range found {
		for _, p := range local {
			plan.Schedule(p.send, p.recv)
		}
	}
	return plan.Apply()
}

// repairMerge is Algorithm 2: restore merges that the application/runtime
// split of serial blocks prevented. For consecutive events within one serial
// block whose partitions now differ but agree on runtime-ness, merge. With
// opt.NeighborSerialMerge it additionally applies the §3.1.3 refinement for
// neighbouring SDAG serials.
func repairMerge(tr *trace.Trace, a *atoms, opt Options) int {
	merged := 0
	for bi := range tr.Blocks {
		blk := &tr.Blocks[bi]
		for i := 0; i+1 < len(blk.Events); i++ {
			p := a.of[blk.Events[i]]
			q := a.of[blk.Events[i+1]]
			if a.set.SamePartition(p, q) {
				continue
			}
			if a.set.IsRuntime(p) == a.set.IsRuntime(q) {
				a.set.Union(p, q)
				merged++
			}
		}
	}
	if opt.NeighborSerialMerge {
		merged += neighborSerialMerge(tr, a)
	}
	return merged
}

// neighborSerialMerge: if a set of chares participates in SDAG serial n
// within a single partition and those chares immediately participate in
// serial n+1 spread over several partitions, the control likely flowed from
// one multi-chare group to the next, so the latter partitions are merged.
func neighborSerialMerge(tr *trace.Trace, a *atoms) int {
	// next[p] collects, per partition p holding serial-n blocks, the
	// partitions of the immediately following serial-(n+1) blocks.
	next := make(map[partition.ID][]partition.ID)
	for c := range tr.Chares {
		blocks := tr.BlocksOfChare(trace.ChareID(c))
		for i := 0; i+1 < len(blocks); i++ {
			ce := &tr.Entries[tr.Blocks[blocks[i]].Entry]
			ne := &tr.Entries[tr.Blocks[blocks[i+1]].Entry]
			if ce.SDAGSerial < 0 || ne.SDAGSerial != ce.SDAGSerial+1 {
				continue
			}
			la, fb := a.lastOf[blocks[i]], a.firstOf[blocks[i+1]]
			if la < 0 || fb < 0 {
				continue
			}
			p := a.set.Find(la)
			next[p] = append(next[p], fb)
		}
	}
	merged := 0
	for _, followers := range next {
		if len(followers) < 2 {
			continue
		}
		first := followers[0]
		for _, f := range followers[1:] {
			if a.set.IsRuntime(first) != a.set.IsRuntime(f) {
				continue
			}
			if !a.set.SamePartition(first, f) {
				a.set.Union(first, f)
				merged++
			}
		}
	}
	return merged
}

// buildPartInfo computes the per-partition ordering information used by the
// §3.1.4 heuristics — the earliest event per chare (aligned with the view's
// sorted chare rows), the earliest partition-starting source time per PE,
// and overall minima — into the arena's flat partInfos tables. Partitions
// are scanned independently; with workers > 1 the scans run on the pool.
// Each iteration only reads the frozen view and writes its own row, so the
// result is identical for any worker count.
func buildPartInfo(tr *trace.Trace, a *atoms, v *partition.View, workers int, t *tel) *partInfos {
	info := &a.arena.info
	n := len(v.Parts)
	info.chareOff = grow32(info.chareOff, n+1)
	total := int32(0)
	for pi := range v.Parts {
		info.chareOff[pi] = total
		total += int32(len(v.Parts[pi].Chares))
	}
	info.chareOff[n] = total
	info.initEvent = growEv(info.initEvent, int(total))
	info.minTime = growTime(info.minTime, n)
	info.src = growPeTime(info.src, int(total))
	info.srcEnd = grow32(info.srcEnd, n)
	t.parallelFor("part-scan", n, workers, func(pi int) {
		part := &v.Parts[pi]
		chares := part.Chares
		base := info.chareOff[pi]
		row := info.initEvent[base : base+int32(len(chares))]
		for i := range row {
			row[i] = trace.NoEvent
		}
		minTime := trace.Time(1<<62 - 1)
		for _, atomID := range part.Atoms {
			for _, e := range a.set.AtomEvents(atomID) {
				ev := &tr.Events[e]
				ci := chareIndex(chares, ev.Chare)
				if cur := row[ci]; cur == trace.NoEvent || less(tr, e, cur) {
					row[ci] = e
				}
				if ev.Time < minTime {
					minTime = ev.Time
				}
			}
		}
		info.minTime[pi] = minTime
		// Partition-starting sources: per-chare initial events that are
		// sends, reduced to the earliest time per PE (sort by (PE, time),
		// keep the first of each PE run).
		w := base
		for _, e := range row {
			if e == trace.NoEvent {
				continue
			}
			ev := &tr.Events[e]
			if ev.Kind != trace.Send {
				continue
			}
			info.src[w] = peTime{pe: ev.PE, t: ev.Time}
			w++
		}
		seg := info.src[base:w]
		slices.SortFunc(seg, func(x, y peTime) int {
			if x.pe != y.pe {
				return int(x.pe) - int(y.pe)
			}
			if x.t != y.t {
				if x.t < y.t {
					return -1
				}
				return 1
			}
			return 0
		})
		out := base
		for i := range seg {
			if i == 0 || seg[i].pe != seg[i-1].pe {
				info.src[out] = seg[i]
				out++
			}
		}
		info.srcEnd[pi] = out
	})
	return info
}

// less orders events by (time, ID) for deterministic minima.
func less(tr *trace.Trace, a, b trace.EventID) bool {
	ta, tb := tr.Events[a].Time, tr.Events[b].Time
	if ta != tb {
		return ta < tb
	}
	return a < b
}

// inferDependencies is Algorithm 3: the initial events in each partition are
// sources; the physical-time order between partition-starting sources on the
// same chare is inferred as a happened-before relationship between their
// partitions (Figure 5).
func inferDependencies(tr *trace.Trace, a *atoms, workers int, t *tel) int {
	v := a.set.View()
	info := buildPartInfo(tr, a, v, workers, t)
	ar := a.arena
	// Flatten the partition-starting sources into (chare, event, part) rows
	// in partition order, then group by chare with a stable index sort:
	// each partition contributes at most one source per chare, so a chare's
	// run reproduces the per-chare list the map-based version accumulated —
	// but chares are now visited in sorted order, keeping the edge
	// insertion order deterministic.
	srcChare, srcEvent, srcPart := ar.srcChare[:0], ar.srcEvent[:0], ar.srcPart[:0]
	for pi := range v.Parts {
		chares := v.Parts[pi].Chares
		base := info.chareOff[pi]
		for j, c := range chares {
			e := info.initEvent[base+int32(j)]
			if e == trace.NoEvent || tr.Events[e].Kind != trace.Send {
				continue
			}
			srcChare = append(srcChare, c)
			srcEvent = append(srcEvent, e)
			srcPart = append(srcPart, int32(pi))
		}
	}
	ord := ar.srcOrd[:0]
	for i := range srcChare {
		ord = append(ord, int32(i))
	}
	slices.SortFunc(ord, func(x, y int32) int {
		if srcChare[x] != srcChare[y] {
			return int(srcChare[x]) - int(srcChare[y])
		}
		return int(x) - int(y)
	})
	ar.srcChare, ar.srcEvent, ar.srcPart, ar.srcOrd = srcChare, srcEvent, srcPart, ord
	added := 0
	for i := 0; i < len(ord); {
		j := i
		for j < len(ord) && srcChare[ord[j]] == srcChare[ord[i]] {
			j++
		}
		run := ord[i:j]
		// Physical-time order of the chare's sources ((time, ID) is total,
		// so the sort is deterministic).
		slices.SortFunc(run, func(x, y int32) int {
			if less(tr, srcEvent[x], srcEvent[y]) {
				return -1
			}
			return 1
		})
		for k := 0; k+1 < len(run); k++ {
			p, q := run[k], run[k+1]
			if srcPart[p] == srcPart[q] {
				continue
			}
			a.set.AddEdge(a.of[srcEvent[p]], a.of[srcEvent[q]])
			added++
		}
		i = j
	}
	_ = added
	return 0 // Alg. 3 adds edges; partitions are merged by the cycle merge that follows.
}

// leapMerge is Algorithm 4: partitions in the same leap that overlap in
// chares cannot be ordered, so they are assumed to be the same phase and
// merged. Application and runtime partitions are only ever merged by cycle
// merges, so the merge is restricted to same-kind pairs; cross-kind overlap
// is ordered later by enforceOrderability.
func leapMerge(a *atoms) int {
	v := a.set.View()
	if !v.Acyclic() {
		a.set.CycleMerge()
		v = a.set.View()
	}
	byLeap := v.PartsAtLeap()
	ar := a.arena
	// seen: (chare, kind) -> representative atom of the first partition at
	// this leap holding that chare. Epoch-marked slots, one table half per
	// kind; bumping the epoch resets the table between leaps.
	if len(ar.seenAtom) < 2*ar.nChares {
		ar.seenAtom = make([]partition.ID, 2*ar.nChares)
		ar.seenMark = make([]int32, 2*ar.nChares)
	}
	plan := a.set.NewMergePlan()
	for _, parts := range byLeap {
		ar.seenEpoch++
		for _, pi := range parts {
			p := &v.Parts[pi]
			kindOff := 0
			if p.Runtime {
				kindOff = ar.nChares
			}
			rep := p.Atoms[0]
			for _, c := range p.Chares {
				slot := kindOff + int(c)
				if ar.seenMark[slot] == ar.seenEpoch {
					plan.Schedule(ar.seenAtom[slot], rep)
				} else {
					ar.seenMark[slot] = ar.seenEpoch
					ar.seenAtom[slot] = rep
				}
			}
		}
	}
	return plan.Apply()
}

// enforceOrderability iterates until no two partitions at the same leap
// share a chare (DAG property 1). Same-kind overlaps are merged when
// dependency inference is enabled; application/runtime overlaps — and all
// overlaps when inference is disabled (the Figure 17 ablation) — are instead
// forced into sequence by the physical time of their initial sources.
// Each round's latency lands in the pipeline.enforce_round_ns histogram,
// and under a recorder each round gets its own span, so slow convergence
// (the §3.1.4 cost the scaling figures attribute) is directly visible.
func enforceOrderability(tr *trace.Trace, a *atoms, opt Options, workers int, t *tel) (merged, rounds int) {
	const maxRounds = 64
	hist := t.reg.Histogram("pipeline.enforce_round_ns")
	stage := t.cur
	for rounds = 0; rounds < maxRounds; rounds++ {
		// Convergence can take many rounds on adversarial traces; a
		// cancelled extraction must not ride the loop to the end. The
		// partial merge state is discarded by Extract's boundary check.
		if t.cancelled() {
			return merged, rounds
		}
		start := time.Now()
		if t.rec.Enabled() {
			t.cur = t.rec.StartSpan("enforce-round", stage, telemetry.Int("round", int64(rounds)))
		}
		m, done := enforceRound(tr, a, opt, workers, t)
		merged += m
		if t.rec.Enabled() {
			t.rec.EndSpan(t.cur)
			t.cur = stage
		}
		hist.Observe(float64(time.Since(start).Nanoseconds()))
		if done {
			return merged, rounds + 1
		}
	}
	// Safety valve: merge any remaining overlaps so the pipeline terminates.
	a.set.CycleMerge()
	return merged, maxRounds
}

// enforceRound runs one orderability round: detect same-leap chare
// overlaps, merge or sequence them. done reports that no overlaps remain.
func enforceRound(tr *trace.Trace, a *atoms, opt Options, workers int, t *tel) (merged int, done bool) {
	a.set.CycleMerge()
	v := a.set.View()
	infos := buildPartInfo(tr, a, v, workers, t)
	byLeap := v.PartsAtLeap()

	// Overlap detection is independent per leap (each leap has its own
	// chare-occupancy table), so leaps are scanned on the pool — contiguous
	// leap spans per worker, each with its own lane scratch; per-leap
	// results concatenated in leap order reproduce the sequential scan.
	type pair struct{ p, q int32 }
	perLeap := make([][]pair, len(byLeap))
	a.arena.ensureLanes(workers)
	t.parallelSpans("overlap-scan", len(byLeap), workers, func(idx, lo0, hi0 int) {
		ls := a.arena.lane(idx)
		for li := lo0; li < hi0; li++ {
			parts := byLeap[li]
			ls.epoch++
			var found []pair
			for _, pi := range parts {
				for _, c := range v.Parts[pi].Chares {
					if ls.seenMark[c] == ls.epoch {
						// seenPart keeps the leap's first holder of c; a
						// part never lists a chare twice, so this is a
						// genuine cross-partition overlap.
						lo, hi := ls.seenPart[c], pi
						if lo > hi {
							lo, hi = hi, lo
						}
						key := int64(lo)<<32 | int64(uint32(hi))
						if _, dup := ls.dedup[key]; !dup {
							ls.dedup[key] = struct{}{}
							found = append(found, pair{lo, hi})
						}
					} else {
						ls.seenMark[c] = ls.epoch
						ls.seenPart[c] = pi
					}
				}
			}
			if found != nil {
				clear(ls.dedup)
			}
			perLeap[li] = found
		}
	})
	var overlaps []pair
	for _, found := range perLeap {
		overlaps = append(overlaps, found...)
	}
	if len(overlaps) == 0 {
		return 0, true
	}
	plan := a.set.NewMergePlan()
	for _, ov := range overlaps {
		p, q := &v.Parts[ov.p], &v.Parts[ov.q]
		if p.Runtime == q.Runtime && opt.InferDependencies {
			plan.Schedule(p.Atoms[0], q.Atoms[0])
			continue
		}
		first, second := ov.p, ov.q
		if partLater(tr, v, infos, ov.p, ov.q) {
			first, second = ov.q, ov.p
		}
		a.set.AddEdge(v.Parts[first].Atoms[0], v.Parts[second].Atoms[0])
	}
	return plan.Apply(), false
}

// partLater reports whether partition p starts later than q, comparing the
// physical time of initial sources on shared chares, falling back to shared
// processors, then to the overall earliest event (§3.1.4, "Enforcing DAG
// Properties"). The shared-key scans are merge-joins over the partitions'
// sorted chare rows and PE-sorted source rows.
func partLater(tr *trace.Trace, v *partition.View, info *partInfos, p, q int32) bool {
	// Shared chares: compare earliest initial events there.
	pc, qc := v.Parts[p].Chares, v.Parts[q].Chares
	pRow := info.initEvent[info.chareOff[p] : info.chareOff[p]+int32(len(pc))]
	qRow := info.initEvent[info.chareOff[q] : info.chareOff[q]+int32(len(qc))]
	bestP, bestQ := trace.Time(1<<62-1), trace.Time(1<<62-1)
	i, j := 0, 0
	for i < len(pc) && j < len(qc) {
		switch {
		case pc[i] == qc[j]:
			if ep, eq := pRow[i], qRow[j]; ep != trace.NoEvent && eq != trace.NoEvent {
				if t := tr.Events[ep].Time; t < bestP {
					bestP = t
				}
				if t := tr.Events[eq].Time; t < bestQ {
					bestQ = t
				}
			}
			i++
			j++
		case pc[i] < qc[j]:
			i++
		default:
			j++
		}
	}
	if bestP != bestQ {
		return bestP > bestQ
	}
	// Shared processors: compare earliest initial-source times.
	ps := info.src[info.chareOff[p]:info.srcEnd[p]]
	qs := info.src[info.chareOff[q]:info.srcEnd[q]]
	bestP, bestQ = 1<<62-1, 1<<62-1
	i, j = 0, 0
	for i < len(ps) && j < len(qs) {
		switch {
		case ps[i].pe == qs[j].pe:
			if ps[i].t < bestP {
				bestP = ps[i].t
			}
			if qs[j].t < bestQ {
				bestQ = qs[j].t
			}
			i++
			j++
		case ps[i].pe < qs[j].pe:
			i++
		default:
			j++
		}
	}
	if bestP != bestQ {
		return bestP > bestQ
	}
	if info.minTime[p] != info.minTime[q] {
		return info.minTime[p] > info.minTime[q]
	}
	return p > q
}

// enforceCharePaths is Algorithm 5 (DAG property 2): walking leaps from the
// last to the first, every partition whose direct successors do not span all
// of its chares gains happened-before edges to the partitions of the next
// leap containing the missing chares (Figure 6).
func enforceCharePaths(tr *trace.Trace, a *atoms) int {
	v := a.set.View()
	if !v.Acyclic() {
		a.set.CycleMerge()
		v = a.set.View()
	}
	byLeap := v.PartsAtLeap()
	ar := a.arena
	// lastLeap[c]: nearest later leap containing chare c, -1 for none.
	lastLeap := grow32(ar.lastLeap, ar.nChares)
	for i := range lastLeap {
		lastLeap[i] = -1
	}
	if len(ar.coveredMark) < ar.nChares {
		ar.coveredMark = make([]int32, ar.nChares)
		ar.wantMark = make([]int32, ar.nChares)
	}
	ar.lastLeap = lastLeap
	added := 0
	for k := int32(len(byLeap)) - 1; k >= 0; k-- {
		for _, pi := range byLeap[k] {
			p := &v.Parts[pi]
			// Chares covered by direct successors (epoch-marked set).
			ar.coveredEpoch++
			for _, succ := range v.G.Adj[pi] {
				for _, c := range v.Parts[succ].Chares {
					ar.coveredMark[c] = ar.coveredEpoch
				}
			}
			// Missing chares grouped by the next leap that contains them:
			// collected in p.Chares order, then index-sorted by (leap,
			// position) — the same per-leap chare lists and ascending leap
			// walk the sorted-keys map version produced.
			missC, missL := ar.missChare[:0], ar.missLeap[:0]
			for _, c := range p.Chares {
				if ar.coveredMark[c] == ar.coveredEpoch {
					continue
				}
				if l := lastLeap[c]; l >= 0 {
					missC = append(missC, c)
					missL = append(missL, l)
				}
				// No later leap contains c: property 2 already satisfied.
			}
			ord := ar.missOrd[:0]
			for i := range missC {
				ord = append(ord, int32(i))
			}
			slices.SortFunc(ord, func(x, y int32) int {
				if missL[x] != missL[y] {
					return int(missL[x]) - int(missL[y])
				}
				return int(x) - int(y)
			})
			ar.missChare, ar.missLeap, ar.missOrd = missC, missL, ord
			for i := 0; i < len(ord); {
				j := i
				l := missL[ord[i]]
				ar.wantEpoch++
				for j < len(ord) && missL[ord[j]] == l {
					ar.wantMark[missC[ord[j]]] = ar.wantEpoch
					j++
				}
				for _, qi := range byLeap[l] {
					q := &v.Parts[qi]
					hit := false
					for _, c := range q.Chares {
						if ar.wantMark[c] == ar.wantEpoch {
							hit = true
							ar.wantMark[c] = 0 // claimed by q
						}
					}
					if hit {
						a.set.AddEdge(p.Atoms[0], q.Atoms[0])
						added++
					}
				}
				i = j
			}
		}
		for _, pi := range byLeap[k] {
			for _, c := range v.Parts[pi].Chares {
				lastLeap[c] = k
			}
		}
	}
	return 0
}
