package trace

import (
	"strings"
	"testing"
)

// directly constructed traces exercising validateShape/validateSemantics
// error branches that the Builder cannot produce.
func TestValidateShapeErrors(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
		want string
	}{
		{
			"zero PEs",
			Trace{},
			"NumPE",
		},
		{
			"chare id out of order",
			Trace{NumPE: 1, Chares: []Chare{{ID: 5}}},
			"has ID",
		},
		{
			"chare home out of range",
			Trace{NumPE: 1, Chares: []Chare{{ID: 0, Home: 9}}},
			"out of range",
		},
		{
			"entry id out of order",
			Trace{NumPE: 1, Entries: []Entry{{ID: 3}}},
			"has ID",
		},
		{
			"block references unknown chare",
			Trace{NumPE: 1, Entries: []Entry{{ID: 0}},
				Blocks: []Block{{ID: 0, Chare: 7}}},
			"unknown chare",
		},
		{
			"block references unknown entry",
			Trace{NumPE: 1, Chares: []Chare{{ID: 0}},
				Blocks: []Block{{ID: 0, Chare: 0, Entry: 4}}},
			"unknown entry",
		},
		{
			"block pe out of range",
			Trace{NumPE: 1, Chares: []Chare{{ID: 0}}, Entries: []Entry{{ID: 0}},
				Blocks: []Block{{ID: 0, PE: 3}}},
			"out of range",
		},
		{
			"block ends before begin",
			Trace{NumPE: 1, Chares: []Chare{{ID: 0}}, Entries: []Entry{{ID: 0}},
				Blocks: []Block{{ID: 0, Begin: 10, End: 5}}},
			"before it begins",
		},
		{
			"event references unknown block",
			Trace{NumPE: 1, Chares: []Chare{{ID: 0}}, Entries: []Entry{{ID: 0}},
				Events: []Event{{ID: 0, Block: 9}}},
			"unknown block",
		},
		{
			"event id out of order",
			Trace{NumPE: 1, Chares: []Chare{{ID: 0}}, Entries: []Entry{{ID: 0}},
				Blocks: []Block{{ID: 0}},
				Events: []Event{{ID: 2, Block: 0}}},
			"has ID",
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			err := c.tr.Index()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Index err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestValidateSemanticsErrors(t *testing.T) {
	base := func() Trace {
		return Trace{
			NumPE:   1,
			Chares:  []Chare{{ID: 0}, {ID: 1}},
			Entries: []Entry{{ID: 0}},
		}
	}

	t.Run("event outside block span", func(t *testing.T) {
		tr := base()
		tr.Blocks = []Block{{ID: 0, Begin: 0, End: 10, Events: []EventID{0}}}
		tr.Events = []Event{{ID: 0, Kind: Send, Time: 50, Block: 0}}
		if err := tr.Index(); err == nil || !strings.Contains(err.Error(), "outside block") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("events not time ordered in block", func(t *testing.T) {
		tr := base()
		tr.Blocks = []Block{{ID: 0, Begin: 0, End: 10, Events: []EventID{0, 1}}}
		tr.Events = []Event{
			{ID: 0, Kind: Send, Time: 8, Block: 0, Msg: 1},
			{ID: 1, Kind: Send, Time: 2, Block: 0, Msg: 2},
		}
		if err := tr.Index(); err == nil || !strings.Contains(err.Error(), "not time-ordered") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("event listed in wrong block", func(t *testing.T) {
		tr := base()
		tr.Blocks = []Block{
			{ID: 0, Begin: 0, End: 10, Events: []EventID{0}},
			{ID: 1, Begin: 20, End: 30},
		}
		tr.Events = []Event{{ID: 0, Kind: Send, Time: 5, Block: 1}}
		if err := tr.Index(); err == nil || !strings.Contains(err.Error(), "records block") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("event chare differs from block chare", func(t *testing.T) {
		tr := base()
		tr.Blocks = []Block{{ID: 0, Chare: 0, Begin: 0, End: 10, Events: []EventID{0}}}
		tr.Events = []Event{{ID: 0, Kind: Send, Chare: 1, Time: 5, Block: 0}}
		if err := tr.Index(); err == nil || !strings.Contains(err.Error(), "differs from its block") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate send of one message", func(t *testing.T) {
		tr := base()
		tr.Blocks = []Block{{ID: 0, Begin: 0, End: 10, Events: []EventID{0, 1}}}
		tr.Events = []Event{
			{ID: 0, Kind: Send, Time: 1, Block: 0, Msg: 7},
			{ID: 1, Kind: Send, Time: 2, Block: 0, Msg: 7},
		}
		if err := tr.Index(); err == nil || !strings.Contains(err.Error(), "sent twice") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestIndexIdempotent(t *testing.T) {
	tr := tinyTrace(t)
	if err := tr.Index(); err != nil {
		t.Fatalf("re-Index: %v", err)
	}
	if tr.SendOf(0) == NoEvent {
		t.Fatal("index lost after re-Index")
	}
}

func TestBlocksOfPEOrdered(t *testing.T) {
	tr := tinyTrace(t)
	for pe := 0; pe < tr.NumPE; pe++ {
		ids := tr.BlocksOfPE(PE(pe))
		for i := 1; i < len(ids); i++ {
			if tr.Blocks[ids[i-1]].Begin > tr.Blocks[ids[i]].Begin {
				t.Fatal("BlocksOfPE not ordered")
			}
		}
	}
}

func TestEventKindString(t *testing.T) {
	if Send.String() != "send" || Recv.String() != "recv" {
		t.Fatal("kind strings wrong")
	}
	if s := EventKind(9).String(); !strings.Contains(s, "9") {
		t.Fatalf("unknown kind string %q", s)
	}
}

func TestIdleDuration(t *testing.T) {
	idle := Idle{PE: 0, Begin: 10, End: 35}
	if idle.Duration() != 25 {
		t.Fatal("idle duration wrong")
	}
	blk := Block{Begin: 5, End: 9}
	if blk.Duration() != 4 {
		t.Fatal("block duration wrong")
	}
}

func TestMustFinishPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder(1)
	e := b.AddEntry("work")
	c := b.AddChare("a", NoArray, -1, 0)
	b.BeginBlock(c, 0, e, 0) // left open
	_ = e
	b.MustFinish()
}

func TestEndBlockPanicsWithoutOpen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder(1)
	b.AddChare("a", NoArray, -1, 0)
	b.EndBlock(0, 5)
}

func TestEventWithoutOpenBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder(1)
	b.AddChare("a", NoArray, -1, 0)
	b.Send(0, 1, 5)
}
