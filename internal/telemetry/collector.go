package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// laneStride separates the thread-id ranges of concurrent runs: root span k
// gets Chrome-trace tid base k*laneStride, and its worker lanes occupy
// base+1..base+laneStride-1. A batch of concurrent extractions therefore
// renders as disjoint groups of timeline rows.
const laneStride = 1024

// Span is one recorded interval: a pipeline stage, an
// enforce-orderability round, a worker's chunk of a parallel sweep, or an
// ordered phase.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	// Start is the offset from the collector's epoch; Dur is negative while
	// the span is open.
	Start time.Duration
	Dur   time.Duration
	// TID is the Chrome-trace thread id: the root's lane base plus the
	// span's worker lane (spans without an explicit lane inherit the
	// parent's TID).
	TID   int64
	Attrs []Attr
}

// DefaultSpanLimit bounds a Collector's retained spans unless overridden:
// a long-lived charmd with -self-trace records spans for the life of the
// process, so an unbounded collector is a slow memory leak. A span is ~100
// bytes, so the default caps retention around 100 MiB.
const DefaultSpanLimit = 1 << 20

// Collector is the recording Recorder: it retains spans (with monotonic
// timestamps relative to its creation) for export as a Chrome trace-event
// file, up to a configurable cap — spans past the cap are dropped and
// counted, never retained. Safe for concurrent use.
type Collector struct {
	t0      time.Time
	limit   int
	dropped atomic.Int64
	mu      sync.Mutex
	spans   []Span
	roots   int64
}

// NewCollector returns a Collector whose epoch is now, capped at
// DefaultSpanLimit spans.
func NewCollector() *Collector { return NewCollectorLimit(DefaultSpanLimit) }

// NewCollectorLimit returns a Collector retaining at most limit spans
// (limit <= 0 means unbounded). Spans recorded past the cap return NoSpan
// and increment Dropped.
func NewCollectorLimit(limit int) *Collector {
	return &Collector{t0: time.Now(), limit: limit}
}

// Dropped reports how many spans the cap has discarded since creation (or
// the last Reset).
func (c *Collector) Dropped() int64 { return c.dropped.Load() }

// Len reports how many spans are currently retained.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// Reset discards every retained span, zeroes the dropped counter and
// rebases the epoch to now. In-flight spans started before the reset end as
// no-ops (their ids no longer resolve).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.roots = 0
	c.t0 = time.Now()
	c.mu.Unlock()
	c.dropped.Store(0)
}

// Enabled reports true: the collector records.
func (c *Collector) Enabled() bool { return true }

// StartSpan records a span opening. The reserved Lane attribute, if
// present, selects the worker lane; other attributes are retained verbatim.
// Past the span cap it records nothing and returns NoSpan.
func (c *Collector) StartSpan(name string, parent SpanID, attrs ...Attr) SpanID {
	lane := int64(-1)
	kept := attrs
	for i, a := range attrs {
		if a.Key == laneKey {
			lane = a.Int
			// attrs has a fresh backing array per variadic call site, so
			// dropping the lane in place is safe.
			kept = append(attrs[:i], attrs[i+1:]...)
			break
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit > 0 && len(c.spans) >= c.limit {
		c.dropped.Add(1)
		return NoSpan
	}
	start := time.Since(c.t0)
	var base int64
	switch {
	case parent >= 0 && int(parent) < len(c.spans):
		base = c.spans[parent].TID - c.spans[parent].TID%laneStride
	default:
		parent = NoSpan
		base = c.roots * laneStride
		c.roots++
	}
	tid := base
	switch {
	case lane >= 0:
		if lane >= laneStride {
			lane = laneStride - 1
		}
		tid = base + lane
	case parent != NoSpan:
		tid = c.spans[parent].TID
	}
	id := SpanID(len(c.spans))
	c.spans = append(c.spans, Span{
		ID: id, Parent: parent, Name: name,
		Start: start, Dur: -1, TID: tid, Attrs: kept,
	})
	return id
}

// EndSpan records a span closing. Unknown and NoSpan ids are ignored.
func (c *Collector) EndSpan(id SpanID) {
	c.mu.Lock()
	end := time.Since(c.t0)
	if id >= 0 && int(id) < len(c.spans) && c.spans[id].Dur < 0 {
		c.spans[id].Dur = end - c.spans[id].Start
	}
	c.mu.Unlock()
}

// Spans returns a copy of every recorded span. Spans still open are
// reported as ending now, so an export mid-run stays well-formed.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	now := time.Since(c.t0)
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	c.mu.Unlock()
	for i := range out {
		if out[i].Dur < 0 {
			out[i].Dur = now - out[i].Start
		}
	}
	return out
}
