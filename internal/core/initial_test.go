package core

import (
	"testing"

	"charmtrace/internal/trace"
)

// TestAbsorbRule: an entry method that occurs right before a when-triggered
// serial is absorbed into that serial's partition (§2.1), connecting blocks
// the trace records no message between.
func TestAbsorbRule(t *testing.T) {
	b := trace.NewBuilder(2)
	ePlain := b.AddEntry("deliver")                // non-SDAG entry
	eSerial := b.AddSDAGEntry("serial_1", 1, true) // follows a when
	src := b.AddChare("src", trace.NoArray, -1, 0)
	c := b.AddChare("c", trace.NoArray, -1, 1)

	m1, m2 := b.NewMsg(), b.NewMsg()
	b.BeginBlock(src, 0, ePlain, 0)
	b.Send(src, m1, 0)
	b.EndBlock(src, 1)
	// The plain entry delivers the when's dependency...
	b.BeginBlock(c, 1, ePlain, 100)
	b.Recv(c, m1, 100)
	b.EndBlock(c, 110)
	// ...and the generated serial runs right after it, sending onwards.
	b.BeginBlock(c, 1, eSerial, 110)
	b.Send(c, m2, 111)
	b.EndBlock(c, 120)
	b.BeginBlock(src, 0, ePlain, 300)
	b.Recv(src, m2, 300)
	b.EndBlock(src, 310)
	tr := b.MustFinish()

	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The absorb rule unions the deliver block with the serial block, so
	// the whole chain is one phase with monotone steps.
	if s.NumPhases() != 1 {
		t.Fatalf("phases = %d, want 1 (absorb rule should connect the chain)", s.NumPhases())
	}
	recvM1 := trace.EventID(1)
	sendM2 := trace.EventID(2)
	if s.Step[sendM2] <= s.Step[recvM1] {
		t.Fatalf("serial's send at step %d not after absorbed recv at step %d",
			s.Step[sendM2], s.Step[recvM1])
	}
}

// TestBroadcastSpanningChares: one send with many receives (a broadcast)
// merges all receivers into the sender's phase, and every receive lands at
// least one step after the send.
func TestBroadcastSpanningChares(t *testing.T) {
	b := trace.NewBuilder(4)
	e := b.AddEntry("work")
	root := b.AddChare("root", trace.NoArray, -1, 0)
	var kids []trace.ChareID
	for i := 0; i < 6; i++ {
		kids = append(kids, b.AddChare("kid", 0, i, trace.PE(i%4)))
	}
	m := b.NewMsg()
	b.BeginBlock(root, 0, e, 0)
	b.Send(root, m, 0)
	b.EndBlock(root, 1)
	for i, k := range kids {
		begin := trace.Time(100 + 50*i)
		b.BeginBlock(k, trace.PE(i%4), e, begin)
		b.Recv(k, m, begin)
		b.EndBlock(k, begin+10)
	}
	tr := b.MustFinish()
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() != 1 {
		t.Fatalf("phases = %d, want 1", s.NumPhases())
	}
	send := trace.EventID(0)
	for _, r := range tr.RecvsOf(m) {
		if s.Step[r] != s.Step[send]+1 {
			t.Fatalf("broadcast recv %d at step %d, want %d", r, s.Step[r], s.Step[send]+1)
		}
	}
}

// TestZeroDurationBlocks: blocks and events at identical timestamps must
// not break ordering or validation.
func TestZeroDurationBlocks(t *testing.T) {
	b := trace.NewBuilder(1)
	e := b.AddEntry("tick")
	c0 := b.AddChare("a", trace.NoArray, -1, 0)
	c1 := b.AddChare("b", trace.NoArray, -1, 0)
	m := b.NewMsg()
	b.BeginBlock(c0, 0, e, 5)
	b.Send(c0, m, 5)
	b.EndBlock(c0, 5)
	b.BeginBlock(c1, 0, e, 5)
	b.Recv(c1, m, 5)
	b.EndBlock(c1, 5)
	tr := b.MustFinish()
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Step[1] != s.Step[0]+1 {
		t.Fatalf("equal-time recv stepped at %d, want send+1", s.Step[1])
	}
}

// TestSelfMessage: a chare invoking itself gets its receive one step after
// its send within the same phase.
func TestSelfMessage(t *testing.T) {
	b := trace.NewBuilder(1)
	e := b.AddEntry("self")
	c := b.AddChare("a", trace.NoArray, -1, 0)
	m := b.NewMsg()
	b.BeginBlock(c, 0, e, 0)
	b.Send(c, m, 1)
	b.EndBlock(c, 2)
	b.BeginBlock(c, 0, e, 10)
	b.Recv(c, m, 10)
	b.EndBlock(c, 11)
	tr := b.MustFinish()
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if s.NumPhases() != 1 || s.Step[1] != s.Step[0]+1 {
		t.Fatalf("self-message structure wrong: phases=%d steps=%d,%d",
			s.NumPhases(), s.Step[0], s.Step[1])
	}
}
