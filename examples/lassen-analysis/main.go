// lassen-analysis walks through the Section 6.2 performance study on the
// LASSEN wavefront proxy: the logical structure makes it easy to see that
// the same chare carries the high differential duration every iteration
// (Figure 21), that the wavefront spreads to more chares over time
// (Figure 23), and that the finer 64-chare decomposition cuts the peak
// differential duration to roughly a quarter and spreads the load more
// equitably (Figure 22).
package main

import (
	"fmt"
	"log"

	"charmtrace"
)

func analyze(name string, cfg charmtrace.LassenConfig) (*charmtrace.MetricsReport, *charmtrace.Structure) {
	tr, err := charmtrace.LassenCharmTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s, err := charmtrace.Extract(tr, charmtrace.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	r := charmtrace.ComputeMetrics(s)
	max, at := r.MaxDifferentialDuration()
	fmt.Printf("== %s ==\n", name)
	fmt.Printf("phases: %d, steps: 0..%d\n", s.NumPhases(), s.MaxStep())
	fmt.Printf("max differential duration: %d ns at chare %s (step %d)\n",
		max, tr.Chares[tr.Events[at].Chare].Name, s.Step[at])
	fmt.Printf("total imbalance: %d ns\n\n", r.TotalImbalance())
	return r, s
}

func main() {
	coarseCfg := charmtrace.DefaultLassenConfig()
	coarseCfg.Iterations = 16
	fineCfg := charmtrace.FineLassenConfig()
	fineCfg.Iterations = 16

	coarse, sc := analyze("LASSEN, 8 chares on 8 PEs", coarseCfg)
	fine, _ := analyze("LASSEN, 64 chares on 8 PEs", fineCfg)

	maxC, _ := coarse.MaxDifferentialDuration()
	maxF, _ := fine.MaxDifferentialDuration()
	fmt.Printf("peak differential duration ratio (8-chare / 64-chare): %.1fx (paper: ~4x)\n",
		float64(maxC)/float64(maxF))
	fmt.Printf("total imbalance ratio: %.2fx — the finer decomposition spreads the front\n\n",
		float64(coarse.TotalImbalance())/float64(fine.TotalImbalance()))

	// The repeated pattern of Figure 21: shade the 8-chare logical
	// structure by differential duration. The same chare lights up in every
	// early iteration.
	fmt.Println("== 8-chare logical structure shaded by differential duration ==")
	fmt.Print(charmtrace.RenderLogicalMetric(sc, coarse.DifferentialDuration))
}
