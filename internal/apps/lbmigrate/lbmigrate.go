// Package lbmigrate is a load-balancing scenario: a 1D stencil whose chares
// carry deliberately imbalanced compute costs, run a load-balancing step
// mid-run (a load reduction whose broadcast callback triggers migrations),
// and continue iterating from their new processors. Charm++ migrates chares
// between entry-method executions and reroutes in-flight messages; the
// logical structure is keyed by chares, so the recovered structure must be
// invariant to the migration even though every physical timeline after the
// LB step changes.
package lbmigrate

import (
	"charmtrace/internal/sim"
	"charmtrace/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// Chares is the number of stencil chares.
	Chares int
	// NumPE is the processor count.
	NumPE int
	// Iterations is the number of stencil iterations.
	Iterations int
	// MigrateAt is the iteration before which the LB step runs (chares
	// migrate between iteration MigrateAt-1 and MigrateAt).
	MigrateAt int
	// Compute is the base per-iteration compute time; chare i costs
	// Compute*(1+i%3), the imbalance the LB step reacts to.
	Compute sim.Time
	// Seed feeds the network jitter.
	Seed int64
	// TraceReductions toggles the §5 tracing additions.
	TraceReductions bool
	// DisableLB skips both the LB reduction and the migrations, keeping the
	// iteration structure otherwise identical (the migration-invariance
	// baseline).
	DisableLB bool
}

// DefaultConfig is an 8-chare run on 4 processors with the LB step after
// the second iteration.
func DefaultConfig() Config {
	return Config{
		Chares: 8, NumPE: 4, Iterations: 5, MigrateAt: 2,
		Compute: 400, Seed: 1, TraceReductions: true,
	}
}

// state is per-chare simulation state.
type state struct {
	iter   int
	ghosts int
}

// Trace runs the scenario and returns its event trace.
func Trace(cfg Config) (*trace.Trace, error) {
	n := cfg.Chares
	simCfg := sim.DefaultConfig(cfg.NumPE)
	simCfg.Seed = cfg.Seed
	simCfg.TraceReductions = cfg.TraceReductions
	rt := sim.New(simCfg)

	arr := rt.NewArray("lbmig", n, nil, func(i int) any { return &state{} })
	neighbors := func(i int) []int {
		var out []int
		if i > 0 {
			out = append(out, i-1)
		}
		if i < n-1 {
			out = append(out, i+1)
		}
		return out
	}
	load := func(i int) sim.Time { return cfg.Compute * sim.Time(1+i%3) }

	var ghost, resume, lbResume sim.EntryRef
	var red, lbRed *sim.Reduction

	sendHalos := func(ctx *sim.Ctx) {
		for _, nb := range neighbors(ctx.Index()) {
			ctx.Send(arr.At(nb), ghost, ctx.Index())
		}
	}

	// the SDAG iteration body sending halo exchanges.
	begin := arr.RegisterSDAG("serial_0", 0, false, func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(20)
		sendHalos(ctx)
	})
	// the when-clause serial receiving ghosts; computes the imbalanced load
	// and contributes it to the per-iteration Sum reduction.
	ghost = arr.RegisterSDAG("ghost", 2, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.ghosts++
		if st.ghosts < len(neighbors(ctx.Index())) {
			ctx.Compute(5)
			return
		}
		st.ghosts = 0
		ctx.Compute(load(ctx.Index()))
		ctx.Contribute(red, float64(load(ctx.Index())))
	})
	// the serial triggered by the reduction broadcast: before iteration
	// MigrateAt it detours through the LB step instead of iterating.
	resume = arr.RegisterSDAG("resume", 4, false, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.iter++
		if st.iter >= cfg.Iterations {
			return
		}
		if st.iter == cfg.MigrateAt && !cfg.DisableLB {
			ctx.Compute(10)
			ctx.Contribute(lbRed, float64(load(ctx.Index())))
			return
		}
		ctx.Compute(20)
		sendHalos(ctx)
	})
	// the LB decision broadcast: every third chare moves to the next
	// processor (a deterministic stand-in for a greedy rebalancer), then the
	// interrupted iteration resumes from the new placement.
	lbResume = arr.RegisterSDAG("lbResume", 6, false, func(ctx *sim.Ctx, m sim.Message) {
		if ctx.Index()%3 == 1 {
			ctx.Migrate((ctx.PE() + 1) % cfg.NumPE)
		}
		ctx.Compute(20)
		sendHalos(ctx)
	})
	red = rt.NewReduction(arr, sim.Sum, sim.BroadcastCallback(resume))
	lbRed = rt.NewReduction(arr, sim.Sum, sim.BroadcastCallback(lbResume))

	for i := 0; i < n; i++ {
		rt.Spawn(arr.At(i), begin, nil)
	}
	return rt.Run()
}

// MustTrace is Trace that panics on error.
func MustTrace(cfg Config) *trace.Trace {
	t, err := Trace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
