package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lassen"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func encodeToBytes(t *testing.T, s *core.Structure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.EncodeStructure(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStructureCodecRoundTrip: encoding is canonical across parallelism and
// decoding reproduces every field the serving layer reads.
func TestStructureCodecRoundTrip(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Parallelism = 1
	seq, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 4
	par, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeToBytes(t, seq)
	if !bytes.Equal(enc, encodeToBytes(t, par)) {
		t.Fatal("encoded structure differs between Parallelism 1 and 4")
	}

	dec, fp, err := core.DecodeStructure(bytes.NewReader(enc), tr)
	if err != nil {
		t.Fatal(err)
	}
	if want := opt.Fingerprint(); fp != want {
		t.Errorf("decoded fingerprint %q, want %q", fp, want)
	}
	if !reflect.DeepEqual(dec.Phases, seq.Phases) {
		t.Error("phases differ after round trip")
	}
	if !reflect.DeepEqual(dec.DAG.Adj, seq.DAG.Adj) {
		t.Error("DAG differs after round trip")
	}
	for name, pair := range map[string][2][]int32{
		"PhaseOf":   {dec.PhaseOf, seq.PhaseOf},
		"LocalStep": {dec.LocalStep, seq.LocalStep},
		"Step":      {dec.Step, seq.Step},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Errorf("%s differs after round trip", name)
		}
	}
	for c := range tr.Chares {
		if !reflect.DeepEqual(dec.EventsOfChare(trace.ChareID(c)), seq.EventsOfChare(trace.ChareID(c))) {
			t.Errorf("chare %d timeline differs after round trip", c)
		}
	}
	if err := dec.Validate(); err != nil {
		t.Errorf("decoded structure fails validation: %v", err)
	}
	// Decoding is deterministic end to end: re-encoding behaves identically
	// when driven through a second fresh extraction.
	if !bytes.Equal(enc, encodeToBytes(t, seq)) {
		t.Error("encoding is not deterministic across calls")
	}
}

// TestStructureSummaryMatchesFullDecode: the streaming summary decode
// reports exactly what the full decode (and a fresh extraction) would for
// every field the /structure response renders — the invariant that lets
// charmd serve the phase table from disk without reconstructing per-event
// arrays.
func TestStructureSummaryMatchesFullDecode(t *testing.T) {
	for _, w := range []struct {
		name string
		gen  func() (*trace.Trace, error)
		opt  core.Options
	}{
		{"jacobi", func() (*trace.Trace, error) { return jacobi.Trace(jacobi.DefaultConfig()) }, core.DefaultOptions()},
		{"lassen", func() (*trace.Trace, error) { return lassen.CharmTrace(lassen.DefaultConfig()) }, core.DefaultOptions()},
	} {
		t.Run(w.name, func(t *testing.T) {
			tr, err := w.gen()
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Index(); err != nil {
				t.Fatal(err)
			}
			s, err := core.Extract(tr, w.opt)
			if err != nil {
				t.Fatal(err)
			}
			enc := encodeToBytes(t, s)
			sum, err := core.DecodeStructureSummary(bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			if sum.Fingerprint != w.opt.Fingerprint() {
				t.Errorf("summary fingerprint %q, want %q", sum.Fingerprint, w.opt.Fingerprint())
			}
			if sum.NumEvents != len(tr.Events) || sum.NumChares != len(tr.Chares) {
				t.Errorf("summary counts %d events/%d chares, want %d/%d",
					sum.NumEvents, sum.NumChares, len(tr.Events), len(tr.Chares))
			}
			if len(sum.Phases) != s.NumPhases() {
				t.Fatalf("summary has %d phases, want %d", len(sum.Phases), s.NumPhases())
			}
			for i := range sum.Phases {
				ps, p := sum.Phases[i], &s.Phases[i]
				want := core.PhaseSummary{
					Runtime: p.Runtime, Chares: len(p.Chares), Events: len(p.Events),
					MaxLocalStep: p.MaxLocalStep, Offset: p.Offset, Leap: p.Leap,
				}
				if ps != want {
					t.Errorf("phase %d summary %+v, want %+v", i, ps, want)
				}
			}
			if sum.DAGEdges != s.DAG.NumEdges() {
				t.Errorf("summary DAG edges %d, want %d", sum.DAGEdges, s.DAG.NumEdges())
			}
			if sum.MaxStep != s.MaxStep() {
				t.Errorf("summary max step %d, want %d", sum.MaxStep, s.MaxStep())
			}
		})
	}
}

// TestStructureSummaryErrors: the summary decode rejects what the full
// decode would.
func TestStructureSummaryErrors(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeToBytes(t, s)
	if _, err := core.DecodeStructureSummary(bytes.NewReader(enc[:16])); err == nil {
		t.Error("truncated header summarized without error")
	}
	if _, err := core.DecodeStructureSummary(bytes.NewReader([]byte("XXXXjunk"))); err == nil {
		t.Error("bad magic summarized without error")
	}
}

// TestStructureDecodeErrors: corruption and trace mismatches are rejected,
// never silently accepted.
func TestStructureDecodeErrors(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeToBytes(t, s)

	if _, _, err := core.DecodeStructure(bytes.NewReader(enc[:len(enc)/2]), tr); err == nil {
		t.Error("truncated structure decoded without error")
	}
	if _, _, err := core.DecodeStructure(bytes.NewReader([]byte("CSTRjunk")), tr); err == nil {
		t.Error("garbage body decoded without error")
	}
	bad := append([]byte("XXXX"), enc[4:]...)
	if _, _, err := core.DecodeStructure(bytes.NewReader(bad), tr); err == nil {
		t.Error("bad magic decoded without error")
	}
	other, err := lassen.CharmTrace(lassen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Index(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.DecodeStructure(bytes.NewReader(enc), other); err == nil {
		t.Error("structure decoded against a mismatched trace")
	}
}
