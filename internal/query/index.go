package query

import (
	"sort"

	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
	"charmtrace/internal/trace"
)

// metric identifies one per-event §4 metric column. The order is the
// canonical column order for rollups and metrics rows.
type metric int

const (
	mSubDur metric = iota
	mIdle
	mDiff
	mImbalance
	numMetrics
)

// metricNames are the JSON column names, indexed by metric.
var metricNames = [numMetrics]string{
	"sub_dur",
	"idle_experienced",
	"differential_duration",
	"imbalance",
}

// Rollup aggregates the §4 metrics over one group (a phase or a chare).
type Rollup struct {
	Events int64
	Sum    [numMetrics]int64
	Max    [numMetrics]int64
}

func (r *Rollup) observe(vals [numMetrics]trace.Time) {
	r.Events++
	for m, v := range vals {
		r.Sum[m] += int64(v)
		if int64(v) > r.Max[m] {
			r.Max[m] = int64(v)
		}
	}
}

// Index is the one-time per-structure acceleration structure every query
// executes against. It is immutable once built and safe for concurrent
// readers; resultcache caches it alongside the decoded structure so repeat
// queries never rescan the trace.
type Index struct {
	S *core.Structure
	// Report holds the §4 per-event metrics, computed once.
	Report *metrics.Report
	// PhaseOrder lists phase indices sorted by (first global step, ID) —
	// the stable row order of select=structure.
	PhaseOrder []int32
	// EventRows lists every dependency event sorted by (global step,
	// chare, event ID) — the stable row order of select=steps and
	// ungrouped select=metrics. Step-range filters binary-search it.
	EventRows []trace.EventID
	// ChareEvents lists each chare's events in EventRows order, so
	// chare-filtered queries touch only the chares they select.
	ChareEvents [][]trace.EventID
	// PhaseRollup and ChareRollup pre-aggregate the metrics per phase and
	// per chare, serving unfiltered group-by queries in O(groups).
	PhaseRollup []Rollup
	ChareRollup []Rollup

	bytes int64
}

// BuildIndex constructs the index for a structure. Cost is one
// metrics.Compute pass plus an O(E log E) sort; Bytes reports the resident
// estimate for cache memory accounting.
func BuildIndex(s *core.Structure) *Index {
	tr := s.Trace
	idx := &Index{
		S:           s,
		Report:      metrics.Compute(s),
		PhaseOrder:  make([]int32, len(s.Phases)),
		EventRows:   make([]trace.EventID, len(tr.Events)),
		ChareEvents: make([][]trace.EventID, len(tr.Chares)),
		PhaseRollup: make([]Rollup, len(s.Phases)),
		ChareRollup: make([]Rollup, len(tr.Chares)),
	}
	for i := range idx.PhaseOrder {
		idx.PhaseOrder[i] = int32(i)
	}
	sort.SliceStable(idx.PhaseOrder, func(i, j int) bool {
		a, b := &s.Phases[idx.PhaseOrder[i]], &s.Phases[idx.PhaseOrder[j]]
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return a.ID < b.ID
	})
	for e := range tr.Events {
		idx.EventRows[e] = trace.EventID(e)
	}
	sort.Slice(idx.EventRows, func(i, j int) bool {
		a, b := idx.EventRows[i], idx.EventRows[j]
		if s.Step[a] != s.Step[b] {
			return s.Step[a] < s.Step[b]
		}
		if tr.Events[a].Chare != tr.Events[b].Chare {
			return tr.Events[a].Chare < tr.Events[b].Chare
		}
		return a < b
	})
	perChare := make([]int, len(tr.Chares))
	for _, e := range idx.EventRows {
		perChare[tr.Events[e].Chare]++
	}
	for c, n := range perChare {
		idx.ChareEvents[c] = make([]trace.EventID, 0, n)
	}
	for _, e := range idx.EventRows {
		ev := &tr.Events[e]
		idx.ChareEvents[ev.Chare] = append(idx.ChareEvents[ev.Chare], e)
		vals := idx.metricsOf(e)
		if p := s.PhaseOf[e]; p >= 0 {
			idx.PhaseRollup[p].observe(vals)
		}
		idx.ChareRollup[ev.Chare].observe(vals)
	}

	const idSize = 4
	idx.bytes = int64(len(idx.EventRows))*idSize*2 + // EventRows + ChareEvents
		int64(len(idx.PhaseOrder))*idSize +
		int64(len(idx.PhaseRollup)+len(idx.ChareRollup))*int64(8*(1+2*int(numMetrics))) +
		int64(len(tr.Events))*8*4 // Report per-event slices
	return idx
}

// metricsOf gathers an event's metric column values.
func (x *Index) metricsOf(e trace.EventID) [numMetrics]trace.Time {
	return [numMetrics]trace.Time{
		mSubDur:    x.Report.SubDur[e],
		mIdle:      x.Report.IdleExperienced[e],
		mDiff:      x.Report.DifferentialDuration[e],
		mImbalance: x.Report.Imbalance[e],
	}
}

// Bytes estimates the index's resident size beyond the structure itself,
// for cache memory accounting.
func (x *Index) Bytes() int64 { return x.bytes }

// stepWindow returns the half-open range [lo, hi) of EventRows whose
// global step lies in the inclusive [from, to] window — the binary search
// that makes step slicing independent of trace size.
func (x *Index) stepWindow(from, to int32) (int, int) {
	lo := sort.Search(len(x.EventRows), func(i int) bool {
		return x.S.Step[x.EventRows[i]] >= from
	})
	hi := sort.Search(len(x.EventRows), func(i int) bool {
		return x.S.Step[x.EventRows[i]] > to
	})
	return lo, hi
}

// chareStepWindow is stepWindow over one chare's event list.
func (x *Index) chareStepWindow(c trace.ChareID, from, to int32) (int, int) {
	rows := x.ChareEvents[c]
	lo := sort.Search(len(rows), func(i int) bool { return x.S.Step[rows[i]] >= from })
	hi := sort.Search(len(rows), func(i int) bool { return x.S.Step[rows[i]] > to })
	return lo, hi
}
