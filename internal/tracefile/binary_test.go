package tracefile

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lulesh"
)

func TestBinaryRoundTrip(t *testing.T) {
	orig := jacobi.MustTrace(jacobi.DefaultConfig())
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got.Entries, orig.Entries) ||
		!reflect.DeepEqual(got.Chares, orig.Chares) ||
		!reflect.DeepEqual(got.Blocks, orig.Blocks) ||
		!reflect.DeepEqual(got.Events, orig.Events) ||
		!reflect.DeepEqual(got.Idles, orig.Idles) ||
		got.NumPE != orig.NumPE {
		t.Fatal("binary round trip changed the trace")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	orig := lulesh.MustCharmTrace(lulesh.DefaultConfig())
	var text, bin bytes.Buffer
	if err := Write(&text, orig); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, orig); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len() {
		t.Fatalf("binary %d bytes not smaller than text %d", bin.Len(), text.Len())
	}
}

func TestReadAutoDetects(t *testing.T) {
	orig := jacobi.MustTrace(jacobi.DefaultConfig())
	var text, bin bytes.Buffer
	if err := Write(&text, orig); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, orig); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"text": &text, "binary": &bin} {
		got, err := ReadAuto(buf)
		if err != nil {
			t.Fatalf("%s: ReadAuto: %v", name, err)
		}
		if len(got.Events) != len(orig.Events) {
			t.Fatalf("%s: events = %d, want %d", name, len(got.Events), len(orig.Events))
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"CTR",                      // short magic
		"XXXX\x01\x00\x00\x00",     // wrong magic
		"CTRB\x09\x00\x00\x00",     // future version
		"CTRB\x01\x00\x00\x00\x01", // truncated body
	}
	for _, c := range cases {
		if _, err := ReadBinary(strings.NewReader(c)); err == nil {
			t.Fatalf("garbage accepted: %q", c)
		}
	}
}

func TestBinaryRejectsBadEventKind(t *testing.T) {
	var buf bytes.Buffer
	b := &bwriter{w: newTestBufWriter(&buf)}
	buf.Write(binaryMagic[:])
	b.u32(binaryVersion)
	b.u32(1) // numPE
	b.u32(1) // entries
	b.i32(-1)
	b.bool(false)
	b.str("e")
	b.u32(1) // chares
	b.i32(-1)
	b.i32(-1)
	b.bool(false)
	b.i32(0)
	b.str("c")
	b.u32(1) // blocks
	b.i32(0)
	b.i32(0)
	b.i32(0)
	b.i64(0)
	b.i64(10)
	b.u32(1) // events
	b.u8(99) // invalid kind
	b.i64(5)
	b.i32(0)
	b.i32(0)
	b.i64(0)
	b.i32(0)
	b.u32(0) // idles
	if b.err != nil {
		t.Fatal(b.err)
	}
	if err := b.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("corrupt event kind accepted")
	}
}

// newTestBufWriter adapts a bytes.Buffer for the internal bwriter.
func newTestBufWriter(buf *bytes.Buffer) *bufio.Writer { return bufio.NewWriter(buf) }
