package trace

import (
	"errors"
	"fmt"
	"sort"
)

// Trace is a complete recorded execution. Slices are indexed by the
// corresponding ID types; Events, Blocks, Chares and Entries must therefore
// be dense with IDs equal to positions. Call Index after construction (or
// use a Builder, which does so) to populate the lookup structures and
// validate the trace.
type Trace struct {
	NumPE   int
	Chares  []Chare
	Entries []Entry
	Blocks  []Block
	Events  []Event
	Idles   []Idle

	indexed bool
	// sendOf maps a message to its send event.
	sendOf map[MsgID]EventID
	// recvsOf maps a message to its receive events (one for point-to-point,
	// several for broadcasts).
	recvsOf map[MsgID][]EventID
	// matchSend[e] is the send event of receive e's message (NoEvent for
	// non-receives and unmatched receives): the O(1) dense form of
	// SendOf(Events[e].Msg), for the extraction hot path where the map
	// lookup dominates.
	matchSend []EventID
	// blocksByChare lists each chare's blocks in begin-time order.
	blocksByChare [][]BlockID
	// blocksByPE lists each processor's blocks in begin-time order.
	blocksByPE [][]BlockID
}

// Index builds the message and per-chare/per-PE lookup structures and
// validates structural invariants. It is idempotent.
func (t *Trace) Index() error {
	if err := t.validateShape(); err != nil {
		return err
	}
	t.sendOf = make(map[MsgID]EventID)
	t.recvsOf = make(map[MsgID][]EventID)
	for _, ev := range t.Events {
		if ev.Msg == NoMsg {
			continue
		}
		switch ev.Kind {
		case Send:
			if prev, dup := t.sendOf[ev.Msg]; dup {
				return fmt.Errorf("trace: message %d sent twice (events %d and %d)", ev.Msg, prev, ev.ID)
			}
			t.sendOf[ev.Msg] = ev.ID
		case Recv:
			t.recvsOf[ev.Msg] = append(t.recvsOf[ev.Msg], ev.ID)
		}
	}
	t.matchSend = make([]EventID, len(t.Events))
	for i := range t.Events {
		t.matchSend[i] = NoEvent
		if ev := &t.Events[i]; ev.Kind == Recv && ev.Msg != NoMsg {
			if id, ok := t.sendOf[ev.Msg]; ok {
				t.matchSend[i] = id
			}
		}
	}
	t.blocksByChare = make([][]BlockID, len(t.Chares))
	t.blocksByPE = make([][]BlockID, t.NumPE)
	for _, b := range t.Blocks {
		t.blocksByChare[b.Chare] = append(t.blocksByChare[b.Chare], b.ID)
		t.blocksByPE[b.PE] = append(t.blocksByPE[b.PE], b.ID)
	}
	byBegin := func(ids []BlockID) {
		sort.Slice(ids, func(i, j int) bool {
			bi, bj := &t.Blocks[ids[i]], &t.Blocks[ids[j]]
			if bi.Begin != bj.Begin {
				return bi.Begin < bj.Begin
			}
			return ids[i] < ids[j]
		})
	}
	for _, ids := range t.blocksByChare {
		byBegin(ids)
	}
	for _, ids := range t.blocksByPE {
		byBegin(ids)
	}
	t.indexed = true
	return t.validateSemantics()
}

// validateShape checks that IDs are dense and references are in range.
func (t *Trace) validateShape() error {
	if t.NumPE <= 0 {
		return errors.New("trace: NumPE must be positive")
	}
	for i, c := range t.Chares {
		if int(c.ID) != i {
			return fmt.Errorf("trace: chare at position %d has ID %d", i, c.ID)
		}
		if c.Home < 0 || int(c.Home) >= t.NumPE {
			return fmt.Errorf("trace: chare %d home PE %d out of range", c.ID, c.Home)
		}
	}
	for i, e := range t.Entries {
		if int(e.ID) != i {
			return fmt.Errorf("trace: entry at position %d has ID %d", i, e.ID)
		}
	}
	for i, b := range t.Blocks {
		if int(b.ID) != i {
			return fmt.Errorf("trace: block at position %d has ID %d", i, b.ID)
		}
		if b.Chare < 0 || int(b.Chare) >= len(t.Chares) {
			return fmt.Errorf("trace: block %d references unknown chare %d", b.ID, b.Chare)
		}
		if b.Entry < 0 || int(b.Entry) >= len(t.Entries) {
			return fmt.Errorf("trace: block %d references unknown entry %d", b.ID, b.Entry)
		}
		if b.PE < 0 || int(b.PE) >= t.NumPE {
			return fmt.Errorf("trace: block %d PE %d out of range", b.ID, b.PE)
		}
		if b.End < b.Begin {
			return fmt.Errorf("trace: block %d ends (%d) before it begins (%d)", b.ID, b.End, b.Begin)
		}
	}
	for i, ev := range t.Events {
		if int(ev.ID) != i {
			return fmt.Errorf("trace: event at position %d has ID %d", i, ev.ID)
		}
		if ev.Block < 0 || int(ev.Block) >= len(t.Blocks) {
			return fmt.Errorf("trace: event %d references unknown block %d", ev.ID, ev.Block)
		}
		if ev.Chare < 0 || int(ev.Chare) >= len(t.Chares) {
			return fmt.Errorf("trace: event %d references unknown chare %d", ev.ID, ev.Chare)
		}
	}
	return nil
}

// validateSemantics checks cross-structure invariants that need the index.
func (t *Trace) validateSemantics() error {
	for _, b := range t.Blocks {
		var prev Time = -1 << 62
		for _, eid := range b.Events {
			if eid < 0 || int(eid) >= len(t.Events) {
				return fmt.Errorf("trace: block %d lists unknown event %d", b.ID, eid)
			}
			ev := &t.Events[eid]
			if ev.Block != b.ID {
				return fmt.Errorf("trace: event %d listed in block %d but records block %d", eid, b.ID, ev.Block)
			}
			if ev.Chare != b.Chare {
				return fmt.Errorf("trace: event %d chare %d differs from its block's chare %d", eid, ev.Chare, b.Chare)
			}
			if ev.Time < b.Begin || ev.Time > b.End {
				return fmt.Errorf("trace: event %d at time %d outside block %d span [%d,%d]", eid, ev.Time, b.ID, b.Begin, b.End)
			}
			if ev.Time < prev {
				return fmt.Errorf("trace: events of block %d are not time-ordered", b.ID)
			}
			prev = ev.Time
		}
	}
	for msg, recvs := range t.recvsOf {
		if _, ok := t.sendOf[msg]; !ok {
			return fmt.Errorf("trace: message %d received (event %d) but never sent", msg, recvs[0])
		}
	}
	for pe, ids := range t.blocksByPE {
		var prevEnd Time = -1 << 62
		for _, id := range ids {
			b := &t.Blocks[id]
			if b.Begin < prevEnd {
				return fmt.Errorf("trace: blocks overlap on PE %d (block %d begins at %d before previous end %d)", pe, id, b.Begin, prevEnd)
			}
			prevEnd = b.End
		}
	}
	return nil
}

// Indexed reports whether Index has completed successfully.
func (t *Trace) Indexed() bool { return t.indexed }

// SendOf returns the send event of a message, or NoEvent if the send was not
// recorded.
func (t *Trace) SendOf(m MsgID) EventID {
	if id, ok := t.sendOf[m]; ok {
		return id
	}
	return NoEvent
}

// MatchingSend returns the send event of receive e's message, or NoEvent
// when e is not a receive or its send was not recorded. It is equivalent to
// SendOf(Events[e].Msg) but a dense array read instead of a map lookup.
func (t *Trace) MatchingSend(e EventID) EventID { return t.matchSend[e] }

// RecvsOf returns the receive events of a message (nil if none recorded).
// The returned slice must not be modified.
func (t *Trace) RecvsOf(m MsgID) []EventID { return t.recvsOf[m] }

// BlocksOfChare returns a chare's serial blocks in begin-time order.
// The returned slice must not be modified.
func (t *Trace) BlocksOfChare(c ChareID) []BlockID { return t.blocksByChare[c] }

// BlocksOfPE returns a processor's serial blocks in begin-time order.
// The returned slice must not be modified.
func (t *Trace) BlocksOfPE(pe PE) []BlockID { return t.blocksByPE[pe] }

// IsRuntimeChare reports whether a chare belongs to the runtime system.
func (t *Trace) IsRuntimeChare(c ChareID) bool { return t.Chares[c].Runtime }

// Span returns the earliest block begin and the latest block end in the
// trace, or (0, 0) for an empty trace.
func (t *Trace) Span() (Time, Time) {
	if len(t.Blocks) == 0 {
		return 0, 0
	}
	lo, hi := t.Blocks[0].Begin, t.Blocks[0].End
	for _, b := range t.Blocks[1:] {
		if b.Begin < lo {
			lo = b.Begin
		}
		if b.End > hi {
			hi = b.End
		}
	}
	return lo, hi
}

// CountKind returns the number of events of the given kind.
func (t *Trace) CountKind(k EventKind) int {
	n := 0
	for _, ev := range t.Events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// ApplicationChares returns the IDs of all non-runtime chares.
func (t *Trace) ApplicationChares() []ChareID {
	var out []ChareID
	for _, c := range t.Chares {
		if !c.Runtime {
			out = append(out, c.ID)
		}
	}
	return out
}

// IdleBefore returns the idle span on pe that ends exactly at time tm, or a
// zero Idle and false if there is none. Simulators record an idle record
// whenever a PE's scheduler had an empty queue.
func (t *Trace) IdleBefore(pe PE, tm Time) (Idle, bool) {
	for _, idle := range t.Idles {
		if idle.PE == pe && idle.End == tm {
			return idle, true
		}
	}
	return Idle{}, false
}
