package resultcache

import (
	"context"
	"sync"
	"testing"

	"charmtrace/internal/core"
)

// countingIndex is a Config.Index builder that counts constructions and
// tags each index with the structure it was built from.
type countingIndex struct {
	mu     sync.Mutex
	builds int
}

type fakeIndex struct{ s *core.Structure }

func (ci *countingIndex) build(s *core.Structure) (any, int64) {
	ci.mu.Lock()
	ci.builds++
	ci.mu.Unlock()
	return &fakeIndex{s: s}, 1000
}

func TestGetIndexedBuildsOncePerEntry(t *testing.T) {
	tr, digest := testTrace(t)
	ci := &countingIndex{}
	c, err := New(Config{Dir: t.TempDir(), Index: ci.build})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()

	s1, idx1, err := c.GetIndexed(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	s2, idx2, err := c.GetIndexed(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if idx1 == nil || idx1 != idx2 {
		t.Errorf("indexes differ across hits: %p vs %p", idx1, idx2)
	}
	if fi := idx1.(*fakeIndex); fi.s != s1 || s1 != s2 {
		t.Error("index not built against the cached structure")
	}
	if ci.builds != 1 {
		t.Errorf("index built %d times, want 1", ci.builds)
	}
	reg := c.Registry()
	if got := counter(reg, "cache.index_builds"); got != 1 {
		t.Errorf("index_builds = %d, want 1", got)
	}
	if got := counter(reg, "cache.index_hits"); got != 1 {
		t.Errorf("index_hits = %d, want 1", got)
	}
	if got := reg.Gauge("cache.index_bytes").Value(); got != 1000 {
		t.Errorf("index_bytes = %v, want 1000", got)
	}
}

func TestLookupIndexedPeeksAndBuilds(t *testing.T) {
	tr, digest := testTrace(t)
	ci := &countingIndex{}
	c, err := New(Config{Dir: t.TempDir(), Index: ci.build})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()

	if _, _, ok := c.LookupIndexed(digest, opt); ok {
		t.Fatal("LookupIndexed hit an empty cache")
	}
	if ci.builds != 0 {
		t.Fatalf("miss built an index (%d builds)", ci.builds)
	}
	if _, err := c.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	s, idx, ok := c.LookupIndexed(digest, opt)
	if !ok || s == nil || idx == nil {
		t.Fatalf("LookupIndexed after Get: ok=%v s=%v idx=%v", ok, s, idx)
	}
	if ci.builds != 1 {
		t.Errorf("index built %d times, want 1", ci.builds)
	}
}

// TestIndexBytesReleasedOnEviction: evicting an entry whose index was
// built subtracts its bytes from the gauge, so the gauge tracks resident
// indexes only.
func TestIndexBytesReleasedOnEviction(t *testing.T) {
	tr, digest := testTrace(t)
	ci := &countingIndex{}
	c, err := New(Config{MaxMemEntries: 1, Index: ci.build})
	if err != nil {
		t.Fatal(err)
	}
	optA := core.DefaultOptions()
	if _, _, err := c.GetIndexed(context.Background(), digest, tr, optA); err != nil {
		t.Fatal(err)
	}
	reg := c.Registry()
	if got := reg.Gauge("cache.index_bytes").Value(); got != 1000 {
		t.Fatalf("index_bytes after build = %v, want 1000", got)
	}

	// A second key (different options fingerprint) evicts the first from
	// the 1-entry LRU; its index bytes must be released.
	optB := optA
	optB.Reorder = !optA.Reorder
	if _, _, err := c.GetIndexed(context.Background(), digest, tr, optB); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if got := reg.Gauge("cache.index_bytes").Value(); got != 1000 {
		t.Errorf("index_bytes after eviction+rebuild = %v, want 1000", got)
	}
	if got := counter(reg, "cache.index_builds"); got != 2 {
		t.Errorf("index_builds = %d, want 2", got)
	}
}

// TestGetIndexedWithoutMemoryLayer: with the memory layer disabled every
// GetIndexed builds a transient index (never accounted in the gauge) —
// degraded but correct.
func TestGetIndexedWithoutMemoryLayer(t *testing.T) {
	tr, digest := testTrace(t)
	ci := &countingIndex{}
	c, err := New(Config{Dir: t.TempDir(), MaxMemEntries: -1, Index: ci.build})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	for i := 0; i < 2; i++ {
		_, idx, err := c.GetIndexed(context.Background(), digest, tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		if idx == nil {
			t.Fatal("nil index")
		}
	}
	if ci.builds != 2 {
		t.Errorf("index built %d times, want 2 (transient per request)", ci.builds)
	}
	if got := c.Registry().Gauge("cache.index_bytes").Value(); got != 0 {
		t.Errorf("index_bytes = %v, want 0 (transient indexes are unaccounted)", got)
	}
}

// TestGetIndexedNilBuilder: without Config.Index the indexed accessors
// degrade to Get/Lookup with a nil index.
func TestGetIndexedNilBuilder(t *testing.T) {
	tr, digest := testTrace(t)
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	s, idx, err := c.GetIndexed(context.Background(), digest, tr, opt)
	if err != nil || s == nil || idx != nil {
		t.Fatalf("GetIndexed = (%v, %v, %v), want (structure, nil, nil)", s, idx, err)
	}
	if _, idx, ok := c.LookupIndexed(digest, opt); !ok || idx != nil {
		t.Fatalf("LookupIndexed = (_, %v, %v), want (_, nil, true)", idx, ok)
	}
}

// TestConcurrentIndexedRequestsBuildOnce: K concurrent indexed requests
// for one resident entry share a single build.
func TestConcurrentIndexedRequestsBuildOnce(t *testing.T) {
	tr, digest := testTrace(t)
	ci := &countingIndex{}
	c, err := New(Config{Index: ci.build})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	if _, err := c.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	const K = 8
	idxs := make([]any, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, idx, err := c.GetIndexed(context.Background(), digest, tr, opt)
			if err != nil {
				t.Error(err)
				return
			}
			idxs[i] = idx
		}(i)
	}
	wg.Wait()
	if ci.builds != 1 {
		t.Errorf("index built %d times under concurrency, want 1", ci.builds)
	}
	for i := 1; i < K; i++ {
		if idxs[i] != idxs[0] {
			t.Fatalf("request %d got a different index", i)
		}
	}
}
