package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled by SIGINT/SIGTERM, for attaching
// to core.Options.Context so Ctrl-C aborts an extraction cooperatively (the
// pipeline unwinds within one worker-chunk latency) instead of leaving a
// half-printed analysis. A second signal kills the process the usual way:
// the handler is unregistered after the first, restoring default delivery.
// The returned stop releases the signal handler early.
func SignalContext(parent context.Context) (ctx context.Context, stop context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "(%v: cancelling)\n", sig)
			cancel()
		case <-ctx.Done():
		}
		signal.Stop(ch)
	}()
	return ctx, cancel
}
