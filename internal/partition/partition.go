// Package partition implements the merge machinery of the phase-finding
// stage (Section 3.1 of the paper): a union-find over initial partitions
// ("atoms"), an atom-level dependency-edge store, cycle merges that contract
// strongly connected components so the partition graph stays a DAG, and
// snapshot views that expose the current partitions with their chare sets
// and the condensed partition DAG.
//
// The phase-finding pipeline in internal/core repeatedly alternates between
// scheduling merges (unions) based on heuristics and taking a fresh View to
// inspect the resulting partition graph.
//
// The atom table is stored struct-of-arrays: per-field slices indexed by ID,
// with every atom's events packed into one shared flat buffer. The repeated
// scans of the pipeline (dependency sweep, per-partition info, view
// construction) therefore walk contiguous memory instead of chasing
// per-atom slice headers, and a Set performs O(1) allocations per atom
// batch instead of O(atoms). Transient per-call state (root indexing, edge
// deduplication) lives in a scratch area owned by the Set and reused across
// calls; a Set is single-extraction state, so the scratch dies with it.
package partition

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"charmtrace/internal/graph"
	"charmtrace/internal/trace"
)

// ID identifies an atom: one initial partition. After merging, an atom's
// current partition is identified by its union-find root.
type ID int32

// Atom describes an initial partition for AddAtom: a maximal run of
// dependency events within one serial block that does not cross the
// application/runtime boundary (Section 3.1.1, Figure 2). Every atom's
// events belong to a single chare. The Set copies the descriptor into its
// columnar atom table; the caller may reuse the Events slice.
type Atom struct {
	Chare   trace.ChareID
	Runtime bool // partition carries a dependency touching the runtime
	Events  []trace.EventID
	Block   trace.BlockID // serial block the atom was cut from
}

// edge is a directed happened-before/dependency relation between atoms.
type edge struct{ from, to ID }

// Set is the evolving collection of partitions.
type Set struct {
	// Atom table, struct-of-arrays. events holds every atom's events
	// back-to-back; atom id's slice is events[evOff[id]:evOff[id+1]].
	chare  []trace.ChareID
	block  []trace.BlockID
	atomRT []bool // creation-time runtime flag, immutable
	evOff  []int32
	events []trace.EventID

	parent []ID
	size   []int32
	// runtime[root] tracks whether the merged partition contains any
	// runtime dependency; maintained under union.
	runtime []bool
	edges   []edge

	scratch setScratch
}

// setScratch holds transient buffers reused across partsIndex / CycleMerge /
// View calls on one Set. Nothing here is referenced by a returned View.
type setScratch struct {
	partOf   []int32 // atom root -> dense partition index
	atomPart []int32 // atom -> dense partition index
	parts    []ID
	edgeU    []int32 // condensed edge endpoints (dense part indices)
	edgeV    []int32
	deg      []int32
	counts   []int32
	// Open-addressing dedup table for dedupedEdges. Slots are live only when
	// dedupMark[i] == dedupEpoch, so clearing between calls is a single
	// increment; freshly-grown tables are zeroed, which can never collide
	// with an epoch ≥ 1.
	dedupKey   []int64
	dedupMark  []int32
	dedupEpoch int32
}

// NewSet returns an empty partition set.
func NewSet() *Set { return &Set{evOff: []int32{0}} }

// AddAtom registers an initial partition and returns its ID. The events are
// copied into the set's flat event table.
func (s *Set) AddAtom(a Atom) ID {
	id := ID(len(s.parent))
	s.chare = append(s.chare, a.Chare)
	s.block = append(s.block, a.Block)
	s.atomRT = append(s.atomRT, a.Runtime)
	s.events = append(s.events, a.Events...)
	s.evOff = append(s.evOff, int32(len(s.events)))
	s.parent = append(s.parent, id)
	s.size = append(s.size, 1)
	s.runtime = append(s.runtime, a.Runtime)
	return id
}

// NumAtoms returns the number of atoms (initial partitions).
func (s *Set) NumAtoms() int { return len(s.parent) }

// AtomChare returns the chare an atom's events belong to.
func (s *Set) AtomChare(id ID) trace.ChareID { return s.chare[id] }

// AtomBlock returns the serial block the atom was cut from.
func (s *Set) AtomBlock(id ID) trace.BlockID { return s.block[id] }

// AtomRuntime returns the atom's creation-time runtime flag. Unlike
// IsRuntime it never changes under merging.
func (s *Set) AtomRuntime(id ID) bool { return s.atomRT[id] }

// AtomEvents returns the atom's events. The slice aliases the set's flat
// event table and must not be modified.
func (s *Set) AtomEvents(id ID) []trace.EventID {
	return s.events[s.evOff[id]:s.evOff[id+1]]
}

// AddEdge records a dependency edge between the partitions containing the
// two atoms. Self-edges (same current partition) are stored too; views and
// cycle merges drop them.
func (s *Set) AddEdge(from, to ID) {
	s.edges = append(s.edges, edge{from, to})
}

// NumEdges returns the number of recorded atom-level edges.
func (s *Set) NumEdges() int { return len(s.edges) }

// Find returns the current partition (root atom) of an atom, with path
// compression.
func (s *Set) Find(a ID) ID {
	for s.parent[a] != a {
		s.parent[a] = s.parent[s.parent[a]]
		a = s.parent[a]
	}
	return a
}

// SamePartition reports whether two atoms are currently merged.
func (s *Set) SamePartition(a, b ID) bool { return s.Find(a) == s.Find(b) }

// Root returns the current partition (root atom) of an atom without path
// compression. Unlike Find it performs no writes, so any number of
// goroutines may call it concurrently — provided no merge (Union,
// CycleMerge) or Find runs at the same time. The phase-finding pipeline
// relies on this for its parallel scan stages, which read a frozen set and
// schedule merges for later sequential application.
func (s *Set) Root(a ID) ID {
	for s.parent[a] != a {
		a = s.parent[a]
	}
	return a
}

// Union merges the partitions of a and b and returns the new root. The
// merged partition is a runtime partition if either operand was.
func (s *Set) Union(a, b ID) ID {
	ra, rb := s.Find(a), s.Find(b)
	if ra == rb {
		return ra
	}
	if s.size[ra] < s.size[rb] {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	s.size[ra] += s.size[rb]
	s.runtime[ra] = s.runtime[ra] || s.runtime[rb]
	return ra
}

// IsRuntime reports whether the partition containing atom a carries any
// runtime dependency.
func (s *Set) IsRuntime(a ID) bool { return s.runtime[s.Find(a)] }

// CycleMerge contracts every strongly connected component of the current
// partition graph into a single partition, restoring the DAG property
// (Section 3.1: "we merge partitions that form strongly connected
// components"). It returns the number of partitions eliminated.
func (s *Set) CycleMerge() int {
	parts, atomPart := s.partsIndex()
	if len(parts) == 0 {
		return 0
	}
	eu, ev := s.dedupedEdges(atomPart)
	g := s.adjFromEdges(len(parts), eu, ev)
	comp, ncomp := g.SCC()
	if ncomp == len(parts) {
		return 0
	}
	rep := make([]ID, ncomp)
	for i := range rep {
		rep[i] = -1
	}
	merged := 0
	for i, root := range parts {
		c := comp[i]
		if rep[c] == -1 {
			rep[c] = root
			continue
		}
		s.Union(rep[c], root)
		merged++
	}
	return merged
}

// partsIndex returns the current roots in deterministic (atom ID) order and
// an atom-indexed dense partition-index table, so callers read an atom's
// partition with one array load instead of a Find. Both are scratch, valid
// until the next partsIndex call or merge.
func (s *Set) partsIndex() ([]ID, []int32) {
	n := len(s.parent)
	sc := &s.scratch
	if cap(sc.partOf) < n {
		sc.partOf = make([]int32, n)
	}
	if cap(sc.atomPart) < n {
		sc.atomPart = make([]int32, n)
	}
	partOf := sc.partOf[:n]
	atomPart := sc.atomPart[:n]
	for i := range partOf {
		partOf[i] = -1
	}
	parts := sc.parts[:0]
	for a := ID(0); int(a) < n; a++ {
		r := s.Find(a)
		if partOf[r] < 0 {
			partOf[r] = int32(len(parts))
			parts = append(parts, r)
		}
		atomPart[a] = partOf[r]
	}
	sc.parts = parts
	return parts, atomPart
}

// dedupedEdges projects the atom-level edge list onto the current
// partitions: self-loops dropped, duplicates removed, and — because the
// condensed graph's adjacency order is part of the deterministic output —
// first-occurrence order preserved, exactly as a map-based first-seen
// filter would. The returned slices are scratch, valid until the next call.
func (s *Set) dedupedEdges(atomPart []int32) (eu, ev []int32) {
	sc := &s.scratch
	eu, ev = sc.edgeU[:0], sc.edgeV[:0]
	// One linear-probing table sized to keep the load factor under 1/2 even
	// if every raw edge survives projection. Inserting on first sight and
	// dropping on key match preserves first-occurrence order in one pass —
	// the condensed graph's adjacency order is part of the deterministic
	// output, so this must behave exactly like a map-based first-seen filter.
	size := 16
	for size < 2*len(s.edges) {
		size <<= 1
	}
	if cap(sc.dedupKey) < size {
		sc.dedupKey = make([]int64, size)
		sc.dedupMark = make([]int32, size)
		sc.dedupEpoch = 0
	}
	keys := sc.dedupKey[:size]
	marks := sc.dedupMark[:size]
	sc.dedupEpoch++
	if sc.dedupEpoch <= 0 { // epoch wrapped: stale marks could alias it
		clear(sc.dedupMark[:cap(sc.dedupMark)])
		sc.dedupEpoch = 1
	}
	epoch := sc.dedupEpoch
	mask := uint64(size - 1)
	for _, e := range s.edges {
		u, v := atomPart[e.from], atomPart[e.to]
		if u == v {
			continue
		}
		k := int64(u)<<32 | int64(uint32(v))
		h := uint64(k)
		h ^= h >> 33
		h *= 0x9e3779b97f4a7c15
		h ^= h >> 29
		i := h & mask
		for {
			if marks[i] != epoch {
				marks[i], keys[i] = epoch, k
				eu = append(eu, u)
				ev = append(ev, v)
				break
			}
			if keys[i] == k {
				break
			}
			i = (i + 1) & mask
		}
	}
	sc.edgeU, sc.edgeV = eu, ev
	return eu, ev
}

// adjFromEdges builds a graph over n nodes from an edge list, preserving
// per-source edge order. Adjacency rows are full-capacity subslices of one
// flat buffer, so a later append to a row (the ordering stage inserts
// collision-repair edges into the final DAG) reallocates that row instead
// of clobbering its neighbour.
func (s *Set) adjFromEdges(n int, eu, ev []int32) *graph.Graph {
	sc := &s.scratch
	if cap(sc.deg) < n {
		sc.deg = make([]int32, n)
	}
	deg := sc.deg[:n]
	for i := range deg {
		deg[i] = 0
	}
	for _, u := range eu {
		deg[u]++
	}
	flat := make([]int32, len(eu))
	adj := make([][]int32, n)
	off := int32(0)
	for u := 0; u < n; u++ {
		// Zero-degree rows stay nil, matching the append-built adjacency the
		// codec produces (DeepEqual distinguishes nil from empty).
		if deg[u] > 0 {
			adj[u] = flat[off : off : off+deg[u]]
			off += deg[u]
		}
	}
	for i, u := range eu {
		adj[u] = append(adj[u], ev[i])
	}
	return &graph.Graph{Adj: adj}
}

// Part is one current partition in a View.
type Part struct {
	Root    ID
	Atoms   []ID
	Chares  []trace.ChareID // sorted, unique
	Runtime bool
}

// HasChare reports whether the partition contains events of chare c.
func (p *Part) HasChare(c trace.ChareID) bool {
	i := sort.Search(len(p.Chares), func(i int) bool { return p.Chares[i] >= c })
	return i < len(p.Chares) && p.Chares[i] == c
}

// ChareOverlap reports whether two partitions share any chare.
func (p *Part) ChareOverlap(q *Part) bool {
	i, j := 0, 0
	for i < len(p.Chares) && j < len(q.Chares) {
		switch {
		case p.Chares[i] == q.Chares[j]:
			return true
		case p.Chares[i] < q.Chares[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// View is an immutable snapshot of the partition set: the current
// partitions, the condensed partition graph over them, and (lazily) its
// leaps. Mutating the underlying Set invalidates the view.
//
// A View is safe for concurrent readers: its exported fields are never
// mutated after Set.View returns, every method is read-only, and the one
// lazy computation (Leaps) is synchronized. Concurrent readers must not
// mutate Parts, PartOf or G themselves. Views own their storage (the per-
// part sub-slices share a few flat buffers allocated at snapshot time), so
// snapshots taken at different times coexist safely.
type View struct {
	Parts  []Part
	PartOf []int32 // atom -> dense partition index
	G      *graph.Graph

	leapOnce sync.Once
	leap     []int32
	maxLeap  int32
}

// View snapshots the current partitions and the deduplicated partition
// graph (self-loops dropped). Per-part atom and chare lists are carved out
// of single flat buffers: a snapshot costs a constant number of
// allocations, not one per partition.
func (s *Set) View() *View {
	parts, atomPart := s.partsIndex()
	n := len(parts)
	natoms := len(s.parent)
	v := &View{
		Parts:  make([]Part, n),
		PartOf: make([]int32, natoms),
	}
	for i, root := range parts {
		v.Parts[i] = Part{Root: root, Runtime: s.runtime[root]}
	}
	sc := &s.scratch
	if cap(sc.counts) < n {
		sc.counts = make([]int32, n)
	}
	counts := sc.counts[:n]
	for i := range counts {
		counts[i] = 0
	}
	copy(v.PartOf, atomPart)
	for a := ID(0); int(a) < natoms; a++ {
		counts[atomPart[a]]++
	}
	atomsBuf := make([]ID, natoms)
	off := int32(0)
	for i := range v.Parts {
		v.Parts[i].Atoms = atomsBuf[off : off : off+counts[i]]
		off += counts[i]
	}
	for a := ID(0); int(a) < natoms; a++ {
		pi := v.PartOf[a]
		v.Parts[pi].Atoms = append(v.Parts[pi].Atoms, a)
	}
	// Chare sets: copy each part's atom chares into the shared buffer,
	// sort-and-compact in place. Total writes never exceed natoms, so the
	// buffer never reallocates and earlier sub-slices stay valid.
	charesBuf := make([]trace.ChareID, 0, natoms)
	for i := range v.Parts {
		p := &v.Parts[i]
		start := len(charesBuf)
		for _, a := range p.Atoms {
			charesBuf = append(charesBuf, s.chare[a])
		}
		seg := charesBuf[start:]
		slices.Sort(seg)
		seg = slices.Compact(seg)
		charesBuf = charesBuf[:start+len(seg)]
		p.Chares = charesBuf[start : start+len(seg) : start+len(seg)]
	}
	eu, ev := s.dedupedEdges(atomPart)
	v.G = s.adjFromEdges(n, eu, ev)
	return v
}

// Acyclic reports whether the snapshot's partition graph is a DAG.
func (v *View) Acyclic() bool {
	_, ok := v.G.TopoSort()
	return ok
}

// Leaps returns the leap of every partition and the maximum leap. The view's
// graph must be acyclic (run CycleMerge on the set before snapshotting).
// Safe for concurrent callers: the lazy computation runs exactly once.
func (v *View) Leaps() ([]int32, int32) {
	v.leapOnce.Do(func() {
		v.leap, v.maxLeap = v.G.Leaps()
	})
	return v.leap, v.maxLeap
}

// PartsAtLeap groups partition indices by leap: result[l] lists the
// partitions whose leap is l, in partition order.
func (v *View) PartsAtLeap() [][]int32 {
	leap, maxLeap := v.Leaps()
	counts := make([]int32, maxLeap+1)
	for _, l := range leap {
		counts[l]++
	}
	flat := make([]int32, len(leap))
	out := make([][]int32, maxLeap+1)
	off := int32(0)
	for l := range out {
		out[l] = flat[off : off : off+counts[l]]
		off += counts[l]
	}
	for p, l := range leap {
		out[l] = append(out[l], int32(p))
	}
	return out
}

// String summarizes the view for debugging.
func (v *View) String() string {
	return fmt.Sprintf("partition.View{%d parts, %d edges}", len(v.Parts), v.G.NumEdges())
}

// MergePlan collects pairs to merge and applies them at once, mirroring the
// schedule_merge / merge_scheduled structure of the paper's pseudocode.
type MergePlan struct {
	s     *Set
	pairs []edge
}

// NewMergePlan returns a plan targeting the given set.
func (s *Set) NewMergePlan() *MergePlan { return &MergePlan{s: s} }

// Schedule records that the partitions of a and b must merge.
func (m *MergePlan) Schedule(a, b ID) { m.pairs = append(m.pairs, edge{a, b}) }

// Len returns the number of scheduled merges.
func (m *MergePlan) Len() int { return len(m.pairs) }

// Apply performs all scheduled unions and returns the number of partitions
// eliminated.
func (m *MergePlan) Apply() int {
	merged := 0
	for _, p := range m.pairs {
		if m.s.Find(p.from) != m.s.Find(p.to) {
			m.s.Union(p.from, p.to)
			merged++
		}
	}
	m.pairs = m.pairs[:0]
	return merged
}
