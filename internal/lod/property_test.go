package lod

import (
	"encoding/json"
	"testing"

	"charmtrace/internal/charegroup"
	"charmtrace/internal/conformance"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
	"charmtrace/internal/viz"
)

// TestZooNativeLossless pins satellite property (a): at resolution=native
// the pyramid's base level is a lossless re-binning of the structure the
// /steps and /viz responses render — per-(cluster, step) event counts
// recount exactly from the structure, edge weight equals the matched
// send→recv pair count, the clustering passes charegroup's validator, and
// the native render is exactly viz's clustered window. Runs the whole
// nine-workload zoo at parallelism 1/2/4; the response bytes must be
// identical at every worker count.
func TestZooNativeLossless(t *testing.T) {
	for _, w := range conformance.Zoo() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tr := w.MustGen()
			var golden []byte
			for _, par := range []int{1, 2, 4} {
				opt := w.Opts
				opt.Parallelism = par
				s, err := core.Extract(tr, opt)
				if err != nil {
					t.Fatal(err)
				}
				p := Build(s, nil)
				if err := charegroup.Validate(s, p.Clusters); err != nil {
					t.Fatalf("par=%d: clustering invalid: %v", par, err)
				}
				checkNativeCounts(t, p)
				checkNativeEdges(t, p)
				checkNativeRender(t, p)
				out, err := p.Query(Spec{}, nil)
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(out)
				if err != nil {
					t.Fatal(err)
				}
				if golden == nil {
					golden = b
				} else if string(b) != string(golden) {
					t.Fatalf("par=%d: native response differs from par=1", par)
				}
			}
		})
	}
}

// checkNativeCounts recounts every base-level cell from the structure.
func checkNativeCounts(t *testing.T, p *Pyramid) {
	t.Helper()
	if len(p.Levels) == 0 {
		if p.S.MaxStep() >= 0 {
			t.Fatal("non-empty structure built no levels")
		}
		return
	}
	base := &p.Levels[0]
	s, tr := p.S, p.S.Trace
	want := make([]int64, len(base.Cells))
	var total int64
	for e := range tr.Events {
		ci := p.ClusterOf[tr.Events[e].Chare]
		want[int(ci)*int(base.Buckets)+int(s.Step[trace.EventID(e)])]++
		total++
	}
	var got int64
	for i := range base.Cells {
		if base.Cells[i].Events != want[i] {
			t.Fatalf("cell %d: %d events, structure recount %d", i, base.Cells[i].Events, want[i])
		}
		got += base.Cells[i].Events
	}
	if got != total {
		t.Fatalf("base level holds %d events, trace has %d", got, total)
	}
}

// checkNativeEdges equates base-level edge weight with the trace's matched
// send→recv pairs.
func checkNativeEdges(t *testing.T, p *Pyramid) {
	t.Helper()
	if len(p.Levels) == 0 {
		return
	}
	tr := p.S.Trace
	var pairs int64
	for e := range tr.Events {
		if tr.Events[e].Kind == trace.Recv && tr.MatchingSend(trace.EventID(e)) != trace.NoEvent {
			pairs++
		}
	}
	var weight int64
	for _, e := range p.Levels[0].Edges {
		weight += e.Weight
	}
	if weight != pairs {
		t.Fatalf("base edges weigh %d, trace has %d matched pairs", weight, pairs)
	}
}

// checkNativeRender pins the native text render to viz's clustered window
// over the same rows.
func checkNativeRender(t *testing.T, p *Pyramid) {
	t.Helper()
	if p.S.MaxStep() < 0 {
		return
	}
	out, err := p.Query(Spec{Render: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]viz.ClusterRow, len(p.Clusters))
	for i, c := range p.Clusters {
		rows[i] = viz.ClusterRow{Representative: c.Representative, Label: c.Label(p.S.Trace)}
	}
	want := viz.LogicalClusteredWindow(p.S, rows, 0, p.S.MaxStep())
	if out.Render != want {
		t.Fatalf("native render differs from viz.LogicalClusteredWindow:\n%s\n----\n%s", out.Render, want)
	}
}

// TestZooCoarseningMonotone pins satellite property (b): at every level
// L >= 1, each cell is exactly the merge of its children at L-1 and each
// edge's weight is the sum of the child edges it covers — so zooming out
// never invents or loses an event, a nanosecond of metric mass, or a
// message. Runs the whole zoo.
func TestZooCoarseningMonotone(t *testing.T) {
	for _, w := range conformance.Zoo() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			s, err := core.Extract(w.MustGen(), w.Opts)
			if err != nil {
				t.Fatal(err)
			}
			p := Build(s, nil)
			for l := 1; l < len(p.Levels); l++ {
				child, parent := &p.Levels[l-1], &p.Levels[l]
				if parent.Width != child.Width*2 {
					t.Fatalf("level %d width %d, child width %d", l, parent.Width, child.Width)
				}
				nc := int32(len(p.Clusters))
				for ci := int32(0); ci < nc; ci++ {
					for b := int32(0); b < parent.Buckets; b++ {
						var want Cell
						want.merge(child.cell(ci, 2*b))
						if 2*b+1 < child.Buckets {
							want.merge(child.cell(ci, 2*b+1))
						}
						if got := *parent.cell(ci, b); got != want {
							t.Fatalf("level %d cell (%d,%d): %+v, children merge to %+v", l, ci, b, got, want)
						}
					}
				}
				wantEdges := make(map[Edge]int64)
				for _, e := range child.Edges {
					wantEdges[Edge{e.SrcBucket / 2, e.SrcCluster, e.DstBucket / 2, e.DstCluster, 0}] += e.Weight
				}
				if len(parent.Edges) != len(wantEdges) {
					t.Fatalf("level %d: %d edges, children re-aggregate to %d", l, len(parent.Edges), len(wantEdges))
				}
				for _, e := range parent.Edges {
					if wantEdges[Edge{e.SrcBucket, e.SrcCluster, e.DstBucket, e.DstCluster, 0}] != e.Weight {
						t.Fatalf("level %d edge %+v does not match children", l, e)
					}
				}
			}
			if top := p.Levels[len(p.Levels)-1]; top.Buckets != 1 {
				t.Fatalf("top level has %d buckets, want 1", top.Buckets)
			}
		})
	}
}
