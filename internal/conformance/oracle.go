// Package conformance is the differential harness that cross-checks the §3
// extraction pipeline against independent oracles on every bundled
// workload. The core oracle is a replay clock (after the replay-clocks
// tracing model, PAPERS.md): a vector clock computed directly from the
// generator's ground truth — the recorded event order inside each serial
// block and the send→receive matching — with no input from the phase or
// step algorithms. Any happened-before relationship the replay clock proves
// must be respected by the recovered global steps, and matched sends and
// receives must land in the same phase.
//
// The clock deliberately does NOT chain a chare's consecutive serial blocks:
// the paper's §3.2 step assignment reorders a chare's independent blocks in
// logical time on purpose (that is how a laggard's work is realigned with
// the iteration it belongs to, Figures 14/15), so physical block order on a
// chare is not an invariant of the recovered structure. Only the orders the
// algorithm promises to preserve — the developer-written order within a
// serial block, and every remote invocation — are causal ground truth here.
package conformance

import (
	"fmt"
	"math/rand"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// Oracle holds the replay clocks of one trace.
type Oracle struct {
	tr *trace.Trace
	// clock[e] is event e's replay clock: one component per serial block
	// (events of a block form a chain, so blocks are the "processes" of the
	// clock). Each event increments its own block's component, so e
	// happened-before f exactly when clock[e][block(e)] <= clock[f][block(e)]
	// and e != f.
	clock [][]int32
	// succs are the ground-truth causal edges the clocks were derived from.
	succs [][]trace.EventID
}

// NewOracle computes replay clocks from the trace's ground truth. The trace
// must be indexed.
func NewOracle(tr *trace.Trace) (*Oracle, error) {
	n := len(tr.Events)
	o := &Oracle{tr: tr, succs: make([][]trace.EventID, n)}
	indeg := make([]int, n)
	addEdge := func(u, v trace.EventID) {
		o.succs[u] = append(o.succs[u], v)
		indeg[v]++
	}
	// Intra-block order: the developer-determined sequence inside each
	// serial block, which reordering never changes.
	for bi := range tr.Blocks {
		evs := tr.Blocks[bi].Events
		for i := 0; i+1 < len(evs); i++ {
			addEdge(evs[i], evs[i+1])
		}
	}
	// Message matching: a receive happens after its send.
	for _, ev := range tr.Events {
		if ev.Kind != trace.Recv || ev.Msg == trace.NoMsg {
			continue
		}
		if s := tr.SendOf(ev.Msg); s != trace.NoEvent {
			addEdge(s, ev.ID)
		}
	}
	// Propagate clocks in topological order.
	o.clock = make([][]int32, n)
	queue := make([]trace.EventID, 0, n)
	for e := 0; e < n; e++ {
		if indeg[e] == 0 {
			queue = append(queue, trace.EventID(e))
		}
	}
	processed := 0
	nb := len(tr.Blocks)
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		processed++
		vc := make([]int32, nb)
		copy(vc, o.clock[e]) // accumulated predecessor maxima
		vc[tr.Events[e].Block]++
		o.clock[e] = vc
		for _, s := range o.succs[e] {
			if o.clock[s] == nil {
				o.clock[s] = make([]int32, nb)
			}
			for b, v := range vc {
				if v > o.clock[s][b] {
					o.clock[s][b] = v
				}
			}
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if processed != n {
		return nil, fmt.Errorf("conformance: ground-truth causal order has a cycle (%d of %d events ordered)", processed, n)
	}
	return o, nil
}

// HappenedBefore reports whether the replay clocks prove e happened before f.
func (o *Oracle) HappenedBefore(e, f trace.EventID) bool {
	if e == f {
		return false
	}
	b := o.tr.Events[e].Block
	return o.clock[e][b] <= o.clock[f][b]
}

// Verify cross-checks a recovered structure against the replay clocks:
//
//  1. every matched send and receive share a phase (phases only ever merge
//     across dependencies, never split them);
//  2. every ground-truth causal edge maps to strictly increasing global
//     steps — dependent events never share a logical time step and are
//     never inverted, no matter how fragments were reordered;
//  3. sampled transitive happened-before pairs (proved by the clocks, not
//     listed as edges) also map to increasing global steps;
//  4. every event's global step decomposes as its phase's offset plus its
//     local step, and stays within the phase's span and [0, MaxStep].
func (o *Oracle) Verify(s *core.Structure, samples int, seed int64) error {
	tr := o.tr
	for _, ev := range tr.Events {
		if ev.Kind != trace.Recv || ev.Msg == trace.NoMsg {
			continue
		}
		snd := tr.SendOf(ev.Msg)
		if snd == trace.NoEvent {
			continue
		}
		if s.PhaseOf[snd] != s.PhaseOf[ev.ID] {
			return fmt.Errorf("msg %d: send %d in phase %d but recv %d in phase %d",
				ev.Msg, snd, s.PhaseOf[snd], ev.ID, s.PhaseOf[ev.ID])
		}
	}
	for u := range o.succs {
		for _, v := range o.succs[u] {
			if s.Step[u] >= s.Step[v] {
				return fmt.Errorf("causal edge %d->%d violated: steps %d >= %d",
					u, v, s.Step[u], s.Step[v])
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(tr.Events)
	for i := 0; i < samples && n > 1; i++ {
		e := trace.EventID(rng.Intn(n))
		f := trace.EventID(rng.Intn(n))
		if o.HappenedBefore(e, f) && s.Step[e] >= s.Step[f] {
			return fmt.Errorf("replay clocks prove %d happened before %d but steps are %d >= %d",
				e, f, s.Step[e], s.Step[f])
		}
	}
	max := s.MaxStep()
	for e := range tr.Events {
		p := &s.Phases[s.PhaseOf[e]]
		if s.Step[e] != p.Offset+s.LocalStep[e] {
			return fmt.Errorf("event %d: step %d is not phase offset %d + local step %d",
				e, s.Step[e], p.Offset, s.LocalStep[e])
		}
		if lo, hi := p.GlobalSpan(); s.Step[e] < lo || s.Step[e] > hi {
			return fmt.Errorf("event %d step %d outside its phase span [%d, %d]", e, s.Step[e], lo, hi)
		}
		if s.Step[e] < 0 || s.Step[e] > max {
			return fmt.Errorf("event %d step %d outside [0, %d]", e, s.Step[e], max)
		}
	}
	return nil
}
