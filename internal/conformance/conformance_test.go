package conformance

// The differential conformance suite: every zoo workload is extracted at
// parallelism 1, 2 and 4, checked against the replay-clock oracle built
// from the generator's ground truth, and then re-extracted after each
// metamorphic trace rewrite to confirm the recovered structure is
// byte-identical. This is the repo's strongest end-to-end statement: the
// pipeline's output is a function of the trace's logical content only —
// not of worker scheduling, processor numbering, clock speed, or event
// labeling.

import (
	"bytes"
	"math/rand"
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
	"charmtrace/internal/viz"
)

// extract runs the pipeline at a given parallelism, failing the test on error.
func extract(t *testing.T, tr *trace.Trace, opts core.Options, par int) *core.Structure {
	t.Helper()
	opts.Parallelism = par
	s, err := core.Extract(tr, opts)
	if err != nil {
		t.Fatalf("extract (parallelism %d): %v", par, err)
	}
	return s
}

// TestDifferentialConformance sweeps the zoo: at each parallelism level the
// recovered structure must satisfy the replay-clock oracle, and all levels
// must render byte-identically.
func TestDifferentialConformance(t *testing.T) {
	for _, w := range Zoo() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tr := w.MustGen()
			o, err := NewOracle(tr)
			if err != nil {
				t.Fatal(err)
			}
			want := ""
			for _, par := range []int{1, 2, 4} {
				s := extract(t, tr, w.Opts, par)
				if err := o.Verify(s, 4096, 1); err != nil {
					t.Fatalf("parallelism %d: oracle: %v", par, err)
				}
				got := viz.Logical(s)
				if want == "" {
					want = got
				} else if got != want {
					t.Fatalf("parallelism %d: structure differs from parallelism 1", par)
				}
			}
		})
	}
}

// TestMetamorphicPERenumbering: processor numbers are correlation keys, not
// inputs to any ordering decision — reversing them must leave the rendered
// structure byte-identical.
func TestMetamorphicPERenumbering(t *testing.T) {
	for _, w := range Zoo() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tr := w.MustGen()
			perm := make([]trace.PE, tr.NumPE)
			for i := range perm {
				perm[i] = trace.PE(tr.NumPE - 1 - i)
			}
			renum, err := RenumberPEs(tr, perm)
			if err != nil {
				t.Fatal(err)
			}
			base := extract(t, tr, w.Opts, 2)
			got := extract(t, renum, w.Opts, 2)
			if viz.Logical(got) != viz.Logical(base) {
				t.Fatal("PE renumbering changed the recovered structure")
			}
		})
	}
}

// TestMetamorphicTimeJitter: any monotone tie-preserving clock remap — the
// worst-case model of phase-boundary jitter — must leave the structure
// byte-identical, because the pipeline only ever compares times.
func TestMetamorphicTimeJitter(t *testing.T) {
	for _, w := range Zoo() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tr := w.MustGen()
			base := extract(t, tr, w.Opts, 2)
			for _, seed := range []int64{1, 42} {
				jit, err := JitterTimes(tr, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				got := extract(t, jit, w.Opts, 2)
				if viz.Logical(got) != viz.Logical(base) {
					t.Fatalf("seed %d: time jitter changed the recovered structure", seed)
				}
			}
		})
	}
}

// TestMetamorphicEventIDPermutation: relabeling event IDs while preserving
// the relative order of equal-time events must reproduce every placement
// (phase up to a consistent bijection, steps exactly) under the relabeling.
func TestMetamorphicEventIDPermutation(t *testing.T) {
	for _, w := range Zoo() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tr := w.MustGen()
			base := extract(t, tr, w.Opts, 2)
			perm2, perm, err := PermuteEventIDs(tr, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			got := extract(t, perm2, w.Opts, 2)
			if got.NumPhases() != base.NumPhases() {
				t.Fatalf("phase counts differ: %d vs %d", got.NumPhases(), base.NumPhases())
			}
			fwd := map[int32]int32{}
			rev := map[int32]int32{}
			for e := range tr.Events {
				pe := perm[e]
				if got.Step[pe] != base.Step[e] || got.LocalStep[pe] != base.LocalStep[e] {
					t.Fatalf("event %d (relabeled %d): steps %d/%d differ from %d/%d",
						e, pe, got.Step[pe], got.LocalStep[pe], base.Step[e], base.LocalStep[e])
				}
				bp, gp := base.PhaseOf[e], got.PhaseOf[pe]
				if m, ok := fwd[bp]; ok && m != gp {
					t.Fatalf("phase %d maps to both %d and %d", bp, m, gp)
				}
				if m, ok := rev[gp]; ok && m != bp {
					t.Fatalf("phases %d and %d collapse onto %d", m, bp, gp)
				}
				fwd[bp], rev[gp] = gp, bp
			}
		})
	}
}

// TestProjectionsRoundTripStructure is the reader acceptance criterion: a
// Projections-format serialization read back through ReadAuto must extract
// to a byte-identical structure versus the native in-memory trace.
func TestProjectionsRoundTripStructure(t *testing.T) {
	for _, w := range Zoo() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tr := w.MustGen()
			var buf bytes.Buffer
			if err := tracefile.WriteProjections(&buf, tr); err != nil {
				t.Fatal(err)
			}
			rt, err := tracefile.ReadAuto(&buf)
			if err != nil {
				t.Fatal(err)
			}
			base := extract(t, tr, w.Opts, 2)
			got := extract(t, rt, w.Opts, 2)
			if viz.Logical(got) != viz.Logical(base) {
				t.Fatal("Projections round trip changed the recovered structure")
			}
		})
	}
}
