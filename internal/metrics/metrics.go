// Package metrics implements the performance metrics of Section 4, mapped
// onto the recovered logical structure: idle experienced, differential
// duration over event-delimited sub-blocks, and per-processor imbalance at
// the phase level. Traditional lateness metrics assume statically scheduled
// tasks; these metrics instead treat efficient processor use as the ideal.
package metrics

import (
	"sort"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// SubBlock is an event-delimited unit of computation inside a serial block
// (Figure 13): it spans from the previous event in the block to the end of
// its event. Leftover duration after the last event is assigned to the
// event that started the block if one was recorded (the initial receive),
// otherwise to the last event.
type SubBlock struct {
	Event trace.EventID
	Dur   trace.Time
}

// SubBlockDurations returns per-event sub-block durations. Events of blocks
// without dependency events contribute nothing; for every block with events,
// the per-event durations sum to the block's duration.
func SubBlockDurations(tr *trace.Trace) []trace.Time {
	dur := make([]trace.Time, len(tr.Events))
	for bi := range tr.Blocks {
		blk := &tr.Blocks[bi]
		if len(blk.Events) == 0 {
			continue
		}
		prev := blk.Begin
		for _, e := range blk.Events {
			dur[e] = tr.Events[e].Time - prev
			prev = tr.Events[e].Time
		}
		leftover := blk.End - prev
		first := blk.Events[0]
		if tr.Events[first].Kind == trace.Recv {
			dur[first] += leftover
		} else {
			dur[blk.Events[len(blk.Events)-1]] += leftover
		}
	}
	return dur
}

// Report holds every Section 4 metric for one structure. All per-event
// slices are indexed by EventID; absent values are zero.
type Report struct {
	Structure *core.Structure
	// SubDur is each event's sub-block duration.
	SubDur []trace.Time
	// DifferentialDuration is the excess of each event's sub-block over the
	// shortest sub-block at the same (phase, logical step).
	DifferentialDuration []trace.Time
	// IdleExperienced is the idle time each event waited through: the event
	// directly after a recorded idle span carries its length, as does the
	// first event of each subsequent serial block whose dependency started
	// before the idle ended (Figure 11).
	IdleExperienced []trace.Time
	// Imbalance is, per event, its processor's phase load minus the
	// minimally loaded processor's in the same phase (Figure 14).
	Imbalance []trace.Time
	// PhaseImbalance is, per phase, the difference between the most and
	// least loaded processors.
	PhaseImbalance []trace.Time
	// PhaseLoad maps phase -> processor -> summed sub-block duration.
	PhaseLoad []map[trace.PE]trace.Time
}

// Compute derives all metrics for a structure.
func Compute(s *core.Structure) *Report {
	r := &Report{
		Structure:            s,
		SubDur:               SubBlockDurations(s.Trace),
		DifferentialDuration: make([]trace.Time, len(s.Trace.Events)),
		IdleExperienced:      make([]trace.Time, len(s.Trace.Events)),
		Imbalance:            make([]trace.Time, len(s.Trace.Events)),
		PhaseImbalance:       make([]trace.Time, len(s.Phases)),
		PhaseLoad:            make([]map[trace.PE]trace.Time, len(s.Phases)),
	}
	r.computeDifferential()
	r.computeIdleExperienced()
	r.computeImbalance()
	return r
}

// computeDifferential groups sub-blocks by (phase, local step) and assigns
// each event its excess over the group's minimum.
func (r *Report) computeDifferential() {
	s := r.Structure
	type key struct {
		phase int32
		step  int32
	}
	min := make(map[key]trace.Time)
	for e := range s.Trace.Events {
		k := key{s.PhaseOf[e], s.LocalStep[e]}
		if cur, ok := min[k]; !ok || r.SubDur[e] < cur {
			min[k] = r.SubDur[e]
		}
	}
	for e := range s.Trace.Events {
		k := key{s.PhaseOf[e], s.LocalStep[e]}
		r.DifferentialDuration[e] = r.SubDur[e] - min[k]
	}
}

// computeIdleExperienced walks forward from every recorded idle span along
// its processor: the first event after the idle experiences it; the first
// event of each subsequent serial block also does while its dependency (the
// send of the message it waited on) started before the idle ended.
func (r *Report) computeIdleExperienced() {
	tr := r.Structure.Trace
	for _, idle := range tr.Idles {
		blocks := tr.BlocksOfPE(idle.PE)
		i := sort.Search(len(blocks), func(i int) bool {
			return tr.Blocks[blocks[i]].Begin >= idle.End
		})
		first := true
		for ; i < len(blocks); i++ {
			blk := &tr.Blocks[blocks[i]]
			if len(blk.Events) == 0 {
				continue
			}
			e := blk.Events[0]
			if first {
				r.IdleExperienced[e] += idle.Duration()
				first = false
				continue
			}
			ev := &tr.Events[e]
			if ev.Kind != trace.Recv || ev.Msg == trace.NoMsg {
				break
			}
			send := tr.SendOf(ev.Msg)
			if send == trace.NoEvent || tr.Events[send].Time >= idle.End {
				break
			}
			r.IdleExperienced[e] += idle.Duration()
		}
	}
}

// computeImbalance sums sub-block durations per (phase, processor) and
// derives the per-event spread and per-phase max-min difference, over the
// processors that participate in each phase.
func (r *Report) computeImbalance() {
	s := r.Structure
	for pi := range s.Phases {
		r.PhaseLoad[pi] = make(map[trace.PE]trace.Time)
	}
	for e := range s.Trace.Events {
		pi := s.PhaseOf[e]
		if pi < 0 {
			continue
		}
		r.PhaseLoad[pi][s.Trace.Events[e].PE] += r.SubDur[e]
	}
	minLoad := make([]trace.Time, len(s.Phases))
	for pi, load := range r.PhaseLoad {
		first := true
		var lo, hi trace.Time
		for _, d := range load {
			if first {
				lo, hi = d, d
				first = false
				continue
			}
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		minLoad[pi] = lo
		r.PhaseImbalance[pi] = hi - lo
	}
	for e := range s.Trace.Events {
		pi := s.PhaseOf[e]
		if pi < 0 {
			continue
		}
		r.Imbalance[e] = r.PhaseLoad[pi][s.Trace.Events[e].PE] - minLoad[pi]
	}
}

// MaxDifferentialDuration returns the largest differential duration and the
// event carrying it (NoEvent for an empty trace).
func (r *Report) MaxDifferentialDuration() (trace.Time, trace.EventID) {
	best, at := trace.Time(0), trace.NoEvent
	for e, d := range r.DifferentialDuration {
		if d > best {
			best, at = d, trace.EventID(e)
		}
	}
	return best, at
}

// TotalImbalance sums the per-phase imbalance over all phases — the paper's
// aggregate comparison between the 8- and 64-chare LASSEN runs ("less than
// half as much imbalance overall").
func (r *Report) TotalImbalance() trace.Time {
	var sum trace.Time
	for _, d := range r.PhaseImbalance {
		sum += d
	}
	return sum
}

// TotalIdleExperienced sums idle experienced over all events.
func (r *Report) TotalIdleExperienced() trace.Time {
	var sum trace.Time
	for _, d := range r.IdleExperienced {
		sum += d
	}
	return sum
}

// HighDifferentialEvents returns the events whose differential duration is
// at least frac of the maximum, in descending order — the repeated long
// events the LASSEN case study highlights (Figures 21-23).
func (r *Report) HighDifferentialEvents(frac float64) []trace.EventID {
	max, _ := r.MaxDifferentialDuration()
	if max == 0 {
		return nil
	}
	threshold := trace.Time(float64(max) * frac)
	var out []trace.EventID
	for e, d := range r.DifferentialDuration {
		if d >= threshold {
			out = append(out, trace.EventID(e))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return r.DifferentialDuration[out[i]] > r.DifferentialDuration[out[j]]
	})
	return out
}

// Lateness computes the traditional message-passing metric of Isaacs et
// al. [13]: each event's delay behind the earliest event at the same global
// logical step. The paper argues it suits bulk-synchronous programs but not
// task-based ones (§4); it is provided for the MPI-side comparisons.
func Lateness(s *core.Structure) []trace.Time {
	earliest := make(map[int32]trace.Time)
	for e := range s.Trace.Events {
		st := s.Step[e]
		if cur, ok := earliest[st]; !ok || s.Trace.Events[e].Time < cur {
			earliest[st] = s.Trace.Events[e].Time
		}
	}
	out := make([]trace.Time, len(s.Trace.Events))
	for e := range s.Trace.Events {
		out[e] = s.Trace.Events[e].Time - earliest[s.Step[e]]
	}
	return out
}

// BlockMetric aggregates a per-event metric to serial blocks by taking each
// block's maximum.
func BlockMetric(tr *trace.Trace, perEvent []trace.Time) map[trace.BlockID]trace.Time {
	out := make(map[trace.BlockID]trace.Time)
	for e, d := range perEvent {
		b := tr.Events[e].Block
		if d > out[b] {
			out[b] = d
		}
	}
	return out
}
