package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"charmtrace/internal/telemetry"
)

// defaultPeerTimeout bounds one peer fetch attempt. A peer fill is an
// optimization over local extraction, so a slow peer must never cost more
// than a modest fraction of the extraction it would have saved.
const defaultPeerTimeout = 5 * time.Second

// defaultPeerFanout is how many ring siblings a node asks before giving up
// on a peer fill. The entry, if it exists anywhere, lives on the key's
// replica set, so two siblings cover R=2 and R=3 deployments.
const defaultPeerFanout = 2

// Peers is the node-side cluster client: given this node's name and the
// shared member list, it fetches encoded cache entries (and raw traces)
// from the ring siblings that would hold a key's replicas. It is what
// charmd plugs into resultcache.Config.PeerFetch.
type Peers struct {
	self    string
	ring    *Ring
	client  *http.Client
	fanout  int
	timeout time.Duration

	fetches    *telemetry.Counter // cluster.peer_fetches
	fetchFails *telemetry.Counter // cluster.peer_fetch_failures
}

// PeersConfig configures a Peers client.
type PeersConfig struct {
	// Self is this node's member name; it is never asked for its own data.
	Self string
	// Members is the full cluster member list (including Self).
	Members []Member
	// VirtualNodes tunes the ring (0 = DefaultVirtualNodes). Must match the
	// gateway's setting or routing and peer fill will disagree about owners.
	VirtualNodes int
	// Fanout bounds how many siblings one fetch tries (0 = 2).
	Fanout int
	// Timeout bounds one sibling attempt (0 = 5s).
	Timeout time.Duration
	// Client is the HTTP client (nil = a private one).
	Client *http.Client
	// Metrics receives the client's counters (nil = a private registry).
	Metrics *telemetry.Registry
}

// NewPeers builds the client. Self must appear in Members.
func NewPeers(cfg PeersConfig) (*Peers, error) {
	ring, err := NewRing(cfg.Members, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	found := false
	for _, m := range cfg.Members {
		if m.Name == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q not in member list", cfg.Self)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	fanout := cfg.Fanout
	if fanout <= 0 {
		fanout = defaultPeerFanout
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = defaultPeerTimeout
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Peers{
		self:       cfg.Self,
		ring:       ring,
		client:     client,
		fanout:     fanout,
		timeout:    timeout,
		fetches:    reg.Counter("cluster.peer_fetches"),
		fetchFails: reg.Counter("cluster.peer_fetch_failures"),
	}, nil
}

// siblings returns the ring successors for key, excluding this node,
// bounded by fanout. These are exactly the members that would hold the
// key's replicas (plus the next node over when self is in the replica set).
func (p *Peers) siblings(key string) []Member {
	succ := p.ring.Successors(key, p.fanout+1)
	out := make([]Member, 0, p.fanout)
	for _, m := range succ {
		if m.Name == p.self {
			continue
		}
		if len(out) < p.fanout {
			out = append(out, m)
		}
	}
	return out
}

// FetchResult asks the trace's ring siblings for the encoded result entry
// named by key (a resultcache.KeyID) and returns the first 200 body. Any
// outcome other than one sibling answering 200 is an error — the caller
// (resultcache's peer fill) counts it as a miss and extracts locally.
// The caller's request id propagates to the sibling via X-Request-ID.
func (p *Peers) FetchResult(ctx context.Context, traceDigest, key string) (io.ReadCloser, error) {
	return p.fetch(ctx, traceDigest, "/v1/internal/results/"+key)
}

// FetchTrace asks the digest's ring siblings for the raw trace bytes. A
// node that is asked about a trace it never saw (failover after a node
// kill, a replica that missed the upload fan-out) uses this to pull the
// bytes and serve instead of 404ing.
func (p *Peers) FetchTrace(ctx context.Context, digest string) (io.ReadCloser, error) {
	return p.fetch(ctx, digest, "/v1/internal/traces/"+digest)
}

func (p *Peers) fetch(ctx context.Context, routeKey, path string) (io.ReadCloser, error) {
	sibs := p.siblings(routeKey)
	if len(sibs) == 0 {
		return nil, fmt.Errorf("cluster: no peers for %s", routeKey)
	}
	p.fetches.Add(1)
	var lastErr error
	for _, m := range sibs {
		rc, err := p.fetchOne(ctx, m, path)
		if err == nil {
			return rc, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	p.fetchFails.Add(1)
	return nil, lastErr
}

func (p *Peers) fetchOne(ctx context.Context, m Member, path string) (io.ReadCloser, error) {
	fctx, cancel := context.WithTimeout(ctx, p.timeout)
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, m.URL+path, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	if id := telemetry.RequestID(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	// The sibling's access log distinguishes a node-to-node fill from a
	// gateway-proxied client request by this hop marker.
	req.Header.Set("X-Charmd-Hop", "peer")
	resp, err := p.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("cluster: peer %s: %s", m.Name, resp.Status)
	}
	return &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}, nil
}

// cancelOnClose releases the per-attempt context when the caller finishes
// streaming the body (a bare defer cancel() would kill the stream early).
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}
