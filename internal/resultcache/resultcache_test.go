package resultcache

import (
	"bytes"
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
)

// testTrace returns the jacobi proxy trace plus its content digest.
func testTrace(t *testing.T) (*trace.Trace, string) {
	t.Helper()
	tr := jacobi.MustTrace(jacobi.DefaultConfig())
	var buf bytes.Buffer
	if err := tracefile.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return tr, tracefile.DigestBytes(buf.Bytes())
}

func counter(reg *telemetry.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

func TestGetExtractsOnceThenHitsMemory(t *testing.T) {
	tr, digest := testTrace(t)
	c, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	s1, err := c.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("memory hit returned a different structure pointer")
	}
	reg := c.Registry()
	if got := counter(reg, "cache.misses"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := counter(reg, "cache.mem_hits"); got != 1 {
		t.Errorf("mem_hits = %d, want 1", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if _, err := os.Stat(c.DiskPath(digest, opt)); err != nil {
		t.Errorf("disk entry missing: %v", err)
	}
	// The extraction-latency histogram recorded the miss.
	snap := reg.Snapshot()
	if snap.Histograms["cache.extract_ms"].Count != 1 {
		t.Errorf("extract_ms count = %d, want 1", snap.Histograms["cache.extract_ms"].Count)
	}
}

// TestConcurrentRequestsCoalesce: K parallel requests for one uncached key
// run Extract exactly once; the followers share the leader's result.
func TestConcurrentRequestsCoalesce(t *testing.T) {
	tr, digest := testTrace(t)
	const K = 8
	gate := make(chan struct{})
	var calls atomic.Int64
	c, err := New(Config{
		Dir: t.TempDir(),
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			calls.Add(1)
			<-gate
			return core.Extract(tr, opt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	results := make([]*core.Structure, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Get(context.Background(), digest, tr, opt)
		}(i)
	}
	// The leader is parked in Extract; wait until every follower has joined
	// its flight before releasing it.
	deadline := time.Now().Add(10 * time.Second)
	for counter(c.Registry(), "cache.coalesced") < K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined the flight", counter(c.Registry(), "cache.coalesced"))
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Errorf("request %d got a different structure", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("Extract ran %d times, want exactly 1", got)
	}
	if got := counter(c.Registry(), "cache.misses"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

// TestFollowerHonorsContext: a follower abandons the flight when its
// context expires while the leader keeps extracting.
func TestFollowerHonorsContext(t *testing.T) {
	tr, digest := testTrace(t)
	gate := make(chan struct{})
	c, err := New(Config{
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			<-gate
			return core.Extract(tr, opt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), digest, tr, opt)
		leaderDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never registered its flight")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, digest, tr, opt); err != context.Canceled {
		t.Errorf("cancelled follower returned %v, want context.Canceled", err)
	}
	close(gate)
	if err := <-leaderDone; err != nil {
		t.Errorf("leader failed: %v", err)
	}
}

// TestDiskStoreSurvivesRestart: a second cache over the same directory
// serves the first cache's work from disk, byte-identical to a fresh
// extraction at a different parallelism.
func TestDiskStoreSurvivesRestart(t *testing.T) {
	tr, digest := testTrace(t)
	dir := t.TempDir()
	opt := core.DefaultOptions()
	opt.Parallelism = 4

	c1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh cache, cold memory, same directory.
	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c2.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	reg := c2.Registry()
	if got := counter(reg, "cache.disk_hits"); got != 1 {
		t.Errorf("disk_hits = %d, want 1", got)
	}
	if got := counter(reg, "cache.misses"); got != 0 {
		t.Errorf("misses = %d, want 0", got)
	}

	// The stored bytes equal a fresh sequential extraction's encoding: the
	// cache never changes what the pipeline would have produced.
	seq := core.DefaultOptions()
	seq.Parallelism = 1
	fresh, err := core.Extract(tr, seq)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := core.EncodeStructure(&want, fresh); err != nil {
		t.Fatal(err)
	}
	stored, err := os.ReadFile(c2.DiskPath(digest, opt))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, want.Bytes()) {
		t.Error("disk store bytes differ from a fresh sequential extraction")
	}
	var again bytes.Buffer
	s.Opts = seq // encoding includes the fingerprint, identical either way
	if err := core.EncodeStructure(&again, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want.Bytes()) {
		t.Error("restart-served structure re-encodes differently from fresh extraction")
	}
}

// TestEvictionFallsBackToDisk: the LRU evicts beyond its bound, and an
// evicted key is served from disk, not re-extracted.
func TestEvictionFallsBackToDisk(t *testing.T) {
	tr, digest := testTrace(t)
	c, err := New(Config{Dir: t.TempDir(), MaxMemEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	optA := core.DefaultOptions()
	optB := core.DefaultOptions()
	optB.Reorder = false // distinct fingerprint, distinct key
	ctx := context.Background()
	if _, err := c.Get(ctx, digest, tr, optA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, digest, tr, optB); err != nil {
		t.Fatal(err)
	}
	reg := c.Registry()
	if got := counter(reg, "cache.evictions"); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	missesBefore := counter(reg, "cache.misses")
	if _, err := c.Get(ctx, digest, tr, optA); err != nil {
		t.Fatal(err)
	}
	if got := counter(reg, "cache.misses"); got != missesBefore {
		t.Errorf("evicted key re-extracted (misses %d -> %d), want disk hit", missesBefore, got)
	}
	if got := counter(reg, "cache.disk_hits"); got != 1 {
		t.Errorf("disk_hits = %d, want 1", got)
	}
}

// TestCorruptDiskEntrySelfHeals: garbage on disk is counted, re-extracted
// and overwritten with a valid entry.
func TestCorruptDiskEntrySelfHeals(t *testing.T) {
	tr, digest := testTrace(t)
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	path := c.DiskPath(digest, opt)
	if err := os.WriteFile(path, []byte("not a structure"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	reg := c.Registry()
	if got := counter(reg, "cache.disk_errors"); got != 1 {
		t.Errorf("disk_errors = %d, want 1", got)
	}
	if got := counter(reg, "cache.misses"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.DecodeStructure(bytes.NewReader(data), tr); err != nil {
		t.Errorf("healed disk entry does not decode: %v", err)
	}
}

// TestTimeoutThenRetryCoalesces: a leader whose context expires mid-flight
// gets its error immediately, and an immediate retry joins the
// still-running flight instead of starting a second extraction.
func TestTimeoutThenRetryCoalesces(t *testing.T) {
	tr, digest := testTrace(t)
	gate := make(chan struct{})
	var calls atomic.Int64
	c, err := New(Config{
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			calls.Add(1)
			<-gate
			return core.Extract(tr, opt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()

	// A pre-cancelled context makes the timeout deterministic: the first Get
	// launches the flight, then immediately abandons it.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(cancelled, digest, tr, opt); err != context.Canceled {
		t.Fatalf("timed-out leader returned %v, want context.Canceled", err)
	}

	// Retry: must coalesce onto the surviving flight, not re-extract.
	retryDone := make(chan error, 1)
	var retried *core.Structure
	go func() {
		var err error
		retried, err = c.Get(context.Background(), digest, tr, opt)
		retryDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for counter(c.Registry(), "cache.coalesced") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("retry never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("Extract ran %d times, want exactly 1", got)
	}
	close(gate)
	if err := <-retryDone; err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if retried == nil {
		t.Fatal("retry returned nil structure")
	}
	if got := counter(c.Registry(), "cache.cancelled"); got != 0 {
		t.Errorf("cancelled = %d, want 0 (the flight itself was never cancelled)", got)
	}
}

// TestDetachedLeaderPopulatesCache: a flight every requester abandoned still
// runs to completion and populates the cache, so a later request is a
// memory hit, not a re-extraction.
func TestDetachedLeaderPopulatesCache(t *testing.T) {
	tr, digest := testTrace(t)
	gate := make(chan struct{})
	var calls atomic.Int64
	c, err := New(Config{
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			calls.Add(1)
			<-gate
			return core.Extract(tr, opt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(cancelled, digest, tr, opt); err != context.Canceled {
		t.Fatalf("abandoning leader returned %v, want context.Canceled", err)
	}
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for c.Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned flight never populated the cache")
		}
		time.Sleep(time.Millisecond)
	}
	s, err := c.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("nil structure from populated cache")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("Extract ran %d times, want exactly 1", got)
	}
	if got := counter(c.Registry(), "cache.mem_hits"); got != 1 {
		t.Errorf("mem_hits = %d, want 1", got)
	}
}

// TestDetachedTimeoutCancelsFlight: the hard cap cancels an orphaned flight
// cooperatively via the extraction context, counted in cache.cancelled.
func TestDetachedTimeoutCancelsFlight(t *testing.T) {
	tr, digest := testTrace(t)
	c, err := New(Config{
		DetachedTimeout: 50 * time.Millisecond,
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			<-opt.Context.Done()
			return nil, opt.Context.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(context.Background(), digest, tr, core.DefaultOptions()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("capped flight returned %v, want context.DeadlineExceeded", err)
	}
	if got := counter(c.Registry(), "cache.cancelled"); got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
}

// TestDiskEntryMode: entries land world-readable (0644), not with
// os.CreateTemp's private 0600.
func TestDiskEntryMode(t *testing.T) {
	tr, digest := testTrace(t)
	c, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	if _, err := c.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(c.DiskPath(digest, opt))
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o644 {
		t.Errorf("disk entry mode = %o, want 644", got)
	}
}

// TestDiskGCEvictsOldestFirst: with MaxDiskBytes set, the
// least-recently-modified entry is evicted first and the newest survives.
func TestDiskGCEvictsOldestFirst(t *testing.T) {
	tr, digest := testTrace(t)
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	optA := core.DefaultOptions()
	optB := core.DefaultOptions()
	optB.Reorder = false
	ctx := context.Background()
	if _, err := c.Get(ctx, digest, tr, optA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, digest, tr, optB); err != nil {
		t.Fatal(err)
	}
	pathA, pathB := c.DiskPath(digest, optA), c.DiskPath(digest, optB)
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(pathA, old, old); err != nil {
		t.Fatal(err)
	}
	infoB, err := os.Stat(pathB)
	if err != nil {
		t.Fatal(err)
	}
	c.maxDiskBytes = infoB.Size() // room for exactly the newer entry
	c.gcDisk()
	if _, err := os.Stat(pathA); !os.IsNotExist(err) {
		t.Errorf("oldest entry survived GC (stat err %v)", err)
	}
	if _, err := os.Stat(pathB); err != nil {
		t.Errorf("newest entry evicted: %v", err)
	}
	if got := counter(c.Registry(), "cache.disk_evictions"); got != 1 {
		t.Errorf("disk_evictions = %d, want 1", got)
	}
}

// TestDiskReadRetriesTransientError: one transient read failure on an
// existing entry is retried, not treated as a miss.
func TestDiskReadRetriesTransientError(t *testing.T) {
	tr, digest := testTrace(t)
	dir := t.TempDir()
	c1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	if _, err := c1.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var reads atomic.Int64
	c2.readFile = func(path string) ([]byte, error) {
		if reads.Add(1) == 1 {
			return nil, errors.New("simulated EIO")
		}
		return os.ReadFile(path)
	}
	if _, err := c2.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	reg := c2.Registry()
	if got := counter(reg, "cache.disk_retries"); got != 1 {
		t.Errorf("disk_retries = %d, want 1", got)
	}
	if got := counter(reg, "cache.disk_hits"); got != 1 {
		t.Errorf("disk_hits = %d, want 1 (retry should have served the entry)", got)
	}
	if got := counter(reg, "cache.misses"); got != 0 {
		t.Errorf("misses = %d, want 0", got)
	}
}

// TestCloseDrainsFlights: Close waits for in-flight extractions, which
// still populate the cache, and subsequent Gets fail with ErrClosed.
func TestCloseDrainsFlights(t *testing.T) {
	tr, digest := testTrace(t)
	gate := make(chan struct{})
	c, err := New(Config{
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			<-gate
			return core.Extract(tr, opt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(cancelled, digest, tr, core.DefaultOptions()); err != context.Canceled {
		t.Fatalf("leader returned %v, want context.Canceled", err)
	}
	closeDone := make(chan error, 1)
	go func() { closeDone <- c.Close(context.Background()) }()
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned %v before the flight drained", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	if err := <-closeDone; err != nil {
		t.Errorf("Close = %v, want nil after clean drain", err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1: drained flight must populate the cache", c.Len())
	}
	if _, err := c.Get(context.Background(), digest, tr, core.DefaultOptions()); err != ErrClosed {
		t.Errorf("post-Close Get = %v, want ErrClosed", err)
	}
}

// TestCloseDeadlineCancelsFlights: past its deadline, Close cancels
// outstanding flights cooperatively instead of hanging.
func TestCloseDeadlineCancelsFlights(t *testing.T) {
	tr, digest := testTrace(t)
	c, err := New(Config{
		DetachedTimeout: -1, // no hard cap: only Close can stop this flight
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			<-opt.Context.Done()
			return nil, opt.Context.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(cancelled, digest, tr, core.DefaultOptions()); err != context.Canceled {
		t.Fatalf("leader returned %v, want context.Canceled", err)
	}
	ctx, cancelClose := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancelClose()
	if err := c.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Close = %v, want context.DeadlineExceeded", err)
	}
	if got := counter(c.Registry(), "cache.cancelled"); got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
}

// TestLookupPeeksMemoryOnly: Lookup serves memory hits without starting a
// flight or touching disk.
func TestLookupPeeksMemoryOnly(t *testing.T) {
	tr, digest := testTrace(t)
	c, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	if _, ok := c.Lookup(digest, opt); ok {
		t.Fatal("Lookup hit an empty cache")
	}
	want, err := c.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup(digest, opt)
	if !ok || got != want {
		t.Errorf("Lookup = (%p, %v), want the cached structure", got, ok)
	}
	if n := counter(c.Registry(), "cache.mem_hits"); n != 1 {
		t.Errorf("mem_hits = %d, want 1", n)
	}
}
