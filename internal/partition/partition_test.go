package partition

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"charmtrace/internal/trace"
)

func atom(c trace.ChareID) Atom { return Atom{Chare: c} }

func TestUnionFindBasics(t *testing.T) {
	s := NewSet()
	a := s.AddAtom(atom(0))
	b := s.AddAtom(atom(1))
	c := s.AddAtom(atom(2))
	if s.SamePartition(a, b) {
		t.Fatal("fresh atoms should be separate")
	}
	s.Union(a, b)
	if !s.SamePartition(a, b) || s.SamePartition(a, c) {
		t.Fatal("union results wrong")
	}
	s.Union(b, c)
	if !s.SamePartition(a, c) {
		t.Fatal("transitive union failed")
	}
}

func TestRuntimeFlagPropagates(t *testing.T) {
	s := NewSet()
	a := s.AddAtom(Atom{Chare: 0, Runtime: false})
	b := s.AddAtom(Atom{Chare: 1, Runtime: true})
	if s.IsRuntime(a) {
		t.Fatal("app atom marked runtime")
	}
	s.Union(a, b)
	if !s.IsRuntime(a) || !s.IsRuntime(b) {
		t.Fatal("merged partition must be runtime if either side was")
	}
}

func TestCycleMergeContractsCycle(t *testing.T) {
	s := NewSet()
	var ids []ID
	for i := 0; i < 4; i++ {
		ids = append(ids, s.AddAtom(atom(trace.ChareID(i))))
	}
	// 0 -> 1 -> 2 -> 0 cycle, 3 hangs off 2.
	s.AddEdge(ids[0], ids[1])
	s.AddEdge(ids[1], ids[2])
	s.AddEdge(ids[2], ids[0])
	s.AddEdge(ids[2], ids[3])
	merged := s.CycleMerge()
	if merged != 2 {
		t.Fatalf("merged = %d, want 2", merged)
	}
	if !s.SamePartition(ids[0], ids[2]) {
		t.Fatal("cycle not contracted")
	}
	if s.SamePartition(ids[0], ids[3]) {
		t.Fatal("non-cycle atom absorbed")
	}
	v := s.View()
	if !v.Acyclic() {
		t.Fatal("graph cyclic after CycleMerge")
	}
}

func TestCycleMergeNoOpOnDAG(t *testing.T) {
	s := NewSet()
	a := s.AddAtom(atom(0))
	b := s.AddAtom(atom(1))
	s.AddEdge(a, b)
	if merged := s.CycleMerge(); merged != 0 {
		t.Fatalf("merged = %d on a DAG, want 0", merged)
	}
}

func TestViewCharesAndOverlap(t *testing.T) {
	s := NewSet()
	a := s.AddAtom(atom(5))
	b := s.AddAtom(atom(3))
	c := s.AddAtom(atom(7))
	s.Union(a, b)
	v := s.View()
	pa := &v.Parts[v.PartOf[a]]
	if len(pa.Chares) != 2 || pa.Chares[0] != 3 || pa.Chares[1] != 5 {
		t.Fatalf("chares = %v, want [3 5] sorted", pa.Chares)
	}
	if !pa.HasChare(5) || pa.HasChare(4) {
		t.Fatal("HasChare wrong")
	}
	pc := &v.Parts[v.PartOf[c]]
	if pa.ChareOverlap(pc) {
		t.Fatal("disjoint partitions reported overlapping")
	}
	d := s.AddAtom(atom(5))
	v = s.View()
	pd := &v.Parts[v.PartOf[d]]
	pa = &v.Parts[v.PartOf[a]]
	if !pa.ChareOverlap(pd) {
		t.Fatal("partitions sharing chare 5 reported disjoint")
	}
}

func TestViewEdgesDedupedAndSelfLoopsDropped(t *testing.T) {
	s := NewSet()
	a := s.AddAtom(atom(0))
	b := s.AddAtom(atom(1))
	c := s.AddAtom(atom(2))
	s.AddEdge(a, c)
	s.AddEdge(b, c)
	s.AddEdge(a, b) // becomes self-loop after union below
	s.Union(a, b)
	v := s.View()
	if got := v.G.NumEdges(); got != 1 {
		t.Fatalf("view edges = %d, want 1 (dedup + self-loop drop)", got)
	}
}

func TestLeapsAndPartsAtLeap(t *testing.T) {
	s := NewSet()
	a := s.AddAtom(atom(0))
	b := s.AddAtom(atom(1))
	c := s.AddAtom(atom(2))
	d := s.AddAtom(atom(3))
	s.AddEdge(a, b)
	s.AddEdge(b, c)
	s.AddEdge(a, d)
	v := s.View()
	leap, maxLeap := v.Leaps()
	if maxLeap != 2 {
		t.Fatalf("maxLeap = %d, want 2", maxLeap)
	}
	if leap[v.PartOf[d]] != 1 || leap[v.PartOf[c]] != 2 {
		t.Fatalf("leaps wrong: %v", leap)
	}
	byLeap := v.PartsAtLeap()
	if len(byLeap) != 3 || len(byLeap[0]) != 1 || len(byLeap[1]) != 2 || len(byLeap[2]) != 1 {
		t.Fatalf("PartsAtLeap shape wrong: %v", byLeap)
	}
}

func TestMergePlan(t *testing.T) {
	s := NewSet()
	a := s.AddAtom(atom(0))
	b := s.AddAtom(atom(1))
	c := s.AddAtom(atom(2))
	plan := s.NewMergePlan()
	plan.Schedule(a, b)
	plan.Schedule(b, c)
	plan.Schedule(a, c) // already merged by then: no extra count
	if plan.Len() != 3 {
		t.Fatalf("plan len = %d, want 3", plan.Len())
	}
	if got := plan.Apply(); got != 2 {
		t.Fatalf("Apply merged %d, want 2", got)
	}
	if !s.SamePartition(a, c) {
		t.Fatal("plan did not merge")
	}
	if plan.Len() != 0 {
		t.Fatal("plan not reset after Apply")
	}
}

// Property: after CycleMerge the view is always acyclic, regardless of the
// random edge/union history.
func TestCycleMergeAlwaysYieldsDAG(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet()
		n := 3 + rng.Intn(30)
		ids := make([]ID, n)
		for i := range ids {
			ids[i] = s.AddAtom(atom(trace.ChareID(rng.Intn(6))))
		}
		for i := 0; i < 3*n; i++ {
			s.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)])
		}
		for i := 0; i < n/4; i++ {
			s.Union(ids[rng.Intn(n)], ids[rng.Intn(n)])
		}
		s.CycleMerge()
		return s.View().Acyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every atom appears in exactly one partition of a view, and the
// partition's chare list covers exactly its atoms' chares.
func TestViewCoversAllAtoms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet()
		n := 1 + rng.Intn(40)
		ids := make([]ID, n)
		for i := range ids {
			ids[i] = s.AddAtom(atom(trace.ChareID(rng.Intn(8))))
		}
		for i := 0; i < n/3; i++ {
			s.Union(ids[rng.Intn(n)], ids[rng.Intn(n)])
		}
		v := s.View()
		count := 0
		for pi := range v.Parts {
			p := &v.Parts[pi]
			count += len(p.Atoms)
			for _, a := range p.Atoms {
				if v.PartOf[a] != int32(pi) {
					return false
				}
				if !p.HasChare(s.AtomChare(a)) {
					return false
				}
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestViewConcurrentReaders: a View is safe for concurrent readers — the
// parallel extraction engine hands one snapshot to many workers. The lazy
// Leaps computation is the only mutable state; every reader must observe
// the same result. Run under -race in the tier-1 verify recipe.
func TestViewConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewSet()
	const n = 60
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = s.AddAtom(atom(trace.ChareID(rng.Intn(8))))
	}
	// Forward-only edges keep the partition graph acyclic so Leaps is defined.
	for i := 0; i < 2*n; i++ {
		a, b := rng.Intn(n-1), 0
		b = a + 1 + rng.Intn(n-1-a)
		s.AddEdge(ids[a], ids[b])
	}
	for i := 0; i < n/4; i++ {
		a := rng.Intn(n - 1)
		s.Union(ids[a], ids[a+1])
	}
	s.CycleMerge()
	v := s.View()

	wantLeap, wantMax := func() ([]int32, int32) {
		// Compute the expected answer on a second snapshot of the same set,
		// untouched by the concurrent readers.
		return s.View().Leaps()
	}()

	const readers = 8
	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		go func() {
			leap, max := v.Leaps()
			if max != wantMax {
				errc <- fmt.Errorf("max leap %d, want %d", max, wantMax)
				return
			}
			for p := range leap {
				if leap[p] != wantLeap[p] {
					errc <- fmt.Errorf("partition %d leap %d, want %d", p, leap[p], wantLeap[p])
					return
				}
			}
			if !v.Acyclic() {
				errc <- fmt.Errorf("view not acyclic")
				return
			}
			byLeap := v.PartsAtLeap()
			total := 0
			for _, ps := range byLeap {
				total += len(ps)
			}
			if total != len(v.Parts) {
				errc <- fmt.Errorf("PartsAtLeap covers %d of %d parts", total, len(v.Parts))
				return
			}
			for pi := range v.Parts {
				p := &v.Parts[pi]
				for _, c := range p.Chares {
					if !p.HasChare(c) {
						errc <- fmt.Errorf("partition %d missing own chare %d", pi, c)
						return
					}
				}
			}
			errc <- nil
		}()
	}
	for r := 0; r < readers; r++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
