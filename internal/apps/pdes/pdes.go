// Package pdes is the Section 7.1 mini-app: a parallel discrete event
// simulation whose simulator chares exchange event messages for several
// rounds and then call a completion detector when finished. The call to the
// detector is control flow through the runtime that the tracing framework
// does not record, so the recovered logical structure has nothing to order
// the detector phase after the simulation phase — both cover the same
// global steps (Figure 24).
package pdes

import (
	"math/rand"

	"charmtrace/internal/sim"
	"charmtrace/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// Chares is the number of simulator chares (the paper used 16).
	Chares int
	// NumPE is the processor count (the paper used 4).
	NumPE int
	// Rounds is the number of event-exchange rounds each chare performs.
	Rounds int
	// EventCompute is the cost of processing one simulated event.
	EventCompute sim.Time
	// Seed drives the event-target draw and network jitter.
	Seed int64
	// TraceDetectorCall records the completion-detector invocation (the
	// dependency the paper's trace was missing); leave false to reproduce
	// Figure 24.
	TraceDetectorCall bool
	// UseQuiescence drives the detector from the runtime's quiescence
	// detection instead of explicit per-chare reports: the most faithful
	// model of a Charm++ completion-detection library, whose triggering
	// dependency is entirely runtime-internal.
	UseQuiescence bool
}

// DefaultConfig is the paper's 16-chare, 4-process run.
func DefaultConfig() Config {
	return Config{Chares: 16, NumPE: 4, Rounds: 5, EventCompute: 200, Seed: 1}
}

// simState is per-simulator-chare state.
type simState struct {
	sent int
	rng  *rand.Rand
}

// detState is per-detector-chare state.
type detState struct {
	reports int // local simulator chares reported
	gathers int // per-PE completions gathered (detector 0 only)
}

// Trace runs the mini-app and returns its event trace.
func Trace(cfg Config) (*trace.Trace, error) {
	simCfg := sim.DefaultConfig(cfg.NumPE)
	simCfg.Seed = cfg.Seed
	rt := sim.New(simCfg)

	sims := rt.NewArray("pdes", cfg.Chares, nil, func(i int) any {
		return &simState{rng: rand.New(rand.NewSource(cfg.Seed + int64(i)))}
	})
	// One completion-detector chare per PE, as a chare group.
	det := rt.NewArray("detector", cfg.NumPE, func(i int) int { return i }, func(i int) any {
		return &detState{}
	})

	var handleEvent, detReport, detGather, detRoot sim.EntryRef

	// Simulator chares: process an event, schedule a new one on a random
	// chare until the round budget is spent, then report to the local
	// completion detector (unless quiescence detection drives it).
	handleEvent = sims.Register("handleEvent", func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*simState)
		ctx.Compute(cfg.EventCompute)
		if st.sent < cfg.Rounds {
			st.sent++
			target := st.rng.Intn(cfg.Chares)
			ctx.Send(sims.At(target), handleEvent, nil)
			return
		}
		if cfg.UseQuiescence {
			return // the runtime's quiescence detection notices on its own
		}
		// Completion: invoke the detector. In stock Charm++ this call is
		// internal to the completion-detection library and does not appear
		// in the trace.
		if cfg.TraceDetectorCall {
			ctx.Send(det.At(ctx.PE()), detReport, nil)
		} else {
			ctx.SendUntraced(det.At(ctx.PE()), detReport, nil)
		}
	})
	// Detector: count local reports; when all local simulator chares have
	// reported, notify detector 0, which announces completion among the
	// detector chares.
	perPE := make([]int, cfg.NumPE)
	for i := 0; i < cfg.Chares; i++ {
		perPE[sims.PEOf(i)]++
	}
	detReport = det.Register("report", func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*detState)
		st.reports++
		ctx.Compute(20)
		if st.reports == perPE[ctx.PE()] {
			ctx.Send(det.At(0), detGather, nil)
		}
	})
	detGather = det.Register("gather", func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*detState)
		st.gathers++
		ctx.Compute(20)
		if st.gathers == cfg.NumPE {
			ctx.Broadcast(detRoot, nil)
		}
	})
	detRoot = det.Register("done", func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(20)
	})
	qdFired := det.Register("qdFired", func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(20)
		ctx.Broadcast(detRoot, nil)
	})

	for i := 0; i < cfg.Chares; i++ {
		rt.Spawn(sims.At(i), handleEvent, nil)
	}
	if cfg.UseQuiescence {
		// The library's trigger is the runtime's quiescence detection; the
		// detectors then run their (traced) announcement among themselves.
		rt.OnQuiescence(det.At(0), qdFired, nil)
	}
	return rt.Run()
}

// MustTrace is Trace that panics on error.
func MustTrace(cfg Config) *trace.Trace {
	t, err := Trace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
