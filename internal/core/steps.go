package core

import (
	"container/heap"
	"runtime"
	"sort"
	"sync"

	"charmtrace/internal/partition"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// fragment is a serial block's run of events inside one phase. Reordering
// (§3.2.1) permutes fragments per chare; events inside a fragment keep their
// recorded order, since the order within a serial block is determined
// explicitly by the developer.
type fragment struct {
	block  trace.BlockID
	chare  trace.ChareID
	events []trace.EventID
	wInit  int32
	idx    int // position within the phase's fragment list
}

// scratch holds per-event working arrays reused across every phase of one
// extraction. Phases touch disjoint event sets, each cell is initialized by
// its phase before being read, and cross-phase lookups are guarded by
// PhaseOf — so the arrays never need clearing, and the parallel ordering
// stage can share one scratch (distinct phases write distinct indices).
type scratch struct {
	w       []int32
	frag    []*fragment
	sendDep []trace.EventID
	indeg   []int32
	next    [][]trace.EventID
}

func newScratch(n int) *scratch {
	return &scratch{
		w:       make([]int32, n),
		frag:    make([]*fragment, n),
		sendDep: make([]trace.EventID, n),
		indeg:   make([]int32, n),
		next:    make([][]trace.EventID, n),
	}
}

// assignSteps runs the ordering stage (§3.2): per-phase w-clock computation,
// per-chare fragment reordering, local step assignment, and global offsets
// from the phase DAG.
func assignSteps(tr *trace.Trace, opt Options, a *atoms, t *tel) *Structure {
	v := a.set.View()
	if !v.Acyclic() {
		a.set.CycleMerge()
		v = a.set.View()
	}
	leap, _ := v.Leaps()

	s := &Structure{
		Trace:       tr,
		Opts:        opt,
		Phases:      make([]Phase, len(v.Parts)),
		DAG:         v.G,
		PhaseOf:     make([]int32, len(tr.Events)),
		LocalStep:   make([]int32, len(tr.Events)),
		Step:        make([]int32, len(tr.Events)),
		chareEvents: make([][]trace.EventID, len(tr.Chares)),
	}
	for i := range s.PhaseOf {
		s.PhaseOf[i] = -1
		s.LocalStep[i] = -1
		s.Step[i] = -1
	}

	// chareSeq collects, per phase, the per-chare ordered event sequences so
	// the final chare timelines can be stitched in phase order.
	chareSeq := make([]map[trace.ChareID][]trace.EventID, len(v.Parts))

	// PhaseOf must be complete before any phase is stepped: stepPhase
	// consults it to keep cross-phase sends out of a phase's dependencies.
	for pi := range v.Parts {
		for _, atomID := range v.Parts[pi].Atoms {
			for _, e := range a.set.Atom(atomID).Events {
				s.PhaseOf[e] = int32(pi)
			}
		}
	}

	sc := newScratch(len(tr.Events))

	// orderPhase handles one phase; phases touch disjoint events (and
	// disjoint scratch cells), so the stage parallelizes cleanly (§3.3:
	// "this stage could be parallelized").
	orderPhase := func(pi int) {
		part := &v.Parts[pi]
		ph := &s.Phases[pi]
		ph.ID = int32(pi)
		ph.Runtime = part.Runtime
		ph.Leap = leap[pi]
		ph.Chares = append([]trace.ChareID(nil), part.Chares...)

		events := phaseEvents(tr, a, part.Atoms)
		phaseW(tr, opt, events, a, sc, s.PhaseOf, int32(pi))
		placed := orderFragments(tr, opt, buildFragments(tr, events, a, sc), sc, s.PhaseOf, int32(pi))
		order, maxLocal := stepPhase(tr, events, placed, s.PhaseOf, int32(pi), s.LocalStep, sc)
		chareSeq[pi] = order
		ph.MaxLocalStep = maxLocal

		ph.Events = events
		sort.Slice(ph.Events, func(i, j int) bool {
			ei, ej := ph.Events[i], ph.Events[j]
			if s.LocalStep[ei] != s.LocalStep[ej] {
				return s.LocalStep[ei] < s.LocalStep[ej]
			}
			if tr.Events[ei].Chare != tr.Events[ej].Chare {
				return tr.Events[ei].Chare < tr.Events[ej].Chare
			}
			return ei < ej
		})
	}
	// Pool size: Options.Parallelism, with the deprecated Parallel flag
	// keeping its historical meaning (GOMAXPROCS workers) when Parallelism
	// selects a sequential run.
	workers := opt.Workers()
	if workers == 1 && opt.Parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	recording := t.rec.Enabled()
	parent := t.cur
	if t.prog != nil {
		// Phases are the ordering stage's work items: /debug/flights shows
		// "phases ordered / total" while step assignment runs.
		t.prog.StartLoop(int64(len(v.Parts)))
	}
	// tracedOrderPhase wraps one phase with a span on the given worker
	// lane: per-phase spans are what expose ordering-stage imbalance (one
	// huge phase pinning a lane while the others drain) in a self-trace.
	// Phases are the ordering stage's worker chunks: each one polls the
	// extraction context first, so cancellation skips the remaining phases
	// and Extract discards the partially stepped structure.
	tracedOrderPhase := func(pi, lane int) {
		if t.cancelled() {
			return
		}
		if recording {
			sp := t.rec.StartSpan("order-phase", parent, telemetry.Lane(lane),
				telemetry.Int("phase", int64(pi)),
				telemetry.Int("atoms", int64(len(v.Parts[pi].Atoms))))
			defer t.rec.EndSpan(sp)
		}
		orderPhase(pi)
		if t.prog != nil {
			t.prog.Add(1)
		}
	}
	if workers > 1 && len(v.Parts) > 1 {
		var wg sync.WaitGroup
		// The semaphore slots double as worker-lane numbers, so each
		// phase's span lands on the lane of the worker that ran it.
		sem := make(chan int, workers)
		for lane := 1; lane <= workers; lane++ {
			sem <- lane
		}
		for pi := range v.Parts {
			pi := pi
			wg.Add(1)
			lane := <-sem
			go func() {
				defer func() {
					sem <- lane
					wg.Done()
				}()
				tracedOrderPhase(pi, lane)
			}()
		}
		wg.Wait()
	} else {
		for pi := range v.Parts {
			tracedOrderPhase(pi, 1)
		}
	}

	computeOffsets(s)
	for e := range tr.Events {
		if s.PhaseOf[e] >= 0 {
			s.Step[e] = s.Phases[s.PhaseOf[e]].Offset + s.LocalStep[e]
		}
	}
	stitchChareTimelines(s, chareSeq)
	return s
}

// phaseEvents gathers a partition's events, sorted by (time, ID).
func phaseEvents(tr *trace.Trace, a *atoms, atomIDs []partition.ID) []trace.EventID {
	var events []trace.EventID
	for _, id := range atomIDs {
		events = append(events, a.set.Atom(id).Events...)
	}
	sort.Slice(events, func(i, j int) bool { return timeOrderLess(tr, events[i], events[j]) })
	return events
}

// timeOrderLess orders events by time, sends before receives at equal time
// (a message's send never follows its receive), then by ID.
func timeOrderLess(tr *trace.Trace, a, b trace.EventID) bool {
	ea, eb := &tr.Events[a], &tr.Events[b]
	if ea.Time != eb.Time {
		return ea.Time < eb.Time
	}
	if ea.Kind != eb.Kind {
		return ea.Kind == trace.Send
	}
	return a < b
}

// phaseW computes the idealized-replay clock w (§3.2.1) for a phase's
// events, which must be sorted by timeOrderLess.
//
// Task-based rule: the phase's initial sends get w = 0; subsequent sends of
// a serial block count up; a receive gets w_send + 1; sends after a receive
// count up from the receive's w.
//
// Message-passing rule (Figure 9): a receive still gets w_send + 1, but a
// send is pinned after every receive that physically preceded it on its
// timeline: w_send = 1 + max{w_recv | recv before send}, so receives may be
// reordered around the send while the send keeps its position.
func phaseW(tr *trace.Trace, opt Options, events []trace.EventID, a *atoms, sc *scratch, phaseOf []int32, pi int32) {
	w := sc.w
	lastW := make(map[trace.BlockID]int32)    // task-based: last w per serial block
	maxRecvW := make(map[trace.ChareID]int32) // message-passing: max receive w per timeline
	for _, e := range events {
		ev := &tr.Events[e]
		var val int32
		if ev.Kind == trace.Recv {
			val = 0
			// The matching send is in this phase (Alg. 1 merges endpoints)
			// and was processed earlier (sends precede receives in time
			// order); the guard covers synthetic cross-phase records.
			if send := tr.SendOf(ev.Msg); send != trace.NoEvent && phaseOf[send] == pi {
				val = w[send] + 1
			}
			if !opt.MessagePassing {
				if lw, ok := lastW[a.canonicalBlock(ev.Block)]; ok && lw+1 > val {
					val = lw + 1
				}
			}
			if opt.MessagePassing {
				if cur, ok := maxRecvW[ev.Chare]; !ok || val > cur {
					maxRecvW[ev.Chare] = val
				}
			}
		} else { // Send
			if opt.MessagePassing {
				if mr, ok := maxRecvW[ev.Chare]; ok {
					val = mr + 1
				}
			} else if lw, ok := lastW[a.canonicalBlock(ev.Block)]; ok {
				val = lw + 1
			}
		}
		w[e] = val
		lastW[a.canonicalBlock(ev.Block)] = val
	}
}

// buildFragments groups a phase's events by serial block, preserving
// per-block recorded order.
func buildFragments(tr *trace.Trace, events []trace.EventID, a *atoms, sc *scratch) []*fragment {
	byBlock := make(map[trace.BlockID]*fragment)
	var frags []*fragment
	for _, e := range events {
		ev := &tr.Events[e]
		// Absorbed block pairs (§2.1) order as one serial block.
		canon := a.canonicalBlock(ev.Block)
		f, ok := byBlock[canon]
		if !ok {
			f = &fragment{block: canon, chare: ev.Chare, wInit: sc.w[e], idx: len(frags)}
			byBlock[canon] = f
			frags = append(frags, f)
		}
		f.events = append(f.events, e)
		sc.frag[e] = f
	}
	return frags
}

// orderFragments orders a phase's fragments (§3.2.1): by the w of the
// fragment's initial event, ties broken by the chare that invoked the serial
// block, then by comparing source fragments one step back (Figure 7), and
// finally by physical time. Without Reorder, fragments order by physical
// time. The placement respects every intra-phase message dependency between
// fragments (a dependency-aware traversal whose ready set is prioritized by
// the comparator); the returned slice is the global placement order, which
// step assignment uses as its scheduling priority.
func orderFragments(tr *trace.Trace, opt Options, frags []*fragment, sc *scratch, phaseOf []int32, pi int32) []*fragment {
	// invoker returns the chare that invoked a fragment: the chare of the
	// send matching its initial receive, or NoChare for send-initial
	// (phase-source) fragments.
	invoker := func(f *fragment) trace.ChareID {
		ev := &tr.Events[f.events[0]]
		if ev.Kind != trace.Recv {
			return trace.NoChare
		}
		if send := tr.SendOf(ev.Msg); send != trace.NoEvent {
			return tr.Events[send].Chare
		}
		return trace.NoChare
	}
	// sourceFrag returns the fragment containing the send that invoked f,
	// if it is in the same phase.
	sourceFrag := func(f *fragment) *fragment {
		ev := &tr.Events[f.events[0]]
		if ev.Kind != trace.Recv {
			return nil
		}
		if send := tr.SendOf(ev.Msg); send != trace.NoEvent && phaseOf[send] == pi {
			return sc.frag[send]
		}
		return nil
	}
	// rank orders invoking chares: by the caller-supplied topology rank
	// when one is given (the paper's suggestion that data-topology-aware
	// tie-breaking is more intuitive), by chare ID otherwise.
	rank := func(c trace.ChareID) int32 {
		if opt.ChareRank != nil && c >= 0 && int(c) < len(opt.ChareRank) {
			return opt.ChareRank[c]
		}
		return int32(c)
	}
	var cmp func(f, g *fragment, depth int) int
	cmp = func(f, g *fragment, depth int) int {
		if f.wInit != g.wInit {
			if f.wInit < g.wInit {
				return -1
			}
			return 1
		}
		fi, gi := invoker(f), invoker(g)
		if rf, rg := rank(fi), rank(gi); rf != rg {
			if rf < rg {
				return -1
			}
			return 1
		}
		if fi != gi {
			if fi < gi {
				return -1
			}
			return 1
		}
		if depth < 4 {
			sf, sg := sourceFrag(f), sourceFrag(g)
			if sf != nil && sg != nil && sf != sg {
				if c := cmp(sf, sg, depth+1); c != 0 {
					return c
				}
			}
		}
		return 0
	}
	less := func(f, g *fragment) bool {
		if opt.Reorder {
			if c := cmp(f, g, 0); c != 0 {
				return c < 0
			}
		}
		tf, tg := tr.Events[f.events[0]].Time, tr.Events[g.events[0]].Time
		if tf != tg {
			return tf < tg
		}
		return f.block < g.block
	}

	// Fragments are placed in a single phase-wide order that respects every
	// intra-phase message dependency between fragments: a Kahn traversal
	// whose ready set is prioritized by the paper's comparator. A plain sort
	// can invert two same-w fragments against an explicit dependency (the
	// invoker tie-break knows nothing about messages between the tied
	// blocks); the dependency-aware traversal only applies the comparator
	// among fragments whose predecessors are already placed.
	indeg := make([]int, len(frags))
	succ := make([][]int, len(frags))
	seenEdge := make(map[int64]struct{})
	for gi, f := range frags {
		for _, e := range f.events {
			ev := &tr.Events[e]
			if ev.Kind != trace.Recv {
				continue
			}
			send := tr.SendOf(ev.Msg)
			if send == trace.NoEvent || phaseOf[send] != pi {
				continue
			}
			sf := sc.frag[send]
			if sf == f {
				continue
			}
			si := sf.idx
			key := int64(si)<<32 | int64(uint32(gi))
			if _, dup := seenEdge[key]; dup {
				continue
			}
			seenEdge[key] = struct{}{}
			succ[si] = append(succ[si], gi)
			indeg[gi]++
		}
	}
	ready := &fragHeap{less: less}
	for i, f := range frags {
		if indeg[i] == 0 {
			ready.push(f)
		}
	}
	out := make([]*fragment, 0, len(frags))
	for len(out) < len(frags) {
		if ready.Len() == 0 {
			// Dependency cycle among fragments (pathological multi-receive
			// blocks): release the earliest-starting blocked fragment. Step
			// assignment only treats intra-fragment and message edges as
			// hard, so a released cycle cannot corrupt the steps.
			var best *fragment
			for i, f := range frags {
				if indeg[i] > 0 && (best == nil || less(f, best)) {
					best = f
				}
			}
			indeg[best.idx] = 0
			ready.push(best)
			continue
		}
		f := ready.pop()
		out = append(out, f)
		for _, gi := range succ[f.idx] {
			indeg[gi]--
			if indeg[gi] == 0 {
				ready.push(frags[gi])
			}
		}
	}
	return out
}

// fragHeap is a priority queue of fragments under a closure comparator.
type fragHeap struct {
	items []*fragment
	less  func(a, b *fragment) bool
}

func (h *fragHeap) Len() int           { return len(h.items) }
func (h *fragHeap) Less(i, j int) bool { return h.less(h.items[i], h.items[j]) }
func (h *fragHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *fragHeap) Push(x any)         { h.items = append(h.items, x.(*fragment)) }
func (h *fragHeap) Pop() any {
	old := h.items
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return f
}
func (h *fragHeap) push(f *fragment) { heap.Push(h, f) }
func (h *fragHeap) pop() *fragment   { return heap.Pop(h).(*fragment) }

// stepPhase assigns local logical steps within a phase and derives the
// final per-chare event order. The phase's initial sources get step 0;
// every other event gets one over the maximum of the events that
// happened-before it — the prior event along its chare's timeline and its
// matching send when it is a receive.
//
// The hard constraints are the intra-fragment event order and the message
// edges; both point strictly forward in (time, kind) order, so their union
// is always acyclic and the assignment never needs a fallback. The fragment
// placement computed by orderFragments acts as the scheduling priority:
// ready events pop in placement order, which keeps each fragment's events
// together whenever dependencies permit. The pop order restricted to one
// chare IS that chare's timeline, so per-chare steps are strictly
// increasing and every receive lands after its send, by construction.
func stepPhase(tr *trace.Trace, events []trace.EventID, placed []*fragment, phaseOf []int32, pi int32, localStep []int32, sc *scratch) (map[trace.ChareID][]trace.EventID, int32) {
	// Priority of each event: (fragment placement, position in fragment).
	type prio struct {
		place int32
		pos   int32
	}
	prioOf := make(map[trace.EventID]prio, len(events))
	for pl, f := range placed {
		for pos, e := range f.events {
			prioOf[e] = prio{int32(pl), int32(pos)}
		}
	}
	// Hard edges: consecutive events of a fragment, and send -> receive.
	for _, e := range events {
		sc.sendDep[e] = trace.NoEvent
		sc.indeg[e] = 0
		sc.next[e] = sc.next[e][:0]
	}
	addEdge := func(from, to trace.EventID) {
		sc.next[from] = append(sc.next[from], to)
		sc.indeg[to]++
	}
	for _, f := range placed {
		for i := 0; i+1 < len(f.events); i++ {
			addEdge(f.events[i], f.events[i+1])
		}
	}
	for _, e := range events {
		ev := &tr.Events[e]
		if ev.Kind != trace.Recv {
			continue
		}
		if send := tr.SendOf(ev.Msg); send != trace.NoEvent && phaseOf[send] == pi {
			sc.sendDep[e] = send
			addEdge(send, e)
		}
	}

	// Deterministic priority queue over ready events.
	h := &eventPrioHeap{prio: func(a, b trace.EventID) bool {
		pa, pb := prioOf[a], prioOf[b]
		if pa.place != pb.place {
			return pa.place < pb.place
		}
		if pa.pos != pb.pos {
			return pa.pos < pb.pos
		}
		return a < b
	}}
	for _, e := range events {
		if sc.indeg[e] == 0 {
			h.push(e)
		}
	}
	order := make(map[trace.ChareID][]trace.EventID)
	var maxStep int32
	for h.Len() > 0 {
		e := h.pop()
		ev := &tr.Events[e]
		st := int32(0)
		if seq := order[ev.Chare]; len(seq) > 0 {
			if p := localStep[seq[len(seq)-1]]; p+1 > st {
				st = p + 1
			}
		}
		if sd := sc.sendDep[e]; sd != trace.NoEvent {
			if p := localStep[sd]; p+1 > st {
				st = p + 1
			}
		}
		localStep[e] = st
		if st > maxStep {
			maxStep = st
		}
		order[ev.Chare] = append(order[ev.Chare], e)
		for _, n := range sc.next[e] {
			sc.indeg[n]--
			if sc.indeg[n] == 0 {
				h.push(n)
			}
		}
	}
	return order, maxStep
}

// eventPrioHeap is a priority queue of events under a closure comparator.
type eventPrioHeap struct {
	items []trace.EventID
	prio  func(a, b trace.EventID) bool
}

func (h *eventPrioHeap) Len() int           { return len(h.items) }
func (h *eventPrioHeap) Less(i, j int) bool { return h.prio(h.items[i], h.items[j]) }
func (h *eventPrioHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *eventPrioHeap) Push(x any)         { h.items = append(h.items, x.(trace.EventID)) }
func (h *eventPrioHeap) Pop() any {
	old := h.items
	n := len(old)
	e := old[n-1]
	h.items = old[:n-1]
	return e
}
func (h *eventPrioHeap) push(e trace.EventID) { heap.Push(h, e) }
func (h *eventPrioHeap) pop() trace.EventID   { return heap.Pop(h).(trace.EventID) }

// computeOffsets assigns each phase its global step offset: the maximum over
// phase-DAG predecessors of (their offset + their max local step + 1). An
// implementation refinement guards the per-chare uniqueness of global steps:
// if two phases sharing a chare remain unordered and their global spans
// collide, an order edge (earlier initial event first) is inserted and
// offsets are recomputed.
func computeOffsets(s *Structure) {
	for round := 0; round < 64; round++ {
		order, ok := s.DAG.TopoSort()
		if !ok {
			// Cannot happen: edges are only added between unordered phases.
			break
		}
		for i := range s.Phases {
			s.Phases[i].Offset = 0
		}
		for _, p := range order {
			ph := &s.Phases[p]
			for _, q := range s.DAG.Adj[p] {
				if need := ph.Offset + ph.MaxLocalStep + 1; s.Phases[q].Offset < need {
					s.Phases[q].Offset = need
				}
			}
		}
		if !fixChareCollision(s) {
			return
		}
	}
}

// fixChareCollision finds one pair of unordered phases that share a chare
// and collide in global steps, adds an order edge, and reports whether it
// did. Phases connected in the DAG can never collide (the offset rule
// separates them), so the added edge cannot create a cycle.
func fixChareCollision(s *Structure) bool {
	type span struct {
		phase  int32
		lo, hi int32
	}
	byChare := make(map[trace.ChareID][]span)
	for i := range s.Phases {
		ph := &s.Phases[i]
		lo, hi := ph.GlobalSpan()
		for _, c := range ph.Chares {
			byChare[c] = append(byChare[c], span{int32(i), lo, hi})
		}
	}
	for _, spans := range byChare {
		// Sweep by span start: a collision exists iff a span begins before
		// the previous maximum end.
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].lo != spans[j].lo {
				return spans[i].lo < spans[j].lo
			}
			return spans[i].phase < spans[j].phase
		})
		maxIdx := 0
		for i := 1; i < len(spans); i++ {
			a, b := spans[maxIdx], spans[i]
			if b.lo > a.hi {
				if b.hi > a.hi {
					maxIdx = i
				}
				continue
			}
			// Colliding spans imply the phases are unordered.
			first, second := a.phase, b.phase
			if phaseStartTime(s, second) < phaseStartTime(s, first) {
				first, second = second, first
			}
			s.DAG.AddEdge(first, second)
			return true
		}
	}
	return false
}

// phaseStartTime returns the earliest event time of a phase.
func phaseStartTime(s *Structure, p int32) trace.Time {
	best := trace.Time(1<<62 - 1)
	for _, e := range s.Phases[p].Events {
		if t := s.Trace.Events[e].Time; t < best {
			best = t
		}
	}
	return best
}

// stitchChareTimelines concatenates each chare's per-phase ordered event
// sequences in phase order (offset, then leap, then ID).
func stitchChareTimelines(s *Structure, chareSeq []map[trace.ChareID][]trace.EventID) {
	type ph struct {
		idx int32
		seq []trace.EventID
	}
	byChare := make(map[trace.ChareID][]ph)
	for pi, seqs := range chareSeq {
		for c, seq := range seqs {
			byChare[c] = append(byChare[c], ph{int32(pi), seq})
		}
	}
	for c, list := range byChare {
		sort.Slice(list, func(i, j int) bool {
			pi, pj := &s.Phases[list[i].idx], &s.Phases[list[j].idx]
			if pi.Offset != pj.Offset {
				return pi.Offset < pj.Offset
			}
			if pi.Leap != pj.Leap {
				return pi.Leap < pj.Leap
			}
			return list[i].idx < list[j].idx
		})
		var seq []trace.EventID
		for _, p := range list {
			seq = append(seq, p.seq...)
		}
		s.chareEvents[c] = seq
	}
}
