package query

import (
	"net/url"
	"strconv"
	"strings"
)

// paramNames are the URL query parameters the GET retrofit recognizes on
// charmd's structure/steps/metrics endpoints. Each maps onto one Spec
// field; validation errors name the parameter.
var paramNames = []string{"phase", "chares", "steps", "group_by", "aggs", "fields", "limit", "page"}

// SpecFromParams derives a Spec for the given select kind from URL
// parameters (?phase=1,2&chares=0,3&steps=10..40&limit=50&page=<cursor>).
// The second result reports whether any engine parameter was present at
// all — absent, GET endpoints keep their legacy full responses.
func SpecFromParams(sel string, q url.Values) (Spec, bool, error) {
	spec := Spec{Select: sel}
	used := false
	for _, name := range paramNames {
		if q.Get(name) != "" {
			used = true
		}
	}
	if !used {
		return spec, false, nil
	}

	var err error
	if spec.Filter.Phases, err = parseIDList("phase", q.Get("phase")); err != nil {
		return spec, true, err
	}
	if spec.Filter.Chares, err = parseIDList("chares", q.Get("chares")); err != nil {
		return spec, true, err
	}
	if v := q.Get("steps"); v != "" {
		r, err := parseStepRange(v)
		if err != nil {
			return spec, true, err
		}
		spec.Filter.Steps = r
	}
	spec.GroupBy = q.Get("group_by")
	if v := q.Get("aggs"); v != "" {
		spec.Aggregates = splitList(v)
	}
	if v := q.Get("fields"); v != "" {
		spec.Fields = splitList(v)
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return spec, true, specErrf("limit", "not an integer: %q", v)
		}
		spec.Limit = n
	}
	spec.Cursor = q.Get("page")
	if err := spec.Validate(); err != nil {
		return spec, true, err
	}
	return spec, true, nil
}

func splitList(v string) []string {
	parts := strings.Split(v, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseIDList(param, v string) ([]int32, error) {
	if v == "" {
		return nil, nil
	}
	var out []int32
	for _, p := range splitList(v) {
		n, err := strconv.ParseInt(p, 10, 32)
		if err != nil {
			return nil, specErrf(param, "not an id list: %q", v)
		}
		out = append(out, int32(n))
	}
	return out, nil
}

// parseStepRange accepts "from..to", "from-to" or a single step "n".
func parseStepRange(v string) (*StepRange, error) {
	sep := ".."
	i := strings.Index(v, sep)
	if i < 0 {
		sep = "-"
		i = strings.Index(v, sep)
	}
	if i < 0 {
		n, err := strconv.ParseInt(v, 10, 32)
		if err != nil {
			return nil, specErrf("steps", "want from..to or a single step, got %q", v)
		}
		return &StepRange{From: int32(n), To: int32(n)}, nil
	}
	from, err1 := strconv.ParseInt(v[:i], 10, 32)
	to, err2 := strconv.ParseInt(v[i+len(sep):], 10, 32)
	if err1 != nil || err2 != nil {
		return nil, specErrf("steps", "want from..to, got %q", v)
	}
	return &StepRange{From: int32(from), To: int32(to)}, nil
}
