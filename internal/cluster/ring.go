// Package cluster is charmd's scale-out layer: a consistent-hash ring over
// a static member list, health tracking for those members, the node-side
// peer client that fills caches from ring siblings, and the charm-gateway
// HTTP front end that routes, replicates and hedges requests across nodes.
//
// The unit of placement is the trace digest — the same content address the
// single-node cache keys on — so every request that names a trace lands on
// the node that owns its bytes, and a cache filled on one owner is a peer
// fill away for its replicas. Membership is static (a -peers flag or a JSON
// file): the ring only changes when an operator changes it, and the
// consistent hash bounds the resulting key movement to roughly 1/N of the
// keyspace per membership change.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual-node count when Ring is
// built with vnodes <= 0. 64 points per member keeps the expected load
// imbalance across a handful of members in the few-percent range without
// making ring construction or lookup noticeable.
const DefaultVirtualNodes = 64

// Member is one charmd node in the cluster: a stable name (the ring hashes
// the name, so renaming a node moves its keys) and the base URL the
// gateway and its peers reach it at.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Ring is an immutable consistent-hash ring over a member list. Build one
// with NewRing; lookups are safe for concurrent use.
type Ring struct {
	members []Member
	points  []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the ring and the index of
// the member that owns it.
type ringPoint struct {
	hash   uint64
	member int
}

// hashKey maps a routing key (a trace digest) to its ring position.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds the ring. Member order does not matter (placement depends
// only on names), names must be unique and non-empty. vnodes <= 0 selects
// DefaultVirtualNodes.
func NewRing(members []Member, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{
		members: append([]Member(nil), members...),
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	for i, m := range members {
		if m.Name == "" {
			return nil, fmt.Errorf("cluster: member %d has no name", i)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("cluster: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		for v := 0; v < vnodes; v++ {
			// The vnode key is name-derived only: the same member set always
			// yields the same ring, regardless of URLs or listing order.
			r.points = append(r.points, ringPoint{
				hash:   hashKey(m.Name + "\x00" + strconv.Itoa(v)),
				member: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by member index for determinism.
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// Members returns the ring's member list (a copy).
func (r *Ring) Members() []Member { return append([]Member(nil), r.members...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member that owns key: the first distinct member
// clockwise from the key's ring position.
func (r *Ring) Owner(key string) Member { return r.Successors(key, 1)[0] }

// Successors returns up to n distinct members in ring order starting at
// key's position: the owner first, then the members that hold the key's
// replicas. n > Len() is clamped; the result is never empty.
func (r *Ring) Successors(key string, n int) []Member {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n < 1 {
		n = 1
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]Member, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
