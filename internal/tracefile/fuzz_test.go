package tracefile

import (
	"bytes"
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
)

// FuzzRead ensures the parser never panics and that anything it accepts is
// a valid, indexed trace that round-trips.
func FuzzRead(f *testing.F) {
	f.Add("charmtrace 1\npe 1\n")
	f.Add("charmtrace 1\npe 2\nchare 0 -1 -1 false 0 solo\n")
	f.Add("charmtrace 1\npe 1\nentry 0 -1 false e\nchare 0 -1 -1 false 0 c\nblock 0 0 0 0 0 10\nev 0 send 5 0 0 3 0\n")
	f.Add("charmtrace 1\npe 1\nidle 0 5 10\n")
	var buf bytes.Buffer
	if err := Write(&buf, jacobi.MustTrace(jacobi.DefaultConfig())); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if !tr.Indexed() {
			t.Fatal("accepted trace not indexed")
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(tr2.Events) != len(tr.Events) || len(tr2.Blocks) != len(tr.Blocks) {
			t.Fatal("round trip changed the trace")
		}
	})
}
