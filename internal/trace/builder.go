package trace

import (
	"fmt"
	"sort"
)

// Builder assembles a Trace incrementally. It hands out dense IDs, keeps a
// current open block per chare, and finishes with an indexed, validated
// Trace. Builders are not safe for concurrent use; the simulators in this
// repository are single-goroutine discrete-event loops, so this is fine.
type Builder struct {
	t       Trace
	nextMsg MsgID
	open    map[ChareID]BlockID
}

// NewBuilder returns a Builder for a machine with numPE processors.
func NewBuilder(numPE int) *Builder {
	return &Builder{
		t:    Trace{NumPE: numPE},
		open: make(map[ChareID]BlockID),
	}
}

// AddEntry registers an entry-method type and returns its ID.
func (b *Builder) AddEntry(name string) EntryID {
	id := EntryID(len(b.t.Entries))
	b.t.Entries = append(b.t.Entries, Entry{ID: id, Name: name, SDAGSerial: -1})
	return id
}

// AddSDAGEntry registers a generated SDAG serial entry method with its
// parsing-order number, and whether it directly follows a `when` clause.
func (b *Builder) AddSDAGEntry(name string, serial int, afterWhen bool) EntryID {
	id := EntryID(len(b.t.Entries))
	b.t.Entries = append(b.t.Entries, Entry{ID: id, Name: name, SDAGSerial: serial, AfterWhen: afterWhen})
	return id
}

// AddChare registers an application chare and returns its ID.
func (b *Builder) AddChare(name string, array ArrayID, index int, home PE) ChareID {
	return b.addChare(name, array, index, home, false)
}

// AddRuntimeChare registers a runtime-system chare (for example a per-PE
// reduction manager) and returns its ID.
func (b *Builder) AddRuntimeChare(name string, home PE) ChareID {
	return b.addChare(name, NoArray, -1, home, true)
}

func (b *Builder) addChare(name string, array ArrayID, index int, home PE, runtime bool) ChareID {
	id := ChareID(len(b.t.Chares))
	b.t.Chares = append(b.t.Chares, Chare{
		ID: id, Name: name, Array: array, Index: index, Runtime: runtime, Home: home,
	})
	return id
}

// NewMsg allocates a fresh message identifier.
func (b *Builder) NewMsg() MsgID {
	id := b.nextMsg
	b.nextMsg++
	return id
}

// BeginBlock opens a serial block for a chare. The chare must not already
// have an open block (entry methods execute without interruption).
func (b *Builder) BeginBlock(chare ChareID, pe PE, entry EntryID, begin Time) BlockID {
	if open, ok := b.open[chare]; ok {
		panic(fmt.Sprintf("trace: BeginBlock on chare %d while block %d is open", chare, open))
	}
	id := BlockID(len(b.t.Blocks))
	b.t.Blocks = append(b.t.Blocks, Block{
		ID: id, Chare: chare, PE: pe, Entry: entry, Begin: begin, End: begin,
	})
	b.open[chare] = id
	return id
}

// EndBlock closes the chare's open block at the given time.
func (b *Builder) EndBlock(chare ChareID, end Time) {
	id, ok := b.open[chare]
	if !ok {
		panic(fmt.Sprintf("trace: EndBlock on chare %d with no open block", chare))
	}
	blk := &b.t.Blocks[id]
	if end < blk.Begin {
		panic(fmt.Sprintf("trace: block %d would end (%d) before it begins (%d)", id, end, blk.Begin))
	}
	blk.End = end
	delete(b.open, chare)
}

// Recv records the message delivery that started the chare's open block.
func (b *Builder) Recv(chare ChareID, msg MsgID, tm Time) EventID {
	return b.addEvent(chare, Recv, msg, tm)
}

// Send records an entry-method invocation call inside the chare's open block.
func (b *Builder) Send(chare ChareID, msg MsgID, tm Time) EventID {
	return b.addEvent(chare, Send, msg, tm)
}

func (b *Builder) addEvent(chare ChareID, kind EventKind, msg MsgID, tm Time) EventID {
	blk, ok := b.open[chare]
	if !ok {
		panic(fmt.Sprintf("trace: %v event on chare %d with no open block", kind, chare))
	}
	id := EventID(len(b.t.Events))
	b.t.Events = append(b.t.Events, Event{
		ID: id, Kind: kind, Time: tm, Chare: chare,
		PE: b.t.Blocks[blk].PE, Msg: msg, Block: blk,
	})
	b.t.Blocks[blk].Events = append(b.t.Blocks[blk].Events, id)
	return id
}

// Idle records an idle span on a processor.
func (b *Builder) Idle(pe PE, begin, end Time) {
	if end <= begin {
		return
	}
	b.t.Idles = append(b.t.Idles, Idle{PE: pe, Begin: begin, End: end})
}

// Finish closes the builder, indexes and validates the trace. No blocks may
// remain open.
func (b *Builder) Finish() (*Trace, error) {
	if len(b.open) > 0 {
		var ids []int
		for c := range b.open {
			ids = append(ids, int(c))
		}
		sort.Ints(ids)
		return nil, fmt.Errorf("trace: Finish with open blocks on chares %v", ids)
	}
	sort.Slice(b.t.Idles, func(i, j int) bool {
		if b.t.Idles[i].PE != b.t.Idles[j].PE {
			return b.t.Idles[i].PE < b.t.Idles[j].PE
		}
		return b.t.Idles[i].Begin < b.t.Idles[j].Begin
	})
	if err := b.t.Index(); err != nil {
		return nil, err
	}
	return &b.t, nil
}

// MustFinish is Finish that panics on error; intended for tests and
// simulators whose construction logic guarantees validity.
func (b *Builder) MustFinish() *Trace {
	t, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return t
}
