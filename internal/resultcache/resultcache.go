// Package resultcache is a content-addressed cache of extraction results:
// the layer that turns core.Extract from a per-request cost into a
// mostly-amortized one for the charmd analysis server.
//
// Results are keyed by (trace digest, canonical Options fingerprint). The
// trace digest addresses the input bytes (tracefile.ReadAutoDigest); the
// fingerprint (core.Options.Fingerprint) canonicalizes every option that
// can change the recovered structure while deliberately excluding
// execution-only knobs like Parallelism — the pipeline is byte-identical at
// every worker count, so one cached result serves requests at any.
//
// Three layers, consulted in order:
//
//  1. an in-memory LRU of decoded *core.Structure values (bounded entry
//     count; hits are lock-then-return);
//  2. an on-disk store of binary-encoded results (core.EncodeStructure),
//     written atomically, surviving process restarts;
//  3. extraction itself, guarded by request coalescing: N concurrent
//     requests for one uncached key trigger exactly one Extract, and the
//     followers share the leader's result (a singleflight).
//
// Cached structures are shared between requests and must be treated as
// read-only; everything the serving layer does (rendering, metrics,
// structdiff) only reads. Every layer's traffic is counted in a
// telemetry.Registry so /debug/stats can report hit rates and extraction
// latency.
package resultcache

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// DefaultMaxMemEntries bounds the in-memory LRU when Config leaves it zero.
const DefaultMaxMemEntries = 64

// Config configures a Cache.
type Config struct {
	// Dir is the on-disk store directory, created if missing. Empty
	// disables the disk layer (memory + coalescing only).
	Dir string
	// MaxMemEntries bounds the in-memory LRU (0 = DefaultMaxMemEntries,
	// negative = no memory layer).
	MaxMemEntries int
	// Metrics receives the cache's counters and histograms. nil uses a
	// private registry (still queryable via Registry()).
	Metrics *telemetry.Registry
	// Extract computes a structure on a full miss. nil uses core.Extract;
	// tests substitute instrumented variants.
	Extract func(tr *trace.Trace, opt core.Options) (*core.Structure, error)
}

// Cache is the three-layer result cache. Safe for concurrent use.
type Cache struct {
	dir        string
	maxEntries int
	extract    func(tr *trace.Trace, opt core.Options) (*core.Structure, error)

	reg        *telemetry.Registry
	hits       *telemetry.Counter // total hits (memory + disk)
	memHits    *telemetry.Counter
	diskHits   *telemetry.Counter
	misses     *telemetry.Counter // full misses (extraction ran)
	coalesced  *telemetry.Counter // requests served by another request's flight
	evictions  *telemetry.Counter
	diskErrors *telemetry.Counter // unreadable/corrupt disk entries (self-healed)
	extractMS  *telemetry.Histogram
	memEntries *telemetry.Gauge

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	flights map[string]*flight
}

// entry is one memory-resident result.
type entry struct {
	id string
	s  *core.Structure
}

// flight is one in-progress extraction other requests can join.
type flight struct {
	done chan struct{}
	s    *core.Structure
	err  error
}

// New opens a cache, creating the disk directory if configured.
func New(cfg Config) (*Cache, error) {
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	max := cfg.MaxMemEntries
	if max == 0 {
		max = DefaultMaxMemEntries
	}
	if max < 0 {
		max = 0
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	ext := cfg.Extract
	if ext == nil {
		ext = core.Extract
	}
	c := &Cache{
		dir:        cfg.Dir,
		maxEntries: max,
		extract:    ext,
		reg:        reg,
		hits:       reg.Counter("cache.hits"),
		memHits:    reg.Counter("cache.mem_hits"),
		diskHits:   reg.Counter("cache.disk_hits"),
		misses:     reg.Counter("cache.misses"),
		coalesced:  reg.Counter("cache.coalesced"),
		evictions:  reg.Counter("cache.evictions"),
		diskErrors: reg.Counter("cache.disk_errors"),
		extractMS:  reg.Histogram("cache.extract_ms"),
		memEntries: reg.Gauge("cache.mem_entries"),
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
		flights:    make(map[string]*flight),
	}
	return c, nil
}

// Registry returns the registry the cache's metrics live in.
func (c *Cache) Registry() *telemetry.Registry { return c.reg }

// keyID is the content address of one (trace, options) result.
func keyID(traceDigest, fingerprint string) string {
	h := sha256.New()
	h.Write([]byte(traceDigest))
	h.Write([]byte{0})
	h.Write([]byte(fingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// DiskPath returns where the result for (traceDigest, opt) lives on disk,
// or "" when the disk layer is disabled. Exported for tests and operators
// inspecting the cache layout (README "Serving").
func (c *Cache) DiskPath(traceDigest string, opt core.Options) string {
	if c.dir == "" {
		return ""
	}
	return filepath.Join(c.dir, keyID(traceDigest, opt.Fingerprint())+".cstr")
}

// Len returns the number of memory-resident results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Get returns the recovered structure for (traceDigest, opt), serving from
// memory, then disk, then a coalesced extraction. tr must be the decoded
// trace the digest addresses; the first request for a key carries it to the
// extractor, and every hit ignores it beyond a consistency check during
// disk decode.
//
// ctx bounds only this caller's wait: a timed-out follower abandons the
// flight but the leader's extraction runs to completion and populates the
// cache, so a retry after a timeout usually hits. The returned structure is
// shared — treat it as read-only.
func (c *Cache) Get(ctx context.Context, traceDigest string, tr *trace.Trace, opt core.Options) (*core.Structure, error) {
	id := keyID(traceDigest, opt.Fingerprint())

	c.mu.Lock()
	if el, ok := c.entries[id]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		c.memHits.Add(1)
		return el.Value.(*entry).s, nil
	}
	if fl, ok := c.flights[id]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-fl.done:
			return fl.s, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[id] = fl
	c.mu.Unlock()

	fl.s, fl.err = c.fill(id, tr, opt)
	c.mu.Lock()
	delete(c.flights, id)
	if fl.err == nil {
		c.insertLocked(id, fl.s)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.s, fl.err
}

// fill resolves a memory miss as the flight leader: disk, then extraction.
func (c *Cache) fill(id string, tr *trace.Trace, opt core.Options) (*core.Structure, error) {
	wantFP := opt.Fingerprint()
	path := ""
	if c.dir != "" {
		path = filepath.Join(c.dir, id+".cstr")
		if data, err := os.ReadFile(path); err == nil {
			s, fp, err := core.DecodeStructure(bytes.NewReader(data), tr)
			if err == nil && fp == wantFP {
				c.hits.Add(1)
				c.diskHits.Add(1)
				return s, nil
			}
			// A corrupt or stale entry self-heals: count it, re-extract,
			// overwrite.
			c.diskErrors.Add(1)
		}
	}

	c.misses.Add(1)
	start := time.Now()
	s, err := c.extract(tr, opt)
	if err != nil {
		return nil, fmt.Errorf("resultcache: extract: %w", err)
	}
	c.extractMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	if path != "" {
		if err := c.writeDisk(path, s); err != nil {
			// Disk persistence is an optimization; the request still
			// succeeds from memory.
			c.diskErrors.Add(1)
		}
	}
	return s, nil
}

// writeDisk persists an encoded result atomically (temp file + rename), so
// a crash mid-write never leaves a truncated entry a later decode would
// reject.
func (c *Cache) writeDisk(path string, s *core.Structure) error {
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return err
	}
	if err := core.EncodeStructure(tmp, s); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// insertLocked adds a result to the memory LRU, evicting from the back.
// Caller holds c.mu.
func (c *Cache) insertLocked(id string, s *core.Structure) {
	if c.maxEntries == 0 {
		return
	}
	if el, ok := c.entries[id]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*entry).s = s
		return
	}
	c.entries[id] = c.lru.PushFront(&entry{id: id, s: s})
	for c.lru.Len() > c.maxEntries {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*entry).id)
		c.evictions.Add(1)
	}
	c.memEntries.Set(float64(c.lru.Len()))
}
