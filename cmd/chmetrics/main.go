// Command chmetrics computes the Section 4 performance metrics over a
// trace's logical structure and reports where they concentrate.
//
// Usage:
//
//	chmetrics -app jacobi-slow
//	chmetrics -in run.trace -metric differential -render
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"charmtrace/internal/cli"
	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
	"charmtrace/internal/viz"
)

func main() {
	in := flag.String("in", "", "input trace file")
	app := flag.String("app", "", "generate this workload instead of reading a file")
	mp := flag.Bool("mp", false, "treat a file input as a message-passing trace")
	metric := flag.String("metric", "differential", "metric: differential | idle | imbalance | lateness")
	top := flag.Int("top", 10, "events to list")
	render := flag.Bool("render", false, "render the metric over the logical structure")
	iters := flag.Int("iters", 0, "iteration override for -app")
	scale := flag.Int("scale", 0, "size override for -app")
	seed := flag.Int64("seed", 0, "seed override for -app")
	timing := flag.Bool("timing", false, "print per-stage extraction wall times")
	parallelism := flag.Int("parallelism", 0, "extraction worker count (0 = all cores, 1 = sequential; output is identical)")
	tele := cli.NewTelemetry("chmetrics", flag.CommandLine)
	flag.Parse()
	if err := tele.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "chmetrics:", err)
		os.Exit(1)
	}

	var tr *trace.Trace
	var opt core.Options
	var err error
	switch {
	case *app != "":
		tr, opt, err = cli.Generate(*app, cli.Params{Iterations: *iters, Scale: *scale, Seed: *seed})
	case *in != "":
		tr, err = tracefile.ReadFile(*in)
		opt = core.DefaultOptions()
		if *mp {
			opt = core.MessagePassingOptions()
		}
	default:
		err = fmt.Errorf("need -in <file> or -app <workload>; workloads:\n%s", cli.Describe())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chmetrics:", err)
		os.Exit(1)
	}
	opt.Parallelism = *parallelism
	if *app != "" {
		tele.Label("workload", *app)
	} else {
		tele.Label("input", *in)
	}
	tele.Label("metric", *metric)
	tele.Apply(&opt)
	// Ctrl-C cancels the extraction cooperatively; a second signal kills.
	ctx, stopSignals := cli.SignalContext(context.Background())
	opt.Context = ctx
	s, err := core.Extract(tr, opt)
	stopSignals()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chmetrics:", err)
		os.Exit(1)
	}
	if *timing {
		fmt.Print(s.Stats.TimingReport())
		fmt.Println()
	}
	r := metrics.Compute(s)

	var values []trace.Time
	switch *metric {
	case "differential":
		values = r.DifferentialDuration
	case "idle":
		values = r.IdleExperienced
	case "imbalance":
		values = r.Imbalance
	case "lateness":
		values = metrics.Lateness(s)
	default:
		fmt.Fprintf(os.Stderr, "chmetrics: unknown metric %q\n", *metric)
		os.Exit(1)
	}

	fmt.Printf("metric: %s\n", *metric)
	fmt.Printf("total idle experienced: %d   total imbalance: %d\n",
		r.TotalIdleExperienced(), r.TotalImbalance())
	maxD, at := r.MaxDifferentialDuration()
	if at != trace.NoEvent {
		fmt.Printf("max differential duration: %d at event %d (chare %s, step %d)\n",
			maxD, at, tr.Chares[tr.Events[at].Chare].Name, s.Step[at])
	}

	order := make([]trace.EventID, 0, len(values))
	for e := range values {
		if values[e] > 0 {
			order = append(order, trace.EventID(e))
		}
	}
	sort.Slice(order, func(i, j int) bool { return values[order[i]] > values[order[j]] })
	if len(order) > *top {
		order = order[:*top]
	}
	fmt.Printf("\ntop %d events by %s:\n", len(order), *metric)
	for _, e := range order {
		ev := &tr.Events[e]
		fmt.Printf("  %8d ns  event %-6d %-4s chare %-20s phase %-4d step %d\n",
			values[e], e, ev.Kind, tr.Chares[ev.Chare].Name, s.PhaseOf[e], s.Step[e])
	}
	fmt.Printf("\nper-phase imbalance:\n")
	for pi, d := range r.PhaseImbalance {
		kind := "app"
		if s.Phases[pi].Runtime {
			kind = "runtime"
		}
		fmt.Printf("  phase %-4d %-8s offset %-5d imbalance %d\n",
			pi, kind, s.Phases[pi].Offset, d)
	}
	if *render {
		fmt.Println()
		fmt.Print(viz.LogicalMetric(s, values))
	}
	if err := tele.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "chmetrics:", err)
		os.Exit(1)
	}
}
