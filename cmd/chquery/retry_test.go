package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"charmtrace/internal/query"
)

// instant returns a retrier that never sleeps and records each computed
// delay, with a fixed mid-range jitter draw.
func instant(retries int) (*retrier, *[]time.Duration) {
	slept := &[]time.Duration{}
	r := newRetrier(retries)
	r.sleep = func(d time.Duration) { *slept = append(*slept, d) }
	r.jitter = func() float64 { return 0.5 }
	return r, slept
}

func TestRetryEventualSuccess(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{"select":"structure","total_rows":1,"rows":[{"id":0}]}`))
		}
	}))
	defer srv.Close()

	rt, slept := instant(3)
	p, err := postPage(srv.URL, query.Spec{Select: "structure"}, rt)
	if err != nil {
		t.Fatalf("postPage: %v", err)
	}
	if p.TotalRows != 1 || len(p.Rows) != 1 {
		t.Fatalf("page = %+v", p)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	// First backoff honored the server's Retry-After: 0 verbatim.
	if (*slept)[0] != 0 {
		t.Fatalf("first delay = %v, want 0 (Retry-After honored)", (*slept)[0])
	}
	// Second had no hint: exponential base doubled once, with jitter in
	// [d/2, d) for d = 2*base.
	d := (*slept)[1]
	if d < retryBase || d >= 2*retryBase {
		t.Fatalf("second delay = %v, want in [%v, %v)", d, retryBase, 2*retryBase)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()

	rt, _ := instant(2)
	_, err := postPage(srv.URL, query.Spec{Select: "structure"}, rt)
	if err == nil {
		t.Fatal("want error after budget exhausted")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 try + 2 retries)", got)
	}
}

func TestRetryNonRetryableIsFinal(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown trace digest"}`, http.StatusNotFound)
	}))
	defer srv.Close()

	rt, _ := instant(3)
	_, err := postPage(srv.URL, query.Spec{Select: "structure"}, rt)
	if err == nil {
		t.Fatal("want error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (404 is final)", got)
	}
}

func TestRetryDelayPolicy(t *testing.T) {
	r := newRetrier(3)
	r.jitter = func() float64 { return 0 } // delay = d/2 exactly
	// Retry-After wins and is clamped to max.
	if got := r.delay(0, "2"); got != 2*time.Second {
		t.Fatalf("Retry-After 2 → %v, want 2s", got)
	}
	if got := r.delay(0, "3600"); got != retryMax {
		t.Fatalf("Retry-After 3600 → %v, want clamp %v", got, retryMax)
	}
	// Garbage hints fall back to the exponential curve.
	prev := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := r.delay(attempt, "soon")
		if d < prev {
			t.Fatalf("attempt %d: delay %v shrank from %v", attempt, d, prev)
		}
		if d > retryMax {
			t.Fatalf("attempt %d: delay %v exceeds cap", attempt, d)
		}
		prev = d
	}
	if prev != retryMax/2 {
		t.Fatalf("late-attempt delay = %v, want capped %v (zero jitter)", prev, retryMax/2)
	}
}
