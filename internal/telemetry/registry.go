package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

// Registry is a lightweight, concurrency-safe metrics store. Handles are
// cheap to hold: Counter/Gauge/Histogram return stable pointers, so hot
// paths look a metric up once and update it lock-free (counters, gauges) or
// under a per-histogram lock.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{min: math.Inf(1), max: math.Inf(-1)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically accumulated integer metric.
type Counter struct{ v atomic.Int64 }

// Add accumulates delta into the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the accumulated total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value set (zero before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of exponential (base-2) histogram buckets:
// bucket i counts observations v with 2^(i-1) < v <= 2^i (bucket 0 takes
// v <= 1). 64 buckets cover any int64-scale observation.
const histBuckets = 64

// Histogram summarizes a stream of non-negative observations: count, sum,
// min, max, and base-2 exponential buckets (enough resolution to see
// whether enforce-orderability round latencies are uniform or skewed).
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// bucketOf maps an observation to its exponential bucket index.
func bucketOf(v float64) int {
	if v <= 1 {
		return 0
	}
	b := int(math.Ceil(math.Log2(v)))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// HistogramSnapshot is the exportable summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Buckets lists only the occupied buckets, in increasing upper bound.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one occupied exponential bucket: Count observations
// with value <= UpperBound (and above the previous bucket's bound).
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// snapshot copies the histogram under its lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	for i, n := range h.buckets {
		if n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: math.Pow(2, float64(i)), Count: n})
		}
	}
	return s
}

// Snapshot is a point-in-time copy of a registry's contents.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric. Safe to call while writers are active;
// each metric is read atomically (counters, gauges) or under its lock.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// Reset zeroes every metric in place. Handles returned by
// Counter/Gauge/Histogram stay valid — holders keep updating the same
// metrics after the reset, which is what lets charmd's ?reset=1 debug
// switch rebase /debug/stats without tearing down the server's cached
// metric pointers.
func (r *Registry) Reset() {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, c := range counters {
		c.v.Store(0)
	}
	for _, g := range gauges {
		g.bits.Store(0)
	}
	for _, h := range hists {
		h.mu.Lock()
		h.count, h.sum = 0, 0
		h.min, h.max = math.Inf(1), math.Inf(-1)
		h.buckets = [histBuckets]int64{}
		h.mu.Unlock()
	}
}

// MergeInto accumulates this registry into dst: counters add, gauges take
// the source's value, histogram summaries and buckets combine. Used to roll
// per-extraction registries up into a CLI-wide one; safe under concurrent
// merges from a batch of extractions.
func (r *Registry) MergeInto(dst *Registry) {
	s := r.Snapshot()
	for k, v := range s.Counters {
		dst.Counter(k).Add(v)
	}
	for k, v := range s.Gauges {
		dst.Gauge(k).Set(v)
	}
	for k, hs := range s.Histograms {
		if hs.Count == 0 {
			dst.Histogram(k) // materialize the empty histogram
			continue
		}
		h := dst.Histogram(k)
		h.mu.Lock()
		h.count += hs.Count
		h.sum += hs.Sum
		if hs.Min < h.min {
			h.min = hs.Min
		}
		if hs.Max > h.max {
			h.max = hs.Max
		}
		for _, b := range hs.Buckets {
			h.buckets[bucketOf(b.UpperBound)] += b.Count
		}
		h.mu.Unlock()
	}
}
