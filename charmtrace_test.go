package charmtrace

import (
	"bytes"
	"strings"
	"testing"
)

// TestPublicAPIWorkflow exercises the documented end-to-end workflow using
// only the public API: generate a trace, serialize, reload, extract,
// render, compute metrics.
func TestPublicAPIWorkflow(t *testing.T) {
	tr, err := JacobiTrace(DefaultJacobiConfig())
	if err != nil {
		t.Fatalf("JacobiTrace: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	tr2, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	s, err := Extract(tr2, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if out := RenderLogical(s); !strings.Contains(out, "jacobi") {
		t.Fatal("logical render missing chare names")
	}
	r := ComputeMetrics(s)
	if len(r.DifferentialDuration) != len(tr2.Events) {
		t.Fatal("metrics not per-event")
	}
	if late := Lateness(s); len(late) != len(tr2.Events) {
		t.Fatal("lateness not per-event")
	}
	if svg := RenderSVG(s); !strings.HasPrefix(svg, "<svg") {
		t.Fatal("bad SVG")
	}
	if sum := PhaseSummary(s); !strings.Contains(sum, "phase") {
		t.Fatal("bad phase summary")
	}
	clusters := ClusterExact(s)
	if len(clusters) == 0 || len(clusters) >= len(tr2.Chares) {
		t.Fatalf("clustering ineffective: %d clusters for %d chares", len(clusters), len(tr2.Chares))
	}
	if out := RenderLogicalClustered(s, clusters); !strings.Contains(out, "rows for") {
		t.Fatal("clustered render missing header")
	}
	if coarse := ClusterByPhaseShape(s); len(coarse) > len(clusters) {
		t.Fatal("phase-shape clustering finer than exact")
	}
}

// TestBuilderAPI drives the public TraceBuilder.
func TestBuilderAPI(t *testing.T) {
	b := NewTraceBuilder(1)
	e := b.AddEntry("work")
	c := b.AddChare("solo", -1, -1, 0)
	m := b.NewMsg()
	b.BeginBlock(c, 0, e, 0)
	b.Send(c, m, 1)
	b.EndBlock(c, 2)
	c2 := b.AddChare("peer", -1, -1, 0)
	b.BeginBlock(c2, 0, e, 10)
	b.Recv(c2, m, 10)
	b.EndBlock(c2, 11)
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if s.NumPhases() != 1 {
		t.Fatalf("phases = %d, want 1", s.NumPhases())
	}
}

// TestAllGeneratorsProduceValidStructures smoke-tests every workload
// generator through the public API.
func TestAllGeneratorsProduceValidStructures(t *testing.T) {
	small := func(mt MergeTreeConfig) MergeTreeConfig {
		mt.Procs = 64
		mt.GroupSize = 8
		return mt
	}
	cases := []struct {
		name string
		gen  func() (*Trace, error)
		opt  Options
	}{
		{"jacobi", func() (*Trace, error) { return JacobiTrace(DefaultJacobiConfig()) }, DefaultOptions()},
		{"lulesh-charm", func() (*Trace, error) { return LuleshCharmTrace(DefaultLuleshConfig()) }, DefaultOptions()},
		{"lulesh-mpi", func() (*Trace, error) { return LuleshMPITrace(DefaultLuleshConfig()) }, MessagePassingOptions()},
		{"lassen-charm", func() (*Trace, error) { return LassenCharmTrace(DefaultLassenConfig()) }, DefaultOptions()},
		{"lassen-charm-fine", func() (*Trace, error) { return LassenCharmTrace(FineLassenConfig()) }, DefaultOptions()},
		{"lassen-mpi", func() (*Trace, error) { return LassenMPITrace(DefaultLassenConfig()) }, MessagePassingOptions()},
		{"mergetree", func() (*Trace, error) { return MergeTreeTrace(small(DefaultMergeTreeConfig())) }, MessagePassingOptions()},
		{"pdes", func() (*Trace, error) { return PDESTrace(DefaultPDESConfig()) }, DefaultOptions()},
		{"nasbt", func() (*Trace, error) { return NASBTTrace(DefaultNASBTConfig()) }, MessagePassingOptions()},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tr, err := c.gen()
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			s, err := Extract(tr, c.opt)
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			if s.NumPhases() == 0 {
				t.Fatal("no phases recovered")
			}
		})
	}
}
