// Package lod is the server-side level-of-detail aggregation engine: the
// layer that lets an interactive client render a recovered structure at any
// scale without ever receiving per-event payloads. The paper's logical view
// (phases → steps → chares → communication) is exactly what a trace UI
// draws, but at a thousand chares and tens of thousands of events the
// client drowns; Traveler and the scalable-Gantt study (PAPERS.md) both
// conclude the server must aggregate to the client's resolution.
//
// The engine precomputes a mip-pyramid of power-of-two step-bucket levels
// over a structure: level 0 buckets one global step each, level L buckets
// 2^L steps, aligned to the absolute step grid so any window snaps onto
// bucket boundaries and coarsening is exactly monotone (a parent cell is
// the merge of its two children — pinned by the property suite). Chare rows
// are collapsed through internal/charegroup's behavioural clustering, and
// communication is aggregated to (bucket, cluster) → (bucket, cluster)
// edge weights instead of per-message lines. A query picks the coarsest
// level that fits the requested resolution and renders O(buckets × rows)
// output, never O(events).
//
// Everything is deterministic: the pyramid is a pure function of the
// structure (which is itself byte-identical at any extraction parallelism),
// cells are stored in fixed array order and edges in sorted key order, so
// the same trace + options + resolution yields a byte-identical response
// from any replica.
package lod

import (
	"sort"

	"charmtrace/internal/charegroup"
	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
	"charmtrace/internal/trace"
)

// NumMetrics is the §4 metric column count carried per cell.
const NumMetrics = 4

// MetricNames are the canonical §4 metric column names, in cell array
// order — the legend every response carries so clients can label the
// metric_sum/metric_max arrays without hardcoding the order.
var MetricNames = [NumMetrics]string{
	"sub_dur",
	"idle_experienced",
	"differential_duration",
	"imbalance",
}

// Cell is one (cluster, bucket) aggregate: event counts by kind, the
// virtual-time span of the bucket's events, and the §4 metric rollups.
// A Cell with Events == 0 is empty and its Time fields are meaningless.
type Cell struct {
	Events  int64
	Sends   int64
	Recvs   int64
	TimeMin trace.Time
	TimeMax trace.Time
	Sum     [NumMetrics]int64
	Max     [NumMetrics]int64
}

// merge folds other into c (the coarsening operation).
func (c *Cell) merge(o *Cell) {
	if o.Events == 0 {
		return
	}
	if c.Events == 0 {
		*c = *o
		return
	}
	c.Events += o.Events
	c.Sends += o.Sends
	c.Recvs += o.Recvs
	if o.TimeMin < c.TimeMin {
		c.TimeMin = o.TimeMin
	}
	if o.TimeMax > c.TimeMax {
		c.TimeMax = o.TimeMax
	}
	for m := 0; m < NumMetrics; m++ {
		c.Sum[m] += o.Sum[m]
		if o.Max[m] > c.Max[m] {
			c.Max[m] = o.Max[m]
		}
	}
}

// Edge is one aggregated communication edge at a level: the total number of
// matched send→recv pairs whose send lands in (SrcBucket, SrcCluster) and
// whose receive lands in (DstBucket, DstCluster).
type Edge struct {
	SrcBucket  int32
	SrcCluster int32
	DstBucket  int32
	DstCluster int32
	Weight     int64
}

// Level is one pyramid level: buckets of Width = 2^level global steps,
// aligned to step 0. Cells is row-major [cluster][bucket]; Edges is sorted
// by (SrcBucket, SrcCluster, DstBucket, DstCluster).
type Level struct {
	Width   int32
	Buckets int32
	Cells   []Cell
	Edges   []Edge
}

// cell returns the (cluster, bucket) cell.
func (l *Level) cell(cluster, bucket int32) *Cell {
	return &l.Cells[int(cluster)*int(l.Buckets)+int(bucket)]
}

// Pyramid is the precomputed level-of-detail structure for one recovered
// structure. Immutable once built and safe for concurrent readers;
// resultcache caches it beside the query index so repeat LOD queries never
// rescan the trace.
type Pyramid struct {
	S *core.Structure
	// Clusters is the behavioural clustering (charegroup.Exact): the
	// maximal row collapse that loses nothing, since members have
	// identical logical timelines.
	Clusters []charegroup.Cluster
	// ClusterOf maps each chare to its cluster index.
	ClusterOf []int32
	// Levels[l] has bucket width 2^l; the top level has one bucket.
	Levels []Level

	bytes int64
}

// Build constructs the pyramid. rep supplies the §4 per-event metrics; nil
// computes them (one metrics.Compute pass — callers that already hold a
// query index can pass its report to share the work). Cost beyond the
// metrics pass is one scan of the events plus a geometric coarsening sweep,
// so ~2× the base level's size in total.
func Build(s *core.Structure, rep *metrics.Report) *Pyramid {
	if rep == nil {
		rep = metrics.Compute(s)
	}
	tr := s.Trace
	p := &Pyramid{
		S:         s,
		Clusters:  charegroup.Exact(s),
		ClusterOf: make([]int32, len(tr.Chares)),
	}
	for i := range p.Clusters {
		for _, m := range p.Clusters[i].Members {
			p.ClusterOf[m] = int32(i)
		}
	}
	numSteps := int32(s.MaxStep()) + 1
	if numSteps <= 0 {
		p.bytes = int64(len(p.ClusterOf)) * 4
		return p
	}
	nc := int32(len(p.Clusters))

	// Base level: one bucket per global step.
	base := Level{Width: 1, Buckets: numSteps, Cells: make([]Cell, int(nc)*int(numSteps))}
	type edgeKey struct{ sb, sc, db, dc int32 }
	acc := make(map[edgeKey]int64)
	for e := range tr.Events {
		ev := &tr.Events[e]
		eid := trace.EventID(e)
		c := base.cell(p.ClusterOf[ev.Chare], s.Step[eid])
		if c.Events == 0 {
			c.TimeMin, c.TimeMax = ev.Time, ev.Time
		} else {
			if ev.Time < c.TimeMin {
				c.TimeMin = ev.Time
			}
			if ev.Time > c.TimeMax {
				c.TimeMax = ev.Time
			}
		}
		c.Events++
		if ev.Kind == trace.Send {
			c.Sends++
		} else {
			c.Recvs++
		}
		vals := [NumMetrics]trace.Time{
			rep.SubDur[eid],
			rep.IdleExperienced[eid],
			rep.DifferentialDuration[eid],
			rep.Imbalance[eid],
		}
		for m, v := range vals {
			c.Sum[m] += int64(v)
			if int64(v) > c.Max[m] {
				c.Max[m] = int64(v)
			}
		}
		if ev.Kind == trace.Recv {
			if send := tr.MatchingSend(eid); send != trace.NoEvent {
				sv := &tr.Events[send]
				acc[edgeKey{s.Step[send], p.ClusterOf[sv.Chare], s.Step[eid], p.ClusterOf[ev.Chare]}]++
			}
		}
	}
	base.Edges = make([]Edge, 0, len(acc))
	for k, w := range acc {
		base.Edges = append(base.Edges, Edge{k.sb, k.sc, k.db, k.dc, w})
	}
	sortEdges(base.Edges)
	p.Levels = append(p.Levels, base)

	// Coarsen: each level halves the bucket count (ceiling) until one
	// bucket spans everything. Parent bucket b merges children 2b, 2b+1.
	for p.Levels[len(p.Levels)-1].Buckets > 1 {
		prev := &p.Levels[len(p.Levels)-1]
		nb := (prev.Buckets + 1) / 2
		lvl := Level{Width: prev.Width * 2, Buckets: nb, Cells: make([]Cell, int(nc)*int(nb))}
		for ci := int32(0); ci < nc; ci++ {
			for b := int32(0); b < prev.Buckets; b++ {
				lvl.cell(ci, b/2).merge(prev.cell(ci, b))
			}
		}
		half := make(map[edgeKey]int64, len(prev.Edges))
		for _, e := range prev.Edges {
			half[edgeKey{e.SrcBucket / 2, e.SrcCluster, e.DstBucket / 2, e.DstCluster}] += e.Weight
		}
		lvl.Edges = make([]Edge, 0, len(half))
		for k, w := range half {
			lvl.Edges = append(lvl.Edges, Edge{k.sb, k.sc, k.db, k.dc, w})
		}
		sortEdges(lvl.Edges)
		p.Levels = append(p.Levels, lvl)
	}

	const cellSize = 8 * (5 + 2*NumMetrics) // counts + span + metric arrays
	const edgeSize = 4*4 + 8
	for i := range p.Levels {
		p.bytes += int64(len(p.Levels[i].Cells))*cellSize + int64(len(p.Levels[i].Edges))*edgeSize
	}
	p.bytes += int64(len(p.ClusterOf)) * 4
	for i := range p.Clusters {
		p.bytes += int64(len(p.Clusters[i].Members))*4 + 16
	}
	return p
}

// Bytes estimates the pyramid's resident size beyond the structure itself,
// for cache memory accounting.
func (p *Pyramid) Bytes() int64 { return p.bytes }

// sortEdges orders edges by (SrcBucket, SrcCluster, DstBucket, DstCluster)
// — the canonical wire order.
func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := &edges[i], &edges[j]
		if a.SrcBucket != b.SrcBucket {
			return a.SrcBucket < b.SrcBucket
		}
		if a.SrcCluster != b.SrcCluster {
			return a.SrcCluster < b.SrcCluster
		}
		if a.DstBucket != b.DstBucket {
			return a.DstBucket < b.DstBucket
		}
		return a.DstCluster < b.DstCluster
	})
}
