package sim

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func TestMulticastReachesExactlyMembers(t *testing.T) {
	rt := New(DefaultConfig(3))
	arr := rt.NewArray("sec", 6, nil, nil)
	sec := rt.NewSection(arr, []int{1, 3, 5})
	hit := make([]bool, 6)
	recv := arr.Register("recv", func(ctx *Ctx, m Message) {
		hit[ctx.Index()] = true
		ctx.Compute(10)
	})
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		ctx.Multicast(sec, recv, "payload")
	})
	rt.Spawn(arr.At(0), start, nil)
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, h := range hit {
		want := i == 1 || i == 3 || i == 5
		if h != want {
			t.Fatalf("element %d hit=%v, want %v", i, h, want)
		}
	}
	if got := tr.CountKind(trace.Send); got != 1 {
		t.Fatalf("sends = %d, want 1 (single multicast send)", got)
	}
	var msg trace.MsgID = -2
	for _, ev := range tr.Events {
		if ev.Kind == trace.Send {
			msg = ev.Msg
		}
	}
	if got := len(tr.RecvsOf(msg)); got != 3 {
		t.Fatalf("multicast recvs = %d, want 3", got)
	}
}

func TestSectionReduction(t *testing.T) {
	rt := New(DefaultConfig(4))
	arr := rt.NewArray("sr", 8, nil, nil)
	sec := rt.NewSection(arr, []int{0, 2, 4, 6})
	var red *Reduction
	var got float64
	done := arr.Register("done", func(ctx *Ctx, m Message) {
		got = m.Data.(*ReduceResult).Value
	})
	contribute := arr.Register("contribute", func(ctx *Ctx, m Message) {
		ctx.Compute(20)
		ctx.Contribute(red, float64(ctx.Index()))
	})
	red = rt.NewSectionReduction(sec, Sum, SendCallback(arr.At(0), done))
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		ctx.Multicast(sec, contribute, nil)
	})
	rt.Spawn(arr.At(0), start, nil)
	if _, err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 0+2+4+6 {
		t.Fatalf("section reduction = %v, want 12", got)
	}
}

func TestContributeOutsideSectionPanics(t *testing.T) {
	rt := New(DefaultConfig(1))
	arr := rt.NewArray("sp", 4, nil, nil)
	sec := rt.NewSection(arr, []int{0, 1})
	var red *Reduction
	done := arr.Register("done", func(ctx *Ctx, m Message) {})
	bad := arr.Register("bad", func(ctx *Ctx, m Message) {
		ctx.Contribute(red, 1) // element 3 is not a member
	})
	red = rt.NewSectionReduction(sec, Sum, SendCallback(arr.At(0), done))
	rt.Spawn(arr.At(3), bad, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.MustRun()
}

func TestSectionValidation(t *testing.T) {
	rt := New(DefaultConfig(1))
	arr := rt.NewArray("sv", 3, nil, nil)
	for _, members := range [][]int{{}, {5}, {1, 1}} {
		members := members
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("members %v accepted", members)
				}
			}()
			rt.NewSection(arr, members)
		}()
	}
}

// TestSectionStructure: a multicast + section reduction extracts into a
// valid structure with a runtime phase covering only the section's homes.
func TestSectionStructure(t *testing.T) {
	rt := New(DefaultConfig(4))
	arr := rt.NewArray("ss", 8, nil, nil)
	sec := rt.NewSection(arr, []int{1, 2, 5, 6})
	var red *Reduction
	done := arr.Register("done", func(ctx *Ctx, m Message) { ctx.Compute(5) })
	contribute := arr.Register("contribute", func(ctx *Ctx, m Message) {
		ctx.Compute(50)
		ctx.Contribute(red, 1)
	})
	red = rt.NewSectionReduction(sec, Sum, SendCallback(arr.At(1), done))
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		ctx.Multicast(sec, contribute, nil)
	})
	rt.Spawn(arr.At(0), start, nil)
	tr := rt.MustRun()
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	hasRuntime := false
	for i := range s.Phases {
		if s.Phases[i].Runtime {
			hasRuntime = true
		}
	}
	if !hasRuntime {
		t.Fatal("section reduction produced no runtime phase")
	}
}
