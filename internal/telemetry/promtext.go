package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4) with no dependency beyond the standard library, and
// provides the strict parser the exposition tests (and any scrape-side
// tooling) validate it with. The mapping:
//
//   - Counter  -> a counter family named PromName(name) + "_total"
//   - Gauge    -> a gauge family named PromName(name)
//   - Histogram-> a histogram family: cumulative `_bucket{le="..."}` series
//     over the registry's base-2 buckets, a final le="+Inf" bucket equal to
//     `_count`, plus `_sum` and `_count`
//
// Dotted registry names ("cache.mem_hits") sanitize to the Prometheus
// charset [a-zA-Z0-9_:] ("cache_mem_hits"); the original name is preserved
// in the HELP line so dashboards can be traced back to registry metrics.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes a registry metric name to the Prometheus metric-name
// charset: every rune outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit is prefixed with '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat formats a sample value. Prometheus accepts Go's shortest
// round-trippable float representation; +Inf/-Inf/NaN use their spelled
// forms.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily writes one family header pair. HELP text is escaped per the
// format (backslash and newline).
func promFamily(w io.Writer, name, typ, help string) {
	help = strings.ReplaceAll(help, `\`, `\\`)
	help = strings.ReplaceAll(help, "\n", `\n`)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promLabelValue escapes a label value per the exposition format.
func promLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelSet renders a constant label set ({k="v",...}) in sorted key order,
// with extra appended last (histograms pass their le pair). Empty input and
// empty extra render "".
func labelSet(labels map[string]string, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, PromName(k), promLabelValue(labels[k]))
	}
	if extra != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// PromGauge writes one self-contained gauge family (header plus a single
// sample). The serving layer uses it for process-level values that do not
// live in a Registry (span-collector depth, dropped spans).
func PromGauge(w io.Writer, name, help string, v float64) {
	PromGaugeLabels(w, name, help, v, nil)
}

// PromGaugeLabels is PromGauge with a constant label set on the sample.
func PromGaugeLabels(w io.Writer, name, help string, v float64, labels map[string]string) {
	promFamily(w, name, "gauge", help)
	fmt.Fprintf(w, "%s%s %s\n", name, labelSet(labels, ""), promFloat(v))
}

// PromCounter writes one self-contained counter family.
func PromCounter(w io.Writer, name, help string, v float64) {
	PromCounterLabels(w, name, help, v, nil)
}

// PromCounterLabels is PromCounter with a constant label set on the sample.
func PromCounterLabels(w io.Writer, name, help string, v float64, labels map[string]string) {
	promFamily(w, name, "counter", help)
	fmt.Fprintf(w, "%s%s %s\n", name, labelSet(labels, ""), promFloat(v))
}

// WritePrometheus renders a point-in-time snapshot of the registry in the
// text exposition format. Families are emitted in sorted sanitized-name
// order, so successive scrapes of an unchanged registry are byte-identical
// (modulo values). Two registry names that sanitize to the same family
// keep only the lexically first — the registry's dotted naming convention
// never collides in practice, and a duplicate family would be a format
// violation.
func WritePrometheus(w io.Writer, reg *Registry) error {
	return WritePrometheusLabels(w, reg, nil)
}

// WritePrometheusLabels is WritePrometheus with a constant label set stamped
// on every sample — charmd nodes expose node="<name>" so one scrape config
// over a cluster keeps per-node series apart. Histogram buckets merge the
// constant labels with their le pair.
func WritePrometheusLabels(w io.Writer, reg *Registry, labels map[string]string) error {
	snap := reg.Snapshot()
	ls := labelSet(labels, "")
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	claim := func(name string) bool {
		if seen[name] {
			return false
		}
		seen[name] = true
		return true
	}

	type counterRow struct {
		name, raw string
		v         int64
	}
	counters := make([]counterRow, 0, len(snap.Counters))
	for raw, v := range snap.Counters {
		name := PromName(raw)
		if !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		counters = append(counters, counterRow{name, raw, v})
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	for _, c := range counters {
		if !claim(c.name) {
			continue
		}
		promFamily(bw, c.name, "counter", "charmtrace counter "+strconv.Quote(c.raw))
		fmt.Fprintf(bw, "%s%s %d\n", c.name, ls, c.v)
	}

	type gaugeRow struct {
		name, raw string
		v         float64
	}
	gauges := make([]gaugeRow, 0, len(snap.Gauges))
	for raw, v := range snap.Gauges {
		gauges = append(gauges, gaugeRow{PromName(raw), raw, v})
	}
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	for _, g := range gauges {
		if !claim(g.name) {
			continue
		}
		promFamily(bw, g.name, "gauge", "charmtrace gauge "+strconv.Quote(g.raw))
		fmt.Fprintf(bw, "%s%s %s\n", g.name, ls, promFloat(g.v))
	}

	type histRow struct {
		name, raw string
		h         HistogramSnapshot
	}
	hists := make([]histRow, 0, len(snap.Histograms))
	for raw, h := range snap.Histograms {
		hists = append(hists, histRow{PromName(raw), raw, h})
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, hr := range hists {
		if !claim(hr.name) || !claim(hr.name+"_bucket") ||
			!claim(hr.name+"_sum") || !claim(hr.name+"_count") {
			continue
		}
		promFamily(bw, hr.name, "histogram", "charmtrace histogram "+strconv.Quote(hr.raw))
		// Registry buckets are per-bucket occupancy in increasing upper
		// bound; Prometheus buckets are cumulative.
		cum := int64(0)
		for _, b := range hr.h.Buckets {
			cum += b.Count
			fmt.Fprintf(bw, "%s_bucket%s %d\n", hr.name, labelSet(labels, fmt.Sprintf("le=%q", promFloat(b.UpperBound))), cum)
		}
		fmt.Fprintf(bw, "%s_bucket%s %d\n", hr.name, labelSet(labels, `le="+Inf"`), hr.h.Count)
		fmt.Fprintf(bw, "%s_sum%s %s\n", hr.name, ls, promFloat(hr.h.Sum))
		fmt.Fprintf(bw, "%s_count%s %d\n", hr.name, ls, hr.h.Count)
	}
	return bw.Flush()
}

// WriteGoRuntimeMetrics appends the process-level Go runtime families every
// operational dashboard needs: goroutine count, heap occupancy, allocation
// totals and GC pause accounting. runtime.ReadMemStats stops the world
// briefly, which is acceptable at scrape frequency (seconds), not in a hot
// path.
func WriteGoRuntimeMetrics(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	bw := bufio.NewWriter(w)
	PromGauge(bw, "go_goroutines", "number of goroutines", float64(runtime.NumGoroutine()))
	PromGauge(bw, "go_memstats_heap_alloc_bytes", "bytes of allocated heap objects", float64(ms.HeapAlloc))
	PromGauge(bw, "go_memstats_heap_sys_bytes", "bytes of heap obtained from the OS", float64(ms.HeapSys))
	PromGauge(bw, "go_memstats_heap_objects", "number of allocated heap objects", float64(ms.HeapObjects))
	PromGauge(bw, "go_memstats_next_gc_bytes", "heap size at which the next GC cycle starts", float64(ms.NextGC))
	PromCounter(bw, "go_memstats_alloc_bytes_total", "cumulative bytes allocated for heap objects", float64(ms.TotalAlloc))
	PromCounter(bw, "go_memstats_mallocs_total", "cumulative count of heap objects allocated", float64(ms.Mallocs))
	PromCounter(bw, "go_gc_cycles_total", "completed GC cycles", float64(ms.NumGC))
	PromCounter(bw, "go_gc_pause_seconds_total", "cumulative stop-the-world GC pause time", float64(ms.PauseTotalNs)/1e9)
	if ms.NumGC > 0 {
		PromGauge(bw, "go_gc_last_pause_seconds", "duration of the most recent GC pause",
			float64(ms.PauseNs[(ms.NumGC+255)%256])/1e9)
	}
	return bw.Flush()
}

// ---- strict exposition parser ------------------------------------------
//
// ParsePromText is the validation half of the exporter: a deliberately
// strict reader of the subset of the text format WritePrometheus emits
// (samples with an optional constant label set — e.g. the cluster's
// node="..." — plus histogram `le` labels). The exposition tests round-trip
// every registry metric through it, and it rejects everything a lenient
// scraper would forgive: samples before their # TYPE line, duplicate
// families, names outside the charset, malformed or inconsistent label
// sets, non-cumulative histogram buckets, and a histogram whose +Inf
// bucket disagrees with its _count.

// PromSample is one parsed sample line.
type PromSample struct {
	// Le is the histogram bucket bound label, NaN for plain samples.
	Le    float64
	Value float64
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name string
	Type string // counter, gauge, histogram
	Help string
	// Samples holds plain samples for counters/gauges; for histograms the
	// `_bucket` series in declaration order.
	Samples []PromSample
	// Sum/Count are the histogram's _sum/_count samples.
	Sum   float64
	Count int64
	// Labels is the family's constant (non-le) label set. The strict
	// contract: every sample of one family carries the same constant
	// labels — which is exactly what WritePrometheusLabels emits, and
	// what keeps the histogram cumulativity check meaningful.
	Labels map[string]string

	labelKey         string
	sawLabels        bool
	sawSum, sawCount bool
}

// parseLabelSet parses a `{k="v",...}` label block (braces included) into a
// map, unescaping \\, \" and \n in values. Strict: names must be valid,
// unique, values quoted, no trailing comma.
func parseLabelSet(s string) (map[string]string, error) {
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return nil, fmt.Errorf("malformed label block")
	}
	body := s[1 : len(s)-1]
	out := make(map[string]string)
	i := 0
	for i < len(body) {
		j := strings.IndexByte(body[i:], '=')
		if j < 0 {
			return nil, fmt.Errorf("label without '='")
		}
		name := body[i : i+j]
		if !validPromName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		i += j + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("dangling escape in label %q", name)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape in label %q", name)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", name)
		}
		out[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("expected ',' between labels")
			}
			i++
			if i == len(body) {
				return nil, fmt.Errorf("trailing comma in label block")
			}
		}
	}
	return out, nil
}

// canonicalLabels serializes a label map in sorted key order for equality
// comparison across one family's samples.
func canonicalLabels(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q;", k, m[k])
	}
	return b.String()
}

// promNameRe-equivalent check without regexp: [a-zA-Z_:][a-zA-Z0-9_:]*
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if letter || (i > 0 && r >= '0' && r <= '9') {
			continue
		}
		return false
	}
	return true
}

// ParsePromText parses and validates an exposition document, returning the
// families keyed by name.
func ParsePromText(r io.Reader) (map[string]*PromFamily, error) {
	families := make(map[string]*PromFamily)
	// base maps a sample name to its owning family (histogram samples carry
	// _bucket/_sum/_count suffixes).
	owner := func(sample string) *PromFamily {
		if f, ok := families[sample]; ok {
			return f
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(sample, suf); ok {
				if f, ok := families[base]; ok && f.Type == "histogram" {
					return f
				}
			}
		}
		return nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fail := func(format string, args ...any) (map[string]*PromFamily, error) {
			return nil, fmt.Errorf("prom parse: line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !validPromName(name) {
				return fail("malformed HELP")
			}
			if _, dup := families[name]; dup {
				return fail("duplicate family %s", name)
			}
			families[name] = &PromFamily{Name: name, Help: help}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validPromName(name) {
				return fail("malformed TYPE")
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return fail("unknown type %s", typ)
			}
			f, ok := families[name]
			if !ok {
				return fail("TYPE without preceding HELP")
			}
			if f.Type != "" {
				return fail("duplicate TYPE for %s", name)
			}
			if len(f.Samples) > 0 || f.sawSum || f.sawCount {
				return fail("TYPE after samples for %s", name)
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fail("unexpected comment")
		}

		// Sample line: name[{le="bound"}] value
		nameAndLabels, valueStr, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(valueStr, " ") {
			return fail("malformed sample")
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return fail("bad value: %v", err)
		}
		name := nameAndLabels
		le := math.NaN()
		var constLabels map[string]string
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			name = nameAndLabels[:i]
			labels, lerr := parseLabelSet(nameAndLabels[i:])
			if lerr != nil {
				return fail("bad labels: %v", lerr)
			}
			if leStr, ok := labels["le"]; ok {
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fail("bad le bound: %v", err)
				}
				if !strings.HasSuffix(name, "_bucket") {
					return fail("le label on a non-bucket sample")
				}
				delete(labels, "le")
			}
			if len(labels) > 0 {
				constLabels = labels
			}
		}
		if !validPromName(name) {
			return fail("invalid sample name")
		}
		f := owner(name)
		if f == nil || f.Type == "" {
			return fail("sample before its # TYPE family")
		}
		// Constant (non-le) labels must agree across one family's samples.
		if key := canonicalLabels(constLabels); !f.sawLabels {
			f.sawLabels, f.labelKey, f.Labels = true, key, constLabels
		} else if key != f.labelKey {
			return fail("inconsistent label sets in family %s", f.Name)
		}
		switch {
		case f.Type == "histogram" && strings.HasSuffix(name, "_bucket"):
			if math.IsNaN(le) {
				return fail("histogram bucket without le label")
			}
			if n := len(f.Samples); n > 0 {
				prev := f.Samples[n-1]
				if !(le > prev.Le) {
					return fail("bucket bounds not increasing")
				}
				if value < prev.Value {
					return fail("bucket counts not cumulative")
				}
			}
			f.Samples = append(f.Samples, PromSample{Le: le, Value: value})
		case f.Type == "histogram" && strings.HasSuffix(name, "_sum"):
			if f.sawSum {
				return fail("duplicate _sum")
			}
			f.sawSum, f.Sum = true, value
		case f.Type == "histogram" && strings.HasSuffix(name, "_count"):
			if f.sawCount {
				return fail("duplicate _count")
			}
			f.sawCount, f.Count = true, int64(value)
		case f.Type == "histogram":
			return fail("bare sample in histogram family")
		default:
			if len(f.Samples) > 0 {
				return fail("duplicate sample for %s", name)
			}
			if !math.IsNaN(le) {
				return fail("le label on a %s", f.Type)
			}
			f.Samples = append(f.Samples, PromSample{Le: le, Value: value})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prom parse: %w", err)
	}
	// Family-level invariants.
	for name, f := range families {
		if f.Type == "" {
			return nil, fmt.Errorf("prom parse: family %s has HELP but no TYPE", name)
		}
		switch f.Type {
		case "histogram":
			if !f.sawSum || !f.sawCount {
				return nil, fmt.Errorf("prom parse: histogram %s missing _sum or _count", name)
			}
			if len(f.Samples) == 0 {
				return nil, fmt.Errorf("prom parse: histogram %s has no buckets", name)
			}
			last := f.Samples[len(f.Samples)-1]
			if !math.IsInf(last.Le, 1) {
				return nil, fmt.Errorf("prom parse: histogram %s missing +Inf bucket", name)
			}
			if int64(last.Value) != f.Count {
				return nil, fmt.Errorf("prom parse: histogram %s +Inf bucket %v != count %d", name, last.Value, f.Count)
			}
		default:
			if len(f.Samples) != 1 {
				return nil, fmt.Errorf("prom parse: %s %s has %d samples, want 1", f.Type, name, len(f.Samples))
			}
		}
	}
	return families, nil
}
