// Command chquery runs structure queries — indexed slicing, aggregation
// and paging over a trace's recovered logical structure — against a local
// trace file, a generated workload, or a remote charmd server.
//
// Usage:
//
//	chquery -app jacobi -select steps -chares 1,3 -steps 9..40
//	chquery -in run.trace -select metrics -group-by chare -aggs count,sum
//	chquery -app lulesh -select viz -steps 0..60
//	chquery -server http://localhost:8080 -digest <digest> -select structure
//	chquery -app jacobi -spec '{"select":"steps","limit":10}'
//
// The filter flags mirror the charmd GET parameters; -spec takes a raw
// JSON query spec instead (prefix @ to read it from a file). -limit pages
// the result; -all follows cursors until the result is exhausted.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"

	"charmtrace/internal/cli"
	"charmtrace/internal/core"
	"charmtrace/internal/lod"
	"charmtrace/internal/query"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chquery:", err)
		os.Exit(1)
	}
}

// page is the wire/output shape: a superset of the charmd query response.
type page struct {
	Digest      string           `json:"digest,omitempty"`
	Fingerprint string           `json:"fingerprint,omitempty"`
	Select      string           `json:"select"`
	TotalRows   int              `json:"total_rows"`
	Window      *query.StepRange `json:"window,omitempty"`
	Rows        []map[string]any `json:"rows"`
	NextCursor  string           `json:"next_cursor,omitempty"`
}

func run() error {
	in := flag.String("in", "", "input trace file")
	app := flag.String("app", "", "generate this workload instead of reading a file")
	server := flag.String("server", "", "query a remote charmd at this base URL (requires -digest)")
	digest := flag.String("digest", "", "trace digest on the remote server")
	mp := flag.Bool("mp", false, "message-passing analysis options (remote: preset=mp)")
	iters := flag.Int("iters", 0, "iteration override for -app")
	scale := flag.Int("scale", 0, "size override for -app")
	seed := flag.Int64("seed", 0, "seed override for -app")
	parallelism := flag.Int("parallelism", 0, "extraction worker count for local mode (0 = all cores; output is identical)")

	sel := flag.String("select", "structure", "row kind: structure | steps | metrics | viz")
	phases := flag.String("phases", "", "filter: comma-separated phase ids")
	chares := flag.String("chares", "", "filter: comma-separated chare ids")
	steps := flag.String("steps", "", "filter: global step window from..to (or a single step)")
	groupBy := flag.String("group-by", "", "aggregate select=metrics rows by phase or chare")
	aggs := flag.String("aggs", "", "aggregates for -group-by: comma-separated count,sum,mean,max")
	fields := flag.String("fields", "", "project rows to these comma-separated columns")
	limit := flag.Int("limit", 0, "rows per page (0 = everything)")
	cursor := flag.String("cursor", "", "resume after this page cursor")
	all := flag.Bool("all", false, "follow cursors and print the concatenated result")
	rawSpec := flag.String("spec", "", "raw JSON query spec (@file to read from a file); overrides the filter flags")
	retries := flag.Int("retries", 3, "remote mode: extra attempts after a 429 or 503 (Retry-After honored, exponential backoff otherwise)")
	lodMode := flag.Bool("lod", false, "level-of-detail aggregation instead of a query (uses -resolution, -steps, -max-rows, -max-edges, -render)")
	resolution := flag.String("resolution", "", "-lod: bucket budget, a positive integer or \"native\" (default native)")
	maxRows := flag.Int("max-rows", 0, "-lod: cap cluster rows; past it the smallest clusters merge into one overflow row")
	maxEdges := flag.Int("max-edges", 0, "-lod: cap aggregated communication edges, keeping the heaviest")
	render := flag.Bool("render", false, "-lod: include the clustered text render (native resolution only)")
	tele := cli.NewTelemetry("chquery", flag.CommandLine)
	flag.Parse()
	if err := tele.Start(); err != nil {
		return err
	}

	cfg := fetcherConfig{
		in: *in, app: *app, server: *server, digest: *digest, mp: *mp,
		iters: *iters, scale: *scale, seed: *seed, parallelism: *parallelism,
		retries: *retries,
	}

	if *lodMode {
		return runLod(cfg, *resolution, *steps, *maxRows, *maxEdges, *render)
	}

	spec, err := buildSpec(*rawSpec, *sel, *phases, *chares, *steps, *groupBy, *aggs, *fields, *limit, *cursor)
	if err != nil {
		return err
	}
	if *all && spec.Limit == 0 {
		// -all needs pages to follow; pick a transport-friendly page size.
		spec.Limit = 1000
	}

	fetch, err := newFetcher(cfg)
	if err != nil {
		return err
	}

	out, err := fetch(spec)
	if err != nil {
		return err
	}
	for *all && out.NextCursor != "" {
		spec.Cursor = out.NextCursor
		next, err := fetch(spec)
		if err != nil {
			return err
		}
		out.Rows = append(out.Rows, next.Rows...)
		out.NextCursor = next.NextCursor
	}
	if *all {
		out.NextCursor = ""
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// buildSpec assembles the query spec from the raw -spec JSON or the
// individual filter flags (which reuse the charmd GET parameter grammar).
func buildSpec(raw, sel, phases, chares, steps, groupBy, aggs, fields string, limit int, cursor string) (query.Spec, error) {
	if raw != "" {
		if path, ok := strings.CutPrefix(raw, "@"); ok {
			data, err := os.ReadFile(path)
			if err != nil {
				return query.Spec{}, err
			}
			raw = string(data)
		}
		return query.ParseSpec(strings.NewReader(raw))
	}
	v := url.Values{}
	set := func(k, val string) {
		if val != "" {
			v.Set(k, val)
		}
	}
	set("phase", phases)
	set("chares", chares)
	set("steps", steps)
	set("group_by", groupBy)
	set("aggs", aggs)
	set("fields", fields)
	set("page", cursor)
	if limit > 0 {
		v.Set("limit", fmt.Sprint(limit))
	}
	spec, used, err := query.SpecFromParams(sel, v)
	if err != nil {
		return query.Spec{}, err
	}
	if !used {
		spec = query.Spec{Select: sel}
		if err := spec.Validate(); err != nil {
			return query.Spec{}, err
		}
	}
	return spec, nil
}

type fetcherConfig struct {
	in, app, server, digest string
	mp                      bool
	iters, scale            int
	seed                    int64
	parallelism             int
	retries                 int
}

// newFetcher resolves the query target into a page-fetching function:
// either one POST per page against a remote charmd, or an in-process
// engine over a locally extracted (and indexed, once) structure.
func newFetcher(cfg fetcherConfig) (func(query.Spec) (*page, error), error) {
	if cfg.server != "" {
		if cfg.digest == "" {
			return nil, fmt.Errorf("-server requires -digest")
		}
		base := strings.TrimSuffix(cfg.server, "/")
		target := base + "/v1/traces/" + cfg.digest + "/query"
		if cfg.mp {
			target += "?preset=mp"
		}
		rt := newRetrier(cfg.retries)
		return func(spec query.Spec) (*page, error) { return postPage(target, spec, rt) }, nil
	}

	s, opt, err := loadLocal(cfg)
	if err != nil {
		return nil, err
	}
	idx := query.BuildIndex(s)
	fp := opt.Fingerprint()
	return func(spec query.Spec) (*page, error) {
		res, err := query.Run(context.Background(), idx, spec)
		if err != nil {
			return nil, err
		}
		return &page{
			Fingerprint: fp,
			Select:      res.Select, TotalRows: res.TotalRows, Window: res.Window,
			Rows: res.Rows, NextCursor: res.NextCursor,
		}, nil
	}, nil
}

// loadLocal resolves -in/-app into an extracted structure — the shared
// local-mode front of the query and LOD paths.
func loadLocal(cfg fetcherConfig) (*core.Structure, core.Options, error) {
	var tr *trace.Trace
	var opt core.Options
	var err error
	switch {
	case cfg.app != "":
		tr, opt, err = cli.Generate(cfg.app, cli.Params{Iterations: cfg.iters, Scale: cfg.scale, Seed: cfg.seed})
	case cfg.in != "":
		tr, err = tracefile.ReadFile(cfg.in)
		opt = core.DefaultOptions()
		if cfg.mp {
			opt = core.MessagePassingOptions()
		}
	default:
		err = fmt.Errorf("need -in <file>, -app <workload> or -server <url>; workloads:\n%s", cli.Describe())
	}
	if err != nil {
		return nil, opt, err
	}
	opt.Parallelism = cfg.parallelism
	ctx, stopSignals := cli.SignalContext(context.Background())
	opt.Context = ctx
	s, err := core.Extract(tr, opt)
	stopSignals()
	if err != nil {
		return nil, opt, err
	}
	return s, opt, nil
}

// runLod executes one level-of-detail request: remotely via
// POST /v1/traces/{digest}/lod, or locally by building the pyramid over a
// freshly extracted structure. Either way the response JSON goes to stdout.
func runLod(cfg fetcherConfig, resolution, steps string, maxRows, maxEdges int, render bool) error {
	sp := lod.Spec{MaxRows: maxRows, MaxEdges: maxEdges, Render: render}
	var err error
	if sp.Resolution, err = lod.ParseResolution(resolution); err != nil {
		return err
	}
	if steps != "" {
		v := url.Values{}
		v.Set("steps", steps)
		parsed, err := lod.SpecFromParams(v)
		if err != nil {
			return err
		}
		sp.Steps = parsed.Steps
	}
	if err := sp.Validate(); err != nil {
		return err
	}

	if cfg.server != "" {
		if cfg.digest == "" {
			return fmt.Errorf("-server requires -digest")
		}
		target := strings.TrimSuffix(cfg.server, "/") + "/v1/traces/" + cfg.digest + "/lod"
		if cfg.mp {
			target += "?preset=mp"
		}
		body, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		rt := newRetrier(cfg.retries)
		resp, err := rt.do(func() (*http.Response, error) {
			return http.Post(target, "application/json", bytes.NewReader(body))
		})
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
				Field string `json:"field"`
			}
			if json.Unmarshal(data, &e) == nil && e.Error != "" {
				if e.Field != "" {
					return fmt.Errorf("server: %s (field %s)", e.Error, e.Field)
				}
				return fmt.Errorf("server: %s", e.Error)
			}
			return fmt.Errorf("server: status %d: %s", resp.StatusCode, data)
		}
		_, err = os.Stdout.Write(data)
		return err
	}

	s, opt, err := loadLocal(cfg)
	if err != nil {
		return err
	}
	res, err := lod.Build(s, nil).Query(sp, nil)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Fingerprint string `json:"fingerprint"`
		*lod.Result
	}{Fingerprint: opt.Fingerprint(), Result: res})
}

// postPage fetches one page from a charmd query endpoint, retrying
// transient pressure (429/503) per the retrier's policy.
func postPage(target string, spec query.Spec, rt *retrier) (*page, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := rt.do(func() (*http.Response, error) {
		return http.Post(target, "application/json", bytes.NewReader(body))
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
			Field string `json:"field"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			if e.Field != "" {
				return nil, fmt.Errorf("server: %s (field %s)", e.Error, e.Field)
			}
			return nil, fmt.Errorf("server: %s", e.Error)
		}
		return nil, fmt.Errorf("server: status %d: %s", resp.StatusCode, data)
	}
	var p page
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	return &p, nil
}
