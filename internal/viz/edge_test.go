package viz

import (
	"strings"
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
	"charmtrace/internal/trace"
)

// emptyStructure extracts a valid trace with zero events: MaxStep is -1
// and there are no phases.
func emptyStructure(t *testing.T) *core.Structure {
	t.Helper()
	b := trace.NewBuilder(1)
	b.AddRuntimeChare("main", 0)
	tr, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// singleChareStructure extracts a one-chare trace (a chare messaging
// itself across two serial blocks).
func singleChareStructure(t *testing.T) *core.Structure {
	t.Helper()
	b := trace.NewBuilder(1)
	c := b.AddChare("solo[0]", 0, 0, 0)
	e := b.AddEntry("work")
	m := b.NewMsg()
	b.BeginBlock(c, 0, e, 0)
	b.Send(c, m, 1)
	b.EndBlock(c, 2)
	b.BeginBlock(c, 0, e, 3)
	b.Recv(c, m, 4)
	b.EndBlock(c, 5)
	tr, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEmptyStructureRenders(t *testing.T) {
	s := emptyStructure(t)
	if got := Logical(s); got != "(empty structure)\n" {
		t.Errorf("Logical = %q", got)
	}
	if got := LogicalMetric(s, nil); got != "(empty structure)\n" {
		t.Errorf("LogicalMetric = %q", got)
	}
	if got := LogicalClustered(s, nil); got != "(empty structure)\n" {
		t.Errorf("LogicalClustered = %q", got)
	}
	if got := LogicalClusteredWindow(s, nil, 0, 10); got != "(empty window)\n" {
		t.Errorf("LogicalClusteredWindow = %q", got)
	}
	// An event-free trace also has an empty physical span.
	if got := Physical(s.Trace, s, 10); got != "(empty trace)\n" {
		t.Errorf("Physical = %q", got)
	}
}

func TestSingleChareRenders(t *testing.T) {
	s := singleChareStructure(t)
	out := Logical(s)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + ruler + one chare row
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "solo[0]") {
		t.Errorf("row label: %q", lines[2])
	}
	if !strings.ContainsAny(lines[2], phaseSymbols) {
		t.Errorf("no events rendered: %q", lines[2])
	}
	// Clustering a single chare into one row works too.
	rows := []ClusterRow{{Representative: 0, Label: "solo[0] x1"}}
	win := LogicalClusteredWindow(s, rows, 0, s.MaxStep())
	if !strings.Contains(win, "solo[0] x1") {
		t.Errorf("clustered window missing row:\n%s", win)
	}
}

// TestLogicalMetricShortSlice: a metric slice shorter than the event
// table shades the tail as zero instead of panicking — and a full-length
// slice of zeros renders identically.
func TestLogicalMetricShortSlice(t *testing.T) {
	s := structure(t)
	r := metrics.Compute(s)
	if len(r.DifferentialDuration) != len(s.Trace.Events) {
		t.Fatalf("metric length %d != events %d", len(r.DifferentialDuration), len(s.Trace.Events))
	}

	short := LogicalMetric(s, r.DifferentialDuration[:10])
	if !strings.Contains(short, "metric max") {
		t.Fatalf("short-slice render lost its header:\n%s", short)
	}
	if len(strings.Split(short, "\n")) != len(strings.Split(LogicalMetric(s, r.DifferentialDuration), "\n")) {
		t.Error("short metric slice changed the grid shape")
	}

	// nil metric = all zeros: every event cell renders as '0'. Only the
	// grid columns count — chare labels legitimately contain digits.
	var cells strings.Builder
	for _, line := range strings.Split(LogicalMetric(s, nil), "\n")[1:] {
		if len(line) > 17 {
			cells.WriteString(line[17:])
		}
	}
	if strings.ContainsAny(cells.String(), "123456789") {
		t.Error("nil metric produced non-zero shading")
	}
	if !strings.Contains(cells.String(), "0") {
		t.Error("nil metric rendered no cells")
	}

	// A short slice whose retained prefix is all the trace has matches the
	// full render padded with zeros.
	padded := make([]trace.Time, len(s.Trace.Events))
	copy(padded, r.DifferentialDuration[:10])
	if got, want := LogicalMetric(s, r.DifferentialDuration[:10]), LogicalMetric(s, padded); got != want {
		t.Error("short slice renders differently from its zero-padded equivalent")
	}
}

// TestClusteredWindowSlicesFullGrid: the [0, MaxStep] window renders
// exactly the rows of the unwindowed clustered grid, and interior windows
// are column slices of it.
func TestClusteredWindowSlicesFullGrid(t *testing.T) {
	s := structure(t)
	rows := []ClusterRow{
		{Representative: 0, Label: "jacobi[0] x4"},
		{Representative: 5, Label: "jacobi[5] x12"},
	}
	fullRows := strings.Split(strings.TrimRight(LogicalClustered(s, rows), "\n"), "\n")[1:]
	winRows := strings.Split(strings.TrimRight(LogicalClusteredWindow(s, rows, 0, s.MaxStep()), "\n"), "\n")[1:]
	if strings.Join(fullRows, "\n") != strings.Join(winRows, "\n") {
		t.Error("full-range window differs from the unwindowed render")
	}

	// An interior window is the same rows with the step columns sliced.
	const label = 24
	from, to := int32(10), int32(30)
	winRows = strings.Split(strings.TrimRight(LogicalClusteredWindow(s, rows, from, to), "\n"), "\n")[1:]
	for i, wr := range winRows {
		want := fullRows[i][:label+1] + fullRows[i][label+1+int(from):label+1+int(to)+1]
		if wr != want {
			t.Errorf("row %d:\n got %q\nwant %q", i, wr, want)
		}
	}

	// Out-of-range bounds clamp instead of panicking; inverted windows are
	// empty.
	if got := LogicalClusteredWindow(s, rows, -5, 1<<30); !strings.Contains(got, "steps 0..") {
		t.Errorf("clamped window header wrong:\n%s", got)
	}
	if got := LogicalClusteredWindow(s, rows, 20, 10); got != "(empty window)\n" {
		t.Errorf("inverted window = %q", got)
	}
	if got := LogicalClusteredWindow(s, rows, s.MaxStep()+5, s.MaxStep()+9); got != "(empty window)\n" {
		t.Errorf("past-the-end window = %q", got)
	}
}

func TestSymbolWraps(t *testing.T) {
	if Symbol(0) != 'A' || Symbol(1) != 'B' {
		t.Errorf("Symbol(0)=%c Symbol(1)=%c", Symbol(0), Symbol(1))
	}
	n := int32(len(phaseSymbols))
	if Symbol(n) != Symbol(0) || Symbol(n+3) != Symbol(3) {
		t.Error("Symbol does not wrap around the alphabet")
	}
}
