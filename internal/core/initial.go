package core

import (
	"charmtrace/internal/partition"
	"charmtrace/internal/trace"
)

// atoms holds the initial-partition decomposition of a trace, in flat
// index-based tables: every lookup the pipeline's hot sweeps perform is a
// slice index, never a map probe. It also owns the pipeline's arena — the
// reusable scratch buffers threaded through every later stage.
type atoms struct {
	set *partition.Set
	// of maps every dependency event to its atom.
	of []partition.ID
	// firstOf/lastOf map every block to its first/last atom (-1: the block
	// has no dependency events). Indexed by BlockID.
	firstOf []partition.ID
	lastOf  []partition.ID
	// absorb maps an entry-method block to the when-triggered serial block
	// that absorbed it (§2.1), -1 otherwise: the ordering stage treats the
	// pair as one serial block. Indexed by BlockID.
	absorb []trace.BlockID

	// arena is the per-extraction scratch allocator for the pipeline and
	// ordering stages.
	arena *extractArena
}

// canonicalBlock resolves a block through the absorb chain: the serial
// block that stands for it in the ordering stage.
func (a *atoms) canonicalBlock(b trace.BlockID) trace.BlockID {
	for a.absorb[b] >= 0 {
		b = a.absorb[b]
	}
	return b
}

// buildAtoms constructs the initial partitions (§3.1.1): maximal runs of
// dependency events within a serial block that stay on one side of the
// application/runtime boundary (Figure 2), plus the three kinds of initial
// edges: remote invocations, happened-before between the fragments of a
// split serial block, and SDAG-inferred happened-before (§2.1).
func buildAtoms(tr *trace.Trace, opt Options) *atoms {
	a := &atoms{
		set:     partition.NewSet(),
		of:      make([]partition.ID, len(tr.Events)),
		firstOf: make([]partition.ID, len(tr.Blocks)),
		lastOf:  make([]partition.ID, len(tr.Blocks)),
		absorb:  make([]trace.BlockID, len(tr.Blocks)),
	}
	for i := range a.of {
		a.of[i] = -1
	}
	for i := range a.firstOf {
		a.firstOf[i] = -1
		a.lastOf[i] = -1
		a.absorb[i] = -1
	}

	// Cut every serial block into runs of equal runtime-boundary flag. The
	// run buffer is reused across runs: AddAtom copies it into the set's
	// flat event table.
	var runEvents []trace.EventID
	for bi := range tr.Blocks {
		blk := &tr.Blocks[bi]
		if len(blk.Events) == 0 {
			continue
		}
		var prev partition.ID = -1
		run := partition.Atom{Chare: blk.Chare, Block: blk.ID}
		runEvents = runEvents[:0]
		runSet := false
		flush := func() {
			if len(runEvents) == 0 {
				return
			}
			run.Events = runEvents
			id := a.set.AddAtom(run)
			if prev >= 0 {
				// Happened-before between fragments of the split block.
				a.set.AddEdge(prev, id)
			} else {
				a.firstOf[blk.ID] = id
			}
			a.lastOf[blk.ID] = id
			for _, e := range runEvents {
				a.of[e] = id
			}
			prev = id
			runEvents = runEvents[:0]
			runSet = false
		}
		for _, e := range blk.Events {
			rt := touchesRuntime(tr, e)
			if runSet && rt != run.Runtime {
				flush()
			}
			run.Runtime = rt
			runSet = true
			runEvents = append(runEvents, e)
		}
		flush()
	}

	// Remote invocation edges: send atom -> each receive atom.
	for _, ev := range tr.Events {
		if ev.Kind != trace.Send || ev.Msg == trace.NoMsg {
			continue
		}
		from := a.of[ev.ID]
		for _, r := range tr.RecvsOf(ev.Msg) {
			a.set.AddEdge(from, a.of[r])
		}
	}

	// Per-chare block-order edges: SDAG-inferred happened-before (adjacent
	// serial numbers, when-absorption) and, for message-passing traces,
	// full process-order dependencies.
	for c := range tr.Chares {
		blocks := tr.BlocksOfChare(trace.ChareID(c))
		for i := 0; i+1 < len(blocks); i++ {
			cur, next := blocks[i], blocks[i+1]
			la, fb := a.lastOf[cur], a.firstOf[next]
			if la < 0 || fb < 0 {
				continue
			}
			ce, ne := &tr.Entries[tr.Blocks[cur].Entry], &tr.Entries[tr.Blocks[next].Entry]
			switch {
			case opt.ProcessOrderDeps:
				a.set.AddEdge(la, fb)
			case ce.SDAGSerial >= 0 && ne.SDAGSerial == ce.SDAGSerial+1:
				// Serial n observed right before serial n+1 on this chare:
				// infer the first happened-before the second (§2.1).
				a.set.AddEdge(la, fb)
			case ne.AfterWhen && ce.SDAGSerial < 0:
				// An entry method right before a when-triggered serial is
				// absorbed into that serial's entry method (§2.1): merge
				// their partitions and let the ordering stage treat the
				// pair as one serial block.
				if a.set.AtomRuntime(la) == a.set.AtomRuntime(fb) {
					a.set.Union(la, fb)
				} else {
					a.set.AddEdge(la, fb)
				}
				a.absorb[cur] = next
			}
		}
	}
	a.arena = newExtractArena(tr)
	return a
}

// touchesRuntime reports whether a dependency event crosses into the
// runtime: its own chare is a runtime chare, or the far endpoint of its
// message is on a runtime chare.
func touchesRuntime(tr *trace.Trace, eid trace.EventID) bool {
	ev := &tr.Events[eid]
	if tr.IsRuntimeChare(ev.Chare) {
		return true
	}
	if ev.Msg == trace.NoMsg {
		return false
	}
	switch ev.Kind {
	case trace.Send:
		for _, r := range tr.RecvsOf(ev.Msg) {
			if tr.IsRuntimeChare(tr.Events[r].Chare) {
				return true
			}
		}
	case trace.Recv:
		if s := tr.MatchingSend(eid); s != trace.NoEvent {
			return tr.IsRuntimeChare(tr.Events[s].Chare)
		}
	}
	return false
}
