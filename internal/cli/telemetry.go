package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
)

// Telemetry bundles the observability surface shared by the command-line
// tools: the -stats-json / -self-trace sinks and the -cpuprofile /
// -memprofile pprof flags. Construct with NewTelemetry (extraction tools)
// or NewProfiling (tools that never extract), call Start after flag
// parsing, Apply on every extraction's Options, and Close before exit.
type Telemetry struct {
	// Tool names the command in exports (the "tool" field of -stats-json).
	Tool string
	// StatsJSON / SelfTrace / CPUProfile / MemProfile are the output paths,
	// empty when the corresponding flag is unset. RegisterFlags binds them.
	StatsJSON  string
	SelfTrace  string
	CPUProfile string
	MemProfile string

	labels    map[string]string
	collector *telemetry.Collector
	registry  *telemetry.Registry
	cpuFile   *os.File
}

// NewTelemetry registers the full observability flag set on fs (pass
// flag.CommandLine in a main) and returns the handle.
func NewTelemetry(tool string, fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{Tool: tool, labels: make(map[string]string)}
	fs.StringVar(&t.StatsJSON, "stats-json", "",
		"write machine-readable run statistics (versioned schema) to this JSON file")
	fs.StringVar(&t.SelfTrace, "self-trace", "",
		"write a Chrome trace-event file of the analyzer's own execution (open at ui.perfetto.dev)")
	t.registerProfileFlags(fs)
	return t
}

// NewProfiling registers only -cpuprofile/-memprofile, for tools with no
// extraction pipeline to report on (tracegen, traceprofile).
func NewProfiling(tool string, fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{Tool: tool, labels: make(map[string]string)}
	t.registerProfileFlags(fs)
	return t
}

func (t *Telemetry) registerProfileFlags(fs *flag.FlagSet) {
	fs.StringVar(&t.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&t.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
}

// Active reports whether any telemetry sink was requested.
func (t *Telemetry) Active() bool { return t.StatsJSON != "" || t.SelfTrace != "" }

// Label attaches a key/value label to the stats export (e.g. the workload
// name), overwriting any previous value for the key.
func (t *Telemetry) Label(k, v string) { t.labels[k] = v }

// Start begins CPU profiling if requested. Call once, after flag parsing.
func (t *Telemetry) Start() error {
	if t.CPUProfile == "" {
		return nil
	}
	f, err := os.Create(t.CPUProfile)
	if err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cli: %w", err)
	}
	t.cpuFile = f
	return nil
}

// Apply attaches the telemetry sinks to an extraction: the span collector
// (self-tracing) and the shared registry every extraction's metrics
// accumulate into. A no-op when no sink was requested, leaving opt with
// zero-overhead disabled telemetry.
func (t *Telemetry) Apply(opt *core.Options) {
	if !t.Active() {
		return
	}
	if t.collector == nil {
		t.collector = telemetry.NewCollector()
		t.registry = telemetry.NewRegistry()
	}
	opt.Telemetry = t.collector
	opt.Metrics = t.registry
}

// Close flushes every requested sink: stops the CPU profile, writes the
// heap profile, the Chrome trace-event file, and the stats JSON. Returns
// the first error.
func (t *Telemetry) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if t.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(t.cpuFile.Close())
		t.cpuFile = nil
	}
	if t.MemProfile != "" {
		keep(t.writeMemProfile())
	}
	if t.SelfTrace != "" {
		if t.collector == nil {
			keep(fmt.Errorf("cli: -self-trace requested but no extraction ran"))
		} else {
			keep(t.collector.WriteChromeTraceFile(t.SelfTrace))
		}
	}
	if t.StatsJSON != "" {
		if t.registry == nil {
			keep(fmt.Errorf("cli: -stats-json requested but no extraction ran"))
		} else {
			e := telemetry.ExportRegistry(t.registry, t.Tool, core.StageOrder)
			if len(t.labels) > 0 {
				e.Labels = t.labels
			}
			e.SpanCount = len(t.collector.Spans())
			keep(e.WriteFile(t.StatsJSON))
		}
	}
	return first
}

func (t *Telemetry) writeMemProfile() error {
	f, err := os.Create(t.MemProfile)
	if err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cli: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	return nil
}
