package core

import (
	"fmt"
	"sync"

	"charmtrace/internal/trace"
)

// ExtractBatch recovers the logical structure of many traces concurrently.
// Results are returned in input order and each is byte-identical to what a
// lone Extract(traces[i], opt) returns, so multi-run comparison workflows
// (seed-invariance studies, MPI-vs-Charm++ correspondence) can batch their
// analyses without changing their output.
//
// Unindexed traces are indexed sequentially up front, so a batch may safely
// contain the same *Trace more than once; after indexing, extraction only
// reads the trace. If any trace fails, ExtractBatch returns nil and the
// error of the lowest-indexed failure, annotated with its position.
//
// The worker budget opt.Workers() is split between the two levels instead
// of applied at both: one pool of min(workers, len(traces)) goroutines is
// started once and pulls trace indices from a shared channel, and each pool
// slot runs its extractions' internal stages at its share of the budget
// (splitBudget), so the slot shares always sum to the full budget — with
// workers=4 over 3 traces the slots run at 2/1/1 inner workers instead of
// the earlier uniform workers/pool = 1, which idled a core for the whole
// batch. Earlier versions also spun up a fresh full-width pool inside every
// Extract call on top of a full-width batch fan-out, which both
// oversubscribed the CPU (up to workers² transient goroutines) and paid the
// pool start/stop cost once per trace per stage; on small traces that
// overhead made batching slower than the serial loop. A pool of one
// (workers == 1, or a single trace) runs inline on the calling goroutine
// with the full budget handed to the inner stages, reproducing plain
// sequential Extract calls exactly. The inner split never changes output:
// extraction is byte-identical at every worker count.
//
// A context attached via opt.Context cancels the batch cooperatively: each
// pool slot polls it before starting the next trace, and the in-progress
// extractions abort with one worker-chunk latency (see Options.Context).
// The batch then fails with the lowest-indexed cancellation error.
func ExtractBatch(traces []*trace.Trace, opt Options) ([]*Structure, error) {
	out := make([]*Structure, len(traces))
	if len(traces) == 0 {
		return out, nil
	}
	for i, tr := range traces {
		if tr == nil {
			return nil, fmt.Errorf("core: trace %d: nil trace", i)
		}
		if !tr.Indexed() {
			if err := tr.Index(); err != nil {
				return nil, fmt.Errorf("core: trace %d: %w", i, err)
			}
		}
	}

	workers := opt.Workers()
	pool := workers
	if pool > len(traces) {
		pool = len(traces)
	}
	budgets := splitBudget(workers, pool)

	errs := make([]error, len(traces))
	extractInto := func(i, innerWorkers int) {
		if err := opt.ctxErr(); err != nil {
			errs[i] = fmt.Errorf("extract cancelled: %w", err)
			return
		}
		inner := opt
		inner.Parallel = false
		inner.Parallelism = innerWorkers
		out[i], errs[i] = Extract(traces[i], inner)
		if out[i] != nil {
			// The inner worker split is an execution detail; record the
			// caller's options, exactly as a lone Extract would.
			out[i].Opts = opt
		}
	}

	if pool <= 1 {
		for i := range traces {
			extractInto(i, workers)
		}
	} else {
		// One long-lived pool for the whole batch: workers pull indices from
		// a channel, so an early-finishing worker moves on to the next trace
		// instead of idling behind a static partition.
		work := make(chan int)
		var wg sync.WaitGroup
		wg.Add(pool)
		for w := 0; w < pool; w++ {
			go func(budget int) {
				defer wg.Done()
				for i := range work {
					extractInto(i, budget)
				}
			}(budgets[w])
		}
		for i := range traces {
			work <- i
		}
		close(work)
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: trace %d: %w", i, err)
		}
	}
	return out, nil
}

// splitBudget distributes a worker budget over pool slots: every slot gets
// at least budget/pool workers and the remainder goes to the first
// budget%pool slots one worker each, so the shares always sum to
// max(budget, pool) and no core idles behind an integer division. pool
// must be positive.
func splitBudget(budget, pool int) []int {
	if budget < pool {
		budget = pool // one worker per slot is the floor
	}
	shares := make([]int, pool)
	base, extra := budget/pool, budget%pool
	for i := range shares {
		shares[i] = base
		if i < extra {
			shares[i]++
		}
	}
	return shares
}
