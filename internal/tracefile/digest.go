package tracefile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"charmtrace/internal/trace"
)

// ReadAutoDigest decodes a trace in either format (like ReadAuto) while
// streaming every byte of r through SHA-256 in the same pass — no second
// read, no buffering of the whole input. The digest is the content address
// of the raw byte stream: after a successful decode, any remaining bytes
// are drained into the hash so the digest always covers the entire input,
// independent of reader buffering. Note the address is of the serialized
// form — the same trace uploaded once as text and once as binary yields two
// digests, each stable for its own bytes.
//
// Decode failures carry the ErrMalformed tag, like ReadAuto's.
func ReadAutoDigest(r io.Reader) (*trace.Trace, string, error) {
	h := sha256.New()
	tee := io.TeeReader(r, h)
	tr, err := ReadAuto(tee)
	if err != nil {
		return nil, "", err
	}
	if _, err := io.Copy(io.Discard, tee); err != nil {
		return nil, "", fmt.Errorf("tracefile: digest drain: %w", err)
	}
	return tr, hex.EncodeToString(h.Sum(nil)), nil
}

// DigestBytes returns the content address ReadAutoDigest would compute for
// an in-memory serialized trace. It does not validate the bytes.
func DigestBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
