package metrics

import (
	"math/rand"
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// twoChareTrace: chare A sends to B; B's block has a long compute before a
// second send, letting us pin down sub-block durations.
func twoChareTrace(t *testing.T) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder(2)
	e := b.AddEntry("work")
	a := b.AddChare("A", trace.NoArray, -1, 0)
	bb := b.AddChare("B", trace.NoArray, -1, 1)
	m1, m2 := b.NewMsg(), b.NewMsg()
	// A: block [0,10], send m1 at 4.
	b.BeginBlock(a, 0, e, 0)
	b.Send(a, m1, 4)
	b.EndBlock(a, 10)
	// B: block [20,100], recv m1 at 20, send m2 at 90, trailing 10ns.
	b.BeginBlock(bb, 1, e, 20)
	b.Recv(bb, m1, 20)
	b.Send(bb, m2, 90)
	b.EndBlock(bb, 100)
	// A: block [110,115], recv m2.
	b.BeginBlock(a, 0, e, 110)
	b.Recv(a, m2, 110)
	b.EndBlock(a, 115)
	b.Idle(0, 10, 110) // A's PE idled between its blocks
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return tr
}

func extract(t *testing.T, tr *trace.Trace) *core.Structure {
	t.Helper()
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	return s
}

func TestSubBlockDurations(t *testing.T) {
	tr := twoChareTrace(t)
	dur := SubBlockDurations(tr)
	// Event 0: A's send at 4, block [0,10], send-initial block: leftover 6
	// goes to the last event (itself): 4 + 6 = 10.
	if dur[0] != 10 {
		t.Fatalf("send sub-block = %d, want 10", dur[0])
	}
	// Event 1: B's recv at 20, block [20,100]: 0 span + leftover 10 = 10.
	if dur[1] != 10 {
		t.Fatalf("recv sub-block = %d, want 10 (leftover to recorded start)", dur[1])
	}
	// Event 2: B's send at 90: 90-20 = 70 (the compute).
	if dur[2] != 70 {
		t.Fatalf("compute sub-block = %d, want 70", dur[2])
	}
	// Event 3: A's recv at 110, block [110,115]: 0 + leftover 5.
	if dur[3] != 5 {
		t.Fatalf("final recv sub-block = %d, want 5", dur[3])
	}
}

func TestSubBlockDurationsSumToBlockDuration(t *testing.T) {
	tr := twoChareTrace(t)
	dur := SubBlockDurations(tr)
	for bi := range tr.Blocks {
		blk := &tr.Blocks[bi]
		if len(blk.Events) == 0 {
			continue
		}
		var sum trace.Time
		for _, e := range blk.Events {
			sum += dur[e]
		}
		if sum != blk.Duration() {
			t.Fatalf("block %d sub-blocks sum to %d, duration %d", bi, sum, blk.Duration())
		}
	}
}

func TestDifferentialDurationNonNegativeWithZeroMin(t *testing.T) {
	tr := twoChareTrace(t)
	r := Compute(extract(t, tr))
	type key struct{ p, s int32 }
	zero := make(map[key]bool)
	for e := range tr.Events {
		d := r.DifferentialDuration[e]
		if d < 0 {
			t.Fatalf("negative differential duration at %d", e)
		}
		if d == 0 {
			zero[key{r.Structure.PhaseOf[e], r.Structure.LocalStep[e]}] = true
		}
	}
	for e := range tr.Events {
		k := key{r.Structure.PhaseOf[e], r.Structure.LocalStep[e]}
		if !zero[k] {
			t.Fatalf("group %+v has no zero-differential event", k)
		}
	}
}

func TestDifferentialHighlightsSlowPeer(t *testing.T) {
	// Four chares each receive a message at the same logical step; one takes
	// 10x longer. Differential duration must single it out.
	b := trace.NewBuilder(5)
	e := b.AddEntry("work")
	root := b.AddChare("root", trace.NoArray, -1, 4)
	var kids []trace.ChareID
	for i := 0; i < 4; i++ {
		kids = append(kids, b.AddChare("kid", 0, i, trace.PE(i)))
	}
	m := b.NewMsg()
	b.BeginBlock(root, 4, e, 0)
	b.Send(root, m, 0)
	b.EndBlock(root, 1)
	reply := make([]trace.MsgID, 4)
	for i, k := range kids {
		reply[i] = b.NewMsg()
		dur := trace.Time(10)
		if i == 2 {
			dur = 100 // the slow chare
		}
		begin := trace.Time(10)
		b.BeginBlock(k, trace.PE(i), e, begin)
		b.Recv(k, m, begin)
		b.Send(k, reply[i], begin+dur)
		b.EndBlock(k, begin+dur)
	}
	for i := range kids {
		begin := trace.Time(200 + 10*trace.Time(i))
		b.BeginBlock(root, 4, e, begin)
		b.Recv(root, reply[i], begin)
		b.EndBlock(root, begin+1)
	}
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	r := Compute(extract(t, tr))
	maxD, at := r.MaxDifferentialDuration()
	if maxD != 90 {
		t.Fatalf("max differential = %d, want 90", maxD)
	}
	if tr.Events[at].Chare != kids[2] {
		t.Fatalf("max differential at chare %d, want slow chare %d", tr.Events[at].Chare, kids[2])
	}
	high := r.HighDifferentialEvents(0.5)
	if len(high) != 1 || high[0] != at {
		t.Fatalf("HighDifferentialEvents = %v, want only the slow event", high)
	}
}

func TestIdleExperienced(t *testing.T) {
	tr := twoChareTrace(t)
	r := Compute(extract(t, tr))
	// PE 0 idled [10,110]; the block starting at 110 (event 3) follows it.
	if r.IdleExperienced[3] != 100 {
		t.Fatalf("idle experienced at event 3 = %d, want 100", r.IdleExperienced[3])
	}
	for e := 0; e < 3; e++ {
		if r.IdleExperienced[e] != 0 {
			t.Fatalf("event %d has idle experienced %d, want 0", e, r.IdleExperienced[e])
		}
	}
}

func TestIdleExperiencedPropagation(t *testing.T) {
	// PE 0 idles, then runs two blocks whose dependencies (sends) both
	// started before the idle ended, then one whose dependency started
	// after: the first two experience the idle, the third does not.
	b := trace.NewBuilder(2)
	e := b.AddEntry("work")
	src := b.AddChare("src", trace.NoArray, -1, 1)
	c0 := b.AddChare("c0", trace.NoArray, -1, 0)
	c1 := b.AddChare("c1", trace.NoArray, -1, 0)
	c2 := b.AddChare("c2", trace.NoArray, -1, 0)
	m0, m1, m2 := b.NewMsg(), b.NewMsg(), b.NewMsg()
	b.BeginBlock(src, 1, e, 0)
	b.Send(src, m0, 10)
	b.Send(src, m1, 20)
	b.EndBlock(src, 30)
	b.BeginBlock(src, 1, e, 150)
	b.Send(src, m2, 160)
	b.EndBlock(src, 170)
	b.Idle(0, 0, 100)
	b.BeginBlock(c0, 0, e, 100)
	b.Recv(c0, m0, 100)
	b.EndBlock(c0, 110)
	b.BeginBlock(c1, 0, e, 110)
	b.Recv(c1, m1, 110)
	b.EndBlock(c1, 120)
	b.BeginBlock(c2, 0, e, 200)
	b.Recv(c2, m2, 200)
	b.EndBlock(c2, 210)
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	r := Compute(extract(t, tr))
	recv0 := tr.RecvsOf(m0)[0]
	recv1 := tr.RecvsOf(m1)[0]
	recv2 := tr.RecvsOf(m2)[0]
	if r.IdleExperienced[recv0] != 100 {
		t.Fatalf("recv0 idle = %d, want 100", r.IdleExperienced[recv0])
	}
	if r.IdleExperienced[recv1] != 100 {
		t.Fatalf("recv1 idle = %d, want 100 (dependency started before idle end)", r.IdleExperienced[recv1])
	}
	if r.IdleExperienced[recv2] != 0 {
		t.Fatalf("recv2 idle = %d, want 0 (dependency after idle end)", r.IdleExperienced[recv2])
	}
}

func TestImbalance(t *testing.T) {
	tr := twoChareTrace(t)
	r := Compute(extract(t, tr))
	for pi := range r.PhaseImbalance {
		if r.PhaseImbalance[pi] < 0 {
			t.Fatalf("negative phase imbalance at %d", pi)
		}
	}
	// In the phase holding B's 70ns compute, PE 1 outweighs PE 0.
	s := r.Structure
	computeEvent := trace.EventID(2)
	pi := s.PhaseOf[computeEvent]
	if r.PhaseLoad[pi][1] <= r.PhaseLoad[pi][0] {
		t.Fatalf("phase %d loads: PE1=%d PE0=%d, want PE1 heavier",
			pi, r.PhaseLoad[pi][1], r.PhaseLoad[pi][0])
	}
	if r.Imbalance[computeEvent] != r.PhaseLoad[pi][1]-r.PhaseLoad[pi][0] {
		t.Fatalf("event imbalance = %d, want load spread", r.Imbalance[computeEvent])
	}
}

func TestBlockMetricTakesMax(t *testing.T) {
	tr := twoChareTrace(t)
	dur := SubBlockDurations(tr)
	byBlock := BlockMetric(tr, dur)
	if byBlock[1] != 70 {
		t.Fatalf("block 1 metric = %d, want max sub-block 70", byBlock[1])
	}
}

// Property: sub-block durations are always non-negative and sum to block
// durations on randomized traces.
func TestSubBlockInvariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		tr := randTrace(rng)
		dur := SubBlockDurations(tr)
		for _, d := range dur {
			if d < 0 {
				t.Fatal("negative sub-block duration")
			}
		}
		for bi := range tr.Blocks {
			blk := &tr.Blocks[bi]
			if len(blk.Events) == 0 {
				continue
			}
			var sum trace.Time
			for _, e := range blk.Events {
				sum += dur[e]
			}
			if sum != blk.Duration() {
				t.Fatalf("block %d: sum %d != duration %d", bi, sum, blk.Duration())
			}
		}
	}
}

// randTrace is a light random trace generator (chain topology) for metric
// invariants.
func randTrace(rng *rand.Rand) *trace.Trace {
	n := 2 + rng.Intn(5)
	b := trace.NewBuilder(n)
	e := b.AddEntry("work")
	chares := make([]trace.ChareID, n)
	for i := range chares {
		chares[i] = b.AddChare("c", 0, i, trace.PE(i))
	}
	clock := make([]trace.Time, n)
	var prev trace.MsgID = trace.NoMsg
	var prevTime trace.Time
	hops := 3 + rng.Intn(10)
	for h := 0; h < hops; h++ {
		c := rng.Intn(n)
		begin := clock[c]
		if prev != trace.NoMsg && prevTime+1 > begin {
			begin = prevTime + 1
		}
		b.BeginBlock(chares[c], trace.PE(c), e, begin)
		t := begin
		if prev != trace.NoMsg {
			b.Recv(chares[c], prev, t)
		}
		t += trace.Time(1 + rng.Intn(50))
		m := b.NewMsg()
		b.Send(chares[c], m, t)
		end := t + trace.Time(rng.Intn(20))
		b.EndBlock(chares[c], end)
		clock[c] = end + 1
		prev, prevTime = m, t
	}
	// Terminal recv to match the last send.
	c := rng.Intn(n)
	begin := clock[c]
	if prevTime+1 > begin {
		begin = prevTime + 1
	}
	b.BeginBlock(chares[c], trace.PE(c), e, begin)
	b.Recv(chares[c], prev, begin)
	b.EndBlock(chares[c], begin+trace.Time(rng.Intn(10)))
	return b.MustFinish()
}
