package tracefile

import "errors"

// ErrMalformed tags every trace-decoding failure: bad headers, unparseable
// records, truncated or corrupt binary sections, dangling references and
// index-validation failures. Callers that feed untrusted bytes into Read /
// ReadBinary / ReadAuto (the charmd upload handler) branch on
// errors.Is(err, ErrMalformed) to report a client error (HTTP 400) rather
// than a server fault. A read that fails mid-stream for transport reasons is
// indistinguishable from a truncated file and carries the same tag — from
// the decoder's viewpoint both are an input that ended before a valid trace
// did.
var ErrMalformed = errors.New("malformed trace")

// malformedError wraps a decode failure so it matches both the original
// error chain (io.ErrUnexpectedEOF and friends stay inspectable) and the
// ErrMalformed sentinel.
type malformedError struct{ err error }

func (e *malformedError) Error() string   { return e.err.Error() }
func (e *malformedError) Unwrap() []error { return []error{e.err, ErrMalformed} }

// malformed tags err as a malformed-trace failure; nil passes through.
func malformed(err error) error {
	if err == nil {
		return nil
	}
	return &malformedError{err: err}
}
