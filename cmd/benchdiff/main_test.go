package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"charmtrace/internal/telemetry"
)

// writeBench materializes a bench export fixture on disk.
func writeBench(t *testing.T, dir, name string, rows map[string][2]int64) string {
	t.Helper()
	e := telemetry.NewBenchExport("test")
	// Deterministic row order keeps table assertions simple.
	for _, n := range []string{"Fig10MergeTree/par=1", "Serve/miss", "Query/cold", "ExtractBatch/par=1"} {
		if v, ok := rows[n]; ok {
			e.Add(n, 100, v[0], 0, v[1])
		}
	}
	path := filepath.Join(dir, name)
	if err := e.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

var baseRows = map[string][2]int64{
	"Fig10MergeTree/par=1": {10_000_000, 80_000},
	"Serve/miss":           {2_000_000, 11_000},
	"Query/cold":           {500_000, 4_000},
	"ExtractBatch/par=1":   {50_000_000, 200_000},
}

func runDiff(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestNoChangePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseRows)
	fresh := writeBench(t, dir, "fresh.json", baseRows)
	code, out, errb := runDiff(t, "-baseline", base, "-new", fresh)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "Fig10MergeTree/par=1") || !strings.Contains(out, "ok") {
		t.Fatalf("table missing expected rows:\n%s", out)
	}
}

func TestEnforcedWallRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseRows)
	reg := map[string][2]int64{}
	for k, v := range baseRows {
		reg[k] = v
	}
	// 40% wall-time regression on an enforced row: past the 30% threshold.
	reg["Fig10MergeTree/par=1"] = [2]int64{14_000_000, 80_000}
	fresh := writeBench(t, dir, "fresh.json", reg)
	code, out, errb := runDiff(t, "-baseline", base, "-new", fresh)
	if code == 0 {
		t.Fatalf("40%% wall regression on enforced row must fail\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(errb, "Fig10MergeTree/par=1") {
		t.Fatalf("missing regression report\nstdout: %s\nstderr: %s", out, errb)
	}
}

func TestEnforcedAllocRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseRows)
	reg := map[string][2]int64{}
	for k, v := range baseRows {
		reg[k] = v
	}
	// 25% alloc growth on Serve/miss: past the 20% threshold.
	reg["Serve/miss"] = [2]int64{2_000_000, 13_750}
	fresh := writeBench(t, dir, "fresh.json", reg)
	if code, out, _ := runDiff(t, "-baseline", base, "-new", fresh); code == 0 {
		t.Fatalf("25%% alloc regression on enforced row must fail\n%s", out)
	}
}

func TestUnenforcedRegressionIsAdvisory(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseRows)
	reg := map[string][2]int64{}
	for k, v := range baseRows {
		reg[k] = v
	}
	// Query and ExtractBatch are not in the default enforce set: a 2x
	// regression there reports but does not gate.
	reg["Query/cold"] = [2]int64{1_000_000, 8_000}
	reg["ExtractBatch/par=1"] = [2]int64{100_000_000, 400_000}
	fresh := writeBench(t, dir, "fresh.json", reg)
	code, out, _ := runDiff(t, "-baseline", base, "-new", fresh)
	if code != 0 {
		t.Fatalf("unenforced regressions must not gate, got exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("advisory regression must still be reported\n%s", out)
	}
}

func TestMissingEnforcedRowFails(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseRows)
	partial := map[string][2]int64{}
	for k, v := range baseRows {
		if k != "Serve/miss" {
			partial[k] = v
		}
	}
	fresh := writeBench(t, dir, "fresh.json", partial)
	code, out, errb := runDiff(t, "-baseline", base, "-new", fresh)
	if code == 0 {
		t.Fatalf("missing enforced row must fail\n%s", out)
	}
	if !strings.Contains(errb, "missing") {
		t.Fatalf("stderr should name the missing row: %s", errb)
	}
}

func TestThresholdFlagsOverride(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseRows)
	reg := map[string][2]int64{}
	for k, v := range baseRows {
		reg[k] = v
	}
	reg["Fig10MergeTree/par=1"] = [2]int64{11_000_000, 80_000} // +10%
	fresh := writeBench(t, dir, "fresh.json", reg)
	if code, out, _ := runDiff(t, "-baseline", base, "-new", fresh); code != 0 {
		t.Fatalf("+10%% is inside the default 30%% bound\n%s", out)
	}
	if code, _, _ := runDiff(t, "-baseline", base, "-new", fresh, "-max-wall", "0.05"); code == 0 {
		t.Fatal("+10% must fail a 5% bound")
	}
}

func TestMarkdownOutput(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseRows)
	fresh := writeBench(t, dir, "fresh.json", baseRows)
	code, out, _ := runDiff(t, "-baseline", base, "-new", fresh, "-markdown")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "| benchmark |") || !strings.Contains(out, "| Serve/miss |") {
		t.Fatalf("not a markdown table:\n%s", out)
	}
}

func TestMissingNewFlag(t *testing.T) {
	if code, _, _ := runDiff(t); code != 2 {
		t.Fatal("missing -new must be a usage error")
	}
}

func TestCommittedBaselineReadable(t *testing.T) {
	// The committed baseline must stay readable by the guard itself.
	if _, err := telemetry.ReadBenchFile("../../BENCH_extract.json"); err != nil {
		t.Fatal(err)
	}
}
