package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"charmtrace/internal/telemetry"
)

// DefaultProbeInterval is how often Health.Run probes each member when the
// caller passes no interval.
const DefaultProbeInterval = 2 * time.Second

// defaultProbeTimeout bounds one readiness probe.
const defaultProbeTimeout = 2 * time.Second

// Health tracks which cluster members are believed alive. Members start
// alive (optimistic: a gateway that boots before its nodes should try
// them, not blackhole them), transition to dead on a failed /readyz probe
// or an explicit MarkDead from a caller that just watched a transport
// error, and come back on the next successful probe. Safe for concurrent
// use.
type Health struct {
	client  *http.Client
	members []Member

	probeFails *telemetry.Counter // cluster.probe_failures
	aliveG     *telemetry.Gauge   // cluster.members_alive

	mu    sync.Mutex
	alive map[string]bool
}

// NewHealth builds a tracker for members. client nil uses a private client
// with the probe timeout; reg nil uses a private registry.
func NewHealth(members []Member, client *http.Client, reg *telemetry.Registry) *Health {
	if client == nil {
		client = &http.Client{Timeout: defaultProbeTimeout}
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	h := &Health{
		client:     client,
		members:    append([]Member(nil), members...),
		probeFails: reg.Counter("cluster.probe_failures"),
		aliveG:     reg.Gauge("cluster.members_alive"),
		alive:      make(map[string]bool, len(members)),
	}
	for _, m := range members {
		h.alive[m.Name] = true
	}
	h.aliveG.Set(float64(len(members)))
	return h
}

// Alive reports whether name is believed reachable. Unknown names are dead.
func (h *Health) Alive(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.alive[name]
}

// AliveCount returns how many members are believed reachable.
func (h *Health) AliveCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, ok := range h.alive {
		if ok {
			n++
		}
	}
	return n
}

// MarkDead records a member observed unreachable (a transport error on a
// proxied request): routing skips it until a probe brings it back.
func (h *Health) MarkDead(name string) { h.set(name, false) }

// MarkAlive records a member observed healthy.
func (h *Health) MarkAlive(name string) { h.set(name, true) }

func (h *Health) set(name string, ok bool) {
	h.mu.Lock()
	if _, known := h.alive[name]; known {
		h.alive[name] = ok
	}
	n := 0
	for _, a := range h.alive {
		if a {
			n++
		}
	}
	h.mu.Unlock()
	h.aliveG.Set(float64(n))
}

// ProbeOnce probes every member's /readyz concurrently and updates the
// liveness map. A member is alive iff the probe returns 200.
func (h *Health) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range h.members {
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			ok := h.probe(ctx, m)
			if !ok {
				h.probeFails.Add(1)
			}
			h.set(m.Name, ok)
		}(m)
	}
	wg.Wait()
}

func (h *Health) probe(ctx context.Context, m Member) bool {
	pctx, cancel := context.WithTimeout(ctx, defaultProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, m.URL+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Run probes every interval until ctx is cancelled. interval <= 0 selects
// DefaultProbeInterval.
func (h *Health) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			h.ProbeOnce(ctx)
		}
	}
}

// Snapshot returns each member's believed state, in member-list order, for
// the gateway's /cluster debug payload.
func (h *Health) Snapshot() []MemberStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]MemberStatus, 0, len(h.members))
	for _, m := range h.members {
		out = append(out, MemberStatus{Member: m, Alive: h.alive[m.Name]})
	}
	return out
}

// MemberStatus is one member plus its believed liveness.
type MemberStatus struct {
	Member
	Alive bool `json:"alive"`
}

// String renders like "2/3 alive" for log lines.
func (h *Health) String() string {
	return fmt.Sprintf("%d/%d alive", h.AliveCount(), len(h.members))
}
