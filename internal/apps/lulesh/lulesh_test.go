package lulesh

import (
	"testing"

	"charmtrace/internal/core"
)

// phaseKindsByOffset returns each phase's runtime flag ordered by offset.
func phaseKindsByOffset(s *core.Structure) ([]bool, []int32) {
	order := make([]int32, len(s.Phases))
	for i := range order {
		order[i] = int32(i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && s.Phases[order[j]].Offset < s.Phases[order[j-1]].Offset; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	kinds := make([]bool, len(order))
	for i, p := range order {
		kinds[i] = s.Phases[p].Runtime
	}
	return kinds, order
}

func TestCharmStructure(t *testing.T) {
	cfg := DefaultConfig()
	tr := MustCharmTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds, _ := phaseKindsByOffset(s)
	// Figure 16(b): setup (app) + setup reduction (runtime), then per
	// iteration two app phases + one runtime phase.
	want := 2 + 3*cfg.Iterations
	if len(kinds) != want {
		t.Fatalf("phases = %d, want %d (setup+reduction, then 2 app + allreduce per iteration); kinds=%v",
			len(kinds), want, kinds)
	}
	if kinds[0] || !kinds[1] {
		t.Fatalf("setup pattern wrong: %v", kinds[:2])
	}
	for it := 0; it < cfg.Iterations; it++ {
		base := 2 + 3*it
		if kinds[base] || kinds[base+1] || !kinds[base+2] {
			t.Fatalf("iteration %d pattern = %v, want [app app runtime]", it, kinds[base:base+3])
		}
	}
}

func TestCharmWithoutInferenceSplitsPhases(t *testing.T) {
	cfg := DefaultConfig()
	tr := MustCharmTrace(cfg)
	with, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	opt := core.DefaultOptions()
	opt.InferDependencies = false
	without, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatalf("Extract (no inference): %v", err)
	}
	if err := without.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 17: without the §3.1.4 inference and merging, phases split
	// into several smaller ones forced in sequence.
	if without.NumPhases() <= with.NumPhases() {
		t.Fatalf("phases without inference = %d, not more than with = %d",
			without.NumPhases(), with.NumPhases())
	}
}

func TestMPIStructure(t *testing.T) {
	cfg := DefaultConfig()
	tr := MustMPITrace(cfg)
	s, err := core.Extract(tr, core.MessagePassingOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 16(a): setup + setup allreduce, then per iteration three p2p
	// phases + one allreduce phase.
	want := 2 + 4*cfg.Iterations
	if s.NumPhases() != want {
		t.Fatalf("phases = %d, want %d", s.NumPhases(), want)
	}
}

func TestCharmAndMPIPhasePatternsCorrespond(t *testing.T) {
	cfg := DefaultConfig()
	charm := MustCharmTrace(cfg)
	mpi := MustMPITrace(cfg)
	sc, err := core.Extract(charm, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sm, err := core.Extract(mpi, core.MessagePassingOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: Charm++ has 2 p2p phases, MPI has 3; both end with a
	// collective. Charm++ therefore has exactly one fewer phase per
	// iteration.
	diff := sm.NumPhases() - sc.NumPhases()
	if diff != cfg.Iterations {
		t.Fatalf("MPI has %d phases, Charm++ %d; difference %d, want %d (one per iteration)",
			sm.NumPhases(), sc.NumPhases(), diff, cfg.Iterations)
	}
}
