package sim

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func TestQuiescenceFiresAfterDrain(t *testing.T) {
	rt := New(DefaultConfig(2))
	arr := rt.NewArray("q", 2, func(i int) int { return i }, nil)
	var lastWork Time
	var qdAt Time
	var hops EntryRef
	hops = arr.Register("hops", func(ctx *Ctx, m Message) {
		ctx.Compute(100)
		if n := m.Data.(int); n > 0 {
			ctx.Send(arr.At(1-ctx.Index()), hops, n-1)
		}
		lastWork = ctx.Now()
	})
	done := arr.Register("done", func(ctx *Ctx, m Message) {
		qdAt = ctx.Now()
		ctx.Compute(10)
	})
	rt.Spawn(arr.At(0), hops, 5)
	rt.OnQuiescence(arr.At(0), done, nil)
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if qdAt == 0 {
		t.Fatal("quiescence callback never fired")
	}
	if qdAt < lastWork {
		t.Fatalf("quiescence at %d before last work at %d", qdAt, lastWork)
	}
	// The QD delivery is a source block: no receive recorded for it.
	for _, b := range tr.Blocks {
		if tr.Entries[b.Entry].Name != "q::done" {
			continue
		}
		for _, e := range b.Events {
			if tr.Events[e].Kind == trace.Recv {
				t.Fatal("QD callback block has a recorded receive; the dependency should be invisible")
			}
		}
	}
}

func TestQuiescenceRounds(t *testing.T) {
	// The first QD callback creates more work; the second fires only after
	// that work drains too.
	rt := New(DefaultConfig(2))
	arr := rt.NewArray("qr", 2, func(i int) int { return i }, nil)
	var order []string
	work := arr.Register("work", func(ctx *Ctx, m Message) {
		ctx.Compute(50)
		order = append(order, "work")
	})
	first := arr.Register("first", func(ctx *Ctx, m Message) {
		order = append(order, "qd1")
		ctx.Send(arr.At(1), work, nil) // new work after quiescence
	})
	second := arr.Register("second", func(ctx *Ctx, m Message) {
		order = append(order, "qd2")
	})
	rt.Spawn(arr.At(0), work, nil)
	rt.OnQuiescence(arr.At(0), first, nil)
	rt.OnQuiescence(arr.At(0), second, nil)
	if _, err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"work", "qd1", "work", "qd2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestQuiescencePhaseIsConcurrent: the QD callback's phase has no recorded
// dependency on the work it followed, so the recovered structure places
// them concurrently unless time inference orders them — the Figure 24
// mechanism driven by a real completion-detection substrate.
func TestQuiescencePhaseIsConcurrent(t *testing.T) {
	rt := New(DefaultConfig(2))
	arr := rt.NewArray("qp", 4, nil, nil)
	det := rt.NewArray("qdet", 2, func(i int) int { return i }, nil)
	var ping EntryRef
	ping = arr.Register("ping", func(ctx *Ctx, m Message) {
		ctx.Compute(100)
		if n := m.Data.(int); n > 0 {
			ctx.Send(arr.At((ctx.Index()+1)%4), ping, n-1)
		}
	})
	var announce EntryRef
	announce = det.Register("announce", func(ctx *Ctx, m Message) {
		ctx.Compute(20)
		if ctx.Index() == 0 {
			ctx.Send(det.At(1), announce, nil)
		}
	})
	for i := 0; i < 4; i++ {
		rt.Spawn(arr.At(i), ping, 3)
	}
	rt.OnQuiescence(det.At(0), announce, nil)
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.ConcurrentPhases()) == 0 {
		t.Fatal("QD phase not concurrent with the work phase; expected the Figure 24 overlap")
	}
}
