package main

import (
	"fmt"

	"charmtrace/internal/conformance"
	"charmtrace/internal/core"
)

func init() {
	register("zoo", "conformance zoo census: nine workloads through extraction + replay-clock oracle", zooCensus)
}

// zooCensus sweeps the conformance zoo — the six paper proxies plus the
// three adversarial generators — printing each workload's trace shape and
// recovered structure, and cross-checking every extraction against the
// replay-clock oracle. It is the interactive face of the
// internal/conformance differential suite.
func zooCensus(bool) {
	fmt.Printf("  %-14s %7s %7s %7s %7s %7s %7s\n",
		"workload", "chares", "blocks", "events", "phases", "steps", "rounds")
	verified := 0
	zoo := conformance.Zoo()
	for _, w := range zoo {
		tr := w.MustGen()
		opt := w.Opts
		tele.Apply(&opt)
		s := must(core.Extract(tr, opt))
		o := must(conformance.NewOracle(tr))
		if err := o.Verify(s, 4096, 1); err != nil {
			panic(fmt.Sprintf("%s: oracle: %v", w.Name, err))
		}
		verified++
		fmt.Printf("  %-14s %7d %7d %7d %7d %7d %7d\n",
			w.Name, len(tr.Chares), len(tr.Blocks), len(tr.Events),
			s.NumPhases(), s.MaxStep()+1, s.Stats.EnforceRounds)
	}
	paperVsMeasured(
		"the recovered structure respects every dependency the trace records, across application patterns from stencil exchange to fail-stop recovery (§3.2)",
		fmt.Sprintf("%d/%d zoo workloads pass the replay-clock cross-check: ground-truth causal order embeds into strictly increasing global steps",
			verified, len(zoo)))
}
