package conformance

import (
	"fmt"

	"charmtrace/internal/apps/faultsim"
	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lassen"
	"charmtrace/internal/apps/lbmigrate"
	"charmtrace/internal/apps/lulesh"
	"charmtrace/internal/apps/mergetree"
	"charmtrace/internal/apps/nasbt"
	"charmtrace/internal/apps/ordstress"
	"charmtrace/internal/apps/pdes"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// Workload is one zoo member: a deterministic trace generator plus the
// extraction options matching its programming model.
type Workload struct {
	Name string
	Gen  func() (*trace.Trace, error)
	Opts core.Options
}

// MustGen generates the workload's trace or panics; the zoo generators are
// deterministic, so failure is a programming error, not an input condition.
func (w Workload) MustGen() *trace.Trace {
	tr, err := w.Gen()
	if err != nil {
		panic(fmt.Sprintf("conformance: workload %s: %v", w.Name, err))
	}
	return tr
}

// Zoo returns the nine representative workloads the conformance harness
// sweeps: the six paper proxies plus the three adversarial generators
// (mid-run migration, fail-stop + restart, orderability stress). The merge
// tree is scaled down from the paper's 1,024 processes so the full sweep at
// three parallelism levels stays fast under -race.
func Zoo() []Workload {
	return []Workload{
		{"jacobi", func() (*trace.Trace, error) { return jacobi.Trace(jacobi.DefaultConfig()) }, core.DefaultOptions()},
		{"lulesh-charm", func() (*trace.Trace, error) { return lulesh.CharmTrace(lulesh.DefaultConfig()) }, core.DefaultOptions()},
		{"lassen", func() (*trace.Trace, error) { return lassen.CharmTrace(lassen.DefaultConfig()) }, core.DefaultOptions()},
		{"mergetree", func() (*trace.Trace, error) {
			cfg := mergetree.DefaultConfig()
			cfg.Procs = 64
			return mergetree.Trace(cfg)
		}, core.MessagePassingOptions()},
		{"nasbt", func() (*trace.Trace, error) { return nasbt.Trace(nasbt.DefaultConfig()) }, core.MessagePassingOptions()},
		{"pdes", func() (*trace.Trace, error) { return pdes.Trace(pdes.DefaultConfig()) }, core.DefaultOptions()},
		{"lbmigrate", func() (*trace.Trace, error) { return lbmigrate.Trace(lbmigrate.DefaultConfig()) }, core.DefaultOptions()},
		{"faultsim", func() (*trace.Trace, error) { return faultsim.Trace(faultsim.DefaultConfig()) }, core.DefaultOptions()},
		{"ordstress", func() (*trace.Trace, error) { return ordstress.Trace(ordstress.DefaultConfig()) }, core.DefaultOptions()},
	}
}
