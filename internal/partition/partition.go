// Package partition implements the merge machinery of the phase-finding
// stage (Section 3.1 of the paper): a union-find over initial partitions
// ("atoms"), an atom-level dependency-edge store, cycle merges that contract
// strongly connected components so the partition graph stays a DAG, and
// snapshot views that expose the current partitions with their chare sets
// and the condensed partition DAG.
//
// The phase-finding pipeline in internal/core repeatedly alternates between
// scheduling merges (unions) based on heuristics and taking a fresh View to
// inspect the resulting partition graph.
package partition

import (
	"fmt"
	"sort"
	"sync"

	"charmtrace/internal/graph"
	"charmtrace/internal/trace"
)

// ID identifies an atom: one initial partition. After merging, an atom's
// current partition is identified by its union-find root.
type ID int32

// Atom is an initial partition: a maximal run of dependency events within
// one serial block that does not cross the application/runtime boundary
// (Section 3.1.1, Figure 2). Every atom's events belong to a single chare.
type Atom struct {
	Chare   trace.ChareID
	Runtime bool // partition carries a dependency touching the runtime
	Events  []trace.EventID
	Block   trace.BlockID // serial block the atom was cut from
}

// edge is a directed happened-before/dependency relation between atoms.
type edge struct{ from, to ID }

// Set is the evolving collection of partitions.
type Set struct {
	atoms  []Atom
	parent []ID
	size   []int32
	// runtime[root] tracks whether the merged partition contains any
	// runtime dependency; maintained under union.
	runtime []bool
	edges   []edge
}

// NewSet returns an empty partition set.
func NewSet() *Set { return &Set{} }

// AddAtom registers an initial partition and returns its ID.
func (s *Set) AddAtom(a Atom) ID {
	id := ID(len(s.atoms))
	s.atoms = append(s.atoms, a)
	s.parent = append(s.parent, id)
	s.size = append(s.size, 1)
	s.runtime = append(s.runtime, a.Runtime)
	return id
}

// NumAtoms returns the number of atoms (initial partitions).
func (s *Set) NumAtoms() int { return len(s.atoms) }

// Atom returns the atom with the given ID.
func (s *Set) Atom(id ID) *Atom { return &s.atoms[id] }

// AddEdge records a dependency edge between the partitions containing the
// two atoms. Self-edges (same current partition) are stored too; views and
// cycle merges drop them.
func (s *Set) AddEdge(from, to ID) {
	s.edges = append(s.edges, edge{from, to})
}

// NumEdges returns the number of recorded atom-level edges.
func (s *Set) NumEdges() int { return len(s.edges) }

// Find returns the current partition (root atom) of an atom, with path
// compression.
func (s *Set) Find(a ID) ID {
	for s.parent[a] != a {
		s.parent[a] = s.parent[s.parent[a]]
		a = s.parent[a]
	}
	return a
}

// SamePartition reports whether two atoms are currently merged.
func (s *Set) SamePartition(a, b ID) bool { return s.Find(a) == s.Find(b) }

// Root returns the current partition (root atom) of an atom without path
// compression. Unlike Find it performs no writes, so any number of
// goroutines may call it concurrently — provided no merge (Union,
// CycleMerge) or Find runs at the same time. The phase-finding pipeline
// relies on this for its parallel scan stages, which read a frozen set and
// schedule merges for later sequential application.
func (s *Set) Root(a ID) ID {
	for s.parent[a] != a {
		a = s.parent[a]
	}
	return a
}

// Union merges the partitions of a and b and returns the new root. The
// merged partition is a runtime partition if either operand was.
func (s *Set) Union(a, b ID) ID {
	ra, rb := s.Find(a), s.Find(b)
	if ra == rb {
		return ra
	}
	if s.size[ra] < s.size[rb] {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	s.size[ra] += s.size[rb]
	s.runtime[ra] = s.runtime[ra] || s.runtime[rb]
	return ra
}

// IsRuntime reports whether the partition containing atom a carries any
// runtime dependency.
func (s *Set) IsRuntime(a ID) bool { return s.runtime[s.Find(a)] }

// CycleMerge contracts every strongly connected component of the current
// partition graph into a single partition, restoring the DAG property
// (Section 3.1: "we merge partitions that form strongly connected
// components"). It returns the number of partitions eliminated.
func (s *Set) CycleMerge() int {
	parts, partOf := s.partsIndex()
	if len(parts) == 0 {
		return 0
	}
	g := graph.New(len(parts))
	seen := make(map[int64]struct{}, len(s.edges))
	for _, e := range s.edges {
		u, v := partOf[s.Find(e.from)], partOf[s.Find(e.to)]
		if u == v {
			continue
		}
		key := int64(u)<<32 | int64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		g.AddEdge(u, v)
	}
	comp, ncomp := g.SCC()
	if ncomp == len(parts) {
		return 0
	}
	rep := make([]ID, ncomp)
	for i := range rep {
		rep[i] = -1
	}
	merged := 0
	for i, root := range parts {
		c := comp[i]
		if rep[c] == -1 {
			rep[c] = root
			continue
		}
		s.Union(rep[c], root)
		merged++
	}
	return merged
}

// partsIndex returns the current roots in deterministic (atom ID) order and
// a map from root to dense index.
func (s *Set) partsIndex() ([]ID, map[ID]int32) {
	var parts []ID
	partOf := make(map[ID]int32)
	for a := ID(0); int(a) < len(s.atoms); a++ {
		r := s.Find(a)
		if _, ok := partOf[r]; !ok {
			partOf[r] = int32(len(parts))
			parts = append(parts, r)
		}
	}
	return parts, partOf
}

// Part is one current partition in a View.
type Part struct {
	Root    ID
	Atoms   []ID
	Chares  []trace.ChareID // sorted, unique
	Runtime bool
}

// HasChare reports whether the partition contains events of chare c.
func (p *Part) HasChare(c trace.ChareID) bool {
	i := sort.Search(len(p.Chares), func(i int) bool { return p.Chares[i] >= c })
	return i < len(p.Chares) && p.Chares[i] == c
}

// ChareOverlap reports whether two partitions share any chare.
func (p *Part) ChareOverlap(q *Part) bool {
	i, j := 0, 0
	for i < len(p.Chares) && j < len(q.Chares) {
		switch {
		case p.Chares[i] == q.Chares[j]:
			return true
		case p.Chares[i] < q.Chares[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// View is an immutable snapshot of the partition set: the current
// partitions, the condensed partition graph over them, and (lazily) its
// leaps. Mutating the underlying Set invalidates the view.
//
// A View is safe for concurrent readers: its exported fields are never
// mutated after Set.View returns, every method is read-only, and the one
// lazy computation (Leaps) is synchronized. Concurrent readers must not
// mutate Parts, PartOf or G themselves.
type View struct {
	Parts  []Part
	PartOf []int32 // atom -> dense partition index
	G      *graph.Graph

	leapOnce sync.Once
	leap     []int32
	maxLeap  int32
}

// View snapshots the current partitions and the deduplicated partition
// graph (self-loops dropped).
func (s *Set) View() *View {
	parts, partOf := s.partsIndex()
	v := &View{
		Parts:  make([]Part, len(parts)),
		PartOf: make([]int32, len(s.atoms)),
		G:      graph.New(len(parts)),
	}
	for i, root := range parts {
		v.Parts[i] = Part{Root: root, Runtime: s.runtime[root]}
	}
	for a := ID(0); int(a) < len(s.atoms); a++ {
		pi := partOf[s.Find(a)]
		v.PartOf[a] = pi
		v.Parts[pi].Atoms = append(v.Parts[pi].Atoms, a)
	}
	for i := range v.Parts {
		p := &v.Parts[i]
		set := make(map[trace.ChareID]struct{}, 4)
		for _, a := range p.Atoms {
			set[s.atoms[a].Chare] = struct{}{}
		}
		p.Chares = make([]trace.ChareID, 0, len(set))
		for c := range set {
			p.Chares = append(p.Chares, c)
		}
		sort.Slice(p.Chares, func(x, y int) bool { return p.Chares[x] < p.Chares[y] })
	}
	seen := make(map[int64]struct{}, len(s.edges))
	for _, e := range s.edges {
		u, v2 := partOf[s.Find(e.from)], partOf[s.Find(e.to)]
		if u == v2 {
			continue
		}
		key := int64(u)<<32 | int64(uint32(v2))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		v.G.AddEdge(u, v2)
	}
	return v
}

// Acyclic reports whether the snapshot's partition graph is a DAG.
func (v *View) Acyclic() bool {
	_, ok := v.G.TopoSort()
	return ok
}

// Leaps returns the leap of every partition and the maximum leap. The view's
// graph must be acyclic (run CycleMerge on the set before snapshotting).
// Safe for concurrent callers: the lazy computation runs exactly once.
func (v *View) Leaps() ([]int32, int32) {
	v.leapOnce.Do(func() {
		v.leap, v.maxLeap = v.G.Leaps()
	})
	return v.leap, v.maxLeap
}

// PartsAtLeap groups partition indices by leap: result[l] lists the
// partitions whose leap is l.
func (v *View) PartsAtLeap() [][]int32 {
	leap, maxLeap := v.Leaps()
	out := make([][]int32, maxLeap+1)
	for p, l := range leap {
		out[l] = append(out[l], int32(p))
	}
	return out
}

// String summarizes the view for debugging.
func (v *View) String() string {
	return fmt.Sprintf("partition.View{%d parts, %d edges}", len(v.Parts), v.G.NumEdges())
}

// MergePlan collects pairs to merge and applies them at once, mirroring the
// schedule_merge / merge_scheduled structure of the paper's pseudocode.
type MergePlan struct {
	s     *Set
	pairs []edge
}

// NewMergePlan returns a plan targeting the given set.
func (s *Set) NewMergePlan() *MergePlan { return &MergePlan{s: s} }

// Schedule records that the partitions of a and b must merge.
func (m *MergePlan) Schedule(a, b ID) { m.pairs = append(m.pairs, edge{a, b}) }

// Len returns the number of scheduled merges.
func (m *MergePlan) Len() int { return len(m.pairs) }

// Apply performs all scheduled unions and returns the number of partitions
// eliminated.
func (m *MergePlan) Apply() int {
	merged := 0
	for _, p := range m.pairs {
		if m.s.Find(p.from) != m.s.Find(p.to) {
			m.s.Union(p.from, p.to)
			merged++
		}
	}
	m.pairs = m.pairs[:0]
	return merged
}
