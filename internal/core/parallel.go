package core

import (
	"sync"

	"charmtrace/internal/telemetry"
)

// span is one contiguous index range [Lo, Hi) of a parallel loop.
type span struct{ Lo, Hi int }

// splitRange cuts [0, n) into at most k contiguous, non-empty spans of
// near-equal size. The split depends only on (n, k), so a loop whose workers
// publish per-span results and concatenate them in span order produces the
// same output as the sequential loop.
func splitRange(n, k int) []span {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	spans := make([]span, 0, k)
	chunk := (n + k - 1) / k
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		spans = append(spans, span{lo, hi})
	}
	return spans
}

// parallelSpans runs f once per span of [0, n), concurrently on up to
// `workers` goroutines, and returns after every span completes. With one
// span (workers <= 1 or n <= 1) f runs inline on the calling goroutine, so
// Parallelism 1 reproduces the sequential pipeline exactly — no goroutines,
// no synchronization. f receives the span index (for ordering per-span
// results deterministically) and the range bounds; it must only write state
// owned by its span or its span index.
func parallelSpans(n, workers int, f func(idx, lo, hi int)) {
	spans := splitRange(n, workers)
	if len(spans) == 0 {
		return
	}
	if len(spans) == 1 {
		f(0, spans[0].Lo, spans[0].Hi)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(spans))
	for i, sp := range spans {
		go func(idx, lo, hi int) {
			defer wg.Done()
			f(idx, lo, hi)
		}(i, sp.Lo, sp.Hi)
	}
	wg.Wait()
}

// parallelFor runs f(i) for every i in [0, n) using parallelSpans. Use when
// iterations write disjoint, index-owned state (e.g. results[i]).
func parallelFor(n, workers int, f func(i int)) {
	parallelSpans(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// parallelSpans is the instrumented variant: when a recorder is attached it
// opens one span per worker chunk, on worker lane idx+1 under the current
// stage span, annotated with the chunk bounds — which is what makes fan-out
// imbalance visible in a self-trace. Disabled recording takes the plain
// path with only the cancellation poll per chunk.
//
// Each chunk polls the extraction context before running: once the context
// expires, the remaining chunks are skipped, so a cancelled extraction
// releases its workers within one chunk's latency. The skipped chunks
// leave stage state partial, which is safe because Extract's next stage
// boundary converts the cancellation into an error and discards
// everything.
func (t *tel) parallelSpans(name string, n, workers int, f func(idx, lo, hi int)) {
	prog := t.prog
	if prog != nil {
		// Per-chunk progress: the loop size is declared up front and each
		// chunk reports its width on completion, so /debug/flights shows
		// "items scanned / total" for the stage's dominant loop at the
		// granularity cancellation already polls at. nil Progress costs one
		// pointer check per chunk — the same shape as the Enabled gate on
		// spans, preserving the disabled-path overhead guard.
		prog.StartLoop(int64(n))
	}
	if !t.rec.Enabled() {
		parallelSpans(n, workers, func(idx, lo, hi int) {
			if t.cancelled() {
				return
			}
			f(idx, lo, hi)
			if prog != nil {
				prog.Add(int64(hi - lo))
			}
		})
		return
	}
	parent := t.cur
	parallelSpans(n, workers, func(idx, lo, hi int) {
		if t.cancelled() {
			return
		}
		sp := t.rec.StartSpan(name, parent, telemetry.Lane(idx+1),
			telemetry.Int("lo", int64(lo)), telemetry.Int("hi", int64(hi)))
		f(idx, lo, hi)
		t.rec.EndSpan(sp)
		if prog != nil {
			prog.Add(int64(hi - lo))
		}
	})
}

// parallelFor is the instrumented variant of the package-level parallelFor:
// one span per worker chunk when recording.
func (t *tel) parallelFor(name string, n, workers int, f func(i int)) {
	t.parallelSpans(name, n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}
