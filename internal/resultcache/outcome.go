package resultcache

import (
	"context"
	"sync/atomic"
)

// Cache outcomes, as reported per request through an OutcomeRecorder. The
// serving layer logs one per access-log line, which is what lets an
// operator tell a 2ms miss from a 1µs memory hit without correlating
// counters.
const (
	// OutcomeMiss: this request's flight ran a full extraction.
	OutcomeMiss = "miss"
	// OutcomeMem: served from the in-memory LRU.
	OutcomeMem = "mem"
	// OutcomeDisk: this request's flight decoded an on-disk entry.
	OutcomeDisk = "disk"
	// OutcomeCoalesced: served by another request's in-progress flight.
	OutcomeCoalesced = "coalesced"
	// OutcomeDetached: the caller's context expired and it detached from a
	// flight that kept running.
	OutcomeDetached = "detached"
	// OutcomePeer: this request's flight filled the entry from a cluster
	// peer's disk store instead of extracting.
	OutcomePeer = "peer"
)

// OutcomeRecorder receives the cache outcome of one request, plus the
// entry's content address (KeyID) when the serving layer records it — the
// gateway reads both back from response headers to drive replication and
// its cluster-wide peer-fill counters. Carried by context so the cache can
// report per-request outcomes without changing the Get/Lookup signatures;
// safe for concurrent use (last write wins, and a request makes at most one
// cache access per recorder).
type OutcomeRecorder struct{ v, key atomic.Value }

// Record stores the outcome. Safe on a nil recorder.
func (r *OutcomeRecorder) Record(outcome string) {
	if r != nil {
		r.v.Store(outcome)
	}
}

// Outcome returns the recorded outcome, or "" when the request never
// reached the cache (bad request, unknown digest, shed by admission).
func (r *OutcomeRecorder) Outcome() string {
	if r == nil {
		return ""
	}
	s, _ := r.v.Load().(string)
	return s
}

type outcomeKey struct{}

// WithOutcomeRecorder returns a context carrying a fresh recorder, and the
// recorder itself for reading after the request completes.
func WithOutcomeRecorder(ctx context.Context) (context.Context, *OutcomeRecorder) {
	rec := &OutcomeRecorder{}
	return context.WithValue(ctx, outcomeKey{}, rec), rec
}

// RecordOutcome stores the outcome on the context's recorder, if any. The
// serving layer uses it for the memory-hit fast path (Lookup), which
// deliberately takes no context.
func RecordOutcome(ctx context.Context, outcome string) {
	rec, _ := ctx.Value(outcomeKey{}).(*OutcomeRecorder)
	rec.Record(outcome)
}

// RecordKey stores the request's result content address (KeyID) on the
// context's recorder, if any.
func RecordKey(ctx context.Context, key string) {
	rec, _ := ctx.Value(outcomeKey{}).(*OutcomeRecorder)
	if rec != nil {
		rec.key.Store(key)
	}
}

// Key returns the recorded result content address, or "".
func (r *OutcomeRecorder) Key() string {
	if r == nil {
		return ""
	}
	s, _ := r.key.Load().(string)
	return s
}
