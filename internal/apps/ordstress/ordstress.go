// Package ordstress is an adversarial orderability stresser: it emits
// legal-but-pathological interleavings designed to work the §3.1.4
// enforce-orderability loop and the §3.2.1 fragment reordering as hard as a
// small trace can. Network jitter is zero and local and remote latencies
// are equal, so deliveries tie constantly; scheduler priorities invert the
// send order; straggler sends arrive waves after they were posted;
// untraced control messages start blocks with no recorded incoming
// dependency mid-trace; and self-sends fold a chare's own timeline back
// onto itself. All interleavings stay legal — every receive has a matching
// send and serial blocks never overlap — but the wave partitions share
// chares aggressively, forcing repeated orderability rounds.
package ordstress

import (
	"charmtrace/internal/sim"
	"charmtrace/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// Chares is the number of stresser chares.
	Chares int
	// NumPE is the processor count; keeping it small packs unrelated chares
	// onto shared processors, which is what makes interleavings pathological.
	NumPE int
	// Waves bounds the per-chare send budget: each chare fires 4*Waves
	// messages before going quiet.
	Waves int
	// StragglerDelay is the extra delivery delay of the straggler sends,
	// sized to span whole waves.
	StragglerDelay sim.Time
	// Seed feeds the simulator RNG (inert at zero jitter, kept for API
	// uniformity with the other workloads).
	Seed int64
}

// DefaultConfig is a 6-chare run packed onto 2 processors.
func DefaultConfig() Config {
	return Config{Chares: 6, NumPE: 2, Waves: 3, StragglerDelay: 5000, Seed: 1}
}

// state is per-chare simulation state.
type state struct {
	sent int // fire() invocations spent, out of 4*Waves
}

// Trace runs the stresser and returns its event trace.
func Trace(cfg Config) (*trace.Trace, error) {
	n := cfg.Chares
	simCfg := sim.DefaultConfig(cfg.NumPE)
	simCfg.Seed = cfg.Seed
	// Zero jitter and equal latencies: every co-scheduled delivery ties in
	// virtual time, the worst case for time-based tie-breaking.
	simCfg.NetJitter = 0
	simCfg.NetLatency = simCfg.LocalLatency
	rt := sim.New(simCfg)

	arr := rt.NewArray("stress", n, nil, func(i int) any { return &state{} })

	var work, ctl sim.EntryRef
	budget := 4 * cfg.Waves

	// fire spends one unit of the chare's send budget on a rotating
	// repertoire of pathological send patterns.
	fire := func(ctx *sim.Ctx) {
		st := ctx.State().(*state)
		if st.sent >= budget {
			return
		}
		st.sent++
		i := ctx.Index()
		switch st.sent % 4 {
		case 1:
			// Priority inversion: the later-posted message is dequeued first.
			ctx.SendPrio(arr.At((i+1)%n), work, nil, 1)
			ctx.SendPrio(arr.At((i+2)%n), work, nil, -1)
		case 2:
			// Self-send: the chare's timeline folds back onto itself.
			ctx.Send(arr.At(i), work, nil)
		case 3:
			// Straggler: posted now, delivered waves later.
			ctx.SendDelayed(arr.At((i+3)%n), work, nil, cfg.StragglerDelay)
		case 0:
			// Invisible control flow: the receiver's block records no
			// incoming dependency (the Figure 24 situation, mid-trace).
			ctx.SendUntraced(arr.At((i+1)%n), ctl, nil)
		}
	}

	// the seed serial starting every chare's first wave.
	kick := arr.RegisterSDAG("serial_0", 0, false, func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(10)
		fire(ctx)
		fire(ctx)
	})
	// the wave worker: every delivery spends more budget.
	work = arr.RegisterSDAG("work", 2, true, func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(10)
		fire(ctx)
	})
	// the control entry reached only by untraced sends; its block has no
	// recorded receive but emits fresh traced dependencies.
	ctl = arr.Register("ctl", func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(5)
		st := ctx.State().(*state)
		if st.sent < budget {
			st.sent++
			ctx.Send(arr.At((ctx.Index()+2)%n), work, nil)
		}
	})

	for i := 0; i < n; i++ {
		rt.Spawn(arr.At(i), kick, nil)
	}
	return rt.Run()
}

// MustTrace is Trace that panics on error.
func MustTrace(cfg Config) *trace.Trace {
	t, err := Trace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
