package tracefile

import (
	"flag"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
)

var update = flag.Bool("update", false, "regenerate golden trace files")

// goldenConfig is the fixed workload behind the checked-in golden files.
func goldenConfig() jacobi.Config {
	cfg := jacobi.DefaultConfig()
	cfg.Grid = 2
	cfg.NumPE = 2
	cfg.Iterations = 2
	return cfg
}

// TestGoldenFilesStayParseable locks both on-disk formats: the checked-in
// files must keep parsing (and keep their analyzed structure) across any
// future format or algorithm change. Regenerate deliberately with
// `go test ./internal/tracefile -run Golden -update`.
func TestGoldenFilesStayParseable(t *testing.T) {
	if *update {
		tr := jacobi.MustTrace(goldenConfig())
		if err := WriteFile("testdata/jacobi-2x2.trace", tr); err != nil {
			t.Fatal(err)
		}
		if err := WriteFileBinary("testdata/jacobi-2x2.trace.bin", tr); err != nil {
			t.Fatal(err)
		}
		t.Log("golden files regenerated")
	}
	for _, path := range []string{"testdata/jacobi-2x2.trace", "testdata/jacobi-2x2.trace.bin"} {
		path := path
		t.Run(path, func(t *testing.T) {
			tr, err := ReadFile(path)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			want := jacobi.MustTrace(goldenConfig())
			if len(tr.Events) != len(want.Events) || len(tr.Blocks) != len(want.Blocks) {
				t.Fatalf("golden trace shape drifted: %d/%d events, %d/%d blocks",
					len(tr.Events), len(want.Events), len(tr.Blocks), len(want.Blocks))
			}
			s, err := core.Extract(tr, core.DefaultOptions())
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			if s.NumPhases() != 4 {
				t.Fatalf("golden structure phases = %d, want 4", s.NumPhases())
			}
		})
	}
}
