package core_test

import (
	"bytes"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
)

// TestProgressObservesExtraction: a Progress attached to a real extraction
// ends on the final pipeline stage with its loop fully scanned, and — the
// observability invariant — attaching it changes nothing about the output.
func TestProgressObservesExtraction(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		opt := core.DefaultOptions()
		opt.Parallelism = par
		base, err := core.Extract(tr, opt)
		if err != nil {
			t.Fatal(err)
		}

		prog := core.NewProgress()
		opt.Progress = prog
		got, err := core.Extract(tr, opt)
		if err != nil {
			t.Fatal(err)
		}

		snap := prog.Snapshot()
		if snap.Stage != "step-assignment" {
			t.Fatalf("par=%d: final stage %q, want step-assignment", par, snap.Stage)
		}
		if snap.Total == 0 || snap.Scanned != snap.Total {
			t.Fatalf("par=%d: final stage scanned %d/%d, want a completed loop",
				par, snap.Scanned, snap.Total)
		}
		if snap.Elapsed <= 0 {
			t.Fatalf("par=%d: elapsed %v", par, snap.Elapsed)
		}

		var a, b bytes.Buffer
		if err := core.EncodeStructure(&a, base); err != nil {
			t.Fatal(err)
		}
		if err := core.EncodeStructure(&b, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("par=%d: attaching Progress changed the output", par)
		}
	}
}

// TestProgressExcludedFromFingerprint: Progress is an execution-only knob,
// so it must not change the cache key.
func TestProgressExcludedFromFingerprint(t *testing.T) {
	a := core.DefaultOptions()
	b := core.DefaultOptions()
	b.Progress = core.NewProgress()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("Progress must be excluded from Options.Fingerprint")
	}
}

// TestProgressNilSnapshot: a nil Progress snapshots to the zero value, so
// callers never nil-check before rendering.
func TestProgressNilSnapshot(t *testing.T) {
	var p *core.Progress
	if snap := p.Snapshot(); snap != (core.ProgressSnapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zero", snap)
	}
}

// TestProgressManualDriving pins the exported mutators substituted
// extractors use to publish progress.
func TestProgressManualDriving(t *testing.T) {
	p := core.NewProgress()
	p.SetStage("dependency-merge")
	p.StartLoop(100)
	p.Add(37)
	snap := p.Snapshot()
	if snap.Stage != "dependency-merge" || snap.Scanned != 37 || snap.Total != 100 {
		t.Fatalf("snapshot %+v", snap)
	}
	p.SetStage("leap-merge")
	snap = p.Snapshot()
	if snap.Stage != "leap-merge" || snap.Scanned != 0 || snap.Total != 0 {
		t.Fatalf("SetStage must reset the loop counters: %+v", snap)
	}
}
