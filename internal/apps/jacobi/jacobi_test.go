package jacobi

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
	"charmtrace/internal/trace"
)

func TestTraceShape(t *testing.T) {
	cfg := DefaultConfig()
	tr := MustTrace(cfg)
	if got := len(tr.ApplicationChares()); got != 16 {
		t.Fatalf("app chares = %d, want 16", got)
	}
	// Every iteration: each inner chare sends 4 halos; boundary fewer.
	// 4x4 grid: total neighbour links = 2*4*3 = 24 directed 48 per iter.
	wantHalo := 48 * cfg.Iterations
	halo := 0
	for _, ev := range tr.Events {
		if ev.Kind == trace.Send && !tr.IsRuntimeChare(ev.Chare) {
			for _, r := range tr.RecvsOf(ev.Msg) {
				if !tr.IsRuntimeChare(tr.Events[r].Chare) && tr.Events[r].Chare != ev.Chare {
					halo++
				}
			}
		}
	}
	if halo != wantHalo {
		t.Fatalf("halo messages = %d, want %d", halo, wantHalo)
	}
}

func TestStructureAlternatesAppAndRuntime(t *testing.T) {
	tr := MustTrace(DefaultConfig())
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 8: an alternating pattern of application and runtime phases.
	byOffset := make([]int32, len(s.Phases))
	for i := range byOffset {
		byOffset[i] = int32(i)
	}
	for i := 1; i < len(byOffset); i++ {
		for j := i; j > 0 && s.Phases[byOffset[j]].Offset < s.Phases[byOffset[j-1]].Offset; j-- {
			byOffset[j], byOffset[j-1] = byOffset[j-1], byOffset[j]
		}
	}
	var kinds []bool
	for _, p := range byOffset {
		kinds = append(kinds, s.Phases[p].Runtime)
	}
	for i := 0; i+1 < len(kinds); i++ {
		if kinds[i] == kinds[i+1] {
			t.Fatalf("phases do not alternate app/runtime: %v", kinds)
		}
	}
	// One app phase + one runtime phase per iteration.
	if got := len(kinds); got != 2*DefaultConfig().Iterations {
		t.Fatalf("phases = %d, want %d", got, 2*DefaultConfig().Iterations)
	}
}

func TestSlowChareShowsInDifferentialDuration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlowChare = 5
	tr := MustTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	r := metrics.Compute(s)
	maxD, at := r.MaxDifferentialDuration()
	if maxD < trace.Time(cfg.Compute)*trace.Time(cfg.SlowFactor-2) {
		t.Fatalf("max differential %d too small", maxD)
	}
	slow := trace.ChareID(-1)
	for _, c := range tr.Chares {
		if c.Index == cfg.SlowChare && !c.Runtime {
			slow = c.ID
		}
	}
	if tr.Events[at].Chare != slow {
		t.Fatalf("max differential on chare %d, want slow chare %d", tr.Events[at].Chare, slow)
	}
}

func TestSlowChareRaisesIterationImbalance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlowChare = 5
	cfg.SlowIteration = 1
	tr := MustTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	r := metrics.Compute(s)
	// Figure 14: the phase containing the long event shows the greatest
	// imbalance. The long compute lands in the sub-block of the contribute
	// send (Figure 13's division rules), so locate that event first.
	_, slowEvent := r.MaxDifferentialDuration()
	slowPhase := s.PhaseOf[slowEvent]
	for pi := range s.Phases {
		if int32(pi) != slowPhase && r.PhaseImbalance[pi] > r.PhaseImbalance[slowPhase] {
			t.Fatalf("phase %d imbalance %d exceeds slow phase %d imbalance %d",
				pi, r.PhaseImbalance[pi], slowPhase, r.PhaseImbalance[slowPhase])
		}
	}
	slowDur := trace.Time(cfg.Compute) * trace.Time(cfg.SlowFactor-1)
	if r.PhaseImbalance[slowPhase] < slowDur/2 {
		t.Fatalf("peak imbalance %d below expected %d", r.PhaseImbalance[slowPhase], slowDur/2)
	}
}

func TestIdleExperiencedNonZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlowChare = 0 // corner chare slow: others idle waiting on reduction
	tr := MustTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	r := metrics.Compute(s)
	if r.TotalIdleExperienced() == 0 {
		t.Fatal("no idle experienced despite slow chare gating the reduction")
	}
}

func TestWithoutReductionTracingStillExtracts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceReductions = false
	tr := MustTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	with := MustTrace(DefaultConfig())
	if len(tr.Events) >= len(with.Events) {
		t.Fatal("§5 tracing should record strictly more events")
	}
}
