package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"charmtrace/internal/trace"
)

// randomTrace drives a tiny random message-driven execution: seed blocks
// send messages, each delivery runs a block that may send further messages,
// one PE executes at a time. The result is a valid trace with arbitrary
// interleavings, broadcast-free but with runtime chares mixed in.
func randomTrace(rng *rand.Rand) *trace.Trace {
	numPE := 1 + rng.Intn(4)
	numChares := numPE + rng.Intn(6)
	b := trace.NewBuilder(numPE)
	entries := []trace.EntryID{
		b.AddEntry("e0"),
		b.AddSDAGEntry("serial_0", 0, false),
		b.AddSDAGEntry("serial_1", 1, true),
	}
	chares := make([]trace.ChareID, numChares)
	homes := make([]trace.PE, numChares)
	for i := range chares {
		homes[i] = trace.PE(rng.Intn(numPE))
		if rng.Intn(5) == 0 {
			chares[i] = b.AddRuntimeChare("rt", homes[i])
		} else {
			chares[i] = b.AddChare("app", 0, i, homes[i])
		}
	}

	type delivery struct {
		msg   trace.MsgID
		chare int
		ready trace.Time
	}
	var queue []delivery
	peClock := make([]trace.Time, numPE)
	chareBusy := make(map[int]trace.Time)

	// Seed blocks: a few chares start spontaneously and send messages.
	budget := 10 + rng.Intn(40)
	send := func(from int, tm trace.Time) {
		to := rng.Intn(numChares)
		m := b.NewMsg()
		b.Send(chares[from], m, tm)
		queue = append(queue, delivery{m, to, tm + trace.Time(1+rng.Intn(20))})
	}
	seeds := 1 + rng.Intn(3)
	for s := 0; s < seeds && budget > 0; s++ {
		c := rng.Intn(numChares)
		pe := homes[c]
		begin := peClock[pe]
		if t, ok := chareBusy[c]; ok && t > begin {
			begin = t
		}
		b.BeginBlock(chares[c], pe, entries[rng.Intn(len(entries))], begin)
		nsend := 1 + rng.Intn(2)
		for i := 0; i < nsend && budget > 0; i++ {
			send(c, begin+trace.Time(i+1))
			budget--
		}
		end := begin + trace.Time(nsend+2)
		b.EndBlock(chares[c], end)
		peClock[pe] = end
		chareBusy[c] = end
	}
	// Process deliveries.
	for len(queue) > 0 {
		// Pop the earliest-ready delivery for determinism.
		best := 0
		for i := range queue {
			if queue[i].ready < queue[best].ready {
				best = i
			}
		}
		d := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		pe := homes[d.chare]
		begin := peClock[pe]
		if d.ready > begin {
			begin = d.ready
		}
		if t, ok := chareBusy[d.chare]; ok && t > begin {
			begin = t
		}
		b.BeginBlock(chares[d.chare], pe, entries[rng.Intn(len(entries))], begin)
		b.Recv(chares[d.chare], d.msg, begin)
		nsend := 0
		if budget > 0 {
			nsend = rng.Intn(3)
		}
		for i := 0; i < nsend && budget > 0; i++ {
			send(d.chare, begin+trace.Time(i+1))
			budget--
		}
		end := begin + trace.Time(nsend+2)
		b.EndBlock(chares[d.chare], end)
		peClock[pe] = end
		chareBusy[d.chare] = end
	}
	return b.MustFinish()
}

// TestExtractInvariantsOnRandomTraces checks Validate() over random traces
// for every option combination.
func TestExtractInvariantsOnRandomTraces(t *testing.T) {
	opts := []Options{
		DefaultOptions(),
		{Reorder: false, InferDependencies: true, NeighborSerialMerge: true},
		{Reorder: true, InferDependencies: false},
		{Reorder: false, InferDependencies: false},
		MessagePassingOptions(),
		{Reorder: false, MessagePassing: true, ProcessOrderDeps: true},
		{Reorder: true, InferDependencies: true, ProcessOrderDeps: true},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		for _, opt := range opts {
			s, err := Extract(tr, opt)
			if err != nil {
				t.Logf("seed %d: Extract error: %v", seed, err)
				return false
			}
			if err := s.Validate(); err != nil {
				t.Logf("seed %d opts %+v: %v", seed, opt, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestExtractParallelismInvariantOnRandomTraces: a quick-check property for
// the parallel engine — extraction output is invariant under
// Options.Parallelism on randomized small traces, for both the task-based
// and message-passing configurations.
func TestExtractParallelismInvariantOnRandomTraces(t *testing.T) {
	opts := []Options{DefaultOptions(), MessagePassingOptions()}
	same := func(a, b *Structure, tr *trace.Trace) bool {
		if a.NumPhases() != b.NumPhases() {
			return false
		}
		for e := range tr.Events {
			if a.PhaseOf[e] != b.PhaseOf[e] || a.LocalStep[e] != b.LocalStep[e] || a.Step[e] != b.Step[e] {
				return false
			}
		}
		for stage, n := range a.Stats.MergedBy {
			if b.Stats.MergedBy[stage] != n {
				return false
			}
		}
		return len(a.Stats.MergedBy) == len(b.Stats.MergedBy)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		for _, opt := range opts {
			seq := opt
			seq.Parallelism = 1
			base, err := Extract(tr, seq)
			if err != nil {
				t.Logf("seed %d: sequential Extract error: %v", seed, err)
				return false
			}
			for _, workers := range []int{2, 3, 8} {
				par := opt
				par.Parallelism = workers
				got, err := Extract(tr, par)
				if err != nil {
					t.Logf("seed %d parallelism %d: Extract error: %v", seed, workers, err)
					return false
				}
				if !same(base, got, tr) {
					t.Logf("seed %d opts %+v: output differs at parallelism %d", seed, opt, workers)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestExtractDeterministic: the same trace and options always produce the
// same structure.
func TestExtractDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := randomTrace(rng)
	a, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPhases() != b.NumPhases() {
		t.Fatalf("phase counts differ: %d vs %d", a.NumPhases(), b.NumPhases())
	}
	for e := range tr.Events {
		if a.Step[e] != b.Step[e] || a.PhaseOf[e] != b.PhaseOf[e] {
			t.Fatalf("event %d differs between runs", e)
		}
	}
}

// TestPhaseEventsSortedByStep: the Events list of every phase is ordered by
// (local step, chare).
func TestPhaseEventsSortedByStep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		tr := randomTrace(rng)
		s, err := Extract(tr, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for pi := range s.Phases {
			evs := s.Phases[pi].Events
			for j := 0; j+1 < len(evs); j++ {
				if s.LocalStep[evs[j]] > s.LocalStep[evs[j+1]] {
					t.Fatalf("phase %d events not step-sorted", pi)
				}
			}
		}
	}
}

// TestConcurrentPhasesSymmetry: ConcurrentPhases only reports unordered,
// step-overlapping pairs.
func TestConcurrentPhasesSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng)
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range s.ConcurrentPhases() {
		a, b := &s.Phases[pair[0]], &s.Phases[pair[1]]
		al, ah := a.GlobalSpan()
		bl, bh := b.GlobalSpan()
		if ah < bl || bh < al {
			t.Fatalf("pair %v does not overlap in steps", pair)
		}
	}
}
