// Package sim is a deterministic discrete-event simulator of a Charm++
// style asynchronous message-driven runtime: processors with message
// queues, migratable chares grouped into indexed arrays, entry methods
// scheduled by message delivery and executed without interruption,
// broadcasts, and reductions performed by per-processor runtime chares
// (CkReductionMgr) over a reduction tree.
//
// The simulator stands in for the real Charm++ runtime the paper
// instruments: the logical-structure algorithm consumes only the trace
// (entry begin/end, matched sends/receives, chare identities, idle spans),
// and the simulator produces exactly that vocabulary with genuine
// asynchrony — configurable network latency and jitter, per-processor FIFO
// scheduling, and application-controlled compute imbalance.
package sim

import (
	"container/heap"

	"charmtrace/internal/trace"
)

// Time aliases the trace package's virtual nanoseconds.
type Time = trace.Time

// item is a scheduled engine event.
type item struct {
	at   Time
	seq  int64
	kind itemKind
	pe   int
	msg  *envelope
}

type itemKind uint8

const (
	itemArrival itemKind = iota // message reaches its destination PE
	itemReady                   // PE may dispatch its next queued message
)

// eventHeap orders items by (time, insertion sequence) for determinism.
type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// pe models one processor: a FIFO message queue and an execution cursor.
type pe struct {
	id        int
	queue     []*envelope
	busyUntil Time
	scheduled bool // a Ready item is pending in the heap
	everRan   bool
}

// engine drives the event loop.
type engine struct {
	heap eventHeap
	seq  int64
	pes  []*pe
	now  Time
}

func newEngine(numPE int) *engine {
	e := &engine{pes: make([]*pe, numPE)}
	for i := range e.pes {
		e.pes[i] = &pe{id: i}
	}
	return e
}

func (e *engine) push(at Time, kind itemKind, peID int, msg *envelope) {
	e.seq++
	heap.Push(&e.heap, &item{at: at, seq: e.seq, kind: kind, pe: peID, msg: msg})
}

// deliver schedules a message arrival.
func (e *engine) deliver(at Time, peID int, msg *envelope) {
	e.push(at, itemArrival, peID, msg)
}

// run drains the event loop, invoking exec for each dispatched message.
// exec returns the virtual time at which the block finished.
func (e *engine) run(exec func(peID int, start Time, msg *envelope) Time) {
	for e.heap.Len() > 0 {
		it := heap.Pop(&e.heap).(*item)
		e.now = it.at
		p := e.pes[it.pe]
		switch it.kind {
		case itemArrival:
			p.queue = append(p.queue, it.msg)
			if !p.scheduled {
				at := it.at
				if p.busyUntil > at {
					at = p.busyUntil
				}
				p.scheduled = true
				e.push(at, itemReady, it.pe, nil)
			}
		case itemReady:
			p.scheduled = false
			if len(p.queue) == 0 {
				continue
			}
			// Dequeue the highest-priority message (lower value = more
			// urgent, as in Charm++); FIFO among equal priorities.
			best := 0
			for i := 1; i < len(p.queue); i++ {
				if p.queue[i].prio < p.queue[best].prio {
					best = i
				}
			}
			msg := p.queue[best]
			p.queue = append(p.queue[:best], p.queue[best+1:]...)
			end := exec(it.pe, it.at, msg)
			if end < it.at {
				end = it.at
			}
			p.busyUntil = end
			p.everRan = true
			if len(p.queue) > 0 {
				p.scheduled = true
				e.push(end, itemReady, it.pe, nil)
			}
		}
	}
}
