// Package trace defines the event model consumed by the logical-structure
// algorithm: chares, entry methods, serial blocks (entry-method executions),
// dependency events (sends and receives) and idle records.
//
// The model mirrors what the paper's modified Charm++ tracing framework
// records (Sections 2.1 and 5): begin and end times of each entry method
// executed on each processor, messaging events with matched message
// identifiers, the chare and chare-array identifiers of each event, and
// enough SDAG information (per-entry serial numbers) to infer
// happened-before relationships between serial code sections.
package trace

import "fmt"

// Time is virtual time in nanoseconds. All simulators in this repository
// run on a deterministic virtual clock, so Time is an integer count rather
// than a wall-clock type.
type Time int64

// PE identifies a processor (processing element).
type PE int32

// ChareID identifies a chare. Application chares encapsulate sub-domains;
// runtime chares (for example the per-PE reduction managers) belong to the
// runtime system and are grouped per process rather than per sub-domain.
type ChareID int32

// NoChare marks an absent chare reference.
const NoChare ChareID = -1

// ArrayID identifies a chare array (an indexed collection of chares).
type ArrayID int32

// NoArray marks a chare that does not belong to any chare array.
const NoArray ArrayID = -1

// EntryID identifies an entry-method type (not an execution of one).
type EntryID int32

// MsgID identifies a message. A point-to-point message has exactly one send
// and one receive carrying the same MsgID; a broadcast has one send and many
// receives.
type MsgID int64

// NoMsg marks the absence of a message, for example on a serial block that
// was started locally rather than by a message delivery.
const NoMsg MsgID = -1

// EventID indexes into Trace.Events.
type EventID int32

// NoEvent marks an absent event reference.
const NoEvent EventID = -1

// BlockID indexes into Trace.Blocks.
type BlockID int32

// NoBlock marks an absent block reference.
const NoBlock BlockID = -1

// EventKind distinguishes dependency events.
type EventKind uint8

const (
	// Send is an entry-method invocation call: the source of a dependency.
	Send EventKind = iota
	// Recv is the delivery that begins executing the destination entry
	// method: the sink of a dependency.
	Recv
)

// String returns "send" or "recv".
func (k EventKind) String() string {
	switch k {
	case Send:
		return "send"
	case Recv:
		return "recv"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is a single dependency event: a send (remote method invocation call)
// or a receive (the matching delivery that starts the destination task).
type Event struct {
	ID    EventID
	Kind  EventKind
	Time  Time
	Chare ChareID // chare the event belongs to
	PE    PE      // processor it was recorded on
	Msg   MsgID   // message sent or received; NoMsg only for synthetic events
	Block BlockID // serial block containing the event
}

// Block is a serial block: one uninterrupted execution of an entry method on
// a chare. Events lists the block's dependency events in recorded order; a
// block triggered by a message delivery starts with the corresponding Recv.
type Block struct {
	ID    BlockID
	Chare ChareID
	PE    PE
	Entry EntryID
	Begin Time
	End   Time
	// Events are the block's dependency events, ordered by time. The order
	// within a serial block is determined explicitly by the developer and is
	// never changed by reordering.
	Events []EventID
}

// Duration returns the block's span in virtual time.
func (b *Block) Duration() Time { return b.End - b.Begin }

// Chare describes one chare.
type Chare struct {
	ID      ChareID
	Name    string
	Array   ArrayID // NoArray for singleton chares
	Index   int     // index within the chare array, -1 for singletons
	Runtime bool    // true for runtime-system chares
	Home    PE      // processor the chare lives on (initial placement)
}

// Entry describes an entry-method type.
type Entry struct {
	ID   EntryID
	Name string
	// SDAGSerial is the parsing-order number the Charm++ compiler assigns to
	// generated serial entry methods (Section 2.1). Entries close in
	// numbering may be close in control-flow order; -1 for non-SDAG entries.
	SDAGSerial int
	// AfterWhen is true for a serial entry that directly follows a `when`
	// clause: it is guaranteed to occur immediately after the dependencies
	// of that when clause are fulfilled.
	AfterWhen bool
}

// Idle records a span during which a processor had no task to execute.
type Idle struct {
	PE    PE
	Begin Time
	End   Time
}

// Duration returns the idle span length.
func (i Idle) Duration() Time { return i.End - i.Begin }
