// Package structdiff compares two recovered logical structures — across
// seeds, tracing configurations, algorithm options or code versions — and
// reports where they diverge. Because the logical structure is supposed to
// be invariant to scheduling non-determinism, diffing structures from
// different seeds of the same workload is the practical test of that
// invariance; a non-empty diff localizes exactly which chares or phases
// moved.
package structdiff

import (
	"fmt"
	"sort"
	"strings"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// Diff is the comparison result.
type Diff struct {
	// PhaseCount holds the two phase counts when they differ (else nil).
	PhaseCount *[2]int
	// MaxStep holds the two global step maxima when they differ.
	MaxStep *[2]int32
	// PatternA/PatternB are the offset-ordered phase kind sequences when
	// they differ.
	PatternA, PatternB string
	// Chares lists per-chare divergences.
	Chares []ChareDiff
}

// ChareDiff describes one chare whose logical timeline differs.
type ChareDiff struct {
	Chare trace.ChareID
	Name  string
	// LenA/LenB are the timeline lengths.
	LenA, LenB int
	// FirstDivergence is the first position where the step sequences or
	// event kinds differ (-1 when only the lengths differ).
	FirstDivergence int
}

// Empty reports whether the structures are equivalent.
func (d *Diff) Empty() bool {
	return d.PhaseCount == nil && d.MaxStep == nil && d.PatternA == d.PatternB && len(d.Chares) == 0
}

// String renders a human-readable report.
func (d *Diff) String() string {
	if d.Empty() {
		return "structures equivalent\n"
	}
	var b strings.Builder
	if d.PhaseCount != nil {
		fmt.Fprintf(&b, "phase count: %d vs %d\n", d.PhaseCount[0], d.PhaseCount[1])
	}
	if d.MaxStep != nil {
		fmt.Fprintf(&b, "max global step: %d vs %d\n", d.MaxStep[0], d.MaxStep[1])
	}
	if d.PatternA != d.PatternB {
		fmt.Fprintf(&b, "phase pattern:\n  A: %s\n  B: %s\n", d.PatternA, d.PatternB)
	}
	for _, c := range d.Chares {
		if c.FirstDivergence < 0 {
			fmt.Fprintf(&b, "chare %s: timeline length %d vs %d\n", c.Name, c.LenA, c.LenB)
		} else {
			fmt.Fprintf(&b, "chare %s: timelines diverge at position %d\n", c.Name, c.FirstDivergence)
		}
	}
	return b.String()
}

// Compare diffs two structures of traces with the same chare population
// (same workload; possibly different seeds, tracing options or extraction
// options). Timelines are compared by (step offset shape, event kind)
// rather than raw event IDs, so traces with different message interleavings
// still compare equal when their logical shapes match.
func Compare(a, b *core.Structure) (*Diff, error) {
	if len(a.Trace.Chares) != len(b.Trace.Chares) {
		return nil, fmt.Errorf("structdiff: chare populations differ (%d vs %d)",
			len(a.Trace.Chares), len(b.Trace.Chares))
	}
	d := &Diff{PatternA: pattern(a), PatternB: pattern(b)}
	if a.NumPhases() != b.NumPhases() {
		d.PhaseCount = &[2]int{a.NumPhases(), b.NumPhases()}
	}
	if a.MaxStep() != b.MaxStep() {
		d.MaxStep = &[2]int32{a.MaxStep(), b.MaxStep()}
	}
	for ci := range a.Trace.Chares {
		c := trace.ChareID(ci)
		sa, sb := a.EventsOfChare(c), b.EventsOfChare(c)
		cd := ChareDiff{Chare: c, Name: a.Trace.Chares[c].Name, LenA: len(sa), LenB: len(sb), FirstDivergence: -1}
		if len(sa) != len(sb) {
			d.Chares = append(d.Chares, cd)
			continue
		}
		for i := range sa {
			ka := a.Trace.Events[sa[i]].Kind
			kb := b.Trace.Events[sb[i]].Kind
			if ka != kb || a.Step[sa[i]] != b.Step[sb[i]] {
				cd.FirstDivergence = i
				d.Chares = append(d.Chares, cd)
				break
			}
		}
	}
	return d, nil
}

// pattern renders the offset-ordered phase kind sequence ("a R a R ...").
func pattern(s *core.Structure) string {
	order := make([]int32, len(s.Phases))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if s.Phases[order[i]].Offset != s.Phases[order[j]].Offset {
			return s.Phases[order[i]].Offset < s.Phases[order[j]].Offset
		}
		return order[i] < order[j]
	})
	var parts []string
	for i := 0; i < len(order); {
		j := i
		for j < len(order) &&
			s.Phases[order[j]].Offset == s.Phases[order[i]].Offset &&
			s.Phases[order[j]].Runtime == s.Phases[order[i]].Runtime {
			j++
		}
		sym := "a"
		if s.Phases[order[i]].Runtime {
			sym = "R"
		}
		if n := j - i; n > 1 {
			sym = fmt.Sprintf("%s*%d", sym, n)
		}
		parts = append(parts, sym)
		i = j
	}
	return strings.Join(parts, " ")
}
