package server

import (
	"context"
	"fmt"
	"net/http"

	"charmtrace/internal/core"
	"charmtrace/internal/lod"
	"charmtrace/internal/resultcache"
	"charmtrace/internal/structdiff"
)

// lodResponse wraps one executed LOD query with the request's content
// address, mirroring the other analysis responses.
type lodResponse struct {
	Digest      string `json:"digest"`
	Fingerprint string `json:"fingerprint"`
	*lod.Result
}

// handleLodGet serves GET /v1/traces/{digest}/lod: the level-of-detail
// aggregation shaped by URL parameters (resolution, steps, max_rows,
// max_edges, edges, render, diff). Responses are immutable per (digest,
// options, parameters), so the standard ETag/304 path applies.
func (s *Server) handleLodGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	opt, err := s.extractOptions(r)
	if err != nil {
		httpError(w, err)
		return
	}
	sp, err := lod.SpecFromParams(r.URL.Query())
	if err != nil {
		httpError(w, err)
		return
	}
	if s.notModified(w, r, digest, opt.Fingerprint()) {
		return
	}
	s.serveLod(w, r, digest, opt, sp)
}

// handleLodPost serves POST /v1/traces/{digest}/lod with a JSON spec body —
// the same response as the GET form with the equivalent parameters (pinned
// by the serving tests), for clients that outgrow URL length.
func (s *Server) handleLodPost(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	opt, err := s.extractOptions(r)
	if err != nil {
		httpError(w, err)
		return
	}
	sp, err := lod.ParseSpec(http.MaxBytesReader(w, r.Body, maxQuerySpecBytes))
	if err != nil {
		httpError(w, err)
		return
	}
	s.serveLod(w, r, digest, opt, sp)
}

// serveLod is the shared execution tail of both LOD forms: resolve the
// cached pyramid, resolve the diff digest if the spec asks for the overlay,
// run the query, render.
func (s *Server) serveLod(w http.ResponseWriter, r *http.Request, digest string, opt core.Options, sp lod.Spec) {
	pyr, err := s.pyramidFor(r.Context(), digest, opt)
	if err != nil {
		httpError(w, err)
		return
	}
	var diff *structdiff.Diff
	if sp.Diff != "" {
		other, err := s.structureFor(r.Context(), sp.Diff, opt)
		if err != nil {
			httpError(w, err)
			return
		}
		diff, err = structdiff.Compare(pyr.S, other)
		if err != nil {
			httpError(w, fmt.Errorf("%w: %s", errBadRequest, err))
			return
		}
	}
	res, err := pyr.Query(sp, diff)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONCompact(w, lodResponse{Digest: digest, Fingerprint: opt.Fingerprint(), Result: res})
}

// pyramidFor resolves (digest, options) to the cached LOD pyramid through
// the cache's aux slot — the same admission discipline as
// indexedStructureFor: a memory hit (pyramid resident or built in place)
// bypasses the extraction semaphore, everything else holds a slot.
func (s *Server) pyramidFor(ctx context.Context, digest string, opt core.Options) (*lod.Pyramid, error) {
	tr, err := s.lookupTrace(ctx, digest)
	if err != nil {
		return nil, err
	}
	resultcache.RecordKey(ctx, resultcache.KeyID(digest, opt.Fingerprint()))
	if _, p, ok := s.cache.LookupAux(digest, opt); ok {
		resultcache.RecordOutcome(ctx, resultcache.OutcomeMem)
		return p.(*lod.Pyramid), nil
	}
	release, err := s.acquireSlot(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	_, p, err := s.cache.GetAux(ctx, digest, tr, opt)
	if err != nil {
		return nil, err
	}
	return p.(*lod.Pyramid), nil
}
