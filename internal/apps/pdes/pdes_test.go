package pdes

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func TestTraceShape(t *testing.T) {
	cfg := DefaultConfig()
	tr := MustTrace(cfg)
	// Every simulator chare schedules Rounds events.
	simSends := 0
	for _, ev := range tr.Events {
		if ev.Kind != trace.Send {
			continue
		}
		if tr.Chares[ev.Chare].Name[:4] == "pdes" {
			simSends++
		}
	}
	// Event targets are random, so chares that receive few events spend
	// less of their send budget; the total is bounded by the budget and at
	// least one send per spawned chare.
	if simSends < cfg.Chares || simSends > cfg.Chares*cfg.Rounds {
		t.Fatalf("simulator sends = %d, want in [%d, %d]",
			simSends, cfg.Chares, cfg.Chares*cfg.Rounds)
	}
}

// TestDetectorPhaseConcurrentWithSimulation is the Figure 24 claim: with
// the detector call unrecorded, the detector phase and the simulation phase
// cover the same global steps (nothing structurally prevents it).
func TestDetectorPhaseConcurrentWithSimulation(t *testing.T) {
	tr := MustTrace(DefaultConfig())
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	simPhase, detPhase := classify(tr, s)
	if simPhase < 0 || detPhase < 0 {
		t.Fatalf("could not classify phases (sim=%d det=%d)", simPhase, detPhase)
	}
	pairs := s.ConcurrentPhases()
	for _, pr := range pairs {
		if (pr[0] == simPhase && pr[1] == detPhase) || (pr[0] == detPhase && pr[1] == simPhase) {
			return
		}
	}
	t.Fatalf("simulation phase %d and detector phase %d not concurrent; pairs=%v",
		simPhase, detPhase, pairs)
}

// TestRecordingDetectorCallSequencesPhases: once the dependency is traced,
// the detector phase follows the simulation phase.
func TestRecordingDetectorCallSequencesPhases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceDetectorCall = true
	tr := MustTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	simPhase, detPhase := classify(tr, s)
	if detPhase < 0 || simPhase == detPhase {
		return // detector merged into the simulation phase: sequenced outcome
	}
	for _, pr := range s.ConcurrentPhases() {
		if (pr[0] == simPhase && pr[1] == detPhase) || (pr[0] == detPhase && pr[1] == simPhase) {
			t.Fatal("detector phase still concurrent despite recorded dependency")
		}
	}
	if s.Phases[detPhase].Offset <= s.Phases[simPhase].Offset {
		t.Fatalf("detector phase offset %d not after simulation offset %d",
			s.Phases[detPhase].Offset, s.Phases[simPhase].Offset)
	}
}

// classify locates the biggest phase made of simulator events and the
// biggest made of detector events.
func classify(tr *trace.Trace, s *core.Structure) (int32, int32) {
	simPhase, detPhase := int32(-1), int32(-1)
	var simSize, detSize int
	for pi := range s.Phases {
		p := &s.Phases[pi]
		sim, det := 0, 0
		for _, e := range p.Events {
			name := tr.Chares[tr.Events[e].Chare].Name
			switch name[:4] {
			case "pdes":
				sim++
			case "dete":
				det++
			}
		}
		if sim > det && sim > simSize {
			simSize, simPhase = sim, int32(pi)
		}
		if det > sim && det > detSize {
			detSize, detPhase = det, int32(pi)
		}
	}
	return simPhase, detPhase
}

// TestQuiescenceModeAlsoConcurrent: driving the detector from runtime
// quiescence detection (the most faithful completion-detection model)
// produces the same Figure 24 overlap.
func TestQuiescenceModeAlsoConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseQuiescence = true
	tr := MustTrace(cfg)
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	simPhase, detPhase := classify(tr, s)
	if simPhase < 0 || detPhase < 0 {
		t.Fatalf("could not classify phases (sim=%d det=%d)", simPhase, detPhase)
	}
	for _, pr := range s.ConcurrentPhases() {
		if (pr[0] == simPhase && pr[1] == detPhase) || (pr[0] == detPhase && pr[1] == simPhase) {
			return
		}
	}
	t.Fatal("quiescence-driven detector phase not concurrent with simulation")
}
