package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"charmtrace/internal/trace"
)

// Binary format: a compact varint encoding for large traces. The text
// format stays the interchange default; ReadAuto detects either by magic.
//
//	magic "CTRB", uvarint version
//	uvarint numPE
//	uvarint nEntries { varint sdagSerial, u8 afterWhen, str name }
//	uvarint nChares  { varint array, varint index, u8 runtime, varint home, str name }
//	uvarint nBlocks  { varint chare, varint pe, varint entry, varint begin, varint end }
//	uvarint nEvents  { u8 kind, varint time, varint chare, varint pe, varint msg, varint block }
//	uvarint nIdles   { varint pe, varint begin, varint end }
//
// Signed fields use zig-zag varints (encoding/binary's signed varint);
// strings are uvarint length + bytes. Block event lists are reconstructed
// from the events section (events appear in ID order, and each block's
// events are listed in that order).

// binaryMagic opens every binary trace file.
var binaryMagic = [4]byte{'C', 'T', 'R', 'B'}

// binaryVersion is the current binary format version.
const binaryVersion = 1

// MaxPE caps the decoded PE count. trace.Index allocates per-PE state, so
// an unchecked count from an untrusted header (a 4-byte field can claim 4
// billion PEs) would turn a 10-byte upload into a multi-gigabyte
// allocation; 1<<20 is an order of magnitude past the largest machines the
// paper targets. Found by FuzzReadAuto.
const MaxPE = 1 << 20

type bwriter struct {
	w   *bufio.Writer
	err error
}

func (b *bwriter) u8(v uint8) {
	if b.err == nil {
		b.err = b.w.WriteByte(v)
	}
}
func (b *bwriter) u32(v uint32) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(v))
	if b.err == nil {
		_, b.err = b.w.Write(buf[:n])
	}
}
func (b *bwriter) i32(v int32) { b.i64(int64(v)) }
func (b *bwriter) i64(v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	if b.err == nil {
		_, b.err = b.w.Write(buf[:n])
	}
}
func (b *bwriter) str(s string) {
	b.u32(uint32(len(s)))
	if b.err == nil {
		_, b.err = b.w.WriteString(s)
	}
}
func (b *bwriter) bool(v bool) {
	if v {
		b.u8(1)
	} else {
		b.u8(0)
	}
}

// WriteBinary serializes a trace in the binary format.
func WriteBinary(w io.Writer, t *trace.Trace) error {
	b := &bwriter{w: bufio.NewWriter(w)}
	if _, err := b.w.Write(binaryMagic[:]); err != nil {
		return err
	}
	b.u32(binaryVersion)
	b.u32(uint32(t.NumPE))
	b.u32(uint32(len(t.Entries)))
	for _, e := range t.Entries {
		b.i32(int32(e.SDAGSerial))
		b.bool(e.AfterWhen)
		b.str(e.Name)
	}
	b.u32(uint32(len(t.Chares)))
	for _, c := range t.Chares {
		b.i32(int32(c.Array))
		b.i32(int32(c.Index))
		b.bool(c.Runtime)
		b.i32(int32(c.Home))
		b.str(c.Name)
	}
	b.u32(uint32(len(t.Blocks)))
	for i := range t.Blocks {
		blk := &t.Blocks[i]
		b.i32(int32(blk.Chare))
		b.i32(int32(blk.PE))
		b.i32(int32(blk.Entry))
		b.i64(int64(blk.Begin))
		b.i64(int64(blk.End))
	}
	b.u32(uint32(len(t.Events)))
	for i := range t.Events {
		ev := &t.Events[i]
		b.u8(uint8(ev.Kind))
		b.i64(int64(ev.Time))
		b.i32(int32(ev.Chare))
		b.i32(int32(ev.PE))
		b.i64(int64(ev.Msg))
		b.i32(int32(ev.Block))
	}
	b.u32(uint32(len(t.Idles)))
	for _, idle := range t.Idles {
		b.i32(int32(idle.PE))
		b.i64(int64(idle.Begin))
		b.i64(int64(idle.End))
	}
	if b.err != nil {
		return b.err
	}
	return b.w.Flush()
}

type breader struct {
	r   *bufio.Reader
	err error
}

func (b *breader) u8() uint8 {
	if b.err != nil {
		return 0
	}
	v, err := b.r.ReadByte()
	b.err = err
	return v
}
func (b *breader) u32() uint32 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(b.r)
	b.err = err
	if err == nil && v > math.MaxUint32 {
		b.err = fmt.Errorf("tracefile: uvarint %d exceeds uint32", v)
	}
	return uint32(v)
}
func (b *breader) i32() int32 {
	v := b.i64()
	if b.err == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		b.err = fmt.Errorf("tracefile: varint %d exceeds int32", v)
	}
	return int32(v)
}
func (b *breader) i64() int64 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(b.r)
	b.err = err
	return v
}
func (b *breader) str() string {
	n := b.u32()
	if b.err != nil {
		return ""
	}
	if n > 1<<24 {
		b.err = fmt.Errorf("tracefile: string length %d too large", n)
		return ""
	}
	buf := make([]byte, n)
	_, b.err = io.ReadFull(b.r, buf)
	return string(buf)
}
func (b *breader) bool() bool { return b.u8() != 0 }

// count validates a section length against a sanity cap.
func (b *breader) count(what string) int {
	n := b.u32()
	if b.err == nil && n > math.MaxInt32 {
		b.err = fmt.Errorf("tracefile: %s count %d too large", what, n)
	}
	return int(n)
}

// ReadBinary parses a binary trace and indexes it. Decode failures —
// including truncation, which surfaces as io.EOF / io.ErrUnexpectedEOF from
// the section readers — carry the ErrMalformed tag (see errors.go).
func ReadBinary(r io.Reader) (*trace.Trace, error) {
	b := &breader{r: bufio.NewReader(r)}
	var magic [4]byte
	if _, err := io.ReadFull(b.r, magic[:]); err != nil {
		return nil, malformed(fmt.Errorf("tracefile: %w", err))
	}
	if magic != binaryMagic {
		return nil, malformed(fmt.Errorf("tracefile: bad binary magic %q", magic[:]))
	}
	if v := b.u32(); v != binaryVersion {
		if b.err == nil {
			return nil, malformed(fmt.Errorf("tracefile: unsupported binary version %d", v))
		}
	}
	t := &trace.Trace{NumPE: int(b.u32())}
	if b.err == nil && t.NumPE > MaxPE {
		return nil, malformed(fmt.Errorf("tracefile: pe count %d out of range [0, %d]", t.NumPE, MaxPE))
	}
	for i, n := 0, b.count("entry"); i < n && b.err == nil; i++ {
		e := trace.Entry{ID: trace.EntryID(i)}
		e.SDAGSerial = int(b.i32())
		e.AfterWhen = b.bool()
		e.Name = b.str()
		t.Entries = append(t.Entries, e)
	}
	for i, n := 0, b.count("chare"); i < n && b.err == nil; i++ {
		c := trace.Chare{ID: trace.ChareID(i)}
		c.Array = trace.ArrayID(b.i32())
		c.Index = int(b.i32())
		c.Runtime = b.bool()
		c.Home = trace.PE(b.i32())
		c.Name = b.str()
		t.Chares = append(t.Chares, c)
	}
	for i, n := 0, b.count("block"); i < n && b.err == nil; i++ {
		blk := trace.Block{ID: trace.BlockID(i)}
		blk.Chare = trace.ChareID(b.i32())
		blk.PE = trace.PE(b.i32())
		blk.Entry = trace.EntryID(b.i32())
		blk.Begin = trace.Time(b.i64())
		blk.End = trace.Time(b.i64())
		t.Blocks = append(t.Blocks, blk)
	}
	for i, n := 0, b.count("event"); i < n && b.err == nil; i++ {
		ev := trace.Event{ID: trace.EventID(i)}
		ev.Kind = trace.EventKind(b.u8())
		ev.Time = trace.Time(b.i64())
		ev.Chare = trace.ChareID(b.i32())
		ev.PE = trace.PE(b.i32())
		ev.Msg = trace.MsgID(b.i64())
		ev.Block = trace.BlockID(b.i32())
		if b.err == nil {
			if ev.Kind != trace.Send && ev.Kind != trace.Recv {
				return nil, malformed(fmt.Errorf("tracefile: event %d has unknown kind %d", i, ev.Kind))
			}
			if ev.Block < 0 || int(ev.Block) >= len(t.Blocks) {
				return nil, malformed(fmt.Errorf("tracefile: event %d references unknown block %d", i, ev.Block))
			}
			t.Events = append(t.Events, ev)
			t.Blocks[ev.Block].Events = append(t.Blocks[ev.Block].Events, ev.ID)
		}
	}
	for i, n := 0, b.count("idle"); i < n && b.err == nil; i++ {
		idle := trace.Idle{}
		idle.PE = trace.PE(b.i32())
		idle.Begin = trace.Time(b.i64())
		idle.End = trace.Time(b.i64())
		t.Idles = append(t.Idles, idle)
	}
	if b.err != nil {
		return nil, malformed(fmt.Errorf("tracefile: %w", b.err))
	}
	if err := t.Index(); err != nil {
		return nil, malformed(fmt.Errorf("tracefile: %w", err))
	}
	return t, nil
}

// ReadAuto detects the format (text header, binary magic or the
// Projections-style magic line) and parses accordingly. Decode failures
// carry the ErrMalformed tag (see errors.go).
func ReadAuto(r io.Reader) (*trace.Trace, error) {
	br := bufio.NewReader(r)
	// Peek the longest magic; a short read still yields whatever prefix is
	// available, which is enough to dispatch (a stream shorter than every
	// magic can only be the text format, whose reader rejects it).
	head, err := br.Peek(len(projectionsMagic))
	if len(head) == 0 {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, malformed(fmt.Errorf("tracefile: %w", err))
	}
	if len(head) >= len(binaryMagic) && [4]byte(head[:4]) == binaryMagic {
		return ReadBinary(br)
	}
	if string(head) == projectionsMagic {
		return ReadProjections(br)
	}
	return Read(br)
}
