package main

import (
	"fmt"
	"time"

	"charmtrace/internal/apps/lulesh"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func init() {
	register("fig18", "logical-structure extraction time vs iterations (64-chare LULESH)", figScaleIterations)
	register("fig19", "logical-structure extraction time vs chare count (8-iteration LULESH)", figScaleChares)
}

// timeExtract measures one extraction, returning the wall time and the
// share spent in the §3.1.4 orderability machinery (which Figure 19
// identifies as the dominant cost at high chare counts).
func timeExtract(tr *trace.Trace) (time.Duration, time.Duration, *core.Structure) {
	opt := core.DefaultOptions()
	tele.Apply(&opt)
	start := time.Now()
	s := must(core.Extract(tr, opt))
	total := time.Since(start)
	sec314 := s.Stats.StageTime["infer-dependencies"] +
		s.Stats.StageTime["leap-merge"] +
		s.Stats.StageTime["enforce-orderability"] +
		s.Stats.StageTime["enforce-chare-paths"]
	return total, sec314, s
}

func figScaleIterations(big bool) {
	iters := []int{8, 16, 32, 64, 128}
	if big {
		iters = append(iters, 256, 512)
	} else {
		fmt.Println("  (up to 128 iterations; pass -big for the paper's 512)")
	}
	cfg := lulesh.DefaultConfig()
	cfg.Grid = 4 // 64 chares
	cfg.NumPE = 8
	fmt.Printf("  %-11s %-9s %-12s %s\n", "iterations", "events", "extraction", "ns/event")
	var times []time.Duration
	for _, it := range iters {
		cfg.Iterations = it
		tr := must(lulesh.CharmTrace(cfg))
		total, _, _ := timeExtract(tr)
		times = append(times, total)
		fmt.Printf("  %-11d %-9d %-12v %d\n",
			it, len(tr.Events), total.Round(time.Microsecond),
			total.Nanoseconds()/int64(len(tr.Events)))
	}
	ratio := float64(times[len(times)-1]) / float64(times[0]) /
		(float64(iters[len(iters)-1]) / float64(iters[0]))
	paperVsMeasured(
		"computation time is directly proportional to the number of iterations (doubling iterations doubles time)",
		fmt.Sprintf("time(max)/time(min) vs iteration ratio = %.2f (1.0 = perfectly linear)", ratio))
}

func figScaleChares(big bool) {
	grids := []int{4, 6, 8, 12, 16} // 64, 216, 512, 1728, 4096 chares
	if big {
		grids = append(grids, 24) // 13,824 chares — the paper's 13.8k point
	} else {
		fmt.Println("  (up to 4,096 chares; pass -big for the paper's 13.8k point)")
	}
	cfg := lulesh.DefaultConfig()
	cfg.Iterations = 8
	fmt.Printf("  %-8s %-9s %-12s %-12s %-6s %s\n",
		"chares", "events", "extraction", "§3.1.4 part", "share", "ns/event")
	var firstPerEvent, lastPerEvent float64
	for i, g := range grids {
		cfg.Grid = g
		cfg.NumPE = g * g * g / 8
		tr := must(lulesh.CharmTrace(cfg))
		total, sec314, _ := timeExtract(tr)
		perEvent := float64(total.Nanoseconds()) / float64(len(tr.Events))
		if i == 0 {
			firstPerEvent = perEvent
		}
		lastPerEvent = perEvent
		fmt.Printf("  %-8d %-9d %-12v %-12v %-6.0f%% %.0f\n",
			g*g*g, len(tr.Events), total.Round(time.Microsecond),
			sec314.Round(time.Microsecond), 100*float64(sec314)/float64(total), perEvent)
	}
	paperVsMeasured(
		"time grows super-linearly with chare count; the §3.1.4 merge comprises the bulk of the additional time",
		fmt.Sprintf("super-linear: per-event cost grows %.1fx from the smallest to the largest run; the §3.1.4 machinery is a steady ~25%% of extraction here (our implementation, unlike the paper's, keeps its cost proportional)",
			lastPerEvent/firstPerEvent))
}
