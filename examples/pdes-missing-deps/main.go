// pdes-missing-deps demonstrates the Section 7.1 limitation (Figure 24):
// when a control dependency passes through the runtime without being
// recorded — here, the PDES simulator chares' call to the completion
// detector — nothing in the trace orders the two phases, so the recovered
// structure places them over the same global steps. Recording the call (the
// paper's tracing recommendation) sequences them.
package main

import (
	"fmt"
	"log"

	"charmtrace"
)

func structure(cfg charmtrace.PDESConfig) *charmtrace.Structure {
	tr, err := charmtrace.PDESTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s, err := charmtrace.Extract(tr, charmtrace.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func main() {
	cfg := charmtrace.DefaultPDESConfig()

	fmt.Println("== detector call NOT recorded (stock tracing) ==")
	s := structure(cfg)
	fmt.Print(charmtrace.PhaseSummary(s))
	if pairs := s.ConcurrentPhases(); len(pairs) > 0 {
		fmt.Printf("\nconcurrent phase pairs (overlapping global steps, unordered): %v\n", pairs)
		fmt.Println("-> the completion-detector phase floats beside the simulation phase,")
		fmt.Println("   exactly the Figure 24 behaviour: nothing structurally prevents the overlap.")
	} else {
		fmt.Println("\nno concurrent phases found (unexpected)")
	}

	fmt.Println("\n== detector call recorded (the paper's §7.1 tracing recommendation) ==")
	cfg.TraceDetectorCall = true
	s = structure(cfg)
	fmt.Print(charmtrace.PhaseSummary(s))
	fmt.Printf("\nconcurrent phase pairs: %v\n", s.ConcurrentPhases())
	fmt.Println("-> with the dependency recorded, the detector follows the simulation.")
}
