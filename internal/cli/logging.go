package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Logging bundles the -log-format / -log-level flags shared by the
// command-line tools. The format default is per-tool: charmd defaults to
// JSON (one machine-parseable object per request, the shape log shippers
// ingest), while the batch CLIs default to text (a human is watching).
// Construct with NewLogging after deciding the default, call Logger after
// flag parsing.
type Logging struct {
	// Format is "json" or "text"; Level is a slog level name (debug, info,
	// warn, error). RegisterFlags binds them.
	Format string
	Level  string
}

// NewLogging registers -log-format and -log-level on fs with the given
// format default ("json" or "text").
func NewLogging(defaultFormat string, fs *flag.FlagSet) *Logging {
	l := &Logging{}
	fs.StringVar(&l.Format, "log-format", defaultFormat, "log line format: json or text")
	fs.StringVar(&l.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
	return l
}

// ParseLogLevel maps a level name to its slog.Level, case-insensitively.
func ParseLogLevel(name string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("cli: unknown log level %q (want debug, info, warn or error)", name)
}

// Logger builds the slog logger the flags describe, writing to w. Call
// after flag parsing; an unknown format or level is a flag-usage error.
func (l *Logging) Logger(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLogLevel(l.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(l.Format)) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("cli: unknown log format %q (want json or text)", l.Format)
}
