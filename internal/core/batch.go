package core

import (
	"fmt"

	"charmtrace/internal/trace"
)

// ExtractBatch recovers the logical structure of many traces concurrently,
// fanning the extractions over opt.Workers() goroutines. Results are
// returned in input order and each is byte-identical to what a lone
// Extract(traces[i], opt) returns, so multi-run comparison workflows
// (seed-invariance studies, MPI-vs-Charm++ correspondence) can batch their
// analyses without changing their output.
//
// Unindexed traces are indexed sequentially up front, so a batch may safely
// contain the same *Trace more than once; after indexing, extraction only
// reads the trace. If any trace fails, ExtractBatch returns nil and the
// error of the lowest-indexed failure, annotated with its position.
//
// The worker budget applies at both levels: the batch fan-out and each
// extraction's internal stages each use opt.Workers(), so a batch may
// transiently run more goroutines than workers; the Go scheduler multiplexes
// them onto GOMAXPROCS threads, and CPU-bound work stays bounded by that.
func ExtractBatch(traces []*trace.Trace, opt Options) ([]*Structure, error) {
	out := make([]*Structure, len(traces))
	if len(traces) == 0 {
		return out, nil
	}
	for i, tr := range traces {
		if tr == nil {
			return nil, fmt.Errorf("core: trace %d: nil trace", i)
		}
		if !tr.Indexed() {
			if err := tr.Index(); err != nil {
				return nil, fmt.Errorf("core: trace %d: %w", i, err)
			}
		}
	}
	errs := make([]error, len(traces))
	parallelFor(len(traces), opt.Workers(), func(i int) {
		out[i], errs[i] = Extract(traces[i], opt)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: trace %d: %w", i, err)
		}
	}
	return out, nil
}
