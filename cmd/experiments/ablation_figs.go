package main

import (
	"fmt"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lulesh"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func init() {
	register("abl1", "ablation: §3.1.3 neighbouring-serial merge on/off", ablNeighborSerial)
	register("abl2", "ablation: Figure 7 tie-break — invoking chare vs topology rank vs physical time", ablTieBreak)
	register("abl3", "ablation: parallel vs serial step assignment (§3.3)", ablParallel)
}

func ablNeighborSerial(bool) {
	tr := must(lulesh.CharmTrace(lulesh.DefaultConfig()))
	on := extract(tr, core.DefaultOptions())
	opt := core.DefaultOptions()
	opt.NeighborSerialMerge = false
	off := extract(tr, opt)
	fmt.Printf("  with neighbour-serial merge:    %d phases: %s\n", on.NumPhases(), kindPattern(on))
	fmt.Printf("  without neighbour-serial merge: %d phases: %s\n", off.NumPhases(), kindPattern(off))
	paperVsMeasured(
		"merging partitions of SDAG serial n+1 whose serial-n chares shared a phase captures multi-chare control flow (§3.1.3)",
		fmt.Sprintf("phase counts %d vs %d — on this workload the other merges already connect the serials, so the refinement is a no-op safety net",
			on.NumPhases(), off.NumPhases()))
}

func ablTieBreak(bool) {
	cfg := jacobi.DefaultConfig()
	cfg.Grid = 6
	cfg.Iterations = 2
	tr := must(jacobi.Trace(cfg))

	// Three orderings of the same trace: the paper's invoking-chare
	// tie-break, a topology-aware rank (row-major distance from the domain
	// centre), and raw physical time.
	base := extract(tr, core.DefaultOptions())
	rank := make([]int32, len(tr.Chares))
	for i := range tr.Chares {
		c := &tr.Chares[i]
		if c.Runtime {
			rank[i] = int32(i)
			continue
		}
		x, y := c.Index%cfg.Grid, c.Index/cfg.Grid
		dx, dy := 2*x-(cfg.Grid-1), 2*y-(cfg.Grid-1)
		rank[i] = int32(dx*dx + dy*dy)
	}
	opt := core.DefaultOptions()
	opt.ChareRank = rank
	topo := extract(tr, opt)
	optPhys := core.DefaultOptions()
	optPhys.Reorder = false
	phys := extract(tr, optPhys)

	// Stability metric: how consistently do the two iterations place each
	// receive (same chare, same local step, same sender)?
	stability := func(s *core.Structure) float64 {
		type key struct {
			chare trace.ChareID
			step  int32
		}
		pats := map[int32]map[key]trace.ChareID{}
		var apps []int32
		for _, pi := range phasesByOffset(s) {
			if !s.Phases[pi].Runtime && len(s.Phases[pi].Chares) > 1 {
				apps = append(apps, pi)
			}
		}
		if len(apps) < 2 {
			return 0
		}
		for _, pi := range apps[:2] {
			m := map[key]trace.ChareID{}
			for _, e := range s.Phases[pi].Events {
				ev := &tr.Events[e]
				if ev.Kind != trace.Recv {
					continue
				}
				m[key{ev.Chare, s.LocalStep[e]}] = tr.Events[tr.SendOf(ev.Msg)].Chare
			}
			pats[pi] = m
		}
		a, b := pats[apps[0]], pats[apps[1]]
		same, total := 0, 0
		for k, v := range a {
			total++
			if b[k] == v {
				same++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(same) / float64(total)
	}
	fmt.Printf("  cross-iteration pattern stability:\n")
	fmt.Printf("    invoking-chare tie-break: %3.0f%%\n", 100*stability(base))
	fmt.Printf("    topology-rank tie-break:  %3.0f%%\n", 100*stability(topo))
	fmt.Printf("    physical-time order:      %3.0f%%\n", 100*stability(phys))
	paperVsMeasured(
		"tie-breaking by chare ID is serviceable; an ordering aware of the data topology would likely be more intuitive (§3.2.1)",
		"both reorderings are fully stable across iterations and differ only in presentation order; physical time is unstable")
}

func ablParallel(bool) {
	cfg := lulesh.DefaultConfig()
	cfg.Grid = 8
	cfg.NumPE = 64
	tr := must(lulesh.CharmTrace(cfg))
	serial := extract(tr, core.DefaultOptions())
	opt := core.DefaultOptions()
	opt.Parallel = true
	par := extract(tr, opt)
	identical := serial.NumPhases() == par.NumPhases()
	for e := range tr.Events {
		if serial.Step[e] != par.Step[e] {
			identical = false
		}
	}
	fmt.Printf("  serial and parallel step assignment identical: %v (%d phases, %d events)\n",
		identical, serial.NumPhases(), len(tr.Events))
	paperVsMeasured(
		"each phase is handled individually, so this stage could be parallelized (§3.3)",
		"implemented: one goroutine per phase over shared per-event scratch; results are bit-identical")
}
