// Benchmarks for the supporting subsystems beyond the paper's figures:
// clustering, skew correction, profiles, windowing, serialization and the
// renderers.
package charmtrace

import (
	"bytes"
	"testing"

	"charmtrace/internal/apps/lassen"
	"charmtrace/internal/charegroup"
	"charmtrace/internal/core"
	"charmtrace/internal/profile"
	"charmtrace/internal/skew"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
	"charmtrace/internal/viz"
)

func lassenFineStructure(b *testing.B) *core.Structure {
	b.Helper()
	cfg := lassen.FineConfig()
	cfg.Iterations = 8
	s, err := core.Extract(lassen.MustCharmTrace(cfg), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkClusterExact(b *testing.B) {
	s := lassenFineStructure(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		charegroup.Exact(s)
	}
}

func BenchmarkSkewCorrect(b *testing.B) {
	s := lassenFineStructure(b)
	offsets := make([]trace.Time, s.Trace.NumPE)
	for p := range offsets {
		offsets[p] = trace.Time(p * 900)
	}
	skewed, err := skew.Inject(s.Trace, offsets)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := skew.Correct(skewed, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileBuild(b *testing.B) {
	s := lassenFineStructure(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profile.Build(s.Trace)
	}
}

func BenchmarkTraceWindow(b *testing.B) {
	s := lassenFineStructure(b)
	lo, hi := s.Trace.Span()
	mid := lo + (hi-lo)/2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Window(s.Trace, lo, mid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTracefileRoundTrip(b *testing.B) {
	s := lassenFineStructure(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tracefile.Write(&buf, s.Trace); err != nil {
			b.Fatal(err)
		}
		if _, err := tracefile.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderLogical(b *testing.B) {
	s := lassenFineStructure(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		viz.Logical(s)
	}
}

func BenchmarkMetricsLateness(b *testing.B) {
	s := lassenFineStructure(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Lateness(s)
	}
}

// BenchmarkParallelStepAssignment compares the §3.3 parallel ordering stage
// against the serial one on a many-phase trace.
func BenchmarkParallelStepAssignment(b *testing.B) {
	cfg := lassen.FineConfig()
	cfg.Iterations = 8
	tr := lassen.MustCharmTrace(cfg)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Extract(tr, core.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		opt := core.DefaultOptions()
		opt.Parallel = true
		for i := 0; i < b.N; i++ {
			if _, err := core.Extract(tr, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
