package main

import (
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// charmd signals transient pressure two ways: a 429 with a Retry-After
// hint when the extraction queue is full, and a 503 while a node drains
// or its cache is closed. Both mean "the same request will likely succeed
// shortly", so chquery retries them — bounded, with the server's hint
// honored when present and capped exponential backoff plus jitter when
// not. Every other status is the final answer.

const (
	retryBase = 250 * time.Millisecond
	retryMax  = 10 * time.Second
)

// retrier re-runs an HTTP call on 429/503 up to `retries` extra attempts.
// sleep and jitter are injectable so tests run instantly and
// deterministically.
type retrier struct {
	retries int
	base    time.Duration
	max     time.Duration
	sleep   func(time.Duration)
	jitter  func() float64   // uniform [0,1)
	now     func() time.Time // for HTTP-date Retry-After arithmetic
}

func newRetrier(retries int) *retrier {
	return &retrier{
		retries: retries,
		base:    retryBase,
		max:     retryMax,
		sleep:   time.Sleep,
		jitter:  rand.Float64,
		now:     time.Now,
	}
}

// retryable reports whether a status is worth another attempt.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// delay computes the wait before retry `attempt` (0-based). A parseable
// Retry-After wins — the server knows its queue better than any backoff
// curve — clamped to max so a confused server cannot park the client.
// RFC 9110 allows both delta-seconds and an HTTP-date; proxies in
// particular rewrite the delta form into a date, so both are honored (a
// date already in the past means "now": zero wait). Otherwise: capped
// exponential with full-range jitter in [d/2, d), which keeps a burst of
// identical clients from re-synchronizing on the server.
func (r *retrier) delay(attempt int, retryAfter string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > r.max {
			d = r.max
		}
		return d
	}
	if t, err := http.ParseTime(strings.TrimSpace(retryAfter)); err == nil {
		d := t.Sub(r.now())
		if d < 0 {
			d = 0
		}
		if d > r.max {
			d = r.max
		}
		return d
	}
	d := r.base
	for i := 0; i < attempt && d < r.max; i++ {
		d *= 2
	}
	if d > r.max {
		d = r.max
	}
	half := d / 2
	return half + time.Duration(r.jitter()*float64(half))
}

// do runs fn until it yields a non-retryable response or the attempt
// budget is spent; the last response is returned either way. Transport
// errors are not retried — they are config or network problems, not the
// load signals this retrier exists for. Retried response bodies are
// drained so the underlying connection is reused.
func (r *retrier) do(fn func() (*http.Response, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := fn()
		if err != nil {
			return nil, err
		}
		if !retryable(resp.StatusCode) || attempt >= r.retries {
			return resp, nil
		}
		ra := resp.Header.Get("Retry-After")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		r.sleep(r.delay(attempt, ra))
	}
}
