package resultcache

import (
	"context"
	"sync"
	"testing"

	"charmtrace/internal/core"
)

// countingAux is a Config.Aux builder that counts constructions.
type countingAux struct {
	mu     sync.Mutex
	builds int
}

type fakeAux struct{ s *core.Structure }

func (ca *countingAux) build(s *core.Structure) (any, int64) {
	ca.mu.Lock()
	ca.builds++
	ca.mu.Unlock()
	return &fakeAux{s: s}, 500
}

func TestGetAuxBuildsOncePerEntry(t *testing.T) {
	tr, digest := testTrace(t)
	ca := &countingAux{}
	c, err := New(Config{Dir: t.TempDir(), Aux: ca.build})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()

	s1, a1, err := c.GetAux(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	s2, a2, err := c.GetAux(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == nil || a1 != a2 {
		t.Errorf("aux values differ across hits: %p vs %p", a1, a2)
	}
	if fa := a1.(*fakeAux); fa.s != s1 || s1 != s2 {
		t.Error("aux not built against the cached structure")
	}
	if ca.builds != 1 {
		t.Errorf("aux built %d times, want 1", ca.builds)
	}
	reg := c.Registry()
	if got := counter(reg, "cache.aux_builds"); got != 1 {
		t.Errorf("aux_builds = %d, want 1", got)
	}
	if got := counter(reg, "cache.aux_hits"); got != 1 {
		t.Errorf("aux_hits = %d, want 1", got)
	}
	if got := reg.Gauge("cache.aux_bytes").Value(); got != 500 {
		t.Errorf("aux_bytes = %v, want 500", got)
	}
}

func TestLookupAuxPeeksAndBuilds(t *testing.T) {
	tr, digest := testTrace(t)
	ca := &countingAux{}
	c, err := New(Config{Dir: t.TempDir(), Aux: ca.build})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()

	if _, _, ok := c.LookupAux(digest, opt); ok {
		t.Fatal("LookupAux hit an empty cache")
	}
	if ca.builds != 0 {
		t.Fatalf("miss built an aux value (%d builds)", ca.builds)
	}
	if _, err := c.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	s, a, ok := c.LookupAux(digest, opt)
	if !ok || s == nil || a == nil {
		t.Fatalf("LookupAux after Get: ok=%v s=%v aux=%v", ok, s, a)
	}
	if ca.builds != 1 {
		t.Errorf("aux built %d times, want 1", ca.builds)
	}
}

// TestAuxIndependentOfIndex: the two derived slots build and account
// independently on one entry — requesting one never constructs the other.
func TestAuxIndependentOfIndex(t *testing.T) {
	tr, digest := testTrace(t)
	ci := &countingIndex{}
	ca := &countingAux{}
	c, err := New(Config{Index: ci.build, Aux: ca.build})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	if _, _, err := c.GetIndexed(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	if ca.builds != 0 {
		t.Fatalf("GetIndexed built the aux value (%d builds)", ca.builds)
	}
	if _, _, err := c.GetAux(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	if ci.builds != 1 || ca.builds != 1 {
		t.Fatalf("builds: index=%d aux=%d, want 1/1", ci.builds, ca.builds)
	}
	reg := c.Registry()
	if got := reg.Gauge("cache.index_bytes").Value(); got != 1000 {
		t.Errorf("index_bytes = %v, want 1000", got)
	}
	if got := reg.Gauge("cache.aux_bytes").Value(); got != 500 {
		t.Errorf("aux_bytes = %v, want 500", got)
	}
}

// TestAuxBytesReleasedOnEviction: evicting an entry whose aux value was
// built subtracts its bytes from the gauge.
func TestAuxBytesReleasedOnEviction(t *testing.T) {
	tr, digest := testTrace(t)
	ca := &countingAux{}
	c, err := New(Config{MaxMemEntries: 1, Aux: ca.build})
	if err != nil {
		t.Fatal(err)
	}
	optA := core.DefaultOptions()
	if _, _, err := c.GetAux(context.Background(), digest, tr, optA); err != nil {
		t.Fatal(err)
	}
	reg := c.Registry()
	if got := reg.Gauge("cache.aux_bytes").Value(); got != 500 {
		t.Fatalf("aux_bytes after build = %v, want 500", got)
	}

	optB := optA
	optB.Reorder = !optA.Reorder
	if _, _, err := c.GetAux(context.Background(), digest, tr, optB); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if got := reg.Gauge("cache.aux_bytes").Value(); got != 500 {
		t.Errorf("aux_bytes after eviction+rebuild = %v, want 500", got)
	}
	if got := counter(reg, "cache.aux_builds"); got != 2 {
		t.Errorf("aux_builds = %d, want 2", got)
	}
}

// TestGetAuxWithoutMemoryLayer: with the memory layer disabled every GetAux
// builds a transient value, never accounted in the gauge.
func TestGetAuxWithoutMemoryLayer(t *testing.T) {
	tr, digest := testTrace(t)
	ca := &countingAux{}
	c, err := New(Config{Dir: t.TempDir(), MaxMemEntries: -1, Aux: ca.build})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	for i := 0; i < 2; i++ {
		_, a, err := c.GetAux(context.Background(), digest, tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			t.Fatal("nil aux value")
		}
	}
	if ca.builds != 2 {
		t.Errorf("aux built %d times, want 2 (transient per request)", ca.builds)
	}
	if got := c.Registry().Gauge("cache.aux_bytes").Value(); got != 0 {
		t.Errorf("aux_bytes = %v, want 0 (transient values are unaccounted)", got)
	}
}

// TestGetAuxNilBuilder: without Config.Aux the accessors degrade to
// Get/Lookup with a nil aux value.
func TestGetAuxNilBuilder(t *testing.T) {
	tr, digest := testTrace(t)
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	s, a, err := c.GetAux(context.Background(), digest, tr, opt)
	if err != nil || s == nil || a != nil {
		t.Fatalf("GetAux = (%v, %v, %v), want (structure, nil, nil)", s, a, err)
	}
	if _, a, ok := c.LookupAux(digest, opt); !ok || a != nil {
		t.Fatalf("LookupAux = (_, %v, %v), want (_, nil, true)", a, ok)
	}
}

// TestConcurrentAuxRequestsBuildOnce: K concurrent aux requests for one
// resident entry share a single build.
func TestConcurrentAuxRequestsBuildOnce(t *testing.T) {
	tr, digest := testTrace(t)
	ca := &countingAux{}
	c, err := New(Config{Aux: ca.build})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	if _, err := c.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	const K = 8
	vals := make([]any, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, a, err := c.GetAux(context.Background(), digest, tr, opt)
			if err != nil {
				t.Error(err)
				return
			}
			vals[i] = a
		}(i)
	}
	wg.Wait()
	if ca.builds != 1 {
		t.Errorf("aux built %d times under concurrency, want 1", ca.builds)
	}
	for i := 1; i < K; i++ {
		if vals[i] != vals[0] {
			t.Fatalf("request %d got a different aux value", i)
		}
	}
}
