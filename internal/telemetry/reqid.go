package telemetry

import "context"

// The request-ID context key lives in telemetry because it is read on both
// sides of the serving/pipeline boundary: charmd's access-log middleware
// stamps every request context, the result cache copies the id onto a
// detached flight's context when that request becomes the flight leader,
// and core.Extract attaches it to the extraction's root span — which is
// what lets a slow span in -self-trace output be joined back to the access
// log line (and the X-Request-ID the client saw) that caused it.

type requestIDKey struct{}

// WithRequestID returns a context carrying the request id. Empty ids are
// not stored.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request id, or "". A nil context is safe
// (core.Options.Context may be nil).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
