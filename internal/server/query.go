package server

import (
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"net/url"
	"strings"

	"charmtrace/internal/core"
	"charmtrace/internal/query"
	"charmtrace/internal/resultcache"
)

// queryResponse wraps one executed query page with the request's content
// address, mirroring the other analysis responses.
type queryResponse struct {
	Digest      string `json:"digest"`
	Fingerprint string `json:"fingerprint"`
	*query.Result
}

// maxQuerySpecBytes bounds a POST /query body; a spec is a few hundred
// bytes, so anything past this is garbage.
const maxQuerySpecBytes = 1 << 20

// handleQuery executes a JSON query spec (POST body) against the trace's
// recovered structure through the per-entry index. Invalid specs map to
// 400 with the offending field named; execution shares the cache and
// admission path of the other analysis endpoints.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	opt, err := s.extractOptions(r)
	if err != nil {
		httpError(w, err)
		return
	}
	spec, err := query.ParseSpec(http.MaxBytesReader(w, r.Body, maxQuerySpecBytes))
	if err != nil {
		httpError(w, err)
		return
	}
	s.serveQuery(w, r, digest, opt, spec)
}

// serveQuery is the shared execution tail of POST /query and the GET
// parameter retrofit: resolve the indexed structure, run one page, render.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, digest string, opt core.Options, spec query.Spec) {
	_, idx, err := s.indexedStructureFor(r.Context(), digest, opt)
	if err != nil {
		httpError(w, err)
		return
	}
	res, err := s.engine.Run(r.Context(), idx, spec)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, queryResponse{Digest: digest, Fingerprint: opt.Fingerprint(), Result: res})
}

// indexedStructureFor is structureFor plus the cached per-entry query
// index. Memory hits (structure and index both cache-resident or built in
// place) bypass admission control like structureFor's: the index build is
// milliseconds against extraction's seconds, and building it outside a
// slot keeps hot paging requests from queueing behind extractions.
func (s *Server) indexedStructureFor(ctx context.Context, digest string, opt core.Options) (*core.Structure, *query.Index, error) {
	tr, err := s.lookupTrace(ctx, digest)
	if err != nil {
		return nil, nil, err
	}
	resultcache.RecordKey(ctx, resultcache.KeyID(digest, opt.Fingerprint()))
	if st, idx, ok := s.cache.LookupIndexed(digest, opt); ok {
		resultcache.RecordOutcome(ctx, resultcache.OutcomeMem)
		return st, idx.(*query.Index), nil
	}
	release, err := s.acquireSlot(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	st, idx, err := s.cache.GetIndexed(ctx, digest, tr, opt)
	if err != nil {
		return nil, nil, err
	}
	return st, idx.(*query.Index), nil
}

// ---- conditional requests ---------------------------------------------

// optionParams are the URL parameters already canonicalized into the
// options fingerprint; every other parameter can change response bytes and
// therefore feeds the ETag.
var optionParams = map[string]bool{
	"preset": true, "reorder": true, "infer": true, "nsmerge": true, "procorder": true,
}

// responseParams canonicalizes the response-shaping parameters (the query
// retrofit set, legacy ?chare=, anything future) into a stable string:
// url.Values.Encode sorts by key.
func responseParams(q url.Values) string {
	v := url.Values{}
	for k, vals := range q {
		if !optionParams[k] {
			v[k] = vals
		}
	}
	return v.Encode()
}

// strongETag is the content address of one analysis response:
// sha256(trace digest ‖ options fingerprint ‖ canonical request params).
// Every input is known before extraction runs, so a revalidation hit never
// touches the pipeline.
func strongETag(digest, fingerprint, params string) string {
	h := sha256.New()
	io.WriteString(h, digest)
	h.Write([]byte{0})
	io.WriteString(h, fingerprint)
	h.Write([]byte{0})
	io.WriteString(h, params)
	return `"` + hex.EncodeToString(h.Sum(nil)) + `"`
}

// notModified stamps the caching headers of an immutable digest-addressed
// response (strong ETag, long-lived Cache-Control) and reports whether
// If-None-Match already matched — in which case it has written the 304 and
// the handler is done, having skipped extraction entirely. Unknown
// digests get no validator and fall through to the usual 404.
func (s *Server) notModified(w http.ResponseWriter, r *http.Request, digest, fingerprint string) bool {
	s.mu.RLock()
	_, known := s.traces[digest]
	s.mu.RUnlock()
	if !known {
		return false
	}
	etag := strongETag(digest, fingerprint, responseParams(r.URL.Query()))
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// etagMatch implements the If-None-Match comparison: a comma-separated
// list of entity tags, compared weakly (a W/ prefix is ignored — for a
// 304 the weak comparison is the correct one), with "*" matching any.
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// ---- response compression ---------------------------------------------

// acceptsGzip reports whether the client advertised gzip support.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, q, _ := strings.Cut(strings.TrimSpace(part), ";")
		if (enc == "gzip" || enc == "*") && strings.TrimSpace(q) != "q=0" {
			return true
		}
	}
	return false
}

// gzipResponseWriter compresses the response body lazily: the encoder and
// the Content-Encoding header appear only when a compressible status is
// written, so 304/204 responses (no body by definition) pass through
// byte-free and error paths stay inspectable. The JSON bytes fed into the
// encoder are exactly the uncompressed response — compression never
// changes response identity, only transfer encoding.
type gzipResponseWriter struct {
	http.ResponseWriter
	zw          *gzip.Writer
	wroteHeader bool
	passthrough bool
}

func (g *gzipResponseWriter) WriteHeader(code int) {
	if !g.wroteHeader {
		g.wroteHeader = true
		if code == http.StatusNoContent || code == http.StatusNotModified ||
			g.Header().Get("Content-Encoding") != "" {
			g.passthrough = true
		} else {
			g.Header().Set("Content-Encoding", "gzip")
			g.Header().Del("Content-Length")
		}
	}
	g.ResponseWriter.WriteHeader(code)
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) {
	if !g.wroteHeader {
		g.WriteHeader(http.StatusOK)
	}
	if g.passthrough {
		return g.ResponseWriter.Write(p)
	}
	if g.zw == nil {
		g.zw = gzip.NewWriter(g.ResponseWriter)
	}
	return g.zw.Write(p)
}

// Close flushes the compressed stream; a writer that never saw a body
// emits nothing.
func (g *gzipResponseWriter) Close() {
	if g.zw != nil {
		g.zw.Close()
	}
}
