// Command traceprofile prints a Projections-style aggregate profile of a
// trace: time per entry method, busy/idle per processor, message volume.
//
// Usage:
//
//	traceprofile -in run.trace
//	traceprofile -app lulesh
//	traceprofile -app jacobi -from 1000 -to 20000   # window first
package main

import (
	"flag"
	"fmt"
	"os"

	"charmtrace/internal/cli"
	"charmtrace/internal/profile"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
)

func main() {
	in := flag.String("in", "", "input trace file")
	app := flag.String("app", "", "generate this workload instead of reading a file")
	from := flag.Int64("from", -1, "window start (virtual ns; -1 = trace start)")
	to := flag.Int64("to", -1, "window end (virtual ns; -1 = trace end)")
	iters := flag.Int("iters", 0, "iteration override for -app")
	scale := flag.Int("scale", 0, "size override for -app")
	seed := flag.Int64("seed", 0, "seed override for -app")
	tele := cli.NewProfiling("traceprofile", flag.CommandLine)
	flag.Parse()
	if err := tele.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "traceprofile:", err)
		os.Exit(1)
	}

	var tr *trace.Trace
	var err error
	switch {
	case *app != "":
		tr, _, err = cli.Generate(*app, cli.Params{Iterations: *iters, Scale: *scale, Seed: *seed})
	case *in != "":
		tr, err = tracefile.ReadFile(*in)
	default:
		err = fmt.Errorf("need -in <file> or -app <workload>; workloads:\n%s", cli.Describe())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceprofile:", err)
		os.Exit(1)
	}
	if *from >= 0 || *to >= 0 {
		lo, hi := tr.Span()
		f, t := lo, hi+1
		if *from >= 0 {
			f = trace.Time(*from)
		}
		if *to >= 0 {
			t = trace.Time(*to)
		}
		tr, err = trace.Window(tr, f, t)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceprofile:", err)
			os.Exit(1)
		}
		fmt.Printf("window [%d, %d): %d blocks, %d events\n\n", f, t, len(tr.Blocks), len(tr.Events))
	}
	fmt.Print(profile.Build(tr).String())
	if err := tele.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "traceprofile:", err)
		os.Exit(1)
	}
}
