package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lassen"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func encodeToBytes(t *testing.T, s *core.Structure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.EncodeStructure(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStructureCodecRoundTrip: encoding is canonical across parallelism and
// decoding reproduces every field the serving layer reads.
func TestStructureCodecRoundTrip(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Parallelism = 1
	seq, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 4
	par, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeToBytes(t, seq)
	if !bytes.Equal(enc, encodeToBytes(t, par)) {
		t.Fatal("encoded structure differs between Parallelism 1 and 4")
	}

	dec, fp, err := core.DecodeStructure(bytes.NewReader(enc), tr)
	if err != nil {
		t.Fatal(err)
	}
	if want := opt.Fingerprint(); fp != want {
		t.Errorf("decoded fingerprint %q, want %q", fp, want)
	}
	if !reflect.DeepEqual(dec.Phases, seq.Phases) {
		t.Error("phases differ after round trip")
	}
	if !reflect.DeepEqual(dec.DAG.Adj, seq.DAG.Adj) {
		t.Error("DAG differs after round trip")
	}
	for name, pair := range map[string][2][]int32{
		"PhaseOf":   {dec.PhaseOf, seq.PhaseOf},
		"LocalStep": {dec.LocalStep, seq.LocalStep},
		"Step":      {dec.Step, seq.Step},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Errorf("%s differs after round trip", name)
		}
	}
	for c := range tr.Chares {
		if !reflect.DeepEqual(dec.EventsOfChare(trace.ChareID(c)), seq.EventsOfChare(trace.ChareID(c))) {
			t.Errorf("chare %d timeline differs after round trip", c)
		}
	}
	if err := dec.Validate(); err != nil {
		t.Errorf("decoded structure fails validation: %v", err)
	}
	// Decoding is deterministic end to end: re-encoding behaves identically
	// when driven through a second fresh extraction.
	if !bytes.Equal(enc, encodeToBytes(t, seq)) {
		t.Error("encoding is not deterministic across calls")
	}
}

// TestStructureDecodeErrors: corruption and trace mismatches are rejected,
// never silently accepted.
func TestStructureDecodeErrors(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeToBytes(t, s)

	if _, _, err := core.DecodeStructure(bytes.NewReader(enc[:len(enc)/2]), tr); err == nil {
		t.Error("truncated structure decoded without error")
	}
	if _, _, err := core.DecodeStructure(bytes.NewReader([]byte("CSTRjunk")), tr); err == nil {
		t.Error("garbage body decoded without error")
	}
	bad := append([]byte("XXXX"), enc[4:]...)
	if _, _, err := core.DecodeStructure(bytes.NewReader(bad), tr); err == nil {
		t.Error("bad magic decoded without error")
	}
	other, err := lassen.CharmTrace(lassen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Index(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.DecodeStructure(bytes.NewReader(enc), other); err == nil {
		t.Error("structure decoded against a mismatched trace")
	}
}
