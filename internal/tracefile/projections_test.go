package tracefile

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
)

// projSample serializes the scaled-down jacobi golden workload in the
// Projections-style format.
func projSample(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProjections(&buf, jacobi.MustTrace(goldenConfig())); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestProjectionsRoundTrip: a trace serialized in the Projections-style
// format and read back through ReadAuto is identical to the original — not
// just shape-equal, but record-for-record (compared via the canonical text
// serialization). This is what makes the recovered structure byte-identical
// between the two formats.
func TestProjectionsRoundTrip(t *testing.T) {
	for _, cfg := range []jacobi.Config{goldenConfig(), jacobi.DefaultConfig()} {
		orig := jacobi.MustTrace(cfg)
		var proj bytes.Buffer
		if err := WriteProjections(&proj, orig); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAuto(bytes.NewReader(proj.Bytes()))
		if err != nil {
			t.Fatalf("ReadAuto on projections stream: %v", err)
		}
		if !got.Indexed() {
			t.Fatal("round-tripped trace not indexed")
		}
		var a, b bytes.Buffer
		if err := Write(&a, orig); err != nil {
			t.Fatal(err)
		}
		if err := Write(&b, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("projections round trip changed the trace")
		}
	}
}

// TestProjectionsDigest: the Projections path composes with the streaming
// digest entry point the upload handler uses.
func TestProjectionsDigest(t *testing.T) {
	data := projSample(t)
	tr, digest, err := ReadAutoDigest(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if digest != DigestBytes(data) {
		t.Fatalf("streamed digest %s != DigestBytes %s", digest, DigestBytes(data))
	}
	if len(tr.Events) == 0 {
		t.Fatal("decoded projections trace has no events")
	}
}

// TestReadAutoMisdetection: inputs crafted to sit on the boundaries between
// the three formats must be rejected with the ErrMalformed tag, never
// panicking and never reporting a bare (server-fault) error. The charmd
// upload handler branches on this tag to answer 400.
func TestReadAutoMisdetection(t *testing.T) {
	binBody := func() []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, jacobi.MustTrace(goldenConfig())); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := []struct {
		name  string
		input []byte
	}{
		{"empty file", nil},
		{"truncated binary magic", []byte("CTR")},
		{"truncated projections magic", []byte("PROJECTIONS-REC")},
		{"projections magic no newline", []byte("PROJECTIONS-RECORD")},
		{"projections header with binary body", append([]byte("PROJECTIONS-RECORD 1\n"), binBody...)},
		{"projections header only", []byte("PROJECTIONS-RECORD 1\n")},
		{"projections bad version", []byte("PROJECTIONS-RECORD 99\n")},
		{"text header with projections body", []byte("charmtrace 1\nPROCESSORS 2\nEND_STS\n")},
		{"binary magic with text body", []byte("CTRBcharmtrace 1\npe 1\n")},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ReadAuto(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatalf("accepted %d-byte input, decoded %d events", len(tc.input), len(tr.Events))
			}
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("rejection %v does not carry ErrMalformed", err)
			}
			_, _, err2 := ReadAutoDigest(bytes.NewReader(tc.input))
			if err2 == nil || !errors.Is(err2, ErrMalformed) {
				t.Fatalf("ReadAutoDigest rejection %v does not carry ErrMalformed", err2)
			}
		})
	}
}

// TestProjectionsNegative: reader-specific structural violations, each
// rejected with ErrMalformed.
func TestProjectionsNegative(t *testing.T) {
	const sts = "PROJECTIONS-RECORD 1\nPROCESSORS 2\nTOTAL_CHARES 1\nTOTAL_EPS 1\n" +
		"ENTRY 0 -1 0 e\nCHARE 0 -1 -1 0 0 c\nEND_STS\n"
	cases := []struct {
		name  string
		input string
	}{
		{"unknown declaration", "PROJECTIONS-RECORD 1\nBOGUS 3\nEND_STS\n"},
		{"missing processors", "PROJECTIONS-RECORD 1\nEND_STS\n"},
		{"chare total mismatch", "PROJECTIONS-RECORD 1\nPROCESSORS 1\nTOTAL_CHARES 2\nEND_STS\n"},
		{"eps total mismatch", "PROJECTIONS-RECORD 1\nPROCESSORS 1\nTOTAL_EPS 2\nEND_STS\n"},
		{"pe count out of range", "PROJECTIONS-RECORD 1\nPROCESSORS 9999999\nEND_STS\n"},
		{"record outside section", sts + "2 0 0 0 0\n"},
		{"nested begin_log", sts + "BEGIN_LOG 0\nBEGIN_LOG 1\n"},
		{"duplicate log section", sts + "BEGIN_LOG 0\nEND_LOG\nBEGIN_LOG 0\nEND_LOG\n"},
		{"log pe out of range", sts + "BEGIN_LOG 5\nEND_LOG\n"},
		{"unterminated section", sts + "BEGIN_LOG 0\n"},
		{"end_log with open block", sts + "BEGIN_LOG 0\n2 0 0 0 0\nEND_LOG\n"},
		{"end_log with open idle", sts + "BEGIN_LOG 0\n14 0\nEND_LOG\n"},
		{"nested block", sts + "BEGIN_LOG 0\n2 0 0 0 0\n2 1 0 0 1\n"},
		{"end without begin", sts + "BEGIN_LOG 0\n3 5\nEND_LOG\n"},
		{"event outside block", sts + "BEGIN_LOG 0\n1 0 0 0\nEND_LOG\n"},
		{"duplicate block seq", sts + "BEGIN_LOG 0\n2 0 0 0 0\n3 1\n2 2 0 0 0\n3 3\nEND_LOG\nBEGIN_LOG 1\nEND_LOG\n"},
		{"missing block seq", sts + "BEGIN_LOG 0\n2 0 0 0 1\n3 1\nEND_LOG\nBEGIN_LOG 1\nEND_LOG\n"},
		{"duplicate event seq", sts + "BEGIN_LOG 0\n2 0 0 0 0\n1 0 0 0\n1 1 1 0\n3 2\nEND_LOG\nBEGIN_LOG 1\nEND_LOG\n"},
		{"missing event seq", sts + "BEGIN_LOG 0\n2 0 0 0 0\n1 0 0 3\n3 2\nEND_LOG\nBEGIN_LOG 1\nEND_LOG\n"},
		{"unknown record code", sts + "BEGIN_LOG 0\n99 0\nEND_LOG\n"},
		{"short record", sts + "BEGIN_LOG 0\n2 0 0\nEND_LOG\n"},
		{"block end before begin", sts + "BEGIN_LOG 0\n2 5 0 0 0\n3 1\nEND_LOG\nBEGIN_LOG 1\nEND_LOG\n"},
		{"unknown chare reference", sts + "BEGIN_LOG 0\n2 0 0 7 0\n3 1\nEND_LOG\nBEGIN_LOG 1\nEND_LOG\n"},
		{"recv never sent", sts + "BEGIN_LOG 0\n2 0 0 0 0\n10 0 42 0\n3 1\nEND_LOG\nBEGIN_LOG 1\nEND_LOG\n"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadProjections(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("accepted malformed projections input")
			}
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("rejection %v does not carry ErrMalformed", err)
			}
		})
	}
}

// TestProjectionsAcceptsReorderedSections: the per-PE log sections may
// appear in any order (real Projections runs write one log per processor
// with no global ordering) and the global sequence numbers still
// reconstruct the canonical trace.
func TestProjectionsAcceptsReorderedSections(t *testing.T) {
	// PE 1's section first: its block (seq 1) receives msg 0, which PE 0's
	// block (seq 0) sends later in the stream. Block seq 2 receives the same
	// broadcast msg and sends the never-received msg 2; an idle separates
	// PE 0's two blocks.
	const input = "PROJECTIONS-RECORD 1\nPROCESSORS 2\n" +
		"ENTRY 0 -1 0 e\nCHARE 0 -1 -1 0 0 c0\nCHARE 1 -1 -1 0 1 c1\nEND_STS\n" +
		"BEGIN_LOG 1\n2 10 0 1 1\n10 10 0 3\n3 20\nEND_LOG\n" +
		"BEGIN_LOG 0\n2 0 0 0 0\n1 1 0 0\n3 5\n14 5\n15 30\n" +
		"2 30 0 0 2\n10 30 0 1\n1 31 2 2\n3 40\nEND_LOG\n"
	tr, err := ReadProjections(strings.NewReader(input))
	if err != nil {
		t.Fatalf("reordered sections rejected: %v", err)
	}
	if len(tr.Blocks) != 3 || len(tr.Events) != 4 || len(tr.Idles) != 1 {
		t.Fatalf("decoded %d blocks, %d events, %d idles", len(tr.Blocks), len(tr.Events), len(tr.Idles))
	}
	if tr.Blocks[1].PE != 1 || tr.Blocks[0].PE != 0 || tr.Blocks[2].PE != 0 {
		t.Fatal("block PEs lost across section reordering")
	}
}

// FuzzReadProjections drives the Projections-style reader with untrusted
// bytes: it must never panic, every rejection must carry ErrMalformed, and
// every accepted input must re-serialize and re-read to the same trace.
func FuzzReadProjections(f *testing.F) {
	f.Add(string(projSample(f)))
	const sts = "PROJECTIONS-RECORD 1\nPROCESSORS 2\nTOTAL_CHARES 1\nTOTAL_EPS 1\n" +
		"ENTRY 0 -1 0 e\nCHARE 0 -1 -1 0 0 c\nEND_STS\n"
	f.Add(sts + "BEGIN_LOG 0\nEND_LOG\nBEGIN_LOG 1\nEND_LOG\n")
	f.Add(sts + "BEGIN_LOG 0\n2 0 0 0 0\n1 1 0 0\n3 5\nEND_LOG\nBEGIN_LOG 1\nEND_LOG\n")
	f.Add(sts + "BEGIN_LOG 0\n14 0\n15 9\nEND_LOG\nBEGIN_LOG 1\nEND_LOG\n")
	f.Add("PROJECTIONS-RECORD 1\n")
	f.Add("PROJECTIONS-RECORD 99\n")
	f.Add(sts)
	f.Add(sts + "BEGIN_LOG 0\n2 0 0 0 0\n")
	f.Add(sts + "BEGIN_LOG 0\n99 0\nEND_LOG\n")

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadProjections(strings.NewReader(input))
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("rejection %v does not carry ErrMalformed", err)
			}
			return
		}
		if !tr.Indexed() {
			t.Fatal("accepted trace not indexed")
		}
		var out bytes.Buffer
		if err := WriteProjections(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		tr2, err := ReadProjections(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(tr2.Events) != len(tr.Events) || len(tr2.Blocks) != len(tr.Blocks) ||
			len(tr2.Idles) != len(tr.Idles) || tr2.NumPE != tr.NumPE {
			t.Fatal("round trip changed the trace")
		}
	})
}
