// Package tracefile serializes traces to a line-oriented, versioned text
// format, the analogue of the Charm++ Projections log files the paper's
// tooling consumes. The format is self-describing and diff-friendly:
//
//	charmtrace 1
//	pe <numPE>
//	entry <id> <sdagSerial> <afterWhen> <name>
//	chare <id> <array> <index> <runtime> <home> <name>
//	block <id> <chare> <pe> <entry> <begin> <end>
//	ev <id> <kind> <time> <chare> <pe> <msg> <block>
//	idle <pe> <begin> <end>
//
// Names are the trailing field so they may contain spaces. Records may
// appear in any order except the header; Read validates and indexes the
// result.
package tracefile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"charmtrace/internal/trace"
)

// FormatVersion is the current file format version.
const FormatVersion = 1

// Write serializes a trace.
func Write(w io.Writer, t *trace.Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "charmtrace %d\n", FormatVersion)
	fmt.Fprintf(bw, "pe %d\n", t.NumPE)
	for _, e := range t.Entries {
		fmt.Fprintf(bw, "entry %d %d %t %s\n", e.ID, e.SDAGSerial, e.AfterWhen, e.Name)
	}
	for _, c := range t.Chares {
		fmt.Fprintf(bw, "chare %d %d %d %t %d %s\n", c.ID, c.Array, c.Index, c.Runtime, c.Home, c.Name)
	}
	for _, b := range t.Blocks {
		fmt.Fprintf(bw, "block %d %d %d %d %d %d\n", b.ID, b.Chare, b.PE, b.Entry, b.Begin, b.End)
	}
	for _, ev := range t.Events {
		fmt.Fprintf(bw, "ev %d %s %d %d %d %d %d\n",
			ev.ID, ev.Kind, ev.Time, ev.Chare, ev.PE, ev.Msg, ev.Block)
	}
	for _, idle := range t.Idles {
		fmt.Fprintf(bw, "idle %d %d %d\n", idle.PE, idle.Begin, idle.End)
	}
	return bw.Flush()
}

// WriteFile serializes a trace to a file.
func WriteFile(path string, t *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a trace and indexes it. Decode failures carry the
// ErrMalformed tag (see errors.go).
func Read(r io.Reader) (*trace.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, malformed(fmt.Errorf("tracefile: empty input"))
	}
	var version int
	if _, err := fmt.Sscanf(sc.Text(), "charmtrace %d", &version); err != nil {
		return nil, malformed(fmt.Errorf("tracefile: bad header %q", sc.Text()))
	}
	if version != FormatVersion {
		return nil, malformed(fmt.Errorf("tracefile: unsupported version %d", version))
	}
	t := &trace.Trace{}
	blockEvents := make(map[trace.BlockID][]trace.EventID)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		kind, rest, _ := strings.Cut(text, " ")
		var err error
		switch kind {
		case "pe":
			t.NumPE, err = strconv.Atoi(rest)
			if err == nil && (t.NumPE < 0 || t.NumPE > MaxPE) {
				err = fmt.Errorf("pe count %d out of range [0, %d]", t.NumPE, MaxPE)
			}
		case "entry":
			err = parseEntry(t, rest)
		case "chare":
			err = parseChare(t, rest)
		case "block":
			err = parseBlock(t, rest)
		case "ev":
			err = parseEvent(t, rest, blockEvents)
		case "idle":
			err = parseIdle(t, rest)
		default:
			err = fmt.Errorf("unknown record %q", kind)
		}
		if err != nil {
			return nil, malformed(fmt.Errorf("tracefile: line %d: %w", line, err))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, malformed(fmt.Errorf("tracefile: %w", err))
	}
	for id, evs := range blockEvents {
		if int(id) >= len(t.Blocks) {
			return nil, malformed(fmt.Errorf("tracefile: events reference unknown block %d", id))
		}
		t.Blocks[id].Events = evs
	}
	if err := t.Index(); err != nil {
		return nil, malformed(fmt.Errorf("tracefile: %w", err))
	}
	return t, nil
}

// ReadFile parses a trace file in either format (detected by magic).
func ReadFile(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAuto(f)
}

// WriteFileBinary serializes a trace to a file in the binary format.
func WriteFileBinary(path string, t *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fields splits rest into n leading integer-ish fields plus a trailing
// remainder (for names).
func fields(rest string, n int) ([]string, string, error) {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		f, r, ok := strings.Cut(rest, " ")
		if !ok && i < n-1 {
			return nil, "", fmt.Errorf("expected %d fields, got %d", n, i+1)
		}
		out = append(out, f)
		rest = r
	}
	return out, rest, nil
}

func parseEntry(t *trace.Trace, rest string) error {
	f, name, err := fields(rest, 3)
	if err != nil {
		return err
	}
	id, err := strconv.Atoi(f[0])
	if err != nil {
		return err
	}
	serial, err := strconv.Atoi(f[1])
	if err != nil {
		return err
	}
	afterWhen, err := strconv.ParseBool(f[2])
	if err != nil {
		return err
	}
	if id != len(t.Entries) {
		return fmt.Errorf("entry %d out of order", id)
	}
	t.Entries = append(t.Entries, trace.Entry{
		ID: trace.EntryID(id), Name: name, SDAGSerial: serial, AfterWhen: afterWhen,
	})
	return nil
}

func parseChare(t *trace.Trace, rest string) error {
	f, name, err := fields(rest, 5)
	if err != nil {
		return err
	}
	vals := make([]int64, 5)
	for i, s := range f {
		if i == 3 {
			continue
		}
		vals[i], err = strconv.ParseInt(s, 10, 64)
		if err != nil {
			return err
		}
	}
	runtime, err := strconv.ParseBool(f[3])
	if err != nil {
		return err
	}
	if int(vals[0]) != len(t.Chares) {
		return fmt.Errorf("chare %d out of order", vals[0])
	}
	t.Chares = append(t.Chares, trace.Chare{
		ID: trace.ChareID(vals[0]), Name: name, Array: trace.ArrayID(vals[1]),
		Index: int(vals[2]), Runtime: runtime, Home: trace.PE(vals[4]),
	})
	return nil
}

func parseBlock(t *trace.Trace, rest string) error {
	f, tail, err := fields(rest, 6)
	if err != nil {
		return err
	}
	if tail != "" {
		return fmt.Errorf("trailing data %q", tail)
	}
	vals := make([]int64, 6)
	for i, s := range f {
		vals[i], err = strconv.ParseInt(s, 10, 64)
		if err != nil {
			return err
		}
	}
	if int(vals[0]) != len(t.Blocks) {
		return fmt.Errorf("block %d out of order", vals[0])
	}
	t.Blocks = append(t.Blocks, trace.Block{
		ID: trace.BlockID(vals[0]), Chare: trace.ChareID(vals[1]), PE: trace.PE(vals[2]),
		Entry: trace.EntryID(vals[3]), Begin: trace.Time(vals[4]), End: trace.Time(vals[5]),
	})
	return nil
}

func parseEvent(t *trace.Trace, rest string, blockEvents map[trace.BlockID][]trace.EventID) error {
	f, tail, err := fields(rest, 7)
	if err != nil {
		return err
	}
	if tail != "" {
		return fmt.Errorf("trailing data %q", tail)
	}
	var kind trace.EventKind
	switch f[1] {
	case "send":
		kind = trace.Send
	case "recv":
		kind = trace.Recv
	default:
		return fmt.Errorf("unknown event kind %q", f[1])
	}
	ints := []int{0, 2, 3, 4, 5, 6}
	vals := make(map[int]int64, len(ints))
	for _, i := range ints {
		vals[i], err = strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			return err
		}
	}
	if int(vals[0]) != len(t.Events) {
		return fmt.Errorf("event %d out of order", vals[0])
	}
	ev := trace.Event{
		ID: trace.EventID(vals[0]), Kind: kind, Time: trace.Time(vals[2]),
		Chare: trace.ChareID(vals[3]), PE: trace.PE(vals[4]),
		Msg: trace.MsgID(vals[5]), Block: trace.BlockID(vals[6]),
	}
	t.Events = append(t.Events, ev)
	blockEvents[ev.Block] = append(blockEvents[ev.Block], ev.ID)
	return nil
}

func parseIdle(t *trace.Trace, rest string) error {
	f, tail, err := fields(rest, 3)
	if err != nil {
		return err
	}
	if tail != "" {
		return fmt.Errorf("trailing data %q", tail)
	}
	vals := make([]int64, 3)
	for i, s := range f {
		vals[i], err = strconv.ParseInt(s, 10, 64)
		if err != nil {
			return err
		}
	}
	t.Idles = append(t.Idles, trace.Idle{
		PE: trace.PE(vals[0]), Begin: trace.Time(vals[1]), End: trace.Time(vals[2]),
	})
	return nil
}
