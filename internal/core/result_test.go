package core

import (
	"testing"

	"charmtrace/internal/trace"
)

func TestResultAccessors(t *testing.T) {
	tr := barrierTrace(t, 4)
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	apps := s.AppPhases()
	if len(apps) != 2 {
		t.Fatalf("app phases = %d, want 2", len(apps))
	}
	for _, pi := range apps {
		if s.Phases[pi].Runtime {
			t.Fatal("AppPhases returned a runtime phase")
		}
	}
	for e := range tr.Events {
		eid := trace.EventID(e)
		if s.PhaseOfEvent(eid).ID != s.PhaseOf[e] {
			t.Fatal("PhaseOfEvent inconsistent with PhaseOf")
		}
		if s.StepOf(eid) != s.Step[e] {
			t.Fatal("StepOf inconsistent with Step")
		}
	}
	byLeap := s.PhasesAtLeap()
	count := 0
	for l, ps := range byLeap {
		for _, pi := range ps {
			count++
			if s.Phases[pi].Leap != int32(l) {
				t.Fatal("PhasesAtLeap grouping wrong")
			}
		}
	}
	if count != s.NumPhases() {
		t.Fatalf("PhasesAtLeap covered %d phases, want %d", count, s.NumPhases())
	}
}

func TestStepSpanOfBlock(t *testing.T) {
	tr := barrierTrace(t, 4)
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for bi := range tr.Blocks {
		blk := &tr.Blocks[bi]
		lo, hi, ok := s.StepSpanOfBlock(blk.ID)
		if !ok {
			if len(blk.Events) != 0 {
				t.Fatalf("block %d has events but no span", bi)
			}
			continue
		}
		if lo > hi {
			t.Fatalf("block %d span inverted", bi)
		}
		for _, e := range blk.Events {
			if s.Step[e] < lo || s.Step[e] > hi {
				t.Fatalf("block %d event %d step %d outside span [%d,%d]", bi, e, s.Step[e], lo, hi)
			}
		}
	}
}

func TestStepSpanOfEmptyBlock(t *testing.T) {
	b := trace.NewBuilder(1)
	e := b.AddEntry("noop")
	c := b.AddChare("c", trace.NoArray, -1, 0)
	b.BeginBlock(c, 0, e, 0)
	b.EndBlock(c, 5)
	tr := b.MustFinish()
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.StepSpanOfBlock(0); ok {
		t.Fatal("empty block reported a step span")
	}
	if s.NumPhases() != 0 {
		t.Fatalf("event-free trace produced %d phases", s.NumPhases())
	}
	if s.MaxStep() != -1 {
		t.Fatalf("MaxStep = %d on empty structure, want -1", s.MaxStep())
	}
}

func TestEmptyTraceExtracts(t *testing.T) {
	b := trace.NewBuilder(1)
	tr := b.MustFinish()
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract on empty trace: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() != 0 || len(s.ConcurrentPhases()) != 0 {
		t.Fatal("empty trace should have no phases")
	}
}
