package core

import (
	"testing"

	"charmtrace/internal/trace"
)

// ringTrace builds the Figure 3 example: n chares on n PEs, each sending
// recvResult to its ring neighbour from a serial_0 block.
func ringTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder(n)
	eSerial := b.AddSDAGEntry("serial_0", 0, false)
	eRecv := b.AddSDAGEntry("recvResult", 1, true)
	chares := make([]trace.ChareID, n)
	for i := 0; i < n; i++ {
		chares[i] = b.AddChare("arr", 0, i, trace.PE(i))
	}
	msgs := make([]trace.MsgID, n)
	for i := 0; i < n; i++ {
		msgs[i] = b.NewMsg()
		begin := trace.Time(10 * (i + 1))
		b.BeginBlock(chares[i], trace.PE(i), eSerial, begin)
		b.Send(chares[i], msgs[i], begin+1)
		b.EndBlock(chares[i], begin+5)
	}
	for i := 0; i < n; i++ {
		from := (i - 1 + n) % n
		begin := trace.Time(1000 + 10*i)
		b.BeginBlock(chares[i], trace.PE(i), eRecv, begin)
		b.Recv(chares[i], msgs[from], begin)
		b.EndBlock(chares[i], begin+5)
	}
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return tr
}

func TestRingMergesIntoSinglePhase(t *testing.T) {
	tr := ringTrace(t, 4)
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() != 1 {
		t.Fatalf("phases = %d, want 1 (Figure 3 cycle merge)", s.NumPhases())
	}
	for e := range tr.Events {
		ev := &tr.Events[e]
		want := int32(0)
		if ev.Kind == trace.Recv {
			want = 1
		}
		if s.Step[e] != want {
			t.Fatalf("event %d (%v) step = %d, want %d", e, ev.Kind, s.Step[e], want)
		}
	}
}

// barrierTrace builds two ring iterations separated by a runtime reduction:
// ring sends, contributions to a runtime reduction chare, broadcast back,
// second ring.
func barrierTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder(n)
	eWork := b.AddSDAGEntry("serial_0", 0, false)
	eRecv := b.AddSDAGEntry("recvResult", 1, true)
	eContrib := b.AddEntry("CkReductionMgr::contribute")
	eBcast := b.AddSDAGEntry("resume", 2, true)
	chares := make([]trace.ChareID, n)
	for i := 0; i < n; i++ {
		chares[i] = b.AddChare("arr", 0, i, trace.PE(i))
	}
	red := b.AddRuntimeChare("CkReductionMgr", 0)

	// Iteration 1: ring sends.
	ringMsg := make([]trace.MsgID, n)
	for i := 0; i < n; i++ {
		ringMsg[i] = b.NewMsg()
		begin := trace.Time(10 * (i + 1))
		b.BeginBlock(chares[i], trace.PE(i), eWork, begin)
		b.Send(chares[i], ringMsg[i], begin+1)
		b.EndBlock(chares[i], begin+5)
	}
	// Ring receives + contribution sends (the contribution crosses into the
	// runtime, splitting the serial block).
	contribMsg := make([]trace.MsgID, n)
	for i := 0; i < n; i++ {
		contribMsg[i] = b.NewMsg()
		from := (i - 1 + n) % n
		begin := trace.Time(1000 + 20*i)
		b.BeginBlock(chares[i], trace.PE(i), eRecv, begin)
		b.Recv(chares[i], ringMsg[from], begin)
		b.Send(chares[i], contribMsg[i], begin+2)
		b.EndBlock(chares[i], begin+5)
	}
	// Runtime chare collects contributions, then broadcasts. Per the §5
	// tracing additions, the reduction manager's local blocks are chained by
	// internal messages so the control flow is reconstructible.
	bcast := b.NewMsg()
	var internal trace.MsgID
	for i := 0; i < n; i++ {
		begin := trace.Time(2000 + 20*i)
		b.BeginBlock(red, 0, eContrib, begin)
		b.Recv(red, contribMsg[i], begin)
		if i > 0 {
			b.Recv(red, internal, begin+1)
		}
		if i < n-1 {
			internal = b.NewMsg()
			b.Send(red, internal, begin+2)
		} else {
			b.Send(red, bcast, begin+2)
		}
		b.EndBlock(red, begin+5)
	}
	// Iteration 2: broadcast receipt, then ring send again.
	ring2 := make([]trace.MsgID, n)
	for i := 0; i < n; i++ {
		ring2[i] = b.NewMsg()
		begin := trace.Time(3000 + 20*i)
		b.BeginBlock(chares[i], trace.PE(i), eBcast, begin)
		b.Recv(chares[i], bcast, begin)
		b.Send(chares[i], ring2[i], begin+2)
		b.EndBlock(chares[i], begin+5)
	}
	for i := 0; i < n; i++ {
		from := (i - 1 + n) % n
		begin := trace.Time(4000 + 20*i)
		b.BeginBlock(chares[i], trace.PE(i), eRecv, begin)
		b.Recv(chares[i], ring2[from], begin)
		b.EndBlock(chares[i], begin+5)
	}
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return tr
}

func TestRuntimeBarrierSeparatesPhases(t *testing.T) {
	tr := barrierTrace(t, 4)
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() != 3 {
		t.Fatalf("phases = %d, want 3 (app, runtime, app)", s.NumPhases())
	}
	// Order phases by offset: app, runtime, app.
	var kinds []bool
	for _, p := range phasesByOffset(s) {
		kinds = append(kinds, s.Phases[p].Runtime)
	}
	want := []bool{false, true, false}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("phase kinds by offset = %v, want %v", kinds, want)
		}
	}
}

func phasesByOffset(s *Structure) []int32 {
	out := make([]int32, len(s.Phases))
	for i := range out {
		out[i] = int32(i)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && s.Phases[out[j]].Offset < s.Phases[out[j-1]].Offset; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// fig5Trace reproduces the Figure 5 scenario: three partitions A, B, C where
// X's sources order A before B, while C has only a receive on X, so C merges
// with A at the same leap.
func fig5Trace(t *testing.T) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder(2)
	e := b.AddEntry("work")
	x := b.AddChare("X", trace.NoArray, -1, 0)
	y := b.AddChare("Y", trace.NoArray, -1, 1)

	mA, mB, mC := b.NewMsg(), b.NewMsg(), b.NewMsg()
	// A: X sends to Y at t=10.
	b.BeginBlock(x, 0, e, 10)
	b.Send(x, mA, 10)
	b.EndBlock(x, 12)
	// C: Y sends to X at t=15 (Y-side source; X side is receive-only).
	b.BeginBlock(y, 1, e, 15)
	b.Send(y, mC, 15)
	b.EndBlock(y, 17)
	// B: X sends to Y at t=20.
	b.BeginBlock(x, 0, e, 20)
	b.Send(x, mB, 20)
	b.EndBlock(x, 22)
	// Receives.
	b.BeginBlock(y, 1, e, 30)
	b.Recv(y, mA, 30)
	b.EndBlock(y, 31)
	b.BeginBlock(x, 0, e, 32)
	b.Recv(x, mC, 32)
	b.EndBlock(x, 33)
	b.BeginBlock(y, 1, e, 34)
	b.Recv(y, mB, 34)
	b.EndBlock(y, 35)
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return tr
}

func TestInferDependenciesMergesOverlappingLeap(t *testing.T) {
	tr := fig5Trace(t)
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() != 2 {
		t.Fatalf("phases = %d, want 2 (A+C merged, then B)", s.NumPhases())
	}
	// A's send (event 0) and C's send must share a phase; B's send must not.
	sendA := trace.EventID(0)
	sendC := trace.EventID(1)
	sendB := trace.EventID(2)
	if s.PhaseOf[sendA] != s.PhaseOf[sendC] {
		t.Fatal("A and C not merged despite same-leap chare overlap (Alg. 4)")
	}
	if s.PhaseOf[sendB] == s.PhaseOf[sendA] {
		t.Fatal("B merged into A+C; expected separate later phase (Alg. 3 edge)")
	}
	if s.Phases[s.PhaseOf[sendB]].Offset <= s.Phases[s.PhaseOf[sendA]].Offset {
		t.Fatal("B phase not after A+C phase")
	}
}

func TestWithoutInferenceOverlapsAreSequenced(t *testing.T) {
	tr := fig5Trace(t)
	opt := DefaultOptions()
	opt.InferDependencies = false
	s, err := Extract(tr, opt)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() != 3 {
		t.Fatalf("phases = %d, want 3 (Figure 17: split phases forced in sequence)", s.NumPhases())
	}
	// All three phases must be totally ordered by offsets (sequenced).
	offs := map[int32]bool{}
	for i := range s.Phases {
		offs[s.Phases[i].Offset] = true
	}
	if len(offs) != 3 {
		t.Fatalf("phases not sequenced; offsets %v", offs)
	}
}

// TestReorderingFollowsW: chare Z receives mLate (long dependency chain,
// high w) physically *before* mEarly (short chain, low w). Reordering must
// place the low-w block first.
func TestReorderingFollowsW(t *testing.T) {
	b := trace.NewBuilder(4)
	e := b.AddEntry("work")
	src := b.AddChare("src", trace.NoArray, -1, 0)
	mid := b.AddChare("mid", trace.NoArray, -1, 1)
	z := b.AddChare("z", trace.NoArray, -1, 2)

	mToMid, mLate, mEarly := b.NewMsg(), b.NewMsg(), b.NewMsg()
	// src: sends to mid (w=0) and directly to z (w=1 -> mEarly recv w ... ).
	b.BeginBlock(src, 0, e, 0)
	b.Send(src, mToMid, 0)
	b.Send(src, mEarly, 1)
	b.EndBlock(src, 2)
	// mid: recv (w=1), send mLate (w=2).
	b.BeginBlock(mid, 1, e, 10)
	b.Recv(mid, mToMid, 10)
	b.Send(mid, mLate, 11)
	b.EndBlock(mid, 12)
	// z: receives mLate FIRST physically (w=3), then mEarly (w=2).
	b.BeginBlock(z, 2, e, 20)
	b.Recv(z, mLate, 20)
	b.EndBlock(z, 21)
	b.BeginBlock(z, 2, e, 30)
	b.Recv(z, mEarly, 30)
	b.EndBlock(z, 31)
	tr, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}

	reordered, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := reordered.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Reorder = false
	recorded, err := Extract(tr, opt)
	if err != nil {
		t.Fatalf("Extract (no reorder): %v", err)
	}
	if err := recorded.Validate(); err != nil {
		t.Fatal(err)
	}

	recvLate := trace.EventID(4)
	recvEarly := trace.EventID(5)
	if tr.Events[recvLate].Msg != mLate || tr.Events[recvEarly].Msg != mEarly {
		t.Fatal("test setup: event IDs shifted")
	}
	zSeq := reordered.EventsOfChare(z)
	if len(zSeq) != 2 || zSeq[0] != recvEarly || zSeq[1] != recvLate {
		t.Fatalf("reordered z sequence = %v, want [early late]", zSeq)
	}
	zSeqRec := recorded.EventsOfChare(z)
	if len(zSeqRec) != 2 || zSeqRec[0] != recvLate {
		t.Fatalf("recorded z sequence = %v, want physical order [late early]", zSeqRec)
	}
	// With reordering, mEarly's receive lands at its logical step (2), and
	// mLate's at 3; without, mEarly is pushed after mLate.
	if reordered.Step[recvEarly] >= reordered.Step[recvLate] {
		t.Fatal("reordering did not place low-w receive first")
	}
	if recorded.Step[recvLate] >= recorded.Step[recvEarly] {
		t.Fatal("recorded order should keep physical order")
	}
}

func TestStatsPopulated(t *testing.T) {
	tr := barrierTrace(t, 4)
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if s.Stats.InitialPartitions == 0 {
		t.Fatal("no initial partitions recorded")
	}
	if s.Stats.MergedBy["dependency-merge"] == 0 {
		t.Fatal("dependency merge did not merge anything")
	}
	if len(s.Stats.StageTime) == 0 {
		t.Fatal("no stage timings recorded")
	}
}

func TestMaxStepAndSpans(t *testing.T) {
	tr := barrierTrace(t, 4)
	s, err := Extract(tr, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if s.MaxStep() < 2 {
		t.Fatalf("MaxStep = %d, want >= 2", s.MaxStep())
	}
	for i := range s.Phases {
		lo, hi := s.Phases[i].GlobalSpan()
		if lo > hi {
			t.Fatalf("phase %d span inverted", i)
		}
	}
}
