// Package graph provides the directed-graph algorithms the phase-finding
// pipeline is built on: strongly connected components (for cycle merges),
// topological ordering, leap computation (the maximum distance of each node
// from the sources of a DAG, Section 3.1.4 of the paper), and condensation.
//
// Graphs are adjacency lists over dense int32 node IDs. All algorithms are
// iterative so they scale to the event counts of large traces without
// risking goroutine stack growth on deep recursions.
package graph

// Graph is a directed graph over nodes 0..N-1.
type Graph struct {
	Adj [][]int32
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{Adj: make([][]int32, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Adj) }

// AddEdge adds a directed edge u -> v. Duplicate edges are permitted; the
// algorithms tolerate them.
func (g *Graph) AddEdge(u, v int32) {
	g.Adj[u] = append(g.Adj[u], v)
}

// HasEdge reports whether edge u -> v exists. Linear in out-degree.
func (g *Graph) HasEdge(u, v int32) bool {
	for _, w := range g.Adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// NumEdges returns the total number of (directed, possibly duplicated) edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

// SCC computes strongly connected components using an iterative Tarjan
// algorithm. It returns the component of each node and the component count.
// Components are numbered in reverse topological order: if component A can
// reach component B (A != B), then comp(A) > comp(B).
func (g *Graph) SCC() (comp []int32, ncomp int) {
	n := len(g.Adj)
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32   // Tarjan stack
	var next int32      // next DFS index
	var ncompi int32    // next component number
	type frame struct { // explicit DFS frame
		v  int32
		ei int // next adjacency position to explore
	}
	var dfs []frame

	for root := int32(0); root < int32(n); root++ {
		if index[root] != -1 {
			continue
		}
		dfs = append(dfs[:0], frame{v: root})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.Adj[v]) {
				w := g.Adj[v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && low[v] > index[w] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncompi
					if w == v {
						break
					}
				}
				ncompi++
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[p] > low[v] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, int(ncompi)
}

// Condense builds the condensation of g under the component assignment comp
// (ncomp components): one node per component, with deduplicated edges between
// distinct components. It also returns the size of each component.
func (g *Graph) Condense(comp []int32, ncomp int) (*Graph, []int32) {
	cg := New(ncomp)
	size := make([]int32, ncomp)
	seen := make(map[int64]struct{})
	for u := range g.Adj {
		cu := comp[u]
		size[cu]++
		for _, v := range g.Adj[u] {
			cv := comp[v]
			if cu == cv {
				continue
			}
			key := int64(cu)<<32 | int64(uint32(cv))
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			cg.AddEdge(cu, cv)
		}
	}
	return cg, size
}

// TopoSort returns a topological order of the nodes (Kahn's algorithm) and
// reports whether the graph is acyclic. If it is not, the returned order
// covers only the nodes outside cycles reachable before them.
func (g *Graph) TopoSort() (order []int32, acyclic bool) {
	n := len(g.Adj)
	indeg := make([]int32, n)
	for _, adj := range g.Adj {
		for _, v := range adj {
			indeg[v]++
		}
	}
	queue := make([]int32, 0, n)
	for v := int32(0); v < int32(n); v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order = make([]int32, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.Adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, len(order) == n
}

// Leaps computes, for every node of a DAG, its leap: the maximum distance
// from any source (in-degree-0) node. The paper (§3.1.4) defines a leap as
// the set of partitions at the same maximum distance from the beginning of
// the partition graph. Returns the per-node leap and the maximum leap.
// Panics if the graph has a cycle: leaps are only defined on DAGs.
func (g *Graph) Leaps() (leap []int32, maxLeap int32) {
	order, acyclic := g.TopoSort()
	if !acyclic {
		panic("graph: Leaps called on a cyclic graph")
	}
	leap = make([]int32, len(g.Adj))
	for _, u := range order {
		for _, v := range g.Adj[u] {
			if leap[v] < leap[u]+1 {
				leap[v] = leap[u] + 1
			}
		}
	}
	for _, l := range leap {
		if l > maxLeap {
			maxLeap = l
		}
	}
	return leap, maxLeap
}

// Reverse returns the graph with all edges reversed.
func (g *Graph) Reverse() *Graph {
	r := New(len(g.Adj))
	for u, adj := range g.Adj {
		for _, v := range adj {
			r.AddEdge(v, int32(u))
		}
	}
	return r
}

// Sources returns all nodes with in-degree 0.
func (g *Graph) Sources() []int32 {
	indeg := make([]int32, len(g.Adj))
	for _, adj := range g.Adj {
		for _, v := range adj {
			indeg[v]++
		}
	}
	var out []int32
	for v := int32(0); v < int32(len(g.Adj)); v++ {
		if indeg[v] == 0 {
			out = append(out, v)
		}
	}
	return out
}
