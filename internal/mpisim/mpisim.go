// Package mpisim simulates process-centric message-passing (MPI-style)
// programs and records their event traces: one process per processor, one
// serial block per communication call (§3.4: in the message-passing model
// each serial block contains a single send or receive event), blocking
// receives, and collectives.
//
// Each rank runs as a goroutine, but exactly one runs at a time under a
// strict scheduler hand-off, and every blocking decision depends only on
// virtual state — traces are fully deterministic for a given seed.
//
// Collectives are abstracted the way the paper's MPI traces show them
// (Figure 20a: "the allreduce is abstracted into its collective call and
// thus is shown as two steps"): each rank records a send to its ring
// successor and a receive from its ring predecessor, which the dependency
// and cycle merges contract into a single phase spanning two logical steps,
// while the simulated completion time is gated by the slowest participant
// like a real allreduce.
package mpisim

import (
	"fmt"
	"math/rand"

	"charmtrace/internal/trace"
)

// Time aliases virtual nanoseconds.
type Time = trace.Time

// Config parameterizes the simulated machine.
type Config struct {
	NumProcs int
	Seed     int64
	// Latency is the base point-to-point delivery latency.
	Latency Time
	// Jitter adds uniform [0, Jitter] to each delivery.
	Jitter Time
	// SendDur and RecvDur are the virtual durations of the send and receive
	// call blocks recorded in the trace.
	SendDur Time
	RecvDur Time
}

// DefaultConfig returns a small-cluster configuration.
func DefaultConfig(n int) Config {
	return Config{NumProcs: n, Seed: 1, Latency: 1000, Jitter: 200, SendDur: 50, RecvDur: 50}
}

// Program is the per-rank body, the analogue of main() in an MPI program.
type Program func(r *Rank)

// Op combines allreduce contributions.
type Op int

// Supported allreduce operators.
const (
	Sum Op = iota
	Max
	Min
)

func (op Op) combine(a, b float64) float64 {
	switch op {
	case Sum:
		return a + b
	case Max:
		if a > b {
			return a
		}
		return b
	case Min:
		if a < b {
			return a
		}
		return b
	default:
		panic(fmt.Sprintf("mpisim: unknown Op %d", int(op)))
	}
}

// message is one in-flight point-to-point message.
type message struct {
	msg     trace.MsgID
	from    int
	tag     int
	data    any
	arrival Time
	seq     int64 // send order for MPI non-overtaking matching
}

// collective tracks one in-progress collective operation (allreduce or
// barrier) identified by its per-rank sequence number.
type collective struct {
	joined  int
	value   float64
	haveVal bool
	op      Op
	deposit []Time        // per rank join time
	sendMsg []trace.MsgID // per rank ring message
	done    bool
	doneAt  Time
}

// engine coordinates the ranks.
type engine struct {
	cfg    Config
	rng    *rand.Rand
	tb     *trace.Builder
	ranks  []*Rank
	chares []trace.ChareID
	entry  struct {
		send, recv, coll trace.EntryID
	}
	colls   map[int]*collective // keyed by collective sequence number
	sendSeq int64
	err     error
}

// Rank is the handle a Program uses for communication.
type Rank struct {
	eng   *engine
	id    int
	clock Time
	// mailbox holds undelivered messages to this rank.
	mailbox []*message
	// scheduling state
	finished bool
	wakeAt   Time
	resume   chan struct{}
	yielded  chan struct{}
	// blocking state
	waitFrom, waitTag int
	waitAny           []int // tags accepted by RecvAny; nil when not waiting-any
	waiting           bool
	waitColl          int
	collSeq           int
	got               *message
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.eng.cfg.NumProcs }

// Now returns the rank's virtual clock.
func (r *Rank) Now() Time { return r.clock }

// Compute advances the rank's clock by d (application computation between
// communication calls; like Score-P MPI tracing, it is not recorded as a
// block).
func (r *Rank) Compute(d Time) {
	if d < 0 {
		panic("mpisim: negative compute time")
	}
	r.clock += d
}

// Send performs a buffered (non-blocking completion) send.
func (r *Rank) Send(to, tag int, data any) {
	if to < 0 || to >= r.eng.cfg.NumProcs {
		panic(fmt.Sprintf("mpisim: Send to rank %d out of range", to))
	}
	e := r.eng
	m := e.tb.NewMsg()
	e.tb.BeginBlock(e.chares[r.id], trace.PE(r.id), e.entry.send, r.clock)
	e.tb.Send(e.chares[r.id], m, r.clock)
	end := r.clock + e.cfg.SendDur
	e.tb.EndBlock(e.chares[r.id], end)
	e.sendSeq++
	e.ranks[to].mailbox = append(e.ranks[to].mailbox, &message{
		msg: m, from: r.id, tag: tag, data: data,
		arrival: r.clock + e.latency(), seq: e.sendSeq,
	})
	r.clock = end
}

// Recv blocks until the matching message (earliest send from `from` with
// `tag`, MPI non-overtaking order) is available, then records the receive.
func (r *Rank) Recv(from, tag int) any {
	r.waitFrom, r.waitTag = from, tag
	r.waiting = true
	r.yield()
	m := r.got
	r.got = nil
	e := r.eng
	start := r.clock
	at := m.arrival
	if at < start {
		at = start
	}
	e.tb.BeginBlock(e.chares[r.id], trace.PE(r.id), e.entry.recv, start)
	e.tb.Recv(e.chares[r.id], m.msg, at)
	end := at + e.cfg.RecvDur
	e.tb.EndBlock(e.chares[r.id], end)
	r.clock = end
	return m.data
}

// RecvAny blocks until a message from any source carrying one of the given
// tags is available, preferring the earliest arrival (the MPI_ANY_SOURCE
// pattern that lets physical arrival order diverge from logical order —
// the mechanism behind Figure 10's ragged recorded-order steps). It
// returns the sender, tag and payload.
func (r *Rank) RecvAny(tags ...int) (int, int, any) {
	if len(tags) == 0 {
		panic("mpisim: RecvAny needs at least one tag")
	}
	r.waitAny = append([]int(nil), tags...)
	r.waiting = true
	r.yield()
	m := r.got
	r.got = nil
	r.waitAny = nil
	e := r.eng
	start := r.clock
	at := m.arrival
	if at < start {
		at = start
	}
	e.tb.BeginBlock(e.chares[r.id], trace.PE(r.id), e.entry.recv, start)
	e.tb.Recv(e.chares[r.id], m.msg, at)
	end := at + e.cfg.RecvDur
	e.tb.EndBlock(e.chares[r.id], end)
	r.clock = end
	return m.from, m.tag, m.data
}

// Allreduce combines v across all ranks. The trace records one send (to the
// ring successor) and one receive (from the ring predecessor) per rank; the
// operation completes only after every rank has joined.
func (r *Rank) Allreduce(v float64, op Op) float64 {
	return r.collective(v, op, true)
}

// Barrier blocks until every rank has joined.
func (r *Rank) Barrier() {
	r.collective(0, Sum, false)
}

func (r *Rank) collective(v float64, op Op, reduce bool) float64 {
	e := r.eng
	seq := r.collSeq
	r.collSeq++
	c := e.colls[seq]
	if c == nil {
		c = &collective{
			op:      op,
			deposit: make([]Time, e.cfg.NumProcs),
			sendMsg: make([]trace.MsgID, e.cfg.NumProcs),
		}
		e.colls[seq] = c
	}
	// The call: a send to the ring successor.
	m := e.tb.NewMsg()
	e.tb.BeginBlock(e.chares[r.id], trace.PE(r.id), e.entry.coll, r.clock)
	e.tb.Send(e.chares[r.id], m, r.clock)
	end := r.clock + e.cfg.SendDur
	e.tb.EndBlock(e.chares[r.id], end)
	r.clock = end
	c.sendMsg[r.id] = m
	c.deposit[r.id] = r.clock
	if reduce {
		if c.haveVal {
			c.value = c.op.combine(c.value, v)
		} else {
			c.value, c.haveVal = v, true
		}
	}
	c.joined++
	if c.joined == e.cfg.NumProcs {
		c.done = true
		var max Time
		for _, d := range c.deposit {
			if d > max {
				max = d
			}
		}
		c.doneAt = max + e.cfg.Latency
	}
	// Block until the collective completes.
	r.waitColl = seq
	r.yield()
	// The completion: a receive from the ring predecessor.
	prev := (r.id - 1 + e.cfg.NumProcs) % e.cfg.NumProcs
	at := c.doneAt + e.jitter()
	if at < r.clock {
		at = r.clock
	}
	e.tb.BeginBlock(e.chares[r.id], trace.PE(r.id), e.entry.coll, r.clock)
	e.tb.Recv(e.chares[r.id], c.sendMsg[prev], at)
	end = at + e.cfg.RecvDur
	e.tb.EndBlock(e.chares[r.id], end)
	r.clock = end
	return c.value
}

// yield suspends the rank until the scheduler can satisfy its blocking
// condition.
func (r *Rank) yield() {
	r.yielded <- struct{}{}
	<-r.resume
}

func (e *engine) latency() Time {
	return e.cfg.Latency + e.jitter()
}

func (e *engine) jitter() Time {
	if e.cfg.Jitter <= 0 {
		return 0
	}
	return Time(e.rng.Int63n(int64(e.cfg.Jitter) + 1))
}

// Run executes the program on every rank and returns the trace.
func Run(cfg Config, prog Program) (*trace.Trace, error) {
	if cfg.NumProcs <= 0 {
		return nil, fmt.Errorf("mpisim: NumProcs must be positive")
	}
	e := &engine{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		tb:    trace.NewBuilder(cfg.NumProcs),
		colls: make(map[int]*collective),
	}
	e.entry.send = e.tb.AddEntry("MPI_Send")
	e.entry.recv = e.tb.AddEntry("MPI_Recv")
	e.entry.coll = e.tb.AddEntry("MPI_Allreduce")
	for i := 0; i < cfg.NumProcs; i++ {
		e.chares = append(e.chares, e.tb.AddChare(fmt.Sprintf("rank[%d]", i), 0, i, trace.PE(i)))
	}
	for i := 0; i < cfg.NumProcs; i++ {
		r := &Rank{
			eng: e, id: i, waitColl: -1,
			resume:  make(chan struct{}),
			yielded: make(chan struct{}),
		}
		e.ranks = append(e.ranks, r)
	}
	for _, r := range e.ranks {
		r := r
		go func() {
			<-r.resume
			defer func() {
				if p := recover(); p != nil {
					e.err = fmt.Errorf("mpisim: rank %d panicked: %v", r.id, p)
				}
				r.finished = true
				r.yielded <- struct{}{}
			}()
			prog(r)
		}()
	}
	// Scheduler: resume one rank at a time; a rank runs until it blocks or
	// finishes. Blocked ranks become runnable when their condition holds.
	active := cfg.NumProcs
	for active > 0 && e.err == nil {
		// Wake blocked ranks whose conditions are now satisfiable.
		progress := false
		var pick *Rank
		for _, r := range e.ranks {
			if r.finished {
				continue
			}
			ready, wake := e.ready(r)
			if !ready {
				continue
			}
			if pick == nil || wake < pick.wakeAt || (wake == pick.wakeAt && r.id < pick.id) {
				r.wakeAt = wake
				pick = r
			}
		}
		if pick != nil {
			progress = true
			e.satisfy(pick)
			pick.resume <- struct{}{}
			<-pick.yielded
			if pick.finished {
				active--
			}
		}
		if !progress {
			e.err = fmt.Errorf("mpisim: deadlock — %d ranks blocked with no matching sends", active)
		}
	}
	if e.err != nil {
		return nil, e.err
	}
	return e.tb.Finish()
}

// MustRun is Run that panics on error.
func MustRun(cfg Config, prog Program) *trace.Trace {
	t, err := Run(cfg, prog)
	if err != nil {
		panic(err)
	}
	return t
}

// ready reports whether a rank's blocking condition is satisfiable and the
// virtual time at which it would resume.
func (e *engine) ready(r *Rank) (bool, Time) {
	switch {
	case r.waiting:
		m := e.match(r)
		if m == nil {
			return false, 0
		}
		at := m.arrival
		if at < r.clock {
			at = r.clock
		}
		return true, at
	case r.waitColl >= 0:
		c := e.colls[r.waitColl]
		if c == nil || !c.done {
			return false, 0
		}
		at := c.doneAt
		if at < r.clock {
			at = r.clock
		}
		return true, at
	default:
		// Initial start (never run yet).
		return true, r.clock
	}
}

// satisfy hands the blocked rank what it was waiting for.
func (e *engine) satisfy(r *Rank) {
	switch {
	case r.waiting:
		m := e.match(r)
		e.remove(r, m)
		r.got = m
		r.waiting = false
	case r.waitColl >= 0:
		r.waitColl = -1
	}
}

// match finds the queued message satisfying the rank's receive: for a
// directed Recv, the earliest-sent message from (waitFrom, waitTag) (MPI
// non-overtaking order); for RecvAny, the earliest-arriving message with an
// accepted tag.
func (e *engine) match(r *Rank) *message {
	var best *message
	for _, m := range r.mailbox {
		if r.waitAny != nil {
			ok := false
			for _, tag := range r.waitAny {
				if m.tag == tag {
					ok = true
				}
			}
			if !ok {
				continue
			}
			if best == nil || m.arrival < best.arrival ||
				(m.arrival == best.arrival && m.seq < best.seq) {
				best = m
			}
			continue
		}
		if m.from != r.waitFrom || m.tag != r.waitTag {
			continue
		}
		if best == nil || m.seq < best.seq {
			best = m
		}
	}
	return best
}

func (e *engine) remove(r *Rank, m *message) {
	for i, x := range r.mailbox {
		if x == m {
			r.mailbox = append(r.mailbox[:i], r.mailbox[i+1:]...)
			return
		}
	}
}
