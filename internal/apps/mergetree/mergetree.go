// Package mergetree reproduces the Figure 10 workload: an early version of
// a distributed merge-tree construction (Landge et al. [18]) written in MPI
// and executed on 1,024 processes.
//
// The algorithm proceeds in phases: after building its local tree (with
// data-dependent cost), each process exchanges boundary trees around a ring
// within its group (phase 1), then with its mirror process in the partner
// group (phase 2), and the group representatives finally merge up a binary
// tree. Processes service incoming boundary messages in arrival order
// (MPI_ANY_SOURCE), so data-dependent load imbalance lets fast groups'
// phase-2 messages arrive at slow-group processes before their own phase-1
// messages — the irregular receive order that, stepped in recorded order,
// forces events far to the right, and that the paper's reordering
// recovers (Figure 10).
package mergetree

import (
	"math/rand"

	"charmtrace/internal/mpisim"
	"charmtrace/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// Procs is the process count (a power of two; the paper used 1,024).
	Procs int
	// GroupSize is the number of processes per merge group.
	GroupSize int
	// BaseCompute is the minimum local-tree construction time.
	BaseCompute mpisim.Time
	// MaxExtra is the data-dependent extra construction time; each group
	// draws uniformly from [0, MaxExtra), so whole groups run late.
	MaxExtra mpisim.Time
	// MergeCompute is the per-merge cost.
	MergeCompute mpisim.Time
	// Seed drives the imbalance draw and network jitter.
	Seed int64
	// Upsweep adds the binary-tree merge of group representatives after
	// the exchange phases.
	Upsweep bool
}

// DefaultConfig is the paper's 1,024-process configuration.
func DefaultConfig() Config {
	return Config{
		Procs: 1024, GroupSize: 16, BaseCompute: 2000, MaxExtra: 30000,
		MergeCompute: 800, Seed: 1, Upsweep: true,
	}
}

// Message tags.
const (
	tagRing  = 0 // phase 1: ring exchange within the group
	tagCross = 1 // phase 2: exchange with the mirror process in the partner group
	tagTree  = 2 // representative up-sweep rounds use tagTree + round
)

// Trace runs the merge tree and returns its event trace.
func Trace(cfg Config) (*trace.Trace, error) {
	if cfg.Procs%cfg.GroupSize != 0 || (cfg.Procs/cfg.GroupSize)%2 != 0 {
		panic("mergetree: Procs must be an even multiple of GroupSize")
	}
	groups := cfg.Procs / cfg.GroupSize
	rng := rand.New(rand.NewSource(cfg.Seed))
	extra := make([]mpisim.Time, groups)
	for i := range extra {
		extra[i] = mpisim.Time(rng.Int63n(int64(cfg.MaxExtra) + 1))
	}

	mpiCfg := mpisim.DefaultConfig(cfg.Procs)
	mpiCfg.Seed = cfg.Seed + 1
	return mpisim.Run(mpiCfg, func(r *mpisim.Rank) {
		g := r.ID() / cfg.GroupSize
		in := r.ID() % cfg.GroupSize
		// Mirror process in the partner group (groups pair 2k <-> 2k+1).
		partner := (g^1)*cfg.GroupSize + in
		ringNext := g*cfg.GroupSize + (in+1)%cfg.GroupSize

		// Local tree construction: whole groups run late together.
		r.Compute(cfg.BaseCompute + extra[g])

		// Phase 1 send: boundary tree to the ring successor.
		r.Send(ringNext, tagRing, nil)

		// Service both phases' messages in arrival order; the phase-2 send
		// is triggered by completing phase 1.
		for got := 0; got < 2; got++ {
			_, tag, _ := r.RecvAny(tagRing, tagCross)
			r.Compute(cfg.MergeCompute)
			if tag == tagRing {
				r.Send(partner, tagCross, nil)
			}
		}

		if !cfg.Upsweep || in != 0 {
			return
		}
		// Representative up-sweep over groups: a binary tree rooted at
		// group 0, one round per tree level.
		for k, bit := 0, 1; bit < groups; k, bit = k+1, bit<<1 {
			if g&bit != 0 {
				r.Send((g-bit)*cfg.GroupSize, tagTree+k, nil)
				return
			}
			r.Recv((g+bit)*cfg.GroupSize, tagTree+k)
			r.Compute(cfg.MergeCompute)
		}
	})
}

// MustTrace is Trace that panics on error.
func MustTrace(cfg Config) *trace.Trace {
	t, err := Trace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
