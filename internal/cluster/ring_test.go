package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func members(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{Name: fmt.Sprintf("n%d", i), URL: fmt.Sprintf("http://node%d:8080", i)}
	}
	return out
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	ms := members(3)
	a, err := NewRing(ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same members, listed in a different order: identical placement.
	shuffled := []Member{ms[2], ms[0], ms[1]}
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("digest-%04d", i)
		if a.Owner(key).Name != b.Owner(key).Name {
			t.Fatalf("key %s: owner differs across member orderings", key)
		}
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r, err := NewRing(members(5), 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("key %s: got %d successors, want 3", key, len(succ))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m.Name] {
				t.Fatalf("key %s: duplicate successor %s", key, m.Name)
			}
			seen[m.Name] = true
		}
		if succ[0].Name != r.Owner(key).Name {
			t.Fatalf("key %s: first successor is not the owner", key)
		}
	}
	// Clamping: asking for more members than exist returns all of them.
	if got := len(r.Successors("k", 99)); got != 5 {
		t.Fatalf("clamped successors = %d, want 5", got)
	}
}

// TestRingKeyMovement is the consistent-hashing contract: growing a
// 3-member ring to 4 moves roughly a quarter of the keyspace and nothing
// more; every moved key lands on the new member.
func TestRingKeyMovement(t *testing.T) {
	before, err := NewRing(members(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(members(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4000
	moved, movedElsewhere := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("trace-digest-%05d", i)
		a, b := before.Owner(key), after.Owner(key)
		if a.Name != b.Name {
			moved++
			if b.Name != "n3" {
				movedElsewhere++
			}
		}
	}
	frac := float64(moved) / keys
	// Expect ~1/4; accept a generous band for vnode sampling noise.
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("membership change moved %.1f%% of keys, want ~25%%", frac*100)
	}
	if movedElsewhere != 0 {
		t.Fatalf("%d keys moved between surviving members; consistent hashing must only move keys to the new member", movedElsewhere)
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(members(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i)).Name]++
	}
	for name, n := range counts {
		share := float64(n) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of the keyspace; ring is badly unbalanced", name, share*100)
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]Member{{Name: "a"}, {Name: "a"}}, 0); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := NewRing([]Member{{Name: ""}}, 0); err == nil {
		t.Fatal("unnamed member accepted")
	}
}

func TestParsePeers(t *testing.T) {
	ms, err := ParsePeers("n0=http://a:1, n1=http://b:2 ,n2=http://c:3/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0].Name != "n0" || ms[2].URL != "http://c:3" {
		t.Fatalf("parsed %+v", ms)
	}
	for _, bad := range []string{"", "justaname", "n0=notaurl", "n0=http://a:1,n0=http://b:2", "a b=http://x:1"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestLoadMembersFile(t *testing.T) {
	dir := t.TempDir()
	bare := filepath.Join(dir, "bare.json")
	os.WriteFile(bare, []byte(`[{"name":"n0","url":"http://a:1"},{"name":"n1","url":"http://b:2"}]`), 0o644)
	ms, err := LoadMembersFile(bare)
	if err != nil || len(ms) != 2 {
		t.Fatalf("bare array: %v %+v", err, ms)
	}
	wrapped := filepath.Join(dir, "wrapped.json")
	os.WriteFile(wrapped, []byte(`{"members":[{"name":"n0","url":"http://a:1"}]}`), 0o644)
	ms, err = LoadMembersFile(wrapped)
	if err != nil || len(ms) != 1 {
		t.Fatalf("wrapped object: %v %+v", err, ms)
	}
	if _, err := LoadMembersFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	badf := filepath.Join(dir, "bad.json")
	os.WriteFile(badf, []byte(`[{"name":"","url":"http://a:1"}]`), 0o644)
	if _, err := LoadMembersFile(badf); err == nil {
		t.Fatal("invalid member accepted")
	}
}
