package mpisim

import (
	"strings"
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func TestPingPong(t *testing.T) {
	var got any
	tr := MustRun(DefaultConfig(2), func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(100)
			r.Send(1, 7, "ping")
			got = r.Recv(1, 8)
		case 1:
			msg := r.Recv(0, 7)
			if msg != "ping" {
				t.Errorf("rank 1 got %v", msg)
			}
			r.Compute(50)
			r.Send(0, 8, "pong")
		}
	})
	if got != "pong" {
		t.Fatalf("rank 0 got %v, want pong", got)
	}
	if len(tr.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4 (send/recv per side)", len(tr.Blocks))
	}
	if tr.CountKind(trace.Send) != 2 || tr.CountKind(trace.Recv) != 2 {
		t.Fatal("event counts wrong")
	}
}

func TestDeterminism(t *testing.T) {
	prog := func(r *Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() - 1 + r.Size()) % r.Size()
		for i := 0; i < 3; i++ {
			r.Compute(Time(10 * (r.ID() + 1)))
			r.Send(next, i, r.ID())
			r.Recv(prev, i)
			r.Allreduce(float64(r.ID()), Max)
		}
	}
	a := MustRun(DefaultConfig(5), prog)
	b := MustRun(DefaultConfig(5), prog)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestAllreduceValueAndGating(t *testing.T) {
	vals := make([]float64, 4)
	resume := make([]Time, 4)
	tr := MustRun(DefaultConfig(4), func(r *Rank) {
		r.Compute(Time(1000 * (r.ID() + 1))) // rank 3 is slowest
		vals[r.ID()] = r.Allreduce(float64(r.ID()+1), Sum)
		resume[r.ID()] = r.Now()
	})
	for i, v := range vals {
		if v != 10 {
			t.Fatalf("rank %d allreduce = %v, want 10", i, v)
		}
	}
	// Everyone resumes after the slowest rank joined (4000ns) plus latency.
	for i, tm := range resume {
		if tm < 4000+tr.Blocks[0].Begin {
			t.Fatalf("rank %d resumed at %d before slowest join", i, tm)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := Run(DefaultConfig(2), func(r *Rank) {
		r.Recv((r.ID()+1)%2, 0) // both wait, nobody sends
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestNonOvertakingMatch(t *testing.T) {
	// Rank 0 sends two messages with the same tag; rank 1 must receive them
	// in send order even if jitter would reorder arrivals.
	cfg := DefaultConfig(2)
	cfg.Jitter = 5000
	var first, second any
	MustRun(cfg, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, "first")
			r.Send(1, 0, "second")
		case 1:
			first = r.Recv(0, 0)
			second = r.Recv(0, 0)
		}
	})
	if first != "first" || second != "second" {
		t.Fatalf("got %v then %v, want send order", first, second)
	}
}

func TestRecvTimeNotBeforeSend(t *testing.T) {
	tr := MustRun(DefaultConfig(3), func(r *Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() - 1 + r.Size()) % r.Size()
		r.Compute(Time(100 * r.ID()))
		r.Send(next, 0, nil)
		r.Recv(prev, 0)
	})
	for _, ev := range tr.Events {
		if ev.Kind != trace.Recv {
			continue
		}
		send := tr.SendOf(ev.Msg)
		if tr.Events[send].Time >= ev.Time {
			t.Fatalf("recv %d at %d not after send at %d", ev.ID, ev.Time, tr.Events[send].Time)
		}
	}
}

// TestStructureOfIterativeExchange: the full MPI-side pipeline — repeating
// [neighbour exchange + allreduce] must extract into alternating phases.
func TestStructureOfIterativeExchange(t *testing.T) {
	const iters = 3
	tr := MustRun(DefaultConfig(4), func(r *Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() - 1 + r.Size()) % r.Size()
		for i := 0; i < iters; i++ {
			r.Compute(200)
			r.Send(next, i, nil)
			r.Recv(prev, i)
			r.Allreduce(1, Sum)
		}
	})
	s, err := core.Extract(tr, core.MessagePassingOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expect 2 phases per iteration: point-to-point, then the collective.
	if s.NumPhases() != 2*iters {
		t.Fatalf("phases = %d, want %d", s.NumPhases(), 2*iters)
	}
	// Collective phases span exactly two local steps (call + completion).
	collPhases := 0
	for pi := range s.Phases {
		allColl := true
		for _, e := range s.Phases[pi].Events {
			if tr.Entries[tr.Blocks[tr.Events[e].Block].Entry].Name != "MPI_Allreduce" {
				allColl = false
			}
		}
		if allColl && len(s.Phases[pi].Events) > 0 {
			collPhases++
			if s.Phases[pi].MaxLocalStep != 1 {
				t.Fatalf("allreduce phase %d spans %d steps, want 2 (max local step 1)",
					pi, s.Phases[pi].MaxLocalStep+1)
			}
		}
	}
	if collPhases != iters {
		t.Fatalf("collective phases = %d, want %d", collPhases, iters)
	}
}
