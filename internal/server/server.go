// Package server implements charmd's HTTP/JSON API: trace upload,
// structure and step retrieval, per-chare §4 metrics, structure diffing,
// and the observability endpoints — all on top of the content-addressed
// resultcache, so a hot answer never re-runs the extraction pipeline.
//
// Design constraints, in order:
//
//   - Determinism is load-bearing: every analysis response is rendered only
//     from state the structure codec preserves, so a cache hit (memory,
//     disk, or coalesced flight) is byte-identical to the response a fresh
//     extraction would have produced, at any Parallelism.
//   - Robustness: uploads are streamed and size-limited, malformed traces
//     map to 4xx via tracefile.ErrMalformed (never 5xx), analysis requests
//     carry a per-request timeout, and Shutdown drains in-flight work.
//   - Observability: request latency histograms, an in-flight gauge, cache
//     hit/miss/evict counters and per-stage pipeline metrics all land in
//     one telemetry.Registry, exported at /debug/stats in the versioned
//     StatsExport schema.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"charmtrace/internal/core"
	"charmtrace/internal/lod"
	"charmtrace/internal/query"
	"charmtrace/internal/resultcache"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
)

// Config configures a Server.
type Config struct {
	// DataDir holds the persistent state: uploaded traces under traces/
	// (raw bytes, named by digest) and encoded results under results/.
	// Empty runs memory-only (uploads and results die with the process).
	DataDir string
	// MaxMemEntries bounds the result cache's in-memory LRU
	// (0 = resultcache.DefaultMaxMemEntries).
	MaxMemEntries int
	// MaxUploadBytes bounds one trace upload (0 = 256 MiB).
	MaxUploadBytes int64
	// RequestTimeout bounds one analysis request's wait, including any
	// extraction it joins (0 = 60s). The extraction itself always runs to
	// completion to populate the cache (see resultcache's detached flights).
	RequestTimeout time.Duration
	// Parallelism is the extraction worker count (0 = all cores). It never
	// changes response bytes, only latency.
	Parallelism int
	// MaxConcurrentExtractions bounds how many analysis requests may hold an
	// extraction slot at once (0 = GOMAXPROCS; negative = unlimited).
	// Requests beyond the bound queue for QueueWait, then are shed with 429
	// and a Retry-After hint. Memory-cache hits bypass admission entirely.
	MaxConcurrentExtractions int
	// QueueWait is how long an analysis request may wait for an extraction
	// slot before being shed (0 = 1s).
	QueueWait time.Duration
	// DetachedTimeout is the hard cap on an extraction flight that every
	// requester has abandoned (0 = resultcache.DefaultDetachedTimeout;
	// negative disables the cap).
	DetachedTimeout time.Duration
	// MaxResultBytes bounds the on-disk result store; the least-recently-
	// modified entries are garbage-collected past it (0 = unbounded).
	MaxResultBytes int64
	// Metrics is the server-wide registry (nil = a private one).
	Metrics *telemetry.Registry
	// SelfTrace attaches a span collector to every extraction and enables
	// /debug/selftrace. Spans accumulate for the life of the process, so
	// this is a debugging switch, not a production default.
	SelfTrace bool
	// SelfTraceMaxSpans caps the span collector's retention
	// (0 = telemetry.DefaultSpanLimit; negative = unbounded). Spans past
	// the cap are dropped and counted in /debug/stats' spans_dropped.
	SelfTraceMaxSpans int
	// AccessLog receives one structured line per completed request (nil
	// disables access logging). cmd/charmd wires a JSON slog logger by
	// default; see -log-format.
	AccessLog *slog.Logger
	// DebugUnsafe enables mutating debug operations — ?reset=1 on
	// /debug/stats and /debug/selftrace. Off by default: a shared server's
	// counters should not be clearable by any client that can reach it.
	DebugUnsafe bool

	// NodeName identifies this node in a cluster: stamped on every response
	// (X-Charmd-Node), on access-log lines, in /debug payloads, and as the
	// node label on /metrics. Empty runs the server unnamed (single-node).
	NodeName string
	// PeerFetch asks cluster siblings for an already-encoded result entry
	// before a cache miss falls back to extraction (cmd/charmd wires
	// cluster.Peers.FetchResult). nil disables peer cache-fill.
	PeerFetch func(ctx context.Context, traceDigest, key string) (io.ReadCloser, error)
	// TraceFetch pulls a raw trace from cluster siblings when a request
	// names a digest this node has never seen — what lets any node serve a
	// read after failover. nil disables (unknown digests 404).
	TraceFetch func(ctx context.Context, digest string) (io.ReadCloser, error)
	// MaxEntryBytes bounds one replicated result entry accepted by
	// PUT /v1/internal/results (0 = 64 MiB).
	MaxEntryBytes int64

	// extract substitutes the cache's extraction function in tests
	// (instrumented stubs that block or count). nil = core.Extract.
	extract func(tr *trace.Trace, opt core.Options) (*core.Structure, error)
}

// traceEntry is one known trace. tr is nil until loaded (traces found on
// disk at startup are decoded lazily on first use).
type traceEntry struct {
	digest string
	bytes  int64

	once sync.Once
	tr   *trace.Trace
	err  error
}

// Server is the charmd request handler. Create with New, mount anywhere
// (it implements http.Handler), and call Close on shutdown.
type Server struct {
	cfg       Config
	reg       *telemetry.Registry
	collector *telemetry.Collector
	cache     *resultcache.Cache
	engine    *query.Engine
	mux       *http.ServeMux

	mu     sync.RWMutex
	traces map[string]*traceEntry

	// sem is the extraction-admission semaphore (nil = unlimited); closing
	// flips on Shutdown, after which every request gets 503.
	sem     chan struct{}
	closing atomic.Bool

	inflight       atomic.Int64
	inflightG      *telemetry.Gauge
	requests       *telemetry.Counter
	uploads        *telemetry.Counter
	shed           *telemetry.Counter   // requests rejected with 429 (server.shed)
	queueWaitMS    *telemetry.Histogram // time spent waiting for a slot (server.queue_wait_ms)
	tracePeerFills *telemetry.Counter   // traces pulled from cluster siblings (server.trace_peer_fills)
}

// New builds a server, creating DataDir subdirectories and indexing any
// traces a previous process left there.
func New(cfg Config) (*Server, error) {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 256 << 20
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.MaxConcurrentExtractions == 0 {
		cfg.MaxConcurrentExtractions = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = time.Second
	}
	if cfg.MaxEntryBytes <= 0 {
		cfg.MaxEntryBytes = 64 << 20
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	resultDir := ""
	if cfg.DataDir != "" {
		resultDir = filepath.Join(cfg.DataDir, "results")
		if err := os.MkdirAll(filepath.Join(cfg.DataDir, "traces"), 0o755); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	engine := query.NewEngine(reg)
	cache, err := resultcache.New(resultcache.Config{
		Dir:             resultDir,
		MaxMemEntries:   cfg.MaxMemEntries,
		MaxDiskBytes:    cfg.MaxResultBytes,
		DetachedTimeout: cfg.DetachedTimeout,
		Metrics:         reg,
		Extract:         cfg.extract,
		PeerFetch:       cfg.PeerFetch,
		MaxEntryBytes:   cfg.MaxEntryBytes,
		Index: func(st *core.Structure) (any, int64) {
			idx := engine.Index(st)
			return idx, idx.Bytes()
		},
		Aux: func(st *core.Structure) (any, int64) {
			p := lod.Build(st, nil)
			return p, p.Bytes()
		},
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:            cfg,
		reg:            reg,
		cache:          cache,
		engine:         engine,
		traces:         make(map[string]*traceEntry),
		inflightG:      reg.Gauge("server.inflight"),
		requests:       reg.Counter("server.requests"),
		uploads:        reg.Counter("server.uploads"),
		shed:           reg.Counter("server.shed"),
		queueWaitMS:    reg.Histogram("server.queue_wait_ms"),
		tracePeerFills: reg.Counter("server.trace_peer_fills"),
	}
	if cfg.MaxConcurrentExtractions > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrentExtractions)
	}
	if cfg.SelfTrace {
		limit := cfg.SelfTraceMaxSpans
		if limit == 0 {
			limit = telemetry.DefaultSpanLimit
		}
		s.collector = telemetry.NewCollectorLimit(limit)
	}
	if cfg.DataDir != "" {
		if err := s.indexTraceDir(); err != nil {
			return nil, err
		}
		s.cleanSpool()
	}
	s.routes()
	return s, nil
}

// cleanSpool removes stale upload spool files a crashed predecessor left in
// the trace directory. Anything older than an hour cannot belong to an
// in-progress upload of this process.
func (s *Server) cleanSpool() {
	entries, err := os.ReadDir(s.tracesDir())
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-time.Hour)
	for _, de := range entries {
		if de.IsDir() || !strings.HasPrefix(de.Name(), ".upload-") {
			continue
		}
		info, err := de.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		os.Remove(filepath.Join(s.tracesDir(), de.Name()))
	}
}

// Registry returns the server's metrics registry (the /debug/stats source).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// tracesDir returns the on-disk trace directory, or "".
func (s *Server) tracesDir() string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, "traces")
}

// indexTraceDir registers every persisted trace without decoding it;
// decoding happens lazily on first use.
func (s *Server) indexTraceDir() error {
	entries, err := os.ReadDir(s.tracesDir())
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		digest, ok := strings.CutSuffix(name, ".trace")
		if !ok || de.IsDir() || len(digest) != 64 {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		s.traces[digest] = &traceEntry{digest: digest, bytes: info.Size()}
	}
	return nil
}

// lookupTrace resolves a digest to a decoded, indexed trace, loading it
// from disk on first use after a restart, and — in a cluster — pulling it
// from ring siblings when this node never saw the upload (failover reads,
// replicas that missed the fan-out). ctx bounds only the peer fetch.
func (s *Server) lookupTrace(ctx context.Context, digest string) (*trace.Trace, error) {
	s.mu.RLock()
	te := s.traces[digest]
	s.mu.RUnlock()
	if te == nil {
		if s.cfg.TraceFetch == nil {
			return nil, errUnknownTrace
		}
		return s.traceFromPeer(ctx, digest)
	}
	te.once.Do(func() {
		if te.tr != nil {
			return
		}
		f, err := os.Open(filepath.Join(s.tracesDir(), digest+".trace"))
		if err != nil {
			te.err = err
			return
		}
		defer f.Close()
		tr, got, err := tracefile.ReadAutoDigest(f)
		if err != nil {
			te.err = err
			return
		}
		if got != digest {
			te.err = fmt.Errorf("server: trace file %s.trace digests to %s", digest, got)
			return
		}
		te.tr = tr
	})
	if te.err != nil {
		return nil, fmt.Errorf("server: loading trace %s: %w", digest, te.err)
	}
	return te.tr, nil
}

// registerTrace records a freshly uploaded, already-decoded trace.
func (s *Server) registerTrace(digest string, tr *trace.Trace, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.traces[digest]; ok {
		// Re-upload of known content: keep the existing entry, make sure
		// the decoded form is available without a disk read.
		old.once.Do(func() { old.tr = tr })
		return
	}
	te := &traceEntry{digest: digest, bytes: size}
	te.once.Do(func() { te.tr = tr })
	s.traces[digest] = te
}

// errUnknownTrace maps to 404.
var errUnknownTrace = errors.New("unknown trace digest")

// routes mounts every endpoint behind the instrument middleware.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		s.mux.Handle(pattern, s.instrument(route, h))
	}
	handle("POST /v1/traces", "upload", s.handleUpload)
	handle("GET /v1/traces", "list", s.handleList)
	handle("GET /v1/traces/{digest}", "trace", s.handleTrace)
	handle("GET /v1/traces/{digest}/structure", "structure", s.handleStructure)
	handle("GET /v1/traces/{digest}/steps", "steps", s.handleSteps)
	handle("GET /v1/traces/{digest}/metrics", "metrics", s.handleMetrics)
	handle("POST /v1/traces/{digest}/query", "query", s.handleQuery)
	handle("GET /v1/traces/{digest}/lod", "lod", s.handleLodGet)
	handle("POST /v1/traces/{digest}/lod", "lod_post", s.handleLodPost)
	handle("GET /v1/structdiff", "structdiff", s.handleStructDiff)
	handle("GET /metrics", "prom", s.handleProm)
	handle("GET /debug/stats", "stats", s.handleStats)
	handle("GET /debug/selftrace", "selftrace", s.handleSelfTrace)
	handle("GET /debug/flights", "flights", s.handleFlights)
	handle("GET /v1/internal/results/{key}", "internal_result", s.handleInternalResultGet)
	handle("PUT /v1/internal/results/{key}", "internal_result_put", s.handleInternalResultPut)
	handle("GET /v1/internal/traces/{digest}", "internal_trace", s.handleInternalTraceGet)
	handle("GET /healthz", "healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	handle("GET /readyz", "readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness differs from liveness exactly during drain: a closing
		// node answers /healthz but tells the gateway's prober to route
		// around it here.
		w.Header().Set("Content-Type", "application/json")
		if s.closing.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"draining"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
}

// ServeHTTP dispatches to the mounted routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// instrument wraps a handler with the serving telemetry (request counter,
// in-flight gauge, per-route latency histogram, status-class counters),
// request correlation (X-Request-ID honored or minted, echoed, and carried
// by context into extraction spans and access-log lines), the per-request
// timeout context, and transparent response compression. Every response
// carries Vary: Accept-Encoding because its transfer encoding depends on
// that request header; the body bytes fed into the compressor are identical
// to the uncompressed response.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	latency := s.reg.Histogram("server.latency_ms." + route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Vary", "Accept-Encoding")
		reqID := requestIDFor(r)
		w.Header().Set("X-Request-ID", reqID)
		if s.cfg.NodeName != "" {
			w.Header().Set("X-Charmd-Node", s.cfg.NodeName)
		}
		rctx := telemetry.WithRequestID(r.Context(), reqID)
		rctx, outcome := resultcache.WithOutcomeRecorder(rctx)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK, rec: outcome}
		start := time.Now()
		if s.closing.Load() {
			sw.Header().Set("Content-Type", "application/json")
			sw.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(sw).Encode(map[string]string{"error": "server shutting down"})
			s.logAccess(r, route, reqID, outcome, sw, time.Since(start))
			return
		}
		s.requests.Add(1)
		s.inflightG.Set(float64(s.inflight.Add(1)))
		defer func() { s.inflightG.Set(float64(s.inflight.Add(-1))) }()

		ctx, cancel := context.WithTimeout(rctx, s.cfg.RequestTimeout)
		defer cancel()
		var rw http.ResponseWriter = sw
		var gz *gzipResponseWriter
		if acceptsGzip(r) {
			gz = &gzipResponseWriter{ResponseWriter: sw}
			rw = gz
		}
		r = r.WithContext(ctx)
		h(rw, r)
		if gz != nil {
			gz.Close()
		}
		elapsed := time.Since(start)
		latency.Observe(float64(elapsed.Nanoseconds()) / 1e6)
		s.reg.Counter(fmt.Sprintf("server.status.%dxx", sw.code/100)).Add(1)
		s.logAccess(r, route, reqID, outcome, sw, elapsed)
	})
}

// statusWriter records the response code and body byte count for the
// status-class counters and the access log. With compression enabled it
// sits under the gzip writer, so bytes counts what went on the wire. At
// the first WriteHeader it stamps the cluster headers from the request's
// outcome recorder — which cache layer answered (X-Charmd-Cache) and the
// result's content address (X-Charmd-Result-Key) — because neither is
// known until the handler has resolved the request, yet both must precede
// the body: the gateway reads them to count peer fills and to trigger
// replication.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
	rec   *resultcache.OutcomeRecorder
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
		if o := w.rec.Outcome(); o != "" {
			w.Header().Set("X-Charmd-Cache", o)
		}
		if k := w.rec.Key(); k != "" {
			w.Header().Set("X-Charmd-Result-Key", k)
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// overloadError reports a request shed by admission control, carrying the
// Retry-After hint httpError renders alongside the 429.
type overloadError struct{ retryAfter time.Duration }

func (e *overloadError) Error() string {
	return fmt.Sprintf("server overloaded: no extraction slot within %v", e.retryAfter)
}

// httpError writes a JSON error body with the status mapped from err:
// unknown digests are 404, malformed traces, bad parameters and invalid
// query specs 400 (specs with the offending field named), oversized
// uploads 413, shed requests 429 (with Retry-After), timeouts 504, a
// draining server 503, everything else 500.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	body := map[string]string{"error": err.Error()}
	var maxBytes *http.MaxBytesError
	var overload *overloadError
	var specErr *query.Error
	var lodErr *lod.Error
	switch {
	case errors.As(err, &maxBytes):
		code = http.StatusRequestEntityTooLarge
	case errors.As(err, &overload):
		code = http.StatusTooManyRequests
		secs := int(overload.retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.As(err, &specErr):
		code = http.StatusBadRequest
		body["field"] = specErr.Field
	case errors.As(err, &lodErr):
		code = http.StatusBadRequest
		body["field"] = lodErr.Field
	case errors.Is(err, errUnknownTrace):
		code = http.StatusNotFound
	case errors.Is(err, tracefile.ErrMalformed), errors.Is(err, errBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, resultcache.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// errBadRequest tags parameter-validation failures.
var errBadRequest = errors.New("bad request")

// writeJSON renders a response deterministically: encoding/json is stable
// for struct-typed values, which is what keeps cache-hit responses
// byte-identical to fresh ones.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeJSONCompact is writeJSON without indentation — for the LOD
// responses, whose whole point is minimal bytes on the wire.
func writeJSONCompact(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// extractOptions resolves the analysis options for a request: a preset
// (charm or mp) plus optional boolean overrides, with the server's
// configured Parallelism and telemetry sinks attached. The semantic subset
// is what the cache keys on.
func (s *Server) extractOptions(r *http.Request) (core.Options, error) {
	q := r.URL.Query()
	opt := core.DefaultOptions()
	switch preset := q.Get("preset"); preset {
	case "", "charm":
	case "mp":
		opt = core.MessagePassingOptions()
	default:
		return opt, fmt.Errorf("%w: unknown preset %q (want charm or mp)", errBadRequest, preset)
	}
	for name, dst := range map[string]*bool{
		"reorder":   &opt.Reorder,
		"infer":     &opt.InferDependencies,
		"nsmerge":   &opt.NeighborSerialMerge,
		"procorder": &opt.ProcessOrderDeps,
	} {
		v := q.Get(name)
		if v == "" {
			continue
		}
		switch v {
		case "true", "1":
			*dst = true
		case "false", "0":
			*dst = false
		default:
			return opt, fmt.Errorf("%w: parameter %s=%q is not a boolean", errBadRequest, name, v)
		}
	}
	opt.Parallelism = s.cfg.Parallelism
	opt.Metrics = s.reg
	if s.collector != nil {
		opt.Telemetry = s.collector
	}
	return opt, nil
}

// acquireSlot admits an analysis request to the extraction path: it waits
// up to QueueWait (bounded also by the request context) for a semaphore
// slot, records the wait in server.queue_wait_ms, and sheds with a 429-
// mapped overloadError when the queue deadline passes first. The returned
// release func is non-nil exactly when a slot was taken.
func (s *Server) acquireSlot(ctx context.Context) (release func(), err error) {
	if s.sem == nil {
		return func() {}, nil
	}
	start := time.Now()
	defer func() {
		s.queueWaitMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	}()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
	}
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-timer.C:
		s.shed.Add(1)
		return nil, &overloadError{retryAfter: s.cfg.QueueWait}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// structureFor resolves (digest, request options) through the cache. A
// memory hit is served without touching admission control; everything else
// (disk read, coalesced wait, extraction) holds an extraction slot, and a
// caller whose context dies releases the slot immediately — the detached
// flight keeps running without it.
func (s *Server) structureFor(ctx context.Context, digest string, opt core.Options) (*core.Structure, error) {
	tr, err := s.lookupTrace(ctx, digest)
	if err != nil {
		return nil, err
	}
	resultcache.RecordKey(ctx, resultcache.KeyID(digest, opt.Fingerprint()))
	if st, ok := s.cache.Lookup(digest, opt); ok {
		resultcache.RecordOutcome(ctx, resultcache.OutcomeMem)
		return st, nil
	}
	release, err := s.acquireSlot(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return s.cache.Get(ctx, digest, tr, opt)
}

// Shutdown drains the server: new requests are refused with 503, in-flight
// handlers get until ctx expires to finish, and then the result cache is
// closed — outstanding detached flights drain too (or are cancelled
// cooperatively past the deadline). Safe to call once; the HTTP listener
// drain itself is the owner http.Server's job (see cmd/charmd).
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return s.cache.Close(ctx)
		case <-tick.C:
		}
	}
	return s.cache.Close(ctx)
}
