package core

import (
	"strings"
	"testing"

	"charmtrace/internal/telemetry"
)

func TestFingerprintCanonical(t *testing.T) {
	if got, want := DefaultOptions().Fingerprint(), MessagePassingOptions().Fingerprint(); got == want {
		t.Fatalf("default and message-passing options share fingerprint %q", got)
	}
	// Stable across calls and insensitive to execution-only knobs.
	base := DefaultOptions()
	fp := base.Fingerprint()
	variant := base
	variant.Parallelism = 7
	variant.Parallel = true
	variant.Telemetry = telemetry.NewCollector()
	variant.Metrics = telemetry.NewRegistry()
	if got := variant.Fingerprint(); got != fp {
		t.Errorf("execution knobs changed fingerprint: %q vs %q", got, fp)
	}
	// Every semantic flag must move the fingerprint.
	for name, mutate := range map[string]func(*Options){
		"Reorder":             func(o *Options) { o.Reorder = !o.Reorder },
		"InferDependencies":   func(o *Options) { o.InferDependencies = !o.InferDependencies },
		"NeighborSerialMerge": func(o *Options) { o.NeighborSerialMerge = !o.NeighborSerialMerge },
		"MessagePassing":      func(o *Options) { o.MessagePassing = !o.MessagePassing },
		"ProcessOrderDeps":    func(o *Options) { o.ProcessOrderDeps = !o.ProcessOrderDeps },
		"ChareRank":           func(o *Options) { o.ChareRank = []int32{2, 0, 1} },
	} {
		o := base
		mutate(&o)
		if got := o.Fingerprint(); got == fp {
			t.Errorf("flipping %s did not change the fingerprint %q", name, fp)
		}
	}
	// Distinct ranks hash distinctly; empty (non-nil) differs from nil.
	a, b, c := base, base, base
	a.ChareRank = []int32{0, 1, 2}
	b.ChareRank = []int32{0, 2, 1}
	c.ChareRank = []int32{}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different ranks share a fingerprint")
	}
	if c.Fingerprint() == fp {
		t.Error("empty rank slice fingerprints like nil")
	}
	if !strings.HasPrefix(fp, "v1 ") {
		t.Errorf("fingerprint %q is not versioned", fp)
	}
}
