package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/cluster"
	"charmtrace/internal/resultcache"
	"charmtrace/internal/server"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/tracefile"
)

// This file is the multi-node end-to-end harness: real charmd servers (one
// per httptest listener, each with its own data dir), a real gateway in
// front, all in one process so -race watches every cross-node interaction.

type testNode struct {
	name string
	srv  *server.Server
	ts   *httptest.Server
}

type testCluster struct {
	gw    *cluster.Gateway
	gwTS  *httptest.Server
	nodes []*testNode
}

// counterOf reads one counter from a registry snapshot.
func counterOf(reg *telemetry.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

// startCluster boots n charmd nodes wired into one peer group and a
// gateway fronting them. Each node's peer client binds late — the member
// URLs exist only after every listener is up — via the closure indirection
// cmd/charmd uses for the same reason.
func startCluster(t *testing.T, n int, gwCfg cluster.GatewayConfig) *testCluster {
	t.Helper()
	nodes := make([]*testNode, n)
	peers := make([]*cluster.Peers, n)
	for i := 0; i < n; i++ {
		i := i
		name := fmt.Sprintf("n%d", i)
		srv, err := server.New(server.Config{
			DataDir:  t.TempDir(),
			NodeName: name,
			PeerFetch: func(ctx context.Context, traceDigest, key string) (io.ReadCloser, error) {
				return peers[i].FetchResult(ctx, traceDigest, key)
			},
			TraceFetch: func(ctx context.Context, digest string) (io.ReadCloser, error) {
				return peers[i].FetchTrace(ctx, digest)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		nodes[i] = &testNode{name: name, srv: srv, ts: ts}
	}
	members := make([]cluster.Member, n)
	for i, nd := range nodes {
		members[i] = cluster.Member{Name: nd.name, URL: nd.ts.URL}
	}
	for i, nd := range nodes {
		pc, err := cluster.NewPeers(cluster.PeersConfig{
			Self:    nd.name,
			Members: members,
			Metrics: nd.srv.Registry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = pc
	}
	gwCfg.Members = members
	gw, err := cluster.NewGateway(gwCfg)
	if err != nil {
		t.Fatal(err)
	}
	gwTS := httptest.NewServer(gw)
	t.Cleanup(func() {
		gwTS.Close()
		gw.Close()
	})
	return &testCluster{gw: gw, gwTS: gwTS, nodes: nodes}
}

func (tc *testCluster) node(name string) *testNode {
	for _, nd := range tc.nodes {
		if nd.name == name {
			return nd
		}
	}
	return nil
}

// encodedJacobi serializes the jacobi proxy workload as an upload body.
func encodedJacobi(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := jacobi.DefaultConfig()
	if seed != 0 {
		cfg.Seed = seed
	}
	var buf bytes.Buffer
	if err := tracefile.WriteBinary(&buf, jacobi.MustTrace(cfg)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func gwUpload(t *testing.T, tc *testCluster, body []byte) string {
	t.Helper()
	resp, err := http.Post(tc.gwTS.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("gateway upload status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if want := tracefile.DigestBytes(body); out.Digest != want {
		t.Fatalf("gateway upload digest %s, want %s", out.Digest, want)
	}
	return out.Digest
}

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestClusterUploadPlacementAndShares checks the routing contract end to
// end: an upload lands on the digest's R ring successors (and nowhere
// else), and /cluster reports a sane share split.
func TestClusterUploadPlacementAndShares(t *testing.T) {
	tc := startCluster(t, 3, cluster.GatewayConfig{Replication: 2, HedgeMax: -1})
	body := encodedJacobi(t, 0)
	digest := gwUpload(t, tc, body)
	tc.gw.Quiesce() // wait out the async trace fan-out

	ring, err := cluster.NewRing(membersOf(tc), 0)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[string]bool{}
	for _, m := range ring.Successors(digest, 2) {
		owners[m.Name] = true
	}
	for _, nd := range tc.nodes {
		resp, data := getURL(t, nd.ts.URL+"/v1/internal/traces/"+digest)
		if owners[nd.name] {
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("owner %s does not hold the trace: %d", nd.name, resp.StatusCode)
			}
			if !bytes.Equal(data, body) {
				t.Fatalf("owner %s holds %d bytes, want the %d uploaded", nd.name, len(data), len(body))
			}
		} else if resp.StatusCode == http.StatusOK {
			t.Fatalf("non-owner %s holds the trace; placement leaked", nd.name)
		}
	}

	_, data := getURL(t, tc.gwTS.URL+"/cluster")
	var cl struct {
		Replication int `json:"replication"`
		Members     []struct {
			Name       string  `json:"name"`
			Alive      bool    `json:"alive"`
			OwnedShare float64 `json:"owned_share"`
		} `json:"members"`
	}
	if err := json.Unmarshal(data, &cl); err != nil {
		t.Fatal(err)
	}
	if cl.Replication != 2 || len(cl.Members) != 3 {
		t.Fatalf("/cluster = %s", data)
	}
	total := 0.0
	for _, m := range cl.Members {
		if !m.Alive {
			t.Fatalf("member %s reported dead in a healthy cluster", m.Name)
		}
		if m.OwnedShare < 0.10 || m.OwnedShare > 0.60 {
			t.Fatalf("member %s owns %.2f of the keyspace; ring badly unbalanced", m.Name, m.OwnedShare)
		}
		total += m.OwnedShare
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("shares sum to %.3f, want 1", total)
	}
}

func membersOf(tc *testCluster) []cluster.Member {
	ms := make([]cluster.Member, len(tc.nodes))
	for i, nd := range tc.nodes {
		ms[i] = cluster.Member{Name: nd.name, URL: nd.ts.URL}
	}
	return ms
}

// TestClusterExactlyOnceExtraction is the headline guarantee: a burst of
// identical requests through the gateway runs the extraction pipeline once
// across the whole cluster — routing pins the digest to one owner, and that
// node's request coalescing merges the burst.
func TestClusterExactlyOnceExtraction(t *testing.T) {
	tc := startCluster(t, 3, cluster.GatewayConfig{Replication: 2, HedgeMax: -1})
	digest := gwUpload(t, tc, encodedJacobi(t, 0))

	const K = 12
	bodies := make([][]byte, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(tc.gwTS.URL + "/v1/traces/" + digest + "/structure")
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			bodies[i] = data
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < K; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d returned different bytes than request 0", i)
		}
	}
	var misses int64
	for _, nd := range tc.nodes {
		misses += counterOf(nd.srv.Registry(), "cache.misses")
	}
	if misses != 1 {
		t.Fatalf("cluster-wide extractions = %d, want exactly 1 for %d identical requests", misses, K)
	}

	// The one miss triggered async replication of the encoded entry to the
	// other owner; after Quiesce both owners serve identical entry bytes.
	tc.gw.Quiesce()
	if pushes := counterOf(tc.gw.Registry(), "gateway.replica_pushes"); pushes < 1 {
		t.Fatalf("replica_pushes = %d, want >= 1", pushes)
	}
	ring, _ := cluster.NewRing(membersOf(tc), 0)
	owners := ring.Successors(digest, 2)
	key := resultcache.KeyID(digest, extractFingerprint(t, bodies[0]))
	var entries [][]byte
	for _, m := range owners {
		resp, data := getURL(t, tc.node(m.Name).ts.URL+"/v1/internal/results/"+key)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("owner %s lacks entry %s: %d", m.Name, key, resp.StatusCode)
		}
		entries = append(entries, data)
	}
	if !bytes.Equal(entries[0], entries[1]) {
		t.Fatal("replicated entry differs from the original")
	}
}

// extractFingerprint pulls the options fingerprint out of a /structure
// response, so tests can compute the result key the way the server does.
func extractFingerprint(t *testing.T, structureJSON []byte) string {
	t.Helper()
	var s struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(structureJSON, &s); err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint == "" {
		t.Fatal("structure response has no fingerprint")
	}
	return s.Fingerprint
}

// TestClusterPeerCacheFill exercises the node-to-node fill path without a
// gateway in the loop: a node that never saw the trace or the extraction
// answers from its siblings' disks — trace bytes via the internal trace
// endpoint, the encoded result via the internal results endpoint — and the
// response is byte-identical to the extracting node's.
func TestClusterPeerCacheFill(t *testing.T) {
	tc := startCluster(t, 3, cluster.GatewayConfig{Replication: 2, HedgeMax: -1})
	body := encodedJacobi(t, 0)
	digest := tracefile.DigestBytes(body)

	// Upload directly to the digest's primary owner only — no gateway
	// fan-out, so every other node starts blind.
	ring, _ := cluster.NewRing(membersOf(tc), 0)
	owner := tc.node(ring.Owner(digest).Name)
	resp, err := http.Post(owner.ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload to %s: %d", owner.name, resp.StatusCode)
	}

	// First read on the owner: a genuine extraction.
	ownerResp, ownerBody := getURL(t, owner.ts.URL+"/v1/traces/"+digest+"/structure")
	if ownerResp.StatusCode != http.StatusOK {
		t.Fatalf("owner structure: %d: %s", ownerResp.StatusCode, ownerBody)
	}
	if got := ownerResp.Header.Get("X-Charmd-Cache"); got != "miss" {
		t.Fatalf("owner X-Charmd-Cache = %q, want miss", got)
	}

	// Same read on a node that has neither the trace nor the result: it
	// must pull the trace from a sibling, fill the result from the owner's
	// disk, and answer identically — without running an extraction.
	var other *testNode
	for _, nd := range tc.nodes {
		if nd.name != owner.name {
			other = nd
			break
		}
	}
	otherResp, otherBody := getURL(t, other.ts.URL+"/v1/traces/"+digest+"/structure")
	if otherResp.StatusCode != http.StatusOK {
		t.Fatalf("peer structure: %d: %s", otherResp.StatusCode, otherBody)
	}
	if !bytes.Equal(otherBody, ownerBody) {
		t.Fatalf("peer-filled response differs from the owner's:\n%s\nvs\n%s", otherBody, ownerBody)
	}
	if got := otherResp.Header.Get("X-Charmd-Cache"); got != resultcache.OutcomePeer {
		t.Fatalf("peer X-Charmd-Cache = %q, want %q", got, resultcache.OutcomePeer)
	}
	reg := other.srv.Registry()
	if n := counterOf(reg, "cache.misses"); n != 0 {
		t.Fatalf("peer ran %d extractions, want 0", n)
	}
	if n := counterOf(reg, "cache.peer_hits"); n != 1 {
		t.Fatalf("peer cache.peer_hits = %d, want 1", n)
	}
	if n := counterOf(reg, "server.trace_peer_fills"); n != 1 {
		t.Fatalf("peer server.trace_peer_fills = %d, want 1", n)
	}
}

// TestClusterNodeKillZero5xx kills a replica-set member mid-workload and
// requires every read through the gateway to keep succeeding: transport
// failures fail over to the surviving replica, which holds the trace from
// upload fan-out.
func TestClusterNodeKillZero5xx(t *testing.T) {
	tc := startCluster(t, 3, cluster.GatewayConfig{
		Replication:   2,
		HedgeMax:      -1,
		ProbeInterval: time.Hour, // liveness driven by request errors alone
	})
	digest := gwUpload(t, tc, encodedJacobi(t, 0))
	tc.gw.Quiesce()

	// Warm the structure once so the kill exercises serving, not extraction.
	resp, data := getURL(t, tc.gwTS.URL+"/v1/traces/"+digest+"/structure")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm read: %d: %s", resp.StatusCode, data)
	}
	tc.gw.Quiesce() // entry replicated to the surviving owner before the kill

	ring, _ := cluster.NewRing(membersOf(tc), 0)
	victim := tc.node(ring.Owner(digest).Name)
	victim.ts.Close()

	for i := 0; i < 10; i++ {
		resp, body := getURL(t, tc.gwTS.URL+"/v1/traces/"+digest+"/structure")
		if resp.StatusCode >= 500 {
			t.Fatalf("read %d after killing %s: status %d: %s", i, victim.name, resp.StatusCode, body)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d after killing %s: status %d", i, victim.name, resp.StatusCode)
		}
		if !bytes.Equal(body, data) {
			t.Fatalf("read %d: failover response differs from pre-kill bytes", i)
		}
	}
	if fo := counterOf(tc.gw.Registry(), "gateway.failovers"); fo < 1 {
		t.Fatalf("gateway.failovers = %d, want >= 1", fo)
	}
	if fives := tc.gw.Registry().Snapshot().Counters["gateway.status.5xx"]; fives != 0 {
		t.Fatalf("gateway served %d 5xx responses, want 0", fives)
	}
}

// TestClusterHedgeCancellation pins the hedging contract against stub
// members: when the primary stalls, the hedge fires after the configured
// delay, the fast replica's answer wins, and the loser's request context
// is cancelled rather than left running.
func TestClusterHedgeCancellation(t *testing.T) {
	const digest = "feedfeedfeedfeedfeedfeedfeedfeedfeedfeedfeedfeedfeedfeedfeedfeed"

	slowCancelled := make(chan struct{}, 1)
	answer := func(w http.ResponseWriter, name string) {
		w.Header().Set("X-Charmd-Node", name)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"digest":%q,"node":%q}`, digest, name)
	}
	var slowName string
	var mu sync.Mutex
	mkNode := func(name string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				fmt.Fprint(w, `{"status":"ready"}`)
				return
			}
			mu.Lock()
			slow := name == slowName
			mu.Unlock()
			if slow {
				select {
				case <-r.Context().Done():
					slowCancelled <- struct{}{}
				case <-time.After(30 * time.Second):
				}
				return
			}
			answer(w, name)
		}))
	}
	tsA, tsB := mkNode("a"), mkNode("b")
	defer tsA.Close()
	defer tsB.Close()
	members := []cluster.Member{{Name: "a", URL: tsA.URL}, {Name: "b", URL: tsB.URL}}

	ring, err := cluster.NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	slowName = ring.Owner(digest).Name
	mu.Unlock()

	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Members:       members,
		Replication:   2,
		HedgeAfter:    20 * time.Millisecond,
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwTS := httptest.NewServer(gw)
	defer gwTS.Close()

	resp, body := getURL(t, gwTS.URL+"/v1/traces/"+digest+"/structure")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged read: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Charmd-Node"); got == slowName || got == "" {
		t.Fatalf("winner = %q, want the fast replica", got)
	}
	select {
	case <-slowCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("slow primary's request context was never cancelled")
	}
	reg := gw.Registry()
	if n := counterOf(reg, "gateway.hedge_fired"); n != 1 {
		t.Fatalf("gateway.hedge_fired = %d, want 1", n)
	}
	if n := counterOf(reg, "gateway.hedge_won"); n != 1 {
		t.Fatalf("gateway.hedge_won = %d, want 1", n)
	}
	if n := counterOf(reg, "gateway.hedge_cancelled"); n != 1 {
		t.Fatalf("gateway.hedge_cancelled = %d, want 1", n)
	}
}

// TestClusterRequestIDAndPassthrough covers the correlation satellite: a
// caller-chosen X-Request-ID survives gateway → node, and the node
// observability surface is reachable through /nodes/{name}/.
func TestClusterRequestIDAndPassthrough(t *testing.T) {
	tc := startCluster(t, 3, cluster.GatewayConfig{Replication: 2, HedgeMax: -1})
	digest := gwUpload(t, tc, encodedJacobi(t, 0))

	req, _ := http.NewRequest(http.MethodGet, tc.gwTS.URL+"/v1/traces/"+digest+"/structure", nil)
	req.Header.Set("X-Request-ID", "e2e-corr-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "e2e-corr-42" {
		t.Fatalf("X-Request-ID = %q, want the caller's id echoed through the chain", got)
	}
	if got := resp.Header.Get("X-Charmd-Node"); tc.node(got) == nil {
		t.Fatalf("X-Charmd-Node = %q, not a member", got)
	}

	// Node passthrough: stats carry the node's name label.
	resp2, data := getURL(t, tc.gwTS.URL+"/nodes/n1/debug/stats")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/nodes/n1/debug/stats: %d: %s", resp2.StatusCode, data)
	}
	var stats struct {
		Labels map[string]string `json:"labels"`
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Labels["node"] != "n1" {
		t.Fatalf("stats labels = %v, want node=n1", stats.Labels)
	}
	// Writes do not pass through.
	resp3, _ := getURL(t, tc.gwTS.URL+"/nodes/n1/v1/traces")
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("API passthrough allowed: %d", resp3.StatusCode)
	}
}

// TestClusterGatewayMetrics validates the gateway's /metrics surface with
// the repo's own strict parser: the cluster counters exist as labeled
// Prometheus families after a representative workload.
func TestClusterGatewayMetrics(t *testing.T) {
	tc := startCluster(t, 3, cluster.GatewayConfig{Replication: 2, HedgeMax: -1})
	digest := gwUpload(t, tc, encodedJacobi(t, 0))
	for i := 0; i < 2; i++ {
		resp, data := getURL(t, tc.gwTS.URL+"/v1/traces/"+digest+"/structure")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: %d: %s", i, resp.StatusCode, data)
		}
	}
	tc.gw.Quiesce()

	resp, data := getURL(t, tc.gwTS.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	fams, err := telemetry.ParsePromText(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("gateway /metrics does not parse: %v", err)
	}
	want := []string{
		"gateway_requests_total",
		"gateway_uploads_total",
		"gateway_route_upload_total",
		"gateway_route_structure_total",
		"gateway_peer_fill_hits_total",
		"gateway_peer_fill_misses_total",
		"gateway_replica_pushes_total",
		"gateway_trace_replicas_total",
		"gateway_hedge_fired_total",
		"gateway_hedge_won_total",
		"gateway_hedge_cancelled_total",
		"gateway_proxy_ms",
	}
	for _, name := range want {
		fam, ok := fams[name]
		if !ok {
			var have []string
			for n := range fams {
				if strings.HasPrefix(n, "gateway_") {
					have = append(have, n)
				}
			}
			t.Fatalf("family %s missing from gateway /metrics; have %v", name, have)
		}
		if fam.Labels["node"] != "gateway" {
			t.Fatalf("family %s labels = %v, want node=gateway", name, fam.Labels)
		}
	}
	if v := fams["gateway_replica_pushes_total"].Samples[0].Value; v < 1 {
		t.Fatalf("gateway_replica_pushes_total = %v, want >= 1", v)
	}
	if v := fams["gateway_peer_fill_misses_total"].Samples[0].Value; v != 1 {
		t.Fatalf("gateway_peer_fill_misses_total = %v, want 1 (one extraction happened)", v)
	}
}
