GO ?= go

.PHONY: build test verify lint fuzz bench bench-check bench-overhead fmt serve cluster

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 recipe (see README "Testing" and
# .claude/skills/verify/SKILL.md), plus a -race leg over the concurrent
# serving packages (result cache singleflight, HTTP handlers, query
# engine, the cluster gateway + multi-node E2E harness) and over the
# conformance harness + adversarial generators (parallel extraction
# sweeps at three worker counts).
verify: build test
	$(GO) vet ./...
	$(GO) test -race ./internal/core ./internal/partition ./internal/tracefile
	$(GO) test -race ./internal/resultcache ./internal/server ./internal/query ./internal/cluster ./internal/lod
	$(GO) test -race ./internal/conformance ./internal/apps/lbmigrate ./internal/apps/faultsim ./internal/apps/ordstress

# lint runs staticcheck when it is installed (CI installs it; offline dev
# boxes may not have it — the gate keeps `make lint` usable everywhere).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# fuzz is the CI smoke leg: short coverage-guided runs over the
# untrusted-input decoders — format sniffing (ReadAuto) and the Projections
# log reader. The checked-in corpora under internal/tracefile/testdata/fuzz
# replay on every plain `go test`. Each run targets one fuzz function:
# `go test -fuzz` requires the pattern to match exactly one target.
fuzz:
	$(GO) test -fuzz=FuzzReadAuto -fuzztime=20s -fuzzminimizetime=1s ./internal/tracefile
	$(GO) test -fuzz=FuzzReadProjections -fuzztime=20s -fuzzminimizetime=1s ./internal/tracefile

# bench regenerates BENCH_extract.json, the machine-readable perf
# trajectory (merge-tree extraction + ExtractBatch at parallelism 1/2/4).
bench:
	$(GO) run ./cmd/experiments -bench-json BENCH_extract.json

# bench-check is the perf-regression guard: a fresh bench run compared
# against the committed baseline by cmd/benchdiff, failing on >30% wall
# or >20% alloc growth in the enforced rows (Fig10MergeTree, Serve). CI
# runs it as an advisory leg; run it locally before re-recording the
# baseline. BENCH_fresh.json is scratch output (gitignored).
bench-check:
	$(GO) run ./cmd/experiments -bench-json BENCH_fresh.json
	$(GO) run ./cmd/benchdiff -new BENCH_fresh.json

# bench-overhead checks the telemetry off/nop/recording cost (DESIGN.md §3b).
bench-overhead:
	$(GO) test -bench 'BenchmarkTelemetryOverhead' -run '^$$' -benchtime 30x .

# serve starts the charmd analysis service on :8080 with its cache in
# .charmd-cache/ (gitignored). See README "Serving".
serve:
	$(GO) run ./cmd/charmd -addr :8080 -data-dir .charmd-cache

# cluster starts a 3-node charmd fleet (:8081-:8083) plus the
# consistent-hash gateway on :8090, all on this machine — the quickest way
# to try sharded routing, peer cache fill and hedging. Ctrl-C stops all
# four. See README "Clustering".
cluster: build
	@trap 'kill 0' INT TERM; \
	$(GO) run ./cmd/charmd -addr :8081 -data-dir .charmd-n0 -node-name n0 -peers 'n0=http://127.0.0.1:8081,n1=http://127.0.0.1:8082,n2=http://127.0.0.1:8083' & \
	$(GO) run ./cmd/charmd -addr :8082 -data-dir .charmd-n1 -node-name n1 -peers 'n0=http://127.0.0.1:8081,n1=http://127.0.0.1:8082,n2=http://127.0.0.1:8083' & \
	$(GO) run ./cmd/charmd -addr :8083 -data-dir .charmd-n2 -node-name n2 -peers 'n0=http://127.0.0.1:8081,n1=http://127.0.0.1:8082,n2=http://127.0.0.1:8083' & \
	$(GO) run ./cmd/charm-gateway -addr :8090 -peers 'n0=http://127.0.0.1:8081,n1=http://127.0.0.1:8082,n2=http://127.0.0.1:8083' & \
	wait

fmt:
	gofmt -l -w .
