package ordstress

import (
	"strings"
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
	"charmtrace/internal/viz"
)

func TestPathologiesArePresent(t *testing.T) {
	tr := MustTrace(DefaultConfig())
	if !tr.Indexed() {
		t.Fatal("trace not indexed")
	}
	// Equal-time ties: with zero jitter and equal latencies, distinct events
	// must collide in virtual time.
	byTime := map[trace.Time]int{}
	ties := 0
	for _, ev := range tr.Events {
		byTime[ev.Time]++
		if byTime[ev.Time] == 2 {
			ties++
		}
	}
	if ties == 0 {
		t.Error("no equal-time event ties — the stresser lost its worst case")
	}
	// Invisible control flow: ctl blocks record no receive yet emit sends.
	ctlSources := 0
	for _, b := range tr.Blocks {
		if !strings.HasSuffix(tr.Entries[b.Entry].Name, "::ctl") {
			continue
		}
		hasRecv := false
		for _, e := range b.Events {
			if tr.Events[e].Kind == trace.Recv {
				hasRecv = true
			}
		}
		if !hasRecv {
			ctlSources++
		}
	}
	if ctlSources == 0 {
		t.Error("no untraced-source ctl blocks recorded")
	}
	// Self-dependencies: some message's send and receive share a chare.
	selfMsgs := 0
	for _, ev := range tr.Events {
		if ev.Kind != trace.Recv {
			continue
		}
		if s := tr.SendOf(ev.Msg); s != trace.NoEvent && tr.Events[s].Chare == ev.Chare {
			selfMsgs++
		}
	}
	if selfMsgs == 0 {
		t.Error("no self-sends recorded")
	}
}

func TestExtractionIsParallelismInvariant(t *testing.T) {
	tr := MustTrace(DefaultConfig())
	seq := core.DefaultOptions()
	seq.Parallelism = 1
	par := core.DefaultOptions()
	par.Parallelism = 4
	s1, err := core.Extract(tr, seq)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := core.Extract(tr, par)
	if err != nil {
		t.Fatal(err)
	}
	if viz.Logical(s1) != viz.Logical(s4) {
		t.Fatal("adversarial interleavings broke parallelism invariance")
	}
}
