package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"charmtrace/internal/partition"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// tel carries the telemetry context through the pipeline: the span sink,
// the metrics registry backing Stats, the cancellation context, and the
// span of the currently running stage (the parent for worker and round
// spans). cur is only written between parallel sections, so worker
// goroutines read it race-free.
type tel struct {
	rec  telemetry.Recorder
	reg  *telemetry.Registry
	ctx  context.Context // nil = never cancelled
	prog *Progress       // nil = no live progress reporting
	cur  telemetry.SpanID
}

// cancelled reports whether the extraction's context has expired. Safe to
// call from worker goroutines (ctx.Err is concurrency-safe).
func (t *tel) cancelled() bool {
	return t.ctx != nil && t.ctx.Err() != nil
}

// Extract recovers the logical structure of a trace (Section 3). The trace
// must be indexed (Builder.Finish and tracefile.Read both index); Extract
// indexes it if not.
func Extract(tr *trace.Trace, opt Options) (*Structure, error) {
	if !tr.Indexed() {
		if err := tr.Index(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	workers := opt.Workers()
	rec := opt.Telemetry
	if rec == nil {
		rec = telemetry.Disabled
	}
	t := &tel{rec: rec, reg: telemetry.NewRegistry(), ctx: opt.Context, prog: opt.Progress}
	rootAttrs := []telemetry.Attr{
		telemetry.Int("events", int64(len(tr.Events))),
		telemetry.Int("workers", int64(workers)),
	}
	if rec.Enabled() {
		// The request id (threaded through the context by charmd's access-log
		// middleware via the flight's detached context) joins the extraction's
		// root span to the HTTP request that caused it.
		if id := telemetry.RequestID(opt.Context); id != "" {
			rootAttrs = append(rootAttrs, telemetry.String("request_id", id))
		}
	}
	root := rec.StartSpan("extract", telemetry.NoSpan, rootAttrs...)
	t.reg.Gauge("trace.events").Set(float64(len(tr.Events)))
	t.reg.Gauge("trace.blocks").Set(float64(len(tr.Blocks)))
	t.reg.Gauge("trace.chares").Set(float64(len(tr.Chares)))
	t.reg.Gauge("pipeline.workers").Set(float64(workers))

	// stage wraps one pipeline stage: a span under the extract root, wall
	// time and merge count into the registry (the single bookkeeping path —
	// Stats is materialized from the registry below), and, when a recorder
	// is attached, runtime.MemStats deltas (gated because ReadMemStats
	// stops the world).
	memOn := rec.Enabled()
	var m0, m1 runtime.MemStats
	// cancelErr latches the first cancellation observed at a stage
	// boundary; once set, the remaining stages are skipped and Extract
	// returns the error instead of a (partially built) structure.
	var cancelErr error
	stage := func(name string, f func() int) {
		if cancelErr != nil {
			return
		}
		if err := opt.ctxErr(); err != nil {
			cancelErr = err
			return
		}
		if t.prog != nil {
			t.prog.SetStage(name)
		}
		t.cur = rec.StartSpan(name, root)
		if memOn {
			runtime.ReadMemStats(&m0)
		}
		start := time.Now()
		merged := f()
		d := time.Since(start)
		t.reg.Counter(telemetry.StageNSPrefix + name).Add(d.Nanoseconds())
		t.reg.Counter(telemetry.StageMergedPrefix + name).Add(int64(merged))
		if memOn {
			runtime.ReadMemStats(&m1)
			t.reg.Counter(telemetry.StageAllocPrefix + name).Add(int64(m1.TotalAlloc - m0.TotalAlloc))
			t.reg.Counter(telemetry.StageMallocPrefix + name).Add(int64(m1.Mallocs - m0.Mallocs))
			t.reg.Gauge(telemetry.StageHeapPrefix + name).Set(float64(m1.HeapAlloc))
		}
		rec.EndSpan(t.cur)
		t.cur = root
	}

	var a *atoms
	stage("initial", func() int {
		a = buildAtoms(tr, opt)
		t.reg.Gauge("pipeline.initial_partitions").Set(float64(a.set.NumAtoms()))
		return 0
	})
	stage("dependency-merge", func() int { return dependencyMerge(tr, a, workers, t) })
	stage("cycle-merge", func() int { return a.set.CycleMerge() })
	stage("repair-merge", func() int { return repairMerge(tr, a, opt) })
	stage("cycle-merge", func() int { return a.set.CycleMerge() })
	if opt.InferDependencies {
		stage("infer-dependencies", func() int { return inferDependencies(tr, a, workers, t) })
		stage("cycle-merge", func() int { return a.set.CycleMerge() })
		stage("leap-merge", func() int { return leapMerge(a) })
		stage("cycle-merge", func() int { return a.set.CycleMerge() })
	}
	stage("enforce-orderability", func() int {
		merged, rounds := enforceOrderability(tr, a, opt, workers, t)
		t.reg.Gauge("pipeline.enforce_rounds").Set(float64(rounds))
		return merged
	})
	stage("enforce-chare-paths", func() int { return enforceCharePaths(tr, a) })

	var s *Structure
	stage("step-assignment", func() int {
		s = assignSteps(tr, opt, a, t)
		return 0
	})
	rec.EndSpan(root)
	if cancelErr == nil {
		// Catch a cancellation that landed inside the final stage: its
		// structure is partially stepped and must not escape.
		cancelErr = opt.ctxErr()
	}
	if cancelErr != nil {
		if opt.Metrics != nil {
			t.reg.MergeInto(opt.Metrics)
		}
		return nil, fmt.Errorf("core: extract cancelled: %w", cancelErr)
	}
	s.Stats = statsFromRegistry(t.reg, workers)
	if opt.Metrics != nil {
		t.reg.MergeInto(opt.Metrics)
	}
	return s, nil
}

// dependencyMerge is Algorithm 1: partitions containing the matching
// endpoints of a remote method invocation belong in the same phase.
//
// The event sweep is embarrassingly parallel: workers scan contiguous event
// ranges of a frozen partition set (read-only Root lookups, no path
// compression) and collect candidate pairs per span. The spans are then
// scheduled in span order — which concatenates to exactly the sequential
// sweep order — and applied on the calling goroutine, so the union sequence
// (and hence the union-find tree and merge count) is identical for every
// worker count.
func dependencyMerge(tr *trace.Trace, a *atoms, workers int, t *tel) int {
	type pair struct{ send, recv partition.ID }
	spans := splitRange(len(tr.Events), workers)
	found := make([][]pair, len(spans))
	t.reg.Counter("pipeline.events_scanned").Add(int64(len(tr.Events)))
	t.parallelSpans("dependency-sweep", len(tr.Events), workers, func(idx, lo, hi int) {
		var local []pair
		for i := lo; i < hi; i++ {
			ev := &tr.Events[i]
			if ev.Kind != trace.Send || ev.Msg == trace.NoMsg {
				continue
			}
			send := a.of[ev.ID]
			for _, r := range tr.RecvsOf(ev.Msg) {
				if recv := a.of[r]; a.set.Root(send) != a.set.Root(recv) {
					local = append(local, pair{send, recv})
				}
			}
		}
		found[idx] = local
	})
	plan := a.set.NewMergePlan()
	for _, local := range found {
		for _, p := range local {
			plan.Schedule(p.send, p.recv)
		}
	}
	return plan.Apply()
}

// repairMerge is Algorithm 2: restore merges that the application/runtime
// split of serial blocks prevented. For consecutive events within one serial
// block whose partitions now differ but agree on runtime-ness, merge. With
// opt.NeighborSerialMerge it additionally applies the §3.1.3 refinement for
// neighbouring SDAG serials.
func repairMerge(tr *trace.Trace, a *atoms, opt Options) int {
	merged := 0
	for bi := range tr.Blocks {
		blk := &tr.Blocks[bi]
		for i := 0; i+1 < len(blk.Events); i++ {
			p := a.of[blk.Events[i]]
			q := a.of[blk.Events[i+1]]
			if a.set.SamePartition(p, q) {
				continue
			}
			if a.set.IsRuntime(p) == a.set.IsRuntime(q) {
				a.set.Union(p, q)
				merged++
			}
		}
	}
	if opt.NeighborSerialMerge {
		merged += neighborSerialMerge(tr, a)
	}
	return merged
}

// neighborSerialMerge: if a set of chares participates in SDAG serial n
// within a single partition and those chares immediately participate in
// serial n+1 spread over several partitions, the control likely flowed from
// one multi-chare group to the next, so the latter partitions are merged.
func neighborSerialMerge(tr *trace.Trace, a *atoms) int {
	// next[p] collects, per partition p holding serial-n blocks, the
	// partitions of the immediately following serial-(n+1) blocks.
	next := make(map[partition.ID][]partition.ID)
	for c := range tr.Chares {
		blocks := tr.BlocksOfChare(trace.ChareID(c))
		for i := 0; i+1 < len(blocks); i++ {
			ce := &tr.Entries[tr.Blocks[blocks[i]].Entry]
			ne := &tr.Entries[tr.Blocks[blocks[i+1]].Entry]
			if ce.SDAGSerial < 0 || ne.SDAGSerial != ce.SDAGSerial+1 {
				continue
			}
			la, ok1 := a.lastOf[blocks[i]]
			fb, ok2 := a.firstOf[blocks[i+1]]
			if !ok1 || !ok2 {
				continue
			}
			p := a.set.Find(la)
			next[p] = append(next[p], fb)
		}
	}
	merged := 0
	for _, followers := range next {
		if len(followers) < 2 {
			continue
		}
		first := followers[0]
		for _, f := range followers[1:] {
			if a.set.IsRuntime(first) != a.set.IsRuntime(f) {
				continue
			}
			if !a.set.SamePartition(first, f) {
				a.set.Union(first, f)
				merged++
			}
		}
	}
	return merged
}

// partInfo caches per-partition ordering information used by the §3.1.4
// heuristics: the earliest event per chare, the earliest source (send) per
// chare and per processor, and overall minima.
type partInfo struct {
	// initByChare maps chare -> earliest event of the partition on it.
	initByChare map[trace.ChareID]trace.EventID
	// srcTimeByPE maps PE -> earliest partition-starting source time.
	srcTimeByPE map[trace.PE]trace.Time
	minTime     trace.Time
}

// buildPartInfo scans every partition independently; with workers > 1 the
// scans run on the pool. Each iteration only reads the frozen view and
// writes its own infos slot, so the result is identical for any worker
// count.
func buildPartInfo(tr *trace.Trace, a *atoms, v *partition.View, workers int, t *tel) []partInfo {
	infos := make([]partInfo, len(v.Parts))
	t.parallelFor("part-scan", len(v.Parts), workers, func(pi int) {
		info := partInfo{
			initByChare: make(map[trace.ChareID]trace.EventID),
			srcTimeByPE: make(map[trace.PE]trace.Time),
			minTime:     1<<62 - 1,
		}
		for _, atomID := range v.Parts[pi].Atoms {
			for _, e := range a.set.Atom(atomID).Events {
				ev := &tr.Events[e]
				if cur, ok := info.initByChare[ev.Chare]; !ok || less(tr, e, cur) {
					info.initByChare[ev.Chare] = e
				}
				if ev.Time < info.minTime {
					info.minTime = ev.Time
				}
			}
		}
		// Partition-starting sources: per-chare initial events that are sends.
		for _, e := range info.initByChare {
			ev := &tr.Events[e]
			if ev.Kind != trace.Send {
				continue
			}
			if cur, ok := info.srcTimeByPE[ev.PE]; !ok || ev.Time < cur {
				info.srcTimeByPE[ev.PE] = ev.Time
			}
		}
		infos[pi] = info
	})
	return infos
}

// less orders events by (time, ID) for deterministic minima.
func less(tr *trace.Trace, a, b trace.EventID) bool {
	ta, tb := tr.Events[a].Time, tr.Events[b].Time
	if ta != tb {
		return ta < tb
	}
	return a < b
}

// inferDependencies is Algorithm 3: the initial events in each partition are
// sources; the physical-time order between partition-starting sources on the
// same chare is inferred as a happened-before relationship between their
// partitions (Figure 5).
func inferDependencies(tr *trace.Trace, a *atoms, workers int, t *tel) int {
	v := a.set.View()
	infos := buildPartInfo(tr, a, v, workers, t)
	type src struct {
		e    trace.EventID
		part int32
	}
	byChare := make(map[trace.ChareID][]src)
	for pi := range infos {
		for c, e := range infos[pi].initByChare {
			if tr.Events[e].Kind != trace.Send {
				continue
			}
			byChare[c] = append(byChare[c], src{e, int32(pi)})
		}
	}
	added := 0
	for _, list := range byChare {
		sort.Slice(list, func(i, j int) bool { return less(tr, list[i].e, list[j].e) })
		for i := 0; i+1 < len(list); i++ {
			p, q := list[i], list[i+1]
			if p.part == q.part {
				continue
			}
			a.set.AddEdge(a.of[p.e], a.of[q.e])
			added++
		}
	}
	_ = added
	return 0 // Alg. 3 adds edges; partitions are merged by the cycle merge that follows.
}

// leapMerge is Algorithm 4: partitions in the same leap that overlap in
// chares cannot be ordered, so they are assumed to be the same phase and
// merged. Application and runtime partitions are only ever merged by cycle
// merges, so the merge is restricted to same-kind pairs; cross-kind overlap
// is ordered later by enforceOrderability.
func leapMerge(a *atoms) int {
	v := a.set.View()
	if !v.Acyclic() {
		a.set.CycleMerge()
		v = a.set.View()
	}
	byLeap := v.PartsAtLeap()
	plan := a.set.NewMergePlan()
	for _, parts := range byLeap {
		// seen maps (chare, kind) -> representative atom of the first
		// partition at this leap holding that chare.
		seen := make(map[int64]partition.ID)
		for _, pi := range parts {
			p := &v.Parts[pi]
			kind := int64(0)
			if p.Runtime {
				kind = 1
			}
			rep := p.Atoms[0]
			for _, c := range p.Chares {
				key := int64(c)<<1 | kind
				if other, ok := seen[key]; ok {
					plan.Schedule(other, rep)
				} else {
					seen[key] = rep
				}
			}
		}
	}
	return plan.Apply()
}

// enforceOrderability iterates until no two partitions at the same leap
// share a chare (DAG property 1). Same-kind overlaps are merged when
// dependency inference is enabled; application/runtime overlaps — and all
// overlaps when inference is disabled (the Figure 17 ablation) — are instead
// forced into sequence by the physical time of their initial sources.
// Each round's latency lands in the pipeline.enforce_round_ns histogram,
// and under a recorder each round gets its own span, so slow convergence
// (the §3.1.4 cost the scaling figures attribute) is directly visible.
func enforceOrderability(tr *trace.Trace, a *atoms, opt Options, workers int, t *tel) (merged, rounds int) {
	const maxRounds = 64
	hist := t.reg.Histogram("pipeline.enforce_round_ns")
	stage := t.cur
	for rounds = 0; rounds < maxRounds; rounds++ {
		// Convergence can take many rounds on adversarial traces; a
		// cancelled extraction must not ride the loop to the end. The
		// partial merge state is discarded by Extract's boundary check.
		if t.cancelled() {
			return merged, rounds
		}
		start := time.Now()
		if t.rec.Enabled() {
			t.cur = t.rec.StartSpan("enforce-round", stage, telemetry.Int("round", int64(rounds)))
		}
		m, done := enforceRound(tr, a, opt, workers, t)
		merged += m
		if t.rec.Enabled() {
			t.rec.EndSpan(t.cur)
			t.cur = stage
		}
		hist.Observe(float64(time.Since(start).Nanoseconds()))
		if done {
			return merged, rounds + 1
		}
	}
	// Safety valve: merge any remaining overlaps so the pipeline terminates.
	a.set.CycleMerge()
	return merged, maxRounds
}

// enforceRound runs one orderability round: detect same-leap chare
// overlaps, merge or sequence them. done reports that no overlaps remain.
func enforceRound(tr *trace.Trace, a *atoms, opt Options, workers int, t *tel) (merged int, done bool) {
	a.set.CycleMerge()
	v := a.set.View()
	infos := buildPartInfo(tr, a, v, workers, t)
	byLeap := v.PartsAtLeap()

	// Overlap detection is independent per leap (each leap has its own
	// chare-occupancy map), so leaps are scanned on the pool; per-leap
	// results concatenated in leap order reproduce the sequential scan.
	type pair struct{ p, q int32 }
	perLeap := make([][]pair, len(byLeap))
	t.parallelFor("overlap-scan", len(byLeap), workers, func(li int) {
		parts := byLeap[li]
		seen := make(map[trace.ChareID]int32)
		dedup := make(map[int64]struct{})
		var found []pair
		for _, pi := range parts {
			for _, c := range v.Parts[pi].Chares {
				if other, ok := seen[c]; ok && other != pi {
					lo, hi := other, pi
					if lo > hi {
						lo, hi = hi, lo
					}
					key := int64(lo)<<32 | int64(uint32(hi))
					if _, dup := dedup[key]; !dup {
						dedup[key] = struct{}{}
						found = append(found, pair{lo, hi})
					}
				} else {
					seen[c] = pi
				}
			}
		}
		perLeap[li] = found
	})
	var overlaps []pair
	for _, found := range perLeap {
		overlaps = append(overlaps, found...)
	}
	if len(overlaps) == 0 {
		return 0, true
	}
	plan := a.set.NewMergePlan()
	for _, ov := range overlaps {
		p, q := &v.Parts[ov.p], &v.Parts[ov.q]
		if p.Runtime == q.Runtime && opt.InferDependencies {
			plan.Schedule(p.Atoms[0], q.Atoms[0])
			continue
		}
		first, second := ov.p, ov.q
		if partLater(tr, v, infos, ov.p, ov.q) {
			first, second = ov.q, ov.p
		}
		a.set.AddEdge(v.Parts[first].Atoms[0], v.Parts[second].Atoms[0])
	}
	return plan.Apply(), false
}

// partLater reports whether partition p starts later than q, comparing the
// physical time of initial sources on shared chares, falling back to shared
// processors, then to the overall earliest event (§3.1.4, "Enforcing DAG
// Properties").
func partLater(tr *trace.Trace, v *partition.View, infos []partInfo, p, q int32) bool {
	ip, iq := &infos[p], &infos[q]
	// Shared chares: compare earliest initial events there.
	bestP, bestQ := trace.Time(1<<62-1), trace.Time(1<<62-1)
	for c, e := range ip.initByChare {
		if e2, ok := iq.initByChare[c]; ok {
			if tr.Events[e].Time < bestP {
				bestP = tr.Events[e].Time
			}
			if tr.Events[e2].Time < bestQ {
				bestQ = tr.Events[e2].Time
			}
		}
	}
	if bestP != bestQ {
		return bestP > bestQ
	}
	// Shared processors: compare earliest initial-source times.
	bestP, bestQ = 1<<62-1, 1<<62-1
	for pe, tp := range ip.srcTimeByPE {
		if tq, ok := iq.srcTimeByPE[pe]; ok {
			if tp < bestP {
				bestP = tp
			}
			if tq < bestQ {
				bestQ = tq
			}
		}
	}
	if bestP != bestQ {
		return bestP > bestQ
	}
	if ip.minTime != iq.minTime {
		return ip.minTime > iq.minTime
	}
	return p > q
}

// enforceCharePaths is Algorithm 5 (DAG property 2): walking leaps from the
// last to the first, every partition whose direct successors do not span all
// of its chares gains happened-before edges to the partitions of the next
// leap containing the missing chares (Figure 6).
func enforceCharePaths(tr *trace.Trace, a *atoms) int {
	v := a.set.View()
	if !v.Acyclic() {
		a.set.CycleMerge()
		v = a.set.View()
	}
	byLeap := v.PartsAtLeap()
	lastMap := make(map[trace.ChareID]int32) // chare -> nearest later leap containing it
	added := 0
	for k := int32(len(byLeap)) - 1; k >= 0; k-- {
		for _, pi := range byLeap[k] {
			p := &v.Parts[pi]
			// Chares covered by direct successors.
			covered := make(map[trace.ChareID]bool)
			for _, succ := range v.G.Adj[pi] {
				for _, c := range v.Parts[succ].Chares {
					covered[c] = true
				}
			}
			// missing chares grouped by the next leap that contains them.
			missingByLeap := make(map[int32][]trace.ChareID)
			for _, c := range p.Chares {
				if covered[c] {
					continue
				}
				if l, ok := lastMap[c]; ok {
					missingByLeap[l] = append(missingByLeap[l], c)
				}
				// No later leap contains c: property 2 already satisfied.
			}
			var leaps []int32
			for l := range missingByLeap {
				leaps = append(leaps, l)
			}
			sort.Slice(leaps, func(i, j int) bool { return leaps[i] < leaps[j] })
			for _, l := range leaps {
				want := make(map[trace.ChareID]bool)
				for _, c := range missingByLeap[l] {
					want[c] = true
				}
				for _, qi := range byLeap[l] {
					q := &v.Parts[qi]
					hit := false
					for _, c := range q.Chares {
						if want[c] {
							hit = true
							delete(want, c)
						}
					}
					if hit {
						a.set.AddEdge(p.Atoms[0], q.Atoms[0])
						added++
					}
				}
			}
		}
		for _, pi := range byLeap[k] {
			for _, c := range v.Parts[pi].Chares {
				lastMap[c] = k
			}
		}
	}
	return 0
}
