// Package core implements the paper's primary contribution: recovering
// logical structure from Charm++ (and message-passing) event traces.
//
// Extract runs the two-stage algorithm of Section 3:
//
//  1. Phase-finding (§3.1): dependency events are grouped into initial
//     partitions (serial blocks split at application/runtime boundaries),
//     which are merged by matching message endpoints (Alg. 1), repaired
//     across the application/runtime split (Alg. 2), completed with inferred
//     happened-before dependencies (Alg. 3), merged per leap when chares
//     overlap (Alg. 4), and finally given the two DAG properties that
//     guarantee a single phase path per chare (Alg. 5). Every heuristic that
//     can create cycles is followed by a cycle merge that contracts strongly
//     connected components.
//  2. Step assignment (§3.2): within each phase, serial blocks are reordered
//     per chare by an idealized-replay clock w, events receive local logical
//     steps (a receive at least one step after its matching send), and local
//     steps are offset by phase-DAG predecessors into global steps.
//
// The pipeline is deterministic and, where profitable, parallel: the
// per-partition scans, the dependency-merge event sweep, the per-leap
// overlap detection and the per-phase ordering stage run on a worker pool
// sized by Options.Parallelism, with worker results merged in index order,
// so the recovered Structure is byte-identical for every worker count
// (Parallelism 1 reproduces the fully sequential pipeline exactly).
package core

import (
	"context"
	"runtime"

	"charmtrace/internal/telemetry"
)

// Options configures Extract.
type Options struct {
	// Reorder enables the §3.2.1 idealized replay: serial blocks are ordered
	// per chare by the w clock instead of physical time. Disabling it steps
	// events in recorded order (the Figure 8(a)/10(a) baselines).
	Reorder bool

	// InferDependencies enables the §3.1.4 heuristics that compensate for
	// missing control dependencies: inferring happened-before relationships
	// from the physical-time order of partition-starting sources (Alg. 3)
	// and merging concurrent overlapping partitions per leap (Alg. 4).
	// Disabling it reproduces Figure 17: the DAG properties are still
	// enforced, but by sequencing overlapping partitions instead of merging
	// them, so phases split.
	InferDependencies bool

	// NeighborSerialMerge enables the §3.1.3 refinement that merges the
	// partitions of SDAG serial n+1 blocks when their chares participated in
	// serial n within a single phase.
	NeighborSerialMerge bool

	// MessagePassing selects the message-passing w rule of §3.2.1/Figure 9:
	// sends are pinned after every receive that physically preceded them
	// (w_send = 1 + max w_recv) and only receives are reordered. Use for
	// traces of process-centric programs where each serial block holds a
	// single communication event.
	MessagePassing bool

	// ProcessOrderDeps adds happened-before edges between consecutive
	// serial blocks of each chare. Message-passing models assume per-process
	// physical-time order implies control flow (§3.4); task-based traces
	// must not assume this because runtime scheduling order is
	// non-deterministic.
	ProcessOrderDeps bool

	// Parallel forces the per-phase ordering stage to run concurrently
	// (one phase per goroutine, bounded by GOMAXPROCS) even when
	// Parallelism is 1. The paper notes the stage is phase-independent and
	// "could be parallelized" (§3.3); the result is identical either way.
	//
	// Deprecated: set Parallelism instead, which parallelizes every
	// worker-pool stage of the pipeline. Parallel is retained so existing
	// callers keep their behaviour.
	Parallel bool

	// Parallelism is the worker count for the parallel stages of the
	// pipeline (the per-partition scans, the dependency-merge sweep, the
	// per-leap overlap detection, the per-phase ordering stage) and for
	// ExtractBatch. Zero or negative selects runtime.GOMAXPROCS(0); 1 runs
	// the fully sequential pipeline. The recovered Structure is
	// byte-identical for every value: workers process contiguous index
	// ranges and their results are merged in index order.
	Parallelism int

	// Telemetry, when non-nil, receives a span for every pipeline stage,
	// every enforce-orderability round, every worker chunk of the parallel
	// sweeps, and every ordered phase (the self-tracing behind -self-trace).
	// When a recorder is attached, each stage additionally records
	// runtime.MemStats deltas into the metrics registry. nil disables span
	// recording (telemetry.Disabled is substituted); the per-stage metrics
	// backing Stats are collected either way. Recorders only observe — the
	// recovered Structure is byte-identical with telemetry on or off.
	Telemetry telemetry.Recorder

	// Metrics, when non-nil, additionally accumulates the extraction's
	// metric registry into this shared registry when the pipeline finishes.
	// CLIs use it to aggregate every extraction of a run into one
	// -stats-json report; batch extractions merge concurrently and safely.
	Metrics *telemetry.Registry

	// ChareRank, when non-nil, supplies a display rank per chare used for
	// the Figure 7 tie-break instead of the raw chare ID — the paper's
	// suggestion that orderings aware of the data topology (e.g. neighbours
	// in 3D space) are more intuitive than tie-breaking by chare ID.
	ChareRank []int32

	// Progress, when non-nil, receives live position updates: the running
	// stage and per-stage loop counters, updated lock-free at worker-chunk
	// granularity. The result cache attaches one per extraction flight and
	// charmd serves it at /debug/flights. Like the telemetry sinks this is
	// an execution-only knob: it is excluded from Fingerprint and never
	// changes the recovered Structure, and a nil Progress costs one pointer
	// check per chunk.
	Progress *Progress

	// Context, when non-nil, cancels the extraction cooperatively: the
	// pipeline polls it at every stage boundary, between worker chunks of
	// the parallel sweeps, at every enforce-orderability round and before
	// every ordered phase, and Extract returns an error wrapping
	// ctx.Err() (context.Canceled or context.DeadlineExceeded) instead of
	// a Structure. Cancellation latency is therefore bounded by one worker
	// chunk of the current stage, not by the whole extraction. Like
	// Parallelism, Context is an execution-only knob: it is excluded from
	// Fingerprint, and an extraction that completes is byte-identical with
	// or without a context attached. nil never cancels.
	Context context.Context
}

// ctxErr returns the cancellation state of the attached context: nil when
// no context is attached or it is still live.
func (o Options) ctxErr() error {
	if o.Context == nil {
		return nil
	}
	return o.Context.Err()
}

// Workers returns the effective worker count: Parallelism when positive,
// otherwise runtime.GOMAXPROCS(0).
func (o Options) Workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultOptions returns the configuration used for Charm++ traces in the
// paper's case studies: reordering and dependency inference on, neighbour
// serial merge on, task-based stepping.
func DefaultOptions() Options {
	return Options{
		Reorder:             true,
		InferDependencies:   true,
		NeighborSerialMerge: true,
	}
}

// MessagePassingOptions returns the configuration for process-centric
// message-passing traces: per-process order supplies control dependencies,
// and the Figure 9 send-pinning rule applies. This is the algorithm used for
// the MPI sides of the case studies (with Reorder=false it degenerates to
// the Isaacs et al. [13] stepping baseline).
func MessagePassingOptions() Options {
	return Options{
		Reorder:          true,
		MessagePassing:   true,
		ProcessOrderDeps: true,
	}
}
