package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
)

// FingerprintVersion versions the Options fingerprint format. Bump it
// whenever a change to the pipeline alters the recovered Structure for the
// same (trace, semantic options) pair, or whenever a new semantic option is
// added: a version bump invalidates every cached result at once, which is
// exactly what a behaviour change requires.
const FingerprintVersion = 1

// Fingerprint returns a canonical, deterministic description of every
// option that can change the recovered Structure. It is the options half of
// a content-addressed result-cache key: two Options values with equal
// fingerprints are guaranteed to produce byte-identical structures for the
// same trace.
//
// Execution-only knobs are deliberately excluded — Parallelism and the
// deprecated Parallel flag (the pipeline is byte-identical at every worker
// count), the Telemetry/Metrics sinks (recorders only observe), and
// Context (cancellation aborts an extraction, it never changes a completed
// one). That exclusion is what lets a result extracted at one parallelism
// serve requests made at any other.
//
// ChareRank participates through a digest of its contents because it feeds
// the Figure 7 tie-break, which reorders phase event lists.
func (o Options) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d", FingerprintVersion)
	flag := func(name string, v bool) {
		// Canonical single-letter values keep the fingerprint short enough
		// to embed in cache filenames and log lines.
		c := 'f'
		if v {
			c = 't'
		}
		fmt.Fprintf(&b, " %s=%c", name, c)
	}
	flag("reorder", o.Reorder)
	flag("infer", o.InferDependencies)
	flag("nsmerge", o.NeighborSerialMerge)
	flag("mp", o.MessagePassing)
	flag("procorder", o.ProcessOrderDeps)
	if o.ChareRank == nil {
		b.WriteString(" rank=-")
	} else {
		h := sha256.New()
		var buf [4]byte
		for _, r := range o.ChareRank {
			binary.LittleEndian.PutUint32(buf[:], uint32(r))
			h.Write(buf[:])
		}
		fmt.Fprintf(&b, " rank=%x", h.Sum(nil)[:8])
	}
	return b.String()
}
