package main

import (
	"fmt"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/mergetree"
	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// runBenchJSON runs the extraction benchmark suite behind -bench-json and
// writes the results in the versioned BenchExport schema. It covers the two
// parallelism-sensitive benchmarks of the repo's bench_test.go — the Figure
// 10 merge-tree extraction and the ExtractBatch multi-run shape — each at
// worker counts 1, 2 and 4, so successive runs can be compared
// machine-readably (the BENCH_extract.json artifact).
func runBenchJSON(path string) error {
	mt := mergetree.MustTrace(mergetree.DefaultConfig())
	batch := make([]*trace.Trace, 8)
	for i := range batch {
		cfg := jacobi.DefaultConfig()
		cfg.Grid = 8
		cfg.Seed = int64(i + 1)
		batch[i] = jacobi.MustTrace(cfg)
	}

	e := telemetry.NewBenchExport("experiments")
	for _, par := range []int{1, 2, 4} {
		opt := core.MessagePassingOptions()
		opt.Parallelism = par
		name := fmt.Sprintf("Fig10MergeTree/par=%d", par)
		fmt.Printf("  %-28s", name)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Extract(mt, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		e.Add(name, r.N, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		fmt.Printf(" %12d ns/op  (%d iterations)\n", r.NsPerOp(), r.N)
	}
	for _, par := range []int{1, 2, 4} {
		opt := core.DefaultOptions()
		opt.Parallelism = par
		name := fmt.Sprintf("ExtractBatch/par=%d", par)
		fmt.Printf("  %-28s", name)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ExtractBatch(batch, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		e.Add(name, r.N, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		fmt.Printf(" %12d ns/op  (%d iterations)\n", r.NsPerOp(), r.N)
	}
	if err := e.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
