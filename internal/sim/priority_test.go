package sim

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// priorityWorkload: a source floods one chare with messages carrying
// descending urgency; with priorities the later-sent urgent messages
// execute first.
func priorityWorkload(t *testing.T, usePrio bool) *trace.Trace {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.NetJitter = 0
	rt := New(cfg)
	arr := rt.NewArray("pq", 2, func(i int) int { return i }, nil)
	work := arr.Register("work", func(ctx *Ctx, m Message) {
		ctx.Compute(1000) // long enough that all messages queue up
	})
	start := arr.Register("start", func(ctx *Ctx, m Message) {
		for i := 0; i < 4; i++ {
			prio := int32(0)
			if usePrio {
				prio = int32(3 - i) // later sends are more urgent
			}
			ctx.SendPrio(arr.At(1), work, i, prio)
		}
	})
	rt.Spawn(arr.At(0), start, nil)
	tr, err := rt.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tr
}

// execOrder returns the payload order in which the work blocks ran,
// identified through recv event times.
func execOrder(t *testing.T, tr *trace.Trace) []trace.MsgID {
	t.Helper()
	var out []trace.MsgID
	for _, b := range tr.Blocks {
		if tr.Entries[b.Entry].Name != "pq::work" {
			continue
		}
		for _, e := range b.Events {
			if tr.Events[e].Kind == trace.Recv {
				out = append(out, tr.Events[e].Msg)
			}
		}
	}
	return out
}

func TestPriorityReordersExecution(t *testing.T) {
	fifo := execOrder(t, priorityWorkload(t, false))
	prio := execOrder(t, priorityWorkload(t, true))
	if len(fifo) != 4 || len(prio) != 4 {
		t.Fatalf("work blocks = %d/%d, want 4", len(fifo), len(prio))
	}
	// FIFO: send order. Priorities: mostly reversed (the first message may
	// already be executing when the urgent ones arrive).
	for i := 1; i < 4; i++ {
		if fifo[i] < fifo[i-1] {
			t.Fatalf("FIFO order violated: %v", fifo)
		}
	}
	inverted := 0
	for i := 1; i < len(prio); i++ {
		if prio[i] < prio[i-1] {
			inverted++
		}
	}
	if inverted == 0 {
		t.Fatalf("priorities did not reorder execution: %v", prio)
	}
}

// TestStructureInvariantUnderPriorities: scheduler priorities permute the
// physical record but the recovered logical structure is unchanged — the
// non-determinism the paper's reordering sees through.
func TestStructureInvariantUnderPriorities(t *testing.T) {
	a := priorityWorkload(t, false)
	b := priorityWorkload(t, true)
	sa, err := core.Extract(a, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := core.Extract(b, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
	if sa.NumPhases() != sb.NumPhases() {
		t.Fatalf("phases differ: %d vs %d", sa.NumPhases(), sb.NumPhases())
	}
	if sa.MaxStep() != sb.MaxStep() {
		t.Fatalf("max steps differ: %d vs %d", sa.MaxStep(), sb.MaxStep())
	}
	// The receiver's logical timeline is identically ordered: the w clock
	// replays the sends' order, not the scheduler's.
	recvChare := trace.ChareID(3) // 2 mgr chares, then pq[0], pq[1]
	seqA, seqB := sa.EventsOfChare(recvChare), sb.EventsOfChare(recvChare)
	if len(seqA) != len(seqB) {
		t.Fatal("timeline lengths differ")
	}
	for i := range seqA {
		if a.Events[seqA[i]].Msg != b.Events[seqB[i]].Msg {
			t.Fatalf("logical order differs at %d: msg %d vs %d",
				i, a.Events[seqA[i]].Msg, b.Events[seqB[i]].Msg)
		}
	}
}
