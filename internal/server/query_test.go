package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// queryPage mirrors the queryResponse JSON shape.
type queryPage struct {
	Digest      string           `json:"digest"`
	Fingerprint string           `json:"fingerprint"`
	Select      string           `json:"select"`
	TotalRows   int              `json:"total_rows"`
	Rows        []map[string]any `json:"rows"`
	NextCursor  string           `json:"next_cursor"`
}

func postQuery(t *testing.T, ts *httptest.Server, digest, spec string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/traces/"+digest+"/query", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func decodePage(t *testing.T, data []byte) queryPage {
	t.Helper()
	var p queryPage
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatalf("decoding query page: %v\n%s", err, data)
	}
	return p
}

// TestQueryEndpointEndToEnd: POST /query pages a filtered steps query,
// the concatenated pages equal the unpaged result, and the same spec via
// GET parameters returns the same rows.
func TestQueryEndpointEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	digest := upload(t, ts, encodedJacobi(t, 0))

	full := `{"select":"steps","filter":{"chares":[1,3],"steps":{"from":9,"to":40}}}`
	code, data := postQuery(t, ts, digest, full)
	if code != http.StatusOK {
		t.Fatalf("query status %d: %s", code, data)
	}
	fullPage := decodePage(t, data)
	if fullPage.Digest != digest || fullPage.Select != "steps" || len(fullPage.Rows) == 0 {
		t.Fatalf("bad full page: %+v", fullPage)
	}
	if fullPage.TotalRows != len(fullPage.Rows) {
		t.Fatalf("unpaged TotalRows %d != rows %d", fullPage.TotalRows, len(fullPage.Rows))
	}

	// Page through the same filter with limit 5 and concatenate.
	var rows []map[string]any
	cursor := ""
	for {
		spec := fmt.Sprintf(`{"select":"steps","filter":{"chares":[1,3],"steps":{"from":9,"to":40}},"limit":5,"cursor":%q}`, cursor)
		code, data := postQuery(t, ts, digest, spec)
		if code != http.StatusOK {
			t.Fatalf("paged query status %d: %s", code, data)
		}
		page := decodePage(t, data)
		rows = append(rows, page.Rows...)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	got, _ := json.Marshal(rows)
	want, _ := json.Marshal(fullPage.Rows)
	if !bytes.Equal(got, want) {
		t.Error("concatenated POST pages differ from the unpaged result")
	}

	// The GET retrofit with equivalent parameters returns the same rows.
	getData := mustGet(t, ts, "/v1/traces/"+digest+"/steps?chares=1,3&steps=9..40")
	getPage := decodePage(t, getData)
	gotGET, _ := json.Marshal(getPage.Rows)
	if !bytes.Equal(gotGET, want) {
		t.Error("GET parameter retrofit differs from POST query result")
	}

	// GET paging follows the cursor through the page parameter.
	first := decodePage(t, mustGet(t, ts, "/v1/traces/"+digest+"/steps?chares=1,3&steps=9..40&limit=5"))
	if first.NextCursor == "" || len(first.Rows) != 5 {
		t.Fatalf("GET page 1: rows=%d cursor=%q", len(first.Rows), first.NextCursor)
	}
	second := decodePage(t, mustGet(t, ts, "/v1/traces/"+digest+"/steps?chares=1,3&steps=9..40&limit=5&page="+first.NextCursor))
	if len(second.Rows) == 0 {
		t.Fatal("GET page 2 empty")
	}

	// Without engine parameters the legacy response shape is untouched.
	legacy := mustGet(t, ts, "/v1/traces/"+digest+"/steps")
	if !bytes.Contains(legacy, []byte(`"timeline"`)) {
		t.Error("legacy steps response lost its shape")
	}
}

// TestQueryGroupedAndStructureSelects exercises the other select kinds
// over HTTP.
func TestQueryGroupedAndStructureSelects(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	digest := upload(t, ts, encodedJacobi(t, 0))

	code, data := postQuery(t, ts, digest, `{"select":"metrics","group_by":"chare","aggregates":["count","sum","max"]}`)
	if code != http.StatusOK {
		t.Fatalf("grouped query status %d: %s", code, data)
	}
	page := decodePage(t, data)
	if len(page.Rows) == 0 {
		t.Fatal("grouped query returned no rows")
	}
	for _, col := range []string{"chare", "chare_name", "count", "sub_dur_sum", "imbalance_max"} {
		if _, ok := page.Rows[0][col]; !ok {
			t.Errorf("grouped row missing column %s: %v", col, page.Rows[0])
		}
	}

	code, data = postQuery(t, ts, digest, `{"select":"structure","fields":["id","chares"]}`)
	if code != http.StatusOK {
		t.Fatalf("structure query status %d: %s", code, data)
	}
	page = decodePage(t, data)
	if len(page.Rows) == 0 || len(page.Rows[0]) != 2 {
		t.Fatalf("projected structure rows wrong: %v", page.Rows)
	}

	code, data = postQuery(t, ts, digest, `{"select":"viz","filter":{"steps":{"from":0,"to":40}},"limit":3}`)
	if code != http.StatusOK {
		t.Fatalf("viz query status %d: %s", code, data)
	}

	// The second and later queries hit the cached per-entry index.
	reg := srv.Registry()
	if builds := reg.Counter("cache.index_builds").Value(); builds != 1 {
		t.Errorf("cache.index_builds = %d, want 1 (one resident entry)", builds)
	}
	if hits := reg.Counter("cache.index_hits").Value(); hits < 2 {
		t.Errorf("cache.index_hits = %d, want >= 2", hits)
	}
	if q := reg.Counter("query.queries").Value(); q < 3 {
		t.Errorf("query.queries = %d, want >= 3", q)
	}
}

// TestQueryErrorsAreFieldLevel400s: malformed specs come back as 400 with
// the offending field named, never 500.
func TestQueryErrorsAreFieldLevel400s(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	digest := upload(t, ts, encodedJacobi(t, 0))

	cases := []struct {
		spec  string
		field string
	}{
		{`{"select":"bogus"}`, "select"},
		{`{"select":"steps","limit":-1}`, "limit"},
		{`{"select":"steps","filter":{"steps":{"from":9,"to":2}}}`, "filter.steps"},
		{`{"select":"metrics","group_by":"pe"}`, "group_by"},
		{`{"select":"metrics","group_by":"phase","aggregates":["p50"]}`, "aggregates"},
		{`{"select":"steps","fields":["nope"]}`, "fields"},
		{`{"select":"steps","cursor":"garbage"}`, "cursor"},
		{`{"select":"steps","filter":{"chares":[9999]}}`, "filter.chares"},
		{`not json at all`, "(body)"},
		{`{"select":"steps","surprise":1}`, "(body)"},
	}
	for _, tc := range cases {
		code, data := postQuery(t, ts, digest, tc.spec)
		if code != http.StatusBadRequest {
			t.Errorf("spec %s: status %d (%s), want 400", tc.spec, code, data)
			continue
		}
		var body struct {
			Error string `json:"error"`
			Field string `json:"field"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			t.Errorf("spec %s: undecodable error body %s", tc.spec, data)
			continue
		}
		if body.Field != tc.field {
			t.Errorf("spec %s: field %q, want %q", tc.spec, body.Field, tc.field)
		}
	}

	// Bad GET parameters are field-level too.
	code, data := get(t, ts, "/v1/traces/"+digest+"/steps?steps=backwards")
	if code != http.StatusBadRequest || !bytes.Contains(data, []byte(`"field"`)) {
		t.Errorf("bad GET param: status %d body %s", code, data)
	}

	// Unknown digest stays 404 even with a valid spec.
	code, _ = postQuery(t, ts, strings.Repeat("0", 64), `{"select":"steps"}`)
	if code != http.StatusNotFound {
		t.Errorf("unknown digest query: status %d, want 404", code)
	}
}

// rawGet issues a GET without the Go client's transparent decompression.
func rawGet(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) *http.Response {
	t.Helper()
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	req, err := http.NewRequest("GET", ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestETagRevalidation: digest-addressed GETs carry a strong ETag and the
// immutable cache headers; If-None-Match revalidation returns a bodyless
// 304 without running any extraction; response-shaping parameters change
// the ETag.
func TestETagRevalidation(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	digest := upload(t, ts, encodedJacobi(t, 0))
	path := "/v1/traces/" + digest + "/structure"

	resp := rawGet(t, ts, path, nil)
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || len(etag) < 10 {
		t.Fatalf("weak or missing ETag %q", etag)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") || !strings.Contains(cc, "max-age=") {
		t.Errorf("Cache-Control = %q, want immutable max-age", cc)
	}
	if vary := resp.Header.Get("Vary"); vary != "Accept-Encoding" {
		t.Errorf("Vary = %q", vary)
	}

	missesBefore := srv.Registry().Counter("cache.misses").Value()
	resp304 := rawGet(t, ts, path, map[string]string{"If-None-Match": etag})
	body304, _ := io.ReadAll(resp304.Body)
	if resp304.StatusCode != http.StatusNotModified || len(body304) != 0 {
		t.Fatalf("revalidation: status %d body %d bytes", resp304.StatusCode, len(body304))
	}
	if resp304.Header.Get("ETag") != etag {
		t.Errorf("304 ETag %q != original %q", resp304.Header.Get("ETag"), etag)
	}
	if after := srv.Registry().Counter("cache.misses").Value(); after != missesBefore {
		t.Error("revalidation touched the extraction path")
	}

	// A different option set or different response parameters → different
	// ETag; an unrelated If-None-Match → full 200.
	respMP := rawGet(t, ts, path+"?preset=mp", nil)
	io.Copy(io.Discard, respMP.Body)
	if respMP.Header.Get("ETag") == etag {
		t.Error("preset=mp shares the ETag of the default options")
	}
	respFiltered := rawGet(t, ts, path+"?steps=0..5", nil)
	io.Copy(io.Discard, respFiltered.Body)
	if respFiltered.Header.Get("ETag") == etag {
		t.Error("filtered response shares the unfiltered ETag")
	}
	respStale := rawGet(t, ts, path, map[string]string{"If-None-Match": `"deadbeef"`})
	staleBody, _ := io.ReadAll(respStale.Body)
	if respStale.StatusCode != http.StatusOK || len(staleBody) == 0 {
		t.Errorf("stale validator: status %d", respStale.StatusCode)
	}

	// Unknown digests never 304.
	respGone := rawGet(t, ts, "/v1/traces/"+strings.Repeat("0", 64)+"/structure",
		map[string]string{"If-None-Match": "*"})
	io.Copy(io.Discard, respGone.Body)
	if respGone.StatusCode != http.StatusNotFound {
		t.Errorf("unknown digest with If-None-Match: status %d, want 404", respGone.StatusCode)
	}
}

// TestGzipBodiesAreByteIdentical: the bytes inside the gzip stream are
// exactly the uncompressed response body, on both analysis GETs and query
// POSTs; clients that don't ask for gzip get identity.
func TestGzipBodiesAreByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	digest := upload(t, ts, encodedJacobi(t, 0))

	for _, path := range []string{
		"/v1/traces/" + digest + "/structure",
		"/v1/traces/" + digest + "/steps?chares=0,2&steps=9..30&limit=10",
		"/v1/traces/" + digest + "/metrics?group_by=phase",
		"/v1/traces/" + digest,
	} {
		plain := rawGet(t, ts, path, nil)
		plainBody, _ := io.ReadAll(plain.Body)
		if enc := plain.Header.Get("Content-Encoding"); enc != "" {
			t.Fatalf("%s: identity request got Content-Encoding %q", path, enc)
		}

		zipped := rawGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
		if enc := zipped.Header.Get("Content-Encoding"); enc != "gzip" {
			t.Fatalf("%s: gzip request got Content-Encoding %q", path, enc)
		}
		zr, err := gzip.NewReader(zipped.Body)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		unzipped, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !bytes.Equal(unzipped, plainBody) {
			t.Errorf("%s: decompressed body differs from identity body", path)
		}
	}

	// A 304 with gzip accepted stays body-free and unencoded.
	first := rawGet(t, ts, "/v1/traces/"+digest+"/structure", nil)
	io.Copy(io.Discard, first.Body)
	etag := first.Header.Get("ETag")
	resp304 := rawGet(t, ts, "/v1/traces/"+digest+"/structure",
		map[string]string{"Accept-Encoding": "gzip", "If-None-Match": etag})
	body, _ := io.ReadAll(resp304.Body)
	if resp304.StatusCode != http.StatusNotModified || len(body) != 0 || resp304.Header.Get("Content-Encoding") != "" {
		t.Errorf("gzip 304: status %d, %d body bytes, encoding %q",
			resp304.StatusCode, len(body), resp304.Header.Get("Content-Encoding"))
	}
}
