GO ?= go

.PHONY: build test verify fuzz bench bench-overhead fmt serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 recipe (see README "Testing" and
# .claude/skills/verify/SKILL.md), plus a -race leg over the concurrent
# serving packages (result cache singleflight, HTTP handlers).
verify: build test
	$(GO) vet ./...
	$(GO) test -race ./internal/core ./internal/partition ./internal/tracefile
	$(GO) test -race ./internal/resultcache ./internal/server

# fuzz is the CI smoke leg: a short coverage-guided run over the
# untrusted-input decoders (ReadAuto/ReadAutoDigest). The checked-in corpus
# under internal/tracefile/testdata/fuzz replays on every plain `go test`.
fuzz:
	$(GO) test -fuzz=FuzzReadAuto -fuzztime=20s -fuzzminimizetime=1s ./internal/tracefile

# bench regenerates BENCH_extract.json, the machine-readable perf
# trajectory (merge-tree extraction + ExtractBatch at parallelism 1/2/4).
bench:
	$(GO) run ./cmd/experiments -bench-json BENCH_extract.json

# bench-overhead checks the telemetry off/nop/recording cost (DESIGN.md §3b).
bench-overhead:
	$(GO) test -bench 'BenchmarkTelemetryOverhead' -run '^$$' -benchtime 30x .

# serve starts the charmd analysis service on :8080 with its cache in
# .charmd-cache/ (gitignored). See README "Serving".
serve:
	$(GO) run ./cmd/charmd -addr :8080 -data-dir .charmd-cache

fmt:
	gofmt -l -w .
