package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"charmtrace/internal/resultcache"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
)

// The /v1/internal/* endpoints are the node-to-node and gateway-to-node
// data plane: encoded result entries move between ring replicas here, and
// raw trace bytes backfill nodes that missed an upload fan-out. They serve
// strictly local state — an internal read never triggers a peer fetch or
// an extraction, which is what makes peer fill loop-free.

// handleInternalResultGet streams one encoded cache entry from disk. The
// body is the exact .cstr file (magic header included), so a receiving
// node can PutEntry it verbatim and a gateway can relay it for
// replication without decoding.
func (s *Server) handleInternalResultGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	rc, size, err := s.cache.OpenEntry(key)
	if err != nil {
		httpError(w, fmt.Errorf("%w: no entry %s", errUnknownTrace, key))
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	io.Copy(w, rc)
}

// handleInternalResultPut accepts a replicated entry and installs it in
// the local disk cache. Sender mistakes (bad key, not an encoded
// structure, oversized) are 400s; local failures are 500s. Installing is
// idempotent, so replaying a replication push is harmless.
func (s *Server) handleInternalResultPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	n, err := s.cache.PutEntry(key, r.Body, s.cfg.MaxEntryBytes)
	if err != nil {
		if errors.Is(err, resultcache.ErrBadEntry) {
			httpError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		} else {
			httpError(w, err)
		}
		return
	}
	writeJSON(w, struct {
		Key   string `json:"key"`
		Bytes int64  `json:"bytes"`
	}{Key: key, Bytes: n})
}

// handleInternalTraceGet streams the raw persisted trace file. Only
// locally held bytes are served — a node that lacks the trace answers 404
// rather than asking its own siblings, so two nodes missing the same
// digest cannot chase each other.
func (s *Server) handleInternalTraceGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	s.mu.RLock()
	te := s.traces[digest]
	s.mu.RUnlock()
	dir := s.tracesDir()
	if te == nil || dir == "" {
		httpError(w, errUnknownTrace)
		return
	}
	f, err := os.Open(filepath.Join(dir, digest+".trace"))
	if err != nil {
		// Registered but memory-only (no data dir at upload time, or the
		// file was removed underneath us): treat as not held.
		httpError(w, errUnknownTrace)
		return
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(info.Size(), 10))
	io.Copy(w, f)
}

// traceFromPeer pulls a trace this node never saw from its ring siblings,
// verifying the content digest before trusting a byte of it, persisting
// it exactly like an upload, and registering it for every later request.
// Concurrent callers may fetch twice; registerTrace keeps the first.
func (s *Server) traceFromPeer(ctx context.Context, digest string) (*trace.Trace, error) {
	body, err := s.cfg.TraceFetch(ctx, digest)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (peer fetch: %v)", errUnknownTrace, digest, err)
	}
	defer body.Close()

	sink := &countingWriter{w: io.Discard}
	var spool *os.File
	if dir := s.tracesDir(); dir != "" {
		f, err := os.CreateTemp(dir, ".peerfill-*")
		if err != nil {
			return nil, err
		}
		spool = f
		sink.w = f
		defer func() {
			if spool != nil {
				spool.Close()
				os.Remove(spool.Name())
			}
		}()
	}

	tr, got, err := tracefile.ReadAutoDigest(io.TeeReader(body, sink))
	if err != nil {
		return nil, fmt.Errorf("server: peer trace %s: %w", digest, err)
	}
	if got != digest {
		return nil, fmt.Errorf("server: peer sent trace digesting to %s, want %s", got, digest)
	}
	if spool != nil {
		if err := spool.Close(); err != nil {
			return nil, err
		}
		dst := filepath.Join(s.tracesDir(), digest+".trace")
		if _, statErr := os.Stat(dst); statErr == nil {
			os.Remove(spool.Name())
		} else if err := os.Rename(spool.Name(), dst); err != nil {
			os.Remove(spool.Name())
			spool = nil
			return nil, err
		}
		spool = nil
	}
	s.registerTrace(digest, tr, sink.n)
	s.tracePeerFills.Add(1)
	return tr, nil
}
