// Package jacobi is the paper's running example: a Charm++ program
// computing heat distribution via Jacobi iteration on a 2D domain
// decomposed over a chare array. Each iteration every chare sends halo
// exchanges to its four grid neighbours, computes once all halos arrive,
// and contributes the residual to a Max reduction whose broadcast callback
// starts the next iteration (Figures 8, 12, 14, 15).
package jacobi

import (
	"math"

	"charmtrace/internal/sim"
	"charmtrace/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// Grid is the chare grid edge: Grid*Grid chares.
	Grid int
	// NumPE is the processor count.
	NumPE int
	// Iterations is the number of Jacobi iterations.
	Iterations int
	// Compute is the base per-iteration compute time per chare.
	Compute sim.Time
	// SlowChare (if >= 0) multiplies one chare's compute by SlowFactor
	// during iteration SlowIteration, the Figure 14/15 scenario.
	SlowChare     int
	SlowFactor    int
	SlowIteration int
	// Seed feeds the network jitter.
	Seed int64
	// TraceReductions toggles the §5 tracing additions.
	TraceReductions bool
}

// DefaultConfig is the paper's 16-chare (4x4) run on 8 processors.
func DefaultConfig() Config {
	return Config{
		Grid: 4, NumPE: 8, Iterations: 4, Compute: 500,
		SlowChare: -1, SlowFactor: 8, SlowIteration: 1,
		Seed: 1, TraceReductions: true,
	}
}

// state is per-chare simulation state.
type state struct {
	iter    int
	ghosts  int
	residue float64
}

// Trace runs the simulation and returns its event trace.
func Trace(cfg Config) (*trace.Trace, error) {
	n := cfg.Grid * cfg.Grid
	simCfg := sim.DefaultConfig(cfg.NumPE)
	simCfg.Seed = cfg.Seed
	simCfg.TraceReductions = cfg.TraceReductions
	rt := sim.New(simCfg)

	arr := rt.NewArray("jacobi", n, nil, func(i int) any { return &state{} })
	neighbors := func(i int) []int {
		x, y := i%cfg.Grid, i/cfg.Grid
		var out []int
		if x > 0 {
			out = append(out, i-1)
		}
		if x < cfg.Grid-1 {
			out = append(out, i+1)
		}
		if y > 0 {
			out = append(out, i-cfg.Grid)
		}
		if y < cfg.Grid-1 {
			out = append(out, i+cfg.Grid)
		}
		return out
	}

	var ghost, resume sim.EntryRef
	var red *sim.Reduction

	sendHalos := func(ctx *sim.Ctx) {
		for _, nb := range neighbors(ctx.Index()) {
			ctx.Send(arr.At(nb), ghost, ctx.Index())
		}
	}
	computeTime := func(ctx *sim.Ctx, st *state) sim.Time {
		d := cfg.Compute
		if ctx.Index() == cfg.SlowChare && st.iter == cfg.SlowIteration {
			d *= sim.Time(cfg.SlowFactor)
		}
		return d
	}

	// the SDAG iteration body that sends halo exchanges.
	begin := arr.RegisterSDAG("serial_0", 0, false, func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(20)
		sendHalos(ctx)
	})
	// the when-clause serial receiving ghosts; computes and contributes
	// once all neighbours have arrived.
	ghost = arr.RegisterSDAG("ghost", 2, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.ghosts++
		if st.ghosts < len(neighbors(ctx.Index())) {
			ctx.Compute(5)
			return
		}
		st.ghosts = 0
		ctx.Compute(computeTime(ctx, st))
		st.residue = math.Exp2(-float64(st.iter))
		ctx.Contribute(red, st.residue)
	})
	// the serial triggered by the reduction broadcast, restarting the iteration.
	resume = arr.RegisterSDAG("resume", 4, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.iter++
		if st.iter >= cfg.Iterations {
			return
		}
		ctx.Compute(20)
		sendHalos(ctx)
	})
	red = rt.NewReduction(arr, sim.Max, sim.BroadcastCallback(resume))

	for i := 0; i < n; i++ {
		rt.Spawn(arr.At(i), begin, nil)
	}
	return rt.Run()
}

// MustTrace is Trace that panics on error.
func MustTrace(cfg Config) *trace.Trace {
	t, err := Trace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
