module charmtrace

go 1.22
